// Tests for the Zipfian sampler and its use in the trace generator.
#include <gtest/gtest.h>

#include <map>

#include "src/addr/decoder.h"
#include "src/base/rng.h"
#include "src/base/units.h"
#include "src/workload/workloads.h"

namespace siloz {
namespace {

TEST(ZipfianTest, SamplesInRange) {
  ZipfianSampler sampler(1000, 0.9);
  Rng rng(1);
  for (int i = 0; i < 20000; ++i) {
    EXPECT_LT(sampler.Next(rng), 1000u);
  }
}

TEST(ZipfianTest, SkewConcentratesOnHotItems) {
  // With theta = 0.9 over 10K items, the hottest item draws a few percent of
  // all samples and the top-10 a significant fraction; uniform would give
  // 0.01% and 0.1%.
  ZipfianSampler sampler(10000, 0.9);
  Rng rng(2);
  std::map<uint64_t, uint64_t> counts;
  const int samples = 200000;
  for (int i = 0; i < samples; ++i) {
    counts[sampler.Next(rng)]++;
  }
  EXPECT_GT(counts[0], samples / 100);  // > 1% on the single hottest item
  uint64_t top10 = 0;
  for (uint64_t rank = 0; rank < 10; ++rank) {
    top10 += counts[rank];
  }
  EXPECT_GT(top10, samples / 10);  // > 10% on the top-10
  // But the tail is still populated.
  EXPECT_GT(counts.size(), 3000u);
}

TEST(ZipfianTest, HigherThetaMoreSkew) {
  Rng rng(3);
  auto hottest_share = [&](double theta) {
    ZipfianSampler sampler(10000, theta);
    uint64_t hits = 0;
    const int samples = 100000;
    for (int i = 0; i < samples; ++i) {
      hits += (sampler.Next(rng) == 0);
    }
    return static_cast<double>(hits) / samples;
  };
  EXPECT_GT(hottest_share(0.99), hottest_share(0.5));
}

TEST(ZipfianTest, LargeFootprintConstructionIsFast) {
  // Multi-GiB footprints = hundreds of millions of lines; the approximate
  // zeta must keep construction cheap and sampling sane.
  ZipfianSampler sampler(50'000'000, 0.9);
  Rng rng(4);
  uint64_t max_seen = 0;
  for (int i = 0; i < 10000; ++i) {
    max_seen = std::max(max_seen, sampler.Next(rng));
  }
  EXPECT_LT(max_seen, 50'000'000u);
  EXPECT_GT(max_seen, 1'000'000u);  // the tail is reachable
}

TEST(ZipfianTest, TraceGeneratorAppliesSkew) {
  // redis-a (zipfian) revisits lines far more than mysql (uniform jumps).
  const DramGeometry geometry;
  SkylakeDecoder decoder(geometry);
  const std::vector<VmRegion> regions = {
      VmRegion{MemoryType::kGuestRam, 0, 3_GiB, 1536_MiB, PageSize::k2M}};
  auto distinct_lines = [&](const char* name) {
    WorkloadSpec spec = *FindWorkload(name);
    spec.accesses = 30000;
    spec.sequential_locality = 0.0;  // isolate the jump distribution
    spec.footprint_bytes = 64_MiB;   // small key space makes the skew visible
    const auto trace = GenerateTrace(spec, decoder, regions, 0, 5);
    std::set<uint64_t> lines;
    for (const MemRequest& request : trace) {
      lines.insert(*decoder.MediaToPhys(request.address) / kCacheLineBytes);
    }
    return lines.size();
  };
  const size_t zipfian_distinct = distinct_lines("redis-a");
  const size_t uniform_distinct = distinct_lines("mysql");
  EXPECT_LT(zipfian_distinct, uniform_distinct * 3 / 4);
}

TEST(ZipfianTest, DeterministicAcrossInstances) {
  ZipfianSampler a(5000, 0.8);
  ZipfianSampler b(5000, 0.8);
  Rng rng_a(7);
  Rng rng_b(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a.Next(rng_a), b.Next(rng_b));
  }
}

}  // namespace
}  // namespace siloz
