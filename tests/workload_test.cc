// Tests for the workload trace generators (src/workload).
#include <gtest/gtest.h>

#include "src/addr/decoder.h"
#include "src/base/units.h"
#include "src/workload/workloads.h"

namespace siloz {
namespace {

std::vector<VmRegion> TwoRegions() {
  // A VM whose 3 GiB of RAM is split across two subarray groups.
  return {
      VmRegion{MemoryType::kGuestRam, 0, 3_GiB, 1536_MiB, PageSize::k2M},
      VmRegion{MemoryType::kGuestRam, 1536_MiB, 6_GiB, 1536_MiB, PageSize::k2M},
  };
}

TEST(WorkloadTest, CatalogsCoverThePaperSets) {
  // Fig 4: six YCSB variants + terasort + SPEC + PARSEC.
  EXPECT_EQ(ExecutionTimeWorkloads().size(), 9u);
  // Fig 5: memcached, mysql, five MLC variants.
  EXPECT_EQ(ThroughputWorkloads().size(), 7u);
  for (const char* name : {"redis-a", "redis-f", "terasort", "spec17", "parsec", "memcached",
                           "mysql", "mlc-reads", "mlc-stream"}) {
    EXPECT_TRUE(FindWorkload(name).ok()) << name;
  }
  EXPECT_FALSE(FindWorkload("nginx").ok());
}

TEST(WorkloadTest, IndividualBenchmarkCatalogs) {
  EXPECT_EQ(SpecCpuWorkloads().size(), 8u);
  EXPECT_EQ(ParsecWorkloads().size(), 6u);
  for (const char* name : {"spec-mcf", "spec-lbm", "parsec-canneal", "parsec-streamcluster"}) {
    ASSERT_TRUE(FindWorkload(name).ok()) << name;
  }
  // The stressors differ meaningfully: canneal jumps, streamcluster streams.
  EXPECT_LT(FindWorkload("parsec-canneal")->sequential_locality, 0.3);
  EXPECT_GT(FindWorkload("parsec-streamcluster")->sequential_locality, 0.8);
}

TEST(WorkloadTest, TraceStaysWithinRegions) {
  const DramGeometry geometry;
  SkylakeDecoder decoder(geometry);
  WorkloadSpec spec = *FindWorkload("redis-a");
  spec.accesses = 20000;
  const auto regions = TwoRegions();
  const auto trace = GenerateTrace(spec, decoder, regions, 0, 1);
  ASSERT_EQ(trace.size(), 20000u);
  for (const MemRequest& request : trace) {
    const uint64_t phys = *decoder.MediaToPhys(request.address);
    const bool inside = (phys >= 3_GiB && phys < 3_GiB + 1536_MiB) ||
                        (phys >= 6_GiB && phys < 6_GiB + 1536_MiB);
    EXPECT_TRUE(inside) << "trace escaped VM regions at " << phys;
    EXPECT_EQ(request.source_socket, 0u);
  }
}

TEST(WorkloadTest, ReadFractionApproximatelyHonored) {
  const DramGeometry geometry;
  SkylakeDecoder decoder(geometry);
  WorkloadSpec spec = *FindWorkload("mlc-3:1");
  spec.accesses = 40000;
  const auto trace = GenerateTrace(spec, decoder, TwoRegions(), 0, 2);
  uint64_t writes = 0;
  for (const MemRequest& request : trace) {
    writes += request.is_write;
  }
  EXPECT_NEAR(static_cast<double>(writes) / static_cast<double>(trace.size()), 0.25, 0.02);
}

TEST(WorkloadTest, LocalityControlsSequentiality) {
  const DramGeometry geometry;
  SkylakeDecoder decoder(geometry);
  auto sequential_fraction = [&](const char* name) {
    WorkloadSpec spec = *FindWorkload(name);
    spec.accesses = 20000;
    const auto trace = GenerateTrace(spec, decoder, TwoRegions(), 0, 3);
    uint64_t sequential = 0;
    for (size_t i = 1; i < trace.size(); ++i) {
      const uint64_t prev = *decoder.MediaToPhys(trace[i - 1].address);
      const uint64_t curr = *decoder.MediaToPhys(trace[i].address);
      sequential += (curr == prev + kCacheLineBytes);
    }
    return static_cast<double>(sequential) / static_cast<double>(trace.size());
  };
  // mlc-stream is fully sequential in GPA space; redis-a is mostly random.
  // (GPA-sequential lines are usually phys-sequential under 2 MiB regions.)
  EXPECT_GT(sequential_fraction("mlc-stream"), 0.95);
  EXPECT_LT(sequential_fraction("redis-a"), 0.45);
}

TEST(WorkloadTest, FootprintClampedToRam) {
  const DramGeometry geometry;
  SkylakeDecoder decoder(geometry);
  WorkloadSpec spec = *FindWorkload("terasort");
  spec.footprint_bytes = 1_GiB << 10;  // absurdly larger than RAM
  spec.accesses = 5000;
  const std::vector<VmRegion> regions = {
      VmRegion{MemoryType::kGuestRam, 0, 3_GiB, 256_MiB, PageSize::k2M}};
  const auto trace = GenerateTrace(spec, decoder, regions, 0, 4);
  for (const MemRequest& request : trace) {
    const uint64_t phys = *decoder.MediaToPhys(request.address);
    EXPECT_GE(phys, 3_GiB);
    EXPECT_LT(phys, 3_GiB + 256_MiB);
  }
}

TEST(WorkloadTest, DeterministicPerSeed) {
  const DramGeometry geometry;
  SkylakeDecoder decoder(geometry);
  WorkloadSpec spec = *FindWorkload("mysql");
  spec.accesses = 1000;
  const auto a = GenerateTrace(spec, decoder, TwoRegions(), 0, 9);
  const auto b = GenerateTrace(spec, decoder, TwoRegions(), 0, 9);
  const auto c = GenerateTrace(spec, decoder, TwoRegions(), 0, 10);
  ASSERT_EQ(a.size(), b.size());
  bool same = true;
  bool differs_from_c = false;
  for (size_t i = 0; i < a.size(); ++i) {
    same &= (a[i].address == b[i].address);
    differs_from_c |= !(a[i].address == c[i].address);
  }
  EXPECT_TRUE(same);
  EXPECT_TRUE(differs_from_c);
}

// The streaming and materialized forms are one implementation (workloads.h):
// Next() called size() times must equal GenerateTrace element-for-element —
// including across the LineCursor's fast/reset transitions — for both the
// cursor-accelerated Skylake path and the generic-decoder fallback.
TEST(WorkloadTest, StreamerMatchesGeneratedTraceElementForElement) {
  const DramGeometry geometry;
  const SkylakeDecoder skylake(geometry);
  const LinearDecoder linear(geometry);
  const auto regions = TwoRegions();
  for (const AddressDecoder* decoder :
       std::initializer_list<const AddressDecoder*>{&skylake, &linear}) {
    // mlc-stream is near-fully sequential (cursor fast path), redis-a is
    // zipfian-jumpy (cursor resets), terasort mixes the two.
    for (const char* name : {"mlc-stream", "redis-a", "terasort"}) {
      WorkloadSpec spec = *FindWorkload(name);
      spec.accesses = 30000;
      const auto trace = GenerateTrace(spec, *decoder, regions, 1, 77);
      TraceStreamer stream(spec, *decoder, regions, 1, 77);
      ASSERT_EQ(stream.size(), trace.size()) << decoder->name() << "/" << name;
      for (size_t i = 0; i < trace.size(); ++i) {
        const MemRequest& request = stream.Next();
        ASSERT_EQ(request.address, trace[i].address)
            << decoder->name() << "/" << name << " element " << i;
        ASSERT_EQ(request.is_write, trace[i].is_write)
            << decoder->name() << "/" << name << " element " << i;
        ASSERT_EQ(request.source_socket, trace[i].source_socket)
            << decoder->name() << "/" << name << " element " << i;
      }
    }
  }
}

}  // namespace
}  // namespace siloz
