// Tests for the Siloz hypervisor core (src/siloz): boot-time provisioning,
// VM lifecycle, allocation policy, EPT placement, isolation audit.
#include <gtest/gtest.h>
#include <memory>

#include "src/addr/decoder.h"
#include "src/base/units.h"
#include "src/ept/phys_memory.h"
#include "src/siloz/hypervisor.h"

namespace siloz {
namespace {

class HypervisorTest : public ::testing::Test {
 protected:
  HypervisorTest() : decoder_(geometry_) {}

  std::unique_ptr<SilozHypervisor> MakeBooted(SilozConfig config = {}) {
    auto hypervisor = std::make_unique<SilozHypervisor>(decoder_, memory_, config);
    Status status = hypervisor->Boot();
    [&] { ASSERT_TRUE(status.ok()) << status.error().ToString(); }();
    return hypervisor;
  }

  DramGeometry geometry_;
  SkylakeDecoder decoder_;
  FlatPhysMemory memory_;
};

TEST_F(HypervisorTest, BootProvisionsLogicalNodes) {
  auto hypervisor_owner = MakeBooted();
  SilozHypervisor& hypervisor = *hypervisor_owner;
  // 128 groups/socket, 2 host groups -> 1 host node + 126 guest nodes per
  // socket (§5.2).
  EXPECT_EQ(hypervisor.nodes().node_count(), 2u * (1 + 126));
  EXPECT_EQ(hypervisor.nodes().NodesOfKind(NodeKind::kGuestReserved).size(), 252u);
  EXPECT_EQ(hypervisor.AvailableGuestNodes(0).size(), 126u);
  ASSERT_TRUE(hypervisor.HostNode(1).ok());
  NumaNode& host = **hypervisor.nodes().Get(*hypervisor.HostNode(1));
  EXPECT_TRUE(host.has_cpus());
  EXPECT_EQ(host.physical_socket(), 1u);
  // Host cgroup exists and covers host nodes only.
  ASSERT_TRUE(hypervisor.cgroups().Get("host").ok());
}

TEST_F(HypervisorTest, BaselineBootIsOneNodePerSocket) {
  SilozConfig config;
  config.enabled = false;
  auto hypervisor_owner = MakeBooted(config);
  SilozHypervisor& hypervisor = *hypervisor_owner;
  EXPECT_EQ(hypervisor.nodes().node_count(), 2u);
  EXPECT_TRUE(hypervisor.AvailableGuestNodes(0).empty());
  EXPECT_EQ(hypervisor.ept_reserved_bytes(), 0u);
}

TEST_F(HypervisorTest, DoubleBootRejected) {
  auto hypervisor_owner = MakeBooted();
  SilozHypervisor& hypervisor = *hypervisor_owner;
  EXPECT_FALSE(hypervisor.Boot().ok());
}

TEST_F(HypervisorTest, EptBlockReservationMatchesPaperNumbers) {
  auto hypervisor_owner = MakeBooted();
  SilozHypervisor& hypervisor = *hypervisor_owner;
  // §5.4: b=32 row groups per socket reserved; 32 8 KiB rows per 1 GiB bank
  // = 0.024% of DRAM.
  const uint64_t expected = 2ull * 32 * geometry_.row_group_bytes();
  EXPECT_EQ(hypervisor.ept_reserved_bytes(), expected);
  const double fraction = static_cast<double>(hypervisor.ept_reserved_bytes()) /
                          static_cast<double>(geometry_.total_bytes());
  EXPECT_NEAR(fraction, 0.000244, 0.00003);
  // One row group of EPT pages per socket: 1.5 MiB / 4 KiB = 384 pages.
  EXPECT_EQ(hypervisor.ept_pool_free(0), 384u);
  EXPECT_EQ(hypervisor.ept_pool_free(1), 384u);
  ASSERT_EQ(hypervisor.ept_pool_ranges(0).size(), 1u);
  // The 31 guard row groups are offlined from the host node.
  NumaNode& host = **hypervisor.nodes().Get(*hypervisor.HostNode(0));
  EXPECT_EQ(host.allocator().offlined_bytes(), 31ull * geometry_.row_group_bytes());
}

TEST_F(HypervisorTest, CreateVmReservesWholeGroups) {
  auto hypervisor_owner = MakeBooted();
  SilozHypervisor& hypervisor = *hypervisor_owner;
  VmConfig config{.name = "a", .memory_bytes = 3_GiB, .socket = 0};
  Result<VmId> id = hypervisor.CreateVm(config);
  ASSERT_TRUE(id.ok()) << id.error().ToString();
  Vm& vm = **hypervisor.GetVm(*id);
  // 3 GiB needs 2 x 1.5 GiB groups.
  EXPECT_EQ(vm.guest_nodes().size(), 2u);
  EXPECT_EQ(hypervisor.AvailableGuestNodes(0).size(), 124u);
  // Its control group exists with exactly those nodes.
  Result<ControlGroup*> cgroup = hypervisor.cgroups().Get("vm-a");
  ASSERT_TRUE(cgroup.ok());
  for (uint32_t node : vm.guest_nodes()) {
    EXPECT_TRUE((*cgroup)->MayAllocateFrom(node));
  }
  // Regions are 2 MiB-backed guest RAM covering the full size.
  uint64_t total = 0;
  for (const VmRegion& region : vm.regions()) {
    EXPECT_EQ(region.type, MemoryType::kGuestRam);
    EXPECT_EQ(region.page_size, PageSize::k2M);
    total += region.bytes;
  }
  EXPECT_EQ(total, 3_GiB);
  // Audit passes on a fresh VM.
  EXPECT_TRUE(hypervisor.AuditVmIsolation(*id).ok());
}

TEST_F(HypervisorTest, VmMemoryStaysInItsGroups) {
  auto hypervisor_owner = MakeBooted();
  SilozHypervisor& hypervisor = *hypervisor_owner;
  Result<VmId> id = hypervisor.CreateVm({.name = "a", .memory_bytes = 1536_MiB, .socket = 0});
  ASSERT_TRUE(id.ok());
  Vm& vm = **hypervisor.GetVm(*id);
  const auto& groups = vm.guest_groups();
  for (const VmRegion& region : vm.regions()) {
    for (uint64_t offset = 0; offset < region.bytes; offset += kPage2M) {
      const uint32_t group = *hypervisor.group_map().GroupOfPhys(region.hpa + offset);
      EXPECT_NE(std::find(groups.begin(), groups.end(), group), groups.end())
          << "VM page outside its subarray groups";
    }
  }
}

TEST_F(HypervisorTest, TwoVmsGetDisjointGroups) {
  auto hypervisor_owner = MakeBooted();
  SilozHypervisor& hypervisor = *hypervisor_owner;
  Result<VmId> a = hypervisor.CreateVm({.name = "a", .memory_bytes = 3_GiB, .socket = 0});
  Result<VmId> b = hypervisor.CreateVm({.name = "b", .memory_bytes = 3_GiB, .socket = 0});
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  Vm& vm_a = **hypervisor.GetVm(*a);
  Vm& vm_b = **hypervisor.GetVm(*b);
  for (uint32_t group_a : vm_a.guest_groups()) {
    for (uint32_t group_b : vm_b.guest_groups()) {
      EXPECT_NE(group_a, group_b);
    }
  }
  EXPECT_TRUE(hypervisor.AuditVmIsolation(*a).ok());
  EXPECT_TRUE(hypervisor.AuditVmIsolation(*b).ok());
}

TEST_F(HypervisorTest, EptPagesComeFromProtectedRowGroup) {
  auto hypervisor_owner = MakeBooted();
  SilozHypervisor& hypervisor = *hypervisor_owner;
  Result<VmId> id = hypervisor.CreateVm({.name = "a", .memory_bytes = 1536_MiB, .socket = 0});
  ASSERT_TRUE(id.ok());
  Vm& vm = **hypervisor.GetVm(*id);
  const auto& pool_ranges = hypervisor.ept_pool_ranges(0);
  for (uint64_t page : vm.ept()->table_pages()) {
    bool inside = false;
    for (const PhysRange& range : pool_ranges) {
      inside |= range.Contains(page);
    }
    EXPECT_TRUE(inside) << "EPT page at " << page << " outside protected row group";
  }
}

TEST_F(HypervisorTest, AllocationPolicyEnforced) {
  auto hypervisor_owner = MakeBooted();
  SilozHypervisor& hypervisor = *hypervisor_owner;
  // 1024 MiB leaves slack in the VM's 1.5 GiB group for the policy probes.
  Result<VmId> id = hypervisor.CreateVm({.name = "a", .memory_bytes = 1024_MiB, .socket = 0});
  ASSERT_TRUE(id.ok());
  Vm& vm = **hypervisor.GetVm(*id);
  const uint32_t guest_node = vm.guest_nodes()[0];
  ControlGroup& vm_cgroup = **hypervisor.cgroups().Get("vm-a");
  ControlGroup& host_cgroup = **hypervisor.cgroups().Get("host");

  // Mediated allocations from guest-reserved nodes are denied even for the
  // owner (§5.1: mediated pages live in host groups).
  Result<uint64_t> mediated =
      hypervisor.AllocatePages(vm_cgroup, guest_node, kOrder4K, /*unmediated=*/false);
  ASSERT_FALSE(mediated.ok());
  EXPECT_EQ(mediated.error().code, ErrorCode::kPermissionDenied);

  // The host cgroup cannot touch guest-reserved nodes at all.
  Result<uint64_t> foreign =
      hypervisor.AllocatePages(host_cgroup, guest_node, kOrder4K, /*unmediated=*/true);
  ASSERT_FALSE(foreign.ok());
  EXPECT_EQ(foreign.error().code, ErrorCode::kPermissionDenied);

  // An unprivileged cgroup with the node in mems is still denied (no KVM).
  ControlGroup unprivileged("rogue", {guest_node}, /*kvm_privileged=*/false);
  Result<uint64_t> rogue =
      hypervisor.AllocatePages(unprivileged, guest_node, kOrder4K, /*unmediated=*/true);
  ASSERT_FALSE(rogue.ok());
  EXPECT_EQ(rogue.error().code, ErrorCode::kPermissionDenied);

  // The owning cgroup with the UNMEDIATED flag succeeds.
  Result<uint64_t> ok =
      hypervisor.AllocatePages(vm_cgroup, guest_node, kOrder4K, /*unmediated=*/true);
  ASSERT_TRUE(ok.ok());
  EXPECT_TRUE(hypervisor.FreePages(guest_node, *ok, kOrder4K).ok());
}

TEST_F(HypervisorTest, DestroyAndReleaseLifecycle) {
  auto hypervisor_owner = MakeBooted();
  SilozHypervisor& hypervisor = *hypervisor_owner;
  Result<VmId> id = hypervisor.CreateVm({.name = "a", .memory_bytes = 3_GiB, .socket = 0});
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(hypervisor.AvailableGuestNodes(0).size(), 124u);

  // Release before destroy is rejected.
  EXPECT_FALSE(hypervisor.ReleaseVmNodes(*id).ok());

  // Destroy frees memory but keeps the reservation (§5.3).
  ASSERT_TRUE(hypervisor.DestroyVm(*id).ok());
  EXPECT_EQ(hypervisor.AvailableGuestNodes(0).size(), 124u);
  EXPECT_TRUE(hypervisor.cgroups().Get("vm-a").ok());

  // Release returns the nodes and destroys the cgroup.
  ASSERT_TRUE(hypervisor.ReleaseVmNodes(*id).ok());
  EXPECT_EQ(hypervisor.AvailableGuestNodes(0).size(), 126u);
  EXPECT_FALSE(hypervisor.cgroups().Get("vm-a").ok());
  EXPECT_FALSE(hypervisor.GetVm(*id).ok());

  // The freed nodes are reusable.
  EXPECT_TRUE(hypervisor.CreateVm({.name = "b", .memory_bytes = 3_GiB, .socket = 0}).ok());
}

TEST_F(HypervisorTest, SocketCapacityExhaustion) {
  auto hypervisor_owner = MakeBooted();
  SilozHypervisor& hypervisor = *hypervisor_owner;
  // 126 guest groups = 189 GiB; a 190 GiB VM cannot fit on one socket.
  Result<VmId> id = hypervisor.CreateVm({.name = "big", .memory_bytes = 190_GiB, .socket = 0});
  ASSERT_FALSE(id.ok());
  EXPECT_EQ(id.error().code, ErrorCode::kNoMemory);
  // Nothing leaked: a large-but-fitting VM still works.
  EXPECT_TRUE(hypervisor.CreateVm({.name = "ok", .memory_bytes = 6_GiB, .socket = 0}).ok());
}

TEST_F(HypervisorTest, AuditDetectsEptCorruption) {
  auto hypervisor_owner = MakeBooted();
  SilozHypervisor& hypervisor = *hypervisor_owner;
  Result<VmId> id = hypervisor.CreateVm({.name = "a", .memory_bytes = 1536_MiB, .socket = 0});
  ASSERT_TRUE(id.ok());
  Vm& vm = **hypervisor.GetVm(*id);
  ASSERT_TRUE(hypervisor.AuditVmIsolation(*id).ok());

  // Flip a frame bit in the last table page (a PD full of leaf entries).
  const uint64_t pd_page = vm.ept()->table_pages().back();
  memory_.FlipBit(pd_page + 4, 2);  // bit 34 of entry 0

  const Status audit = hypervisor.AuditVmIsolation(*id);
  ASSERT_FALSE(audit.ok());
  EXPECT_EQ(audit.error().code, ErrorCode::kIntegrityViolation);
}

TEST_F(HypervisorTest, SecureEptModeDetectsCorruption) {
  SilozConfig config;
  config.ept_protection = EptProtection::kSecureEpt;
  auto hypervisor_owner = MakeBooted(config);
  SilozHypervisor& hypervisor = *hypervisor_owner;
  EXPECT_EQ(hypervisor.ept_reserved_bytes(), 0u);  // no guard rows needed
  Result<VmId> id = hypervisor.CreateVm({.name = "a", .memory_bytes = 1536_MiB, .socket = 0});
  ASSERT_TRUE(id.ok());
  Vm& vm = **hypervisor.GetVm(*id);
  ASSERT_TRUE(hypervisor.AuditVmIsolation(*id).ok());

  memory_.FlipBit(vm.ept()->table_pages().back() + 4, 2);
  const Status audit = hypervisor.AuditVmIsolation(*id);
  ASSERT_FALSE(audit.ok());
  EXPECT_EQ(audit.error().code, ErrorCode::kIntegrityViolation);
}

TEST_F(HypervisorTest, ArtificialGroupsForNonPowerOfTwo) {
  SilozConfig config;
  config.rows_per_subarray = 768;
  auto hypervisor_owner = MakeBooted(config);
  SilozHypervisor& hypervisor = *hypervisor_owner;
  EXPECT_TRUE(hypervisor.using_artificial_groups());
  EXPECT_EQ(hypervisor.effective_rows_per_subarray(), 1024u);
  // §6: n=4 guard rows per artificial group boundary, doubled to 8 media
  // rows per group by the B-side inversion images (rank/side accounting).
  EXPECT_EQ(hypervisor.artificial_guard_bytes(),
            256ull * 8 * geometry_.row_group_bytes());
  // Guest nodes lose the guard rows but still host VMs.
  EXPECT_TRUE(hypervisor.CreateVm({.name = "a", .memory_bytes = 1536_MiB, .socket = 0}).ok());
}

TEST_F(HypervisorTest, ArtificialGroupsCanBeDisallowed) {
  SilozConfig config;
  config.rows_per_subarray = 768;
  config.allow_artificial_groups = false;
  SilozHypervisor hypervisor(decoder_, memory_, config);
  const Status status = hypervisor.Boot();
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.error().code, ErrorCode::kUnsupported);
}

TEST_F(HypervisorTest, RomRegionIsUnmediatedAndMapped) {
  auto hypervisor_owner = MakeBooted();
  SilozHypervisor& hypervisor = *hypervisor_owner;
  Result<VmId> id = hypervisor.CreateVm(
      {.name = "a", .memory_bytes = 1024_MiB, .rom_bytes = 16_MiB, .socket = 0});
  ASSERT_TRUE(id.ok()) << id.error().ToString();
  Vm& vm = **hypervisor.GetVm(*id);
  const VmRegion* rom = nullptr;
  for (const VmRegion& region : vm.regions()) {
    if (region.type == MemoryType::kGuestRom) {
      rom = &region;
    }
  }
  ASSERT_NE(rom, nullptr);
  // ROM is unmediated (reads do not exit): it lives in the VM's own groups
  // and is EPT-mapped.
  EXPECT_EQ(rom->gpa, 1024_MiB);
  EXPECT_EQ(rom->bytes, 16_MiB);
  bool in_guest_group = false;
  const uint32_t group = *hypervisor.group_map().GroupOfPhys(rom->hpa);
  for (uint32_t g : vm.guest_groups()) {
    in_guest_group |= (g == group);
  }
  EXPECT_TRUE(in_guest_group);
  EXPECT_EQ(*vm.ept()->Translate(rom->gpa), rom->hpa);
  EXPECT_TRUE(hypervisor.AuditVmIsolation(*id).ok());
}

TEST_F(HypervisorTest, MmioRegionIsMediatedAndUnmapped) {
  auto hypervisor_owner = MakeBooted();
  SilozHypervisor& hypervisor = *hypervisor_owner;
  Result<VmId> id = hypervisor.CreateVm(
      {.name = "a", .memory_bytes = 1536_MiB, .mmio_bytes = 16_MiB, .socket = 0});
  ASSERT_TRUE(id.ok());
  Vm& vm = **hypervisor.GetVm(*id);
  const VmRegion* mmio = nullptr;
  for (const VmRegion& region : vm.regions()) {
    if (region.type == MemoryType::kMmio) {
      mmio = &region;
    }
  }
  ASSERT_NE(mmio, nullptr);
  // MMIO backing lives in a host-reserved group, not the VM's groups.
  const uint32_t group = *hypervisor.group_map().GroupOfPhys(mmio->hpa);
  for (uint32_t vm_group : vm.guest_groups()) {
    EXPECT_NE(group, vm_group);
  }
  // And it is not mapped in the EPT (accesses exit).
  EXPECT_FALSE(vm.ept()->Translate(mmio->gpa).ok());
}

TEST_F(HypervisorTest, VmOnSecondSocketUsesItsNodes) {
  auto hypervisor_owner = MakeBooted();
  SilozHypervisor& hypervisor = *hypervisor_owner;
  Result<VmId> id = hypervisor.CreateVm({.name = "a", .memory_bytes = 3_GiB, .socket = 1});
  ASSERT_TRUE(id.ok());
  Vm& vm = **hypervisor.GetVm(*id);
  for (uint32_t node_id : vm.guest_nodes()) {
    EXPECT_EQ((*hypervisor.nodes().Get(node_id))->physical_socket(), 1u);
  }
  EXPECT_EQ(hypervisor.AvailableGuestNodes(0).size(), 126u);
  EXPECT_EQ(hypervisor.AvailableGuestNodes(1).size(), 124u);
}

TEST_F(HypervisorTest, CreateVmValidatesArguments) {
  auto hypervisor_owner = MakeBooted();
  SilozHypervisor& hypervisor = *hypervisor_owner;
  EXPECT_FALSE(hypervisor.CreateVm({.name = "z", .memory_bytes = 0}).ok());
  EXPECT_FALSE(hypervisor.CreateVm({.name = "z", .memory_bytes = 3_MiB}).ok());  // not 2M-mult.
  EXPECT_FALSE(hypervisor.CreateVm({.name = "z", .memory_bytes = 2_MiB, .socket = 9}).ok());
}

TEST_F(HypervisorTest, StatSweepOptimization) {
  auto hypervisor_owner = MakeBooted();
  SilozHypervisor& hypervisor = *hypervisor_owner;
  // Siloz manages 254 nodes but periodic sweeps touch only the 2 host nodes.
  EXPECT_EQ(hypervisor.nodes().StatSweepNodeCount(false), 254u);
  EXPECT_EQ(hypervisor.nodes().StatSweepNodeCount(true), 2u);
}

}  // namespace
}  // namespace siloz
