// Tests for the buddy allocator, NUMA nodes, and control groups (src/hostmem).
#include <gtest/gtest.h>

#include "src/base/units.h"
#include "src/hostmem/buddy.h"
#include "src/hostmem/cgroup.h"
#include "src/hostmem/numa.h"

namespace siloz {
namespace {

// --- BuddyAllocator ---

TEST(BuddyTest, AllocateAndFreeRestoresPool) {
  BuddyAllocator buddy({PhysRange{0, 64_MiB}});
  EXPECT_EQ(buddy.total_bytes(), 64_MiB);
  EXPECT_EQ(buddy.free_bytes(), 64_MiB);

  Result<uint64_t> page = buddy.Allocate(kOrder4K);
  ASSERT_TRUE(page.ok());
  EXPECT_EQ(buddy.free_bytes(), 64_MiB - 4_KiB);
  ASSERT_TRUE(buddy.Free(*page, kOrder4K).ok());
  EXPECT_EQ(buddy.free_bytes(), 64_MiB);
  // Coalescing restored a maximal block.
  EXPECT_EQ(buddy.LargestFreeOrder(), 14);  // 64 MiB = order 14
}

TEST(BuddyTest, BlocksAreNaturallyAligned) {
  BuddyAllocator buddy({PhysRange{0, 256_MiB}});
  for (uint32_t order : {kOrder4K, kOrder2M, kOrder2M + 3, kOrder1G - 4}) {
    Result<uint64_t> block = buddy.Allocate(order);
    ASSERT_TRUE(block.ok());
    EXPECT_EQ(*block % OrderBytes(order), 0u) << "order " << order;
  }
}

TEST(BuddyTest, ExhaustionReturnsNoMemory) {
  BuddyAllocator buddy({PhysRange{0, 4_MiB}});
  ASSERT_TRUE(buddy.Allocate(kOrder2M).ok());
  ASSERT_TRUE(buddy.Allocate(kOrder2M).ok());
  EXPECT_FALSE(buddy.Allocate(kOrder2M).ok());
  EXPECT_FALSE(buddy.Allocate(kOrder4K).ok());
  EXPECT_EQ(buddy.free_bytes(), 0u);
}

TEST(BuddyTest, AllocateAtSpecificBlock) {
  BuddyAllocator buddy({PhysRange{0, 64_MiB}});
  ASSERT_TRUE(buddy.AllocateAt(6_MiB, kOrder2M).ok());
  EXPECT_FALSE(buddy.IsFree(6_MiB));
  EXPECT_TRUE(buddy.IsFree(4_MiB));
  // Double allocation fails.
  EXPECT_FALSE(buddy.AllocateAt(6_MiB, kOrder2M).ok());
  // Freeing restores.
  ASSERT_TRUE(buddy.Free(6_MiB, kOrder2M).ok());
  EXPECT_TRUE(buddy.IsFree(6_MiB));
  EXPECT_EQ(buddy.free_bytes(), 64_MiB);
}

TEST(BuddyTest, AllocateAtRejectsMisaligned) {
  BuddyAllocator buddy({PhysRange{0, 64_MiB}});
  EXPECT_FALSE(buddy.AllocateAt(3_MiB, kOrder2M).ok());
  EXPECT_FALSE(buddy.Free(3_MiB, kOrder2M).ok());
}

TEST(BuddyTest, DoubleFreeRejected) {
  BuddyAllocator buddy({PhysRange{0, 64_MiB}});
  Result<uint64_t> block = buddy.Allocate(kOrder2M);
  ASSERT_TRUE(block.ok());
  ASSERT_TRUE(buddy.Free(*block, kOrder2M).ok());
  const uint64_t free_before = buddy.free_bytes();
  Status again = buddy.Free(*block, kOrder2M);
  ASSERT_FALSE(again.ok());
  EXPECT_EQ(again.error().code, ErrorCode::kFailedPrecondition);
  EXPECT_NE(again.error().message.find("double free"), std::string::npos);
  // The rejection must not disturb the accounting it protects.
  EXPECT_EQ(buddy.free_bytes(), free_before);
}

TEST(BuddyTest, FreeRejectsOverlapWithFreeBlocks) {
  BuddyAllocator buddy({PhysRange{0, 64_MiB}});
  ASSERT_TRUE(buddy.AllocateAt(2_MiB, kOrder2M).ok());
  ASSERT_TRUE(buddy.Free(2_MiB, kOrder2M).ok());
  // A sub-block of a free block: the predecessor free block extends over it.
  EXPECT_FALSE(buddy.Free(2_MiB + 4_KiB, kOrder4K).ok());
  // A super-block containing free memory: a free block starts inside it.
  ASSERT_TRUE(buddy.AllocateAt(4_MiB, kOrder2M).ok());
  ASSERT_TRUE(buddy.AllocateAt(6_MiB, kOrder2M).ok());
  ASSERT_TRUE(buddy.Free(6_MiB, kOrder2M).ok());
  EXPECT_FALSE(buddy.Free(4_MiB, kOrder2M + 1).ok());
  // The genuinely-allocated block is still freeable.
  EXPECT_TRUE(buddy.Free(4_MiB, kOrder2M).ok());
}

TEST(BuddyTest, FreeRejectsOverlapWithOfflinedPages) {
  BuddyAllocator buddy({PhysRange{0, 8_MiB}});
  // Allocate the whole block, then free + offline one interior page so the
  // only overlap with [2 MiB, 4 MiB) is the offlined page.
  ASSERT_TRUE(buddy.AllocateAt(2_MiB, kOrder2M).ok());
  ASSERT_TRUE(buddy.Free(2_MiB + 4_KiB, kOrder4K).ok());
  ASSERT_TRUE(buddy.OfflinePage(2_MiB + 4_KiB).ok());
  const uint64_t free_before = buddy.free_bytes();
  Status freed = buddy.Free(2_MiB, kOrder2M);
  ASSERT_FALSE(freed.ok());
  EXPECT_EQ(freed.error().code, ErrorCode::kFailedPrecondition);
  EXPECT_EQ(buddy.free_bytes(), free_before);
}

TEST(BuddyTest, OfflinePageRemovesPermanently) {
  BuddyAllocator buddy({PhysRange{0, 8_MiB}});
  ASSERT_TRUE(buddy.OfflinePage(2_MiB).ok());
  EXPECT_EQ(buddy.offlined_bytes(), 4_KiB);
  EXPECT_EQ(buddy.total_bytes(), 8_MiB - 4_KiB);
  EXPECT_FALSE(buddy.IsFree(2_MiB));
  // The containing 2 MiB block can no longer be allocated whole.
  EXPECT_FALSE(buddy.AllocateAt(2_MiB, kOrder2M).ok());
  // But its other pages still can.
  EXPECT_TRUE(buddy.AllocateAt(2_MiB + 4_KiB, kOrder4K).ok());
  // Offlining an allocated page fails.
  EXPECT_FALSE(buddy.OfflinePage(2_MiB + 4_KiB).ok());
}

TEST(BuddyTest, DisjointRangesSupported) {
  BuddyAllocator buddy({PhysRange{0, 4_MiB}, PhysRange{1_GiB, 1_GiB + 4_MiB}});
  EXPECT_EQ(buddy.total_bytes(), 8_MiB);
  // Allocate everything; blocks come from both ranges.
  bool saw_high = false;
  for (int i = 0; i < 4; ++i) {
    Result<uint64_t> block = buddy.Allocate(kOrder2M);
    ASSERT_TRUE(block.ok());
    saw_high |= (*block >= 1_GiB);
  }
  EXPECT_TRUE(saw_high);
  EXPECT_FALSE(buddy.Allocate(kOrder4K).ok());
}

TEST(BuddyTest, UnalignedRangeCarvedCorrectly) {
  // A range starting at an odd 4 KiB offset still seeds correctly.
  BuddyAllocator buddy({PhysRange{4_KiB, 2_MiB}});
  EXPECT_EQ(buddy.total_bytes(), 2_MiB - 4_KiB);
  uint64_t allocated = 0;
  while (buddy.Allocate(kOrder4K).ok()) {
    allocated += 4_KiB;
  }
  EXPECT_EQ(allocated, 2_MiB - 4_KiB);
}

TEST(BuddyTest, SplitAndCoalesceStress) {
  BuddyAllocator buddy({PhysRange{0, 32_MiB}});
  std::vector<uint64_t> pages;
  for (int i = 0; i < 1000; ++i) {
    Result<uint64_t> page = buddy.Allocate(kOrder4K);
    ASSERT_TRUE(page.ok());
    pages.push_back(*page);
  }
  for (uint64_t page : pages) {
    ASSERT_TRUE(buddy.Free(page, kOrder4K).ok());
  }
  EXPECT_EQ(buddy.free_bytes(), 32_MiB);
  EXPECT_EQ(buddy.LargestFreeOrder(), 13);  // fully coalesced to 32 MiB
}

TEST(BuddyTest, AllocationOrderIsDeterministicLowestAddressFirst) {
  // Regression: the per-order free lists were unordered_sets, so the block
  // Allocate handed out depended on the hash order of whatever addresses had
  // been freed — identical call sequences placed VMs differently run to run.
  // With ordered free lists, Allocate always returns the lowest-addressed
  // block of the smallest sufficient order.
  BuddyAllocator buddy({PhysRange{0, 64_MiB}});
  for (uint64_t expected : {0 * 2_MiB, 1 * 2_MiB, 2 * 2_MiB, 3 * 2_MiB}) {
    Result<uint64_t> block = buddy.Allocate(kOrder2M);
    ASSERT_TRUE(block.ok());
    EXPECT_EQ(*block, expected);
  }
  // Free three of the four in scrambled order; the block at 2 MiB stays
  // allocated so the frees cannot coalesce past it.
  ASSERT_TRUE(buddy.Free(4_MiB, kOrder2M).ok());
  ASSERT_TRUE(buddy.Free(0, kOrder2M).ok());
  ASSERT_TRUE(buddy.Free(6_MiB, kOrder2M).ok());  // coalesces into [4 MiB, 8 MiB)
  // Refills come back lowest-address-first regardless of free order: the
  // exact-order block at 0 first, then the coalesced 4 MiB block is split.
  Result<uint64_t> first = buddy.Allocate(kOrder2M);
  Result<uint64_t> second = buddy.Allocate(kOrder2M);
  Result<uint64_t> third = buddy.Allocate(kOrder2M);
  ASSERT_TRUE(first.ok() && second.ok() && third.ok());
  EXPECT_EQ(*first, 0u);
  EXPECT_EQ(*second, 4_MiB);
  EXPECT_EQ(*third, 6_MiB);
}

TEST(BuddyTest, LargestFreeRunMergesAdjacentBlocksAcrossOrders) {
  BuddyAllocator buddy({PhysRange{0, 64_MiB}});
  EXPECT_EQ(buddy.LargestFreeRun(), 64_MiB);
  // Pin one 2 MiB block at 6 MiB: free space is [0, 6M) and [8M, 64M). The
  // 56 MiB run spans free blocks of several different orders (8M..16M,
  // 16M..32M, 32M..64M) even though the largest single block is 32 MiB —
  // free_bytes() - LargestFreeRun() is the fragmentation the fleet reports.
  ASSERT_TRUE(buddy.AllocateAt(6_MiB, kOrder2M).ok());
  EXPECT_EQ(buddy.free_bytes(), 62_MiB);
  EXPECT_EQ(buddy.LargestFreeRun(), 56_MiB);
  ASSERT_TRUE(buddy.Free(6_MiB, kOrder2M).ok());
  EXPECT_EQ(buddy.LargestFreeRun(), 64_MiB);
  // A fully allocated pool has no run at all.
  ASSERT_TRUE(buddy.Allocate(14).ok());  // one 64 MiB block
  EXPECT_EQ(buddy.LargestFreeRun(), 0u);
}

TEST(BuddyTest, LargestFreeRunStopsAtRangeGaps) {
  BuddyAllocator buddy({PhysRange{0, 4_MiB}, PhysRange{8_MiB, 24_MiB}});
  EXPECT_EQ(buddy.free_bytes(), 20_MiB);
  EXPECT_EQ(buddy.LargestFreeRun(), 16_MiB);  // [8M, 24M); the gap breaks the run
}

// --- NumaNode / NodeRegistry ---

TEST(NumaTest, NodeProperties) {
  NodeRegistry registry;
  NumaNode& host = registry.AddNode(NodeKind::kHostReserved, 0, 0,
                                    {PhysRange{0, 1536_MiB}}, true);
  NumaNode& guest = registry.AddNode(NodeKind::kGuestReserved, 0, 1,
                                     {PhysRange{1536_MiB, 3_GiB}}, false);
  EXPECT_EQ(host.id(), 0u);
  EXPECT_EQ(guest.id(), 1u);
  EXPECT_TRUE(host.has_cpus());
  EXPECT_FALSE(guest.has_cpus());
  EXPECT_EQ(guest.allocator().total_bytes(), 1536_MiB);
  EXPECT_NE(guest.ToString().find("guest-reserved"), std::string::npos);
  EXPECT_NE(host.ToString().find("cpus"), std::string::npos);
}

TEST(NumaTest, RegistryQueries) {
  NodeRegistry registry;
  registry.AddNode(NodeKind::kHostReserved, 0, 0, {PhysRange{0, 2_MiB}}, true);
  registry.AddNode(NodeKind::kGuestReserved, 0, 1, {PhysRange{2_MiB, 4_MiB}}, false);
  registry.AddNode(NodeKind::kGuestReserved, 1, 2, {PhysRange{4_MiB, 6_MiB}}, false);
  EXPECT_EQ(registry.node_count(), 3u);
  EXPECT_EQ(registry.NodesOfKind(NodeKind::kGuestReserved).size(), 2u);
  EXPECT_EQ(registry.NodesOnSocket(0).size(), 2u);
  EXPECT_FALSE(registry.Get(7).ok());
  ASSERT_TRUE(registry.Get(2).ok());
}

TEST(NumaTest, StatSweepSkipsGuestNodes) {
  // §5.3: Siloz avoids iterating guest-reserved nodes in periodic updates.
  NodeRegistry registry;
  registry.AddNode(NodeKind::kHostReserved, 0, 0, {PhysRange{0, 2_MiB}}, true);
  for (int i = 0; i < 126; ++i) {
    registry.AddNode(NodeKind::kGuestReserved, 0, i + 1,
                     {PhysRange{2_MiB + i * 2_MiB, 4_MiB + i * 2_MiB}}, false);
  }
  EXPECT_EQ(registry.StatSweepNodeCount(false), 127u);
  EXPECT_EQ(registry.StatSweepNodeCount(true), 1u);
}

// --- Control groups ---

TEST(CgroupTest, CreateLookupDestroy) {
  CgroupRegistry registry;
  Result<ControlGroup*> group = registry.Create("vm-a", {1, 2, 3}, true);
  ASSERT_TRUE(group.ok());
  EXPECT_TRUE((*group)->kvm_privileged());
  EXPECT_TRUE((*group)->MayAllocateFrom(2));
  EXPECT_FALSE((*group)->MayAllocateFrom(4));
  ASSERT_TRUE(registry.Get("vm-a").ok());
  EXPECT_FALSE(registry.Get("vm-b").ok());
  ASSERT_TRUE(registry.Destroy("vm-a").ok());
  EXPECT_FALSE(registry.Get("vm-a").ok());
  EXPECT_FALSE(registry.Destroy("vm-a").ok());
}

TEST(CgroupTest, DuplicateNameRejected) {
  CgroupRegistry registry;
  ASSERT_TRUE(registry.Create("vm-a", {1}, true).ok());
  EXPECT_FALSE(registry.Create("vm-a", {2}, true).ok());
}

TEST(CgroupTest, ExclusiveNodeReservation) {
  // §5.3: a guest-reserved node belongs to at most one control group.
  CgroupRegistry registry;
  ASSERT_TRUE(registry.Create("vm-a", {1, 2}, true).ok());
  EXPECT_FALSE(registry.Create("vm-b", {2, 3}, true).ok());
  // Destroying vm-a frees its nodes for reuse.
  ASSERT_TRUE(registry.Destroy("vm-a").ok());
  EXPECT_TRUE(registry.Create("vm-b", {2, 3}, true).ok());
}

}  // namespace
}  // namespace siloz
