// End-to-end integration tests: the paper's security claims (§7.1) exercised
// through the full stack — hypervisor placement, EPTs in DRAM-backed
// memory, Blacksmith-grade hammering, flip census, isolation audit.
#include <gtest/gtest.h>

#include <algorithm>

#include "src/attack/blacksmith.h"
#include "src/base/units.h"
#include "src/sim/machine.h"
#include "src/siloz/hypervisor.h"

namespace siloz {
namespace {

// TRR stays on for fuzzer-driven tests (the fuzzer must defeat it); the
// targeted double-sided hammers model a post-bypass attacker and disable it.
MachineConfig FaultConfig(bool trr_enabled = true) {
  MachineConfig config;
  config.fault_tracking = true;
  DimmProfile profile;
  profile.disturbance.threshold_mean = 2500.0;  // scaled-down threshold for test speed
  profile.disturbance.threshold_spread = 0.15;
  profile.trr.enabled = trr_enabled;
  profile.trr.act_threshold = 400;
  config.dimm_profiles = {profile};
  return config;
}

BlacksmithConfig FastFuzz(uint64_t seed) {
  BlacksmithConfig config;
  config.patterns = 5;
  config.rounds = 1200;
  config.min_pairs = 8;
  config.max_pairs = 14;
  config.seed = seed;
  return config;
}

// All physical ranges of a VM's guest-reserved subarray groups.
std::vector<PhysRange> GroupRanges(const SilozHypervisor& hypervisor, const Vm& vm) {
  std::vector<PhysRange> ranges;
  for (uint32_t group : vm.guest_groups()) {
    const auto& extents = hypervisor.group_map().RangesOf(group);
    ranges.insert(ranges.end(), extents.begin(), extents.end());
  }
  return ranges;
}

TEST(IntegrationTest, SilozContainsInterVmHammering) {
  // The headline result (Table 3): a fuzzing VM flips bits, but never
  // outside its own subarray groups.
  Machine machine(FaultConfig());
  SilozHypervisor hypervisor(machine.decoder(), machine.phys_memory(), SilozConfig{});
  ASSERT_TRUE(hypervisor.Boot().ok());
  Result<VmId> attacker = hypervisor.CreateVm({.name = "attacker", .memory_bytes = 3_GiB});
  ASSERT_TRUE(attacker.ok()) << attacker.error().ToString();
  Result<VmId> victim = hypervisor.CreateVm({.name = "victim", .memory_bytes = 3_GiB});
  ASSERT_TRUE(victim.ok());

  Vm& attacker_vm = **hypervisor.GetVm(*attacker);
  const std::vector<PhysRange> attacker_ranges = GroupRanges(hypervisor, attacker_vm);

  BlacksmithFuzzer fuzzer(FastFuzz(31));
  const FuzzReport report = fuzzer.Run(machine, attacker_ranges);
  ASSERT_FALSE(report.flips.empty()) << "fuzzer produced no flips; model too lenient";

  const FlipCensus census =
      ClassifyFlips(report.flips, hypervisor.group_map(), attacker_ranges);
  EXPECT_GT(census.inside, 0u);
  EXPECT_EQ(census.outside, 0u) << "inter-VM flip escaped the subarray group";
  // Victim VM and both EPTs are intact.
  EXPECT_TRUE(hypervisor.AuditVmIsolation(*attacker).ok());
  EXPECT_TRUE(hypervisor.AuditVmIsolation(*victim).ok());
}

TEST(IntegrationTest, BaselinePermitsCrossVmFlips) {
  // Without Siloz, two VMs can share a subarray: hammering the attacker's
  // edge rows flips bits in the victim's memory.
  Machine machine(FaultConfig(/*trr_enabled=*/false));
  SilozConfig baseline;
  baseline.enabled = false;
  SilozHypervisor hypervisor(machine.decoder(), machine.phys_memory(), baseline);
  ASSERT_TRUE(hypervisor.Boot().ok());
  Result<VmId> attacker = hypervisor.CreateVm({.name = "attacker", .memory_bytes = 2_GiB});
  ASSERT_TRUE(attacker.ok());
  Result<VmId> victim = hypervisor.CreateVm({.name = "victim", .memory_bytes = 2_GiB});
  ASSERT_TRUE(victim.ok());

  Vm& attacker_vm = **hypervisor.GetVm(*attacker);
  Vm& victim_vm = **hypervisor.GetVm(*victim);
  // Baseline placement is contiguous: the victim's run begins at (or just
  // past, if the attacker's own EPT pages landed between) the attacker's end.
  const uint64_t boundary = attacker_vm.regions()[0].hpa + attacker_vm.regions()[0].bytes;
  ASSERT_GE(victim_vm.regions()[0].hpa, boundary);

  // The attacker hammers its own topmost row in some bank; the next row of
  // that bank belongs to the victim. A second own-row alternation forces
  // real ACTs.
  const MediaAddress edge = *machine.decoder().PhysToMedia(boundary - kCacheLineBytes);
  MediaAddress decoy = edge;
  decoy.row = edge.row - 20;
  const uint64_t aggressors[] = {boundary - kCacheLineBytes,
                                 *machine.decoder().MediaToPhys(decoy)};
  HammerPhysAddresses(machine, aggressors, 15000);

  const std::vector<PhysFlip> flips = machine.DrainFlips();
  ASSERT_FALSE(flips.empty());
  bool escaped_attacker = false;
  for (const PhysFlip& flip : flips) {
    escaped_attacker |= (flip.phys >= boundary);
  }
  EXPECT_TRUE(escaped_attacker) << "expected cross-VM corruption on the baseline";
}

TEST(IntegrationTest, GuardRowsProtectEptRowGroup) {
  // §7.1 "EPT bit flip prevention": hammering the closest allocatable rows
  // around the protected block cannot disturb the EPT row group, because
  // the b-1 guard rows absorb the blast radius.
  Machine machine(FaultConfig(/*trr_enabled=*/false));
  SilozHypervisor hypervisor(machine.decoder(), machine.phys_memory(), SilozConfig{});
  ASSERT_TRUE(hypervisor.Boot().ok());
  Result<VmId> vm = hypervisor.CreateVm({.name = "tenant", .memory_bytes = 1536_MiB});
  ASSERT_TRUE(vm.ok());

  // The EPT block occupies rows [0, 32) of the first host group; the first
  // allocatable row after it is row 32. Hammer rows 32/34 (the nearest
  // attacker-reachable rows) hard.
  const auto& pool_range = hypervisor.ept_pool_ranges(0)[0];
  const MediaAddress ept_media = *machine.decoder().PhysToMedia(pool_range.begin);
  MediaAddress above = ept_media;
  above.row = 32;
  MediaAddress above2 = ept_media;
  above2.row = 34;
  const uint64_t aggressors[] = {*machine.decoder().MediaToPhys(above),
                                 *machine.decoder().MediaToPhys(above2)};
  HammerPhysAddresses(machine, aggressors, 15000);

  // Flips may appear around rows 32-36, but never inside the EPT row group.
  const std::vector<PhysFlip> flips = machine.DrainFlips();
  for (const PhysFlip& flip : flips) {
    EXPECT_FALSE(pool_range.Contains(flip.phys)) << "flip reached the protected EPT row";
  }
  EXPECT_TRUE(hypervisor.AuditVmIsolation(*vm).ok());
}

TEST(IntegrationTest, UnprotectedEptRowsFlipOnBaseline) {
  // Counterpart experiment: with EptProtection::kNone the EPT pages live in
  // ordinary rows; hammering their neighbours corrupts them.
  Machine machine(FaultConfig(/*trr_enabled=*/false));
  SilozConfig config;
  config.ept_protection = EptProtection::kNone;
  SilozHypervisor hypervisor(machine.decoder(), machine.phys_memory(), config);
  ASSERT_TRUE(hypervisor.Boot().ok());
  Result<VmId> vm = hypervisor.CreateVm({.name = "tenant", .memory_bytes = 1536_MiB});
  ASSERT_TRUE(vm.ok());
  Vm& tenant = **hypervisor.GetVm(*vm);

  // Hammer the rows adjacent to a leaf EPT table page. Unprotected table
  // pages land wherever the buddy allocator's (deterministic,
  // lowest-address-first) order puts them, which can be a bank's edge row —
  // prefer a page with both neighbor rows in range. The open-page controller
  // only re-ACTs on a row conflict, so the attack always needs at least two
  // same-bank aggressor rows; a page on the edge row gets the two rows on
  // its open side instead of a double-sided pair.
  const uint32_t last_row = machine.decoder().geometry().rows_per_bank - 1;
  const std::vector<uint64_t>& table_pages = tenant.ept()->table_pages();
  uint64_t ept_page = table_pages.back();
  MediaAddress ept_media = *machine.decoder().PhysToMedia(ept_page);
  for (uint64_t candidate : table_pages) {
    const MediaAddress media = *machine.decoder().PhysToMedia(candidate);
    if (media.row > 0 && media.row < last_row) {
      ept_page = candidate;
      ept_media = media;
      break;
    }
  }
  std::vector<uint64_t> aggressors;
  auto add_aggressor = [&](int64_t row) {
    if (row < 0 || row > static_cast<int64_t>(last_row)) {
      return;
    }
    MediaAddress neighbor = ept_media;
    neighbor.row = static_cast<uint32_t>(row);
    aggressors.push_back(*machine.decoder().MediaToPhys(neighbor));
  };
  add_aggressor(static_cast<int64_t>(ept_media.row) - 1);
  add_aggressor(static_cast<int64_t>(ept_media.row) + 1);
  if (aggressors.size() < 2) {
    add_aggressor(ept_media.row == 0 ? 2 : static_cast<int64_t>(ept_media.row) - 2);
  }
  ASSERT_EQ(aggressors.size(), 2u);
  HammerPhysAddresses(machine, aggressors, 25000);

  const std::vector<PhysFlip> flips = machine.DrainFlips();
  bool hit_ept_row = false;
  for (const PhysFlip& flip : flips) {
    hit_ept_row |= (flip.media.row == ept_media.row &&
                    flip.media.bank == ept_media.bank && flip.media.rank == ept_media.rank &&
                    flip.media.channel == ept_media.channel &&
                    flip.media.socket == ept_media.socket);
  }
  EXPECT_TRUE(hit_ept_row) << "expected flips in the unprotected EPT row";
}

TEST(IntegrationTest, MispresumedSubarraySizeBreaksContainment) {
  // §7.4: artificial (smaller-than-true) subarray groups do NOT provide
  // isolation. Presume 512-row subarrays on 1024-row silicon: two adjacent
  // groups share a true subarray, so edge hammering crosses group bounds.
  Machine machine(FaultConfig(/*trr_enabled=*/false));
  SilozConfig config;
  config.rows_per_subarray = 512;  // silicon truth is 1024 (DimmProfile default)
  SilozHypervisor hypervisor(machine.decoder(), machine.phys_memory(), config);
  ASSERT_TRUE(hypervisor.Boot().ok());

  // Hammer the top rows of presumed-group 2 (rows [1024, 1536)): row 1535
  // borders row 1536 within the same true subarray [1024, 2048).
  const uint32_t group = 2;
  const PhysRange range = hypervisor.group_map().RangesOf(group)[0];
  const MediaAddress base = *machine.decoder().PhysToMedia(range.begin);
  MediaAddress edge = base;
  edge.row = 1535;
  MediaAddress decoy = base;
  decoy.row = 1500;
  const uint64_t aggressors[] = {*machine.decoder().MediaToPhys(edge),
                                 *machine.decoder().MediaToPhys(decoy)};
  HammerPhysAddresses(machine, aggressors, 15000);

  const std::vector<PhysFlip> flips = machine.DrainFlips();
  ASSERT_FALSE(flips.empty());
  const FlipCensus census = ClassifyFlips(flips, hypervisor.group_map(), {&range, 1});
  EXPECT_GT(census.outside, 0u)
      << "expected containment failure with a mispresumed subarray size";
}

TEST(IntegrationTest, PatrolScrubFindsNoHiddenEscapes) {
  // The paper's 24-hour patrol-scrub check: after fuzzing, scrubbing the
  // whole pool surfaces any latent flips; none lie outside the attacker's
  // groups.
  Machine machine(FaultConfig());
  SilozHypervisor hypervisor(machine.decoder(), machine.phys_memory(), SilozConfig{});
  ASSERT_TRUE(hypervisor.Boot().ok());
  Result<VmId> attacker = hypervisor.CreateVm({.name = "attacker", .memory_bytes = 1536_MiB});
  ASSERT_TRUE(attacker.ok());
  Vm& attacker_vm = **hypervisor.GetVm(*attacker);
  const std::vector<PhysRange> ranges = GroupRanges(hypervisor, attacker_vm);

  BlacksmithFuzzer fuzzer(FastFuzz(37));
  FuzzReport report = fuzzer.Run(machine, ranges);
  machine.AdvanceClock(24ull * 3600 * 1'000'000'000);  // 24 hours
  machine.PatrolScrubAll();
  std::vector<PhysFlip> late_flips = machine.DrainFlips();
  report.flips.insert(report.flips.end(), late_flips.begin(), late_flips.end());

  const FlipCensus census = ClassifyFlips(report.flips, hypervisor.group_map(), ranges);
  EXPECT_EQ(census.outside, 0u);
}

}  // namespace
}  // namespace siloz
