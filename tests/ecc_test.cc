// Tests for the SEC-DED Hamming(72,64) codec (src/dram/ecc.h).
#include <gtest/gtest.h>

#include "src/base/rng.h"
#include "src/dram/ecc.h"

namespace siloz {
namespace {

TEST(EccTest, ZeroWordEncodesToZeroCheck) {
  // The device model relies on this: never-written rows read as all-zero
  // data with all-zero check bytes and must decode clean.
  EXPECT_EQ(EccEncode(0), 0u);
  const EccDecodeResult r = EccDecode(0, 0);
  EXPECT_EQ(r.outcome, EccOutcome::kClean);
  EXPECT_EQ(r.data, 0u);
}

TEST(EccTest, CleanRoundTrip) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    const uint64_t data = rng.NextU64();
    const uint8_t check = EccEncode(data);
    const EccDecodeResult r = EccDecode(data, check);
    EXPECT_EQ(r.outcome, EccOutcome::kClean);
    EXPECT_EQ(r.data, data);
  }
}

TEST(EccTest, CorrectsEverySingleDataBitError) {
  Rng rng(2);
  for (int trial = 0; trial < 50; ++trial) {
    const uint64_t data = rng.NextU64();
    const uint8_t check = EccEncode(data);
    for (unsigned bit = 0; bit < 64; ++bit) {
      const EccDecodeResult r = EccDecode(data ^ (1ull << bit), check);
      EXPECT_EQ(r.outcome, EccOutcome::kCorrected);
      EXPECT_EQ(r.data, data) << "bit " << bit;
    }
  }
}

TEST(EccTest, CorrectsEverySingleCheckBitError) {
  Rng rng(3);
  for (int trial = 0; trial < 50; ++trial) {
    const uint64_t data = rng.NextU64();
    const uint8_t check = EccEncode(data);
    for (unsigned bit = 0; bit < 8; ++bit) {
      const EccDecodeResult r = EccDecode(data, static_cast<uint8_t>(check ^ (1u << bit)));
      EXPECT_EQ(r.outcome, EccOutcome::kCorrected);
      EXPECT_EQ(r.data, data) << "check bit " << bit;
    }
  }
}

TEST(EccTest, DetectsEveryDoubleDataBitError) {
  Rng rng(4);
  for (int trial = 0; trial < 20; ++trial) {
    const uint64_t data = rng.NextU64();
    const uint8_t check = EccEncode(data);
    for (unsigned a = 0; a < 64; a += 3) {
      for (unsigned b = a + 1; b < 64; b += 5) {
        const EccDecodeResult r = EccDecode(data ^ (1ull << a) ^ (1ull << b), check);
        EXPECT_EQ(r.outcome, EccOutcome::kUncorrectable) << "bits " << a << "," << b;
      }
    }
  }
}

TEST(EccTest, DetectsMixedDataCheckDoubleError) {
  Rng rng(5);
  for (int trial = 0; trial < 200; ++trial) {
    const uint64_t data = rng.NextU64();
    const uint8_t check = EccEncode(data);
    const unsigned data_bit = static_cast<unsigned>(rng.NextBelow(64));
    const unsigned check_bit = static_cast<unsigned>(rng.NextBelow(8));
    const EccDecodeResult r =
        EccDecode(data ^ (1ull << data_bit), static_cast<uint8_t>(check ^ (1u << check_bit)));
    EXPECT_EQ(r.outcome, EccOutcome::kUncorrectable);
  }
}

TEST(EccTest, TripleErrorsCanMiscorrect) {
  // The security-relevant property (§3): >=2 aliased flips escape SEC-DED's
  // guarantees, and triples typically decode as "corrected" with wrong data.
  Rng rng(6);
  int miscorrected = 0;
  int detected = 0;
  const int trials = 2000;
  for (int i = 0; i < trials; ++i) {
    const uint64_t data = rng.NextU64();
    const uint8_t check = EccEncode(data);
    uint64_t corrupted = data;
    // Three distinct data-bit flips.
    unsigned bits[3];
    bits[0] = static_cast<unsigned>(rng.NextBelow(64));
    do {
      bits[1] = static_cast<unsigned>(rng.NextBelow(64));
    } while (bits[1] == bits[0]);
    do {
      bits[2] = static_cast<unsigned>(rng.NextBelow(64));
    } while (bits[2] == bits[0] || bits[2] == bits[1]);
    for (unsigned b : bits) {
      corrupted ^= 1ull << b;
    }
    const EccDecodeResult r = EccDecode(corrupted, check);
    if (r.outcome == EccOutcome::kCorrected && r.data != data) {
      ++miscorrected;
    } else if (r.outcome == EccOutcome::kUncorrectable) {
      ++detected;
    }
    // A triple error must never decode as clean with correct data.
    EXPECT_FALSE(r.outcome == EccOutcome::kClean);
  }
  // The odd-weight syndrome always claims "single-bit error": every triple is
  // either miscorrected or hits an impossible position.
  EXPECT_GT(miscorrected, trials / 2);
  EXPECT_EQ(miscorrected + detected, trials);
}

}  // namespace
}  // namespace siloz
