// Tests for the Rowhammer/RowPress disturbance model (src/dram/fault_model.h).
#include <gtest/gtest.h>

#include "src/base/units.h"
#include "src/dram/fault_model.h"

namespace siloz {
namespace {

constexpr uint32_t kRowsPerBank = 8192;
constexpr uint32_t kRowsPerSubarray = 1024;
constexpr uint32_t kHalfRowBits = 4096 * 8;

DisturbanceProfile FastProfile() {
  DisturbanceProfile profile;
  profile.threshold_mean = 1000.0;  // low threshold keeps tests fast
  profile.threshold_spread = 0.1;
  return profile;
}

DisturbanceModel MakeModel(DisturbanceProfile profile = FastProfile()) {
  return DisturbanceModel(profile, kRowsPerBank, kRowsPerSubarray, kHalfRowBits);
}

// Hammers `aggressor` with `acts` activations in a tight loop well inside one
// refresh window; returns all flips.
std::vector<InternalFlip> Hammer(DisturbanceModel& model, uint32_t aggressor, uint32_t acts,
                                 uint32_t bank = 0, uint64_t start_ns = 0) {
  std::vector<InternalFlip> flips;
  uint64_t t = start_ns;
  for (uint32_t i = 0; i < acts; ++i) {
    auto f = model.OnActivate(bank, HalfRowSide::kA, aggressor, t);
    flips.insert(flips.end(), f.begin(), f.end());
    t += 50;  // ~50 ns per ACT round-trip
  }
  return flips;
}

TEST(FaultModelTest, HammeringFlipsNeighbours) {
  DisturbanceModel model = MakeModel();
  const auto flips = Hammer(model, 500, 3000);
  ASSERT_FALSE(flips.empty());
  for (const InternalFlip& flip : flips) {
    // Victims are within distance 2, never the aggressor itself.
    EXPECT_NE(flip.victim_row, 500u);
    EXPECT_LE(flip.victim_row, 502u);
    EXPECT_GE(flip.victim_row, 498u);
    EXPECT_LT(flip.bit, kHalfRowBits);
  }
}

TEST(FaultModelTest, FewActivationsNeverFlip) {
  DisturbanceModel model = MakeModel();
  // Stay an order of magnitude under the threshold.
  EXPECT_TRUE(Hammer(model, 500, 80).empty());
}

TEST(FaultModelTest, DisturbanceNeverCrossesSubarrayBoundary) {
  // The core physics Siloz relies on (§2.5): rows 1023 and 1024 are in
  // different subarrays; hammering one cannot flip the other.
  DisturbanceModel model = MakeModel();
  const auto flips_low = Hammer(model, 1023, 20000);
  ASSERT_FALSE(flips_low.empty());
  for (const InternalFlip& flip : flips_low) {
    EXPECT_LT(flip.victim_row, 1024u) << "flip crossed subarray boundary";
  }
  const auto flips_high = Hammer(model, 1024, 20000);
  ASSERT_FALSE(flips_high.empty());
  for (const InternalFlip& flip : flips_high) {
    EXPECT_GE(flip.victim_row, 1024u) << "flip crossed subarray boundary";
  }
}

TEST(FaultModelTest, EdgeOfBankClipped) {
  DisturbanceModel model = MakeModel();
  const auto flips = Hammer(model, 0, 20000);
  for (const InternalFlip& flip : flips) {
    EXPECT_GE(flip.victim_row, 1u);
    EXPECT_LE(flip.victim_row, 2u);
  }
}

TEST(FaultModelTest, SlowHammeringIsRefreshedAway) {
  // Spread the same number of ACTs across many refresh windows: the victim
  // is refreshed between windows and never accumulates to the threshold.
  DisturbanceModel model = MakeModel();
  std::vector<InternalFlip> flips;
  uint64_t t = 0;
  for (uint32_t i = 0; i < 3000; ++i) {
    auto f = model.OnActivate(0, HalfRowSide::kA, 500, t);
    flips.insert(flips.end(), f.begin(), f.end());
    t += kRefreshWindowNs / 100;  // only ~100 ACTs land in any one window
  }
  EXPECT_TRUE(flips.empty());
}

TEST(FaultModelTest, ExplicitRefreshResetsDisturbance) {
  DisturbanceModel model = MakeModel();
  // Alternate hammering bursts with TRR-style refreshes of the victims.
  uint64_t t = 0;
  std::vector<InternalFlip> flips;
  for (int burst = 0; burst < 60; ++burst) {
    for (int i = 0; i < 100; ++i) {
      auto f = model.OnActivate(0, HalfRowSide::kA, 500, t);
      flips.insert(flips.end(), f.begin(), f.end());
      t += 50;
    }
    for (uint32_t victim : {498u, 499u, 501u, 502u}) {
      model.RefreshRow(0, HalfRowSide::kA, victim, t);
    }
  }
  EXPECT_TRUE(flips.empty());
}

TEST(FaultModelTest, ActRefreshesAggressorItself) {
  // Hammering rows 500 and 502 disturbs 501 from both sides, but activating
  // 501 itself resets it. Alternate: hammer 500, and periodically ACT 501.
  DisturbanceModel model = MakeModel();
  uint64_t t = 0;
  std::vector<InternalFlip> flips_at_501;
  for (int burst = 0; burst < 60; ++burst) {
    for (int i = 0; i < 100; ++i) {
      for (const auto& f : model.OnActivate(0, HalfRowSide::kA, 500, t)) {
        if (f.victim_row == 501) {
          flips_at_501.push_back(f);
        }
      }
      t += 50;
    }
    model.OnActivate(0, HalfRowSide::kA, 501, t);  // refreshes row 501
    t += 50;
  }
  EXPECT_TRUE(flips_at_501.empty());
}

TEST(FaultModelTest, DoubleSidedHammerTwiceAsEffective) {
  // Double-sided (aggressors on both sides of one victim) should flip with
  // roughly half the per-aggressor ACT count of single-sided.
  DisturbanceProfile profile = FastProfile();
  profile.threshold_spread = 0.0;
  profile.distance2_factor = 0.0;

  auto acts_until_flip_single = [&]() {
    DisturbanceModel model = MakeModel(profile);
    uint64_t t = 0;
    for (uint32_t act = 1; act <= 10000; ++act) {
      if (!model.OnActivate(0, HalfRowSide::kA, 500, t).empty()) {
        return act;
      }
      t += 50;
    }
    return 0u;
  }();

  auto acts_until_flip_double = [&]() {
    DisturbanceModel model = MakeModel(profile);
    uint64_t t = 0;
    for (uint32_t act = 1; act <= 10000; ++act) {
      const uint32_t aggressor = (act % 2 == 0) ? 499 : 501;
      auto flips = model.OnActivate(0, HalfRowSide::kA, aggressor, t);
      for (const auto& f : flips) {
        if (f.victim_row == 500) {
          return act;
        }
      }
      t += 50;
    }
    return 0u;
  }();

  ASSERT_GT(acts_until_flip_single, 0u);
  ASSERT_GT(acts_until_flip_double, 0u);
  EXPECT_NEAR(static_cast<double>(acts_until_flip_double),
              static_cast<double>(acts_until_flip_single),
              static_cast<double>(acts_until_flip_single) * 0.2);
  EXPECT_LT(acts_until_flip_double, acts_until_flip_single * 1.2);
}

TEST(FaultModelTest, RowPressFlipsWithLongOpenTimes) {
  // Holding a row open accumulates disturbance without ACTs (§2.5).
  DisturbanceModel model = MakeModel();
  std::vector<InternalFlip> flips;
  uint64_t t = 0;
  for (int i = 0; i < 100 && flips.empty(); ++i) {
    auto f = model.OnRowOpen(0, HalfRowSide::kA, 500, /*open_ns=*/60'000, t);
    flips.insert(flips.end(), f.begin(), f.end());
    t += 60'000;
  }
  EXPECT_FALSE(flips.empty());
}

TEST(FaultModelTest, ThresholdDeterministicAndSpread) {
  DisturbanceModel model_a = MakeModel();
  DisturbanceModel model_b = MakeModel();
  bool saw_different = false;
  double previous = -1.0;
  for (uint32_t row = 0; row < 100; ++row) {
    const double t_a = model_a.ThresholdFor(0, HalfRowSide::kA, row);
    EXPECT_DOUBLE_EQ(t_a, model_b.ThresholdFor(0, HalfRowSide::kA, row));
    EXPECT_GE(t_a, 1000.0 * 0.9 - 1e-6);
    EXPECT_LE(t_a, 1000.0 * 1.1 + 1e-6);
    if (previous >= 0 && t_a != previous) {
      saw_different = true;
    }
    previous = t_a;
  }
  EXPECT_TRUE(saw_different);
}

TEST(FaultModelTest, SidesAreIndependent) {
  DisturbanceModel model = MakeModel();
  const auto flips = Hammer(model, 500, 5000);
  ASSERT_FALSE(flips.empty());
  // Hammering only side A never flips side-B state: hammer side B's view of
  // the same rows and confirm its victims start from zero disturbance (they
  // flip only after the full single-sided count again).
  uint64_t t_start = 1'000'000'000;
  uint32_t acts_to_flip = 0;
  uint64_t t = t_start;
  DisturbanceModel fresh = MakeModel();
  for (uint32_t act = 1; act <= 5000; ++act) {
    if (!fresh.OnActivate(0, HalfRowSide::kB, 500, t).empty()) {
      acts_to_flip = act;
      break;
    }
    t += 50;
  }
  EXPECT_GT(acts_to_flip, 500u);
}

TEST(FaultModelTest, FlipEventCountMonotone) {
  DisturbanceModel model = MakeModel();
  EXPECT_EQ(model.total_flip_events(), 0u);
  Hammer(model, 500, 5000);
  const uint64_t after_first = model.total_flip_events();
  EXPECT_GT(after_first, 0u);
  Hammer(model, 3000, 5000);
  EXPECT_GT(model.total_flip_events(), after_first);
}

}  // namespace
}  // namespace siloz
