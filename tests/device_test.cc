// Tests for DramDevice (src/dram/device.h): storage, ECC path, hammering,
// TRR interplay, RowPress, patrol scrub.
#include <gtest/gtest.h>

#include <array>
#include <numeric>

#include "src/base/units.h"
#include "src/dram/device.h"

namespace siloz {
namespace {

DramGeometry SmallGeometry() {
  DramGeometry geometry;
  geometry.sockets = 1;
  geometry.channels_per_socket = 2;
  geometry.ranks_per_dimm = 2;
  geometry.banks_per_rank = 4;
  geometry.rows_per_bank = 8192;
  geometry.rows_per_subarray = 1024;
  return geometry;
}

DisturbanceProfile FastProfile() {
  DisturbanceProfile profile;
  profile.threshold_mean = 800.0;
  profile.threshold_spread = 0.1;
  return profile;
}

TrrConfig NoTrr() {
  TrrConfig config;
  config.enabled = false;
  return config;
}

DramDevice MakeDevice(TrrConfig trr = NoTrr(), RemapConfig remap = {}) {
  return DramDevice(SmallGeometry(), remap, FastProfile(), trr, "test");
}

TEST(DeviceTest, ReadBackWrittenData) {
  DramDevice device = MakeDevice();
  std::array<uint8_t, 64> data;
  std::iota(data.begin(), data.end(), 1);
  device.Write(0, 0, 100, 256, data, 1000);
  std::array<uint8_t, 64> out{};
  const ReadResult result = device.Read(0, 0, 100, 256, out, 2000);
  EXPECT_EQ(result.outcome, EccOutcome::kClean);
  EXPECT_EQ(out, data);
}

TEST(DeviceTest, UnwrittenRowsReadZero) {
  DramDevice device = MakeDevice();
  std::array<uint8_t, 128> out;
  out.fill(0xAB);
  const ReadResult result = device.Read(1, 3, 7000, 0, out, 1000);
  EXPECT_EQ(result.outcome, EccOutcome::kClean);
  for (uint8_t byte : out) {
    EXPECT_EQ(byte, 0);
  }
}

TEST(DeviceTest, SingleInjectedFlipIsCorrected) {
  DramDevice device = MakeDevice();
  std::array<uint8_t, 8> data{1, 2, 3, 4, 5, 6, 7, 8};
  device.Write(0, 0, 50, 0, data, 1000);
  device.InjectFlip(0, 0, 50, /*byte_in_row=*/3, /*bit_in_byte=*/5, 2000);

  std::array<uint8_t, 8> out{};
  const ReadResult result = device.Read(0, 0, 50, 0, out, 3000);
  EXPECT_EQ(result.outcome, EccOutcome::kCorrected);
  EXPECT_EQ(result.corrected_words, 1u);
  EXPECT_EQ(result.silently_corrupt_words, 0u);
  EXPECT_EQ(out, data);  // scrubbed back to truth

  // Second read is clean: the correction was written back.
  const ReadResult again = device.Read(0, 0, 50, 0, out, 4000);
  EXPECT_EQ(again.outcome, EccOutcome::kClean);
}

TEST(DeviceTest, DoubleFlipIsUncorrectable) {
  DramDevice device = MakeDevice();
  std::array<uint8_t, 8> data{10, 20, 30, 40, 50, 60, 70, 80};
  device.Write(0, 0, 51, 0, data, 1000);
  device.InjectFlip(0, 0, 51, 0, 0, 2000);
  device.InjectFlip(0, 0, 51, 7, 7, 2100);

  std::array<uint8_t, 8> out{};
  const ReadResult result = device.Read(0, 0, 51, 0, out, 3000);
  EXPECT_EQ(result.outcome, EccOutcome::kUncorrectable);
  EXPECT_EQ(result.uncorrectable_words, 1u);
  EXPECT_EQ(device.counters().uncorrectable_words, 1u);
}

TEST(DeviceTest, WriteOverwritesFlips) {
  DramDevice device = MakeDevice();
  std::array<uint8_t, 8> data{};
  device.Write(0, 0, 52, 0, data, 1000);
  device.InjectFlip(0, 0, 52, 2, 1, 2000);
  device.InjectFlip(0, 0, 52, 3, 2, 2100);
  std::array<uint8_t, 8> fresh{9, 9, 9, 9, 9, 9, 9, 9};
  device.Write(0, 0, 52, 0, fresh, 3000);
  std::array<uint8_t, 8> out{};
  const ReadResult result = device.Read(0, 0, 52, 0, out, 4000);
  EXPECT_EQ(result.outcome, EccOutcome::kClean);
  EXPECT_EQ(out, fresh);
}

TEST(DeviceTest, HammeringProducesLoggedFlips) {
  DramDevice device = MakeDevice();
  uint64_t t = 0;
  for (int i = 0; i < 4000; ++i) {
    device.Activate(0, 0, 500, t);
    device.Precharge(0, 0, t + 25);
    t += 50;
  }
  EXPECT_FALSE(device.flip_log().empty());
  EXPECT_GT(device.counters().bit_flips, 0u);
  for (const FlipRecord& flip : device.flip_log()) {
    EXPECT_EQ(flip.rank, 0u);
    EXPECT_EQ(flip.bank, 0u);
    // With identity-ish remapping (even rank / A-side unaffected; B-side
    // inverted), victims must be within the aggressor's media subarray.
    EXPECT_EQ(flip.media_row / 1024, 500u / 1024);
  }
}

TEST(DeviceTest, RowBufferHitsDoNotActivate) {
  DramDevice device = MakeDevice();
  uint64_t t = 0;
  for (int i = 0; i < 4000; ++i) {
    device.Activate(0, 0, 500, t);  // row stays open: one real ACT
    t += 50;
  }
  EXPECT_EQ(device.counters().activates, 1u);
  EXPECT_TRUE(device.flip_log().empty());
}

TEST(DeviceTest, FlipLandsInSameSubarrayGroupBothSides) {
  // With standard mirroring+inversion and 1024-row subarrays, flips stay in
  // the aggressor's media subarray on both half-row sides (§6).
  RemapConfig remap;  // mirroring + inversion on
  DramDevice device = MakeDevice(NoTrr(), remap);
  uint64_t t = 0;
  for (int i = 0; i < 6000; ++i) {
    device.Activate(1, 2, 2047, t);  // odd rank: mirroring active
    device.Precharge(1, 2, t + 25);
    t += 50;
  }
  ASSERT_FALSE(device.flip_log().empty());
  bool saw_b_side = false;
  for (const FlipRecord& flip : device.flip_log()) {
    EXPECT_EQ(flip.media_row / 1024, 2047u / 1024) << "cross-subarray flip at media row "
                                                   << flip.media_row;
    saw_b_side |= (flip.side == HalfRowSide::kB);
  }
  EXPECT_TRUE(saw_b_side);
}

TEST(DeviceTest, TrrSuppressesSimpleDoubleSidedHammer) {
  TrrConfig trr;
  trr.enabled = true;
  trr.tracker_entries = 12;
  trr.act_threshold = 200;  // react well before the ~800-ACT threshold
  DramDevice device = MakeDevice(trr);
  uint64_t t = 0;
  for (int i = 0; i < 20000; ++i) {
    const uint32_t aggressor = (i % 2 == 0) ? 499 : 501;
    device.Activate(0, 0, aggressor, t);
    device.Precharge(0, 0, t + 25);
    t += 50;
  }
  EXPECT_TRUE(device.flip_log().empty())
      << "TRR failed to stop a naive double-sided hammer";
  EXPECT_GT(device.counters().trr_victim_refreshes, 0u);
}

TEST(DeviceTest, ManySidedPatternDefeatsTrr) {
  // Enough decoys exhaust the tracker (Blacksmith-style); flips occur
  // despite TRR.
  TrrConfig trr;
  trr.enabled = true;
  trr.tracker_entries = 12;
  trr.act_threshold = 200;
  DramDevice device = MakeDevice(trr);
  uint64_t t = 0;
  for (int round = 0; round < 2500; ++round) {
    for (uint32_t pair = 0; pair < 16; ++pair) {  // 32 aggressors > 12 entries
      const uint32_t base = 500 + pair * 8;
      device.Activate(0, 0, base, t);
      device.Precharge(0, 0, t + 20);
      t += 40;
      device.Activate(0, 0, base + 2, t);
      device.Precharge(0, 0, t + 20);
      t += 40;
    }
  }
  EXPECT_FALSE(device.flip_log().empty()) << "many-sided pattern should defeat TRR";
}

TEST(DeviceTest, RowPressLongOpenFlips) {
  DramDevice device = MakeDevice();
  uint64_t t = 0;
  // Keep the row open ~200 us per activation: few ACTs, long open time.
  for (int i = 0; i < 600; ++i) {
    device.Activate(0, 0, 600, t);
    t += 200'000;
    device.Precharge(0, 0, t);
    device.Activate(0, 0, 4000, t);  // park the row buffer elsewhere briefly
    t += 100;
    device.Precharge(0, 0, t);
  }
  bool saw_rowpress_victim = false;
  for (const FlipRecord& flip : device.flip_log()) {
    if (flip.media_row >= 598 && flip.media_row <= 602) {
      saw_rowpress_victim = true;
    }
  }
  EXPECT_TRUE(saw_rowpress_victim);
}

TEST(DeviceTest, PatrolScrubRepairsSingleBitFlips) {
  DramDevice device = MakeDevice();
  std::array<uint8_t, 8> data{1, 1, 1, 1, 1, 1, 1, 1};
  device.Write(0, 0, 70, 0, data, 1000);
  device.Write(0, 0, 70, 64, data, 1100);
  device.InjectFlip(0, 0, 70, 1, 0, 2000);
  device.InjectFlip(0, 0, 70, 65, 3, 2100);
  EXPECT_EQ(device.PatrolScrub(3000), 2u);
  // Everything reads clean afterwards.
  std::array<uint8_t, 8> out{};
  EXPECT_EQ(device.Read(0, 0, 70, 0, out, 4000).outcome, EccOutcome::kClean);
  EXPECT_EQ(out, data);
  EXPECT_EQ(device.Read(0, 0, 70, 64, out, 5000).outcome, EccOutcome::kClean);
  EXPECT_EQ(out, data);
}

TEST(DeviceTest, CountersTrackOperations) {
  DramDevice device = MakeDevice();
  std::array<uint8_t, 8> buf{};
  device.Write(0, 0, 10, 0, buf, 1000);
  device.Read(0, 0, 10, 0, buf, 2000);
  device.Read(0, 0, 11, 0, buf, 3000);
  const DeviceCounters& counters = device.counters();
  EXPECT_EQ(counters.writes, 1u);
  EXPECT_EQ(counters.reads, 2u);
  EXPECT_EQ(counters.activates, 2u);  // row 10 (write+read share it), row 11
}

TEST(DeviceTest, RefreshTicksAdvanceWithTime) {
  DramDevice device = MakeDevice();
  device.AdvanceTo(10 * kRefreshIntervalNs);
  EXPECT_EQ(device.counters().ref_ticks, 10u);
}

}  // namespace
}  // namespace siloz
