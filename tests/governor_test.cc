// Tests for the mediated-access governor (§5.1) and the controller's
// refresh-overhead model (§2.3).
#include <gtest/gtest.h>

#include "src/addr/decoder.h"
#include "src/base/units.h"
#include "src/memctl/controller.h"
#include "src/memctl/engine.h"
#include "src/siloz/mediated_governor.h"

namespace siloz {
namespace {

// --- MediatedAccessGovernor ---

TEST(GovernorTest, OrdinaryRatesPass) {
  // A virtio-style guest causing ~1K exit accesses per window is untouched.
  MediatedAccessGovernor governor(GovernorConfig{});
  uint64_t t = 0;
  for (int window = 0; window < 5; ++window) {
    for (int i = 0; i < 1000; ++i) {
      EXPECT_TRUE(governor.Charge(1, t).ok());
      t += kRefreshWindowNs / 2000;
    }
  }
  EXPECT_EQ(governor.throttled(1), 0u);
  EXPECT_EQ(governor.admitted(1), 5000u);
}

TEST(GovernorTest, HammeringRateThrottled) {
  // A confused-deputy attacker needs tens of thousands of ACTs per window;
  // the budget cuts it off three orders of magnitude short.
  MediatedAccessGovernor governor(GovernorConfig{});
  uint64_t t = 0;
  uint64_t admitted_in_window = 0;
  for (int i = 0; i < 100000; ++i) {
    admitted_in_window += governor.Charge(1, t).ok();
    t += 50;  // hammering pace
  }
  EXPECT_EQ(admitted_in_window, governor.max_acts_per_window());
  EXPECT_GT(governor.throttled(1), 90000u);
  // The permitted rate is far below any modern Rowhammer threshold.
  EXPECT_LT(governor.max_acts_per_window(), 10000u);
}

TEST(GovernorTest, BudgetResetsEachRefreshWindow) {
  MediatedAccessGovernor governor(GovernorConfig{.acts_per_refresh_window = 10});
  uint64_t t = 0;
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(governor.Charge(1, t).ok());
  }
  EXPECT_FALSE(governor.Charge(1, t).ok());
  // Next window: fresh budget (the hammered rows were refreshed meanwhile).
  t += kRefreshWindowNs;
  EXPECT_TRUE(governor.Charge(1, t).ok());
}

TEST(GovernorTest, PerVmIsolation) {
  MediatedAccessGovernor governor(GovernorConfig{.acts_per_refresh_window = 5});
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(governor.Charge(1, 0).ok());
  }
  EXPECT_FALSE(governor.Charge(1, 0).ok());
  // VM 2 is unaffected by VM 1's exhaustion.
  EXPECT_TRUE(governor.Charge(2, 0).ok());
  EXPECT_EQ(governor.throttled(2), 0u);
}

// --- Refresh overhead model ---

TEST(RefreshModelTest, StealsExpectedBandwidthFraction) {
  const DramGeometry geometry;
  SkylakeDecoder decoder(geometry);
  auto bandwidth = [&](bool model_refresh) {
    DdrTimings timings;
    timings.model_refresh = model_refresh;
    MemoryController c0(geometry, 0, timings);
    MemoryController c1(geometry, 1, timings);
    MemoryController* controllers[] = {&c0, &c1};
    std::vector<MemRequest> stream;
    for (int i = 0; i < 40000; ++i) {
      MemRequest request;
      request.address = *decoder.PhysToMedia(static_cast<uint64_t>(i) * 64);
      stream.push_back(request);
    }
    EngineConfig config;
    config.max_outstanding = 64;
    return RunClosedLoop(stream, controllers, config).bandwidth_gib_per_s();
  };
  const double with_refresh = bandwidth(true);
  const double without_refresh = bandwidth(false);
  const double stolen = 1.0 - with_refresh / without_refresh;
  // tRFC / tREFI = 350/7800 ~ 4.5%; staggering and overlap soften it.
  EXPECT_GT(stolen, 0.005);
  EXPECT_LT(stolen, 0.08);
}

TEST(RefreshModelTest, SomeRequestsSeeRefreshTail) {
  // A latency-bound stream must occasionally catch the rank mid-REF and
  // wait up to tRFC extra.
  const DramGeometry geometry;
  SkylakeDecoder decoder(geometry);
  MemoryController controller(geometry, 0);
  double cursor = 0.0;
  double max_latency = 0.0;
  double min_latency = 1e18;
  for (int i = 0; i < 3000; ++i) {
    MemRequest request;
    request.address = *decoder.PhysToMedia(static_cast<uint64_t>(i) * 64 * 193);
    const double done = controller.Serve(request, cursor);
    max_latency = std::max(max_latency, done - cursor);
    min_latency = std::min(min_latency, done - cursor);
    cursor = done;
  }
  EXPECT_GT(max_latency, min_latency + 100.0) << "expected a refresh-induced tail";
  EXPECT_LT(max_latency, min_latency + controller.timings().t_rfc + 50.0);
}

}  // namespace
}  // namespace siloz
