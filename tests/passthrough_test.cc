// Tests for passthrough-IO / IOMMU support and host shutdown (§5.1, §5.3).
#include <gtest/gtest.h>
#include <memory>

#include "src/addr/decoder.h"
#include "src/base/units.h"
#include "src/ept/phys_memory.h"
#include "src/siloz/hypervisor.h"

namespace siloz {
namespace {

class PassthroughTest : public ::testing::Test {
 protected:
  PassthroughTest() : decoder_(geometry_) {}

  std::unique_ptr<SilozHypervisor> MakeBooted(SilozConfig config = {}) {
    auto hypervisor = std::make_unique<SilozHypervisor>(decoder_, memory_, config);
    Status status = hypervisor->Boot();
    [&] { ASSERT_TRUE(status.ok()) << status.error().ToString(); }();
    return hypervisor;
  }

  DramGeometry geometry_;
  SkylakeDecoder decoder_;
  FlatPhysMemory memory_;
};

TEST_F(PassthroughTest, AssignAndDmaWithinGuestRanges) {
  auto hypervisor_owner = MakeBooted();
  SilozHypervisor& hypervisor = *hypervisor_owner;
  Result<VmId> vm = hypervisor.CreateVm({.name = "a", .memory_bytes = 1536_MiB, .socket = 0});
  ASSERT_TRUE(vm.ok());
  Result<uint32_t> nic = hypervisor.AssignPassthroughDevice(*vm, "nic0");
  ASSERT_TRUE(nic.ok()) << nic.error().ToString();

  // DMA inside the guest's RAM: translated to the region's HPA.
  const VmRegion& ram = (*hypervisor.GetVm(*vm))->regions()[0];
  Result<uint64_t> hpa = hypervisor.DeviceDma(*nic, 64 * kPage2M + 0x100);
  ASSERT_TRUE(hpa.ok()) << hpa.error().ToString();
  EXPECT_EQ(*hpa, ram.hpa + 64 * kPage2M + 0x100);
  // And the target is inside the VM's subarray groups.
  const uint32_t group = *hypervisor.group_map().GroupOfPhys(*hpa);
  EXPECT_EQ(group, (*hypervisor.GetVm(*vm))->guest_groups()[0]);
}

TEST_F(PassthroughTest, DmaOutsideGuestIsBlocked) {
  auto hypervisor_owner = MakeBooted();
  SilozHypervisor& hypervisor = *hypervisor_owner;
  Result<VmId> vm = hypervisor.CreateVm({.name = "a", .memory_bytes = 1536_MiB, .socket = 0});
  ASSERT_TRUE(vm.ok());
  Result<uint32_t> nic = hypervisor.AssignPassthroughDevice(*vm, "nic0");
  ASSERT_TRUE(nic.ok());

  // IOVAs beyond the guest's memory are unmapped: the IOMMU blocks them.
  Result<uint64_t> beyond = hypervisor.DeviceDma(*nic, 100_GiB);
  ASSERT_FALSE(beyond.ok());
  EXPECT_EQ(beyond.error().code, ErrorCode::kPermissionDenied);
}

TEST_F(PassthroughTest, IommuTablesComeFromProtectedPool) {
  auto hypervisor_owner = MakeBooted();
  SilozHypervisor& hypervisor = *hypervisor_owner;
  const size_t pool_before = hypervisor.ept_pool_free(0);
  Result<VmId> vm = hypervisor.CreateVm({.name = "a", .memory_bytes = 1536_MiB, .socket = 0});
  ASSERT_TRUE(vm.ok());
  Result<uint32_t> nic = hypervisor.AssignPassthroughDevice(*vm, "nic0");
  ASSERT_TRUE(nic.ok());
  EXPECT_LT(hypervisor.ept_pool_free(0), pool_before);
  EXPECT_TRUE(hypervisor.AuditDeviceIsolation(*nic).ok());
}

TEST_F(PassthroughTest, CorruptedIommuEntryCaughtByDmaBoundsCheck) {
  SilozConfig config;
  config.ept_protection = EptProtection::kNone;  // tables hammerable
  auto hypervisor_owner = MakeBooted(config);
  SilozHypervisor& hypervisor = *hypervisor_owner;
  Result<VmId> vm = hypervisor.CreateVm({.name = "a", .memory_bytes = 1536_MiB, .socket = 0});
  ASSERT_TRUE(vm.ok());
  Result<uint32_t> nic = hypervisor.AssignPassthroughDevice(*vm, "nic0");
  ASSERT_TRUE(nic.ok());
  ASSERT_TRUE(hypervisor.DeviceDma(*nic, 0).ok());

  // Flip a high frame bit in the leaf table (last-allocated page, a PD):
  // IOVA 0's translation jumps 16 GiB away, outside the VM's groups. The
  // DMA bounds check must flag the escape rather than let the DMA through.
  // Table allocation order: PML4, PDPT, then the PD covering IOVA 0.
  const std::vector<uint64_t> pages = *hypervisor.DeviceTablePages(*nic);
  ASSERT_GE(pages.size(), 3u);
  memory_.FlipBit(pages[2] + 4, 2);  // bit 34 of the PD's entry 0
  Result<uint64_t> dma = hypervisor.DeviceDma(*nic, 0);
  ASSERT_FALSE(dma.ok());
  EXPECT_EQ(dma.error().code, ErrorCode::kIntegrityViolation);
  // The audit sees the same corruption.
  EXPECT_FALSE(hypervisor.AuditDeviceIsolation(*nic).ok());
}

TEST_F(PassthroughTest, RemoveDeviceReturnsPoolPages) {
  auto hypervisor_owner = MakeBooted();
  SilozHypervisor& hypervisor = *hypervisor_owner;
  Result<VmId> vm = hypervisor.CreateVm({.name = "a", .memory_bytes = 1536_MiB, .socket = 0});
  ASSERT_TRUE(vm.ok());
  const size_t pool_before = hypervisor.ept_pool_free(0);
  Result<uint32_t> nic = hypervisor.AssignPassthroughDevice(*vm, "nic0");
  ASSERT_TRUE(nic.ok());
  ASSERT_LT(hypervisor.ept_pool_free(0), pool_before);
  ASSERT_TRUE(hypervisor.RemovePassthroughDevice(*nic).ok());
  EXPECT_EQ(hypervisor.ept_pool_free(0), pool_before);
  EXPECT_FALSE(hypervisor.DeviceDma(*nic, 0).ok());
  EXPECT_FALSE(hypervisor.RemovePassthroughDevice(*nic).ok());
}

TEST_F(PassthroughTest, SecureIommuDetectsCorruption) {
  SilozConfig config;
  config.ept_protection = EptProtection::kSecureEpt;
  auto hypervisor_owner = MakeBooted(config);
  SilozHypervisor& hypervisor = *hypervisor_owner;
  Result<VmId> vm = hypervisor.CreateVm({.name = "a", .memory_bytes = 1536_MiB, .socket = 0});
  ASSERT_TRUE(vm.ok());
  Result<uint32_t> nic = hypervisor.AssignPassthroughDevice(*vm, "nic0");
  ASSERT_TRUE(nic.ok());
  ASSERT_TRUE(hypervisor.DeviceDma(*nic, 0).ok());

  // Corrupt one byte of the IOMMU root (we know it is a 4 KiB page in host
  // memory; find it by the audit failing afterwards).
  Vm& tenant = **hypervisor.GetVm(*vm);
  // The VM's own EPT pages and the IOMMU's pages are distinct allocations;
  // flip a bit in the *EPT* root first to confirm independence:
  memory_.FlipBit(tenant.ept()->table_pages()[0] + 8, 3);
  EXPECT_FALSE(hypervisor.AuditVmIsolation(*vm).ok());
  EXPECT_TRUE(hypervisor.AuditDeviceIsolation(*nic).ok()) << "IOMMU unaffected by EPT flip";
}

TEST_F(PassthroughTest, DeviceOnDestroyedVmRejected) {
  auto hypervisor_owner = MakeBooted();
  SilozHypervisor& hypervisor = *hypervisor_owner;
  Result<VmId> vm = hypervisor.CreateVm({.name = "a", .memory_bytes = 1536_MiB, .socket = 0});
  ASSERT_TRUE(vm.ok());
  ASSERT_TRUE(hypervisor.DestroyVm(*vm).ok());
  Result<uint32_t> nic = hypervisor.AssignPassthroughDevice(*vm, "nic0");
  ASSERT_FALSE(nic.ok());
  EXPECT_EQ(nic.error().code, ErrorCode::kFailedPrecondition);
  EXPECT_FALSE(hypervisor.AssignPassthroughDevice(999, "nic1").ok());
  EXPECT_FALSE(hypervisor.DeviceDma(42, 0).ok());
  EXPECT_FALSE(hypervisor.AuditDeviceIsolation(42).ok());
}

TEST_F(PassthroughTest, HostShutdownReleasesEverything) {
  auto hypervisor_owner = MakeBooted();
  SilozHypervisor& hypervisor = *hypervisor_owner;
  for (int i = 0; i < 4; ++i) {
    Result<VmId> vm = hypervisor.CreateVm(
        {.name = "vm" + std::to_string(i), .memory_bytes = 3_GiB, .socket = 0});
    ASSERT_TRUE(vm.ok());
    ASSERT_TRUE(hypervisor.AssignPassthroughDevice(*vm, "dev").ok());
  }
  EXPECT_EQ(hypervisor.AvailableGuestNodes(0).size(), 126u - 8);
  ASSERT_TRUE(hypervisor.HostShutdown().ok());
  // All nodes free, all cgroups gone, pool restored.
  EXPECT_EQ(hypervisor.AvailableGuestNodes(0).size(), 126u);
  EXPECT_FALSE(hypervisor.cgroups().Get("vm-vm0").ok());
  EXPECT_EQ(hypervisor.ept_pool_free(0), 384u);
  // Fresh VMs can be created afterwards.
  EXPECT_TRUE(hypervisor.CreateVm({.name = "fresh", .memory_bytes = 3_GiB}).ok());
}

}  // namespace
}  // namespace siloz
