// Tests for the Misra-Gries TRR tracker (src/dram/trr.h).
#include <gtest/gtest.h>

#include <algorithm>

#include "src/dram/trr.h"

namespace siloz {
namespace {

TrrConfig SmallConfig() {
  TrrConfig config;
  config.tracker_entries = 4;
  config.act_threshold = 10;
  config.targets_per_ref = 1;
  return config;
}

TEST(TrrTest, TracksHotRow) {
  TrrTracker tracker(SmallConfig());
  for (int i = 0; i < 100; ++i) {
    tracker.OnActivate(42);
  }
  const auto targets = tracker.SelectTargets();
  ASSERT_EQ(targets.size(), 1u);
  EXPECT_EQ(targets[0], 42u);
}

TEST(TrrTest, IgnoresColdRows) {
  TrrTracker tracker(SmallConfig());
  for (uint32_t row = 0; row < 4; ++row) {
    tracker.OnActivate(row);  // one ACT each, below act_threshold
  }
  EXPECT_TRUE(tracker.SelectTargets().empty());
}

TEST(TrrTest, SelectsHottestFirst) {
  TrrConfig config = SmallConfig();
  config.targets_per_ref = 2;
  TrrTracker tracker(config);
  for (int i = 0; i < 50; ++i) {
    tracker.OnActivate(1);
  }
  for (int i = 0; i < 80; ++i) {
    tracker.OnActivate(2);
  }
  const auto targets = tracker.SelectTargets();
  ASSERT_EQ(targets.size(), 2u);
  EXPECT_EQ(targets[0], 2u);
  EXPECT_EQ(targets[1], 1u);
}

TEST(TrrTest, TargetCounterResetsAfterSelection) {
  TrrTracker tracker(SmallConfig());
  for (int i = 0; i < 100; ++i) {
    tracker.OnActivate(42);
  }
  EXPECT_FALSE(tracker.SelectTargets().empty());
  // Counter was reset; without further ACTs the row is no longer a target.
  EXPECT_TRUE(tracker.SelectTargets().empty());
  // Continued hammering re-arms it.
  for (int i = 0; i < 100; ++i) {
    tracker.OnActivate(42);
  }
  EXPECT_FALSE(tracker.SelectTargets().empty());
}

TEST(TrrTest, ManySidedDecoysEvictTrueAggressor) {
  // The Blacksmith bypass (§2.5): rotating through more distinct rows than
  // the tracker has entries decays the true aggressor's counter.
  TrrTracker tracker(SmallConfig());
  for (int round = 0; round < 50; ++round) {
    tracker.OnActivate(42);  // true aggressor
    for (uint32_t decoy = 100; decoy < 110; ++decoy) {
      tracker.OnActivate(decoy);  // 10 decoys vs 4 tracker entries
    }
  }
  // The aggressor's count never reaches act_threshold: decoy insertions keep
  // decrementing it.
  const auto targets = tracker.SelectTargets();
  EXPECT_TRUE(std::find(targets.begin(), targets.end(), 42u) == targets.end());
}

TEST(TrrTest, TrackerSizeBounded) {
  TrrTracker tracker(SmallConfig());
  for (uint32_t row = 0; row < 1000; ++row) {
    tracker.OnActivate(row);
  }
  EXPECT_LE(tracker.tracked_rows(), 4u);
}

}  // namespace
}  // namespace siloz
