// Fleet-churn soak (ctest -L slow / -L fleet): ten thousand VMs through the
// full 8-socket fleet platform, sustained multi-thousand concurrency, clean
// drain. Built with sanitizers in the CI soak leg, this is the leak check
// for the whole CreateVm/MigrateVm/DestroyVm churn path.
#include <gtest/gtest.h>

#include "src/sim/fleet.h"

namespace siloz {
namespace {

TEST(FleetSoak, TenThousandVmChurnSustainsThousandsAndDrainsClean) {
  FleetConfig config;
  config.policy = AdmissionPolicy::kDefrag;
  config.threads = 0;              // auto: $SILOZ_THREADS or hardware
  config.duration_s = 400.0;
  config.arrivals_per_s = 25.0;    // ~10k arrivals
  config.min_lifetime_s = 60.0;
  config.max_lifetime_s = 300.0;
  const Result<FleetReport> report = RunFleetChurn(config);
  ASSERT_TRUE(report.ok()) << report.error().ToString();
  EXPECT_GE(report->trace_vms, 9000u);
  EXPECT_GE(report->peak_concurrency, 2000u);
  EXPECT_TRUE(report->drained_clean) << report->drain_diff;
  ASSERT_EQ(report->sockets.size(), 8u);
  uint64_t admitted = 0;
  for (const FleetSocketStats& socket : report->sockets) {
    admitted += socket.admitted;
  }
  EXPECT_EQ(admitted, report->admitted);
}

}  // namespace
}  // namespace siloz
