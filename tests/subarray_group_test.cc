// Tests for SubarrayGroupMap (src/addr/subarray_group.h).
#include <gtest/gtest.h>

#include "src/addr/subarray_group.h"
#include "src/base/rng.h"
#include "src/base/units.h"

namespace siloz {
namespace {

TEST(SubarrayGroupMapTest, EvaluationServerLayout) {
  const DramGeometry full;  // 1024-row subarrays
  SkylakeDecoder decoder(full);
  Result<SubarrayGroupMap> map = SubarrayGroupMap::Build(decoder, 1024);
  ASSERT_TRUE(map.ok()) << map.error().ToString();
  EXPECT_EQ(map->groups_per_socket(), 128u);
  EXPECT_EQ(map->total_groups(), 256u);
  EXPECT_EQ(map->group_bytes(), 1536_MiB);  // §4.1
}

TEST(SubarrayGroupMapTest, GroupsAreContiguousUnderSkylakeDecoder) {
  const DramGeometry full;
  SkylakeDecoder decoder(full);
  SubarrayGroupMap map = *SubarrayGroupMap::Build(decoder, 1024);
  // Each group resolves to exactly one extent of group_bytes.
  for (uint32_t group = 0; group < map.total_groups(); ++group) {
    const auto& ranges = map.RangesOf(group);
    ASSERT_EQ(ranges.size(), 1u);
    EXPECT_EQ(ranges[0].size(), map.group_bytes());
  }
  // Group 0 starts at phys 0; groups tile the socket.
  EXPECT_EQ(map.RangesOf(0)[0].begin, 0u);
  EXPECT_EQ(map.RangesOf(1)[0].begin, map.group_bytes());
  // First group of socket 1.
  EXPECT_EQ(map.RangesOf(128)[0].begin, full.socket_bytes());
  EXPECT_EQ(map.SocketOfGroup(128), 1u);
  EXPECT_EQ(map.IndexInCluster(128), 0u);
  EXPECT_EQ(map.ClusterOfGroup(128), 0u);
}

TEST(SubarrayGroupMapTest, GroupOfPhysMatchesRanges) {
  const DramGeometry full;
  SkylakeDecoder decoder(full);
  SubarrayGroupMap map = *SubarrayGroupMap::Build(decoder, 1024);
  Rng rng(5);
  for (int i = 0; i < 2000; ++i) {
    const uint64_t phys = rng.NextBelow(full.total_bytes());
    const uint32_t group = *map.GroupOfPhys(phys);
    bool contained = false;
    for (const PhysRange& range : map.RangesOf(group)) {
      contained |= range.Contains(phys);
    }
    EXPECT_TRUE(contained) << "phys " << phys << " not in its group's extents";
  }
}

class SubarraySizeSweepTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(SubarraySizeSweepTest, GroupSizeScalesLinearly) {
  // §7.4: Siloz-512 manages twice the nodes of Siloz-1024; Siloz-2048 half.
  const uint32_t rows = GetParam();
  const DramGeometry full;
  SkylakeDecoder decoder(full);
  SubarrayGroupMap map = *SubarrayGroupMap::Build(decoder, rows);
  EXPECT_EQ(map.groups_per_socket(), full.rows_per_bank / rows);
  EXPECT_EQ(map.group_bytes(),
            static_cast<uint64_t>(full.banks_per_socket()) * rows * full.row_bytes);
}

TEST_P(SubarraySizeSweepTest, TwoMiBPagesContained) {
  const uint32_t rows = GetParam();
  const DramGeometry full;
  SkylakeDecoder decoder(full);
  SubarrayGroupMap map = *SubarrayGroupMap::Build(decoder, rows);
  Rng rng(7000 + rows);
  for (int i = 0; i < 20; ++i) {
    const uint64_t page = rng.NextBelow(full.total_bytes() / kPage2M) * kPage2M;
    Result<bool> contained = map.PageIsContained(decoder, page, kPage2M);
    ASSERT_TRUE(contained.ok());
    EXPECT_TRUE(*contained) << "2 MiB page at " << page;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, SubarraySizeSweepTest, ::testing::Values(512u, 1024u, 2048u));

TEST(SubarrayGroupMapTest, OneGiBPagesStraddleSomeGroups) {
  // §4.2: 1 GiB pages do not all map to single subarray groups; with 3 GiB
  // sets of consecutive groups, at least 1/3 of 1 GiB ranges are isolatable.
  const DramGeometry full;
  SkylakeDecoder decoder(full);
  SubarrayGroupMap map = *SubarrayGroupMap::Build(decoder, 1024);
  uint32_t single_group = 0;
  uint32_t single_3gib_set = 0;
  const uint32_t pages = static_cast<uint32_t>(full.socket_bytes() / kPage1G);
  for (uint32_t i = 0; i < pages; ++i) {
    const uint64_t start = static_cast<uint64_t>(i) * kPage1G;
    const uint32_t first = *map.GroupOfPhys(start);
    const uint32_t last = *map.GroupOfPhys(start + kPage1G - 1);
    if (first == last) {
      ++single_group;
    }
    if (first / 2 == last / 2) {  // two consecutive 1.5 GiB groups = 3 GiB set
      ++single_3gib_set;
    }
  }
  EXPECT_LT(single_group, pages);                 // some pages straddle
  EXPECT_GE(single_3gib_set * 3, pages);          // the paper's >= 1/3 bound
  EXPECT_EQ(single_group, pages * 2 / 3);         // our decoder: exactly 2/3
}

TEST(SubarrayGroupMapTest, SncDecoderHalvesGroupBytes) {
  // §8.1: SNC-2 halves the subarray-group size.
  const DramGeometry full;
  SncDecoder decoder(full, 2);
  SubarrayGroupMap map = *SubarrayGroupMap::Build(decoder, 1024);
  EXPECT_EQ(map.group_bytes(), 768_MiB);
  // Under SNC each group is still a single contiguous extent per cluster.
  for (uint32_t group = 0; group < map.total_groups(); ++group) {
    uint64_t covered = 0;
    for (const PhysRange& range : map.RangesOf(group)) {
      covered += range.size();
    }
    EXPECT_EQ(covered, map.group_bytes());
  }
}

TEST(SubarrayGroupMapTest, RejectsNonDividingSubarraySize) {
  const DramGeometry full;
  SkylakeDecoder decoder(full);
  EXPECT_FALSE(SubarrayGroupMap::Build(decoder, 768).ok());
  EXPECT_FALSE(SubarrayGroupMap::Build(decoder, 0).ok());
}

TEST(SubarrayGroupMapTest, LinearDecoderGroupsAreStriped) {
  // Under the linear decoder a subarray group is NOT contiguous: it is one
  // stripe of rows per bank. The map must still cover it exactly.
  DramGeometry small;
  small.sockets = 1;
  small.channels_per_socket = 2;
  small.ranks_per_dimm = 2;
  small.banks_per_rank = 4;
  small.rows_per_bank = 2048;
  small.rows_per_subarray = 512;
  LinearDecoder decoder(small);
  Result<SubarrayGroupMap> map = SubarrayGroupMap::Build(decoder, 512, /*probe_page=*/4_MiB);
  ASSERT_TRUE(map.ok()) << map.error().ToString();
  EXPECT_GT(map->RangesOf(0).size(), 1u);  // striped, not contiguous
}

}  // namespace
}  // namespace siloz
