// Concurrency and fault-injection stress for the sharded engine.
//
// The concurrency leg drives the batched sharded path with a real 8-worker
// pool over a large multi-socket stream — the TSan CI job runs this binary
// to prove the shard serve loop is race-free — and asserts bit-identity
// against the single-worker run (worker count must never be observable).
//
// The fault-injection leg arms each of the sharded dispatch fault points
// (alloc.shard.partition, alloc.shard.dispatch) and proves the error
// propagates out of the engine while the absorb-target controllers stay
// untouched; a clean rerun on the same controllers then passes with the
// conservation checker (served == expected) intact.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/addr/decoder.h"
#include "src/base/fault_injector.h"
#include "src/base/rng.h"
#include "src/memctl/sharded_engine.h"

namespace siloz {
namespace {

std::vector<MemRequest> BigStream(const DramGeometry& geometry, uint64_t seed,
                                  uint64_t count) {
  const SkylakeDecoder decoder(geometry);
  Rng rng(seed);
  const uint64_t lines = geometry.total_bytes() / kCacheLineBytes;
  std::vector<MemRequest> stream;
  stream.reserve(count);
  uint64_t line = rng.NextBelow(lines);
  for (uint64_t i = 0; i < count; ++i) {
    line = rng.NextBernoulli(0.6) ? (line + 1) % lines : rng.NextBelow(lines);
    MemRequest request;
    request.address = *decoder.PhysToMedia(line * kCacheLineBytes);
    request.is_write = rng.NextBernoulli(0.3);
    stream.push_back(request);
  }
  return stream;
}

struct ControllerSet {
  std::vector<std::unique_ptr<MemoryController>> owned;
  std::vector<MemoryController*> ptrs;

  explicit ControllerSet(const DramGeometry& geometry) {
    for (uint32_t socket = 0; socket < geometry.sockets; ++socket) {
      owned.push_back(std::make_unique<MemoryController>(geometry, socket));
      ptrs.push_back(owned.back().get());
    }
  }
};

ShardedEngineConfig StressConfig(uint32_t threads) {
  ShardedEngineConfig config;
  config.engine.max_outstanding = 10;
  config.engine.compute_ns_per_access = 2.0;
  config.channels_per_shard = 1;  // max shards = max concurrency
  config.threads = threads;
  return config;
}

TEST(ShardedStressTest, EightWorkersBitIdenticalToOne) {
  // Large enough that shards genuinely overlap in time on a multi-core
  // host; under TSan this is the race detector's main course.
  const DramGeometry geometry;
  const std::vector<MemRequest> stream = BigStream(geometry, 0x57E55, 400000);

  ControllerSet serial_workers(geometry);
  Result<ShardedEngineResult> one =
      RunShardedClosedLoop(stream, serial_workers.ptrs, StressConfig(1));
  ASSERT_TRUE(one.ok());

  ControllerSet parallel_workers(geometry);
  Result<ShardedEngineResult> eight =
      RunShardedClosedLoop(stream, parallel_workers.ptrs, StressConfig(8));
  ASSERT_TRUE(eight.ok());

  EXPECT_EQ(eight->elapsed_ns, one->elapsed_ns);
  EXPECT_EQ(eight->requests, one->requests);
  ASSERT_EQ(eight->shards.size(), one->shards.size());
  for (size_t shard = 0; shard < eight->shards.size(); ++shard) {
    EXPECT_EQ(eight->shards[shard].requests, one->shards[shard].requests) << shard;
    EXPECT_EQ(eight->shards[shard].elapsed_ns, one->shards[shard].elapsed_ns) << shard;
  }
  for (size_t socket = 0; socket < serial_workers.ptrs.size(); ++socket) {
    const ControllerStats& a = serial_workers.ptrs[socket]->stats();
    const ControllerStats& b = parallel_workers.ptrs[socket]->stats();
    EXPECT_EQ(a.requests, b.requests);
    EXPECT_EQ(a.row_hits, b.row_hits);
    EXPECT_EQ(a.row_misses, b.row_misses);
    EXPECT_EQ(a.busy_ns, b.busy_ns);
    EXPECT_EQ(a.total_latency_ns, b.total_latency_ns);
  }
}

TEST(ShardedStressTest, RepeatedParallelRunsAgree) {
  // Same stream, several 8-worker runs: scheduling jitter across runs must
  // never leak into results.
  const DramGeometry geometry;
  const std::vector<MemRequest> stream = BigStream(geometry, 0xA5A5, 150000);
  double reference_elapsed = 0.0;
  for (int run = 0; run < 3; ++run) {
    ControllerSet controllers(geometry);
    Result<ShardedEngineResult> result =
        RunShardedClosedLoop(stream, controllers.ptrs, StressConfig(8));
    ASSERT_TRUE(result.ok());
    if (run == 0) {
      reference_elapsed = result->elapsed_ns;
    } else {
      EXPECT_EQ(result->elapsed_ns, reference_elapsed) << "run " << run;
    }
  }
}

class ShardedFaultTest : public ::testing::Test {
 protected:
  void TearDown() override { FaultInjector::Global().Disarm(); }
};

TEST_F(ShardedFaultTest, DispatchFaultsPropagateAndLeaveTargetsUntouched) {
  const DramGeometry geometry;
  const std::vector<MemRequest> stream = BigStream(geometry, 0xFA11, 50000);

  for (const std::string site : {"alloc.shard.partition", "alloc.shard.dispatch"}) {
    ControllerSet controllers(geometry);
    FaultInjector::Global().Arm(1, site);
    Result<ShardedEngineResult> failed =
        RunShardedClosedLoop(stream, controllers.ptrs, StressConfig(2));
    FaultInjector::Global().Disarm();

    ASSERT_FALSE(failed.ok()) << site << " fault did not propagate";
    // The absorb targets must be untouched: no partial merge, no stats.
    for (MemoryController* controller : controllers.ptrs) {
      EXPECT_EQ(controller->stats().requests, 0u) << site;
      EXPECT_EQ(controller->stats().busy_ns, 0.0) << site;
      for (const BankGroupCounts& group : controller->bank_group_counts()) {
        EXPECT_EQ(group.act + group.pre + group.rd + group.wr + group.ref, 0u) << site;
      }
    }

    // Clean rerun on the very same controllers: conservation holds, every
    // request accounted exactly once.
    Result<ShardedEngineResult> clean =
        RunShardedClosedLoop(stream, controllers.ptrs, StressConfig(2));
    ASSERT_TRUE(clean.ok()) << site;
    EXPECT_EQ(clean->requests, stream.size()) << site;
    uint64_t absorbed = 0;
    for (MemoryController* controller : controllers.ptrs) {
      absorbed += controller->stats().requests;
    }
    EXPECT_EQ(absorbed, stream.size()) << site;
  }
}

TEST_F(ShardedFaultTest, FusedPathFaultsMatchBatchedSemantics) {
  // The fused streaming path declares the same two fault points up front, so
  // an injected failure leaves its targets untouched the same way.
  const DramGeometry geometry;
  const std::vector<MemRequest> stream = BigStream(geometry, 0xFA12, 20000);
  ControllerSet controllers(geometry);
  ShardedEngineConfig config = StressConfig(1);

  auto run_fused = [&]() {
    return RunShardedFused(
        stream.size(),
        [&](auto&& emit) {
          for (const MemRequest& request : stream) {
            emit(controllers.ptrs[request.address.socket]->DecodeCmd(request),
                 request.address.socket);
          }
        },
        controllers.ptrs, config);
  };

  FaultInjector::Global().Arm(1, "alloc.shard.");
  Result<ShardedEngineResult> failed = run_fused();
  FaultInjector::Global().Disarm();
  ASSERT_FALSE(failed.ok());
  for (MemoryController* controller : controllers.ptrs) {
    EXPECT_EQ(controller->stats().requests, 0u);
  }

  Result<ShardedEngineResult> clean = run_fused();
  ASSERT_TRUE(clean.ok());
  EXPECT_EQ(clean->requests, stream.size());
}

}  // namespace
}  // namespace siloz
