// Tests for the DDR5-generation support (§8.2): bigger bank counts, larger
// subarray groups, and interface-level undoing of mirroring/inversion.
#include <gtest/gtest.h>

#include "src/addr/subarray_group.h"
#include "src/base/units.h"
#include "src/dram/remap.h"
#include "src/ept/phys_memory.h"
#include "src/siloz/hypervisor.h"

namespace siloz {
namespace {

TEST(Ddr5Test, GeometryScalesGroups) {
  const DramGeometry ddr5 = Ddr5Geometry();
  ASSERT_TRUE(ddr5.Validate().ok());
  EXPECT_EQ(ddr5.banks_per_rank, 32u);
  EXPECT_EQ(ddr5.banks_per_socket(), 384u);
  // §8.2: group size grows proportionally with banks per node: 3 GiB.
  EXPECT_EQ(ddr5.subarray_group_bytes(), 3_GiB);
  EXPECT_EQ(ddr5.socket_bytes(), 384_GiB);
}

TEST(Ddr5Test, RemapConfigIsIdentityOnRows) {
  const DramGeometry ddr5 = Ddr5Geometry();
  RowRemapper remapper(ddr5, Ddr5RemapConfig());
  for (uint32_t rank : {0u, 1u}) {
    for (HalfRowSide side : {HalfRowSide::kA, HalfRowSide::kB}) {
      for (uint32_t row = 0; row < 4096; ++row) {
        EXPECT_EQ(remapper.ToInternal(row, rank, 0, side), row);
      }
    }
  }
}

TEST(Ddr5Test, NonPowerOfTwoSizesNeedNoArtificialGroups) {
  // §8.2: with mirroring/inversion undone at each device, any subarray size
  // preserves isolation blocks.
  DramGeometry ddr5 = Ddr5Geometry();
  ddr5.rows_per_bank = 129024;  // divisible by 768 and 1536
  for (uint32_t rows : {512u, 768u, 1024u, 1536u, 2048u}) {
    EXPECT_TRUE(TransformsPreserveSubarrayBlocks(ddr5, Ddr5RemapConfig(), rows))
        << "rows " << rows;
  }
}

TEST(Ddr5Test, SkylakeStyleDecoderWorksOnDdr5Geometry) {
  const DramGeometry ddr5 = Ddr5Geometry();
  SkylakeDecoder decoder(ddr5);
  // Round-trip and group math hold on the larger geometry.
  const uint64_t probes[] = {0, 100_GiB, 383_GiB, 768_GiB - 64};
  for (uint64_t phys : probes) {
    const MediaAddress media = *decoder.PhysToMedia(phys);
    EXPECT_EQ(*decoder.MediaToPhys(media), phys);
  }
  Result<SubarrayGroupMap> map = SubarrayGroupMap::Build(decoder, 1024);
  ASSERT_TRUE(map.ok());
  EXPECT_EQ(map->group_bytes(), 3_GiB);
  EXPECT_EQ(map->groups_per_socket(), 128u);
}

TEST(Ddr5Test, HypervisorBootsAndPlacesVms) {
  const DramGeometry ddr5 = Ddr5Geometry();
  SkylakeDecoder decoder(ddr5);
  FlatPhysMemory memory;
  SilozHypervisor hypervisor(decoder, memory, SilozConfig{});
  ASSERT_TRUE(hypervisor.Boot().ok());
  // 128 groups per socket, 2 host groups -> 126 guest nodes of 3 GiB each.
  EXPECT_EQ(hypervisor.AvailableGuestNodes(0).size(), 126u);
  Result<VmId> id = hypervisor.CreateVm({.name = "a", .memory_bytes = 6_GiB, .socket = 0});
  ASSERT_TRUE(id.ok()) << id.error().ToString();
  EXPECT_EQ((*hypervisor.GetVm(*id))->guest_nodes().size(), 2u);
  EXPECT_TRUE(hypervisor.AuditVmIsolation(*id).ok());
}

TEST(Ddr5Test, NonPowerOfTwoBootWithoutArtificialGroups) {
  // On DDR5 Siloz manages a 768-row subarray natively (no rounding, no
  // guard offlining) as long as the size divides the bank.
  DramGeometry ddr5 = Ddr5Geometry();
  ddr5.rows_per_bank = 86016;  // 768 * 112, and 512 | 86016 for the decoder
  ddr5.rows_per_subarray = 768;
  EXPECT_TRUE(TransformsPreserveSubarrayBlocks(ddr5, Ddr5RemapConfig(), 768));

  SkylakeDecoder decoder(ddr5);
  FlatPhysMemory memory;
  SilozConfig config;
  config.rows_per_subarray = 768;
  config.uniform_internal_addressing = true;  // platform attestation (§8.2)
  SilozHypervisor hypervisor(decoder, memory, config);
  ASSERT_TRUE(hypervisor.Boot().ok());
  EXPECT_FALSE(hypervisor.using_artificial_groups());
  EXPECT_EQ(hypervisor.effective_rows_per_subarray(), 768u);
  EXPECT_EQ(hypervisor.artificial_guard_bytes(), 0u);
  // Group size: 384 banks * 768 rows * 8 KiB = 2.25 GiB.
  EXPECT_EQ(hypervisor.group_map().group_bytes(), 2304_MiB);
  Result<VmId> id = hypervisor.CreateVm({.name = "a", .memory_bytes = 2_GiB, .socket = 0});
  ASSERT_TRUE(id.ok()) << id.error().ToString();
  EXPECT_TRUE(hypervisor.AuditVmIsolation(*id).ok());
}

}  // namespace
}  // namespace siloz
