// Tests for the work-stealing pool (src/base/thread_pool.h): correctness of
// Submit/Wait/ParallelFor, the inline serial path, metrics accounting, and
// the ResolveThreads knob. Scheduling-order properties are deliberately not
// asserted — determinism lives in the callers' merge discipline (DESIGN.md
// §8), which tests/parallel_determinism_test.cc covers.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <numeric>
#include <thread>
#include <vector>

#include "src/base/thread_pool.h"

namespace siloz {
namespace {

TEST(ResolveThreadsTest, PositiveRequestIsLiteral) {
  EXPECT_EQ(ResolveThreads(1), 1u);
  EXPECT_EQ(ResolveThreads(7), 7u);
}

TEST(ResolveThreadsTest, ZeroFallsBackToEnvThenHardware) {
  ::setenv("SILOZ_THREADS", "3", 1);
  EXPECT_EQ(ResolveThreads(0), 3u);
  ::setenv("SILOZ_THREADS", "0", 1);  // non-positive env value is ignored
  EXPECT_GE(ResolveThreads(0), 1u);
  ::unsetenv("SILOZ_THREADS");
  EXPECT_GE(ResolveThreads(0), 1u);
}

TEST(ResolveThreadsTest, AutoDetectUsesHardwareConcurrency) {
  // --threads 0 is the documented auto-detect spelling everywhere a thread
  // knob is exposed (silozctl, siloz_audit, the figure benches): without an
  // env override it resolves to the host's hardware concurrency, and a pool
  // built from 0 gets exactly that many workers.
  ::unsetenv("SILOZ_THREADS");
  EXPECT_EQ(ResolveThreads(0), std::max(1u, std::thread::hardware_concurrency()));
  ThreadPool pool(0);
  EXPECT_EQ(pool.worker_count(), ResolveThreads(0));
}

TEST(ThreadPoolTest, SerialPoolRunsTasksInlineInSubmissionOrder) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.worker_count(), 1u);
  std::vector<int> order;
  for (int i = 0; i < 8; ++i) {
    pool.Submit([&order, i] { order.push_back(i); });
  }
  pool.Wait();  // no-op: everything already ran inside Submit
  std::vector<int> expected(8);
  std::iota(expected.begin(), expected.end(), 0);
  EXPECT_EQ(order, expected);
  const PoolMetrics metrics = pool.metrics();
  EXPECT_EQ(metrics.workers, 1u);
  EXPECT_EQ(metrics.tasks, 8u);
  EXPECT_EQ(metrics.steals, 0u);
}

TEST(ThreadPoolTest, SubmitWaitRunsEveryTaskExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.worker_count(), 4u);
  constexpr int kTasks = 500;
  std::vector<std::atomic<int>> runs(kTasks);
  for (int i = 0; i < kTasks; ++i) {
    pool.Submit([&runs, i] { runs[i].fetch_add(1); });
  }
  pool.Wait();
  for (int i = 0; i < kTasks; ++i) {
    EXPECT_EQ(runs[i].load(), 1) << "task " << i;
  }
  EXPECT_EQ(pool.metrics().tasks, static_cast<uint64_t>(kTasks));
}

TEST(ThreadPoolTest, PoolIsReusableAcrossWaits) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
    pool.Wait();
    EXPECT_EQ(counter.load(), (round + 1) * 50);
  }
  EXPECT_EQ(pool.metrics().tasks, 150u);
}

TEST(ThreadPoolTest, ParallelForCoversExactRange) {
  for (const uint32_t threads : {1u, 2u, 5u}) {
    ThreadPool pool(threads);
    std::vector<std::atomic<int>> hits(100);
    pool.ParallelFor(10, 90, [&hits](uint64_t i) { hits[i].fetch_add(1); });
    for (uint64_t i = 0; i < 100; ++i) {
      EXPECT_EQ(hits[i].load(), (i >= 10 && i < 90) ? 1 : 0) << "i=" << i << " threads=" << threads;
    }
    // One task per iteration, so the metric is comparable across paths.
    EXPECT_EQ(pool.metrics().tasks, 80u);
  }
}

TEST(ThreadPoolTest, ParallelForEmptyRangeIsANoOp) {
  ThreadPool pool(2);
  pool.ParallelFor(5, 5, [](uint64_t) { FAIL() << "must not be called"; });
  EXPECT_EQ(pool.metrics().tasks, 0u);
}

TEST(ThreadPoolTest, WaitWithNothingSubmittedReturns) {
  ThreadPool pool(3);
  pool.Wait();
  pool.Wait();
  EXPECT_EQ(pool.metrics().tasks, 0u);
}

TEST(ThreadPoolTest, StealsAreCountedAndBoundedByTasks) {
  ThreadPool pool(4);
  constexpr int kTasks = 2000;
  std::atomic<uint64_t> sum{0};
  pool.ParallelFor(0, kTasks, [&sum](uint64_t i) { sum.fetch_add(i); });
  EXPECT_EQ(sum.load(), static_cast<uint64_t>(kTasks) * (kTasks - 1) / 2);
  const PoolMetrics metrics = pool.metrics();
  EXPECT_EQ(metrics.tasks, static_cast<uint64_t>(kTasks));
  // Steals depend on scheduling; the invariant is that every steal was a task.
  EXPECT_LE(metrics.steals, metrics.tasks);
}

}  // namespace
}  // namespace siloz
