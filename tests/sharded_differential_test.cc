// Serial-vs-sharded differential harness for the channel-sharded engine
// (src/memctl/sharded_engine.h, DESIGN.md §13).
//
// Three claims are pinned here, each over >= 100k-command randomized streams
// on every platform shape (Skylake DDR4, DDR5, SNC-2, linear):
//
//  1. Shard-invariant counts — requests, reads, writes, row hits/misses,
//     ACTs, PREs, and the per-bank-group command census — are equal between
//     the serial reference engine and every sharding of the same stream.
//     Per-bank command subsequences are identical under the channel
//     partition, so these counts cannot legally differ. (Completion *times*
//     differ by design: per-channel queues vs one global MLP window.)
//
//  2. The sharded engine is bit-identical across worker counts (threads
//     1/2/8), including every double-valued stat, the per-shard telemetry,
//     and the model-domain metrics census — the DESIGN.md §8 determinism
//     contract extended to shards.
//
//  3. The two sharded serve paths — batched (RunShardedClosedLoop) and fused
//     streaming (RunShardedFused) — are bit-identical to each other.
//
// Claims 1 and 2 are additionally pinned under the §15 sub-channel
// decomposition (bank_groups_per_queue >= 1): queue regrouping never
// reorders ServeDecoded calls, so the invariant counts still match serial,
// and threads remain a pure scheduler knob with queues enabled.
//
// Plus the experiment-level corollaries: RunWorkload report values are
// bit-identical across thread counts on the sharded path, and fault-mode
// flip censuses are identical for serial (channels_per_shard = 0) and every
// sharded replay.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/addr/decoder.h"
#include "src/base/rng.h"
#include "src/memctl/sharded_engine.h"
#include "src/obs/metrics.h"
#include "src/sim/experiment.h"

namespace siloz {
namespace {

constexpr uint64_t kStreamCommands = 120000;  // >= 100k per the test contract

// One platform shape under test: a geometry plus the decoder that scatters
// phys addresses over it.
struct Platform {
  std::string name;
  DramGeometry geometry;
  std::unique_ptr<AddressDecoder> decoder;
};

std::vector<Platform> AllPlatforms() {
  std::vector<Platform> platforms;
  {
    Platform p;
    p.name = "skylake_ddr4";
    p.decoder = std::make_unique<SkylakeDecoder>(p.geometry);
    platforms.push_back(std::move(p));
  }
  {
    Platform p;
    p.name = "ddr5";
    p.geometry = Ddr5Geometry();
    p.decoder = std::make_unique<SkylakeDecoder>(p.geometry);
    platforms.push_back(std::move(p));
  }
  {
    Platform p;
    p.name = "snc2";
    p.decoder = std::make_unique<SncDecoder>(p.geometry, 2);
    platforms.push_back(std::move(p));
  }
  {
    Platform p;
    p.name = "linear";
    p.decoder = std::make_unique<LinearDecoder>(p.geometry);
    platforms.push_back(std::move(p));
  }
  return platforms;
}

// Randomized mixed sequential/jumping request stream over the whole machine
// (both sockets, remote issues included), deterministic in `seed`.
std::vector<MemRequest> MakeStream(const Platform& platform, uint64_t seed,
                                   uint64_t count = kStreamCommands) {
  Rng rng(seed);
  const uint64_t lines = platform.geometry.total_bytes() / kCacheLineBytes;
  std::vector<MemRequest> stream;
  stream.reserve(count);
  uint64_t line = rng.NextBelow(lines);
  for (uint64_t i = 0; i < count; ++i) {
    if (!rng.NextBernoulli(0.7)) {
      line = rng.NextBelow(lines);  // jump
    } else {
      line = (line + 1) % lines;  // sequential run
    }
    MemRequest request;
    request.address = *platform.decoder->PhysToMedia(line * kCacheLineBytes);
    request.is_write = rng.NextBernoulli(0.3);
    request.source_socket = rng.NextBernoulli(0.1) ? 1u : 0u;
    stream.push_back(request);
  }
  return stream;
}

// Per-socket controllers plus raw pointers in the span shape the engines
// take.
struct ControllerSet {
  std::vector<std::unique_ptr<MemoryController>> owned;
  std::vector<MemoryController*> ptrs;

  explicit ControllerSet(const DramGeometry& geometry) {
    for (uint32_t socket = 0; socket < geometry.sockets; ++socket) {
      owned.push_back(std::make_unique<MemoryController>(geometry, socket));
      ptrs.push_back(owned.back().get());
    }
  }
};

EngineConfig TestEngineConfig() {
  EngineConfig config;
  config.max_outstanding = 10;
  config.compute_ns_per_access = 5.0;
  return config;
}

// The counts that must be invariant under sharding (everything the partition
// argument covers). Deliberately excludes busy_ns, total_latency_ns, and
// ref_tail_hits: those depend on completion times, which the sharded engine
// changes by design.
void ExpectShardInvariantCountsEqual(const ControllerStats& serial,
                                     const ControllerStats& sharded,
                                     const std::string& label) {
  EXPECT_EQ(serial.requests, sharded.requests) << label;
  EXPECT_EQ(serial.reads, sharded.reads) << label;
  EXPECT_EQ(serial.writes, sharded.writes) << label;
  EXPECT_EQ(serial.row_hits, sharded.row_hits) << label;
  EXPECT_EQ(serial.row_misses, sharded.row_misses) << label;
  EXPECT_EQ(serial.activates, sharded.activates) << label;
  EXPECT_EQ(serial.precharges, sharded.precharges) << label;
}

// Full bitwise equality, used between runs that must be identical (thread
// counts, fused vs batched).
void ExpectStatsBitIdentical(const ControllerStats& a, const ControllerStats& b,
                             const std::string& label) {
  EXPECT_EQ(a.requests, b.requests) << label;
  EXPECT_EQ(a.reads, b.reads) << label;
  EXPECT_EQ(a.writes, b.writes) << label;
  EXPECT_EQ(a.row_hits, b.row_hits) << label;
  EXPECT_EQ(a.row_misses, b.row_misses) << label;
  EXPECT_EQ(a.activates, b.activates) << label;
  EXPECT_EQ(a.precharges, b.precharges) << label;
  EXPECT_EQ(a.ref_tail_hits, b.ref_tail_hits) << label;
  EXPECT_EQ(a.busy_ns, b.busy_ns) << label;                    // exact, not near
  EXPECT_EQ(a.total_latency_ns, b.total_latency_ns) << label;  // exact, not near
}

TEST(ShardedDifferentialTest, ShardInvariantCountsMatchSerialOnAllPlatforms) {
  for (const Platform& platform : AllPlatforms()) {
    const std::vector<MemRequest> stream = MakeStream(platform, 0xD1FF + 1);
    ControllerSet serial(platform.geometry);
    RunClosedLoop(stream, serial.ptrs, TestEngineConfig());

    for (uint32_t channels_per_shard :
         {1u, 2u, platform.geometry.channels_per_socket}) {
      ControllerSet sharded(platform.geometry);
      ShardedEngineConfig config;
      config.engine = TestEngineConfig();
      config.channels_per_shard = channels_per_shard;
      Result<ShardedEngineResult> result = RunShardedClosedLoop(stream, sharded.ptrs, config);
      ASSERT_TRUE(result.ok()) << platform.name;
      EXPECT_EQ(result->requests, stream.size()) << platform.name;
      for (size_t socket = 0; socket < serial.ptrs.size(); ++socket) {
        ExpectShardInvariantCountsEqual(
            serial.ptrs[socket]->stats(), sharded.ptrs[socket]->stats(),
            platform.name + " cps=" + std::to_string(channels_per_shard) + " socket" +
                std::to_string(socket));
      }
      // Per-bank-group command census: same partition argument, finer grain.
      for (size_t socket = 0; socket < serial.ptrs.size(); ++socket) {
        const auto& lhs = serial.ptrs[socket]->bank_group_counts();
        const auto& rhs = sharded.ptrs[socket]->bank_group_counts();
        ASSERT_EQ(lhs.size(), rhs.size());
        for (size_t group = 0; group < lhs.size(); ++group) {
          EXPECT_EQ(lhs[group].act, rhs[group].act) << platform.name << " group " << group;
          EXPECT_EQ(lhs[group].pre, rhs[group].pre) << platform.name << " group " << group;
          EXPECT_EQ(lhs[group].rd, rhs[group].rd) << platform.name << " group " << group;
          EXPECT_EQ(lhs[group].wr, rhs[group].wr) << platform.name << " group " << group;
        }
      }
    }
  }
}

TEST(ShardedDifferentialTest, SubShardedInvariantCountsMatchSerialOnAllPlatforms) {
  // Claim 1 extended to the §15 sub-channel decomposition: per-bank command
  // subsequences are a pure function of the channel partition, and bank-group
  // queues subdivide *within* a shard without reordering ServeDecoded calls —
  // so for every queue shape the invariant counts and the per-bank-group
  // census still match the serial reference exactly.
  for (const Platform& platform : AllPlatforms()) {
    const std::vector<MemRequest> stream = MakeStream(platform, 0x5B5B);
    ControllerSet serial(platform.geometry);
    RunClosedLoop(stream, serial.ptrs, TestEngineConfig());

    for (const uint32_t bgpq : {1u, 2u, 4u}) {
      ControllerSet sharded(platform.geometry);
      ShardedEngineConfig config;
      config.engine = TestEngineConfig();
      config.channels_per_shard = 2;
      config.bank_groups_per_queue = bgpq;
      Result<ShardedEngineResult> result = RunShardedClosedLoop(stream, sharded.ptrs, config);
      const std::string label = platform.name + " bgpq=" + std::to_string(bgpq);
      ASSERT_TRUE(result.ok()) << label;
      EXPECT_EQ(result->requests, stream.size()) << label;
      // Telemetry reports the §15 queue decomposition per shard.
      for (const ShardTelemetry& shard : result->shards) {
        EXPECT_EQ(shard.queues, ShardQueueCount(platform.geometry, shard.channels, bgpq))
            << label;
      }
      for (size_t socket = 0; socket < serial.ptrs.size(); ++socket) {
        ExpectShardInvariantCountsEqual(serial.ptrs[socket]->stats(),
                                        sharded.ptrs[socket]->stats(),
                                        label + " socket" + std::to_string(socket));
        const auto& lhs = serial.ptrs[socket]->bank_group_counts();
        const auto& rhs = sharded.ptrs[socket]->bank_group_counts();
        ASSERT_EQ(lhs.size(), rhs.size()) << label;
        for (size_t group = 0; group < lhs.size(); ++group) {
          EXPECT_EQ(lhs[group].act, rhs[group].act) << label << " group " << group;
          EXPECT_EQ(lhs[group].pre, rhs[group].pre) << label << " group " << group;
          EXPECT_EQ(lhs[group].rd, rhs[group].rd) << label << " group " << group;
          EXPECT_EQ(lhs[group].wr, rhs[group].wr) << label << " group " << group;
        }
      }
    }
  }
}

TEST(ShardedDifferentialTest, BitIdenticalAcrossThreadCountsWithBankGroupQueues) {
  // Claim 2 with sub-channel queues on: bank_groups_per_queue is a model
  // knob (it moves completion times), threads stay a scheduler knob — the
  // results and the model-domain census must be byte-identical whether the
  // queues are served fused (threads = 1) or batched in parallel.
  for (const Platform& platform : AllPlatforms()) {
    const std::vector<MemRequest> stream = MakeStream(platform, 0xBEEF + 15);
    std::vector<ShardedEngineResult> results;
    std::vector<std::string> censuses;
    for (const uint32_t threads : {1u, 2u, 8u}) {
      obs::Registry::Global().Reset();
      std::string census;
      ShardedEngineResult run;
      {
        ControllerSet controllers(platform.geometry);
        ShardedEngineConfig config;
        config.engine = TestEngineConfig();
        config.channels_per_shard = 2;
        config.bank_groups_per_queue = 1;
        config.threads = threads;
        Result<ShardedEngineResult> result =
            RunShardedClosedLoop(stream, controllers.ptrs, config);
        ASSERT_TRUE(result.ok()) << platform.name << " threads=" << threads;
        run = *result;
      }  // controllers destroyed: lifetime censuses flushed to the registry
      census = obs::Registry::Global().SectionJson(obs::Domain::kModel);
      if (!results.empty()) {
        const ShardedEngineResult& reference = results.front();
        const std::string label = platform.name + " bgpq=1 threads=" + std::to_string(threads);
        EXPECT_EQ(run.elapsed_ns, reference.elapsed_ns) << label;
        EXPECT_EQ(run.requests, reference.requests) << label;
        ASSERT_EQ(run.shards.size(), reference.shards.size()) << label;
        for (size_t shard = 0; shard < run.shards.size(); ++shard) {
          EXPECT_EQ(run.shards[shard].requests, reference.shards[shard].requests) << label;
          EXPECT_EQ(run.shards[shard].elapsed_ns, reference.shards[shard].elapsed_ns) << label;
          EXPECT_EQ(run.shards[shard].queues, reference.shards[shard].queues) << label;
        }
        EXPECT_EQ(census, censuses.front()) << label;
      }
      results.push_back(run);
      censuses.push_back(census);
    }
  }
}

TEST(ShardedDifferentialTest, BitIdenticalAcrossThreadCounts) {
  for (const Platform& platform : AllPlatforms()) {
    const std::vector<MemRequest> stream = MakeStream(platform, 0xBEEF);
    std::vector<ShardedEngineResult> results;
    std::vector<std::string> censuses;
    for (uint32_t threads : {1u, 2u, 8u}) {
      obs::Registry::Global().Reset();
      std::string census;
      ShardedEngineResult run;
      {
        ControllerSet controllers(platform.geometry);
        ShardedEngineConfig config;
        config.engine = TestEngineConfig();
        config.channels_per_shard = 2;
        config.threads = threads;
        Result<ShardedEngineResult> result =
            RunShardedClosedLoop(stream, controllers.ptrs, config);
        ASSERT_TRUE(result.ok()) << platform.name << " threads=" << threads;
        run = *result;
      }  // controllers destroyed: lifetime censuses flushed to the registry
      census = obs::Registry::Global().SectionJson(obs::Domain::kModel);
      if (!results.empty()) {
        const ShardedEngineResult& reference = results.front();
        const std::string label = platform.name + " threads=" + std::to_string(threads);
        EXPECT_EQ(run.elapsed_ns, reference.elapsed_ns) << label;
        EXPECT_EQ(run.requests, reference.requests) << label;
        ASSERT_EQ(run.shards.size(), reference.shards.size()) << label;
        for (size_t shard = 0; shard < run.shards.size(); ++shard) {
          EXPECT_EQ(run.shards[shard].requests, reference.shards[shard].requests) << label;
          EXPECT_EQ(run.shards[shard].elapsed_ns, reference.shards[shard].elapsed_ns) << label;
          EXPECT_EQ(run.shards[shard].socket, reference.shards[shard].socket) << label;
          EXPECT_EQ(run.shards[shard].first_channel, reference.shards[shard].first_channel)
              << label;
        }
        // Byte-identical model-domain metrics (per-shard censuses included).
        EXPECT_EQ(census, censuses.front()) << label;
      }
      results.push_back(run);
      censuses.push_back(census);
    }
  }
}

TEST(ShardedDifferentialTest, FusedMatchesBatchedBitForBit) {
  for (const Platform& platform : AllPlatforms()) {
    const std::vector<MemRequest> stream = MakeStream(platform, 0xFA57);
    ShardedEngineConfig config;
    config.engine = TestEngineConfig();
    config.channels_per_shard = 1;

    ControllerSet batched(platform.geometry);
    Result<ShardedEngineResult> batched_result =
        RunShardedClosedLoop(stream, batched.ptrs, config);
    ASSERT_TRUE(batched_result.ok()) << platform.name;

    ControllerSet fused(platform.geometry);
    Result<ShardedEngineResult> fused_result = RunShardedFused(
        stream.size(),
        [&](auto&& emit) {
          for (const MemRequest& request : stream) {
            emit(fused.ptrs[request.address.socket]->DecodeCmd(request),
                 request.address.socket);
          }
        },
        fused.ptrs, config);
    ASSERT_TRUE(fused_result.ok()) << platform.name;

    EXPECT_EQ(fused_result->elapsed_ns, batched_result->elapsed_ns) << platform.name;
    EXPECT_EQ(fused_result->requests, batched_result->requests) << platform.name;
    ASSERT_EQ(fused_result->shards.size(), batched_result->shards.size());
    for (size_t shard = 0; shard < fused_result->shards.size(); ++shard) {
      EXPECT_EQ(fused_result->shards[shard].requests,
                batched_result->shards[shard].requests)
          << platform.name;
      EXPECT_EQ(fused_result->shards[shard].elapsed_ns,
                batched_result->shards[shard].elapsed_ns)
          << platform.name;
    }
    for (size_t socket = 0; socket < batched.ptrs.size(); ++socket) {
      ExpectStatsBitIdentical(fused.ptrs[socket]->stats(), batched.ptrs[socket]->stats(),
                              platform.name + " socket" + std::to_string(socket));
    }
  }
}

TEST(ShardedDifferentialTest, OneShardPerChannelMatchesWiderShards) {
  // Different channels_per_shard values are different *models* and may
  // legally differ in time, but shard-invariant counts must agree among
  // themselves too (the partition argument applies between any two
  // shardings, not just sharded-vs-serial).
  const Platform platform{
      "skylake_ddr4", DramGeometry{}, std::make_unique<SkylakeDecoder>(DramGeometry{})};
  const std::vector<MemRequest> stream = MakeStream(platform, 0x5EED);
  ControllerSet narrow(platform.geometry);
  ControllerSet wide(platform.geometry);
  ShardedEngineConfig config;
  config.engine = TestEngineConfig();
  config.channels_per_shard = 1;
  ASSERT_TRUE(RunShardedClosedLoop(stream, narrow.ptrs, config).ok());
  config.channels_per_shard = 3;
  ASSERT_TRUE(RunShardedClosedLoop(stream, wide.ptrs, config).ok());
  for (size_t socket = 0; socket < narrow.ptrs.size(); ++socket) {
    ExpectShardInvariantCountsEqual(narrow.ptrs[socket]->stats(), wide.ptrs[socket]->stats(),
                                    "cps 1 vs 3 socket" + std::to_string(socket));
  }
}

TEST(ShardedDifferentialTest, RunWorkloadBitIdenticalAcrossThreads) {
  WorkloadSpec spec = *FindWorkload("redis-a");
  spec.accesses = 100000;
  RunnerConfig config;
  config.trials = 3;
  config.vm.memory_bytes = 3ull << 30;
  config.channels_per_shard = 1;

  std::vector<RunMeasurement> runs;
  for (uint32_t threads : {1u, 2u, 8u}) {
    config.threads = threads;
    Result<RunMeasurement> run = RunWorkload(config, spec);
    ASSERT_TRUE(run.ok()) << "threads=" << threads;
    runs.push_back(std::move(*run));
  }
  for (size_t i = 1; i < runs.size(); ++i) {
    EXPECT_EQ(runs[i].elapsed_ns.mean(), runs[0].elapsed_ns.mean());
    EXPECT_EQ(runs[i].elapsed_ns.stddev(), runs[0].elapsed_ns.stddev());
    EXPECT_EQ(runs[i].bandwidth_gibs.mean(), runs[0].bandwidth_gibs.mean());
    EXPECT_EQ(runs[i].row_hit_rate, runs[0].row_hit_rate);
    EXPECT_EQ(runs[i].shard_requests, runs[0].shard_requests);
  }
  // The sharded engine reported one slot per shard, every request accounted.
  ASSERT_FALSE(runs[0].shard_requests.empty());
  uint64_t total = 0;
  for (uint64_t requests : runs[0].shard_requests) {
    total += requests;
  }
  EXPECT_EQ(total, static_cast<uint64_t>(config.trials) * spec.accesses);
}

TEST(ShardedDifferentialTest, FaultReplayFlipCensusMatchesSerial) {
  // Fault-mode flip identity: the disturbance replay partitions by channel
  // with per-request timestamps derived from global trace indices, so the
  // flip census cannot depend on the sharding.
  WorkloadSpec spec = *FindWorkload("redis-a");
  spec.accesses = 60000;
  RunnerConfig config;
  config.trials = 2;
  config.vm.memory_bytes = 3ull << 30;
  config.fault_tracking = true;
  config.dimm_profiles = {DimmProfile{}};

  std::vector<std::vector<uint64_t>> censuses;
  for (uint32_t channels_per_shard : {0u, 1u, 3u}) {
    config.channels_per_shard = channels_per_shard;
    Result<RunMeasurement> run = RunWorkload(config, spec);
    ASSERT_TRUE(run.ok()) << "channels_per_shard=" << channels_per_shard;
    censuses.push_back(std::move(run->flip_phys));
  }
  EXPECT_EQ(censuses[1], censuses[0]) << "sharded(1) flips != serial flips";
  EXPECT_EQ(censuses[2], censuses[0]) << "sharded(3) flips != serial flips";
}

}  // namespace
}  // namespace siloz
