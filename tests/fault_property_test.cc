// Property tests for the disturbance model across subarray sizes, blast
// radii, and thresholds.
#include <gtest/gtest.h>

#include <set>

#include "src/base/rng.h"
#include "src/base/units.h"
#include "src/dram/fault_model.h"

namespace siloz {
namespace {

constexpr uint32_t kRowsPerBank = 16384;
constexpr uint32_t kHalfRowBits = 4096 * 8;

// P1: flips never cross the silicon subarray boundary, for any subarray
// size and aggressor position.
class SubarraySizeProperty : public ::testing::TestWithParam<uint32_t> {};

TEST_P(SubarraySizeProperty, FlipsConfinedToAggressorSubarray) {
  const uint32_t rows_per_subarray = GetParam();
  DisturbanceProfile profile;
  profile.threshold_mean = 500.0;
  DisturbanceModel model(profile, kRowsPerBank, rows_per_subarray, kHalfRowBits);
  Rng rng(31 + rows_per_subarray);
  for (int trial = 0; trial < 30; ++trial) {
    // Bias toward boundary rows, where violations would appear.
    uint32_t aggressor;
    if (trial % 2 == 0) {
      const uint32_t boundary =
          static_cast<uint32_t>(rng.NextBelow(kRowsPerBank / rows_per_subarray)) *
          rows_per_subarray;
      aggressor = boundary + (rng.NextBelow(2) ? 0 : rows_per_subarray - 1);
    } else {
      aggressor = static_cast<uint32_t>(rng.NextBelow(kRowsPerBank));
    }
    uint64_t t = trial * 10 * kRefreshWindowNs;
    for (int i = 0; i < 1500; ++i) {
      for (const InternalFlip& flip :
           model.OnActivate(trial, HalfRowSide::kA, aggressor, t)) {
        ASSERT_EQ(flip.victim_row / rows_per_subarray, aggressor / rows_per_subarray)
            << "aggressor " << aggressor;
        ASSERT_NE(flip.victim_row, aggressor);
      }
      t += 50;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, SubarraySizeProperty,
                         ::testing::Values(128u, 512u, 1024u, 2048u, 4096u));

// P2: more activations never produce fewer flip events (monotonicity).
TEST(FaultPropertyTest, FlipEventsMonotoneInActivations) {
  DisturbanceProfile profile;
  profile.threshold_mean = 800.0;
  uint64_t previous = 0;
  for (uint32_t acts : {500u, 1000u, 2000u, 4000u, 8000u}) {
    DisturbanceModel model(profile, kRowsPerBank, 1024, kHalfRowBits);
    uint64_t t = 0;
    for (uint32_t i = 0; i < acts; ++i) {
      model.OnActivate(0, HalfRowSide::kA, 700, t);
      t += 50;
    }
    EXPECT_GE(model.total_flip_events(), previous) << acts;
    previous = model.total_flip_events();
  }
}

// P3: higher thresholds mean strictly no-more flips for the same attack.
TEST(FaultPropertyTest, FlipsAntitoneInThreshold) {
  uint64_t previous = ~0ull;
  for (double threshold : {400.0, 1000.0, 3000.0, 9000.0}) {
    DisturbanceProfile profile;
    profile.threshold_mean = threshold;
    profile.threshold_spread = 0.0;
    DisturbanceModel model(profile, kRowsPerBank, 1024, kHalfRowBits);
    uint64_t t = 0;
    for (uint32_t i = 0; i < 6000; ++i) {
      model.OnActivate(0, HalfRowSide::kA, 700, t);
      t += 50;
    }
    EXPECT_LE(model.total_flip_events(), previous) << threshold;
    previous = model.total_flip_events();
  }
}

// P4: distance-2 weight 0 means victims at distance 2 never flip.
TEST(FaultPropertyTest, ZeroDistanceTwoFactorConfinesToImmediateNeighbours) {
  DisturbanceProfile profile;
  profile.threshold_mean = 300.0;
  profile.distance2_factor = 0.0;
  DisturbanceModel model(profile, kRowsPerBank, 1024, kHalfRowBits);
  uint64_t t = 0;
  std::set<uint32_t> victims;
  for (uint32_t i = 0; i < 5000; ++i) {
    for (const InternalFlip& flip : model.OnActivate(0, HalfRowSide::kA, 700, t)) {
      victims.insert(flip.victim_row);
    }
    t += 50;
  }
  ASSERT_FALSE(victims.empty());
  for (uint32_t victim : victims) {
    EXPECT_TRUE(victim == 699 || victim == 701) << victim;
  }
}

// P5: flip bit positions are within the half-row and vary.
TEST(FaultPropertyTest, FlipBitsInRangeAndDispersed) {
  DisturbanceProfile profile;
  profile.threshold_mean = 200.0;
  DisturbanceModel model(profile, kRowsPerBank, 1024, kHalfRowBits);
  uint64_t t = 0;
  std::set<uint32_t> bits;
  for (uint32_t i = 0; i < 4000; ++i) {
    for (const InternalFlip& flip : model.OnActivate(0, HalfRowSide::kA, 700, t)) {
      ASSERT_LT(flip.bit, kHalfRowBits);
      bits.insert(flip.bit);
    }
    t += 50;
  }
  EXPECT_GT(bits.size(), 5u);
}

// P6: per-row thresholds are deterministic across model instances but vary
// across banks/sides/rows.
TEST(FaultPropertyTest, ThresholdFieldProperties) {
  DisturbanceProfile profile;
  DisturbanceModel a(profile, kRowsPerBank, 1024, kHalfRowBits);
  DisturbanceModel b(profile, kRowsPerBank, 1024, kHalfRowBits);
  std::set<uint64_t> distinct;
  for (uint32_t bank = 0; bank < 4; ++bank) {
    for (uint32_t row = 1000; row < 1020; ++row) {
      const double ta = a.ThresholdFor(bank, HalfRowSide::kA, row);
      EXPECT_DOUBLE_EQ(ta, b.ThresholdFor(bank, HalfRowSide::kA, row));
      EXPECT_NE(ta, a.ThresholdFor(bank, HalfRowSide::kB, row));
      distinct.insert(static_cast<uint64_t>(ta * 1000));
    }
  }
  EXPECT_GT(distinct.size(), 50u);
}

// P7: RowPress equivalent-activation accounting scales linearly with open
// time: double the open time, roughly halve the holds to first flip.
TEST(FaultPropertyTest, RowPressScalesWithOpenTime) {
  auto holds_until_flip = [](uint64_t open_ns) {
    DisturbanceProfile profile;
    profile.threshold_mean = 1000.0;
    profile.threshold_spread = 0.0;
    DisturbanceModel model(profile, kRowsPerBank, 1024, kHalfRowBits);
    uint64_t t = 0;
    for (uint32_t hold = 1; hold <= 100000; ++hold) {
      if (!model.OnRowOpen(0, HalfRowSide::kA, 700, open_ns, t).empty()) {
        return hold;
      }
      t += 1000;
    }
    return 0u;
  };
  const uint32_t slow = holds_until_flip(6000);
  const uint32_t fast = holds_until_flip(12000);
  ASSERT_GT(slow, 0u);
  ASSERT_GT(fast, 0u);
  EXPECT_NEAR(static_cast<double>(slow) / fast, 2.0, 0.2);
}

}  // namespace
}  // namespace siloz
