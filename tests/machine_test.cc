// Tests for sim::Machine composition (src/sim/machine.h).
#include <gtest/gtest.h>

#include "src/base/units.h"
#include "src/sim/machine.h"

namespace siloz {
namespace {

MachineConfig FaultConfig() {
  MachineConfig config;
  config.fault_tracking = true;
  DimmProfile profile;
  profile.disturbance.threshold_mean = 3000.0;
  profile.disturbance.threshold_spread = 0.1;
  profile.trr.enabled = false;
  config.dimm_profiles = {profile};
  return config;
}

TEST(MachineTest, TimingModeHasControllersAndFlatMemory) {
  MachineConfig config;
  Machine machine(config);
  EXPECT_FALSE(machine.fault_tracking());
  EXPECT_EQ(machine.controllers().size(), 2u);
  machine.phys_memory().WriteU64(1_GiB, 42);
  EXPECT_EQ(machine.phys_memory().ReadU64(1_GiB), 42u);
}

TEST(MachineTest, DramBackedMemoryRoundTrips) {
  Machine machine(FaultConfig());
  // Spans multiple cache lines, rows, channels, and devices.
  std::vector<uint8_t> data(4096);
  for (size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<uint8_t>(i * 13 + 7);
  }
  const uint64_t probes[] = {0, 100_MiB + 24, 191_GiB, 300_GiB};
  for (uint64_t phys : probes) {
    machine.phys_memory().WritePhys(phys, data);
    std::vector<uint8_t> out(data.size());
    machine.phys_memory().ReadPhys(phys, out);
    EXPECT_EQ(out, data) << "at phys " << phys;
  }
}

TEST(MachineTest, DramBackedMemoryDefaultsZero) {
  Machine machine(FaultConfig());
  EXPECT_EQ(machine.phys_memory().ReadU64(17_GiB + 8), 0u);
}

TEST(MachineTest, ActivatePhysAdvancesClockAndCountsActs) {
  Machine machine(FaultConfig());
  const uint64_t start = machine.clock_ns();
  machine.ActivatePhys(0);
  machine.ActivatePhys(100_MiB);  // different row
  EXPECT_EQ(machine.clock_ns(), start + 2 * machine.config().act_cost_ns);
  // The ACT landed on the device the decoder says it should.
  const MediaAddress media = *machine.decoder().PhysToMedia(0);
  EXPECT_GE(machine.device(media.socket, media.channel, media.dimm).counters().activates, 1u);
}

TEST(MachineTest, HammeringViaPhysProducesPhysResolvedFlips) {
  Machine machine(FaultConfig());
  // Alternate two same-bank rows to force real ACTs.
  const uint64_t row_stride = machine.decoder().geometry().row_group_bytes() * 32;
  for (int i = 0; i < 10000; ++i) {
    machine.ActivatePhys(i % 2 == 0 ? 0 : row_stride);
  }
  std::vector<PhysFlip> flips = machine.DrainFlips();
  ASSERT_FALSE(flips.empty());
  for (const PhysFlip& flip : flips) {
    // The resolved phys must decode back to the flip's media coordinates.
    const MediaAddress media = *machine.decoder().PhysToMedia(flip.phys);
    EXPECT_EQ(media.row, flip.record.media_row);
    EXPECT_EQ(media.rank, flip.record.rank);
    EXPECT_EQ(media.bank, flip.record.bank);
    EXPECT_EQ(media.socket, flip.media.socket);
  }
  // Drain clears.
  EXPECT_TRUE(machine.DrainFlips().empty());
}

TEST(MachineTest, DimmProfilesCycleAcrossDevices) {
  MachineConfig config = FaultConfig();
  config.dimm_profiles.clear();
  for (const char* name : {"A", "B", "C", "D", "E", "F"}) {
    DimmProfile profile;
    profile.name = name;
    config.dimm_profiles.push_back(profile);
  }
  Machine machine(config);
  EXPECT_EQ(machine.device(0, 0, 0).name(), "A");
  EXPECT_EQ(machine.device(0, 5, 0).name(), "F");
  EXPECT_EQ(machine.device(1, 0, 0).name(), "A");  // cycles per socket
}

TEST(MachineTest, PatrolScrubRepairsInjectedSingleFlips) {
  Machine machine(FaultConfig());
  machine.phys_memory().WriteU64(64_MiB, 0xAAAAAAAAAAAAAAAAull);
  const MediaAddress media = *machine.decoder().PhysToMedia(64_MiB);
  machine.device(media.socket, media.channel, media.dimm)
      .InjectFlip(media.rank, media.bank, media.row, media.column, 0, machine.clock_ns());
  machine.AdvanceClock(1000);
  EXPECT_EQ(machine.PatrolScrubAll(), 1u);
  EXPECT_EQ(machine.phys_memory().ReadU64(64_MiB), 0xAAAAAAAAAAAAAAAAull);
}

TEST(MachineTest, LinearAndSncDecodersSelectable) {
  MachineConfig config;
  config.decoder = DecoderKind::kLinear;
  Machine linear(config);
  EXPECT_EQ(linear.decoder().name(), "linear");
  config.decoder = DecoderKind::kSnc2;
  Machine snc(config);
  EXPECT_EQ(snc.decoder().name(), "snc2");
  EXPECT_EQ(snc.decoder().clusters_per_socket(), 2u);
}

}  // namespace
}  // namespace siloz
