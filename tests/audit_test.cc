// Tests for the static isolation-domain analyzer (src/audit).
//
// The positive case proves all four invariants on the paper's dual-socket
// evaluation platform; the negative cases corrupt one layer each (decoder
// mapping jump, decoder inverse, guard-band geometry, presumed subarray
// size) and require the auditor to produce findings with correct decoded
// coordinates for exactly the violated invariant.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "src/addr/decoder.h"
#include "src/audit/auditor.h"
#include "src/audit/corrupt_decoder.h"
#include "src/base/units.h"
#include "src/dram/remap.h"
#include "src/ept/phys_memory.h"
#include "src/siloz/hypervisor.h"

namespace siloz {
namespace {

using audit::Auditor;
using audit::CorruptedDecoder;
using audit::Corruption;
using audit::Finding;
using audit::Invariant;
using audit::Options;
using audit::Report;

// Fast-but-representative probing for unit tests: every pass still runs, the
// physical sweeps just stride coarsely.
Options TestOptions() {
  Options options;
  options.probe_stride = 16_MiB;
  options.random_probes = 256;
  return options;
}

uint64_t Violations(const Report& report, Invariant invariant) {
  return report.StatsFor(invariant).violations;
}

std::vector<Finding> FindingsOf(const Report& report, Invariant invariant) {
  std::vector<Finding> result;
  for (const Finding& finding : report.findings) {
    if (finding.invariant == invariant) {
      result.push_back(finding);
    }
  }
  return result;
}

TEST(AuditorTest, DefaultPlatformUpholdsAllInvariants) {
  DramGeometry geometry;
  SkylakeDecoder decoder(geometry);
  Result<Report> report = audit::AuditPlatform(decoder, SilozConfig{}, RemapConfig{},
                                               TestOptions());
  ASSERT_TRUE(report.ok()) << report.error().ToString();
  EXPECT_TRUE(report->ok()) << report->ToText();
  // Every invariant must actually have run and probed something.
  for (Invariant invariant :
       {Invariant::kDecoderInvertibility, Invariant::kDomainClosure, Invariant::kGuardFencing,
        Invariant::kBlastRadius}) {
    EXPECT_TRUE(report->StatsFor(invariant).ran);
    EXPECT_GT(report->StatsFor(invariant).probes, 0u);
  }
}

TEST(AuditorTest, SncPlatformUpholdsAllInvariants) {
  DramGeometry geometry;
  SncDecoder decoder(geometry, 2);
  Result<Report> report = audit::AuditPlatform(decoder, SilozConfig{}, RemapConfig{},
                                               TestOptions());
  ASSERT_TRUE(report.ok()) << report.error().ToString();
  EXPECT_TRUE(report->ok()) << report->ToText();
}

TEST(AuditorTest, Ddr5PlatformUpholdsAllInvariants) {
  DramGeometry geometry = Ddr5Geometry();
  SkylakeDecoder decoder(geometry);
  SilozConfig config;
  config.uniform_internal_addressing = true;
  Result<Report> report =
      audit::AuditPlatform(decoder, config, Ddr5RemapConfig(), TestOptions());
  ASSERT_TRUE(report.ok()) << report.error().ToString();
  EXPECT_TRUE(report->ok()) << report->ToText();
}

TEST(AuditorTest, VendorScramblingStillUpholdsInvariants) {
  DramGeometry geometry;
  SkylakeDecoder decoder(geometry);
  RemapConfig remap;
  remap.vendor_scrambling = true;
  Result<Report> report = audit::AuditPlatform(decoder, SilozConfig{}, remap, TestOptions());
  ASSERT_TRUE(report.ok()) << report.error().ToString();
  EXPECT_TRUE(report->ok()) << report->ToText();
}

TEST(AuditorTest, BaselineModeIsRejected) {
  DramGeometry geometry;
  SkylakeDecoder decoder(geometry);
  SilozConfig config;
  config.enabled = false;
  Result<Report> report = audit::AuditPlatform(decoder, config, RemapConfig{}, TestOptions());
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.error().code, ErrorCode::kInvalidArgument);
}

// Negative case 1a: the machine's mapping jumps land one region off from
// what the hypervisor assumed at boot. Still a bijection, so invertibility
// holds — but half of all pages decode into the neighbouring subarray group,
// which domain closure must catch.
TEST(AuditorTest, ShiftedMappingJumpBreaksDomainClosure) {
  DramGeometry geometry;
  SkylakeDecoder decoder(geometry);
  CorruptedDecoder truth(decoder, Corruption::kShiftedJump, decoder.region_bytes());
  Result<Report> report = audit::AuditProvisioningPlan(decoder, truth, SilozConfig{},
                                                       RemapConfig{}, TestOptions());
  ASSERT_TRUE(report.ok()) << report.error().ToString();
  EXPECT_FALSE(report->ok());
  EXPECT_EQ(Violations(*report, Invariant::kDecoderInvertibility), 0u);
  EXPECT_GT(Violations(*report, Invariant::kDomainClosure), 0u);

  // Verify the finding's decoded coordinates against the corrupted truth:
  // the reported media address must be what the "real machine" serves at the
  // reported physical address, and its subarray must disagree with the one
  // the provisioning plan assumed (the intact decoder's view).
  const std::vector<Finding> findings = FindingsOf(*report, Invariant::kDomainClosure);
  ASSERT_FALSE(findings.empty());
  for (const Finding& finding : findings) {
    const MediaAddress real = *truth.PhysToMedia(finding.phys);
    EXPECT_EQ(real, finding.media) << finding.ToString();
    const MediaAddress assumed = *decoder.PhysToMedia(finding.phys);
    EXPECT_NE(SubarrayOfRow(geometry, assumed.row), SubarrayOfRow(geometry, real.row))
        << finding.ToString();
  }
}

// Negative case 1b: the forward map is fine but the inverse is off by one
// page — invertibility must fail, pinned to the exact mismatching address.
TEST(AuditorTest, BrokenInverseBreaksInvertibility) {
  DramGeometry geometry;
  SkylakeDecoder decoder(geometry);
  CorruptedDecoder truth(decoder, Corruption::kBrokenInverse, decoder.region_bytes());
  Result<Report> report = audit::AuditProvisioningPlan(decoder, truth, SilozConfig{},
                                                       RemapConfig{}, TestOptions());
  ASSERT_TRUE(report.ok()) << report.error().ToString();
  EXPECT_FALSE(report->ok());
  EXPECT_GT(Violations(*report, Invariant::kDecoderInvertibility), 0u);

  const std::vector<Finding> findings = FindingsOf(*report, Invariant::kDecoderInvertibility);
  ASSERT_FALSE(findings.empty());
  for (const Finding& finding : findings) {
    // The decoded coordinates must genuinely round-trip to a different page.
    const Result<MediaAddress> media = truth.PhysToMedia(finding.phys);
    if (media.ok()) {
      EXPECT_NE(*truth.MediaToPhys(*media), finding.phys) << finding.ToString();
    }
  }
}

// Negative case 2: a guard band of one row cannot absorb a distance-2 blast
// radius — guard fencing must fail on rows adjacent to the EPT row.
TEST(AuditorTest, UndersizedGuardBandBreaksGuardFencing) {
  DramGeometry geometry;
  SkylakeDecoder decoder(geometry);
  SilozConfig config;
  config.ept_block_row_groups = 2;
  config.ept_row_group_offset = 1;
  Result<Report> report = audit::AuditPlatform(decoder, config, RemapConfig{}, TestOptions());
  ASSERT_TRUE(report.ok()) << report.error().ToString();
  EXPECT_FALSE(report->ok());
  EXPECT_GT(Violations(*report, Invariant::kGuardFencing), 0u);
  // The shrunken guard band is a fencing defect, not a decoding one.
  EXPECT_EQ(Violations(*report, Invariant::kDecoderInvertibility), 0u);
  EXPECT_EQ(Violations(*report, Invariant::kDomainClosure), 0u);

  // Each finding must name an allocatable row within blast radius of the EPT
  // row in internal space.
  const std::vector<Finding> findings = FindingsOf(*report, Invariant::kGuardFencing);
  ASSERT_FALSE(findings.empty());
  for (const Finding& finding : findings) {
    const MediaAddress media = *decoder.PhysToMedia(finding.phys);
    EXPECT_EQ(media, finding.media) << finding.ToString();
    RowRemapper remapper(geometry, RemapConfig{});
    // The reported internal row is a genuine neighbour of the reported
    // media row's internal image on at least one rank/side.
    bool adjacent = false;
    for (uint32_t rank = 0; rank < geometry.ranks_per_dimm; ++rank) {
      for (HalfRowSide side : {HalfRowSide::kA, HalfRowSide::kB}) {
        const uint32_t internal = remapper.ToInternal(media.row, rank, media.bank, side);
        adjacent |= internal == finding.internal_row;
      }
    }
    EXPECT_TRUE(adjacent) << finding.ToString();
  }
}

// Negative case 3: Siloz booted believing subarrays have 512 rows, but the
// silicon uses 1024 — domains tile at half the true subarray size, so
// disturbance crosses logical-node boundaries inside one silicon subarray.
TEST(AuditorTest, WrongPresumedSubarraySizeBreaksBlastRadius) {
  DramGeometry geometry;
  geometry.rows_per_subarray = 512;
  SkylakeDecoder decoder(geometry);
  SilozConfig config;
  config.rows_per_subarray = 512;
  Options options = TestOptions();
  options.silicon_rows_per_subarray = 1024;
  Result<Report> report = audit::AuditPlatform(decoder, config, RemapConfig{}, options);
  ASSERT_TRUE(report.ok()) << report.error().ToString();
  EXPECT_FALSE(report->ok());
  EXPECT_GT(Violations(*report, Invariant::kBlastRadius), 0u);
  // The plan itself is consistent at the presumed size.
  EXPECT_EQ(Violations(*report, Invariant::kDomainClosure), 0u);
  EXPECT_EQ(Violations(*report, Invariant::kDecoderInvertibility), 0u);

  // Findings sit at a 512-row domain boundary interior to a 1024-row silicon
  // subarray: the neighbour's presumed group differs from the row's.
  const std::vector<Finding> findings = FindingsOf(*report, Invariant::kBlastRadius);
  ASSERT_FALSE(findings.empty());
  for (const Finding& finding : findings) {
    EXPECT_NE(finding.group, Finding::kNoGroup);
    // Internal neighbour distance is within the blast radius of the
    // reported row's internal image inside the true silicon subarray.
    EXPECT_EQ(finding.internal_row / 1024,
              RowRemapper(geometry, RemapConfig{})
                      .ToInternal(finding.media.row, finding.media.rank, finding.media.bank,
                                  HalfRowSide::kA) /
                  1024)
        << finding.ToString();
  }
}

// And the same misconfiguration in the other direction is safe: presuming
// 1024-row subarrays on 512-row silicon over-isolates but never leaks.
TEST(AuditorTest, OverestimatedSubarraySizeStillContains) {
  DramGeometry geometry;
  SkylakeDecoder decoder(geometry);
  Options options = TestOptions();
  options.silicon_rows_per_subarray = 512;
  Result<Report> report = audit::AuditPlatform(decoder, SilozConfig{}, RemapConfig{}, options);
  ASSERT_TRUE(report.ok()) << report.error().ToString();
  EXPECT_TRUE(report->ok()) << report->ToText();
}

TEST(AuditorTest, SecureEptModeSkipsGuardFencing) {
  DramGeometry geometry;
  SkylakeDecoder decoder(geometry);
  SilozConfig config;
  config.ept_protection = EptProtection::kSecureEpt;
  Result<Report> report = audit::AuditPlatform(decoder, config, RemapConfig{}, TestOptions());
  ASSERT_TRUE(report.ok()) << report.error().ToString();
  EXPECT_TRUE(report->ok()) << report->ToText();
  EXPECT_FALSE(report->StatsFor(Invariant::kGuardFencing).ran);
  EXPECT_NE(report->ToText().find("skipped"), std::string::npos);
}

// --- Live-VM containment pass ---

TEST(AuditorTest, VmContainmentPassesForHealthyVm) {
  DramGeometry geometry;
  SkylakeDecoder decoder(geometry);
  FlatPhysMemory memory;
  SilozHypervisor hypervisor(decoder, memory, SilozConfig{});
  ASSERT_TRUE(hypervisor.Boot().ok());
  const VmId vm = *hypervisor.CreateVm({.name = "tenant", .memory_bytes = 3_GiB});

  Auditor auditor(hypervisor, RemapConfig{}, TestOptions());
  Report report;
  auditor.CheckVmContainment(**hypervisor.GetVm(vm), report);
  EXPECT_TRUE(report.ok()) << report.ToText();
  EXPECT_GT(report.StatsFor(Invariant::kDomainClosure).probes, 0u);
}

TEST(AuditorTest, VmContainmentCatchesHammeredPte) {
  DramGeometry geometry;
  SkylakeDecoder decoder(geometry);
  FlatPhysMemory memory;
  SilozHypervisor hypervisor(decoder, memory, SilozConfig{});
  ASSERT_TRUE(hypervisor.Boot().ok());
  const VmId vm = *hypervisor.CreateVm({.name = "tenant", .memory_bytes = 3_GiB});
  Vm& tenant = **hypervisor.GetVm(vm);
  // Flip a frame bit in a leaf PTE, as a successful Rowhammer attack would.
  memory.FlipBit(tenant.ept()->table_pages().back() + 4, 2);

  Auditor auditor(hypervisor, RemapConfig{}, TestOptions());
  Report report;
  auditor.CheckVmContainment(tenant, report);
  EXPECT_FALSE(report.ok());
  EXPECT_GT(Violations(report, Invariant::kDomainClosure), 0u);
}

// --- Report formatting ---

TEST(ReportTest, TextAndJsonRoundTripKeyFacts) {
  DramGeometry geometry;
  SkylakeDecoder decoder(geometry);
  SilozConfig config;
  config.ept_block_row_groups = 2;
  config.ept_row_group_offset = 1;
  Result<Report> report = audit::AuditPlatform(decoder, config, RemapConfig{}, TestOptions());
  ASSERT_TRUE(report.ok());
  const std::string text = report->ToText();
  EXPECT_NE(text.find("FAIL"), std::string::npos);
  EXPECT_NE(text.find("guard-fencing"), std::string::npos);
  const std::string json = report->ToJson();
  EXPECT_NE(json.find("\"ok\":false"), std::string::npos);
  EXPECT_NE(json.find("\"invariant\":\"guard-fencing\""), std::string::npos);
  // Balanced braces as a cheap structural sanity check.
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
}

TEST(ReportTest, FindingCapSuppressesButCounts) {
  DramGeometry geometry;
  SkylakeDecoder decoder(geometry);
  CorruptedDecoder truth(decoder, Corruption::kBrokenInverse, decoder.region_bytes());
  Options options = TestOptions();
  options.max_findings_per_invariant = 3;
  Result<Report> report =
      audit::AuditProvisioningPlan(decoder, truth, SilozConfig{}, RemapConfig{}, options);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(FindingsOf(*report, Invariant::kDecoderInvertibility).size(), 3u);
  EXPECT_GT(report->suppressed, 0u);
  EXPECT_GT(Violations(*report, Invariant::kDecoderInvertibility), 3u);
}

}  // namespace
}  // namespace siloz
