// Tests for the memory controller timing model (src/memctl).
#include <gtest/gtest.h>

#include <vector>

#include "src/addr/decoder.h"
#include "src/base/units.h"
#include "src/memctl/controller.h"
#include "src/memctl/engine.h"

namespace siloz {
namespace {

DramGeometry Geometry() { return DramGeometry{}; }

// Discards a value while keeping the call (quiet under -Wunused).
inline void benchmark_unused(double) {}

MemRequest At(const AddressDecoder& decoder, uint64_t phys, bool write = false) {
  MemRequest request;
  request.address = *decoder.PhysToMedia(phys);
  request.is_write = write;
  request.source_socket = request.address.socket;
  return request;
}

TEST(ControllerTest, RowHitFasterThanMiss) {
  const DramGeometry geometry = Geometry();
  DdrTimings no_refresh;
  no_refresh.model_refresh = false;  // exact-latency arithmetic below
  MemoryController controller(geometry, 0, no_refresh);
  SkylakeDecoder decoder(geometry);

  // Two accesses to the same cache line: second is a row hit.
  const double first = controller.Serve(At(decoder, 0), 0.0);
  const double second = controller.Serve(At(decoder, 0), first);
  const DdrTimings& t = controller.timings();
  EXPECT_GT(first, t.t_rcd);                      // miss pays ACT+CAS
  EXPECT_NEAR(second - first, t.t_cas + t.t_burst, 1e-9);
  EXPECT_EQ(controller.stats().row_hits, 1u);
  EXPECT_EQ(controller.stats().row_misses, 1u);
}

TEST(ControllerTest, SameBankConflictSerializesOnTrc) {
  const DramGeometry geometry = Geometry();
  MemoryController controller(geometry, 0);
  SkylakeDecoder decoder(geometry);

  // Alternate two rows of the same bank: every access is a row miss gated
  // by tRC.
  const uint64_t row_stride = geometry.row_group_bytes() * 32;  // different chunk slot
  MemRequest a = At(decoder, 0);
  MemRequest b = At(decoder, row_stride);
  ASSERT_EQ(SocketBankIndex(geometry, a.address), SocketBankIndex(geometry, b.address));
  ASSERT_NE(a.address.row, b.address.row);

  for (int i = 0; i < 10; ++i) {
    benchmark_unused(controller.Serve(i % 2 == 0 ? a : b, 0.0));
  }
  // 10 conflicting accesses need at least 9 * tRC of bank time.
  EXPECT_GE(controller.stats().busy_ns, 9 * controller.timings().t_rc());
  EXPECT_EQ(controller.stats().row_hits, 0u);
}

TEST(ControllerTest, DifferentBanksOverlap) {
  const DramGeometry geometry = Geometry();
  SkylakeDecoder decoder(geometry);
  DdrTimings no_refresh;
  no_refresh.model_refresh = false;  // isolate the bank-parallelism effect

  // N row misses to N different banks complete far faster than N misses to
  // one bank: bank-level parallelism (§4.1).
  const int n = 32;
  MemoryController parallel_controller(geometry, 0, no_refresh);
  double parallel_done = 0.0;
  for (int i = 0; i < n; ++i) {
    // Consecutive cache lines hit different banks under the Skylake decoder.
    parallel_done = std::max(
        parallel_done, parallel_controller.Serve(At(decoder, i * kCacheLineBytes * 6), 0.0));
  }

  MemoryController serial_controller(geometry, 0, no_refresh);
  const uint64_t row_stride = geometry.row_group_bytes() * 32;
  double serial_done = 0.0;
  for (int i = 0; i < n; ++i) {
    serial_done =
        std::max(serial_done, serial_controller.Serve(At(decoder, (i % 2) * row_stride), 0.0));
  }
  EXPECT_LT(parallel_done, serial_done / 4);
}

TEST(ControllerTest, RemoteSocketPaysNumaLatency) {
  const DramGeometry geometry = Geometry();
  DdrTimings no_refresh;
  no_refresh.model_refresh = false;  // exact-latency comparison
  MemoryController controller(geometry, 0, no_refresh);
  SkylakeDecoder decoder(geometry);

  MemRequest local = At(decoder, 0);
  const double local_latency = controller.Serve(local, 0.0);

  MemoryController controller2(geometry, 0, no_refresh);
  MemRequest remote = At(decoder, 0);
  remote.source_socket = 1;
  const double remote_latency = controller2.Serve(remote, 0.0);
  EXPECT_NEAR(remote_latency - local_latency, controller.timings().t_remote_numa, 1e-9);
}

TEST(ControllerTest, FawLimitsActivationBursts) {
  const DramGeometry geometry = Geometry();
  MemoryController controller(geometry, 0);
  SkylakeDecoder decoder(geometry);

  // 8 misses to 8 banks of the same rank: the 5th ACT must wait for tFAW.
  // Banks of one rank under the Skylake decoder: same channel, same rank.
  std::vector<MemRequest> requests;
  uint64_t phys = 0;
  while (requests.size() < 8) {
    MemRequest r = At(decoder, phys);
    if (r.address.channel == 0 && r.address.rank == 0 && r.address.dimm == 0) {
      requests.push_back(r);
    }
    phys += kCacheLineBytes;
  }
  double done = 0.0;
  for (const MemRequest& r : requests) {
    done = std::max(done, controller.Serve(r, 0.0));
  }
  EXPECT_GE(done, controller.timings().t_faw);
}

TEST(EngineTest, MorePalallelismMoreBandwidth) {
  const DramGeometry geometry = Geometry();
  SkylakeDecoder decoder(geometry);

  std::vector<MemRequest> stream;
  for (int i = 0; i < 20000; ++i) {
    stream.push_back(At(decoder, static_cast<uint64_t>(i) * kCacheLineBytes));
  }

  auto run = [&](uint32_t mlp) {
    MemoryController c0(geometry, 0);
    MemoryController c1(geometry, 1);
    MemoryController* controllers[] = {&c0, &c1};
    EngineConfig config;
    config.max_outstanding = mlp;
    return RunClosedLoop(stream, controllers, config);
  };

  const EngineResult serial = run(1);
  const EngineResult wide = run(32);
  EXPECT_GT(wide.bandwidth_gib_per_s(), 2.0 * serial.bandwidth_gib_per_s());
  EXPECT_EQ(serial.requests, 20000u);
}

TEST(EngineTest, ComputeGapBoundsBandwidth) {
  const DramGeometry geometry = Geometry();
  SkylakeDecoder decoder(geometry);
  std::vector<MemRequest> stream;
  for (int i = 0; i < 5000; ++i) {
    stream.push_back(At(decoder, static_cast<uint64_t>(i) * kCacheLineBytes));
  }
  MemoryController c0(geometry, 0);
  MemoryController c1(geometry, 1);
  MemoryController* controllers[] = {&c0, &c1};
  EngineConfig config;
  config.max_outstanding = 16;
  config.compute_ns_per_access = 100.0;  // compute-bound
  const EngineResult result = RunClosedLoop(stream, controllers, config);
  // Elapsed must be at least requests * gap.
  EXPECT_GE(result.elapsed_ns, 5000 * 100.0 * 0.99);
}

TEST(EngineTest, StatsAccumulate) {
  const DramGeometry geometry = Geometry();
  SkylakeDecoder decoder(geometry);
  MemoryController c0(geometry, 0);
  MemoryController c1(geometry, 1);
  MemoryController* controllers[] = {&c0, &c1};
  std::vector<MemRequest> stream = {At(decoder, 0), At(decoder, geometry.socket_bytes())};
  RunClosedLoop(stream, controllers, EngineConfig{});
  EXPECT_EQ(c0.stats().requests, 1u);
  EXPECT_EQ(c1.stats().requests, 1u);
  c0.ResetStats();
  EXPECT_EQ(c0.stats().requests, 0u);
}

}  // namespace
}  // namespace siloz
