// Isolation audit and Table-3 containment across the platform matrix.
//
// Every platform in the PlatformDecoder registry must (a) pass the full
// four-invariant audit on a correctly booted plan, (b) FAIL the audit when
// the machine's true mapping is deliberately corrupted (the negative
// controls: a shifted mapping jump breaks domain closure without breaking
// the bijection, a broken inverse breaks invertibility), and (c) contain
// every Blacksmith-induced flip to the attacker's own subarray groups on a
// fault-tracking machine — the paper's Table 3, parameterized over the
// matrix instead of one Skylake box.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/addr/platform.h"
#include "src/addr/subarray_group.h"
#include "src/attack/blacksmith.h"
#include "src/audit/auditor.h"
#include "src/audit/corrupt_decoder.h"
#include "src/base/units.h"
#include "src/sim/machine.h"
#include "src/siloz/hypervisor.h"

namespace siloz {
namespace {

using audit::AuditPlatform;
using audit::AuditProvisioningPlan;
using audit::Invariant;
using audit::Report;

// Stratified probing at 1 MiB (default 256 KiB) keeps the 4-platform sweep
// inside a test budget; endpoints and seeded random probes are unaffected,
// so every range boundary is still checked exactly.
audit::Options FastOptions() {
  audit::Options options;
  options.probe_stride = 1 * kMiB;
  options.random_probes = 1024;
  options.threads = 1;
  return options;
}

// The Siloz boot parameters ApplyPlatform would install (sim/experiment.h):
// the platform's default subarray size and DDR-generation semantics.
SilozConfig ConfigFor(const PlatformInfo& info) {
  SilozConfig config;
  config.rows_per_subarray = info.geometry.rows_per_subarray;
  config.uniform_internal_addressing = info.uniform_internal_addressing;
  return config;
}

std::unique_ptr<AddressDecoder> BuildDecoder(const PlatformInfo& info) {
  Result<std::unique_ptr<AddressDecoder>> made = info.make(info.geometry);
  EXPECT_TRUE(made.ok()) << info.name;
  return std::move(*made);
}

TEST(PlatformAuditTest, FullAuditPassesOnEveryPlatform) {
  for (const auto& [name, info] : PlatformRegistry()) {
    const std::unique_ptr<AddressDecoder> decoder = BuildDecoder(info);
    Result<Report> report = AuditPlatform(*decoder, ConfigFor(info), info.remap, FastOptions());
    ASSERT_TRUE(report.ok()) << name << ": " << report.error().ToString();
    EXPECT_TRUE(report->ok()) << name << ":\n" << report->ToText();
    for (Invariant invariant :
         {Invariant::kDecoderInvertibility, Invariant::kDomainClosure,
          Invariant::kGuardFencing, Invariant::kBlastRadius}) {
      const audit::InvariantStats& stats = report->StatsFor(invariant);
      EXPECT_TRUE(stats.ran) << name << " " << audit::InvariantName(invariant);
      EXPECT_GT(stats.probes, 0u) << name << " " << audit::InvariantName(invariant);
      EXPECT_EQ(stats.violations, 0u) << name << " " << audit::InvariantName(invariant);
    }
  }
}

// Negative control 1: the machine's real mapping has a rotated mapping jump
// the boot decoder doesn't know about. The corrupted decoder is still a
// bijection, so invertibility must stay clean — the audit has to catch this
// through domain closure, per platform.
TEST(PlatformAuditTest, ShiftedJumpCorruptionFailsClosureOnEveryPlatform) {
  for (const auto& [name, info] : PlatformRegistry()) {
    const std::unique_ptr<AddressDecoder> decoder = BuildDecoder(info);
    audit::CorruptedDecoder truth(*decoder, audit::Corruption::kShiftedJump,
                                  ShiftedJumpPeriod(info, info.geometry));
    Result<Report> report =
        AuditProvisioningPlan(*decoder, truth, ConfigFor(info), info.remap, FastOptions());
    ASSERT_TRUE(report.ok()) << name << ": " << report.error().ToString();
    EXPECT_FALSE(report->ok()) << name << ": shifted-jump corruption went undetected";
    EXPECT_EQ(report->StatsFor(Invariant::kDecoderInvertibility).violations, 0u)
        << name << ": the shifted decoder is a bijection; invertibility should hold";
    EXPECT_GT(report->StatsFor(Invariant::kDomainClosure).violations, 0u)
        << name << ":\n" << report->ToText();
  }
}

// Negative control 2: the decode direction is fine but the inverse is wrong
// (MediaToPhys lands on a different page). Invertibility must flag it on
// every platform.
TEST(PlatformAuditTest, BrokenInverseCorruptionFailsInvertibilityOnEveryPlatform) {
  for (const auto& [name, info] : PlatformRegistry()) {
    const std::unique_ptr<AddressDecoder> decoder = BuildDecoder(info);
    audit::CorruptedDecoder truth(*decoder, audit::Corruption::kBrokenInverse,
                                  ShiftedJumpPeriod(info, info.geometry));
    Result<Report> report =
        AuditProvisioningPlan(*decoder, truth, ConfigFor(info), info.remap, FastOptions());
    ASSERT_TRUE(report.ok()) << name << ": " << report.error().ToString();
    EXPECT_FALSE(report->ok()) << name << ": broken-inverse corruption went undetected";
    EXPECT_GT(report->StatsFor(Invariant::kDecoderInvertibility).violations, 0u)
        << name << ":\n" << report->ToText();
  }
}

// Table 3 (§7.1) across the matrix: an attacker VM fuzzes its own memory on
// a fault-tracking machine built from the platform's decoder, remap chain,
// and TRR generation defaults. Flips must land — and land ONLY — inside the
// attacker's subarray groups.
TEST(PlatformAuditTest, TableThreeContainmentOnEveryPlatform) {
  for (const auto& [name, info] : PlatformRegistry()) {
    MachineConfig machine_config;
    machine_config.geometry = info.geometry;
    machine_config.platform = name;
    machine_config.fault_tracking = true;
    // Three DIMM personalities (thresholds scaled as in bench_table3) with
    // the platform's remap chain and TRR generation defaults on each.
    machine_config.dimm_profiles.clear();
    const struct {
      const char* dimm;
      double threshold;
      bool scrambling;
    } specs[] = {{"A", 2400.0, false}, {"C", 2100.0, true}, {"E", 2500.0, true}};
    for (const auto& spec : specs) {
      DimmProfile dimm;
      dimm.name = spec.dimm;
      dimm.disturbance.threshold_mean = spec.threshold;
      dimm.disturbance.threshold_spread = 0.15;
      dimm.disturbance.seed = 0x51102 + spec.dimm[0];
      dimm.remap = info.remap;
      dimm.remap.vendor_scrambling = spec.scrambling;
      dimm.trr = info.trr;
      dimm.trr.enabled = true;
      machine_config.dimm_profiles.push_back(dimm);
    }
    Machine machine(machine_config);

    SilozHypervisor hypervisor(machine.decoder(), machine.phys_memory(), ConfigFor(info));
    ASSERT_TRUE(hypervisor.Boot().ok()) << name;
    Result<VmId> attacker = hypervisor.CreateVm({.name = "blacksmith", .memory_bytes = 6_GiB});
    ASSERT_TRUE(attacker.ok()) << name << ": " << attacker.error().ToString();
    Vm& vm = **hypervisor.GetVm(*attacker);

    std::vector<PhysRange> pinned;
    for (uint32_t group : vm.guest_groups()) {
      for (const PhysRange& range : hypervisor.group_map().RangesOf(group)) {
        pinned.push_back(range);
      }
    }
    ASSERT_FALSE(pinned.empty()) << name;

    BlacksmithConfig fuzz;
    fuzz.patterns = 12;
    fuzz.rounds = 1200;
    fuzz.min_pairs = 6;
    fuzz.max_pairs = 16;
    FuzzReport report = BlacksmithFuzzer(fuzz).Run(machine, pinned);

    // The 24-hour soak + patrol scrub from the paper's method.
    machine.AdvanceClock(24ull * 3600 * 1'000'000'000);
    machine.PatrolScrubAll();
    std::vector<PhysFlip> late = machine.DrainFlips();
    report.flips.insert(report.flips.end(), late.begin(), late.end());

    const FlipCensus census = ClassifyFlips(report.flips, hypervisor.group_map(), pinned);
    EXPECT_GT(census.inside, 0u)
        << name << ": the campaign produced no flips; containment is vacuous"
        << " (activations=" << report.activations << ")";
    EXPECT_EQ(census.outside, 0u)
        << name << ": " << census.outside << " flip(s) escaped the attacker's groups";
    for (uint32_t group : census.groups_hit) {
      EXPECT_NE(std::find(vm.guest_groups().begin(), vm.guest_groups().end(), group),
                vm.guest_groups().end())
          << name << ": flips touched group " << group << " outside the attacker VM";
    }
  }
}

}  // namespace
}  // namespace siloz
