// Error-path tests for the transactional VM lifecycle (DESIGN.md §11).
//
// Every test here follows the same shape: snapshot the hypervisor's
// conservation state, force a specific allocation or release to fail via the
// deterministic FaultInjector, and verify the state is bit-identical
// afterward (failed creates) or reachable again (interrupted destroys). The
// three historical leak sites — AllocateRuns mid-create, the baseline
// contiguous allocation, and the MMIO window — each get a targeted
// regression; the sweeps then cover every reachable fault point k = 1..N.
#include <gtest/gtest.h>
#include <memory>

#include "src/addr/decoder.h"
#include "src/base/fault_injector.h"
#include "src/base/transaction.h"
#include "src/base/units.h"
#include "src/ept/phys_memory.h"
#include "src/hostmem/buddy.h"
#include "src/siloz/conservation.h"
#include "src/siloz/hypervisor.h"

namespace siloz {
namespace {

TEST(FaultInjectorTest, FiresExactlyOnceAtKthMatchingCall) {
  BuddyAllocator allocator({PhysRange{0, 1_MiB}});
  ScopedFault fault(/*k=*/2, "alloc.buddy.");
  EXPECT_TRUE(allocator.Allocate(kOrder4K).ok());
  Result<uint64_t> second = allocator.Allocate(kOrder4K);
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(second.error().code, ErrorCode::kNoMemory);
  EXPECT_NE(second.error().message.find("injected fault at alloc.buddy.page"),
            std::string::npos);
  // One-shot: the same k is never re-triggered, so cleanup code that runs
  // because of the injected failure is not itself sabotaged.
  EXPECT_TRUE(allocator.Allocate(kOrder4K).ok());
  EXPECT_EQ(FaultInjector::Global().matched_calls(), 3u);
  EXPECT_EQ(FaultInjector::Global().faults_fired(), 1u);
}

TEST(FaultInjectorTest, PrefixSelectsSiteNamespace) {
  BuddyAllocator allocator({PhysRange{0, 1_MiB}});
  Result<uint64_t> page = allocator.Allocate(kOrder4K);
  ASSERT_TRUE(page.ok());
  ScopedFault fault(/*k=*/1, "free.");
  // Allocation sites do not match a "free." arm.
  EXPECT_TRUE(allocator.Allocate(kOrder4K).ok());
  EXPECT_EQ(FaultInjector::Global().faults_fired(), 0u);
  Status freed = allocator.Free(*page, kOrder4K);
  ASSERT_FALSE(freed.ok());
  EXPECT_NE(freed.error().message.find("injected fault at free.buddy.page"),
            std::string::npos);
}

TEST(ReservationTransactionTest, RollsBackNewestFirstUnlessCommitted) {
  std::vector<int> undone;
  {
    ReservationTransaction txn;
    txn.OnRollback([&undone] { undone.push_back(1); });
    txn.OnRollback([&undone] { undone.push_back(2); });
    EXPECT_EQ(txn.pending_undos(), 2u);
  }
  EXPECT_EQ(undone, (std::vector<int>{2, 1}));
  undone.clear();
  {
    ReservationTransaction txn;
    txn.OnRollback([&undone] { undone.push_back(1); });
    txn.Commit();
  }
  EXPECT_TRUE(undone.empty());
}

class LifecycleFaultTest : public ::testing::Test {
 protected:
  LifecycleFaultTest() : decoder_(geometry_) {}

  std::unique_ptr<SilozHypervisor> MakeBooted(SilozConfig config = {}) {
    auto hypervisor = std::make_unique<SilozHypervisor>(decoder_, memory_, config);
    Status status = hypervisor->Boot();
    [&] { ASSERT_TRUE(status.ok()) << status.error().ToString(); }();
    return hypervisor;
  }

  // Fails the k-th `site_prefix` call inside CreateVm and requires the
  // create to fail without disturbing any conserved quantity.
  void ExpectConservedFailure(SilozHypervisor& hypervisor, const VmConfig& vm, uint64_t k,
                              const std::string& site_prefix) {
    const ConservationSnapshot before = CaptureConservation(hypervisor);
    Result<VmId> id = [&] {
      ScopedFault fault(k, site_prefix);
      return hypervisor.CreateVm(vm);
    }();
    ASSERT_FALSE(id.ok()) << "fault at " << site_prefix << " k=" << k << " was not fatal";
    EXPECT_EQ(id.error().code, ErrorCode::kNoMemory);
    EXPECT_EQ(DiffConservation(before, CaptureConservation(hypervisor)), "");
    EXPECT_EQ(hypervisor.backing_map_entries(), 0u);
    EXPECT_EQ(hypervisor.ept_page_map_entries(), 0u);
  }

  DramGeometry geometry_;
  SkylakeDecoder decoder_;
  FlatPhysMemory memory_;
};

// Regression: AllocateRuns failing on the SECOND node used to return through
// SILOZ_RETURN_IF_ERROR before the unwind lambda existed, leaking the first
// node's runs, the cgroup, both node reservations, and the phantom
// vm_backing_/vm_ept_pages_ entries.
TEST_F(LifecycleFaultTest, RunsFailureOnSecondNodeConservesEverything) {
  auto hypervisor_owner = MakeBooted();
  SilozHypervisor& hypervisor = *hypervisor_owner;
  // 3 GiB spans two 1.5 GiB guest nodes, so AllocateRuns is called twice.
  VmConfig vm{.name = "a", .memory_bytes = 3_GiB, .socket = 0};
  const size_t available_before = hypervisor.AvailableGuestNodes(0).size();
  ExpectConservedFailure(hypervisor, vm, /*k=*/2, "alloc.hv.runs");
  EXPECT_EQ(hypervisor.AvailableGuestNodes(0).size(), available_before);
  EXPECT_FALSE(hypervisor.cgroups().Get("vm-a").ok());
  // The failed attempt must not poison a retry.
  Result<VmId> id = hypervisor.CreateVm(vm);
  ASSERT_TRUE(id.ok()) << id.error().ToString();
}

// Regression: the baseline contiguous allocation failure leaked the phantom
// map entries created before the first fallible step.
TEST_F(LifecycleFaultTest, BaselineContiguousFailureConservesEverything) {
  SilozConfig config;
  config.enabled = false;
  auto hypervisor_owner = MakeBooted(config);
  SilozHypervisor& hypervisor = *hypervisor_owner;
  VmConfig vm{.name = "b", .memory_bytes = 64_MiB, .socket = 0};
  ExpectConservedFailure(hypervisor, vm, /*k=*/1, "alloc.hv.contiguous");
  Result<VmId> id = hypervisor.CreateVm(vm);
  ASSERT_TRUE(id.ok()) << id.error().ToString();
}

// Regression: an MMIO window failure used to leak every RAM/ROM run
// allocated before it (the unwind lambda was defined later).
TEST_F(LifecycleFaultTest, MmioFailureRollsBackRamAndRom) {
  auto hypervisor_owner = MakeBooted();
  SilozHypervisor& hypervisor = *hypervisor_owner;
  VmConfig vm{.name = "c", .memory_bytes = 64_MiB, .rom_bytes = 2_MiB, .mmio_bytes = 64_KiB,
              .socket = 0};
  // In Siloz mode the only AllocateContiguous call is the MMIO window, so
  // k=1 fires after all unmediated backing has been reserved.
  ExpectConservedFailure(hypervisor, vm, /*k=*/1, "alloc.hv.contiguous");
  Result<VmId> id = hypervisor.CreateVm(vm);
  ASSERT_TRUE(id.ok()) << id.error().ToString();
}

// EPT table-page exhaustion mid-Map releases drawn pool pages and all
// backing. k=1 fails the root allocation (the fallible Create path), larger
// k fail inside the mapping loop.
TEST_F(LifecycleFaultTest, EptTablePageFailureConservesPool) {
  auto hypervisor_owner = MakeBooted();
  SilozHypervisor& hypervisor = *hypervisor_owner;
  VmConfig vm{.name = "d", .memory_bytes = 64_MiB, .socket = 0};
  for (uint64_t k : {1u, 2u, 3u}) {
    ExpectConservedFailure(hypervisor, vm, k, "alloc.ept.table_page");
    EXPECT_EQ(hypervisor.ept_pages_held(), 0u);
  }
  Result<VmId> id = hypervisor.CreateVm(vm);
  ASSERT_TRUE(id.ok()) << id.error().ToString();
}

// A failed passthrough assignment must return the IOMMU table pages it drew.
TEST_F(LifecycleFaultTest, PassthroughAssignFailureReturnsTablePages) {
  auto hypervisor_owner = MakeBooted();
  SilozHypervisor& hypervisor = *hypervisor_owner;
  VmConfig vm{.name = "e", .memory_bytes = 64_MiB, .socket = 0};
  Result<VmId> id = hypervisor.CreateVm(vm);
  ASSERT_TRUE(id.ok()) << id.error().ToString();
  const ConservationSnapshot before = CaptureConservation(hypervisor);
  Result<uint32_t> device = [&] {
    ScopedFault fault(/*k=*/2, "alloc.ept.table_page");
    return hypervisor.AssignPassthroughDevice(*id, "nic0");
  }();
  ASSERT_FALSE(device.ok());
  EXPECT_EQ(DiffConservation(before, CaptureConservation(hypervisor)), "");
}

// Regression: a mid-teardown Free failure used to abandon the remaining
// blocks with no record of progress, so a retry double-freed the prefix.
TEST_F(LifecycleFaultTest, DestroyVmResumesAfterInterruptedFree) {
  auto hypervisor_owner = MakeBooted();
  SilozHypervisor& hypervisor = *hypervisor_owner;
  VmConfig vm{.name = "f", .memory_bytes = 64_MiB, .socket = 0};
  const ConservationSnapshot pristine = CaptureConservation(hypervisor);
  Result<VmId> id = hypervisor.CreateVm(vm);
  ASSERT_TRUE(id.ok()) << id.error().ToString();
  {
    ScopedFault fault(/*k=*/2, "free.buddy.page");
    Status interrupted = hypervisor.DestroyVm(*id);
    ASSERT_FALSE(interrupted.ok());
    EXPECT_NE(interrupted.error().message.find("injected fault"), std::string::npos);
  }
  // The first destroy recorded its progress; the retry frees only what is
  // still allocated (the overlap detector would reject a double free).
  ASSERT_TRUE(hypervisor.DestroyVm(*id).ok());
  ASSERT_TRUE(hypervisor.ReleaseVmNodes(*id).ok());
  EXPECT_EQ(DiffConservation(pristine, CaptureConservation(hypervisor)), "");
}

TEST_F(LifecycleFaultTest, DestroyVmIsIdempotent) {
  auto hypervisor_owner = MakeBooted();
  SilozHypervisor& hypervisor = *hypervisor_owner;
  VmConfig vm{.name = "g", .memory_bytes = 64_MiB, .socket = 0};
  Result<VmId> id = hypervisor.CreateVm(vm);
  ASSERT_TRUE(id.ok()) << id.error().ToString();
  const ConservationSnapshot destroyed_once = [&] {
    EXPECT_TRUE(hypervisor.DestroyVm(*id).ok());
    return CaptureConservation(hypervisor);
  }();
  // Second destroy: no-op, no double release of backing or EPT pages.
  EXPECT_TRUE(hypervisor.DestroyVm(*id).ok());
  EXPECT_EQ(DiffConservation(destroyed_once, CaptureConservation(hypervisor)), "");
  EXPECT_TRUE(hypervisor.ReleaseVmNodes(*id).ok());
}

// The tentpole proof: fail every reachable "alloc." point once. Failed
// creates must conserve; tolerated faults must leave create->destroy->
// release a fixed point.
TEST_F(LifecycleFaultTest, FaultSweepSilozConfig) {
  auto hypervisor_owner = MakeBooted();
  SilozHypervisor& hypervisor = *hypervisor_owner;
  VmConfig vm{.name = "sweep", .memory_bytes = 8_MiB, .rom_bytes = 2_MiB, .socket = 0};
  Result<FaultSweepReport> report = RunCreateVmFaultSweep(hypervisor, vm);
  ASSERT_TRUE(report.ok()) << report.error().ToString();
  EXPECT_GT(report->faults_injected, 0u);
  EXPECT_GT(report->creates_failed, 0u);
  EXPECT_EQ(report->points_probed, report->faults_injected + 1);
}

TEST_F(LifecycleFaultTest, FaultSweepBaselineConfig) {
  SilozConfig config;
  config.enabled = false;
  auto hypervisor_owner = MakeBooted(config);
  SilozHypervisor& hypervisor = *hypervisor_owner;
  VmConfig vm{.name = "sweep", .memory_bytes = 4_MiB, .rom_bytes = 2_MiB, .mmio_bytes = 16_KiB,
              .socket = 0};
  Result<FaultSweepReport> report = RunCreateVmFaultSweep(hypervisor, vm);
  ASSERT_TRUE(report.ok()) << report.error().ToString();
  EXPECT_GT(report->faults_injected, 0u);
  EXPECT_GT(report->creates_failed, 0u);
}

}  // namespace
}  // namespace siloz
