#!/usr/bin/env python3
"""Golden test driver for siloz-lint, wired into ctest under the `lint` label.

Cases:
  <rule>        run ONE rule over its violate+clean fixture pair with the
                pure-Python token frontend and compare the JSON report
                byte-for-byte against tests/lint/golden/<rule>.json. The
                violate fixture must produce findings (tool exit 1) — this is
                the regression test that each check actually fires.
  suppression   the allow() comment forms must silence a real finding
                (tool exit 0, empty findings document).
  tree          the full repository must lint clean with the shipped
                .siloz-lint.json (zero unsuppressed findings).

Exit 0 on match, 1 with a diff on stderr otherwise. The goldens pin the
reporter's byte-stable ordering contract (reporters.py), so a mismatch
means either a rule regression or a deliberate schema change that must
regenerate the goldens.
"""

import os
import subprocess
import sys

HERE = os.path.dirname(os.path.abspath(__file__))
REPO = os.path.dirname(os.path.dirname(HERE))
LINT = os.path.join(REPO, "tools", "siloz_lint", "siloz_lint.py")

RULE_CASES = {
    "unchecked-status": "unchecked_status",
    "map-bracket-probe": "map_bracket_probe",
    "nondet-iteration": "nondet_iteration",
    "fault-point-coverage": "fault_point_coverage",
    "raw-nondeterminism": "raw_nondeterminism",
}


def run_lint(args):
    return subprocess.run(
        [sys.executable, LINT, "--frontend=tokens", "--format=json"] + args,
        capture_output=True,
        text=True,
        cwd=REPO,
    )


def check_golden(case: str, proc, expect_findings: bool) -> int:
    if proc.returncode not in (0, 1):
        sys.stderr.write(f"{case}: lint crashed (exit {proc.returncode}):\n")
        sys.stderr.write(proc.stderr)
        return 1
    if expect_findings and proc.returncode != 1:
        sys.stderr.write(f"{case}: rule did not fire on its violate fixture\n")
        sys.stderr.write(proc.stdout)
        return 1
    if not expect_findings and proc.returncode != 0:
        sys.stderr.write(f"{case}: unexpected findings:\n{proc.stdout}")
        return 1
    golden_path = os.path.join(HERE, "golden", f"{case}.json")
    with open(golden_path, "r", encoding="utf-8") as f:
        golden = f.read()
    if proc.stdout != golden:
        sys.stderr.write(f"{case}: output differs from {golden_path}\n")
        sys.stderr.write(f"--- golden ---\n{golden}--- actual ---\n{proc.stdout}")
        return 1
    return 0


def main() -> int:
    if len(sys.argv) != 2:
        sys.stderr.write(__doc__)
        return 2
    case = sys.argv[1]

    if case in RULE_CASES:
        stem = RULE_CASES[case]
        proc = run_lint(
            [
                "--root", HERE,
                "--config", os.path.join(HERE, "fixtures", "config.json"),
                "--rule", case,
                os.path.join(HERE, "fixtures", f"{stem}_violate.cc"),
                os.path.join(HERE, "fixtures", f"{stem}_clean.cc"),
            ]
        )
        return check_golden(case, proc, expect_findings=True)

    if case == "suppression":
        proc = run_lint(
            [
                "--root", HERE,
                "--config", os.path.join(HERE, "fixtures", "config.json"),
                "--rule", "map-bracket-probe",
                os.path.join(HERE, "fixtures", "suppression_demo.cc"),
            ]
        )
        return check_golden(case, proc, expect_findings=False)

    if case == "tree":
        proc = run_lint([])
        if proc.returncode != 0:
            sys.stderr.write("tree: unsuppressed findings in the repository:\n")
            sys.stderr.write(proc.stdout + proc.stderr)
            return 1
        return 0

    sys.stderr.write(f"unknown case '{case}'\n")
    return 2


if __name__ == "__main__":
    sys.exit(main())
