// Fixture: order-safe uses of unordered containers — integer reduction
// (commutative, order-invisible) and emission from a sorted copy. Zero
// findings expected.
#include <cstdio>
#include <map>
#include <unordered_map>
#include <vector>

long CountEvents(const std::unordered_map<int, long>& totals_by_vm) {
  long event_count = 0;
  for (const auto& entry : totals_by_vm) {
    event_count += entry.second;
  }
  return event_count;
}

void EmitSorted(const std::unordered_map<int, long>& totals_by_vm) {
  std::map<int, long> sorted(totals_by_vm.begin(), totals_by_vm.end());
  for (const auto& entry : sorted) {
    printf("vm %d: %ld\n", entry.first, entry.second);
  }
}

// The shard-merge idiom (DESIGN.md §13): per-shard results live in a vector
// indexed by shard id and are folded in ascending shard order, so the
// non-associative double sum is a pure function of the shard sequence.
double MergeShardLatencies(const std::vector<double>& latency_by_shard) {
  double merged_latency = 0.0;
  for (size_t shard = 0; shard < latency_by_shard.size(); ++shard) {
    merged_latency += latency_by_shard[shard];
  }
  return merged_latency;
}

// The sub-channel queue fold idiom (DESIGN.md §15): a shard's per-bank-group
// queue windows live in a vector indexed by queue id (the queue route is a
// pure function of the bank index, so the id order is pinned by
// construction), and the shard tail folds in ascending queue order — the
// same pinned-order discipline as the shard merge, one level down.
double FoldQueueTails(const std::vector<double>& tail_by_queue) {
  double shard_tail = 0.0;
  for (size_t queue = 0; queue < tail_by_queue.size(); ++queue) {
    shard_tail += tail_by_queue[queue];
  }
  return shard_tail;
}
