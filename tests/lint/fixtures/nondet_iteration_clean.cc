// Fixture: order-safe uses of unordered containers — integer reduction
// (commutative, order-invisible) and emission from a sorted copy. Zero
// findings expected.
#include <cstdio>
#include <map>
#include <unordered_map>

long CountEvents(const std::unordered_map<int, long>& totals_by_vm) {
  long event_count = 0;
  for (const auto& entry : totals_by_vm) {
    event_count += entry.second;
  }
  return event_count;
}

void EmitSorted(const std::unordered_map<int, long>& totals_by_vm) {
  std::map<int, long> sorted(totals_by_vm.begin(), totals_by_vm.end());
  for (const auto& entry : sorted) {
    printf("vm %d: %ld\n", entry.first, entry.second);
  }
}
