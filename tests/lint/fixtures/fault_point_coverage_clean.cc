// Fixture: fault-sweep-reachable resource operations — a direct
// SILOZ_FAULT_POINT, transitive coverage through a callee, and a
// non-resource helper outside the name shape. Zero findings expected.
#define SILOZ_FAULT_POINT(site)

struct Status {
  bool ok() const;
};

Status AllocateSlab(int order) {
  SILOZ_FAULT_POINT("alloc.slab");
  (void)order;
  return Status{};
}

Status CreateRegion(int order) {
  return AllocateSlab(order);
}

Status LookupRegion(int id) {
  (void)id;
  return Status{};
}
