// Fixture: operator[] reads on bookkeeping maps — the phantom-entry bug.
// Both bodies must be reported by map-bracket-probe.
#include <map>
#include <vector>

struct Hypervisor {
  std::map<int, int> vm_backing_;
  std::map<int, std::vector<int>> vm_ept_pages_;
};

int ProbeBacking(Hypervisor& hv, int id) { return hv.vm_backing_[id]; }

bool ProbeEpt(Hypervisor& hv, int id) { return hv.vm_ept_pages_[id].empty(); }
