// Fixture: every statement in Violate() drops a Status/Result value on the
// floor and must be reported by unchecked-status. Never compiled — parsed by
// the lint goldens only.
struct Status {
  bool ok() const;
};
template <typename T>
struct Result {
  bool ok() const;
};

Status Teardown();
Result<int> ReservePages(int count);

struct Pool {
  Status Drain();
};

void Violate(Pool& pool) {
  Teardown();
  ReservePages(4);
  pool.Drain();
}
