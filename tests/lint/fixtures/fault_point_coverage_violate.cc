// Fixture: resource operations (Allocate*/Free* name shapes, Status-ish
// returns) with no SILOZ_FAULT_POINT anywhere on their call path. Both must
// be reported by fault-point-coverage.
#define SILOZ_FAULT_POINT(site)

struct Status {
  bool ok() const;
};

Status AllocateScratch(int order) {
  (void)order;
  return Status{};
}

Status FreeScratch(int order) {
  (void)order;
  return Status{};
}
