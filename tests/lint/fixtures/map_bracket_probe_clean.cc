// Fixture: bookkeeping-map access in sanctioned shapes only — explicit
// insertion, insert-or-extend, and find()-based reads. Zero findings.
#include <map>
#include <vector>

struct Hypervisor {
  std::map<int, int> vm_backing_;
  std::map<int, std::vector<int>> vm_ept_pages_;
};

void Insert(Hypervisor& hv, int id, int node) { hv.vm_backing_[id] = node; }

void Extend(Hypervisor& hv, int id, int page) {
  hv.vm_ept_pages_[id].push_back(page);
}

int Read(const Hypervisor& hv, int id) {
  auto it = hv.vm_backing_.find(id);
  return it == hv.vm_backing_.end() ? -1 : it->second;
}
