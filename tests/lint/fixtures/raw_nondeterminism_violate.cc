// Fixture: raw entropy/clock sources and an address-ordered container.
// Every marked line must be reported by raw-nondeterminism.
#include <cstdlib>
#include <ctime>
#include <map>
#include <random>

struct Probe {};

unsigned SeedFromWallClock() {
  std::srand(static_cast<unsigned>(std::time(nullptr)));
  return static_cast<unsigned>(std::rand());
}

std::random_device g_entropy;

std::map<Probe*, int> g_hits_by_probe;

// A platform registry keyed by object address: iteration order is ASLR's
// choice, so any matrix built from it reorders between runs.
struct PlatformInfo {
  int channels_per_socket;
};

std::map<PlatformInfo*, const char*> g_platform_names_by_info;
