// Fixture: unordered iteration leaking hash order into emitted output and
// a float accumulation. Both loops must be reported by nondet-iteration.
#include <cstdio>
#include <unordered_map>

void EmitPerVm(const std::unordered_map<int, long>& totals_by_vm) {
  for (const auto& entry : totals_by_vm) {
    printf("vm %d: %ld\n", entry.first, entry.second);
  }
}

double SumRates(const std::unordered_map<int, double>& rate_by_vm) {
  double total = 0.0;
  for (const auto& entry : rate_by_vm) {
    total += entry.second;
  }
  return total;
}
