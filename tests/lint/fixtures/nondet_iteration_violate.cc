// Fixture: unordered iteration leaking hash order into emitted output and
// a float accumulation. Both loops must be reported by nondet-iteration.
#include <cstdio>
#include <unordered_map>

void EmitPerVm(const std::unordered_map<int, long>& totals_by_vm) {
  for (const auto& entry : totals_by_vm) {
    printf("vm %d: %ld\n", entry.first, entry.second);
  }
}

double SumRates(const std::unordered_map<int, double>& rate_by_vm) {
  double total = 0.0;
  for (const auto& entry : rate_by_vm) {
    total += entry.second;
  }
  return total;
}

// Anti-idiom for the shard merge: folding per-shard latency sums in hash
// order. Double addition is not associative, so the merged total depends on
// the hash seed — the fold order must be pinned (see the clean fixture).
double MergeShardLatencies(const std::unordered_map<int, double>& latency_by_shard) {
  double merged_latency = 0.0;
  for (const auto& entry : latency_by_shard) {
    merged_latency += entry.second;
  }
  return merged_latency;
}

// Anti-idiom for the sub-channel queue fold (DESIGN.md §15): a shard's
// per-bank-group queue tails keyed by queue id in a hash map, folded in
// hash order. The shard elapsed is the max (associative — but the same
// hash-order loop invariably grows a latency sum next to it), and the
// emission leaks queue order into the report. Keep queue state in a vector
// indexed by queue id instead (see the clean fixture).
double FoldQueueTails(const std::unordered_map<int, double>& tail_by_queue) {
  double queue_latency_sum = 0.0;
  for (const auto& entry : tail_by_queue) {
    queue_latency_sum += entry.second;
  }
  return queue_latency_sum;
}
