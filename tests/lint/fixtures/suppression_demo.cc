// Fixture: a would-be map-bracket-probe finding silenced by an annotated
// allow() comment — the suppression contract itself is under test. Zero
// findings expected.
#include <map>

struct Hypervisor {
  std::map<int, int> vm_backing_;
};

int ProbeWithRationale(Hypervisor& hv, int id) {
  // siloz-lint: allow(map-bracket-probe): fixture proving block-comment
  // suppression attaches to the next statement.
  return hv.vm_backing_[id];
}

int ProbeInline(Hypervisor& hv, int id) {
  return hv.vm_backing_[id];  // siloz-lint: allow(map-bracket-probe): same-line form.
}
