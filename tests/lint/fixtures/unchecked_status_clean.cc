// Fixture: the same calls as unchecked_status_violate.cc with every result
// bound, tested, or explicitly (void)-discarded — zero findings expected.
struct Status {
  bool ok() const;
};
template <typename T>
struct Result {
  bool ok() const;
};

Status Teardown();
Result<int> ReservePages(int count);

struct Pool {
  Status Drain();
};

bool Clean(Pool& pool) {
  Status status = Teardown();
  if (!status.ok()) {
    return false;
  }
  Result<int> pages = ReservePages(4);
  if (pool.Drain().ok() && pages.ok()) {
    return true;
  }
  // An explicit (void) cast is a visible, greppable discard: allowed.
  (void)Teardown();
  return false;
}
