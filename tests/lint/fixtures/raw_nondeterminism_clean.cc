// Fixture: determinism-safe counterparts — stable-id keys, a method named
// time() on a simulated clock (member access, not the libc call), and
// seed-derived generation. Zero findings expected.
#include <cstdint>
#include <map>

struct SimClock {
  uint64_t time() const;
};

struct SplitMix {
  explicit SplitMix(uint64_t seed);
  uint64_t Next();
};

uint64_t SeedFromFlag(uint64_t seed, const SimClock& clock_model) {
  SplitMix rng(seed);
  return rng.Next() ^ clock_model.time();
}

std::map<int, int> g_hits_by_probe_id;
