// Fixture: determinism-safe counterparts — stable-id keys, a method named
// time() on a simulated clock (member access, not the libc call), and
// seed-derived generation. Zero findings expected.
#include <cstdint>
#include <map>

struct SimClock {
  uint64_t time() const;
};

struct SplitMix {
  explicit SplitMix(uint64_t seed);
  uint64_t Next();
};

uint64_t SeedFromFlag(uint64_t seed, const SimClock& clock_model) {
  SplitMix rng(seed);
  return rng.Next() ^ clock_model.time();
}

std::map<int, int> g_hits_by_probe_id;

// Platform-registry idiom (src/addr/platform.h): a string-keyed ORDERED map
// hands every consumer — test matrices, --help text, CI smoke loops — the
// names' lexicographic order, independent of ASLR and hashing.
#include <string>

struct PlatformInfo {
  int channels_per_socket;
};

std::map<std::string, PlatformInfo> g_platforms_by_name;
