// Randomized lifecycle stress for the hypervisor: create / destroy /
// release / assign devices over many rounds, checking global invariants
// after every step:
//   I1  a guest node is owned by at most one live cgroup,
//   I2  free + allocated + offlined bytes are conserved per node,
//   I3  every live VM audits clean,
//   I4  the EPT pool never leaks (free + in-use == initial),
//   I5  full teardown restores boot-time capacity exactly.
#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <set>

#include "src/addr/decoder.h"
#include "src/audit/auditor.h"
#include "src/base/fault_injector.h"
#include "src/base/rng.h"
#include "src/base/thread_pool.h"
#include "src/base/units.h"
#include "src/ept/phys_memory.h"
#include "src/siloz/conservation.h"
#include "src/siloz/hypervisor.h"

namespace siloz {
namespace {

struct LiveVm {
  VmId id;
  bool destroyed = false;
  std::vector<uint32_t> devices;
};

class HypervisorStress : public ::testing::TestWithParam<uint64_t> {};

TEST_P(HypervisorStress, RandomChurnKeepsInvariants) {
  DramGeometry geometry;
  SkylakeDecoder decoder(geometry);
  FlatPhysMemory memory;
  SilozHypervisor hypervisor(decoder, memory, SilozConfig{});
  ASSERT_TRUE(hypervisor.Boot().ok());

  const size_t boot_nodes_s0 = hypervisor.AvailableGuestNodes(0).size();
  const size_t boot_nodes_s1 = hypervisor.AvailableGuestNodes(1).size();
  const size_t boot_pool_s0 = hypervisor.ept_pool_free(0);
  const size_t boot_pool_s1 = hypervisor.ept_pool_free(1);

  Rng rng(GetParam());
  std::vector<LiveVm> vms;
  uint32_t created = 0;

  auto check_invariants = [&]() {
    // I1: node ownership is exclusive across live VM cgroups.
    std::set<uint32_t> owned;
    for (const LiveVm& vm : vms) {
      for (uint32_t node : (*hypervisor.GetVm(vm.id))->guest_nodes()) {
        ASSERT_TRUE(owned.insert(node).second) << "node " << node << " double-owned";
      }
    }
    // I3: live (non-destroyed) VMs audit clean; devices too.
    for (const LiveVm& vm : vms) {
      if (vm.destroyed) {
        continue;
      }
      ASSERT_TRUE(hypervisor.AuditVmIsolation(vm.id).ok());
      for (uint32_t device : vm.devices) {
        ASSERT_TRUE(hypervisor.AuditDeviceIsolation(device).ok());
      }
    }
  };

  for (int step = 0; step < 120; ++step) {
    const double dice = rng.NextDouble();
    if (dice < 0.40) {
      // Create a VM of 1-4 groups on a random socket.
      VmConfig config;
      config.name = "vm" + std::to_string(created++);
      config.memory_bytes = rng.NextInRange(1, 4) * 1536_MiB;
      config.socket = static_cast<uint32_t>(rng.NextBelow(2));
      Result<VmId> id = hypervisor.CreateVm(config);
      if (id.ok()) {
        vms.push_back(LiveVm{*id});
      } else {
        EXPECT_EQ(id.error().code, ErrorCode::kNoMemory);
      }
    } else if (dice < 0.55 && !vms.empty()) {
      // Assign a passthrough device to a live VM.
      LiveVm& vm = vms[rng.NextBelow(vms.size())];
      if (!vm.destroyed) {
        Result<uint32_t> device = hypervisor.AssignPassthroughDevice(
            vm.id, "dev" + std::to_string(step));
        if (device.ok()) {
          vm.devices.push_back(*device);
        }
      }
    } else if (dice < 0.80 && !vms.empty()) {
      // Destroy a random live VM (devices removed first).
      const size_t index = rng.NextBelow(vms.size());
      LiveVm& vm = vms[index];
      if (!vm.destroyed) {
        for (uint32_t device : vm.devices) {
          ASSERT_TRUE(hypervisor.RemovePassthroughDevice(device).ok());
        }
        vm.devices.clear();
        ASSERT_TRUE(hypervisor.DestroyVm(vm.id).ok());
        vm.destroyed = true;
      }
    } else if (!vms.empty()) {
      // Release a random destroyed VM's nodes.
      const size_t index = rng.NextBelow(vms.size());
      if (vms[index].destroyed) {
        ASSERT_TRUE(hypervisor.ReleaseVmNodes(vms[index].id).ok());
        vms.erase(vms.begin() + static_cast<long>(index));
      }
    }
    if (step % 10 == 0) {
      check_invariants();
    }
  }
  check_invariants();

  // I5: full teardown restores everything.
  ASSERT_TRUE(hypervisor.HostShutdown().ok());
  EXPECT_EQ(hypervisor.AvailableGuestNodes(0).size(), boot_nodes_s0);
  EXPECT_EQ(hypervisor.AvailableGuestNodes(1).size(), boot_nodes_s1);
  EXPECT_EQ(hypervisor.ept_pool_free(0), boot_pool_s0);
  EXPECT_EQ(hypervisor.ept_pool_free(1), boot_pool_s1);
  // Guest nodes are fully free again (I2 at the end state).
  for (uint32_t socket = 0; socket < 2; ++socket) {
    for (uint32_t node_id : hypervisor.AvailableGuestNodes(socket)) {
      NumaNode& node = **hypervisor.nodes().Get(node_id);
      EXPECT_EQ(node.allocator().free_bytes(), node.allocator().total_bytes());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HypervisorStress, ::testing::Values(11u, 23u, 47u));

// Concurrent lifecycle churn (ROADMAP item 1): the hypervisor's internal
// mutex serializes create/destroy/release, so pool workers may churn VMs on
// one shared instance. Workers race real allocations — capacity misses are
// legitimate when peers hold all guest nodes — and after the pool drains,
// boot-time capacity and the full conservation snapshot must be restored
// exactly. Run under TSan this also checks the lock annotations describe
// reality, not just satisfy -Wthread-safety.
TEST(HypervisorConcurrentChurn, ParallelLifecycleRestoresCapacity) {
  DramGeometry geometry;
  SkylakeDecoder decoder(geometry);
  FlatPhysMemory memory;
  SilozHypervisor hypervisor(decoder, memory, SilozConfig{});
  ASSERT_TRUE(hypervisor.Boot().ok());

  const size_t boot_nodes_s0 = hypervisor.AvailableGuestNodes(0).size();
  const size_t boot_nodes_s1 = hypervisor.AvailableGuestNodes(1).size();
  const ConservationSnapshot before = CaptureConservation(hypervisor);

  constexpr uint64_t kWorkers = 8;
  constexpr uint32_t kRoundsPerWorker = 12;
  std::atomic<uint32_t> creates{0};
  std::atomic<uint32_t> capacity_misses{0};
  {
    ThreadPool pool(static_cast<uint32_t>(kWorkers));
    pool.ParallelFor(0, kWorkers, [&](uint64_t worker) {
      for (uint32_t round = 0; round < kRoundsPerWorker; ++round) {
        VmConfig config;
        config.name = "churn-" + std::to_string(worker) + "-" + std::to_string(round);
        config.memory_bytes = 1536_MiB;
        config.socket = static_cast<uint32_t>(worker % 2);
        Result<VmId> id = hypervisor.CreateVm(config);
        if (!id.ok()) {
          capacity_misses.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        creates.fetch_add(1, std::memory_order_relaxed);
        EXPECT_TRUE(hypervisor.AuditVmIsolation(*id).ok());
        EXPECT_TRUE(hypervisor.DestroyVm(*id).ok());
        EXPECT_TRUE(hypervisor.ReleaseVmNodes(*id).ok());
      }
    });
  }

  EXPECT_GT(creates.load(), 0u) << "every create hit capacity; churn vacuous";
  EXPECT_EQ(hypervisor.AvailableGuestNodes(0).size(), boot_nodes_s0);
  EXPECT_EQ(hypervisor.AvailableGuestNodes(1).size(), boot_nodes_s1);
  EXPECT_EQ(DiffConservation(before, CaptureConservation(hypervisor)), "");
}

// Same churn, but every CreateVm runs under a randomly armed allocation
// fault and destroys occasionally race an injected free failure. Either
// outcome of a faulted create is fine; what must hold is that a failed
// create leaves the hypervisor bit-identical (DESIGN.md §11) and that an
// interrupted destroy can be retried to completion.
TEST_P(HypervisorStress, FaultInjectedChurnConservesState) {
  DramGeometry geometry;
  SkylakeDecoder decoder(geometry);
  FlatPhysMemory memory;
  SilozConfig siloz_config;
  SilozHypervisor hypervisor(decoder, memory, siloz_config);
  ASSERT_TRUE(hypervisor.Boot().ok());

  const size_t boot_nodes_s0 = hypervisor.AvailableGuestNodes(0).size();
  const size_t boot_nodes_s1 = hypervisor.AvailableGuestNodes(1).size();
  const size_t boot_pool_s0 = hypervisor.ept_pool_free(0);
  const size_t boot_pool_s1 = hypervisor.ept_pool_free(1);

  Rng rng(GetParam() * 7919 + 1);
  FaultInjector& injector = FaultInjector::Global();
  std::vector<LiveVm> vms;
  uint32_t created = 0;
  uint64_t faulted_creates = 0;
  uint64_t interrupted_destroys = 0;

  for (int step = 0; step < 120; ++step) {
    const double dice = rng.NextDouble();
    if (dice < 0.40) {
      VmConfig config;
      config.name = "fvm" + std::to_string(created++);
      config.memory_bytes = rng.NextInRange(1, 4) * 1536_MiB;
      config.socket = static_cast<uint32_t>(rng.NextBelow(2));
      const ConservationSnapshot before = CaptureConservation(hypervisor);
      // Arm a one-shot fault at a random allocation call. Deep k values may
      // never match (the injector simply doesn't fire) — that exercises the
      // clean path under an armed injector, which must also be benign.
      injector.Arm(rng.NextInRange(1, 12), "alloc.");
      Result<VmId> id = hypervisor.CreateVm(config);
      const uint64_t fired = injector.faults_fired();
      injector.Disarm();
      if (id.ok()) {
        vms.push_back(LiveVm{*id});
      } else {
        if (fired > 0) {
          ++faulted_creates;
        } else {
          EXPECT_EQ(id.error().code, ErrorCode::kNoMemory);
        }
        // Every failure path — injected or natural — must conserve state.
        const std::string diff =
            DiffConservation(before, CaptureConservation(hypervisor));
        EXPECT_TRUE(diff.empty()) << "leak after failed create: " << diff;
      }
    } else if (dice < 0.55 && !vms.empty()) {
      LiveVm& vm = vms[rng.NextBelow(vms.size())];
      if (!vm.destroyed) {
        Result<uint32_t> device = hypervisor.AssignPassthroughDevice(
            vm.id, "fdev" + std::to_string(step));
        if (device.ok()) {
          vm.devices.push_back(*device);
        }
      }
    } else if (dice < 0.80 && !vms.empty()) {
      const size_t index = rng.NextBelow(vms.size());
      LiveVm& vm = vms[index];
      if (!vm.destroyed) {
        for (uint32_t device : vm.devices) {
          ASSERT_TRUE(hypervisor.RemovePassthroughDevice(device).ok());
        }
        vm.devices.clear();
        // Occasionally interrupt the destroy with an injected free failure;
        // a disarmed retry must pick up where it stopped and succeed.
        if (rng.NextDouble() < 0.5) {
          injector.Arm(rng.NextInRange(1, 3), "free.buddy.page");
          Status first = hypervisor.DestroyVm(vm.id);
          const uint64_t fired = injector.faults_fired();
          injector.Disarm();
          if (!first.ok()) {
            ASSERT_GT(fired, 0u) << first.error().ToString();
            ++interrupted_destroys;
          }
        }
        ASSERT_TRUE(hypervisor.DestroyVm(vm.id).ok());
        vm.destroyed = true;
      }
    } else if (!vms.empty()) {
      const size_t index = rng.NextBelow(vms.size());
      if (vms[index].destroyed) {
        ASSERT_TRUE(hypervisor.ReleaseVmNodes(vms[index].id).ok());
        vms.erase(vms.begin() + static_cast<long>(index));
      }
    }
    if (step % 10 == 0) {
      // Node ownership stays exclusive and live VMs still audit clean even
      // with faults firing between steps.
      std::set<uint32_t> owned;
      for (const LiveVm& vm : vms) {
        for (uint32_t node : (*hypervisor.GetVm(vm.id))->guest_nodes()) {
          ASSERT_TRUE(owned.insert(node).second) << "node " << node << " double-owned";
        }
      }
      for (const LiveVm& vm : vms) {
        if (!vm.destroyed) {
          ASSERT_TRUE(hypervisor.AuditVmIsolation(vm.id).ok());
        }
      }
    }
  }
  // The sweep should actually have exercised both fault classes across the
  // seeds; with these rates a seed that never fires either is a logic bug.
  EXPECT_GT(faulted_creates + interrupted_destroys, 0u);

  // Full teardown is still a fixed point after all that abuse.
  ASSERT_TRUE(hypervisor.HostShutdown().ok());
  EXPECT_EQ(hypervisor.AvailableGuestNodes(0).size(), boot_nodes_s0);
  EXPECT_EQ(hypervisor.AvailableGuestNodes(1).size(), boot_nodes_s1);
  EXPECT_EQ(hypervisor.ept_pool_free(0), boot_pool_s0);
  EXPECT_EQ(hypervisor.ept_pool_free(1), boot_pool_s1);
  for (uint32_t socket = 0; socket < 2; ++socket) {
    for (uint32_t node_id : hypervisor.AvailableGuestNodes(socket)) {
      NumaNode& node = **hypervisor.nodes().Get(node_id);
      EXPECT_EQ(node.allocator().free_bytes(), node.allocator().total_bytes());
    }
  }

  // Re-run the static isolation audit on the same platform: fault-churned
  // lifecycles must not have invalidated the provisioning-plan invariants.
  audit::Options options;
  options.probe_stride = 2_MiB;
  options.random_probes = 256;
  Result<audit::Report> report =
      audit::AuditPlatform(decoder, siloz_config, RemapConfig{}, options);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->ok()) << report->ToText();
}

}  // namespace
}  // namespace siloz
