// Tests for the comparison-baseline defenses (src/defenses): SoftTRR-style
// software refresh, Copy-on-Flip detection/migration, ZebRAM guard striping.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "src/attack/blacksmith.h"
#include "src/base/units.h"
#include "src/defenses/copy_on_flip.h"
#include "src/defenses/soft_trr.h"
#include "src/defenses/zebram.h"
#include "src/sim/machine.h"

namespace siloz {
namespace {

MachineConfig FaultConfig() {
  MachineConfig config;
  config.fault_tracking = true;
  DimmProfile profile;
  profile.disturbance.threshold_mean = 2500.0;
  profile.disturbance.threshold_spread = 0.15;
  profile.trr.enabled = false;
  config.dimm_profiles = {profile};
  return config;
}

// Hammers rows adjacent to `page` in every bank the page touches.
void HammerPageNeighbours(Machine& machine, uint64_t page, uint32_t rounds,
                          SoftTrrDefender* defender = nullptr) {
  std::vector<uint64_t> aggressors;
  std::set<std::string> seen;
  for (uint64_t offset = 0; offset < kPage4K; offset += kCacheLineBytes) {
    MediaAddress line = *machine.decoder().PhysToMedia(page + offset);
    line.column = 0;
    MediaAddress key = line;
    key.row = 0;
    if (!seen.insert(key.ToString()).second) {
      continue;
    }
    for (int32_t delta : {-1, 1}) {
      MediaAddress aggressor = line;
      aggressor.row = static_cast<uint32_t>(static_cast<int64_t>(line.row) + delta);
      aggressors.push_back(*machine.decoder().MediaToPhys(aggressor));
    }
  }
  for (uint32_t round = 0; round < rounds; ++round) {
    for (uint64_t phys : aggressors) {
      machine.ActivatePhys(phys);
    }
    if (defender != nullptr) {
      defender->CatchUp();
    }
  }
}

// --- SoftTRR ---

TEST(SoftTrrTest, ReliableRefreshPreventsFlips) {
  // With an ideal scheduler (no stalls), 1 ms refreshes protect the rows.
  Machine machine(FaultConfig());
  const uint64_t page = 10_GiB;
  SoftTrrConfig config;
  config.stall_probability = 0.0;
  config.jitter_mean_ms = 0.01;
  SoftTrrDefender defender(machine, {page}, config);
  EXPECT_GT(defender.protected_row_count(), 0u);

  HammerPageNeighbours(machine, page, 20000, &defender);
  EXPECT_GT(defender.refreshes_fired(), 0u);

  const MediaAddress media = *machine.decoder().PhysToMedia(page);
  for (const PhysFlip& flip : machine.DrainFlips()) {
    EXPECT_NE(flip.record.media_row, media.row) << "flip hit a SoftTRR-protected row";
  }
}

TEST(SoftTrrTest, SchedulingStallsLeaveWindows) {
  // With the measured Linux behaviour (stalls up to ~34 ms), a fast attacker
  // lands flips in protected rows during a stall.
  Machine machine(FaultConfig());
  const uint64_t page = 10_GiB;
  SoftTrrConfig config;
  config.stall_probability = 0.02;  // aggressive but bounded, for test speed
  SoftTrrDefender defender(machine, {page}, config);

  HammerPageNeighbours(machine, page, 60000, &defender);
  EXPECT_GT(defender.deadline_misses(), 0u);
  EXPECT_GT(defender.max_gap_ms(), 1.5);

  const MediaAddress media = *machine.decoder().PhysToMedia(page);
  uint64_t protected_row_flips = 0;
  for (const PhysFlip& flip : machine.DrainFlips()) {
    protected_row_flips += (flip.record.media_row == media.row);
  }
  EXPECT_GT(protected_row_flips, 0u) << "expected flips during stall windows";
}

TEST(SoftTrrTest, GapStatisticsTracked) {
  Machine machine(FaultConfig());
  SoftTrrConfig config;
  config.stall_probability = 0.0;
  SoftTrrDefender defender(machine, {1_GiB}, config);
  machine.AdvanceClock(100 * 1'000'000);  // 100 ms
  defender.CatchUp();
  EXPECT_GE(defender.refreshes_fired(), 90u);
  EXPECT_GE(defender.max_gap_ms(), 1.0);  // never early
  EXPECT_EQ(defender.deadline_misses(), 0u);
}

// --- Copy-on-Flip ---

TEST(CopyOnFlipTest, DetectsAndMigratesMovablePages) {
  Machine machine(FaultConfig());
  CopyOnFlipConfig config;
  config.movable_fraction = 1.0;  // everything movable
  CopyOnFlipDefender defender(machine, config);

  // Store data so flips are ECC-visible, then hammer.
  machine.phys_memory().WriteU64(10_GiB, 0x1234567890ABCDEFull);
  HammerPageNeighbours(machine, 10_GiB, 8000);
  const CopyOnFlipDefender::Report report = defender.ProcessPendingFlips();
  EXPECT_GT(report.flips_on_live_pages, 0u);
  EXPECT_GT(report.migrations, 0u);
  EXPECT_EQ(report.unmovable_victim_pages, 0u);
  EXPECT_GT(defender.migrated_pages(), 0u);
}

TEST(CopyOnFlipTest, DetectionEventsAreLeaks) {
  // The §3 critique: every corrected-flip detection already leaked a bit.
  Machine machine(FaultConfig());
  machine.phys_memory().WriteU64(10_GiB, 0xFFFFFFFFFFFFFFFFull);
  CopyOnFlipDefender defender(machine, CopyOnFlipConfig{});
  HammerPageNeighbours(machine, 10_GiB, 8000);
  const auto report = defender.ProcessPendingFlips();
  EXPECT_GT(report.corrected_detections, 0u);
}

TEST(CopyOnFlipTest, UnmovablePagesStayExposed) {
  Machine machine(FaultConfig());
  CopyOnFlipConfig config;
  config.movable_fraction = 0.0;  // kernel-like: nothing movable
  CopyOnFlipDefender defender(machine, config);
  HammerPageNeighbours(machine, 10_GiB, 8000);
  const auto report = defender.ProcessPendingFlips();
  EXPECT_EQ(report.migrations, 0u);
  EXPECT_GT(report.unmovable_victim_pages, 0u);
}

TEST(CopyOnFlipTest, MigratedPagesNoLongerCharged) {
  Machine machine(FaultConfig());
  CopyOnFlipConfig config;
  config.movable_fraction = 1.0;
  CopyOnFlipDefender defender(machine, config);
  HammerPageNeighbours(machine, 10_GiB, 8000);
  const auto first = defender.ProcessPendingFlips();
  ASSERT_GT(first.migrations, 0u);
  // Same attack again: the victim frames were vacated.
  HammerPageNeighbours(machine, 10_GiB, 8000);
  const auto second = defender.ProcessPendingFlips();
  EXPECT_EQ(second.flips_on_live_pages, 0u);
  EXPECT_EQ(second.migrations, 0u);
}

// --- ZebRAM ---

TEST(ZebramTest, OverheadMatchesGuardRatio) {
  const DramGeometry geometry;
  SkylakeDecoder decoder(geometry);
  const uint64_t row_group = geometry.row_group_bytes();
  const PhysRange region{0, 1024 * row_group};
  ZebramRegion one_guard(decoder, region, 1);
  EXPECT_NEAR(one_guard.overhead(), 0.5, 0.01);  // §3: 50% at 1 guard/normal
  ZebramRegion four_guards(decoder, region, 4);
  EXPECT_NEAR(four_guards.overhead(), 0.8, 0.01);  // 80% at 4 guards/normal
}

TEST(ZebramTest, SafeAndGuardAlternate) {
  const DramGeometry geometry;
  SkylakeDecoder decoder(geometry);
  const uint64_t row_group = geometry.row_group_bytes();
  ZebramRegion zebra(decoder, PhysRange{0, 64 * row_group}, 1);
  // Stripe starts with a guard: group 0 guard, group 1 safe, ...
  EXPECT_FALSE(zebra.IsSafePhys(0));
  EXPECT_TRUE(zebra.IsSafePhys(row_group));
  EXPECT_FALSE(zebra.IsSafePhys(2 * row_group));
  EXPECT_FALSE(zebra.IsSafePhys(64 * row_group));  // outside region
}

TEST(ZebramTest, HammeringSafeRowsOnlyFlipsGuards) {
  Machine machine(FaultConfig());
  const DramGeometry& geometry = machine.decoder().geometry();
  const uint64_t row_group = geometry.row_group_bytes();
  // 4 guards per safe row: the modern server requirement (§3).
  ZebramRegion zebra(machine.decoder(), PhysRange{0, 256 * row_group}, 4);
  ASSERT_FALSE(zebra.safe_extents().empty());

  // Hammer data in two safe row groups of one bank (they are 5 groups
  // apart, so they conflict in the row buffer and generate real ACTs).
  const uint64_t safe_a = zebra.safe_extents()[0].begin;
  const uint64_t safe_b = zebra.safe_extents()[1].begin;
  const uint64_t aggressors[] = {safe_a, safe_b};
  HammerPhysAddresses(machine, aggressors, 15000);

  const auto flips = machine.DrainFlips();
  ASSERT_FALSE(flips.empty());
  for (const PhysFlip& flip : flips) {
    EXPECT_FALSE(zebra.IsSafePhys(flip.phys)) << "flip hit ZebRAM-protected data";
  }
}

TEST(ZebramTest, InsufficientGuardsLeakAcross) {
  // One guard row between data rows does not stop distance-2 disturbance
  // (Half-Double): the modern requirement is larger (§3).
  Machine machine(FaultConfig());
  const uint64_t row_group = machine.decoder().geometry().row_group_bytes();
  ZebramRegion zebra(machine.decoder(), PhysRange{0, 256 * row_group}, 1);
  const uint64_t safe_a = zebra.safe_extents()[0].begin;
  const uint64_t safe_b = zebra.safe_extents()[1].begin;
  const uint64_t aggressors[] = {safe_a, safe_b};
  HammerPhysAddresses(machine, aggressors, 40000);
  uint64_t safe_flips = 0;
  for (const PhysFlip& flip : machine.DrainFlips()) {
    safe_flips += zebra.IsSafePhys(flip.phys);
  }
  EXPECT_GT(safe_flips, 0u) << "distance-2 disturbance should cross a single guard";
}

}  // namespace
}  // namespace siloz
