// Property tests for the memory-controller timing model.
#include <gtest/gtest.h>

#include <vector>

#include "src/addr/decoder.h"
#include "src/base/rng.h"
#include "src/base/units.h"
#include "src/memctl/controller.h"
#include "src/memctl/engine.h"

namespace siloz {
namespace {

MemRequest At(const AddressDecoder& decoder, uint64_t phys) {
  MemRequest request;
  request.address = *decoder.PhysToMedia(phys);
  request.source_socket = request.address.socket;
  return request;
}

// P1: completion times are monotone in request order for a dependent chain,
// and every request takes at least tCAS + tBurst.
TEST(ControllerPropertyTest, LatencyBounds) {
  const DramGeometry geometry;
  SkylakeDecoder decoder(geometry);
  MemoryController controller(geometry, 0);
  Rng rng(1);
  double cursor = 0.0;
  for (int i = 0; i < 5000; ++i) {
    const uint64_t phys = rng.NextBelow(geometry.socket_bytes() / 64) * 64;
    const double done = controller.Serve(At(decoder, phys), cursor);
    const double latency = done - cursor;
    ASSERT_GE(latency, controller.timings().t_cas + controller.timings().t_burst - 1e-9);
    // A single miss turnaround bounds a request with no queueing.
    ASSERT_GE(done, cursor);
    cursor = done;
  }
  EXPECT_EQ(controller.stats().requests, 5000u);
  EXPECT_EQ(controller.stats().row_hits + controller.stats().row_misses, 5000u);
}

// P2: a purely sequential stream has a much higher row-hit rate than a
// purely random one.
TEST(ControllerPropertyTest, RowHitRateTracksLocality) {
  const DramGeometry geometry;
  SkylakeDecoder decoder(geometry);

  MemoryController sequential(geometry, 0);
  for (int i = 0; i < 20000; ++i) {
    sequential.Serve(At(decoder, static_cast<uint64_t>(i) * 64), 0.0);
  }
  MemoryController random_controller(geometry, 0);
  Rng rng(2);
  for (int i = 0; i < 20000; ++i) {
    random_controller.Serve(At(decoder, rng.NextBelow(geometry.socket_bytes() / 64) * 64), 0.0);
  }
  EXPECT_GT(sequential.stats().row_hit_rate(), 0.9);
  EXPECT_LT(random_controller.stats().row_hit_rate(), sequential.stats().row_hit_rate());
}

// P3: elapsed time is monotone in request count.
TEST(ControllerPropertyTest, ElapsedMonotoneInWork) {
  const DramGeometry geometry;
  SkylakeDecoder decoder(geometry);
  double previous = 0.0;
  for (uint32_t count : {1000u, 2000u, 4000u, 8000u}) {
    MemoryController c0(geometry, 0);
    MemoryController c1(geometry, 1);
    MemoryController* controllers[] = {&c0, &c1};
    std::vector<MemRequest> stream;
    Rng rng(3);
    for (uint32_t i = 0; i < count; ++i) {
      stream.push_back(At(decoder, rng.NextBelow(geometry.socket_bytes() / 64) * 64));
    }
    const EngineResult result = RunClosedLoop(stream, controllers, EngineConfig{});
    EXPECT_GT(result.elapsed_ns, previous);
    previous = result.elapsed_ns;
  }
}

// P4: bandwidth is monotone (non-decreasing, within noise) in MLP.
TEST(ControllerPropertyTest, BandwidthMonotoneInParallelism) {
  const DramGeometry geometry;
  SkylakeDecoder decoder(geometry);
  std::vector<MemRequest> stream;
  for (int i = 0; i < 20000; ++i) {
    stream.push_back(At(decoder, static_cast<uint64_t>(i) * 64 * 7));
  }
  double previous = 0.0;
  for (uint32_t mlp : {1u, 2u, 4u, 8u, 16u, 32u}) {
    MemoryController c0(geometry, 0);
    MemoryController c1(geometry, 1);
    MemoryController* controllers[] = {&c0, &c1};
    EngineConfig config;
    config.max_outstanding = mlp;
    const EngineResult result = RunClosedLoop(stream, controllers, config);
    EXPECT_GE(result.bandwidth_gib_per_s(), previous * 0.98) << "mlp " << mlp;
    previous = result.bandwidth_gib_per_s();
  }
}

// P5: ResetState makes runs exactly repeatable.
TEST(ControllerPropertyTest, ResetStateRepeatsExactly) {
  const DramGeometry geometry;
  SkylakeDecoder decoder(geometry);
  MemoryController controller(geometry, 0);
  std::vector<MemRequest> stream;
  Rng rng(5);
  for (int i = 0; i < 2000; ++i) {
    stream.push_back(At(decoder, rng.NextBelow(geometry.socket_bytes() / 64) * 64));
  }
  auto run = [&]() {
    controller.ResetState();
    double cursor = 0.0;
    for (const MemRequest& request : stream) {
      cursor = controller.Serve(request, cursor);
    }
    return cursor;
  };
  const double first = run();
  const double second = run();
  EXPECT_DOUBLE_EQ(first, second);
}

// P6: the channel bus bounds peak bandwidth: one socket cannot exceed
// channels * 64B / tBurst.
TEST(ControllerPropertyTest, ChannelBusBoundsBandwidth) {
  const DramGeometry geometry;
  SkylakeDecoder decoder(geometry);
  MemoryController c0(geometry, 0);
  MemoryController c1(geometry, 1);
  MemoryController* controllers[] = {&c0, &c1};
  std::vector<MemRequest> stream;
  for (int i = 0; i < 60000; ++i) {
    stream.push_back(At(decoder, static_cast<uint64_t>(i) * 64));
  }
  EngineConfig config;
  config.max_outstanding = 128;
  const EngineResult result = RunClosedLoop(stream, controllers, config);
  const double peak_bytes_per_ns =
      geometry.channels_per_socket * 64.0 / c0.timings().t_burst;
  const double achieved_bytes_per_ns =
      static_cast<double>(result.requests) * 64.0 / result.elapsed_ns;
  EXPECT_LE(achieved_bytes_per_ns, peak_bytes_per_ns * 1.001);
  // And a saturated sequential stream should get close to the bus bound.
  EXPECT_GT(achieved_bytes_per_ns, peak_bytes_per_ns * 0.5);
}

// P7: FAW makes dense same-rank activation bursts slower than spread ones.
TEST(ControllerPropertyTest, FawPenalizesSameRankBursts) {
  const DramGeometry geometry;
  SkylakeDecoder decoder(geometry);

  // 16 misses confined to rank 0 of channel 0 vs 16 misses spread over all
  // ranks/channels.
  std::vector<MemRequest> same_rank;
  std::vector<MemRequest> spread;
  uint64_t phys = 0;
  while (same_rank.size() < 16) {
    MemRequest request = At(decoder, phys);
    if (request.address.channel == 0 && request.address.rank == 0) {
      same_rank.push_back(request);
    }
    if (spread.size() < 16) {
      spread.push_back(At(decoder, phys * 131));
    }
    phys += 64;
  }
  DdrTimings no_refresh;
  no_refresh.model_refresh = false;  // isolate the FAW effect from REF tails
  auto finish_time = [&](const std::vector<MemRequest>& requests) {
    MemoryController controller(geometry, 0, no_refresh);
    double done = 0.0;
    for (const MemRequest& request : requests) {
      done = std::max(done, controller.Serve(request, 0.0));
    }
    return done;
  };
  EXPECT_GT(finish_time(same_rank), finish_time(spread));
}

}  // namespace
}  // namespace siloz
