// Tests for the EPT walker and secure-EPT integrity (src/ept).
#include <gtest/gtest.h>

#include "src/base/units.h"
#include "src/ept/ept.h"
#include "src/ept/phys_memory.h"

namespace siloz {
namespace {

// Allocator handing out consecutive 4 KiB frames starting at 1 GiB.
EptPageAllocator BumpAllocator(uint64_t* cursor) {
  return [cursor]() -> Result<uint64_t> {
    const uint64_t page = *cursor;
    *cursor += kPage4K;
    return page;
  };
}

TEST(PhysMemoryTest, ReadWriteRoundTrip) {
  FlatPhysMemory memory;
  const uint8_t data[] = {1, 2, 3, 4};
  memory.WritePhys(12345, data);
  uint8_t out[4] = {};
  memory.ReadPhys(12345, out);
  EXPECT_EQ(out[0], 1);
  EXPECT_EQ(out[3], 4);
}

TEST(PhysMemoryTest, UntouchedReadsZero) {
  FlatPhysMemory memory;
  uint8_t out[8] = {0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF};
  memory.ReadPhys(77_MiB, out);
  for (uint8_t byte : out) {
    EXPECT_EQ(byte, 0);
  }
}

TEST(PhysMemoryTest, CrossFrameAccess) {
  FlatPhysMemory memory;
  std::vector<uint8_t> data(kPage4K + 100, 0xAB);
  memory.WritePhys(kPage4K - 50, data);
  std::vector<uint8_t> out(data.size());
  memory.ReadPhys(kPage4K - 50, out);
  EXPECT_EQ(out, data);
  EXPECT_EQ(memory.frame_count(), 3u);
}

TEST(PhysMemoryTest, U64Helpers) {
  FlatPhysMemory memory;
  memory.WriteU64(640, 0xDEADBEEFCAFEF00Dull);
  EXPECT_EQ(memory.ReadU64(640), 0xDEADBEEFCAFEF00Dull);
}

TEST(EptTest, TranslateUnmappedFails) {
  FlatPhysMemory memory;
  uint64_t cursor = 1_GiB;
  ExtendedPageTable ept(memory, BumpAllocator(&cursor));
  EXPECT_FALSE(ept.Translate(0).ok());
}

TEST(EptTest, Map4KAndTranslate) {
  FlatPhysMemory memory;
  uint64_t cursor = 1_GiB;
  ExtendedPageTable ept(memory, BumpAllocator(&cursor));
  ASSERT_TRUE(ept.Map(0x7000, 0x123456000, PageSize::k4K).ok());
  EXPECT_EQ(*ept.Translate(0x7000), 0x123456000u);
  EXPECT_EQ(*ept.Translate(0x7ABC), 0x123456ABCu);  // offset passes through
  EXPECT_FALSE(ept.Translate(0x8000).ok());
  // 4 table pages: PML4, PDPT, PD, PT.
  EXPECT_EQ(ept.table_page_count(), 4u);
}

TEST(EptTest, Map2MLargePage) {
  FlatPhysMemory memory;
  uint64_t cursor = 1_GiB;
  ExtendedPageTable ept(memory, BumpAllocator(&cursor));
  ASSERT_TRUE(ept.Map(4_MiB, 512_MiB, PageSize::k2M).ok());
  EXPECT_EQ(*ept.Translate(4_MiB), 512_MiB);
  EXPECT_EQ(*ept.Translate(4_MiB + 123456), 512_MiB + 123456);
  // 3 table pages: PML4, PDPT, PD (leaf at PD level).
  EXPECT_EQ(ept.table_page_count(), 3u);
}

TEST(EptTest, Map1GHugePage) {
  FlatPhysMemory memory;
  uint64_t cursor = 1_GiB;
  ExtendedPageTable ept(memory, BumpAllocator(&cursor));
  ASSERT_TRUE(ept.Map(2_GiB, 8_GiB, PageSize::k1G).ok());
  EXPECT_EQ(*ept.Translate(2_GiB + 777), 8_GiB + 777);
  EXPECT_EQ(ept.table_page_count(), 2u);  // PML4, PDPT
}

TEST(EptTest, MisalignedMapRejected) {
  FlatPhysMemory memory;
  uint64_t cursor = 1_GiB;
  ExtendedPageTable ept(memory, BumpAllocator(&cursor));
  EXPECT_FALSE(ept.Map(4_KiB, 0, PageSize::k2M).ok());
  EXPECT_FALSE(ept.Map(2_MiB, 4_KiB, PageSize::k2M).ok());
}

TEST(EptTest, DoubleMapRejected) {
  FlatPhysMemory memory;
  uint64_t cursor = 1_GiB;
  ExtendedPageTable ept(memory, BumpAllocator(&cursor));
  ASSERT_TRUE(ept.Map(0, 2_MiB, PageSize::k2M).ok());
  EXPECT_FALSE(ept.Map(0, 4_MiB, PageSize::k2M).ok());
  EXPECT_FALSE(ept.Map(0, 4_MiB, PageSize::k4K).ok());  // covered by large page
}

TEST(EptTest, SharedIntermediateTables) {
  FlatPhysMemory memory;
  uint64_t cursor = 1_GiB;
  ExtendedPageTable ept(memory, BumpAllocator(&cursor));
  // 512 consecutive 2 MiB mappings share one PD: 3 + 0 extra pages.
  for (uint64_t i = 0; i < 512; ++i) {
    ASSERT_TRUE(ept.Map(i * kPage2M, 8_GiB + i * kPage2M, PageSize::k2M).ok());
  }
  EXPECT_EQ(ept.table_page_count(), 3u);
  EXPECT_EQ(*ept.Translate(511 * kPage2M + 5), 8_GiB + 511 * kPage2M + 5);
}

TEST(EptTest, EptFootprintMatchesPaperBound) {
  // §5.4: with 2 MiB backing and contiguous placement, each last-level EPT
  // page maps ~1 GiB, so a 160 GiB VM needs ~163 table pages (< one row
  // group of 384 pages).
  FlatPhysMemory memory;
  uint64_t cursor = 1_GiB;
  ExtendedPageTable ept(memory, BumpAllocator(&cursor));
  const uint64_t vm_bytes = 160_GiB;
  for (uint64_t gpa = 0; gpa < vm_bytes; gpa += kPage2M) {
    ASSERT_TRUE(ept.Map(gpa, 200_GiB + gpa, PageSize::k2M).ok());
  }
  // 160 PDs + 1 PDPT + 1 PML4 = 162.
  EXPECT_EQ(ept.table_page_count(), 162u);
  EXPECT_LT(ept.table_page_count(), 384u);
}

TEST(EptTest, BitFlipRedirectsTranslation) {
  // The §5.4 threat: a flipped EPT bit silently retargets a mapping.
  FlatPhysMemory memory;
  uint64_t cursor = 1_GiB;
  ExtendedPageTable ept(memory, BumpAllocator(&cursor));
  ASSERT_TRUE(ept.Map(0, 16_GiB, PageSize::k2M).ok());
  const uint64_t before = *ept.Translate(0);
  EXPECT_EQ(before, 16_GiB);

  // Flip frame bit 34 of the PD's first entry (byte 4, bit 2). The PD is the
  // 3rd table page allocated.
  const uint64_t pd_page = ept.table_pages()[2];
  memory.FlipBit(pd_page + 4, 2);

  const Result<uint64_t> after = ept.Translate(0);
  ASSERT_TRUE(after.ok());  // no integrity checking: walk "succeeds"
  EXPECT_NE(*after, before);
  EXPECT_EQ(*after, before ^ (1ull << 34));
}

TEST(SecureEptTest, DetectsCorruption) {
  // §5.4 hardware-based protection: TDX/SNP-style checks detect (not
  // prevent) EPT corruption; software cannot use the corrupted mapping.
  FlatPhysMemory memory;
  uint64_t cursor = 1_GiB;
  ExtendedPageTable ept(memory, BumpAllocator(&cursor), /*secure=*/true);
  ASSERT_TRUE(ept.Map(0, 16_GiB, PageSize::k2M).ok());
  ASSERT_TRUE(ept.Translate(0).ok());  // clean walk passes checks

  const uint64_t pd_page = ept.table_pages()[2];
  memory.FlipBit(pd_page + 4, 2);
  const Result<uint64_t> after = ept.Translate(0);
  ASSERT_FALSE(after.ok());
  EXPECT_EQ(after.error().code, ErrorCode::kIntegrityViolation);
}

TEST(SecureEptTest, LegitimateUpdatesKeepPassing) {
  FlatPhysMemory memory;
  uint64_t cursor = 1_GiB;
  ExtendedPageTable ept(memory, BumpAllocator(&cursor), /*secure=*/true);
  for (uint64_t i = 0; i < 64; ++i) {
    ASSERT_TRUE(ept.Map(i * kPage2M, 32_GiB + i * kPage2M, PageSize::k2M).ok());
    ASSERT_TRUE(ept.Translate(i * kPage2M).ok());
  }
}

TEST(EptTest, AllocatorFailurePropagates) {
  FlatPhysMemory memory;
  uint64_t cursor = 1_GiB;
  int budget = 2;  // root + one level only
  EptPageAllocator limited = [&]() -> Result<uint64_t> {
    if (budget-- <= 0) {
      return MakeError(ErrorCode::kNoMemory, "pool empty");
    }
    const uint64_t page = cursor;
    cursor += kPage4K;
    return page;
  };
  ExtendedPageTable ept(memory, limited);
  const Status status = ept.Map(0, 0, PageSize::k2M);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.error().code, ErrorCode::kNoMemory);
}

}  // namespace
}  // namespace siloz
