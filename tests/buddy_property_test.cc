// Randomized model-checking stress for the buddy allocator.
//
// A reference model tracks the set of allocated [begin, end) intervals.
// After every operation the allocator must agree with the model on:
//   - no allocation overlaps another or leaves the seeded ranges,
//   - natural alignment of every returned block,
//   - exact free_bytes accounting,
//   - full coalescing back to the seeded maximal blocks after drain.
#include <gtest/gtest.h>

#include <map>

#include "src/base/rng.h"
#include "src/base/units.h"
#include "src/hostmem/buddy.h"

namespace siloz {
namespace {

struct Allocation {
  uint64_t begin;
  uint32_t order;
};

class BuddyStress : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BuddyStress, RandomAllocFreeAgainstModel) {
  const std::vector<PhysRange> ranges = {PhysRange{0, 64_MiB},
                                         PhysRange{256_MiB, 256_MiB + 16_MiB}};
  BuddyAllocator buddy(ranges);
  const uint64_t total = 64_MiB + 16_MiB;
  ASSERT_EQ(buddy.total_bytes(), total);

  Rng rng(GetParam());
  std::map<uint64_t, Allocation> live;  // begin -> allocation
  uint64_t live_bytes = 0;

  for (int step = 0; step < 4000; ++step) {
    const bool do_alloc = live.empty() || rng.NextBernoulli(0.55);
    if (do_alloc) {
      const uint32_t order = static_cast<uint32_t>(rng.NextBelow(10));  // up to 2 MiB
      Result<uint64_t> block = buddy.Allocate(order);
      if (!block.ok()) {
        // The model can confirm plausibility: free_bytes may still exceed
        // the request (fragmentation), but never the other way around.
        ASSERT_LT(buddy.free_bytes(), buddy.total_bytes());
        continue;
      }
      const uint64_t begin = *block;
      const uint64_t size = OrderBytes(order);
      // Alignment.
      ASSERT_EQ(begin % size, 0u);
      // Inside seeded ranges.
      bool inside = false;
      for (const PhysRange& range : ranges) {
        inside |= (begin >= range.begin && begin + size <= range.end);
      }
      ASSERT_TRUE(inside) << "block " << begin << " outside seeded ranges";
      // No overlap with any live allocation.
      auto next = live.lower_bound(begin);
      if (next != live.end()) {
        ASSERT_LE(begin + size, next->second.begin);
      }
      if (next != live.begin()) {
        auto prev = std::prev(next);
        ASSERT_LE(prev->second.begin + OrderBytes(prev->second.order), begin);
      }
      live[begin] = Allocation{begin, order};
      live_bytes += size;
    } else {
      // Free a random live allocation.
      auto it = live.begin();
      std::advance(it, rng.NextBelow(live.size()));
      ASSERT_TRUE(buddy.Free(it->second.begin, it->second.order).ok());
      live_bytes -= OrderBytes(it->second.order);
      live.erase(it);
    }
    ASSERT_EQ(buddy.free_bytes(), buddy.total_bytes() - live_bytes) << "at step " << step;
  }

  // Drain and verify full coalescing.
  for (const auto& [begin, allocation] : live) {
    ASSERT_TRUE(buddy.Free(allocation.begin, allocation.order).ok());
  }
  EXPECT_EQ(buddy.free_bytes(), total);
  EXPECT_EQ(buddy.LargestFreeOrder(), 14);  // the 64 MiB block is whole again
  // And the allocator can hand out the maximal blocks.
  EXPECT_TRUE(buddy.AllocateAt(0, 14).ok());
  EXPECT_TRUE(buddy.AllocateAt(256_MiB, 12).ok());  // 16 MiB block
}

INSTANTIATE_TEST_SUITE_P(Seeds, BuddyStress, ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u));

TEST(BuddyStressTest, MixedAllocateAtAndOffline) {
  BuddyAllocator buddy({PhysRange{0, 32_MiB}});
  Rng rng(99);
  std::map<uint64_t, Allocation> live;
  std::set<uint64_t> offlined;
  for (int step = 0; step < 2000; ++step) {
    const double dice = rng.NextDouble();
    if (dice < 0.4) {
      const uint32_t order = static_cast<uint32_t>(rng.NextBelow(6));
      Result<uint64_t> block = buddy.Allocate(order);
      if (block.ok()) {
        live[*block] = Allocation{*block, order};
        // Never hand out an offlined page.
        for (uint64_t page = *block; page < *block + OrderBytes(order); page += kPage4K) {
          ASSERT_EQ(offlined.count(page), 0u);
        }
      }
    } else if (dice < 0.7 && !live.empty()) {
      auto it = live.begin();
      std::advance(it, rng.NextBelow(live.size()));
      ASSERT_TRUE(buddy.Free(it->second.begin, it->second.order).ok());
      live.erase(it);
    } else if (dice < 0.85) {
      const uint64_t page = rng.NextBelow(32_MiB / kPage4K) * kPage4K;
      if (buddy.OfflinePage(page).ok()) {
        offlined.insert(page);
      }
    } else {
      const uint64_t begin = rng.NextBelow(32_MiB / kPage2M) * kPage2M;
      if (buddy.AllocateAt(begin, kOrder2M).ok()) {
        live[begin] = Allocation{begin, kOrder2M};
        for (uint64_t page = begin; page < begin + kPage2M; page += kPage4K) {
          ASSERT_EQ(offlined.count(page), 0u);
        }
      }
    }
    ASSERT_EQ(buddy.offlined_bytes(), offlined.size() * kPage4K);
  }
  // Accounting closes: total shrank by offlined bytes.
  EXPECT_EQ(buddy.total_bytes(), 32_MiB - offlined.size() * kPage4K);
}

}  // namespace
}  // namespace siloz
