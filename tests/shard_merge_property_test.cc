// Algebraic properties of the shard-merge fold (MemoryController::AbsorbShard
// plus the ShardedEngineResult elapsed/requests fold; DESIGN.md §13).
//
// The merge is the one place shard results recombine, so its algebra is what
// the determinism contract rests on:
//  - the fold is a pure function of the shard sequence (same order, same
//    bits — twice),
//  - integer counters and the busy_ns max are associative under regrouping
//    (total_latency_ns, a double sum, is order-sensitive — which is exactly
//    why MergeShards pins one fixed fold order instead of relying on
//    associativity),
//  - a never-served shard is a fold identity,
//  - absorbing zeroes the source, so a double absorb is a no-op,
//  - shards touch disjoint bank groups, so the census fold is a disjoint
//    union, and
//  - the result-level fold is elapsed = max over shards, requests = sum.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <memory>
#include <vector>

#include "src/addr/decoder.h"
#include "src/base/rng.h"
#include "src/memctl/sharded_engine.h"

namespace siloz {
namespace {

EngineConfig TestEngineConfig() {
  EngineConfig config;
  config.max_outstanding = 8;
  config.compute_ns_per_access = 3.0;
  return config;
}

// Serves a deterministic stream confined to `channel` into a fresh
// controller, giving each "shard" a distinct, channel-disjoint footprint.
std::unique_ptr<MemoryController> ServeChannelShard(const DramGeometry& geometry,
                                                    uint32_t channel, uint64_t seed,
                                                    uint64_t count = 20000,
                                                    uint32_t bank_groups_per_queue = 0) {
  const SkylakeDecoder decoder(geometry);
  auto controller = std::make_unique<MemoryController>(geometry, 0);
  ShardServer server(*controller, TestEngineConfig(), bank_groups_per_queue, channel,
                     /*channels=*/1);
  Rng rng(seed);
  const uint64_t lines = geometry.total_bytes() / kCacheLineBytes;
  for (uint64_t i = 0; i < count; ++i) {
    // Redirect a random address onto the target channel; every other
    // coordinate stays randomized.
    MediaAddress address = *decoder.PhysToMedia(rng.NextBelow(lines) * kCacheLineBytes);
    address.socket = 0;
    address.channel = channel;
    MemRequest request;
    request.address = address;
    request.is_write = rng.NextBernoulli(0.25);
    request.source_socket = 0;
    server.Feed(controller->DecodeCmd(request));
  }
  return controller;
}

bool StatsBitIdentical(const ControllerStats& a, const ControllerStats& b) {
  return a.requests == b.requests && a.row_hits == b.row_hits &&
         a.row_misses == b.row_misses && a.activates == b.activates &&
         a.precharges == b.precharges && a.reads == b.reads && a.writes == b.writes &&
         a.ref_tail_hits == b.ref_tail_hits && a.busy_ns == b.busy_ns &&
         a.total_latency_ns == b.total_latency_ns;
}

TEST(ShardMergePropertyTest, FixedOrderFoldIsDeterministic) {
  const DramGeometry geometry;
  ControllerStats folds[2];
  for (int repeat = 0; repeat < 2; ++repeat) {
    MemoryController target(geometry, 0);
    for (uint32_t channel = 0; channel < 3; ++channel) {
      auto shard = ServeChannelShard(geometry, channel, 100 + channel);
      target.AbsorbShard(*shard);
    }
    folds[repeat] = target.stats();
  }
  EXPECT_TRUE(StatsBitIdentical(folds[0], folds[1]))
      << "same shard sequence, different fold bits";
}

TEST(ShardMergePropertyTest, CounterFoldAssociativeUnderRegrouping) {
  // (target + A) + B  vs  target + (A + B): integer counters, the census,
  // and the busy_ns max must agree; total_latency_ns is excluded because
  // double addition is not associative — the fixed fold order exists
  // precisely so that non-associativity never becomes observable.
  const DramGeometry geometry;
  MemoryController left(geometry, 0);
  {
    auto a = ServeChannelShard(geometry, 0, 7);
    auto b = ServeChannelShard(geometry, 1, 8);
    left.AbsorbShard(*a);
    left.AbsorbShard(*b);
  }
  MemoryController right(geometry, 0);
  {
    auto a = ServeChannelShard(geometry, 0, 7);
    auto b = ServeChannelShard(geometry, 1, 8);
    a->AbsorbShard(*b);
    right.AbsorbShard(*a);
  }
  EXPECT_EQ(left.stats().requests, right.stats().requests);
  EXPECT_EQ(left.stats().row_hits, right.stats().row_hits);
  EXPECT_EQ(left.stats().row_misses, right.stats().row_misses);
  EXPECT_EQ(left.stats().activates, right.stats().activates);
  EXPECT_EQ(left.stats().precharges, right.stats().precharges);
  EXPECT_EQ(left.stats().reads, right.stats().reads);
  EXPECT_EQ(left.stats().writes, right.stats().writes);
  EXPECT_EQ(left.stats().ref_tail_hits, right.stats().ref_tail_hits);
  EXPECT_EQ(left.stats().busy_ns, right.stats().busy_ns);  // max is associative
  for (size_t g = 0; g < left.bank_group_counts().size(); ++g) {
    EXPECT_EQ(left.bank_group_counts()[g].act, right.bank_group_counts()[g].act);
    EXPECT_EQ(left.bank_group_counts()[g].rd, right.bank_group_counts()[g].rd);
    EXPECT_EQ(left.bank_group_counts()[g].wr, right.bank_group_counts()[g].wr);
  }
}

TEST(ShardMergePropertyTest, EmptyShardIsFoldIdentity) {
  const DramGeometry geometry;
  auto target = ServeChannelShard(geometry, 2, 42);
  const ControllerStats before = target->stats();
  MemoryController empty(geometry, 0);  // never served a request
  target->AbsorbShard(empty);
  EXPECT_TRUE(StatsBitIdentical(before, target->stats()))
      << "absorbing an empty shard changed the fold";
}

TEST(ShardMergePropertyTest, AbsorbZeroesSourceSoDoubleAbsorbIsNoOp) {
  const DramGeometry geometry;
  MemoryController target(geometry, 0);
  auto shard = ServeChannelShard(geometry, 1, 9);
  target.AbsorbShard(*shard);
  const ControllerStats after_first = target.stats();
  EXPECT_EQ(shard->stats().requests, 0u);  // source zeroed
  target.AbsorbShard(*shard);              // second absorb folds nothing
  EXPECT_TRUE(StatsBitIdentical(after_first, target.stats()));
  for (const BankGroupCounts& group : shard->bank_group_counts()) {
    EXPECT_EQ(group.act + group.pre + group.rd + group.wr + group.ref, 0u);
  }
}

TEST(ShardMergePropertyTest, ChannelShardsHaveDisjointBankGroupCensuses) {
  // Each channel owns a disjoint bank-index range, so two channel shards can
  // never write the same bank-group slot: the census fold is a disjoint
  // union, and the merged census equals each shard's own census on its
  // groups.
  const DramGeometry geometry;
  auto shard_a = ServeChannelShard(geometry, 0, 11);
  auto shard_b = ServeChannelShard(geometry, 1, 12);
  const std::vector<BankGroupCounts> census_a = shard_a->bank_group_counts();
  const std::vector<BankGroupCounts> census_b = shard_b->bank_group_counts();
  ASSERT_EQ(census_a.size(), census_b.size());
  uint64_t overlap = 0;
  uint64_t populated = 0;
  for (size_t g = 0; g < census_a.size(); ++g) {
    const bool a_active = census_a[g].rd + census_a[g].wr > 0;
    const bool b_active = census_b[g].rd + census_b[g].wr > 0;
    overlap += static_cast<uint64_t>(a_active && b_active);
    populated += static_cast<uint64_t>(a_active || b_active);
  }
  EXPECT_EQ(overlap, 0u) << "channel shards touched a shared bank group";
  EXPECT_GT(populated, 0u);

  MemoryController target(geometry, 0);
  target.AbsorbShard(*shard_a);
  target.AbsorbShard(*shard_b);
  for (size_t g = 0; g < census_a.size(); ++g) {
    EXPECT_EQ(target.bank_group_counts()[g].rd, census_a[g].rd + census_b[g].rd);
    EXPECT_EQ(target.bank_group_counts()[g].act, census_a[g].act + census_b[g].act);
  }
}

TEST(ShardMergePropertyTest, ShardQueueCountAlgebra) {
  // DESIGN.md §15: queues = ceil(banks / (kBanksPerGroup * bgpq)), with
  // bgpq == 0 reserved for the legacy single-window shape.
  const DramGeometry geometry;  // 32 banks per channel by default
  EXPECT_EQ(ShardQueueCount(geometry, 1, 0), 1u);
  EXPECT_EQ(ShardQueueCount(geometry, geometry.channels_per_socket, 0), 1u);
  EXPECT_EQ(ShardQueueCount(geometry, 1, 1), geometry.banks_per_channel() / kBanksPerGroup);
  for (uint32_t channels : {1u, 2u, 3u, 6u}) {
    for (uint32_t bgpq : {1u, 2u, 4u, 8u}) {
      const uint32_t queues = ShardQueueCount(geometry, channels, bgpq);
      const uint32_t banks = channels * geometry.banks_per_channel();
      // Ceil division: every bank routes to a queue, and the last queue is
      // non-empty.
      EXPECT_GE(queues * kBanksPerGroup * bgpq, banks);
      EXPECT_LT((queues - 1) * kBanksPerGroup * bgpq, banks);
    }
  }
  // Grouping coarser than the shard degrades to one queue, never zero.
  EXPECT_EQ(ShardQueueCount(geometry, 1, 1000), 1u);
}

TEST(ShardMergePropertyTest, BankGroupQueueRegroupingPreservesInvariantCounts) {
  // Splitting a shard's completion window into per-bank-group queues changes
  // completion *times* only: ServeDecoded runs once per command in the same
  // stream order under every regrouping, so the request/hit/miss/ACT/PRE/
  // read/write censuses are equal across queue shapes (§15). Timing fields
  // (busy_ns, latency, ref_tail_hits) are deliberately excluded — they are
  // exactly what the regrouping is allowed to move.
  const DramGeometry geometry;
  std::vector<ControllerStats> stats;
  for (const uint32_t bgpq : {0u, 1u, 2u, 4u}) {
    stats.push_back(ServeChannelShard(geometry, 1, 77, 20000, bgpq)->stats());
  }
  for (size_t i = 1; i < stats.size(); ++i) {
    EXPECT_EQ(stats[i].requests, stats[0].requests) << "shape " << i;
    EXPECT_EQ(stats[i].row_hits, stats[0].row_hits) << "shape " << i;
    EXPECT_EQ(stats[i].row_misses, stats[0].row_misses) << "shape " << i;
    EXPECT_EQ(stats[i].activates, stats[0].activates) << "shape " << i;
    EXPECT_EQ(stats[i].precharges, stats[0].precharges) << "shape " << i;
    EXPECT_EQ(stats[i].reads, stats[0].reads) << "shape " << i;
    EXPECT_EQ(stats[i].writes, stats[0].writes) << "shape " << i;
  }
}

TEST(ShardMergePropertyTest, SingleQueueShardBitIdenticalToLegacyWindow) {
  // When bank_groups_per_queue covers the whole shard, the split is one
  // queue — structurally the legacy single window — so even the timing
  // fields must match bit-for-bit.
  const DramGeometry geometry;
  const uint32_t whole_shard = geometry.banks_per_channel() / kBanksPerGroup;
  auto legacy = ServeChannelShard(geometry, 0, 5, 20000, 0);
  auto one_queue = ServeChannelShard(geometry, 0, 5, 20000, whole_shard);
  EXPECT_TRUE(StatsBitIdentical(legacy->stats(), one_queue->stats()))
      << "whole-shard queue diverged from the legacy window";
}

TEST(ShardMergePropertyTest, ResultFoldIsElapsedMaxRequestsSum) {
  const DramGeometry geometry;
  const SkylakeDecoder decoder(geometry);
  Rng rng(0xF01D);
  const uint64_t lines = geometry.total_bytes() / kCacheLineBytes;
  std::vector<MemRequest> stream;
  for (uint64_t i = 0; i < 30000; ++i) {
    MemRequest request;
    request.address = *decoder.PhysToMedia(rng.NextBelow(lines) * kCacheLineBytes);
    request.is_write = rng.NextBernoulli(0.5);
    stream.push_back(request);
  }
  std::vector<std::unique_ptr<MemoryController>> owned;
  std::vector<MemoryController*> controllers;
  for (uint32_t socket = 0; socket < geometry.sockets; ++socket) {
    owned.push_back(std::make_unique<MemoryController>(geometry, socket));
    controllers.push_back(owned.back().get());
  }
  ShardedEngineConfig config;
  config.engine = TestEngineConfig();
  config.channels_per_shard = 1;
  Result<ShardedEngineResult> result = RunShardedClosedLoop(stream, controllers, config);
  ASSERT_TRUE(result.ok());

  double max_elapsed = 0.0;
  uint64_t sum_requests = 0;
  for (const ShardTelemetry& shard : result->shards) {
    max_elapsed = std::max(max_elapsed, shard.elapsed_ns);
    sum_requests += shard.requests;
  }
  EXPECT_EQ(result->elapsed_ns, max_elapsed);
  EXPECT_EQ(result->requests, sum_requests);
  EXPECT_EQ(result->requests, stream.size());
}

}  // namespace
}  // namespace siloz
