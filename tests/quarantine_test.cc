// Tests for §6 row-repair handling: inter-subarray repairs threaten
// isolation; Siloz quarantines the affected pages at boot.
#include <gtest/gtest.h>

#include "src/attack/blacksmith.h"
#include "src/base/units.h"
#include "src/sim/machine.h"
#include "src/siloz/hypervisor.h"

namespace siloz {
namespace {

// A DIMM whose media row 2500 (socket 0 / channel 0 / rank 0 / bank 0) is
// repaired to a spare row in a *different* subarray (internal 70000).
constexpr uint32_t kRepairedRow = 2500;
constexpr uint32_t kSpareRow = 70000;

MachineConfig RepairedMachine() {
  MachineConfig config;
  config.fault_tracking = true;
  DimmProfile repaired;
  repaired.name = "repaired";
  repaired.remap.repairs.push_back(
      RowRepair{.rank = 0, .bank = 0, .from_row = kRepairedRow, .to_row = kSpareRow});
  repaired.disturbance.threshold_mean = 2500.0;
  repaired.disturbance.threshold_spread = 0.15;
  repaired.trr.enabled = false;
  // Only channel 0's DIMM carries the repair; the rest are pristine.
  DimmProfile pristine = repaired;
  pristine.name = "pristine";
  pristine.remap.repairs.clear();
  config.dimm_profiles = {repaired, pristine, pristine, pristine, pristine, pristine};
  return config;
}

// Phys address of (channel 0, dimm 0, rank 0, bank 0, row, col 0), socket 0.
uint64_t RowPhys(const AddressDecoder& decoder, uint32_t row) {
  MediaAddress media;
  media.row = row;
  return *decoder.MediaToPhys(media);
}

TEST(QuarantineTest, InterSubarrayRepairLeaksFlipsWithoutQuarantine) {
  // Physics: hammering the repaired row activates the spare wordline, whose
  // neighbours live in a different subarray (group 68 area, not group 2).
  Machine machine(RepairedMachine());
  const uint64_t aggressors[] = {RowPhys(machine.decoder(), kRepairedRow),
                                 RowPhys(machine.decoder(), kRepairedRow - 40)};
  HammerPhysAddresses(machine, aggressors, 15000);
  bool flip_near_spare = false;
  for (const PhysFlip& flip : machine.DrainFlips()) {
    flip_near_spare |= (flip.record.internal_row >= kSpareRow - 2 &&
                        flip.record.internal_row <= kSpareRow + 2);
  }
  EXPECT_TRUE(flip_near_spare) << "expected disturbance around the spare row";
}

TEST(QuarantineTest, BootOfflinesRepairedRowPages) {
  Machine machine(RepairedMachine());
  SilozConfig config;
  MediaAddress quarantined;
  quarantined.row = kRepairedRow;  // socket/channel/dimm/rank/bank all 0
  config.quarantined_rows.push_back(quarantined);
  SilozHypervisor hypervisor(machine.decoder(), machine.phys_memory(), config);
  ASSERT_TRUE(hypervisor.Boot().ok());

  // 128 cache lines at 4 KiB-page granularity: 128 pages = 512 KiB.
  EXPECT_EQ(hypervisor.quarantined_bytes(), 128 * kPage4K);
  // None of the repaired row's pages are allocatable: row 2500 lives in
  // guest group 2, whose node must refuse AllocateAt for each page.
  NumaNode* owner = nullptr;
  for (uint32_t node_id : hypervisor.AvailableGuestNodes(0)) {
    NumaNode& node = **hypervisor.nodes().Get(node_id);
    if (node.first_group() == 2) {
      owner = &node;
    }
  }
  ASSERT_NE(owner, nullptr);
  EXPECT_EQ(owner->allocator().offlined_bytes(), 128 * kPage4K);
  const DramGeometry& geometry = machine.decoder().geometry();
  for (uint32_t column = 0; column < geometry.row_bytes; column += kCacheLineBytes) {
    MediaAddress media = quarantined;
    media.column = column;
    const uint64_t page = *machine.decoder().MediaToPhys(media) & ~(kPage4K - 1);
    EXPECT_FALSE(owner->allocator().AllocateAt(page, kOrder4K).ok());
  }
}

TEST(QuarantineTest, QuarantinedPagesNeverReachVms) {
  Machine machine(RepairedMachine());
  SilozConfig config;
  MediaAddress quarantined;
  quarantined.row = kRepairedRow;
  config.quarantined_rows.push_back(quarantined);
  SilozHypervisor hypervisor(machine.decoder(), machine.phys_memory(), config);
  ASSERT_TRUE(hypervisor.Boot().ok());

  // Fill the socket with VMs; no VM region may contain a quarantined page.
  std::vector<VmId> fleet;
  while (true) {
    Result<VmId> id = hypervisor.CreateVm(
        {.name = "vm" + std::to_string(fleet.size()), .memory_bytes = 1536_MiB, .socket = 0});
    if (!id.ok()) {
      break;
    }
    fleet.push_back(*id);
  }
  ASSERT_FALSE(fleet.empty());

  const DramGeometry& geometry = machine.decoder().geometry();
  std::set<uint64_t> quarantined_pages;
  for (uint32_t column = 0; column < geometry.row_bytes; column += kCacheLineBytes) {
    MediaAddress media = quarantined;
    media.column = column;
    quarantined_pages.insert(*machine.decoder().MediaToPhys(media) & ~(kPage4K - 1));
  }
  for (VmId id : fleet) {
    for (const VmRegion& region : (*hypervisor.GetVm(id))->regions()) {
      for (uint64_t page : quarantined_pages) {
        EXPECT_FALSE(page >= region.hpa && page < region.hpa + region.bytes)
            << "VM " << id << " received quarantined page " << page;
      }
    }
  }
}

TEST(QuarantineTest, QuarantineCostAccounting) {
  // Measured amplification: one 8 KiB repaired row costs 512 KiB of 4 KiB
  // pages under cache-line interleaving (64x), and fragments the row group
  // for 2 MiB-backed guests — the honest price of §6's mitigation.
  DramGeometry geometry;
  SkylakeDecoder decoder(geometry);
  FlatPhysMemory memory;
  SilozConfig config;
  for (uint32_t i = 0; i < 10; ++i) {
    MediaAddress row;
    row.row = 4000 + i * 3000;
    row.bank = i % 4;
    config.quarantined_rows.push_back(row);
  }
  SilozHypervisor hypervisor(decoder, memory, config);
  ASSERT_TRUE(hypervisor.Boot().ok());
  EXPECT_EQ(hypervisor.quarantined_bytes(), 10 * 128 * kPage4K);
}

}  // namespace
}  // namespace siloz
