// Serial-vs-sharded differentials over the PlatformDecoder registry.
//
// The sharded engine's partition argument (DESIGN.md §13) is
// platform-independent — it holds for any channel count and any decoder
// family. This battery re-proves it against every *registered* platform
// (the existing sharded_differential_test covers hand-built decoder
// shapes), which is what actually exercises the non-Skylake channel
// geometries: zen has 2 channels per socket on one socket, ddr5 has 8.
//
// Three claims per platform:
//  1. shard-invariant counts equal the serial reference for every sharding;
//  2. the sharded engine is bit-identical across worker counts 1/2/8 —
//     the determinism contract, per platform;
//  3. experiment-level: RunWorkload under ApplyPlatform is bit-identical
//     across thread counts AND its per-shard served counts conserve the
//     issued request total with one shard slot per (socket, channel) —
//     the regression for the fixed channels-per-socket assumption that
//     used to hard-code Skylake's 6 (bench/fig_common.h, ShardPlan).
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <numeric>
#include <string>
#include <vector>

#include "src/addr/decoder.h"
#include "src/addr/platform.h"
#include "src/base/rng.h"
#include "src/memctl/sharded_engine.h"
#include "src/obs/metrics.h"
#include "src/sim/experiment.h"

namespace siloz {
namespace {

constexpr uint64_t kStreamCommands = 120000;

struct RegistryPlatform {
  std::string name;
  DramGeometry geometry;
  std::unique_ptr<AddressDecoder> decoder;
};

std::vector<RegistryPlatform> RegistryPlatforms() {
  std::vector<RegistryPlatform> platforms;
  for (const auto& [name, info] : PlatformRegistry()) {
    RegistryPlatform p;
    p.name = name;
    p.geometry = info.geometry;
    Result<std::unique_ptr<AddressDecoder>> made = info.make(info.geometry);
    EXPECT_TRUE(made.ok()) << name;
    p.decoder = std::move(*made);
    platforms.push_back(std::move(p));
  }
  return platforms;
}

// Same stream shape as sharded_differential_test.cc, but remote-socket
// issues only exist on multi-socket platforms (zen has one socket).
std::vector<MemRequest> MakeStream(const RegistryPlatform& platform, uint64_t seed,
                                   uint64_t count = kStreamCommands) {
  Rng rng(seed);
  const uint64_t lines = platform.geometry.total_bytes() / kCacheLineBytes;
  std::vector<MemRequest> stream;
  stream.reserve(count);
  uint64_t line = rng.NextBelow(lines);
  for (uint64_t i = 0; i < count; ++i) {
    if (!rng.NextBernoulli(0.7)) {
      line = rng.NextBelow(lines);
    } else {
      line = (line + 1) % lines;
    }
    MemRequest request;
    request.address = *platform.decoder->PhysToMedia(line * kCacheLineBytes);
    request.is_write = rng.NextBernoulli(0.3);
    const bool remote = rng.NextBernoulli(0.1);  // drawn unconditionally: keeps
    // the stream bit-comparable if a platform's socket count changes.
    request.source_socket = (remote && platform.geometry.sockets > 1) ? 1u : 0u;
    stream.push_back(request);
  }
  return stream;
}

struct ControllerSet {
  std::vector<std::unique_ptr<MemoryController>> owned;
  std::vector<MemoryController*> ptrs;

  explicit ControllerSet(const DramGeometry& geometry) {
    for (uint32_t socket = 0; socket < geometry.sockets; ++socket) {
      owned.push_back(std::make_unique<MemoryController>(geometry, socket));
      ptrs.push_back(owned.back().get());
    }
  }
};

EngineConfig TestEngineConfig() {
  EngineConfig config;
  config.max_outstanding = 10;
  config.compute_ns_per_access = 5.0;
  return config;
}

void ExpectShardInvariantCountsEqual(const ControllerStats& serial,
                                     const ControllerStats& sharded,
                                     const std::string& label) {
  EXPECT_EQ(serial.requests, sharded.requests) << label;
  EXPECT_EQ(serial.reads, sharded.reads) << label;
  EXPECT_EQ(serial.writes, sharded.writes) << label;
  EXPECT_EQ(serial.row_hits, sharded.row_hits) << label;
  EXPECT_EQ(serial.row_misses, sharded.row_misses) << label;
  EXPECT_EQ(serial.activates, sharded.activates) << label;
  EXPECT_EQ(serial.precharges, sharded.precharges) << label;
}

TEST(PlatformShardedTest, ShardInvariantCountsMatchSerialOnRegistryPlatforms) {
  for (const RegistryPlatform& platform : RegistryPlatforms()) {
    const std::vector<MemRequest> stream = MakeStream(platform, 0x9A7F0 + 1);
    ControllerSet serial(platform.geometry);
    RunClosedLoop(stream, serial.ptrs, TestEngineConfig());

    // 1 = one shard per channel; channels_per_socket = one shard per socket.
    // On zen (2 channels) these brackets meet; on ddr5 they span 8 channels.
    for (uint32_t channels_per_shard : {1u, platform.geometry.channels_per_socket}) {
      ControllerSet sharded(platform.geometry);
      ShardedEngineConfig config;
      config.engine = TestEngineConfig();
      config.channels_per_shard = channels_per_shard;
      Result<ShardedEngineResult> result = RunShardedClosedLoop(stream, sharded.ptrs, config);
      ASSERT_TRUE(result.ok()) << platform.name;
      EXPECT_EQ(result->requests, stream.size()) << platform.name;
      // One shard slot per (socket, channel-run): the ShardPlan must derive
      // the shard count from the platform's geometry, never from Skylake's.
      const uint32_t expected_shards =
          platform.geometry.sockets *
          ((platform.geometry.channels_per_socket + channels_per_shard - 1) / channels_per_shard);
      EXPECT_EQ(result->shards.size(), expected_shards)
          << platform.name << " cps=" << channels_per_shard;
      for (size_t socket = 0; socket < serial.ptrs.size(); ++socket) {
        ExpectShardInvariantCountsEqual(
            serial.ptrs[socket]->stats(), sharded.ptrs[socket]->stats(),
            platform.name + " cps=" + std::to_string(channels_per_shard) + " socket" +
                std::to_string(socket));
      }
    }
  }
}

TEST(PlatformShardedTest, BitIdenticalAcrossThreadCountsPerPlatform) {
  for (const RegistryPlatform& platform : RegistryPlatforms()) {
    const std::vector<MemRequest> stream = MakeStream(platform, 0x51A7);
    std::vector<ShardedEngineResult> results;
    std::vector<std::string> censuses;
    for (uint32_t threads : {1u, 2u, 8u}) {
      obs::Registry::Global().Reset();
      std::string census;
      ShardedEngineResult run;
      {
        ControllerSet controllers(platform.geometry);
        ShardedEngineConfig config;
        config.engine = TestEngineConfig();
        config.channels_per_shard = 1;
        config.threads = threads;
        Result<ShardedEngineResult> result =
            RunShardedClosedLoop(stream, controllers.ptrs, config);
        ASSERT_TRUE(result.ok()) << platform.name << " threads=" << threads;
        run = *result;
      }
      census = obs::Registry::Global().SectionJson(obs::Domain::kModel);
      if (!results.empty()) {
        const ShardedEngineResult& reference = results.front();
        const std::string label = platform.name + " threads=" + std::to_string(threads);
        EXPECT_EQ(run.elapsed_ns, reference.elapsed_ns) << label;
        EXPECT_EQ(run.requests, reference.requests) << label;
        ASSERT_EQ(run.shards.size(), reference.shards.size()) << label;
        for (size_t shard = 0; shard < run.shards.size(); ++shard) {
          EXPECT_EQ(run.shards[shard].requests, reference.shards[shard].requests) << label;
          EXPECT_EQ(run.shards[shard].elapsed_ns, reference.shards[shard].elapsed_ns) << label;
        }
        EXPECT_EQ(census, censuses.front()) << label;
      }
      results.push_back(run);
      censuses.push_back(census);
    }
  }
}

// Experiment-level determinism + conservation per platform: RunWorkload
// under ApplyPlatform must be bit-identical for threads 1/2/8, report one
// shard slot per (socket, channel), and serve exactly trials * accesses.
TEST(PlatformShardedTest, RunWorkloadConservesAndIsBitIdenticalPerPlatform) {
  for (const std::string& name : PlatformNames()) {
    WorkloadSpec spec = *FindWorkload("redis-a");
    spec.accesses = 60000;
    RunnerConfig config;
    config.trials = 2;
    config.vm.memory_bytes = 3ull << 30;
    config.channels_per_shard = 1;
    ASSERT_TRUE(ApplyPlatform(config, name).ok()) << name;

    std::vector<RunMeasurement> runs;
    for (uint32_t threads : {1u, 2u, 8u}) {
      config.threads = threads;
      Result<RunMeasurement> run = RunWorkload(config, spec);
      ASSERT_TRUE(run.ok()) << name << " threads=" << threads << ": "
                            << run.error().ToString();
      runs.push_back(std::move(*run));
    }
    for (size_t i = 1; i < runs.size(); ++i) {
      EXPECT_EQ(runs[i].elapsed_ns.mean(), runs[0].elapsed_ns.mean()) << name;
      EXPECT_EQ(runs[i].bandwidth_gibs.mean(), runs[0].bandwidth_gibs.mean()) << name;
      EXPECT_EQ(runs[i].row_hit_rate, runs[0].row_hit_rate) << name;
      EXPECT_EQ(runs[i].shard_requests, runs[0].shard_requests) << name;
    }

    // Conservation: the served counts must sum to the issued total, with one
    // slot per (socket, channel) of THIS platform's geometry — 2 slots on
    // zen, 16 on ddr5 — not Skylake's 12.
    const PlatformInfo* info = FindPlatform(name);
    ASSERT_NE(info, nullptr);
    const size_t expected_slots =
        static_cast<size_t>(info->geometry.sockets) * info->geometry.channels_per_socket;
    EXPECT_EQ(runs[0].shard_requests.size(), expected_slots) << name;
    const uint64_t served = std::accumulate(runs[0].shard_requests.begin(),
                                            runs[0].shard_requests.end(), uint64_t{0});
    EXPECT_EQ(served, static_cast<uint64_t>(config.trials) * spec.accesses) << name;
  }
}

// Fault-mode flip identity per platform: the disturbance replay census must
// not depend on the sharding, under each platform's remap chain and TRR
// generation defaults.
TEST(PlatformShardedTest, FaultReplayFlipCensusMatchesSerialPerPlatform) {
  for (const char* name : {"zen", "ddr5"}) {  // the non-Skylake channel counts
    WorkloadSpec spec = *FindWorkload("redis-a");
    spec.accesses = 40000;
    RunnerConfig config;
    config.trials = 2;
    config.vm.memory_bytes = 3ull << 30;
    config.fault_tracking = true;
    ASSERT_TRUE(ApplyPlatform(config, name).ok()) << name;

    std::vector<std::vector<uint64_t>> censuses;
    for (uint32_t channels_per_shard : {0u, 1u}) {
      config.channels_per_shard = channels_per_shard;
      Result<RunMeasurement> run = RunWorkload(config, spec);
      ASSERT_TRUE(run.ok()) << name << " channels_per_shard=" << channels_per_shard;
      censuses.push_back(std::move(run->flip_phys));
    }
    EXPECT_EQ(censuses[1], censuses[0]) << name << ": sharded flips != serial flips";
  }
}

}  // namespace
}  // namespace siloz
