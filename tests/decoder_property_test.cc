// Property tests for address decoders across a family of geometries.
//
// For every (geometry, decoder) combination:
//   P1  PhysToMedia is total on [0, total_bytes) and MediaToPhys inverts it.
//   P2  distinct line addresses map to distinct media lines (injectivity).
//   P3  every 2 MiB-aligned page maps into a single subarray group (§4.2).
//   P4  every 4 KiB page maps into a single subarray group.
//   P5  SubarrayGroupMap extents exactly tile the address space.
//   P6  the cluster id is consistent between decoder and group map.
#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "src/addr/subarray_group.h"
#include "src/base/rng.h"
#include "src/base/units.h"

namespace siloz {
namespace {

struct GeometryCase {
  const char* name;
  DramGeometry geometry;
};

const std::vector<GeometryCase>& GeometryCases() {
  static const std::vector<GeometryCase>& cases = *new std::vector<GeometryCase>([] {
    std::vector<GeometryCase> result;
    {
      DramGeometry g;  // evaluation server
      result.push_back({"skylake_default", g});
    }
    {
      DramGeometry g = Ddr5Geometry();
      result.push_back({"ddr5", g});
    }
    {
      DramGeometry g;
      g.sockets = 1;
      g.channels_per_socket = 4;
      g.banks_per_rank = 8;
      g.rows_per_bank = 16384;
      g.rows_per_subarray = 512;
      result.push_back({"small_4ch", g});
    }
    {
      DramGeometry g;
      g.sockets = 2;
      g.channels_per_socket = 2;
      g.dimms_per_channel = 2;
      g.ranks_per_dimm = 2;
      g.banks_per_rank = 16;
      g.rows_per_bank = 8192;
      g.rows_per_subarray = 2048;
      result.push_back({"two_ch_two_dimm", g});
    }
    {
      DramGeometry g;
      g.sockets = 1;
      g.channels_per_socket = 3;  // odd channel count exercises mod-3 paths
      g.banks_per_rank = 4;
      g.rows_per_bank = 4096;
      g.rows_per_subarray = 1024;
      result.push_back({"three_ch_odd", g});
    }
    return result;
  }());
  return cases;
}

enum class Kind { kSkylake, kLinear, kSnc };

std::unique_ptr<AddressDecoder> MakeDecoder(Kind kind, const DramGeometry& geometry) {
  switch (kind) {
    case Kind::kSkylake:
      return std::make_unique<SkylakeDecoder>(geometry);
    case Kind::kLinear:
      return std::make_unique<LinearDecoder>(geometry);
    case Kind::kSnc:
      return std::make_unique<SncDecoder>(geometry, 2);
  }
  return nullptr;
}

class DecoderPropertyTest
    : public ::testing::TestWithParam<std::tuple<int, Kind>> {
 protected:
  const GeometryCase& geometry_case() const { return GeometryCases()[std::get<0>(GetParam())]; }
  Kind kind() const { return std::get<1>(GetParam()); }
  bool Applicable() const {
    // SNC needs an even channel count.
    return kind() != Kind::kSnc || geometry_case().geometry.channels_per_socket % 2 == 0;
  }
};

TEST_P(DecoderPropertyTest, P1RoundTrip) {
  if (!Applicable()) {
    GTEST_SKIP();
  }
  const DramGeometry& geometry = geometry_case().geometry;
  auto decoder = MakeDecoder(kind(), geometry);
  Rng rng(101);
  for (int i = 0; i < 3000; ++i) {
    const uint64_t phys = rng.NextBelow(geometry.total_bytes());
    Result<MediaAddress> media = decoder->PhysToMedia(phys);
    ASSERT_TRUE(media.ok());
    ASSERT_TRUE(ValidateAddress(geometry, *media).ok()) << media->ToString();
    ASSERT_EQ(*decoder->MediaToPhys(*media), phys);
  }
  EXPECT_FALSE(decoder->PhysToMedia(geometry.total_bytes()).ok());
}

TEST_P(DecoderPropertyTest, P2Injectivity) {
  if (!Applicable()) {
    GTEST_SKIP();
  }
  const DramGeometry& geometry = geometry_case().geometry;
  auto decoder = MakeDecoder(kind(), geometry);
  Rng rng(103);
  std::set<uint64_t> phys_seen;
  std::set<std::string> media_seen;
  for (int i = 0; i < 3000; ++i) {
    const uint64_t phys = rng.NextBelow(geometry.total_bytes() / 64) * 64;
    if (!phys_seen.insert(phys).second) {
      continue;
    }
    ASSERT_TRUE(media_seen.insert(decoder->PhysToMedia(phys)->ToString()).second);
  }
}

TEST_P(DecoderPropertyTest, P3TwoMiBPagesContained) {
  if (!Applicable()) {
    GTEST_SKIP();
  }
  const DramGeometry& geometry = geometry_case().geometry;
  auto decoder = MakeDecoder(kind(), geometry);
  SubarrayGroupMap map = *SubarrayGroupMap::Build(*decoder, geometry.rows_per_subarray);
  Rng rng(107);
  for (int i = 0; i < 12; ++i) {
    const uint64_t page = rng.NextBelow(geometry.total_bytes() / kPage2M) * kPage2M;
    ASSERT_TRUE(*map.PageIsContained(*decoder, page, kPage2M))
        << geometry_case().name << " page " << page;
  }
}

TEST_P(DecoderPropertyTest, P4FourKiBPagesContained) {
  if (!Applicable()) {
    GTEST_SKIP();
  }
  const DramGeometry& geometry = geometry_case().geometry;
  auto decoder = MakeDecoder(kind(), geometry);
  SubarrayGroupMap map = *SubarrayGroupMap::Build(*decoder, geometry.rows_per_subarray);
  Rng rng(109);
  for (int i = 0; i < 50; ++i) {
    const uint64_t page = rng.NextBelow(geometry.total_bytes() / kPage4K) * kPage4K;
    ASSERT_TRUE(*map.PageIsContained(*decoder, page, kPage4K))
        << geometry_case().name << " page " << page;
  }
}

TEST_P(DecoderPropertyTest, P5ExtentsTileAddressSpace) {
  if (!Applicable()) {
    GTEST_SKIP();
  }
  const DramGeometry& geometry = geometry_case().geometry;
  auto decoder = MakeDecoder(kind(), geometry);
  SubarrayGroupMap map = *SubarrayGroupMap::Build(*decoder, geometry.rows_per_subarray);
  uint64_t covered = 0;
  std::vector<PhysRange> all;
  for (uint32_t group = 0; group < map.total_groups(); ++group) {
    for (const PhysRange& range : map.RangesOf(group)) {
      covered += range.size();
      all.push_back(range);
    }
  }
  EXPECT_EQ(covered, geometry.total_bytes());
  // Non-overlap: sort and check adjacency.
  std::sort(all.begin(), all.end(),
            [](const PhysRange& a, const PhysRange& b) { return a.begin < b.begin; });
  for (size_t i = 1; i < all.size(); ++i) {
    ASSERT_GE(all[i].begin, all[i - 1].end);
  }
}

TEST_P(DecoderPropertyTest, P6ClusterConsistency) {
  if (!Applicable()) {
    GTEST_SKIP();
  }
  const DramGeometry& geometry = geometry_case().geometry;
  auto decoder = MakeDecoder(kind(), geometry);
  SubarrayGroupMap map = *SubarrayGroupMap::Build(*decoder, geometry.rows_per_subarray);
  EXPECT_EQ(map.clusters_per_socket(), decoder->clusters_per_socket());
  Rng rng(113);
  for (int i = 0; i < 500; ++i) {
    const uint64_t phys = rng.NextBelow(geometry.total_bytes());
    const MediaAddress media = *decoder->PhysToMedia(phys);
    const uint32_t group = *map.GroupOfPhys(phys);
    EXPECT_EQ(map.ClusterOfGroup(group), decoder->ClusterOf(media));
    EXPECT_EQ(map.SocketOfGroup(group), media.socket);
    EXPECT_EQ(map.IndexInCluster(group), media.row / geometry.rows_per_subarray);
  }
}

std::string CaseName(const ::testing::TestParamInfo<std::tuple<int, Kind>>& param_info) {
  static const char* const kKindNames[] = {"skylake", "linear", "snc2"};
  return std::string(GeometryCases()[std::get<0>(param_info.param)].name) + "_" +
         kKindNames[static_cast<int>(std::get<1>(param_info.param))];
}

INSTANTIATE_TEST_SUITE_P(
    AllDecoders, DecoderPropertyTest,
    ::testing::Combine(::testing::Range(0, 5),
                       ::testing::Values(Kind::kSkylake, Kind::kLinear, Kind::kSnc)),
    CaseName);

}  // namespace
}  // namespace siloz
