// Differential test for the flat-slab DisturbanceModel: a deliberately
// simple hash-map reference model re-implements the documented physics
// (per-victim accumulation between refresh epochs, cached per-row
// thresholds, geometric flip bursts from one sequential RNG stream) and a
// randomized command stream drives both. The two must agree flip-for-flip —
// same victims, same bit positions, same order — and counter-for-counter.
// The slab layout, interior fast path, and lazy allocation are pure
// representation changes; any divergence here is a determinism bug.
#include <gtest/gtest.h>

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/base/rng.h"
#include "src/base/units.h"
#include "src/dram/fault_model.h"

namespace siloz {
namespace {

// Mirrors fault_model.cc's deterministic per-row property mixer so the
// reference derives thresholds independently of the production code path
// under test (ThresholdFor is shared: it is pure and covered by its own
// unit tests).
class ReferenceModel {
 public:
  ReferenceModel(const DisturbanceProfile& profile, uint32_t rows_per_bank,
                 uint32_t rows_per_subarray, uint32_t half_row_bits,
                 const DisturbanceModel& oracle)
      : profile_(profile),
        rows_per_bank_(rows_per_bank),
        rows_per_subarray_(rows_per_subarray),
        half_row_bits_(half_row_bits),
        oracle_(&oracle),
        flip_rng_(profile.seed ^ 0xF11Bull) {}

  std::vector<InternalFlip> OnActivate(uint32_t bank_key, HalfRowSide side, uint32_t row,
                                       uint64_t now_ns) {
    std::vector<InternalFlip> flips;
    State& self = states_[Key(bank_key, side, row)];
    self.disturbance = 0.0;
    self.crossings = 0;
    self.epoch = Epoch(row, now_ns);
    Disturb(bank_key, side, row, 1.0, now_ns, flips);
    return flips;
  }

  std::vector<InternalFlip> OnRowOpen(uint32_t bank_key, HalfRowSide side, uint32_t row,
                                      uint64_t open_ns, uint64_t now_ns) {
    std::vector<InternalFlip> flips;
    Disturb(bank_key, side, row, static_cast<double>(open_ns) * profile_.rowpress_acts_per_ns,
            now_ns, flips);
    return flips;
  }

  void RefreshRow(uint32_t bank_key, HalfRowSide side, uint32_t row, uint64_t now_ns) {
    auto it = states_.find(Key(bank_key, side, row));
    if (it == states_.end()) {
      return;
    }
    it->second.disturbance = 0.0;
    it->second.crossings = 0;
    it->second.epoch = Epoch(row, now_ns);
  }

  uint64_t total_flip_events() const { return total_flip_events_; }
  uint64_t disturb_probes() const { return disturb_probes_; }

 private:
  struct State {
    double disturbance = 0.0;
    uint64_t epoch = 0;
    uint32_t crossings = 0;
  };

  static uint64_t Key(uint32_t bank_key, HalfRowSide side, uint32_t row) {
    return (static_cast<uint64_t>(bank_key) << 33) | (static_cast<uint64_t>(side) << 32) | row;
  }

  uint64_t Epoch(uint32_t row, uint64_t now_ns) const {
    const uint64_t phase = (row % kRefreshBins) * kRefreshIntervalNs;
    return (now_ns + kRefreshWindowNs - phase) / kRefreshWindowNs;
  }

  void Disturb(uint32_t bank_key, HalfRowSide side, uint32_t aggressor, double amount,
               uint64_t now_ns, std::vector<InternalFlip>& flips) {
    const uint32_t base = (aggressor / rows_per_subarray_) * rows_per_subarray_;
    const int64_t offsets[] = {-1, +1, -2, +2};
    const double weights[] = {1.0, 1.0, profile_.distance2_factor, profile_.distance2_factor};
    for (int i = 0; i < 4; ++i) {
      const int64_t victim = static_cast<int64_t>(aggressor) + offsets[i];
      if (victim < static_cast<int64_t>(base) ||
          victim >= static_cast<int64_t>(base + rows_per_subarray_) ||
          victim >= static_cast<int64_t>(rows_per_bank_)) {
        continue;
      }
      ++disturb_probes_;
      const auto row = static_cast<uint32_t>(victim);
      State& state = states_[Key(bank_key, side, row)];
      const uint64_t epoch = Epoch(row, now_ns);
      if (epoch != state.epoch) {
        state.disturbance = 0.0;
        state.crossings = 0;
        state.epoch = epoch;
      }
      state.disturbance += amount * weights[i];
      const double threshold = oracle_->ThresholdFor(bank_key, side, row);
      while (state.disturbance >= threshold * static_cast<double>(state.crossings + 1)) {
        ++state.crossings;
        ++total_flip_events_;
        uint32_t flip_count = 1;
        while (flip_rng_.NextBernoulli(profile_.extra_flip_prob)) {
          ++flip_count;
        }
        for (uint32_t f = 0; f < flip_count; ++f) {
          flips.push_back(InternalFlip{
              .victim_row = row,
              .bit = static_cast<uint32_t>(flip_rng_.NextBelow(half_row_bits_)),
          });
        }
      }
    }
  }

  DisturbanceProfile profile_;
  uint32_t rows_per_bank_;
  uint32_t rows_per_subarray_;
  uint32_t half_row_bits_;
  const DisturbanceModel* oracle_;
  Rng flip_rng_;
  std::unordered_map<uint64_t, State> states_;
  uint64_t total_flip_events_ = 0;
  uint64_t disturb_probes_ = 0;
};

TEST(FaultDifferentialTest, SlabModelMatchesHashMapReferenceFlipForFlip) {
  constexpr uint32_t kRowsPerBank = 16384;
  constexpr uint32_t kRowsPerSubarray = 1024;
  constexpr uint32_t kHalfRowBits = 4096 * 8;
  constexpr uint64_t kCommands = 100'000;

  for (const uint64_t seed : {11ull, 227ull, 90210ull}) {
    DisturbanceProfile profile;
    // Low enough that the stream produces thousands of crossings, so the
    // flip path (RNG consumption order included) is exercised heavily.
    profile.threshold_mean = 600.0;
    profile.seed = 0x51102 + seed;

    DisturbanceModel model(profile, kRowsPerBank, kRowsPerSubarray, kHalfRowBits);
    ReferenceModel reference(profile, kRowsPerBank, kRowsPerSubarray, kHalfRowBits, model);

    Rng rng(seed);
    uint64_t now_ns = 0;
    uint64_t total_flips = 0;
    for (uint64_t command = 0; command < kCommands; ++command) {
      const uint32_t bank_key = static_cast<uint32_t>(rng.NextBelow(8));
      const auto side = static_cast<HalfRowSide>(rng.NextBelow(2));
      // Hammer-style concentration: most commands revisit a small row set
      // (including subarray-edge rows), the rest roam the whole bank.
      uint32_t row;
      if (rng.NextBelow(100) < 80) {
        const uint32_t hot[] = {1, 1022, 1023, 1024, 5000, 5002, 9000, 16383};
        row = hot[rng.NextBelow(8)];
      } else {
        row = static_cast<uint32_t>(rng.NextBelow(kRowsPerBank));
      }
      const uint64_t kind = rng.NextBelow(20);
      std::vector<InternalFlip> got;
      std::vector<InternalFlip> want;
      if (kind == 0) {
        model.RefreshRow(bank_key, side, row, now_ns);
        reference.RefreshRow(bank_key, side, row, now_ns);
      } else if (kind == 1) {
        const uint64_t open_ns = rng.NextBelow(kMaxRowOpenNs);
        got = model.OnRowOpen(bank_key, side, row, open_ns, now_ns);
        want = reference.OnRowOpen(bank_key, side, row, open_ns, now_ns);
      } else {
        got = model.OnActivate(bank_key, side, row, now_ns);
        want = reference.OnActivate(bank_key, side, row, now_ns);
      }
      ASSERT_EQ(got.size(), want.size()) << "seed " << seed << " command " << command;
      for (size_t i = 0; i < got.size(); ++i) {
        ASSERT_EQ(got[i].victim_row, want[i].victim_row)
            << "seed " << seed << " command " << command << " flip " << i;
        ASSERT_EQ(got[i].bit, want[i].bit)
            << "seed " << seed << " command " << command << " flip " << i;
      }
      total_flips += got.size();
      now_ns += 45 + rng.NextBelow(200);
    }
    EXPECT_EQ(model.total_flip_events(), reference.total_flip_events()) << "seed " << seed;
    EXPECT_EQ(model.disturb_probes(), reference.disturb_probes()) << "seed " << seed;
    // The stream must actually exercise the flip path, or the test is vacuous.
    EXPECT_GT(total_flips, 100u) << "seed " << seed;
  }
}

}  // namespace
}  // namespace siloz
