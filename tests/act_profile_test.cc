// Tests for the row-activation profiler (src/memctl/act_profile.h).
#include <gtest/gtest.h>

#include "src/addr/decoder.h"
#include "src/base/units.h"
#include "src/memctl/act_profile.h"

namespace siloz {
namespace {

MemRequest At(const AddressDecoder& decoder, uint64_t phys) {
  MemRequest request;
  request.address = *decoder.PhysToMedia(phys);
  return request;
}

TEST(ActProfileTest, RowBufferHitsAreNotActivations) {
  const DramGeometry geometry;
  SkylakeDecoder decoder(geometry);
  RowActivationProfiler profiler(geometry, 1000);
  // 100 accesses to the same line: 1 ACT.
  for (int i = 0; i < 100; ++i) {
    profiler.Observe(At(decoder, 0), i * 10.0);
  }
  const ActProfile profile = profiler.Finish();
  EXPECT_EQ(profile.total_activations, 1u);
  EXPECT_EQ(profile.max_row_acts_per_window, 1u);
  EXPECT_EQ(profile.rows_over_threshold, 0u);
}

TEST(ActProfileTest, AlternatingRowsCountEveryActivation) {
  const DramGeometry geometry;
  SkylakeDecoder decoder(geometry);
  RowActivationProfiler profiler(geometry, 1000);
  const uint64_t stride = geometry.row_group_bytes() * 32;  // same bank, other row
  for (int i = 0; i < 5000; ++i) {
    profiler.Observe(At(decoder, (i % 2) * stride), i * 10.0);
  }
  const ActProfile profile = profiler.Finish();
  EXPECT_EQ(profile.total_activations, 5000u);
  EXPECT_EQ(profile.max_row_acts_per_window, 2500u);
  EXPECT_EQ(profile.rows_over_threshold, 2u);
}

TEST(ActProfileTest, WindowsResetCounts) {
  const DramGeometry geometry;
  SkylakeDecoder decoder(geometry);
  RowActivationProfiler profiler(geometry, 1000);
  const uint64_t stride = geometry.row_group_bytes() * 32;
  // 600 ACTs per window across 4 windows: never crosses 1000 in a window.
  double t = 0.0;
  for (int window = 0; window < 4; ++window) {
    for (int i = 0; i < 600; ++i) {
      profiler.Observe(At(decoder, (i % 2) * stride), t);
      t += static_cast<double>(kRefreshWindowNs) / 600.0;
    }
  }
  const ActProfile profile = profiler.Finish();
  EXPECT_EQ(profile.total_activations, 2400u);
  EXPECT_LE(profile.max_row_acts_per_window, 1000u);
  EXPECT_EQ(profile.rows_over_threshold, 0u);
  EXPECT_GE(profile.windows, 4u);
}

TEST(ActProfileTest, DistinctBanksTrackedIndependently) {
  const DramGeometry geometry;
  SkylakeDecoder decoder(geometry);
  RowActivationProfiler profiler(geometry, 10);
  // Interleave across 6 channels: each access opens a different bank once.
  for (uint64_t i = 0; i < 6; ++i) {
    profiler.Observe(At(decoder, i * kCacheLineBytes), static_cast<double>(i));
  }
  const ActProfile profile = profiler.Finish();
  EXPECT_EQ(profile.total_activations, 6u);
  EXPECT_EQ(profile.max_row_acts_per_window, 1u);
}

}  // namespace
}  // namespace siloz
