// Fleet-churn simulator (src/sim/fleet): deterministic traces, leak-free
// drains, admission policies, and thread-count-invariant model output.
// (ctest -L fleet)
#include <gtest/gtest.h>

#include <string>

#include "src/base/units.h"
#include "src/sim/fleet.h"

namespace siloz {
namespace {

// A 2-socket, 32 GiB/socket platform (256 MiB subarray groups, 126 guest
// nodes per socket) so tier-1 traces hit capacity pressure in seconds.
DramGeometry TinyGeometry() {
  DramGeometry geometry;
  geometry.sockets = 2;
  geometry.channels_per_socket = 2;
  geometry.dimms_per_channel = 1;
  geometry.ranks_per_dimm = 2;
  geometry.banks_per_rank = 16;      // 64 banks/socket -> 512 KiB row groups
  geometry.row_bytes = 8 * kKiB;
  geometry.rows_per_bank = 65536;    // 512 MiB banks, 32 GiB sockets
  geometry.rows_per_subarray = 512;  // 256 MiB subarray groups
  return geometry;
}

FleetConfig TinyConfig() {
  FleetConfig config;
  config.geometry = TinyGeometry();
  // 384 MiB is 1.5 subarray groups: every such VM strands 128 MiB in its
  // second node, so the stranded-capacity census has something to see.
  config.size_classes_bytes = {384_MiB, 512_MiB, 1_GiB, 2_GiB};
  config.streams = 4;
  config.duration_s = 30.0;
  config.arrivals_per_s = 0.8;
  config.burst_period_s = 60.0;
  config.min_lifetime_s = 5.0;
  config.max_lifetime_s = 20.0;
  config.epoch_s = 5.0;
  config.queue_timeout_s = 20.0;
  config.threads = 2;
  return config;
}

// The same platform under heavy overload: offered concurrent demand far
// exceeds both the node and EPT-pool capacity.
FleetConfig PressuredConfig() {
  FleetConfig config = TinyConfig();
  config.duration_s = 40.0;
  config.arrivals_per_s = 10.0;
  config.min_lifetime_s = 10.0;
  config.max_lifetime_s = 60.0;
  return config;
}

TEST(FleetPolicy, NamesRoundTrip) {
  for (AdmissionPolicy policy :
       {AdmissionPolicy::kReject, AdmissionPolicy::kQueue, AdmissionPolicy::kDefrag}) {
    const Result<AdmissionPolicy> parsed = ParseAdmissionPolicy(AdmissionPolicyName(policy));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, policy);
  }
  EXPECT_FALSE(ParseAdmissionPolicy("evict").ok());
}

TEST(FleetConfigValidation, RejectsMalformedAndBaseline) {
  FleetConfig config = TinyConfig();
  config.streams = 0;
  EXPECT_EQ(RunFleetChurn(config).error().code, ErrorCode::kInvalidArgument);
  config = TinyConfig();
  config.burst_amplitude = 1.0;
  EXPECT_EQ(RunFleetChurn(config).error().code, ErrorCode::kInvalidArgument);
  config = TinyConfig();
  config.hypervisor.enabled = false;
  EXPECT_EQ(RunFleetChurn(config).error().code, ErrorCode::kUnsupported);
}

TEST(FleetChurn, UnpressuredTraceAdmitsEverythingAndDrainsClean) {
  const Result<FleetReport> report = RunFleetChurn(TinyConfig());
  ASSERT_TRUE(report.ok()) << report.error().ToString();
  EXPECT_GT(report->trace_vms, 0u);
  EXPECT_EQ(report->admitted, report->trace_vms);
  EXPECT_EQ(report->rejected, 0u);
  EXPECT_EQ(report->abandoned, 0u);
  EXPECT_GT(report->peak_concurrency, 0u);
  EXPECT_LE(report->peak_concurrency, report->admitted);
  EXPECT_GT(report->peak_stranded_bytes, 0u);  // whole-group rounding strands
  EXPECT_TRUE(report->drained_clean) << report->drain_diff;
  ASSERT_EQ(report->sockets.size(), 2u);
  EXPECT_EQ(report->sockets[0].admitted + report->sockets[1].admitted, report->admitted);
}

TEST(FleetChurn, ModelOutputIsThreadInvariant) {
  FleetConfig config = PressuredConfig();
  config.threads = 1;
  const Result<FleetReport> serial = RunFleetChurn(config);
  ASSERT_TRUE(serial.ok()) << serial.error().ToString();
  for (uint32_t threads : {2u, 8u}) {
    config.threads = threads;
    const Result<FleetReport> parallel = RunFleetChurn(config);
    ASSERT_TRUE(parallel.ok()) << parallel.error().ToString();
    EXPECT_EQ(serial->ModelText(), parallel->ModelText()) << "threads=" << threads;
    EXPECT_EQ(serial->ModelJson(), parallel->ModelJson()) << "threads=" << threads;
  }
}

TEST(FleetChurn, RejectPolicyFailsFastUnderPressure) {
  FleetConfig config = PressuredConfig();
  config.policy = AdmissionPolicy::kReject;
  const Result<FleetReport> report = RunFleetChurn(config);
  ASSERT_TRUE(report.ok()) << report.error().ToString();
  EXPECT_GT(report->rejected, 0u);
  EXPECT_GT(report->exhaustion_events, 0u);
  EXPECT_EQ(report->queued_admits, 0u);
  EXPECT_EQ(report->abandoned, 0u);
  EXPECT_EQ(report->migrations, 0u);
  EXPECT_TRUE(report->drained_clean) << report->drain_diff;
}

TEST(FleetChurn, QueuePolicyRetriesAndTimesOut) {
  FleetConfig config = PressuredConfig();
  config.policy = AdmissionPolicy::kQueue;
  const Result<FleetReport> report = RunFleetChurn(config);
  ASSERT_TRUE(report.ok()) << report.error().ToString();
  EXPECT_EQ(report->rejected, 0u);
  EXPECT_GT(report->queued_admits, 0u);  // departures unblocked waiters
  EXPECT_GT(report->abandoned, 0u);      // and some waits exceeded the timeout
  EXPECT_EQ(report->migrations, 0u);
  EXPECT_TRUE(report->drained_clean) << report->drain_diff;
}

TEST(FleetChurn, DefragPolicyRecoversCapacity) {
  FleetConfig config = PressuredConfig();
  config.policy = AdmissionPolicy::kDefrag;
  const Result<FleetReport> report = RunFleetChurn(config);
  ASSERT_TRUE(report.ok()) << report.error().ToString();
  EXPECT_GT(report->migrations, 0u);
  EXPECT_GT(report->recovered_bytes, 0u);
  EXPECT_TRUE(report->drained_clean) << report->drain_diff;

  // The trace is a function of (seed, shape) alone — the policy knob must
  // not perturb synthesis.
  FleetConfig queue_config = config;
  queue_config.policy = AdmissionPolicy::kQueue;
  const Result<FleetReport> queued = RunFleetChurn(queue_config);
  ASSERT_TRUE(queued.ok()) << queued.error().ToString();
  EXPECT_EQ(report->trace_vms, queued->trace_vms);
  EXPECT_EQ(queued->migrations, 0u);
}

TEST(FleetReportRendering, JsonAndTextCarryTheTotals) {
  const Result<FleetReport> report = RunFleetChurn(TinyConfig());
  ASSERT_TRUE(report.ok());
  const std::string json = report->ModelJson();
  EXPECT_NE(json.find("\"admitted\":" + std::to_string(report->admitted)), std::string::npos);
  EXPECT_NE(json.find("\"drained_clean\":true"), std::string::npos);
  const std::string text = report->ModelText();
  EXPECT_NE(text.find("drain clean"), std::string::npos);
  // Latency text renders without crashing whether or not samples exist.
  EXPECT_NE(FleetReport::LatencyText().find("fleet.alloc_ns"), std::string::npos);
}

}  // namespace
}  // namespace siloz
