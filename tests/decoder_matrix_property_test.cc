// Seeded-random round-trip fuzz over the whole platform matrix: one million
// encode/decode round-trips per registered platform, byte-granular physical
// addresses drawn from the full machine range. A decoder that drops, aliases,
// or swaps any address bit fails here within a handful of draws; the first
// failing address is reported with its full bit decomposition so the broken
// bit position is readable straight off the log.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>

#include "src/addr/decoder.h"
#include "src/addr/platform.h"
#include "src/base/rng.h"

namespace siloz {
namespace {

constexpr int kRoundTripsPerPlatform = 1'000'000;

std::string Bits(uint64_t value, uint32_t width) {
  std::string out;
  out.reserve(width);
  for (int bit = static_cast<int>(width) - 1; bit >= 0; --bit) {
    out.push_back(((value >> bit) & 1) != 0 ? '1' : '0');
  }
  return out;
}

uint32_t AddressBits(uint64_t total_bytes) {
  uint32_t bits = 0;
  while ((1ull << bits) < total_bytes) {
    ++bits;
  }
  return bits;
}

// Everything a human needs to localize the broken bit: the address in hex
// and binary, the media coordinates both ways, and the XOR of the two
// physical addresses (its set bits are exactly the corrupted positions).
std::string DescribeMismatch(const std::string& platform, uint32_t bits, uint64_t phys,
                             const MediaAddress& media, uint64_t back) {
  char head[160];
  std::snprintf(head, sizeof(head),
                "platform=%s phys=0x%012llx back=0x%012llx diff=0x%012llx\n",
                platform.c_str(), static_cast<unsigned long long>(phys),
                static_cast<unsigned long long>(back),
                static_cast<unsigned long long>(phys ^ back));
  std::string out = head;
  out += "  phys bits " + Bits(phys, bits) + "\n";
  out += "  back bits " + Bits(back, bits) + "\n";
  out += "  diff bits " + Bits(phys ^ back, bits) + "\n";
  out += "  media     " + media.ToString();
  return out;
}

TEST(DecoderMatrixPropertyTest, MillionRandomRoundTripsPerPlatform) {
  for (const auto& [name, info] : PlatformRegistry()) {
    Result<std::unique_ptr<AddressDecoder>> made = info.make(info.geometry);
    ASSERT_TRUE(made.ok()) << name;
    const AddressDecoder& decoder = **made;
    const uint64_t total_bytes = info.geometry.total_bytes();
    const uint32_t bits = AddressBits(total_bytes);

    // One fixed seed per platform name so a failure reproduces standalone.
    Rng rng(0xF00D5EED ^ std::hash<std::string>{}(name));
    for (int i = 0; i < kRoundTripsPerPlatform; ++i) {
      const uint64_t phys = rng.NextBelow(total_bytes);
      Result<MediaAddress> media = decoder.PhysToMedia(phys);
      if (!media.ok()) {
        FAIL() << "decode failed after " << i << " round-trips: platform=" << name
               << " phys=0x" << std::hex << phys << std::dec << ": "
               << media.error().ToString();
      }
      Result<uint64_t> back = decoder.MediaToPhys(*media);
      if (!back.ok()) {
        FAIL() << "encode failed after " << i << " round-trips: "
               << DescribeMismatch(name, bits, phys, *media, 0) << "\n  "
               << back.error().ToString();
      }
      if (*back != phys) {
        FAIL() << "round-trip mismatch after " << i << " round-trips:\n"
               << DescribeMismatch(name, bits, phys, *media, *back);
      }
    }
  }
}

// The same sweep through the registry's string factory entry point, at lower
// volume: guards the plumbing silozctl/siloz_audit actually call.
TEST(DecoderMatrixPropertyTest, FactoryByNameRoundTrips) {
  for (const std::string& name : PlatformNames()) {
    Result<std::unique_ptr<AddressDecoder>> made = MakePlatformDecoder(name);
    ASSERT_TRUE(made.ok()) << name;
    const AddressDecoder& decoder = **made;
    const uint64_t total_bytes = decoder.geometry().total_bytes();
    Rng rng(0x5EED ^ std::hash<std::string>{}(name));
    for (int i = 0; i < 10'000; ++i) {
      const uint64_t phys = rng.NextBelow(total_bytes);
      Result<MediaAddress> media = decoder.PhysToMedia(phys);
      ASSERT_TRUE(media.ok()) << name;
      Result<uint64_t> back = decoder.MediaToPhys(*media);
      ASSERT_TRUE(back.ok()) << name;
      ASSERT_EQ(*back, phys) << name;
    }
  }
}

}  // namespace
}  // namespace siloz
