// Unit tests for DramGeometry and MediaAddress (src/dram/geometry.h).
#include <gtest/gtest.h>

#include "src/base/units.h"
#include "src/dram/geometry.h"

namespace siloz {
namespace {

TEST(GeometryTest, EvaluationServerDefaults) {
  // Table 2: per-socket 192 GiB across 6 channels of 32 GiB 2Rx4 DIMMs,
  // 192 banks, 1024 8 KiB rows per subarray.
  DramGeometry geometry;
  ASSERT_TRUE(geometry.Validate().ok());
  EXPECT_EQ(geometry.banks_per_socket(), 192u);
  EXPECT_EQ(geometry.total_banks(), 384u);
  EXPECT_EQ(geometry.bank_bytes(), 1_GiB);
  EXPECT_EQ(geometry.socket_bytes(), 192_GiB);
  EXPECT_EQ(geometry.total_bytes(), 384_GiB);
  EXPECT_EQ(geometry.subarrays_per_bank(), 128u);
  // §4.1: 192 banks * 1024 rows * 8 KiB = 1.5 GiB subarray groups.
  EXPECT_EQ(geometry.subarray_group_bytes(), 1536_MiB);
  EXPECT_EQ(geometry.subarray_groups_per_socket(), 128u);
  // §4.2: 16 row groups = 24 MiB.
  EXPECT_EQ(16 * geometry.row_group_bytes(), 24_MiB);
}

TEST(GeometryTest, SubarraySizeSweep) {
  // §7.4: group size scales linearly with subarray size, 0.75 GiB - 3 GiB.
  DramGeometry geometry;
  geometry.rows_per_subarray = 512;
  EXPECT_EQ(geometry.subarray_group_bytes(), 768_MiB);
  geometry.rows_per_subarray = 2048;
  EXPECT_EQ(geometry.subarray_group_bytes(), 3_GiB);
}

TEST(GeometryTest, ValidateRejectsZeroDimension) {
  DramGeometry geometry;
  geometry.channels_per_socket = 0;
  EXPECT_FALSE(geometry.Validate().ok());
}

TEST(GeometryTest, ValidateRejectsNonDividingSubarray) {
  DramGeometry geometry;
  geometry.rows_per_subarray = 768;  // does not divide 131072
  EXPECT_FALSE(geometry.Validate().ok());
}

TEST(GeometryTest, SocketBankIndexIsDense) {
  DramGeometry geometry;
  // Every (channel, dimm, rank, bank) combination maps to a distinct index
  // in [0, banks_per_socket).
  std::vector<bool> seen(geometry.banks_per_socket(), false);
  MediaAddress addr;
  for (addr.channel = 0; addr.channel < geometry.channels_per_socket; ++addr.channel) {
    for (addr.dimm = 0; addr.dimm < geometry.dimms_per_channel; ++addr.dimm) {
      for (addr.rank = 0; addr.rank < geometry.ranks_per_dimm; ++addr.rank) {
        for (addr.bank = 0; addr.bank < geometry.banks_per_rank; ++addr.bank) {
          const uint32_t index = SocketBankIndex(geometry, addr);
          ASSERT_LT(index, seen.size());
          EXPECT_FALSE(seen[index]);
          seen[index] = true;
        }
      }
    }
  }
}

TEST(GeometryTest, SubarrayOfRow) {
  DramGeometry geometry;
  EXPECT_EQ(SubarrayOfRow(geometry, 0), 0u);
  EXPECT_EQ(SubarrayOfRow(geometry, 1023), 0u);
  EXPECT_EQ(SubarrayOfRow(geometry, 1024), 1u);
  EXPECT_EQ(SubarrayOfRow(geometry, 131071), 127u);
}

TEST(GeometryTest, ValidateAddressBounds) {
  DramGeometry geometry;
  MediaAddress ok{.socket = 1, .channel = 5, .dimm = 0, .rank = 1, .bank = 15,
                  .row = 131071, .column = 8191};
  EXPECT_TRUE(ValidateAddress(geometry, ok).ok());
  MediaAddress bad_row = ok;
  bad_row.row = 131072;
  EXPECT_FALSE(ValidateAddress(geometry, bad_row).ok());
  MediaAddress bad_socket = ok;
  bad_socket.socket = 2;
  EXPECT_FALSE(ValidateAddress(geometry, bad_socket).ok());
  MediaAddress bad_column = ok;
  bad_column.column = 8192;
  EXPECT_FALSE(ValidateAddress(geometry, bad_column).ok());
}

TEST(GeometryTest, ToStringMentionsKeyFacts) {
  DramGeometry geometry;
  const std::string s = geometry.ToString();
  EXPECT_NE(s.find("2 socket"), std::string::npos);
  EXPECT_NE(s.find("1536 MiB"), std::string::npos);
  const MediaAddress addr{.socket = 1, .channel = 2, .dimm = 0, .rank = 1, .bank = 7,
                          .row = 42, .column = 128};
  EXPECT_EQ(addr.ToString(), "s1.ch2.d0.r1.b7.row42.col128");
}

}  // namespace
}  // namespace siloz
