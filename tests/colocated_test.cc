// Tests for the co-located multi-tenant runner (src/sim/colocated.h).
#include <gtest/gtest.h>

#include <cmath>

#include "src/sim/colocated.h"

namespace siloz {
namespace {

WorkloadSpec SmallSpec(const char* base, uint64_t accesses = 50000) {
  WorkloadSpec spec = *FindWorkload(base);
  spec.accesses = accesses;
  return spec;
}

TEST(ColocatedTest, SingleTenantMatchesSoloShape) {
  RunnerConfig config;
  const std::vector<TenantSpec> tenants = {
      {.vm_name = "solo", .memory_bytes = 3ull << 30, .socket = 0,
       .workload = SmallSpec("redis-a")}};
  Result<std::vector<TenantResult>> results = RunColocated(config, tenants);
  ASSERT_TRUE(results.ok()) << results.error().ToString();
  ASSERT_EQ(results->size(), 1u);
  EXPECT_EQ((*results)[0].requests, 50000u);
  EXPECT_GT((*results)[0].bandwidth_gibs, 0.0);
}

TEST(ColocatedTest, NoisyNeighbourSlowsVictim) {
  // The §1 motivation: a bandwidth-saturating neighbour on the same socket
  // steals bank/bus time — and trashes row buffers — of a latency-bound
  // tenant. (Compute-bound tenants hide the added latency behind their
  // compute; see the interference bench for both regimes.)
  RunnerConfig config;
  WorkloadSpec victim_spec = SmallSpec("redis-a");
  victim_spec.mlp = 4;                     // latency-bound
  victim_spec.compute_ns_per_access = 2.0;
  auto run_victim_elapsed = [&](bool with_neighbour) {
    std::vector<TenantSpec> tenants = {
        {.vm_name = "victim", .memory_bytes = 3ull << 30, .socket = 0,
         .workload = victim_spec}};
    if (with_neighbour) {
      tenants.push_back({.vm_name = "hog", .memory_bytes = 3ull << 30, .socket = 0,
                         .workload = SmallSpec("mlc-stream", 100000), .background = true});
    }
    Result<std::vector<TenantResult>> results = RunColocated(config, tenants);
    SILOZ_CHECK(results.ok());
    return (*results)[0].elapsed_ns;
  };
  const double alone = run_victim_elapsed(false);
  const double contended = run_victim_elapsed(true);
  EXPECT_GT(contended, alone * 1.02) << "expected measurable interference";
}

TEST(ColocatedTest, CrossSocketTenantsDoNotInterfere) {
  RunnerConfig config;
  WorkloadSpec victim_spec = SmallSpec("redis-a");
  victim_spec.mlp = 4;
  victim_spec.compute_ns_per_access = 2.0;
  auto run_victim_elapsed = [&](uint32_t neighbour_socket) {
    std::vector<TenantSpec> tenants = {
        {.vm_name = "victim", .memory_bytes = 3ull << 30, .socket = 0,
         .workload = victim_spec},
        {.vm_name = "hog", .memory_bytes = 3ull << 30, .socket = neighbour_socket,
         .workload = SmallSpec("mlc-stream", 100000), .background = true}};
    Result<std::vector<TenantResult>> results = RunColocated(config, tenants);
    SILOZ_CHECK(results.ok());
    return (*results)[0].elapsed_ns;
  };
  const double same_socket = run_victim_elapsed(0);
  const double other_socket = run_victim_elapsed(1);
  EXPECT_LT(other_socket, same_socket);
}

TEST(ColocatedTest, SilozDoesNotChangeInterference) {
  // The null result extended to contention: Siloz placement leaves the
  // interference profile of co-located tenants unchanged (within ~1%).
  auto victim_elapsed = [&](bool siloz_enabled) {
    RunnerConfig config;
    config.hypervisor.enabled = siloz_enabled;
    const std::vector<TenantSpec> tenants = {
        {.vm_name = "victim", .memory_bytes = 3ull << 30, .socket = 0,
         .workload = SmallSpec("mysql")},
        {.vm_name = "hog", .memory_bytes = 3ull << 30, .socket = 0,
         .workload = SmallSpec("mlc-3:1", 100000), .background = true}};
    Result<std::vector<TenantResult>> results = RunColocated(config, tenants);
    SILOZ_CHECK(results.ok());
    return (*results)[0].elapsed_ns;
  };
  const double baseline = victim_elapsed(false);
  const double siloz = victim_elapsed(true);
  EXPECT_LT(std::abs(siloz / baseline - 1.0), 0.01);
}

TEST(ColocatedTest, FailsCleanlyWhenTenantsDoNotFit) {
  RunnerConfig config;
  const std::vector<TenantSpec> tenants = {
      {.vm_name = "huge", .memory_bytes = 200ull << 30, .socket = 0,
       .workload = SmallSpec("redis-a")}};
  Result<std::vector<TenantResult>> results = RunColocated(config, tenants);
  ASSERT_FALSE(results.ok());
  EXPECT_EQ(results.error().code, ErrorCode::kNoMemory);
  EXPECT_FALSE(RunColocated(config, {}).ok());
}

}  // namespace
}  // namespace siloz
