// Platform-matrix verification battery: the registry contract plus the
// decoder round-trip property suite (ISSUE: every registered platform is
// held to the same bar).
//
// For every platform in the PlatformDecoder registry (src/addr/platform.h):
//  - encode/decode identity (PhysToMedia then MediaToPhys) exhaustively over
//    the low physical range and over every layout boundary the decoder
//    family has (socket, region, chunk, group edges);
//  - decode/encode identity (MediaToPhys then PhysToMedia) over a systematic
//    sweep of the media coordinate space;
//  - subarray-group closure for every (platform x subarray size) the
//    platform's parts ship with: the group map builds, covers the machine
//    exactly, and every 2 MiB page stays inside one group (§4.2);
//  - for the XOR-matrix decoder: full GF(2) mask rank (the injectivity
//    proof) and rejection of a deliberately singular spec.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "src/addr/decoder.h"
#include "src/addr/platform.h"
#include "src/addr/subarray_group.h"
#include "src/addr/xor_decoder.h"
#include "src/base/rng.h"
#include "src/base/units.h"

namespace siloz {
namespace {

std::unique_ptr<AddressDecoder> BuildDecoder(const PlatformInfo& info) {
  Result<std::unique_ptr<AddressDecoder>> made = info.make(info.geometry);
  EXPECT_TRUE(made.ok()) << info.name;
  return std::move(*made);
}

std::string Label(const PlatformInfo& info, uint64_t phys) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), " phys=0x%llx",
                static_cast<unsigned long long>(phys));
  return info.name + buffer;
}

TEST(PlatformRegistryTest, HasTheFourPlatformsInLexicographicOrder) {
  const std::vector<std::string> names = PlatformNames();
  const std::vector<std::string> expected = {"cascadelake", "ddr5", "skylake", "zen"};
  EXPECT_EQ(names, expected);
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
}

TEST(PlatformRegistryTest, EveryEntryIsWellFormed) {
  for (const auto& [name, info] : PlatformRegistry()) {
    EXPECT_EQ(info.name, name);
    EXPECT_FALSE(info.description.empty()) << name;
    EXPECT_NE(info.make, nullptr) << name;
    EXPECT_TRUE(info.geometry.Validate().ok()) << name;
    ASSERT_FALSE(info.subarray_sizes.empty()) << name;
    // The default geometry's subarray size must itself be a shipped size.
    EXPECT_NE(std::find(info.subarray_sizes.begin(), info.subarray_sizes.end(),
                        info.geometry.rows_per_subarray),
              info.subarray_sizes.end())
        << name;
    for (uint32_t rows : info.subarray_sizes) {
      EXPECT_EQ(info.geometry.rows_per_bank % rows, 0u)
          << name << " rows_per_subarray=" << rows;
    }
  }
}

TEST(PlatformRegistryTest, LookupsResolveAndUnknownNamesError) {
  for (const std::string& name : PlatformNames()) {
    const PlatformInfo* info = FindPlatform(name);
    ASSERT_NE(info, nullptr) << name;
    Result<std::unique_ptr<AddressDecoder>> made = MakePlatformDecoder(name);
    ASSERT_TRUE(made.ok()) << name;
    EXPECT_EQ((*made)->geometry().total_bytes(), info->geometry.total_bytes()) << name;
  }
  EXPECT_EQ(FindPlatform("sapphire"), nullptr);
  Result<std::unique_ptr<AddressDecoder>> unknown = MakePlatformDecoder("sapphire");
  ASSERT_FALSE(unknown.ok());
  EXPECT_EQ(unknown.error().code, ErrorCode::kInvalidArgument);
}

TEST(PlatformRegistryTest, FactoriesRejectOutOfFamilyGeometry) {
  for (const auto& [name, info] : PlatformRegistry()) {
    DramGeometry bad = info.geometry;
    bad.rows_per_bank = 96;  // valid geometry, outside every family here
    bad.rows_per_subarray = 96;
    ASSERT_TRUE(bad.Validate().ok());
    Result<std::unique_ptr<AddressDecoder>> made = info.make(bad);
    EXPECT_FALSE(made.ok()) << name;
    if (!made.ok()) {
      EXPECT_EQ(made.error().code, ErrorCode::kInvalidArgument) << name;
    }
  }
}

// Encode/decode identity, exhaustive at cache-line grain over the low
// physical range plus every boundary class of the layout.
TEST(PlatformRoundTripTest, EncodeDecodeIdentityOverLowRangeAndBoundaries) {
  for (const auto& [name, info] : PlatformRegistry()) {
    const std::unique_ptr<AddressDecoder> decoder = BuildDecoder(info);
    const DramGeometry& geometry = info.geometry;

    std::vector<uint64_t> probes;
    for (uint64_t phys = 0; phys < 2 * kMiB; phys += kCacheLineBytes) {
      probes.push_back(phys);  // exhaustive low range
    }
    // Boundary sweep: socket edges, subarray-group-period edges, and the
    // very last lines of the machine.
    for (uint32_t socket = 0; socket < geometry.sockets; ++socket) {
      const uint64_t base = socket * geometry.socket_bytes();
      for (uint64_t edge :
           {base, base + geometry.subarray_group_bytes(),
            base + geometry.socket_bytes() / 2, base + geometry.socket_bytes() - kCacheLineBytes}) {
        probes.push_back(edge);
        if (edge >= kCacheLineBytes) {
          probes.push_back(edge - kCacheLineBytes);
        }
      }
    }
    probes.push_back(geometry.total_bytes() - kCacheLineBytes);

    for (uint64_t phys : probes) {
      Result<MediaAddress> media = decoder->PhysToMedia(phys);
      ASSERT_TRUE(media.ok()) << Label(info, phys);
      ASSERT_LT(media->socket, geometry.sockets) << Label(info, phys);
      ASSERT_LT(media->channel, geometry.channels_per_socket) << Label(info, phys);
      ASSERT_LT(media->dimm, geometry.dimms_per_channel) << Label(info, phys);
      ASSERT_LT(media->rank, geometry.ranks_per_dimm) << Label(info, phys);
      ASSERT_LT(media->bank, geometry.banks_per_rank) << Label(info, phys);
      ASSERT_LT(media->row, geometry.rows_per_bank) << Label(info, phys);
      ASSERT_LT(media->column, geometry.row_bytes) << Label(info, phys);
      Result<uint64_t> back = decoder->MediaToPhys(*media);
      ASSERT_TRUE(back.ok()) << Label(info, phys);
      ASSERT_EQ(*back, phys) << Label(info, phys) << " -> " << media->ToString();
    }

    // One past the end must be an error, never a wrapped address.
    EXPECT_FALSE(decoder->PhysToMedia(geometry.total_bytes()).ok()) << name;
  }
}

// Decode/encode identity: a systematic sweep of media coordinates must come
// back bit-identical after MediaToPhys -> PhysToMedia.
TEST(PlatformRoundTripTest, DecodeEncodeIdentityOverMediaSweep) {
  for (const auto& [name, info] : PlatformRegistry()) {
    const std::unique_ptr<AddressDecoder> decoder = BuildDecoder(info);
    const DramGeometry& geometry = info.geometry;
    const uint32_t rows[] = {0u, 1u, geometry.rows_per_subarray - 1, geometry.rows_per_subarray,
                             geometry.rows_per_bank - 1};
    const uint32_t columns[] = {0u, static_cast<uint32_t>(kCacheLineBytes),
                                static_cast<uint32_t>(geometry.row_bytes - kCacheLineBytes)};
    for (uint32_t socket = 0; socket < geometry.sockets; ++socket) {
      for (uint32_t channel = 0; channel < geometry.channels_per_socket; ++channel) {
        for (uint32_t dimm = 0; dimm < geometry.dimms_per_channel; ++dimm) {
          for (uint32_t rank = 0; rank < geometry.ranks_per_dimm; ++rank) {
            for (uint32_t bank = 0; bank < geometry.banks_per_rank; ++bank) {
              for (uint32_t row : rows) {
                for (uint32_t column : columns) {
                  MediaAddress media;
                  media.socket = socket;
                  media.channel = channel;
                  media.dimm = dimm;
                  media.rank = rank;
                  media.bank = bank;
                  media.row = row;
                  media.column = column;
                  Result<uint64_t> phys = decoder->MediaToPhys(media);
                  ASSERT_TRUE(phys.ok()) << name << " " << media.ToString();
                  ASSERT_LT(*phys, geometry.total_bytes()) << name << " " << media.ToString();
                  Result<MediaAddress> again = decoder->PhysToMedia(*phys);
                  ASSERT_TRUE(again.ok()) << name << " " << media.ToString();
                  ASSERT_EQ(again->ToString(), media.ToString()) << Label(info, *phys);
                }
              }
            }
          }
        }
      }
    }
  }
}

// The XOR decoder's injectivity proof: the stacked forward mask matrix (and
// its computed inverse) have full rank over the platform's address width.
TEST(XorMatrixTest, ZenMasksHaveFullRankBothWays) {
  XorMaskSpec spec = ZenXorSpec();
  Result<std::unique_ptr<XorMaskDecoder>> built = XorMaskDecoder::Build(spec);
  ASSERT_TRUE(built.ok());
  const XorMaskDecoder& decoder = **built;
  EXPECT_EQ(decoder.forward_masks().size(), decoder.bits());
  EXPECT_EQ(decoder.inverse_masks().size(), decoder.bits());
  EXPECT_EQ(XorMatrixRank(decoder.forward_masks(), decoder.bits()), decoder.bits());
  EXPECT_EQ(XorMatrixRank(decoder.inverse_masks(), decoder.bits()), decoder.bits());
}

TEST(XorMatrixTest, SingularSpecIsRejectedNotCrashed) {
  XorMaskSpec spec = ZenXorSpec();
  // Make two bank functions identical: the matrix drops one rank and every
  // media address gains an aliased partner.
  ASSERT_GE(spec.bank_masks.size(), 2u);
  spec.bank_masks[1] = spec.bank_masks[0];
  Result<std::unique_ptr<XorMaskDecoder>> built = XorMaskDecoder::Build(spec);
  ASSERT_FALSE(built.ok());
  EXPECT_EQ(built.error().code, ErrorCode::kInvalidArgument);
  // The deficit is one rank: 2 aliases per media address.
  EXPECT_NE(built.error().message.find("aliases 2 physical addresses"), std::string::npos)
      << built.error().message;
}

TEST(XorMatrixTest, RankHelperCountsIndependentRows) {
  // A tiny hand-checkable case over 3 bits.
  EXPECT_EQ(XorMatrixRank({0b001, 0b010, 0b100}, 3), 3u);
  EXPECT_EQ(XorMatrixRank({0b001, 0b010, 0b011}, 3), 2u);  // row2 = row0 ^ row1
  EXPECT_EQ(XorMatrixRank({}, 3), 0u);
}

// Subarray-group closure for every platform x shipped subarray size: the
// group map builds by probing the real decoder, covers the machine exactly,
// and sampled 2 MiB pages are contained in single groups.
TEST(PlatformClosureTest, GroupClosureForEveryPlatformAndSubarraySize) {
  for (const auto& [name, info] : PlatformRegistry()) {
    for (uint32_t rows : info.subarray_sizes) {
      DramGeometry geometry = info.geometry;
      geometry.rows_per_subarray = rows;
      Result<std::unique_ptr<AddressDecoder>> made = info.make(geometry);
      ASSERT_TRUE(made.ok()) << name << " rows=" << rows;
      const AddressDecoder& decoder = **made;

      Result<SubarrayGroupMap> built = SubarrayGroupMap::Build(decoder, rows);
      ASSERT_TRUE(built.ok()) << name << " rows=" << rows << ": "
                              << built.error().ToString();
      const SubarrayGroupMap& map = *built;
      EXPECT_EQ(map.groups_per_cluster(), geometry.rows_per_bank / rows)
          << name << " rows=" << rows;
      EXPECT_EQ(map.total_groups() * map.group_bytes(), geometry.total_bytes())
          << name << " rows=" << rows;

      // Extent conservation: every group's ranges sum to exactly one group.
      uint64_t covered = 0;
      for (uint32_t group = 0; group < map.total_groups(); ++group) {
        uint64_t bytes = 0;
        for (const PhysRange& range : map.RangesOf(group)) {
          bytes += range.size();
        }
        EXPECT_EQ(bytes, map.group_bytes()) << name << " rows=" << rows << " group=" << group;
        covered += bytes;
      }
      EXPECT_EQ(covered, geometry.total_bytes()) << name << " rows=" << rows;

      // 2 MiB page containment on a deterministic sample: the first pages,
      // a socket edge, and seeded random interior pages.
      std::vector<uint64_t> pages = {0, 2 * kMiB, geometry.socket_bytes() - 2 * kMiB};
      Rng rng(0xC105 + rows);
      for (int i = 0; i < 64; ++i) {
        pages.push_back(rng.NextBelow(geometry.total_bytes() / (2 * kMiB)) * 2 * kMiB);
      }
      for (uint64_t page : pages) {
        Result<bool> contained = map.PageIsContained(decoder, page, 2 * kMiB);
        ASSERT_TRUE(contained.ok()) << Label(info, page) << " rows=" << rows;
        EXPECT_TRUE(*contained) << Label(info, page) << " rows=" << rows;
      }
    }
  }
}

}  // namespace
}  // namespace siloz
