// Tests for physical-to-media decoders (src/addr/decoder.h).
#include <gtest/gtest.h>

#include <set>

#include "src/addr/decoder.h"
#include "src/base/rng.h"
#include "src/base/units.h"

namespace siloz {
namespace {

// Small geometry for exhaustive scans: 16 banks/socket, 256 MiB/socket.
DramGeometry SmallGeometry() {
  DramGeometry geometry;
  geometry.sockets = 2;
  geometry.channels_per_socket = 2;
  geometry.ranks_per_dimm = 2;
  geometry.banks_per_rank = 4;
  geometry.rows_per_bank = 2048;
  geometry.rows_per_subarray = 512;
  return geometry;
}

template <typename Decoder>
void ExpectRoundTrip(const Decoder& decoder, uint64_t phys) {
  Result<MediaAddress> media = decoder.PhysToMedia(phys);
  ASSERT_TRUE(media.ok()) << media.error().ToString();
  ASSERT_TRUE(ValidateAddress(decoder.geometry(), *media).ok()) << media->ToString();
  Result<uint64_t> back = decoder.MediaToPhys(*media);
  ASSERT_TRUE(back.ok()) << back.error().ToString();
  EXPECT_EQ(*back, phys) << media->ToString();
}

class DecoderRoundTripTest : public ::testing::TestWithParam<int> {};

TEST_P(DecoderRoundTripTest, RandomAddressesRoundTrip) {
  const DramGeometry full;  // evaluation-server geometry, 384 GiB
  SkylakeDecoder skylake(full);
  LinearDecoder linear(full);
  SncDecoder snc(full, 2);
  Rng rng(1000 + static_cast<uint64_t>(GetParam()));
  for (int i = 0; i < 2000; ++i) {
    const uint64_t phys = rng.NextBelow(full.total_bytes());
    ExpectRoundTrip(skylake, phys);
    ExpectRoundTrip(linear, phys);
    ExpectRoundTrip(snc, phys);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DecoderRoundTripTest, ::testing::Range(0, 8));

TEST(SkylakeDecoderTest, ExhaustiveBijectionOnSmallGeometry) {
  const DramGeometry geometry = SmallGeometry();
  SkylakeDecoder decoder(geometry);
  // Every cache line must round-trip; bijectivity follows from totality.
  for (uint64_t phys = 0; phys < geometry.total_bytes(); phys += kCacheLineBytes) {
    Result<MediaAddress> media = decoder.PhysToMedia(phys);
    ASSERT_TRUE(media.ok());
    Result<uint64_t> back = decoder.MediaToPhys(*media);
    ASSERT_TRUE(back.ok());
    ASSERT_EQ(*back, phys);
  }
}

TEST(SkylakeDecoderTest, RejectsOutOfRange) {
  const DramGeometry geometry = SmallGeometry();
  SkylakeDecoder decoder(geometry);
  EXPECT_FALSE(decoder.PhysToMedia(geometry.total_bytes()).ok());
  MediaAddress bad;
  bad.row = geometry.rows_per_bank;
  EXPECT_FALSE(decoder.MediaToPhys(bad).ok());
}

TEST(SkylakeDecoderTest, SocketsAreContiguous) {
  const DramGeometry full;
  SkylakeDecoder decoder(full);
  EXPECT_EQ(decoder.PhysToMedia(0)->socket, 0u);
  EXPECT_EQ(decoder.PhysToMedia(full.socket_bytes() - 1)->socket, 0u);
  EXPECT_EQ(decoder.PhysToMedia(full.socket_bytes())->socket, 1u);
  EXPECT_EQ(decoder.PhysToMedia(full.total_bytes() - 1)->socket, 1u);
}

TEST(SkylakeDecoderTest, ConsecutiveLinesInterleaveAcrossChannels) {
  // §2.4: sequential cache lines spread across the socket's channels.
  const DramGeometry full;
  SkylakeDecoder decoder(full);
  for (uint64_t line = 0; line < 12; ++line) {
    const MediaAddress media = *decoder.PhysToMedia(line * kCacheLineBytes);
    EXPECT_EQ(media.channel, line % full.channels_per_socket);
  }
}

TEST(SkylakeDecoderTest, TwoMiBPageTouchesAllBanks) {
  // §4.1: a page interleaves across every bank in the physical node,
  // preserving bank-level parallelism.
  const DramGeometry full;
  SkylakeDecoder decoder(full);
  std::set<uint32_t> banks;
  for (uint64_t offset = 0; offset < kPage2M; offset += kCacheLineBytes) {
    banks.insert(SocketBankIndex(full, *decoder.PhysToMedia(offset)));
  }
  EXPECT_EQ(banks.size(), full.banks_per_socket());
}

TEST(SkylakeDecoderTest, TwoMiBPageStaysInOneSubarrayGroup) {
  // §4.2: every 2 MiB page maps to a single subarray group. Check pages
  // around every kind of boundary: chunk (24 MiB), half (384 MiB), region
  // (768 MiB), subarray group (1.5 GiB).
  const DramGeometry full;
  SkylakeDecoder decoder(full);
  const uint64_t starts[] = {0,
                             22_MiB,
                             24_MiB,
                             382_MiB,
                             384_MiB,
                             766_MiB,
                             768_MiB,
                             1534_MiB,
                             1536_MiB,
                             (192_GiB) - 2_MiB,
                             192_GiB};
  for (const uint64_t start : starts) {
    std::set<uint32_t> groups;
    for (uint64_t offset = 0; offset < kPage2M; offset += kCacheLineBytes) {
      const MediaAddress media = *decoder.PhysToMedia(start + offset);
      groups.insert(media.socket * full.subarray_groups_per_socket() +
                    media.row / full.rows_per_subarray);
    }
    EXPECT_EQ(groups.size(), 1u) << "page at " << (start >> 20) << " MiB straddles groups";
  }
}

TEST(SkylakeDecoderTest, AscendingChunksAlternateAbRanges) {
  // §4.2: row groups [0,16) come from range A's first chunk, [16,32) from
  // range B's first chunk, [32,48) from A's second chunk, ...
  const DramGeometry full;
  SkylakeDecoder decoder(full);
  // Row 0 is fed by phys 0 (range A chunk 0).
  EXPECT_EQ(decoder.PhysToMedia(0)->row, 0u);
  // Row 16 is fed by the start of range B (384 MiB).
  EXPECT_EQ(decoder.PhysToMedia(384_MiB)->row, 16u);
  // Row 32 is fed by range A's second chunk (24 MiB).
  EXPECT_EQ(decoder.PhysToMedia(24_MiB)->row, 32u);
  // The 768 MiB mapping jump: rows [512, ...) start a fresh region.
  EXPECT_EQ(decoder.PhysToMedia(768_MiB)->row, 512u);
}

TEST(SkylakeDecoderTest, SubarrayGroupsAreContiguousPhysRanges)
{
  // Consequence of the layout: subarray group g covers phys
  // [g*1.5 GiB, (g+1)*1.5 GiB) within its socket.
  const DramGeometry full;
  SkylakeDecoder decoder(full);
  const uint64_t group_bytes = full.subarray_group_bytes();
  const uint64_t probes[] = {0, group_bytes - 64, group_bytes, 3 * group_bytes + 12345 * 64,
                             127 * group_bytes};
  for (uint64_t probe : probes) {
    const MediaAddress media = *decoder.PhysToMedia(probe);
    EXPECT_EQ(media.row / full.rows_per_subarray, probe / group_bytes);
  }
}

TEST(LinearDecoderTest, PageConfinedToOneBank) {
  // The anti-pattern of §4.1: linear mapping keeps a page in one bank.
  const DramGeometry full;
  LinearDecoder decoder(full);
  std::set<uint32_t> banks;
  for (uint64_t offset = 0; offset < kPage2M; offset += kCacheLineBytes) {
    banks.insert(SocketBankIndex(full, *decoder.PhysToMedia(offset)));
  }
  EXPECT_EQ(banks.size(), 1u);
}

TEST(LinearDecoderTest, ExhaustiveBijectionOnSmallGeometry) {
  const DramGeometry geometry = SmallGeometry();
  LinearDecoder decoder(geometry);
  for (uint64_t phys = 0; phys < geometry.total_bytes(); phys += kCacheLineBytes) {
    ASSERT_EQ(*decoder.MediaToPhys(*decoder.PhysToMedia(phys)), phys);
  }
}

TEST(SncDecoderTest, HalvesSubarrayGroupSpan) {
  // §8.1: sub-NUMA clustering touches half the banks per page, halving the
  // effective group size.
  const DramGeometry full;
  SncDecoder decoder(full, 2);
  std::set<uint32_t> banks;
  std::set<uint32_t> channels;
  for (uint64_t offset = 0; offset < kPage2M; offset += kCacheLineBytes) {
    const MediaAddress media = *decoder.PhysToMedia(offset);
    banks.insert(SocketBankIndex(full, media));
    channels.insert(media.channel);
  }
  EXPECT_EQ(banks.size(), full.banks_per_socket() / 2);
  EXPECT_EQ(channels.size(), full.channels_per_socket / 2);
}

TEST(SncDecoderTest, ExhaustiveBijectionOnSmallGeometry) {
  const DramGeometry geometry = SmallGeometry();
  SncDecoder decoder(geometry, 2);
  for (uint64_t phys = 0; phys < geometry.total_bytes(); phys += kCacheLineBytes) {
    ASSERT_EQ(*decoder.MediaToPhys(*decoder.PhysToMedia(phys)), phys);
  }
}

TEST(DecoderTest, DistinctPhysMapToDistinctMedia) {
  // Injectivity spot-check at row granularity on the full geometry.
  const DramGeometry full;
  SkylakeDecoder decoder(full);
  Rng rng(99);
  std::set<std::string> seen;
  for (int i = 0; i < 5000; ++i) {
    const uint64_t phys = rng.NextBelow(full.total_bytes() / 64) * 64;
    const MediaAddress media = *decoder.PhysToMedia(phys);
    EXPECT_TRUE(seen.insert(media.ToString()).second) << media.ToString();
  }
}

// --- LineCursor: the incremental decoder vs. the division cascade ---

// On the small geometry every carry path — channel, bank, column, row,
// chunk, half, region, AND the socket boundary — occurs within an exhaustive
// walk: Advance() over the whole physical space must reproduce PhysToMedia
// line for line.
TEST(LineCursorTest, ExhaustiveWalkMatchesPhysToMediaOnSmallGeometry) {
  const DramGeometry geometry = SmallGeometry();
  SkylakeDecoder decoder(geometry);
  SkylakeDecoder::LineCursor cursor(decoder, 0);
  for (uint64_t phys = 0; phys < geometry.total_bytes(); phys += kCacheLineBytes) {
    if (phys != 0) {
      cursor.Advance();
    }
    const MediaAddress expected = *decoder.PhysToMedia(phys);
    ASSERT_EQ(cursor.media(), expected)
        << "phys 0x" << std::hex << phys << ": cursor " << cursor.media().ToString()
        << " != " << expected.ToString();
  }
}

// On the full evaluation geometry, step the cursor across every chunk
// boundary in the machine (all half/region/socket boundaries are chunk
// boundaries too) and compare a window of lines on each side.
TEST(LineCursorTest, MatchesAcrossEveryChunkHalfRegionSocketBoundary) {
  const DramGeometry geometry;
  SkylakeDecoder decoder(geometry);
  const uint64_t chunk = decoder.chunk_bytes();
  for (uint64_t boundary = chunk; boundary < geometry.total_bytes(); boundary += chunk) {
    const uint64_t start = boundary - 2 * kCacheLineBytes;
    SkylakeDecoder::LineCursor cursor(decoder, start);
    for (uint64_t phys = start; phys < boundary + 2 * kCacheLineBytes;
         phys += kCacheLineBytes) {
      if (phys != start) {
        cursor.Advance();
      }
      ASSERT_EQ(cursor.media(), *decoder.PhysToMedia(phys))
          << "boundary 0x" << std::hex << boundary << " phys 0x" << phys;
    }
  }
}

// Reset() re-seats the cursor with the same divider chain PhysToMedia runs,
// so a jump-then-walk sequence must agree with full decodes everywhere.
TEST(LineCursorTest, ResetAfterJumpMatchesFullDecode) {
  const DramGeometry geometry;
  SkylakeDecoder decoder(geometry);
  SkylakeDecoder::LineCursor cursor(decoder, 0);
  Rng rng(1234);
  for (int jump = 0; jump < 2000; ++jump) {
    const uint64_t phys = rng.NextBelow(geometry.total_bytes() / kCacheLineBytes - 8) *
                          kCacheLineBytes;
    cursor.Reset(phys);
    for (uint64_t step = 0; step < 8; ++step) {
      if (step != 0) {
        cursor.Advance();
      }
      ASSERT_EQ(cursor.media(), *decoder.PhysToMedia(phys + step * kCacheLineBytes))
          << "jump " << jump << " step " << step;
    }
  }
}

}  // namespace
}  // namespace siloz
