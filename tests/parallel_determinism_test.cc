// Regression battery for the determinism contract (DESIGN.md §8): every
// parallel phase — the trial loop, the sweep grids, the colocated sweep, and
// the auditor's blast-radius scan — must produce bit-identical results for
// every thread count, including the legacy serial path (threads = 1).
//
// Each test runs the same seeded configuration at threads = 1, 2, and 8 and
// compares outputs exactly (EXPECT_EQ on doubles — no tolerance): statistics,
// fault-model flip sets, and serialized audit reports.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/addr/decoder.h"
#include "src/audit/auditor.h"
#include "src/base/units.h"
#include "src/dram/remap.h"
#include "src/obs/metrics.h"
#include "src/sim/colocated.h"
#include "src/sim/experiment.h"
#include "src/workload/workloads.h"

namespace siloz {
namespace {

constexpr uint32_t kThreadCounts[] = {1, 2, 8};

WorkloadSpec SmallWorkload(const char* name = "redis-a") {
  WorkloadSpec spec = *FindWorkload(name);
  spec.accesses = 20000;
  return spec;
}

RunnerConfig SmallConfig() {
  RunnerConfig config;
  config.trials = 6;
  config.seed = 1234;
  return config;
}

void ExpectSameStat(const RunningStat& a, const RunningStat& b, const char* what) {
  EXPECT_EQ(a.count(), b.count()) << what;
  EXPECT_EQ(a.mean(), b.mean()) << what;
  EXPECT_EQ(a.stddev(), b.stddev()) << what;
  EXPECT_EQ(a.ci95_halfwidth(), b.ci95_halfwidth()) << what;
  EXPECT_EQ(a.min(), b.min()) << what;
  EXPECT_EQ(a.max(), b.max()) << what;
}

void ExpectSameMeasurement(const RunMeasurement& a, const RunMeasurement& b) {
  ExpectSameStat(a.elapsed_ns, b.elapsed_ns, "elapsed_ns");
  ExpectSameStat(a.bandwidth_gibs, b.bandwidth_gibs, "bandwidth_gibs");
  EXPECT_EQ(a.row_hit_rate, b.row_hit_rate);
  EXPECT_EQ(a.flip_phys, b.flip_phys);
}

TEST(ParallelDeterminismTest, RunWorkloadIdenticalAcrossThreadCounts) {
  const WorkloadSpec spec = SmallWorkload();
  RunnerConfig config = SmallConfig();
  config.threads = 1;
  Result<RunMeasurement> serial = RunWorkload(config, spec);
  ASSERT_TRUE(serial.ok()) << serial.error().ToString();
  EXPECT_EQ(serial->pool.pool.workers, 1u);
  EXPECT_EQ(serial->pool.pool.tasks, config.trials);
  for (const uint32_t threads : kThreadCounts) {
    config.threads = threads;
    Result<RunMeasurement> run = RunWorkload(config, spec);
    ASSERT_TRUE(run.ok()) << run.error().ToString();
    EXPECT_EQ(run->pool.pool.workers, threads);
    EXPECT_EQ(run->pool.pool.tasks, config.trials);
    ExpectSameMeasurement(*serial, *run);
  }
}

TEST(ParallelDeterminismTest, FaultModeFlipSetsIdenticalAcrossThreadCounts) {
  // A hammer-shaped workload: a small footprint spanning a few rows per
  // bank with no sequential locality maximizes row conflicts (= device
  // ACTs), and the weak DIMM flips after a few dozen of them.
  WorkloadSpec spec = SmallWorkload("mlc-stream");
  spec.accesses = 40000;
  spec.footprint_bytes = 4ull << 20;
  spec.sequential_locality = 0.0;
  RunnerConfig config = SmallConfig();
  config.trials = 4;
  config.fault_tracking = true;
  // The flip *sets* (per trial, sorted) are part of the contract, not just
  // the timing stats.
  DimmProfile weak;
  weak.disturbance.threshold_mean = 50.0;
  weak.disturbance.threshold_spread = 0.1;
  weak.trr.enabled = false;
  config.dimm_profiles = {weak};

  config.threads = 1;
  Result<RunMeasurement> serial = RunWorkload(config, spec);
  ASSERT_TRUE(serial.ok()) << serial.error().ToString();
  ASSERT_FALSE(serial->flip_phys.empty())
      << "profile too strong to flip anything; the test would be vacuous";
  for (const uint32_t threads : kThreadCounts) {
    config.threads = threads;
    Result<RunMeasurement> run = RunWorkload(config, spec);
    ASSERT_TRUE(run.ok()) << run.error().ToString();
    ExpectSameMeasurement(*serial, *run);
  }
}

TEST(ParallelDeterminismTest, GridMatchesPointwiseSerialRuns) {
  // Grid parallelism must change nothing: each grid point equals its own
  // standalone serial RunWorkload, in point order.
  std::vector<GridPoint> points;
  for (const char* name : {"redis-a", "mysql"}) {
    for (const bool siloz_enabled : {false, true}) {
      GridPoint point;
      point.config = SmallConfig();
      point.config.trials = 3;
      point.config.hypervisor.enabled = siloz_enabled;
      point.workload = SmallWorkload(name);
      points.push_back(point);
    }
  }
  std::vector<RunMeasurement> expected;
  for (const GridPoint& point : points) {
    RunnerConfig serial = point.config;
    serial.threads = 1;
    Result<RunMeasurement> run = RunWorkload(serial, point.workload);
    ASSERT_TRUE(run.ok()) << run.error().ToString();
    expected.push_back(std::move(*run));
  }
  for (const uint32_t threads : kThreadCounts) {
    PoolPhaseMetrics metrics;
    Result<std::vector<RunMeasurement>> grid = RunWorkloadGrid(points, threads, &metrics);
    ASSERT_TRUE(grid.ok()) << grid.error().ToString();
    ASSERT_EQ(grid->size(), points.size());
    EXPECT_EQ(metrics.phase, "grid");
    // The flattened schedule runs every (point, trial) pair as its own pool
    // task; every point here carries config.trials == 3 trials.
    uint64_t expected_tasks = 0;
    for (const GridPoint& point : points) {
      expected_tasks += point.config.trials;
    }
    EXPECT_EQ(metrics.pool.tasks, expected_tasks);
    for (size_t i = 0; i < points.size(); ++i) {
      ExpectSameMeasurement(expected[i], (*grid)[i]);
    }
  }
}

TEST(ParallelDeterminismTest, ColocatedSweepMatchesSerialScenarioRuns) {
  std::vector<ColocatedScenario> scenarios;
  for (const bool siloz_enabled : {false, true}) {
    ColocatedScenario scenario;
    scenario.name = siloz_enabled ? "siloz" : "base";
    scenario.config.hypervisor.enabled = siloz_enabled;
    WorkloadSpec victim = SmallWorkload();
    scenario.tenants.push_back({.vm_name = "victim", .workload = victim});
    WorkloadSpec hog = SmallWorkload("mlc-3:1");
    scenario.tenants.push_back({.vm_name = "hog", .workload = hog, .background = true});
    scenarios.push_back(std::move(scenario));
  }
  std::vector<std::vector<TenantResult>> expected;
  for (const ColocatedScenario& scenario : scenarios) {
    Result<std::vector<TenantResult>> run = RunColocated(scenario.config, scenario.tenants);
    ASSERT_TRUE(run.ok()) << run.error().ToString();
    expected.push_back(std::move(*run));
  }
  for (const uint32_t threads : kThreadCounts) {
    Result<std::vector<std::vector<TenantResult>>> sweep = RunColocatedSweep(scenarios, threads);
    ASSERT_TRUE(sweep.ok()) << sweep.error().ToString();
    ASSERT_EQ(sweep->size(), expected.size());
    for (size_t s = 0; s < expected.size(); ++s) {
      ASSERT_EQ((*sweep)[s].size(), expected[s].size());
      for (size_t t = 0; t < expected[s].size(); ++t) {
        EXPECT_EQ((*sweep)[s][t].vm_name, expected[s][t].vm_name);
        EXPECT_EQ((*sweep)[s][t].elapsed_ns, expected[s][t].elapsed_ns);
        EXPECT_EQ((*sweep)[s][t].bandwidth_gibs, expected[s][t].bandwidth_gibs);
        EXPECT_EQ((*sweep)[s][t].requests, expected[s][t].requests);
      }
    }
  }
}

audit::Options AuditOptions(uint32_t threads) {
  audit::Options options;
  options.probe_stride = 16_MiB;
  options.random_probes = 256;
  options.threads = threads;
  return options;
}

TEST(ParallelDeterminismTest, AuditReportBytesIdenticalAcrossThreadCounts) {
  DramGeometry geometry;
  SkylakeDecoder decoder(geometry);
  Result<audit::Report> serial =
      audit::AuditPlatform(decoder, SilozConfig{}, RemapConfig{}, AuditOptions(1));
  ASSERT_TRUE(serial.ok()) << serial.error().ToString();
  EXPECT_TRUE(serial->ok()) << serial->ToText();
  for (const uint32_t threads : kThreadCounts) {
    Result<audit::Report> report =
        audit::AuditPlatform(decoder, SilozConfig{}, RemapConfig{}, AuditOptions(threads));
    ASSERT_TRUE(report.ok()) << report.error().ToString();
    // The full serialized report — findings, counters, suppression counts —
    // must not depend on how the scan was sharded or scheduled.
    EXPECT_EQ(serial->ToJson(), report->ToJson()) << "threads=" << threads;
    EXPECT_EQ(serial->ToText(), report->ToText()) << "threads=" << threads;
  }
}

// --- Metrics determinism (DESIGN.md §9) ------------------------------------
//
// Model-domain metric *values* join the contract: flush points are
// deterministic program points and integer addition commutes across shards,
// so the serialized model section must be byte-identical for every thread
// count. (The sched section — steals, sleeps — measures the host and is
// exempt.) The registry is process-global and Reset() is value-only, so the
// key set can only grow; resetting before each run makes the captures
// comparable whatever ran earlier in this binary.

TEST(ParallelDeterminismTest, RunWorkloadModelMetricsIdenticalAcrossThreadCounts) {
  // Fault tracking on, so the capture spans every instrumented layer:
  // memctl per-bank-group commands, dram disturbance probes and flips,
  // hypervisor allocations, and the pool task count.
  WorkloadSpec spec = SmallWorkload("mlc-stream");
  spec.accesses = 40000;
  spec.footprint_bytes = 4ull << 20;
  spec.sequential_locality = 0.0;
  RunnerConfig config = SmallConfig();
  config.trials = 4;
  config.fault_tracking = true;
  DimmProfile weak;
  weak.disturbance.threshold_mean = 50.0;
  weak.disturbance.threshold_spread = 0.1;
  weak.trr.enabled = false;
  config.dimm_profiles = {weak};

  std::string serial_metrics;
  for (const uint32_t threads : kThreadCounts) {
    config.threads = threads;
    obs::Registry::Global().Reset();
    Result<RunMeasurement> run = RunWorkload(config, spec);
    ASSERT_TRUE(run.ok()) << run.error().ToString();
    const std::string metrics = obs::Registry::Global().SectionJson(obs::Domain::kModel);
    if (threads == 1) {
      serial_metrics = metrics;
      // Guard against vacuity: the capture must actually contain the
      // instrumented layers, not an empty section.
      EXPECT_NE(metrics.find("memctl.s0.bg0.act"), std::string::npos) << metrics;
      EXPECT_NE(metrics.find("dram."), std::string::npos) << metrics;
      // Scheduler counters (pool.*) live in the sched domain and must not
      // leak into the model census: whether a pool even exists depends on
      // the thread budget (the fused sharded path builds none).
      EXPECT_EQ(metrics.find("pool."), std::string::npos) << metrics;
    } else {
      EXPECT_EQ(metrics, serial_metrics) << "threads=" << threads;
    }
  }
}

TEST(ParallelDeterminismTest, AuditModelMetricsIdenticalAcrossThreadCounts) {
  DramGeometry geometry;
  SkylakeDecoder decoder(geometry);
  std::string serial_metrics;
  for (const uint32_t threads : kThreadCounts) {
    obs::Registry::Global().Reset();
    Result<audit::Report> report =
        audit::AuditPlatform(decoder, SilozConfig{}, RemapConfig{}, AuditOptions(threads));
    ASSERT_TRUE(report.ok()) << report.error().ToString();
    const std::string metrics = obs::Registry::Global().SectionJson(obs::Domain::kModel);
    if (threads == 1) {
      serial_metrics = metrics;
      EXPECT_NE(metrics.find("audit.probes.blast-radius"), std::string::npos) << metrics;
      // The probes-per-shard histogram merges shard-local reports in shard
      // order; its buckets are part of the model section and must hold.
      EXPECT_NE(metrics.find("audit.blast_radius.probes_per_shard"), std::string::npos)
          << metrics;
    } else {
      EXPECT_EQ(metrics, serial_metrics) << "threads=" << threads;
    }
  }
}

TEST(ParallelDeterminismTest, AuditFindingsIdenticalAcrossThreadCountsWhenViolating) {
  // A wrong boot parameter produces blast-radius findings; the retained
  // findings list (first N in scan order) and the suppressed count must be
  // identical however the scan is sharded.
  DramGeometry geometry;
  geometry.rows_per_subarray = 512;
  SkylakeDecoder decoder(geometry);
  SilozConfig config;
  config.rows_per_subarray = 512;
  std::string serial_json;
  for (const uint32_t threads : kThreadCounts) {
    audit::Options options = AuditOptions(threads);
    options.silicon_rows_per_subarray = 1024;  // silicon is twice the boot value
    options.max_findings_per_invariant = 4;    // force suppression accounting
    Result<audit::Report> report =
        audit::AuditPlatform(decoder, config, RemapConfig{}, options);
    ASSERT_TRUE(report.ok()) << report.error().ToString();
    EXPECT_FALSE(report->ok());
    if (threads == 1) {
      serial_json = report->ToJson();
      EXPECT_GT(report->suppressed, 0u);
    } else {
      EXPECT_EQ(serial_json, report->ToJson()) << "threads=" << threads;
    }
  }
}

}  // namespace
}  // namespace siloz
