// Tests for the DRAMA bank-conflict timing probe (src/attack/drama.h).
#include <gtest/gtest.h>

#include "src/attack/drama.h"
#include "src/base/units.h"

namespace siloz {
namespace {

TEST(DramaTest, DetectsSameBankConflict) {
  const DramGeometry geometry;
  SkylakeDecoder decoder(geometry);
  MemoryController controller(geometry, 0);
  // Same bank, different rows: phys 0 and phys + 32 row groups.
  const uint64_t conflict_pair = geometry.row_group_bytes() * 32;
  const DramaProbe probe = ProbePair(controller, decoder, 0, conflict_pair);
  EXPECT_TRUE(probe.same_bank);
  EXPECT_TRUE(probe.conflict_detected);
  EXPECT_GT(probe.mean_latency_ns, controller.timings().t_cas + controller.timings().t_rc() / 2);
}

TEST(DramaTest, NoConflictAcrossBanks) {
  const DramGeometry geometry;
  SkylakeDecoder decoder(geometry);
  MemoryController controller(geometry, 0);
  // Adjacent cache lines land in different channels/banks.
  const DramaProbe probe = ProbePair(controller, decoder, 0, kCacheLineBytes);
  EXPECT_FALSE(probe.same_bank);
  EXPECT_FALSE(probe.conflict_detected);
}

TEST(DramaTest, NoConflictSameRow) {
  const DramGeometry geometry;
  SkylakeDecoder decoder(geometry);
  MemoryController controller(geometry, 0);
  // Same bank, same row (columns apart): row hits after warmup.
  const uint64_t same_row_pair = 6 * 32 * kCacheLineBytes;  // next column, same bank
  const MediaAddress a = *decoder.PhysToMedia(0);
  const MediaAddress b = *decoder.PhysToMedia(same_row_pair);
  ASSERT_EQ(SocketBankIndex(geometry, a), SocketBankIndex(geometry, b));
  ASSERT_EQ(a.row, b.row);
  const DramaProbe probe = ProbePair(controller, decoder, 0, same_row_pair);
  EXPECT_FALSE(probe.same_bank);  // same bank but same row: no conflict
  EXPECT_FALSE(probe.conflict_detected);
}

TEST(DramaTest, ChannelPersistsAcrossSubarrayGroups) {
  // The §8.4 observation: two Siloz domains still share banks, so the
  // timing channel between them remains.
  const DramGeometry geometry;
  SkylakeDecoder decoder(geometry);
  MemoryController controller(geometry, 0);
  // Group 0's row 0 and group 2's row 2048 of the same bank.
  const uint64_t other_group = 2 * geometry.subarray_group_bytes();
  const MediaAddress a = *decoder.PhysToMedia(0);
  const MediaAddress b = *decoder.PhysToMedia(other_group);
  ASSERT_EQ(SocketBankIndex(geometry, a), SocketBankIndex(geometry, b));
  const DramaProbe probe = ProbePair(controller, decoder, 0, other_group);
  EXPECT_TRUE(probe.same_bank);
  EXPECT_TRUE(probe.conflict_detected);
}

TEST(DramaTest, SncClustersDoNotShareBanks) {
  // Under SNC-2, addresses in different clusters never share a bank: the
  // coarser isolation §8.4 gestures at.
  const DramGeometry geometry;
  SncDecoder decoder(geometry, 2);
  MemoryController controller(geometry, 0);
  const uint64_t cluster_half = geometry.socket_bytes() / 2;
  bool any_same_bank = false;
  for (uint64_t offset = 0; offset < 64 * kCacheLineBytes; offset += kCacheLineBytes) {
    const DramaProbe probe = ProbePair(controller, decoder, offset, cluster_half + offset);
    any_same_bank |= probe.same_bank;
    EXPECT_FALSE(probe.conflict_detected);
  }
  EXPECT_FALSE(any_same_bank);
}

TEST(DramaTest, InferenceMatchesGroundTruthOverSweep) {
  // Property: over a sweep of pairs, timing-based inference agrees with the
  // decoder's ground truth.
  const DramGeometry geometry;
  SkylakeDecoder decoder(geometry);
  MemoryController controller(geometry, 0);
  uint32_t checked = 0;
  for (uint64_t stride_lines = 1; stride_lines < 4096; stride_lines *= 2) {
    const uint64_t b = stride_lines * kCacheLineBytes * 97;
    if (b >= geometry.socket_bytes()) {
      break;
    }
    const DramaProbe probe = ProbePair(controller, decoder, 0, b);
    EXPECT_EQ(probe.conflict_detected, probe.same_bank) << "stride " << stride_lines;
    ++checked;
  }
  EXPECT_GT(checked, 5u);
}

}  // namespace
}  // namespace siloz
