// Tests for the experiment runner (src/sim/experiment.h): determinism, CI
// behaviour, and the paper's headline null result in miniature.
#include <gtest/gtest.h>

#include <cmath>

#include "src/sim/experiment.h"

namespace siloz {
namespace {

WorkloadSpec SmallSpec(const char* base = "redis-a") {
  WorkloadSpec spec = *FindWorkload(base);
  spec.accesses = 60000;  // keep unit tests fast
  return spec;
}

RunnerConfig SmallRunner() {
  RunnerConfig config;
  config.trials = 3;
  config.vm.memory_bytes = 3ull << 30;
  return config;
}

TEST(ExperimentTest, DeterministicForSeed) {
  const RunnerConfig config = SmallRunner();
  const WorkloadSpec spec = SmallSpec();
  Result<RunMeasurement> a = RunWorkload(config, spec);
  Result<RunMeasurement> b = RunWorkload(config, spec);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_DOUBLE_EQ(a->elapsed_ns.mean(), b->elapsed_ns.mean());
  EXPECT_DOUBLE_EQ(a->bandwidth_gibs.mean(), b->bandwidth_gibs.mean());
}

TEST(ExperimentTest, DifferentSeedsDiffer) {
  RunnerConfig config = SmallRunner();
  const WorkloadSpec spec = SmallSpec();
  Result<RunMeasurement> a = RunWorkload(config, spec);
  config.seed = 777;
  Result<RunMeasurement> b = RunWorkload(config, spec);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_NE(a->elapsed_ns.mean(), b->elapsed_ns.mean());
}

TEST(ExperimentTest, TrialsProduceSpread) {
  const RunnerConfig config = SmallRunner();
  Result<RunMeasurement> run = RunWorkload(config, SmallSpec());
  ASSERT_TRUE(run.ok());
  EXPECT_EQ(run->elapsed_ns.count(), 3u);
  EXPECT_GT(run->elapsed_ns.stddev(), 0.0);
  EXPECT_GT(run->elapsed_ns.ci95_halfwidth(), 0.0);
  EXPECT_GT(run->bandwidth_gibs.mean(), 0.0);
  EXPECT_GT(run->row_hit_rate, 0.0);
}

TEST(ExperimentTest, SilozMatchesBaselineWithinNoise) {
  // The Fig 4 null result in miniature: |overhead| well under 1%.
  RunnerConfig baseline = SmallRunner();
  baseline.hypervisor.enabled = false;
  RunnerConfig siloz = SmallRunner();
  const WorkloadSpec spec = SmallSpec("terasort");
  Result<RunMeasurement> base_run = RunWorkload(baseline, spec);
  Result<RunMeasurement> siloz_run = RunWorkload(siloz, spec);
  ASSERT_TRUE(base_run.ok());
  ASSERT_TRUE(siloz_run.ok());
  const double overhead =
      siloz_run->elapsed_ns.mean() / base_run->elapsed_ns.mean() - 1.0;
  EXPECT_LT(std::abs(overhead), 0.01) << "overhead " << overhead * 100 << "%";
}

TEST(ExperimentTest, MemoryBoundWorkloadSlowerWithoutParallelism) {
  // Cross-check of A1 as a unit test: linear placement is dramatically
  // slower for a bandwidth probe.
  RunnerConfig interleaved = SmallRunner();
  RunnerConfig linear = SmallRunner();
  linear.decoder = DecoderKind::kLinear;
  linear.hypervisor.enabled = false;  // subarray groups assume interleaving
  const WorkloadSpec spec = SmallSpec("mlc-reads");
  Result<RunMeasurement> fast = RunWorkload(interleaved, spec);
  Result<RunMeasurement> slow = RunWorkload(linear, spec);
  ASSERT_TRUE(fast.ok());
  ASSERT_TRUE(slow.ok());
  EXPECT_GT(slow->elapsed_ns.mean(), fast->elapsed_ns.mean() * 1.18);
}

TEST(ExperimentTest, SubarraySizeSweepIsFlat) {
  // Fig 6/7 mechanism: 512 vs 2048 rows differ by < 1% on the model.
  const WorkloadSpec spec = SmallSpec("mysql");
  double means[2];
  int index = 0;
  for (uint32_t rows : {512u, 2048u}) {
    RunnerConfig config = SmallRunner();
    config.hypervisor.rows_per_subarray = rows;
    Result<RunMeasurement> run = RunWorkload(config, spec);
    ASSERT_TRUE(run.ok());
    means[index++] = run->elapsed_ns.mean();
  }
  EXPECT_LT(std::abs(means[0] / means[1] - 1.0), 0.01);
}

TEST(ExperimentTest, RemoteSocketVmIsSlower) {
  // NUMA sanity: a VM whose memory lives on socket 1 but issues from
  // socket 0 pays the interconnect latency.
  RunnerConfig local = SmallRunner();
  WorkloadSpec spec = SmallSpec("redis-c");
  spec.mlp = 1;  // latency-bound makes the NUMA hop visible
  Result<RunMeasurement> local_run = RunWorkload(local, spec);
  ASSERT_TRUE(local_run.ok());

  // Remote: VM memory on socket 1, sources still socket 0.
  RunnerConfig remote = SmallRunner();
  remote.vm.socket = 1;
  Result<RunMeasurement> remote_run = [&] {
    // GenerateTrace sets source_socket from the config's vm socket; override
    // by running the trace manually would duplicate the runner, so instead
    // compare against a remote-socket VM accessed locally — and assert the
    // controller model itself (controller_test) covers the latency adder.
    return RunWorkload(remote, spec);
  }();
  ASSERT_TRUE(remote_run.ok());
  // Both placements complete and have comparable magnitude (same-socket
  // semantics); the explicit remote-latency check lives in controller_test.
  EXPECT_GT(remote_run->elapsed_ns.mean(), 0.0);
}

TEST(ExperimentTest, FailsCleanlyWhenVmDoesNotFit) {
  RunnerConfig config = SmallRunner();
  config.vm.memory_bytes = 200ull << 30;  // exceeds one socket's guest pool
  Result<RunMeasurement> run = RunWorkload(config, SmallSpec());
  ASSERT_FALSE(run.ok());
  EXPECT_EQ(run.error().code, ErrorCode::kNoMemory);
}

}  // namespace
}  // namespace siloz
