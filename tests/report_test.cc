// Tests for the CSV result reporter (src/sim/report.h).
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "src/base/thread_pool.h"
#include "src/sim/report.h"

namespace siloz {
namespace {

std::string ReadAll(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

class ReportTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "siloz_report_test";
    std::string command = "mkdir -p " + dir_;
    ASSERT_EQ(std::system(command.c_str()), 0);
  }
  std::string dir_;
};

TEST_F(ReportTest, DisabledWithoutDirectory) {
  ::unsetenv("SILOZ_RESULTS_DIR");
  CsvReporter reporter("exp");
  EXPECT_FALSE(reporter.enabled());
  EXPECT_TRUE(reporter.Append({"a"}, {"1"}).ok());  // no-op, still ok
  EXPECT_EQ(reporter.path(), "");
}

TEST_F(ReportTest, WritesHeaderOnceAndAppends) {
  const std::string file = dir_ + "/run.csv";
  std::remove(file.c_str());
  CsvReporter reporter("run", dir_);
  ASSERT_TRUE(reporter.enabled());
  ASSERT_TRUE(reporter.Append({"workload", "value"}, {"redis-a", "1.5"}).ok());
  ASSERT_TRUE(reporter.Append({"workload", "value"}, {"mysql", "2.5"}).ok());
  EXPECT_EQ(ReadAll(file), "workload,value\nredis-a,1.5\nmysql,2.5\n");
  // A second reporter instance appends without re-writing the header.
  CsvReporter again("run", dir_);
  ASSERT_TRUE(again.Append({"workload", "value"}, {"parsec", "3"}).ok());
  EXPECT_EQ(ReadAll(file), "workload,value\nredis-a,1.5\nmysql,2.5\nparsec,3\n");
}

TEST_F(ReportTest, EscapesSpecialCharacters) {
  const std::string file = dir_ + "/esc.csv";
  std::remove(file.c_str());
  CsvReporter reporter("esc", dir_);
  ASSERT_TRUE(reporter.Append({"name"}, {"a,b \"quoted\""}).ok());
  EXPECT_EQ(ReadAll(file), "name\n\"a,b \"\"quoted\"\"\"\n");
}

TEST_F(ReportTest, RejectsMismatchedRow) {
  CsvReporter reporter("bad", dir_);
  EXPECT_FALSE(reporter.Append({"a", "b"}, {"1"}).ok());
}

TEST_F(ReportTest, EnvironmentVariableEnables) {
  ::setenv("SILOZ_RESULTS_DIR", dir_.c_str(), 1);
  CsvReporter reporter("env_exp");
  EXPECT_TRUE(reporter.enabled());
  EXPECT_EQ(reporter.path(), dir_ + "/env_exp.csv");
  ::unsetenv("SILOZ_RESULTS_DIR");
}

TEST_F(ReportTest, CsvNumberFormatting) {
  EXPECT_EQ(CsvNumber(1.5), "1.5");
  EXPECT_EQ(CsvNumber(-0.0493236), "-0.0493236");
  EXPECT_EQ(CsvNumber(0.0), "0");
}

TEST_F(ReportTest, CsvNumberEmitsLargeIntegersExactly) {
  // Regression: the old 6-significant-digit format turned every integer
  // column past 1e6 into scientific notation — 12345678 became "1.23457e+07",
  // corrupting byte counts and request totals for CSV consumers.
  EXPECT_EQ(CsvNumber(12345678.0), "12345678");
  EXPECT_EQ(CsvNumber(1000001.0), "1000001");
  EXPECT_EQ(CsvNumber(-987654321.0), "-987654321");
  EXPECT_EQ(CsvNumber(68719476736.0), "68719476736");          // a 64 GiB byte count
  EXPECT_EQ(CsvNumber(9007199254740991.0), "9007199254740991");  // 2^53 - 1
  // Past 2^53 a double no longer holds every integer, so exactness is
  // unattainable and the compact form is correct again.
  EXPECT_EQ(CsvNumber(9007199254740992.0), "9.0072e+15");
  // Genuinely fractional values keep the 6-significant-digit rounding.
  EXPECT_EQ(CsvNumber(12345678.5), "1.23457e+07");
}

// Golden outputs for the pool metrics block: the benches and CLIs print
// these lines verbatim (to stderr), so the format is part of the interface.
PoolPhaseMetrics GoldenMetrics() {
  PoolPhaseMetrics metrics;
  metrics.phase = "trials";
  metrics.pool.workers = 8;
  metrics.pool.tasks = 640;
  metrics.pool.steals = 37;
  metrics.wall_ms = 1234.5678;
  metrics.cpu_ms = 9876.5;
  return metrics;
}

TEST(ProgressMeterTest, ConcurrentTicksSumExactly) {
  // Disabled rendering path (SILOZ_PROGRESS unset in tests): ticking must
  // still count, and must count exactly under concurrency.
  unsetenv("SILOZ_PROGRESS");
  ProgressMeter meter("ticks", 64 * 100);
  ThreadPool pool(4);
  pool.ParallelFor(0, 64, [&](uint64_t) {
    for (int i = 0; i < 100; ++i) {
      meter.Tick();
    }
  });
  EXPECT_EQ(meter.completed(), 64u * 100u);
}

TEST(ProgressMeterTest, EnabledRenderingCountsTheSame) {
  // With SILOZ_PROGRESS set the meter writes a status line to stderr;
  // counting semantics are unchanged and Tick stays safe cross-thread.
  setenv("SILOZ_PROGRESS", "1", /*overwrite=*/1);
  {
    ProgressMeter meter("render", 8);
    ThreadPool pool(2);
    pool.ParallelFor(0, 8, [&](uint64_t) { meter.Tick(); });
    EXPECT_EQ(meter.completed(), 8u);
  }
  unsetenv("SILOZ_PROGRESS");
}

TEST(PoolPhaseMetricsTest, GoldenText) {
  EXPECT_EQ(GoldenMetrics().ToText(),
            "trials: 8 workers, 640 tasks (37 stolen), wall 1234.6 ms, cpu 9876.5 ms");
}

TEST(PoolPhaseMetricsTest, GoldenJson) {
  EXPECT_EQ(GoldenMetrics().ToJson(),
            "{\"phase\":\"trials\",\"workers\":8,\"tasks\":640,\"steals\":37,"
            "\"wall_ms\":1234.57,\"cpu_ms\":9876.5}");
}

TEST(PoolPhaseMetricsTest, DefaultConstructedIsSerialAndIdle) {
  PoolPhaseMetrics metrics;
  EXPECT_EQ(metrics.ToText(), ": 1 workers, 0 tasks (0 stolen), wall 0.0 ms, cpu 0.0 ms");
  EXPECT_EQ(metrics.ToJson(),
            "{\"phase\":\"\",\"workers\":1,\"tasks\":0,\"steals\":0,\"wall_ms\":0,\"cpu_ms\":0}");
}

TEST(PhaseTimerTest, FinishPropagatesPhaseAndPoolAndMeasuresTime) {
  PhaseTimer timer("scan");
  PoolMetrics pool;
  pool.workers = 2;
  pool.tasks = 10;
  const PoolPhaseMetrics metrics = timer.Finish(pool);
  EXPECT_EQ(metrics.phase, "scan");
  EXPECT_EQ(metrics.pool.workers, 2u);
  EXPECT_EQ(metrics.pool.tasks, 10u);
  EXPECT_GE(metrics.wall_ms, 0.0);
  EXPECT_GE(metrics.cpu_ms, 0.0);
}

}  // namespace
}  // namespace siloz
