// MigrateVm (§7 defragmentation): placement moves, contents survive,
// failures roll back, and the full lifecycle conserves resources under
// injected faults.
#include <gtest/gtest.h>

#include <vector>

#include "src/addr/decoder.h"
#include "src/base/units.h"
#include "src/ept/phys_memory.h"
#include "src/siloz/conservation.h"
#include "src/siloz/hypervisor.h"

namespace siloz {
namespace {

class MigrateTest : public ::testing::Test {
 protected:
  MigrateTest() : decoder_(geometry_), hv_(decoder_, memory_, SilozConfig{}) {
    SILOZ_CHECK(hv_.Boot().ok());
  }

  DramGeometry geometry_;
  SkylakeDecoder decoder_;
  FlatPhysMemory memory_;
  SilozHypervisor hv_;
};

// Writes a recognizable value at a guest-physical offset through the VM's
// current region list; returns the gpa written.
uint64_t StampGpa(FlatPhysMemory& memory, const Vm& vm, uint64_t gpa, uint64_t value) {
  for (const VmRegion& region : vm.regions()) {
    if (gpa >= region.gpa && gpa + 8 <= region.gpa + region.bytes) {
      memory.WriteU64(region.hpa + (gpa - region.gpa), value);
      return gpa;
    }
  }
  ADD_FAILURE() << "gpa " << gpa << " not mapped";
  return gpa;
}

uint64_t ReadGpa(FlatPhysMemory& memory, const Vm& vm, uint64_t gpa) {
  for (const VmRegion& region : vm.regions()) {
    if (gpa >= region.gpa && gpa + 8 <= region.gpa + region.bytes) {
      return memory.ReadU64(region.hpa + (gpa - region.gpa));
    }
  }
  ADD_FAILURE() << "gpa " << gpa << " not mapped";
  return 0;
}

TEST_F(MigrateTest, MovesPlacementAndPreservesContents) {
  const ConservationSnapshot booted = CaptureConservation(hv_);
  const VmId id = *hv_.CreateVm({.name = "tenant", .memory_bytes = 3_GiB});
  Vm& vm = **hv_.GetVm(id);
  ASSERT_EQ(vm.config().socket, 0u);

  // Stamp a few GPAs spread across the image (start, a 2 MiB boundary deep
  // inside, last 8 bytes) so the copy is checked across region boundaries.
  const std::vector<uint64_t> gpas = {0, 2_MiB + 64, 1_GiB + 512, 3_GiB - 8};
  for (size_t i = 0; i < gpas.size(); ++i) {
    StampGpa(memory_, vm, gpas[i], 0xC0FFEE00 + i);
  }

  const size_t source_free = hv_.AvailableGuestNodes(0).size();
  const size_t target_free = hv_.AvailableGuestNodes(1).size();
  const size_t nodes_used = vm.guest_nodes().size();

  ASSERT_TRUE(hv_.MigrateVm(id, 1).ok());

  EXPECT_EQ(vm.config().socket, 1u);
  EXPECT_EQ(vm.guest_nodes().size(), nodes_used);
  for (uint32_t node_id : vm.guest_nodes()) {
    EXPECT_EQ((*hv_.nodes().Get(node_id))->physical_socket(), 1u);
  }
  for (size_t i = 0; i < gpas.size(); ++i) {
    EXPECT_EQ(ReadGpa(memory_, vm, gpas[i]), 0xC0FFEE00 + i) << "gpa " << gpas[i];
  }
  // The source socket got everything back; the target paid for the VM.
  EXPECT_EQ(hv_.AvailableGuestNodes(0).size(), source_free + nodes_used);
  EXPECT_EQ(hv_.AvailableGuestNodes(1).size(), target_free - nodes_used);
  // Every EPT page the VM drew from socket 0's protected pool came back.
  EXPECT_EQ(hv_.ept_pool_free(0), booted.ept_pool_free[0]);
  EXPECT_TRUE(hv_.AuditVmIsolation(id).ok());

  ASSERT_TRUE(hv_.DestroyVm(id).ok());
  ASSERT_TRUE(hv_.ReleaseVmNodes(id).ok());
  EXPECT_EQ(DiffConservation(booted, CaptureConservation(hv_)), "");
}

TEST_F(MigrateTest, RejectsSameSocket) {
  const VmId id = *hv_.CreateVm({.name = "stay", .memory_bytes = 2_GiB});
  const Status status = hv_.MigrateVm(id, 0);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.error().code, ErrorCode::kInvalidArgument);
}

TEST_F(MigrateTest, RejectsOutOfRangeSocket) {
  const VmId id = *hv_.CreateVm({.name = "lost", .memory_bytes = 2_GiB});
  const Status status = hv_.MigrateVm(id, geometry_.sockets);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.error().code, ErrorCode::kOutOfRange);
}

TEST_F(MigrateTest, RejectsUnknownAndDestroyedVms) {
  EXPECT_EQ(hv_.MigrateVm(999, 1).error().code, ErrorCode::kNotFound);
  const VmId id = *hv_.CreateVm({.name = "gone", .memory_bytes = 2_GiB});
  ASSERT_TRUE(hv_.DestroyVm(id).ok());
  EXPECT_EQ(hv_.MigrateVm(id, 1).error().code, ErrorCode::kNotFound);
}

TEST_F(MigrateTest, RejectsVmWithPassthroughDevice) {
  const VmId id = *hv_.CreateVm({.name = "pinned", .memory_bytes = 2_GiB});
  const uint32_t device = *hv_.AssignPassthroughDevice(id, "nic0");
  const Status pinned = hv_.MigrateVm(id, 1);
  ASSERT_FALSE(pinned.ok());
  EXPECT_EQ(pinned.error().code, ErrorCode::kFailedPrecondition);
  // Dropping the device unpins the placement.
  ASSERT_TRUE(hv_.RemovePassthroughDevice(device).ok());
  EXPECT_TRUE(hv_.MigrateVm(id, 1).ok());
}

TEST_F(MigrateTest, ExhaustedTargetRollsBackCompletely) {
  // Fill socket 1 to the last guest node, then try to migrate into it.
  const size_t target_nodes = hv_.AvailableGuestNodes(1).size();
  const uint64_t group_bytes = hv_.group_map().group_bytes();
  const VmId hog =
      *hv_.CreateVm({.name = "hog", .memory_bytes = target_nodes * group_bytes, .socket = 1});
  ASSERT_EQ(hv_.AvailableGuestNodes(1).size(), 0u);

  const VmId id = *hv_.CreateVm({.name = "tenant", .memory_bytes = 3_GiB});
  const ConservationSnapshot placed = CaptureConservation(hv_);
  const Status status = hv_.MigrateVm(id, 1);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.error().code, ErrorCode::kNoMemory);
  // The failed migration must be a perfect no-op.
  EXPECT_EQ(DiffConservation(placed, CaptureConservation(hv_)), "");
  EXPECT_EQ((*hv_.GetVm(id))->config().socket, 0u);
  EXPECT_TRUE(hv_.AuditVmIsolation(id).ok());
  ASSERT_TRUE(hv_.DestroyVm(hog).ok());
  ASSERT_TRUE(hv_.ReleaseVmNodes(hog).ok());
  // With the hog gone the same migration goes through.
  EXPECT_TRUE(hv_.MigrateVm(id, 1).ok());
}

TEST_F(MigrateTest, BaselineKernelRejectsMigration) {
  SilozConfig baseline;
  baseline.enabled = false;
  FlatPhysMemory memory;
  SilozHypervisor hv(decoder_, memory, baseline);
  ASSERT_TRUE(hv.Boot().ok());
  const VmId id = *hv.CreateVm({.name = "legacy", .memory_bytes = 2_GiB});
  const Status status = hv.MigrateVm(id, 1);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.error().code, ErrorCode::kUnsupported);
}

TEST_F(MigrateTest, OneGibBackedVmMigrates) {
  const VmId id = *hv_.CreateVm(
      {.name = "big", .memory_bytes = 3_GiB, .backing = PageSize::k1G});
  const std::vector<uint64_t> gpas = {0, 1_GiB + 128, 3_GiB - 8};
  Vm& vm = **hv_.GetVm(id);
  for (size_t i = 0; i < gpas.size(); ++i) {
    StampGpa(memory_, vm, gpas[i], 0xBEEF00 + i);
  }
  ASSERT_TRUE(hv_.MigrateVm(id, 1).ok());
  for (size_t i = 0; i < gpas.size(); ++i) {
    EXPECT_EQ(ReadGpa(memory_, vm, gpas[i]), 0xBEEF00 + i);
  }
  EXPECT_TRUE(hv_.AuditVmIsolation(id).ok());
}

// Every reachable allocation fault point inside MigrateVm must leave the
// hypervisor exactly as it was: the VM intact at the source, no leaked
// nodes, backing, or EPT pages — and create→migrate→destroy→release a
// fixed point. (ctest -L faultinject)
TEST_F(MigrateTest, FaultSweepConservesEverything) {
  const Result<FaultSweepReport> report =
      RunMigrateVmFaultSweep(hv_, {.name = "sweep", .memory_bytes = 3_GiB}, 1);
  ASSERT_TRUE(report.ok()) << report.error().ToString();
  EXPECT_GT(report->points_probed, 1u);
  EXPECT_GT(report->faults_injected, 0u);
  EXPECT_GT(report->creates_failed, 0u);  // tallies failed migrations
}

}  // namespace
}  // namespace siloz
