// Unit battery for the observability layer (src/obs): counter / gauge /
// histogram semantics, shard-merge determinism, snapshot idempotence, and
// trace-export well-formedness. The exported JSON is parsed back with a
// minimal recursive-descent parser defined below — the trace file must be
// loadable by chrome://tracing, so "it looks like JSON" is not enough.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace siloz {
namespace {

using obs::Counter;
using obs::Domain;
using obs::Gauge;
using obs::Histogram;
using obs::HistogramSnapshot;
using obs::Registry;
using obs::Tracer;
using obs::TraceSpan;

// --- Minimal JSON parser (tests only) ---------------------------------------
//
// Parses the subset the exporters emit: objects, arrays, strings with \" \\
// and \uXXXX escapes, integers (optionally negative), and the three literals.
// Object members keep insertion order so tests can assert serialization
// order, not just key sets.

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  int64_t number = 0;
  std::string string;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> members;

  const JsonValue* Find(const std::string& key) const {
    for (const auto& [name, value] : members) {
      if (name == key) {
        return &value;
      }
    }
    return nullptr;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  // Parses the whole document; fails the calling test on any syntax error.
  JsonValue Parse() {
    JsonValue value = ParseValue();
    SkipSpace();
    EXPECT_EQ(pos_, text_.size()) << "trailing bytes after JSON document";
    return value;
  }

 private:
  char Peek() {
    if (pos_ >= text_.size()) {
      ADD_FAILURE() << "unexpected end of JSON at offset " << pos_;
      return '\0';
    }
    return text_[pos_];
  }

  void Expect(char c) {
    if (Peek() != c) {
      ADD_FAILURE() << "expected '" << c << "' at offset " << pos_ << ", got '" << Peek() << "'";
    }
    ++pos_;
  }

  void SkipSpace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  std::string ParseString() {
    Expect('"');
    std::string out;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      char escape = text_[pos_++];
      switch (escape) {
        case '"':
        case '\\':
        case '/':
          out.push_back(escape);
          break;
        case 'n':
          out.push_back('\n');
          break;
        case 't':
          out.push_back('\t');
          break;
        case 'u': {
          unsigned code = 0;
          std::sscanf(text_.substr(pos_, 4).c_str(), "%4x", &code);
          pos_ += 4;
          out.push_back(static_cast<char>(code));  // exporters only escape < 0x20
          break;
        }
        default:
          ADD_FAILURE() << "unsupported escape '\\" << escape << "'";
      }
    }
    Expect('"');
    return out;
  }

  JsonValue ParseValue() {
    SkipSpace();
    JsonValue value;
    char c = Peek();
    if (c == '{') {
      ++pos_;
      value.kind = JsonValue::Kind::kObject;
      SkipSpace();
      if (Peek() == '}') {
        ++pos_;
        return value;
      }
      while (true) {
        SkipSpace();
        std::string key = ParseString();
        SkipSpace();
        Expect(':');
        value.members.emplace_back(std::move(key), ParseValue());
        SkipSpace();
        if (Peek() == ',') {
          ++pos_;
          continue;
        }
        Expect('}');
        return value;
      }
    }
    if (c == '[') {
      ++pos_;
      value.kind = JsonValue::Kind::kArray;
      SkipSpace();
      if (Peek() == ']') {
        ++pos_;
        return value;
      }
      while (true) {
        value.array.push_back(ParseValue());
        SkipSpace();
        if (Peek() == ',') {
          ++pos_;
          continue;
        }
        Expect(']');
        return value;
      }
    }
    if (c == '"') {
      value.kind = JsonValue::Kind::kString;
      value.string = ParseString();
      return value;
    }
    if (c == 't' || c == 'f') {
      value.kind = JsonValue::Kind::kBool;
      value.boolean = (c == 't');
      pos_ += value.boolean ? 4 : 5;
      return value;
    }
    if (c == 'n') {
      pos_ += 4;
      return value;
    }
    value.kind = JsonValue::Kind::kNumber;
    bool negative = false;
    if (c == '-') {
      negative = true;
      ++pos_;
    }
    int64_t magnitude = 0;
    bool any_digit = false;
    while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
      magnitude = magnitude * 10 + (text_[pos_] - '0');
      ++pos_;
      any_digit = true;
    }
    EXPECT_TRUE(any_digit) << "expected number at offset " << pos_;
    value.number = negative ? -magnitude : magnitude;
    return value;
  }

  const std::string& text_;
  size_t pos_ = 0;
};

JsonValue ParseJson(const std::string& text) { return JsonParser(text).Parse(); }

// --- Counter ----------------------------------------------------------------

TEST(CounterTest, AddAndIncrementAccumulate) {
  Counter counter;
  EXPECT_EQ(counter.Value(), 0u);
  counter.Increment();
  counter.Add(41);
  EXPECT_EQ(counter.Value(), 42u);
  counter.Reset();
  EXPECT_EQ(counter.Value(), 0u);
}

TEST(CounterTest, ConcurrentAddsSumExactly) {
  // Every thread writes its own shard; the summed total must be exact, not
  // approximate — lost updates would silently break the determinism contract.
  Counter counter;
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 50000;
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&counter] {
      for (uint64_t i = 0; i < kPerThread; ++i) {
        counter.Increment();
      }
    });
  }
  for (std::thread& writer : writers) {
    writer.join();
  }
  EXPECT_EQ(counter.Value(), kThreads * kPerThread);
}

TEST(CounterTest, ThreadShardIndexIsStableWithinAThread) {
  const size_t here = obs::ThreadShardIndex();
  EXPECT_LT(here, obs::kMetricShards);
  EXPECT_EQ(obs::ThreadShardIndex(), here);
  size_t there = obs::kMetricShards;
  std::thread observer([&there] {
    there = obs::ThreadShardIndex();
    EXPECT_EQ(obs::ThreadShardIndex(), there);
  });
  observer.join();
  EXPECT_LT(there, obs::kMetricShards);
}

// --- Gauge ------------------------------------------------------------------

TEST(GaugeTest, SetAddResetAndNegativeValues) {
  Gauge gauge;
  gauge.Set(10);
  EXPECT_EQ(gauge.Value(), 10);
  gauge.Add(-25);
  EXPECT_EQ(gauge.Value(), -15);
  gauge.Reset();
  EXPECT_EQ(gauge.Value(), 0);
}

// --- Histogram --------------------------------------------------------------

TEST(HistogramTest, BucketIndexBoundaries) {
  // Bucket 0 holds exactly the value 0; bucket i >= 1 holds [2^(i-1), 2^i).
  EXPECT_EQ(obs::HistogramBucketIndex(0), 0u);
  EXPECT_EQ(obs::HistogramBucketIndex(1), 1u);
  EXPECT_EQ(obs::HistogramBucketIndex(2), 2u);
  EXPECT_EQ(obs::HistogramBucketIndex(3), 2u);
  EXPECT_EQ(obs::HistogramBucketIndex(4), 3u);
  EXPECT_EQ(obs::HistogramBucketIndex((1ull << 32) - 1), 32u);
  EXPECT_EQ(obs::HistogramBucketIndex(1ull << 32), 33u);
  EXPECT_EQ(obs::HistogramBucketIndex(~0ull), 64u);
  for (size_t bucket = 0; bucket < obs::kHistogramBuckets; ++bucket) {
    // The lower bound of every bucket maps back into that bucket.
    EXPECT_EQ(obs::HistogramBucketIndex(obs::HistogramBucketLowerBound(bucket)), bucket);
  }
}

TEST(HistogramTest, SnapshotCountsSumAndBuckets) {
  Histogram histogram;
  for (uint64_t value : {0ull, 1ull, 5ull, 5ull, 1024ull}) {
    histogram.Observe(value);
  }
  HistogramSnapshot snapshot = histogram.Snapshot();
  EXPECT_EQ(snapshot.count, 5u);
  EXPECT_EQ(snapshot.sum, 1035u);
  EXPECT_EQ(snapshot.buckets[0], 1u);   // value 0
  EXPECT_EQ(snapshot.buckets[1], 1u);   // value 1
  EXPECT_EQ(snapshot.buckets[3], 2u);   // 5 in [4, 8)
  EXPECT_EQ(snapshot.buckets[11], 1u);  // 1024 in [1024, 2048)
  uint64_t total = 0;
  for (uint64_t bucket : snapshot.buckets) {
    total += bucket;
  }
  EXPECT_EQ(total, snapshot.count);
}

TEST(HistogramTest, ShardMergeMatchesSerialObservation) {
  // The same multiset observed from 8 threads (scattered over shards) and
  // from 1 thread must produce identical snapshots: the shard merge is a sum
  // in shard-index order, so placement cannot show through.
  std::vector<uint64_t> samples;
  for (uint64_t i = 0; i < 4000; ++i) {
    samples.push_back(i * i % 9973);
  }
  Histogram serial;
  for (uint64_t sample : samples) {
    serial.Observe(sample);
  }
  Histogram sharded;
  constexpr size_t kThreads = 8;
  std::vector<std::thread> writers;
  for (size_t t = 0; t < kThreads; ++t) {
    writers.emplace_back([&sharded, &samples, t] {
      for (size_t i = t; i < samples.size(); i += kThreads) {
        sharded.Observe(samples[i]);
      }
    });
  }
  for (std::thread& writer : writers) {
    writer.join();
  }
  const HistogramSnapshot a = serial.Snapshot();
  const HistogramSnapshot b = sharded.Snapshot();
  EXPECT_EQ(a.count, b.count);
  EXPECT_EQ(a.sum, b.sum);
  for (size_t bucket = 0; bucket < obs::kHistogramBuckets; ++bucket) {
    EXPECT_EQ(a.buckets[bucket], b.buckets[bucket]) << "bucket " << bucket;
  }
}

TEST(HistogramTest, PercentileOfEmptySnapshotIsZero) {
  const HistogramSnapshot empty{};
  for (double quantile : {0.0, 0.5, 0.99, 0.999, 1.0}) {
    EXPECT_EQ(obs::HistogramPercentile(empty, quantile), 0u) << quantile;
  }
}

TEST(HistogramTest, PercentileOfSingleSampleIsItsBucketFloor) {
  // One sample answers every quantile with its bucket's lower bound.
  Histogram histogram;
  histogram.Observe(1000);  // bucket [512, 1024)
  const HistogramSnapshot snapshot = histogram.Snapshot();
  for (double quantile : {0.0, 0.5, 0.99, 0.999, 1.0}) {
    EXPECT_EQ(obs::HistogramPercentile(snapshot, quantile), 512u) << quantile;
  }
}

TEST(HistogramTest, PercentileRanksAreCeilBasedAndClamped) {
  // 100 samples: 50 zeros, 49 fives ([4, 8)), one 1500 ([1024, 2048)).
  // Rank = ceil(q * count), so p50 is the 50th sample (still a zero), and
  // only p-quantiles past 0.99 reach the lone tail sample.
  Histogram histogram;
  for (int i = 0; i < 50; ++i) {
    histogram.Observe(0);
  }
  for (int i = 0; i < 49; ++i) {
    histogram.Observe(5);
  }
  histogram.Observe(1500);
  const HistogramSnapshot snapshot = histogram.Snapshot();
  EXPECT_EQ(obs::HistogramPercentile(snapshot, 0.50), 0u);
  EXPECT_EQ(obs::HistogramPercentile(snapshot, 0.51), 4u);
  EXPECT_EQ(obs::HistogramPercentile(snapshot, 0.99), 4u);
  EXPECT_EQ(obs::HistogramPercentile(snapshot, 0.999), 1024u);  // rank ceil(99.9) = 100
  EXPECT_EQ(obs::HistogramPercentile(snapshot, 1.0), 1024u);
  // Out-of-range quantiles clamp to the first / last sample.
  EXPECT_EQ(obs::HistogramPercentile(snapshot, -0.5), 0u);
  EXPECT_EQ(obs::HistogramPercentile(snapshot, 1.5), 1024u);
}

// --- Registry ---------------------------------------------------------------

TEST(RegistryTest, HandlesAreStableAcrossReset) {
  Registry registry;
  Counter& counter = registry.GetCounter("stable.counter");
  Gauge& gauge = registry.GetGauge("stable.gauge");
  Histogram& histogram = registry.GetHistogram("stable.histogram");
  counter.Add(5);
  gauge.Set(7);
  histogram.Observe(9);
  registry.Reset();
  // Same objects, zeroed values: cached references stay valid forever.
  EXPECT_EQ(&registry.GetCounter("stable.counter"), &counter);
  EXPECT_EQ(&registry.GetGauge("stable.gauge"), &gauge);
  EXPECT_EQ(&registry.GetHistogram("stable.histogram"), &histogram);
  EXPECT_EQ(counter.Value(), 0u);
  EXPECT_EQ(gauge.Value(), 0);
  EXPECT_EQ(histogram.Snapshot().count, 0u);
}

TEST(RegistryTest, SectionJsonFiltersByDomain) {
  Registry registry;
  registry.GetCounter("model.only", Domain::kModel).Add(1);
  registry.GetCounter("sched.only", Domain::kSched).Add(2);
  registry.GetGauge("sched.level", Domain::kSched).Set(3);
  const JsonValue model = ParseJson(registry.SectionJson(Domain::kModel));
  const JsonValue sched = ParseJson(registry.SectionJson(Domain::kSched));
  ASSERT_NE(model.Find("counters"), nullptr);
  EXPECT_NE(model.Find("counters")->Find("model.only"), nullptr);
  EXPECT_EQ(model.Find("counters")->Find("sched.only"), nullptr);
  EXPECT_EQ(model.Find("gauges")->Find("sched.level"), nullptr);
  EXPECT_NE(sched.Find("counters")->Find("sched.only"), nullptr);
  EXPECT_EQ(sched.Find("counters")->Find("model.only"), nullptr);
  EXPECT_EQ(sched.Find("gauges")->Find("sched.level")->number, 3);
}

TEST(RegistryTest, SnapshotIsIdempotentWhenQuiescent) {
  Registry registry;
  registry.GetCounter("idempotent.counter").Add(11);
  registry.GetHistogram("idempotent.histogram").Observe(17);
  const std::string first = registry.ToJson();
  EXPECT_EQ(registry.ToJson(), first);
  EXPECT_EQ(registry.ToJson(), first);  // snapshots never consume state
}

TEST(RegistryTest, SerializationIsNameSorted) {
  Registry registry;
  // Registered out of order; std::map iteration serializes sorted.
  registry.GetCounter("zz.last").Add(1);
  registry.GetCounter("aa.first").Add(1);
  registry.GetCounter("mm.middle").Add(1);
  const JsonValue model = ParseJson(registry.SectionJson(Domain::kModel));
  const auto& counters = model.Find("counters")->members;
  ASSERT_EQ(counters.size(), 3u);
  EXPECT_EQ(counters[0].first, "aa.first");
  EXPECT_EQ(counters[1].first, "mm.middle");
  EXPECT_EQ(counters[2].first, "zz.last");
}

TEST(RegistryTest, HistogramJsonIsSparse) {
  Registry registry;
  Histogram& histogram = registry.GetHistogram("sparse.histogram");
  histogram.Observe(0);
  histogram.Observe(6);
  histogram.Observe(7);
  const JsonValue model = ParseJson(registry.SectionJson(Domain::kModel));
  const JsonValue* entry = model.Find("histograms")->Find("sparse.histogram");
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->Find("count")->number, 3);
  EXPECT_EQ(entry->Find("sum")->number, 13);
  // Only populated buckets are emitted, as [lower_bound, count] pairs.
  const auto& buckets = entry->Find("buckets")->array;
  ASSERT_EQ(buckets.size(), 2u);
  EXPECT_EQ(buckets[0].array[0].number, 0);  // bucket for value 0
  EXPECT_EQ(buckets[0].array[1].number, 1);
  EXPECT_EQ(buckets[1].array[0].number, 4);  // 6 and 7 share [4, 8)
  EXPECT_EQ(buckets[1].array[1].number, 2);
}

TEST(RegistryTest, NamesWithQuotesAreEscaped) {
  Registry registry;
  registry.GetCounter("weird\"name\\here").Add(1);
  const std::string json = registry.SectionJson(Domain::kModel);
  const JsonValue model = ParseJson(json);  // must still parse
  EXPECT_NE(model.Find("counters")->Find("weird\"name\\here"), nullptr);
}

TEST(RegistryDeathTest, DomainMismatchIsAProgrammerError) {
  Registry registry;
  registry.GetCounter("one.name", Domain::kModel);
  EXPECT_DEATH(registry.GetCounter("one.name", Domain::kSched), "re-registered");
}

// --- Tracer -----------------------------------------------------------------

// The global tracer is shared process state; each test leaves it disabled
// and empty so ordering between tests cannot matter.
class TracerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Tracer::Global().Disable();
    Tracer::Global().Reset();
  }
  void TearDown() override {
    Tracer::Global().Disable();
    Tracer::Global().Reset();
  }
};

TEST_F(TracerTest, DisabledTracerRecordsNothing) {
  {
    TraceSpan span("ignored");
  }
  Tracer::Global().RecordSpan("also-ignored", "cat", 0, 1);
  EXPECT_EQ(Tracer::Global().event_count(), 0u);
}

TEST_F(TracerTest, SpanStartedWhileDisabledStaysInert) {
  // Enabling mid-span must not record a half-measured event.
  auto span = std::make_unique<TraceSpan>("straddler");
  Tracer::Global().Enable();
  span.reset();
  EXPECT_EQ(Tracer::Global().event_count(), 0u);
}

TEST_F(TracerTest, SpansRecordCompleteEvents) {
  Tracer::Global().Enable();
  {
    TraceSpan outer("outer");
    TraceSpan inner("inner", "custom-category");
  }
  EXPECT_EQ(Tracer::Global().event_count(), 2u);
}

TEST_F(TracerTest, ResetDropsEventsAndRestartsClock) {
  Tracer::Global().Enable();
  { TraceSpan span("before-reset"); }
  ASSERT_EQ(Tracer::Global().event_count(), 1u);
  Tracer::Global().Reset();
  EXPECT_EQ(Tracer::Global().event_count(), 0u);
  EXPECT_TRUE(Tracer::Global().enabled());  // Reset never flips enablement
}

TEST_F(TracerTest, TraceJsonIsWellFormedChromeFormat) {
  Tracer::Global().Enable();
  {
    TraceSpan outer("phase \"quoted\"");
    TraceSpan inner("inner");
  }
  Tracer::Global().RecordSpan("manual", "siloz", 10, 25);
  const JsonValue doc = ParseJson(Tracer::Global().ToJson());
  ASSERT_EQ(doc.kind, JsonValue::Kind::kObject);
  const JsonValue* events = doc.Find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->kind, JsonValue::Kind::kArray);
  ASSERT_EQ(events->array.size(), 3u);
  std::set<std::string> names;
  for (const JsonValue& event : events->array) {
    // Every key chrome://tracing needs for a complete event must be present.
    for (const char* key : {"name", "cat", "ph", "ts", "dur", "pid", "tid"}) {
      ASSERT_NE(event.Find(key), nullptr) << "missing key " << key;
    }
    EXPECT_EQ(event.Find("ph")->string, "X");
    EXPECT_EQ(event.Find("pid")->number, 1);
    EXPECT_GE(event.Find("tid")->number, 1);
    EXPECT_GE(event.Find("dur")->number, 0);
    names.insert(event.Find("name")->string);
  }
  EXPECT_EQ(names, (std::set<std::string>{"phase \"quoted\"", "inner", "manual"}));
  const JsonValue* unit = doc.Find("displayTimeUnit");
  ASSERT_NE(unit, nullptr);
  EXPECT_EQ(unit->string, "ms");
}

TEST_F(TracerTest, ConcurrentSpansAllRecorded) {
  Tracer::Global().Enable();
  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([] {
      for (int i = 0; i < 25; ++i) {
        TraceSpan span("worker-span");
      }
    });
  }
  for (std::thread& worker : workers) {
    worker.join();
  }
  EXPECT_EQ(Tracer::Global().event_count(), 100u);
  ParseJson(Tracer::Global().ToJson());  // still a valid document
}

// --- File export ------------------------------------------------------------

std::string ReadFile(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

TEST_F(TracerTest, WriteTraceJsonRoundTrips) {
  Tracer::Global().Enable();
  { TraceSpan span("exported"); }
  const std::string path = ::testing::TempDir() + "/obs_test_trace.json";
  ASSERT_TRUE(obs::WriteTraceJson(path));
  const JsonValue doc = ParseJson(ReadFile(path));
  ASSERT_EQ(doc.Find("traceEvents")->array.size(), 1u);
  EXPECT_EQ(doc.Find("traceEvents")->array[0].Find("name")->string, "exported");
  std::remove(path.c_str());
}

TEST(MetricsFileTest, WriteMetricsJsonRoundTrips) {
  obs::Registry::Global().GetCounter("obs_test.file.counter").Add(123);
  const std::string path = ::testing::TempDir() + "/obs_test_metrics.json";
  ASSERT_TRUE(obs::WriteMetricsJson(path));
  const JsonValue doc = ParseJson(ReadFile(path));
  EXPECT_EQ(doc.Find("schema")->number, 1);
  const JsonValue* model = doc.Find("model");
  ASSERT_NE(model, nullptr);
  EXPECT_EQ(model->Find("counters")->Find("obs_test.file.counter")->number, 123);
  ASSERT_NE(doc.Find("sched"), nullptr);
  std::remove(path.c_str());
}

TEST(MetricsFileTest, WriteToUnwritablePathFailsCleanly) {
  EXPECT_FALSE(obs::WriteMetricsJson("/nonexistent-dir/metrics.json"));
  EXPECT_FALSE(obs::WriteTraceJson("/nonexistent-dir/trace.json"));
}

}  // namespace
}  // namespace siloz
