// Golden tests pinning the metrics JSON schema: the document shape
// ({"schema":1,"model":...,"sched":...}), the per-section key set
// (counters / gauges / histograms), name-sorted ordering, and the sparse
// histogram encoding. Consumers (scripts/diff_model_metrics.py, the CI
// metrics diff, downstream notebooks) parse these bytes; a change here is an
// interface change and must be deliberate — update the goldens in the same
// commit as the serializer.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/addr/decoder.h"
#include "src/audit/auditor.h"
#include "src/base/units.h"
#include "src/dram/remap.h"
#include "src/obs/metrics.h"

namespace siloz {
namespace {

using obs::Domain;
using obs::Registry;

TEST(ObsGoldenTest, EmptyRegistryDocument) {
  Registry registry;
  EXPECT_EQ(registry.ToJson(),
            "{\"schema\":1,"
            "\"model\":{\"counters\":{},\"gauges\":{},\"histograms\":{}},"
            "\"sched\":{\"counters\":{},\"gauges\":{},\"histograms\":{}}}");
}

TEST(ObsGoldenTest, PopulatedDocumentBytes) {
  Registry registry;
  registry.GetCounter("memctl.s0.act", Domain::kModel).Add(7);
  registry.GetCounter("pool.steals", Domain::kSched).Add(3);
  registry.GetGauge("hv.pool.free", Domain::kModel).Set(-2);
  obs::Histogram& histogram =
      registry.GetHistogram("audit.blast_radius.probes_per_shard", Domain::kModel);
  histogram.Observe(0);
  histogram.Observe(1);
  histogram.Observe(5);
  histogram.Observe(5);
  EXPECT_EQ(registry.ToJson(),
            "{\"schema\":1,"
            "\"model\":{"
            "\"counters\":{\"memctl.s0.act\":7},"
            "\"gauges\":{\"hv.pool.free\":-2},"
            "\"histograms\":{\"audit.blast_radius.probes_per_shard\":"
            "{\"count\":4,\"sum\":11,\"buckets\":[[0,1],[1,1],[4,2]]}}},"
            "\"sched\":{"
            "\"counters\":{\"pool.steals\":3},"
            "\"gauges\":{},"
            "\"histograms\":{}}}");
}

TEST(ObsGoldenTest, KeysSerializeNameSorted) {
  Registry registry;
  registry.GetCounter("zeta").Add(1);
  registry.GetCounter("alpha").Add(2);
  registry.GetCounter("mid.dle").Add(3);
  EXPECT_EQ(registry.SectionJson(Domain::kModel),
            "{\"counters\":{\"alpha\":2,\"mid.dle\":3,\"zeta\":1},"
            "\"gauges\":{},\"histograms\":{}}");
}

TEST(ObsGoldenTest, ResetKeepsKeysAndZeroesValues) {
  // Reset is value-only: the exported key set must not shrink, so diffs of
  // before/after-reset documents compare values, never schemas.
  Registry registry;
  registry.GetCounter("kept.counter").Add(9);
  registry.Reset();
  EXPECT_EQ(registry.SectionJson(Domain::kModel),
            "{\"counters\":{\"kept.counter\":0},\"gauges\":{},\"histograms\":{}}");
}

// Pins the model-domain key set an end-to-end audit run exports: the exact
// metric names the instrumented components (hypervisor, thread pool,
// auditor) flush. New instrumentation must update this list — the CI metrics
// diff keys on these names. This is the only test in this binary that
// touches Registry::Global(), so the set is order-independent.
TEST(ObsGoldenTest, AuditRunModelKeySet) {
  obs::Registry::Global().Reset();
  DramGeometry geometry;
  SkylakeDecoder decoder(geometry);
  audit::Options options;
  options.probe_stride = 16_MiB;
  options.random_probes = 256;
  options.threads = 1;
  Result<audit::Report> report =
      audit::AuditPlatform(decoder, SilozConfig{}, RemapConfig{}, options);
  ASSERT_TRUE(report.ok()) << report.error().ToString();
  EXPECT_TRUE(report->ok()) << report->ToText();
  EXPECT_EQ(obs::Registry::Global().SectionJson(Domain::kModel),
            "{\"counters\":{"
            "\"audit.probes.blast-radius\":4188160,"
            "\"audit.probes.decoder-invertibility\":30977,"
            "\"audit.probes.domain-closure\":553216,"
            "\"audit.probes.guard-fencing\":32,"
            "\"hv.ept.guard_pages\":23808,"
            "\"hv.ept.pool_pages\":768},"
            "\"gauges\":{},"
            "\"histograms\":{\"audit.blast_radius.probes_per_shard\":"
            "{\"count\":256,\"sum\":4188160,\"buckets\":[[8192,256]]}}}");
}

}  // namespace
}  // namespace siloz
