// Tests for the Blacksmith-style fuzzer (src/attack).
#include <gtest/gtest.h>

#include "src/attack/blacksmith.h"
#include "src/base/units.h"

namespace siloz {
namespace {

MachineConfig FaultConfig(bool trr_enabled = false) {
  MachineConfig config;
  config.fault_tracking = true;
  DimmProfile profile;
  profile.disturbance.threshold_mean = 2500.0;
  profile.disturbance.threshold_spread = 0.15;
  profile.trr.enabled = trr_enabled;
  profile.trr.act_threshold = 400;
  config.dimm_profiles = {profile};
  return config;
}

BlacksmithConfig FastFuzz(uint64_t seed = 7) {
  BlacksmithConfig config;
  config.patterns = 4;
  config.rounds = 1200;
  config.min_pairs = 6;
  config.max_pairs = 12;
  config.seed = seed;
  return config;
}

TEST(BlacksmithTest, FindsFlipsWithinAccessibleRegion) {
  Machine machine(FaultConfig());
  // Attacker owns subarray group 3 of socket 0: phys [4.5 GiB, 6 GiB).
  const uint64_t group_bytes = machine.decoder().geometry().subarray_group_bytes();
  const PhysRange region{3 * group_bytes, 4 * group_bytes};
  BlacksmithFuzzer fuzzer(FastFuzz());
  const FuzzReport report = fuzzer.Run(machine, {&region, 1});
  EXPECT_GT(report.patterns_run, 0u);
  EXPECT_GT(report.activations, 0u);
  ASSERT_FALSE(report.flips.empty());
  // Physics: all flips stay inside the attacker's subarray group.
  for (const PhysFlip& flip : report.flips) {
    EXPECT_TRUE(region.Contains(flip.phys))
        << "flip at phys " << flip.phys << " escaped the subarray group";
  }
}

TEST(BlacksmithTest, DefeatsTrr) {
  // Many-sided patterns must produce flips even with TRR enabled (the
  // paper's premise: deployed mitigations are insufficient, §2.5).
  Machine machine(FaultConfig(/*trr_enabled=*/true));
  const uint64_t group_bytes = machine.decoder().geometry().subarray_group_bytes();
  const PhysRange region{3 * group_bytes, 4 * group_bytes};
  BlacksmithConfig config = FastFuzz(11);
  config.min_pairs = 10;  // enough sides to exhaust the tracker
  config.max_pairs = 16;
  config.patterns = 6;
  BlacksmithFuzzer fuzzer(config);
  const FuzzReport report = fuzzer.Run(machine, {&region, 1});
  EXPECT_FALSE(report.flips.empty()) << "fuzzer failed to bypass TRR";
}

TEST(BlacksmithTest, RowPressProducesFlips) {
  Machine machine(FaultConfig());
  const uint64_t group_bytes = machine.decoder().geometry().subarray_group_bytes();
  const PhysRange region{0, group_bytes};
  BlacksmithFuzzer fuzzer(FastFuzz(13));
  const FuzzReport report = fuzzer.RunRowPress(machine, {&region, 1});
  EXPECT_FALSE(report.flips.empty());
  for (const PhysFlip& flip : report.flips) {
    EXPECT_TRUE(region.Contains(flip.phys));
  }
}

TEST(BlacksmithTest, CensusClassifiesInsideOutside) {
  Machine machine(FaultConfig());
  SubarrayGroupMap map = *SubarrayGroupMap::Build(machine.decoder(), 1024);
  std::vector<PhysFlip> flips(3);
  flips[0].phys = 100;  // group 0
  flips[0].dimm_name = "A";
  flips[1].phys = 100 + map.group_bytes();  // group 1
  flips[1].dimm_name = "B";
  flips[2].phys = 200;  // group 0
  flips[2].dimm_name = "A";
  const PhysRange inside{0, map.group_bytes()};
  const FlipCensus census = ClassifyFlips(flips, map, {&inside, 1});
  EXPECT_EQ(census.inside, 2u);
  EXPECT_EQ(census.outside, 1u);
  EXPECT_EQ(census.per_dimm.at("A"), 2u);
  EXPECT_EQ(census.per_dimm.at("B"), 1u);
  EXPECT_EQ(census.groups_hit.size(), 2u);
}

TEST(BlacksmithTest, DeterministicForSeed) {
  const uint64_t group_bytes = DramGeometry{}.subarray_group_bytes();
  const PhysRange region{3 * group_bytes, 4 * group_bytes};
  auto run = [&](uint64_t seed) {
    Machine machine(FaultConfig());
    BlacksmithFuzzer fuzzer(FastFuzz(seed));
    return fuzzer.Run(machine, {&region, 1});
  };
  const FuzzReport a = run(21);
  const FuzzReport b = run(21);
  EXPECT_EQ(a.activations, b.activations);
  ASSERT_EQ(a.flips.size(), b.flips.size());
  for (size_t i = 0; i < a.flips.size(); ++i) {
    EXPECT_EQ(a.flips[i].phys, b.flips[i].phys);
  }
  const FuzzReport c = run(22);
  EXPECT_NE(a.activations, c.activations);
}

TEST(BlacksmithTest, HammerPhysAddressesCountsActs) {
  Machine machine(FaultConfig());
  const uint64_t stride = machine.decoder().geometry().row_group_bytes() * 32;
  const uint64_t aggressors[] = {0, stride};
  EXPECT_EQ(HammerPhysAddresses(machine, aggressors, 100), 200u);
}

}  // namespace
}  // namespace siloz
