// Tests for the media-to-internal remap chain (§6, Table 1).
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "src/base/bitops.h"
#include "src/dram/remap.h"

namespace siloz {
namespace {

DramGeometry TestGeometry() {
  DramGeometry geometry;
  geometry.rows_per_bank = 8192;  // small bank keeps exhaustive scans fast
  geometry.rows_per_subarray = 1024;
  return geometry;
}

// --- Individual transforms (Table 1) ---

TEST(RemapTransformTest, MirroringSwapsDocumentedPairs) {
  // Odd ranks swap <b3,b4>, <b5,b6>, <b7,b8>.
  EXPECT_EQ(RowRemapper::ApplyMirroring(0b10000, 1), 0b01000u);   // paper's example
  EXPECT_EQ(RowRemapper::ApplyMirroring(0b0100000, 1), 0b1000000u);
  EXPECT_EQ(RowRemapper::ApplyMirroring(0b010000000, 1), 0b100000000u);
  // b0..b2 and b9+ untouched.
  EXPECT_EQ(RowRemapper::ApplyMirroring(0b111, 1), 0b111u);
  EXPECT_EQ(RowRemapper::ApplyMirroring(0b11000000000, 1), 0b11000000000u);
}

TEST(RemapTransformTest, MirroringIdentityOnEvenRanks) {
  for (uint32_t row = 0; row < 2048; ++row) {
    EXPECT_EQ(RowRemapper::ApplyMirroring(row, 0), row);
  }
}

TEST(RemapTransformTest, MirroringIsInvolution) {
  for (uint32_t row = 0; row < 4096; ++row) {
    EXPECT_EQ(RowRemapper::ApplyMirroring(RowRemapper::ApplyMirroring(row, 1), 1), row);
  }
}

TEST(RemapTransformTest, InversionFlipsB3ToB9OnBSide) {
  EXPECT_EQ(RowRemapper::ApplyInversion(0, HalfRowSide::kB), 0b1111111000u);
  EXPECT_EQ(RowRemapper::ApplyInversion(0b1111111000, HalfRowSide::kB), 0u);
  // b0..b2 and b10 untouched.
  EXPECT_EQ(RowRemapper::ApplyInversion(0b10000000111, HalfRowSide::kB), 0b11111111111u);
}

TEST(RemapTransformTest, InversionIdentityOnASide) {
  for (uint32_t row = 0; row < 4096; ++row) {
    EXPECT_EQ(RowRemapper::ApplyInversion(row, HalfRowSide::kA), row);
  }
}

TEST(RemapTransformTest, ScramblingXorsB1B2WithB3) {
  // b3=1 flips b1 and b2; b3=0 is identity.
  EXPECT_EQ(RowRemapper::ApplyScrambling(0b1000), 0b1110u);
  EXPECT_EQ(RowRemapper::ApplyScrambling(0b1110), 0b1000u);
  EXPECT_EQ(RowRemapper::ApplyScrambling(0b0110), 0b0110u);
}

TEST(RemapTransformTest, ScramblingPreservesEightRowBlocks) {
  // §6: scrambling reorders within groups of 8 rows, never across.
  for (uint32_t row = 0; row < 8192; ++row) {
    EXPECT_EQ(RowRemapper::ApplyScrambling(row) / 8, row / 8);
  }
}

TEST(RemapTransformTest, MirroringAndInversionCommute) {
  for (uint32_t row = 0; row < 4096; ++row) {
    const uint32_t a = RowRemapper::ApplyInversion(RowRemapper::ApplyMirroring(row, 1),
                                                   HalfRowSide::kB);
    const uint32_t b = RowRemapper::ApplyMirroring(RowRemapper::ApplyInversion(row, HalfRowSide::kB),
                                                   1);
    EXPECT_EQ(a, b);
  }
}

// --- Full chain ---

TEST(RowRemapperTest, RoundTripsAllConfigurations) {
  const DramGeometry geometry = TestGeometry();
  for (bool mirroring : {false, true}) {
    for (bool inversion : {false, true}) {
      for (bool scrambling : {false, true}) {
        RemapConfig config{.address_mirroring = mirroring,
                           .address_inversion = inversion,
                           .vendor_scrambling = scrambling};
        RowRemapper remapper(geometry, config);
        for (uint32_t rank = 0; rank < geometry.ranks_per_dimm; ++rank) {
          for (HalfRowSide side : {HalfRowSide::kA, HalfRowSide::kB}) {
            for (uint32_t row = 0; row < geometry.rows_per_bank; row += 7) {
              const uint32_t internal = remapper.ToInternal(row, rank, 0, side);
              EXPECT_EQ(remapper.ToMedia(internal, rank, 0, side), row);
            }
          }
        }
      }
    }
  }
}

TEST(RowRemapperTest, ChainIsBijectivePerRankSide) {
  const DramGeometry geometry = TestGeometry();
  RemapConfig config{.vendor_scrambling = true};
  RowRemapper remapper(geometry, config);
  std::vector<bool> seen(geometry.rows_per_bank);
  for (uint32_t rank = 0; rank < 2; ++rank) {
    for (HalfRowSide side : {HalfRowSide::kA, HalfRowSide::kB}) {
      std::fill(seen.begin(), seen.end(), false);
      for (uint32_t row = 0; row < geometry.rows_per_bank; ++row) {
        const uint32_t internal = remapper.ToInternal(row, rank, 0, side);
        ASSERT_LT(internal, seen.size());
        EXPECT_FALSE(seen[internal]);
        seen[internal] = true;
      }
    }
  }
}

TEST(RowRemapperTest, RepairRedirectsRow) {
  const DramGeometry geometry = TestGeometry();
  RemapConfig config;
  config.address_mirroring = false;
  config.address_inversion = false;
  config.repairs.push_back(RowRepair{.rank = 0, .bank = 3, .from_row = 100, .to_row = 7000});
  RowRemapper remapper(geometry, config);
  EXPECT_EQ(remapper.ToInternal(100, 0, 3, HalfRowSide::kA), 7000u);
  EXPECT_EQ(remapper.ToMedia(7000, 0, 3, HalfRowSide::kA), 100u);
  // Other banks unaffected.
  EXPECT_EQ(remapper.ToInternal(100, 0, 4, HalfRowSide::kA), 100u);
}

TEST(RowRemapperTest, InterSubarrayRepairCrossesBoundary) {
  // A repair to a spare row in another subarray is exactly the isolation
  // threat §6 describes.
  const DramGeometry geometry = TestGeometry();
  RemapConfig config;
  config.repairs.push_back(RowRepair{.rank = 0, .bank = 0, .from_row = 5, .to_row = 5000});
  RowRemapper remapper(geometry, config);
  const uint32_t internal = remapper.ToInternal(5, 0, 0, HalfRowSide::kA);
  EXPECT_NE(internal / geometry.rows_per_subarray, 5u / geometry.rows_per_subarray);
}

// --- §6 soundness analysis ---

TEST(SubarrayPreservationTest, PowerOfTwoSizesPreserved) {
  DramGeometry geometry = TestGeometry();
  RemapConfig standard;  // mirroring + inversion
  for (uint32_t size : {512u, 1024u, 2048u}) {
    geometry.rows_per_subarray = size;
    EXPECT_TRUE(TransformsPreserveSubarrayBlocks(geometry, standard, size))
        << "subarray size " << size;
  }
}

TEST(SubarrayPreservationTest, PowerOfTwoWithScramblingPreserved) {
  DramGeometry geometry = TestGeometry();
  RemapConfig config{.vendor_scrambling = true};
  EXPECT_TRUE(TransformsPreserveSubarrayBlocks(geometry, config, 1024));
}

TEST(SubarrayPreservationTest, NonPowerOfTwoViolated) {
  // §6: for non-power-of-2 sizes, inversion/mirroring split media subarrays
  // across internal subarray boundaries.
  DramGeometry geometry = TestGeometry();
  geometry.rows_per_bank = 7680;  // multiple of 768
  RemapConfig standard;
  EXPECT_FALSE(TransformsPreserveSubarrayBlocks(geometry, standard, 768));
}

TEST(SubarrayPreservationTest, NonPowerOfTwoFineWithoutTransforms) {
  DramGeometry geometry = TestGeometry();
  geometry.rows_per_bank = 7680;
  RemapConfig none{.address_mirroring = false, .address_inversion = false};
  EXPECT_TRUE(TransformsPreserveSubarrayBlocks(geometry, none, 768));
}

// --- LUT fidelity: the tabulated chain vs. the reference transforms ---

// The remapper collapses the transform chain into per-(rank parity, side)
// lookup tables over the low 10 row bits. Re-derive the chain from the
// individual transforms for EVERY (config, rank, side, row) and demand
// exact agreement in both directions, so the tabulation can never drift
// from the documented transforms.
TEST(RowRemapperTest, LutMatchesReferenceChainForEveryRowRankSide) {
  const DramGeometry geometry = TestGeometry();
  for (uint32_t mask = 0; mask < 8; ++mask) {
    RemapConfig config;
    config.address_mirroring = (mask & 1) != 0;
    config.address_inversion = (mask & 2) != 0;
    config.vendor_scrambling = (mask & 4) != 0;
    const RowRemapper remapper(geometry, config);
    for (uint32_t rank = 0; rank < geometry.ranks_per_dimm; ++rank) {
      for (const HalfRowSide side : {HalfRowSide::kA, HalfRowSide::kB}) {
        for (uint32_t row = 0; row < geometry.rows_per_bank; ++row) {
          uint32_t expected = row;
          if (config.address_mirroring) {
            expected = RowRemapper::ApplyMirroring(expected, rank);
          }
          if (config.address_inversion) {
            expected = RowRemapper::ApplyInversion(expected, side);
          }
          if (config.vendor_scrambling) {
            expected = RowRemapper::ApplyScrambling(expected);
          }
          const uint32_t internal = remapper.ToInternal(row, rank, /*bank=*/0, side);
          ASSERT_EQ(internal, expected)
              << "config mask " << mask << " rank " << rank << " side "
              << HalfRowSideName(side) << " row " << row;
          ASSERT_EQ(remapper.ToMedia(internal, rank, /*bank=*/0, side), row)
              << "inverse LUT, config mask " << mask << " rank " << rank << " side "
              << HalfRowSideName(side) << " row " << row;
        }
      }
    }
  }
}

// Repairs compose with the LUT chain: ToMedia(ToInternal(row)) round-trips
// for every row of a repaired bank except the one row per repair whose
// post-transform address coincides with the spare — the spare's reverse
// mapping points at the repaired row instead (ToMedia's documented
// asymmetry). The test demands round-trip everywhere else and counts the
// shadowed rows exactly.
TEST(RowRemapperTest, RepairRoundTripsEveryRow) {
  const DramGeometry geometry = TestGeometry();
  RemapConfig config;
  config.repairs = {
      {.rank = 1, .bank = 3, .from_row = 100, .to_row = 7000},
      {.rank = 1, .bank = 3, .from_row = 2048, .to_row = 1024},  // crosses subarrays
      {.rank = 0, .bank = 0, .from_row = 0, .to_row = 8191},
  };
  const RowRemapper remapper(geometry, config);
  for (uint32_t rank = 0; rank < geometry.ranks_per_dimm; ++rank) {
    for (uint32_t bank : {0u, 3u}) {
      std::vector<uint32_t> spares;
      for (const RowRepair& repair : config.repairs) {
        if (repair.rank == rank && repair.bank == bank) {
          spares.push_back(repair.to_row);
        }
      }
      for (const HalfRowSide side : {HalfRowSide::kA, HalfRowSide::kB}) {
        uint32_t shadowed = 0;
        for (uint32_t row = 0; row < geometry.rows_per_bank; ++row) {
          const uint32_t internal = remapper.ToInternal(row, rank, bank, side);
          if (std::find(spares.begin(), spares.end(), internal) != spares.end() &&
              remapper.ToMedia(internal, rank, bank, side) != row) {
            ++shadowed;  // the spare's reverse mapping wins over the chain
            continue;
          }
          ASSERT_EQ(remapper.ToMedia(internal, rank, bank, side), row)
              << "rank " << rank << " bank " << bank << " side " << HalfRowSideName(side)
              << " row " << row;
        }
        // The chain is a bijection, so each spare shadows at most one row.
        EXPECT_LE(shadowed, spares.size());
      }
    }
  }
}

TEST(SubarrayPreservationTest, ScramblingBreaksNonMultipleOfEight) {
  // §6: scrambling only matters if the subarray size is not a multiple of 8:
  // a subarray boundary inside an 8-row scramble block gets rows shuffled
  // across it.
  DramGeometry geometry = TestGeometry();
  geometry.rows_per_bank = 8192;
  RemapConfig config{.address_mirroring = false, .address_inversion = false,
                     .vendor_scrambling = true};
  EXPECT_TRUE(TransformsPreserveSubarrayBlocks(geometry, config, 512));
  geometry.rows_per_bank = 8184;  // multiple of 12
  EXPECT_FALSE(TransformsPreserveSubarrayBlocks(geometry, config, 12));
}

}  // namespace
}  // namespace siloz
