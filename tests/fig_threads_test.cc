// Pins the figure drivers' --threads contract (bench/fig_common.h): the
// thread count is resolved exactly once, and the resolved value — the one the
// banner prints and telemetry is labeled with — must equal the worker count
// of the pool that actually runs the grid. Regression: each layer used to
// call ResolveThreads() independently, so the banner and the pool disagreed
// whenever $SILOZ_THREADS changed between the two reads.
#include <gtest/gtest.h>

#include <cstdlib>
#include <thread>

#include "bench/fig_common.h"
#include "src/base/thread_pool.h"

namespace siloz {
namespace {

using bench::FigureThreads;

// Restores $SILOZ_THREADS on scope exit so these tests cannot leak state
// into each other (or into a developer's shell-configured run).
class ScopedThreadsEnv {
 public:
  ScopedThreadsEnv() {
    const char* current = std::getenv("SILOZ_THREADS");
    had_value_ = current != nullptr;
    if (had_value_) {
      saved_ = current;
    }
  }
  ~ScopedThreadsEnv() {
    if (had_value_) {
      ::setenv("SILOZ_THREADS", saved_.c_str(), 1);
    } else {
      ::unsetenv("SILOZ_THREADS");
    }
  }

 private:
  bool had_value_ = false;
  std::string saved_;
};

TEST(FigThreadsTest, ExplicitFlagWinsOverEnvironment) {
  ScopedThreadsEnv guard;
  ::setenv("SILOZ_THREADS", "7", 1);
  EXPECT_EQ(FigureThreads(3), 3u);
  ThreadPool pool(FigureThreads(3));
  EXPECT_EQ(pool.worker_count(), 3u);
}

TEST(FigThreadsTest, AutoResolvesEnvironmentThenHardware) {
  ScopedThreadsEnv guard;
  ::setenv("SILOZ_THREADS", "5", 1);
  EXPECT_EQ(FigureThreads(0), 5u);
  ::unsetenv("SILOZ_THREADS");
  EXPECT_EQ(FigureThreads(0), std::max(1u, std::thread::hardware_concurrency()));
  ::setenv("SILOZ_THREADS", "0", 1);  // non-positive values fall through
  EXPECT_EQ(FigureThreads(0), std::max(1u, std::thread::hardware_concurrency()));
}

TEST(FigThreadsTest, ReportedCountEqualsPoolWorkerCountUnderEnvDrift) {
  ScopedThreadsEnv guard;
  // Resolve once — this is the value RunFigure prints in its banner...
  ::setenv("SILOZ_THREADS", "3", 1);
  const uint32_t reported = FigureThreads(0);
  ASSERT_EQ(reported, 3u);
  // ...then the environment drifts before the grid pool is constructed.
  ::setenv("SILOZ_THREADS", "7", 1);
  // Forwarding the resolved value (what RunFigure does now) keeps the pool
  // in agreement with the banner.
  ThreadPool pool(reported);
  EXPECT_EQ(pool.worker_count(), reported);
  // The old double-resolution path — handing the raw flag to the pool and
  // letting it re-resolve — would have produced a 7-worker pool under a
  // "3 worker threads" banner.
  ThreadPool stale(0);
  EXPECT_EQ(stale.worker_count(), 7u);
  EXPECT_NE(stale.worker_count(), reported);
}

}  // namespace
}  // namespace siloz
