// Unit tests for src/base: Result, Rng, stats, bitops, units, CHECK macros.
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

#include "src/base/bitops.h"
#include "src/base/check.h"
#include "src/base/result.h"
#include "src/base/rng.h"
#include "src/base/stats.h"
#include "src/base/units.h"

namespace siloz {
namespace {

// --- Result / Status ---

Result<int> ParsePositive(int v) {
  if (v <= 0) {
    return MakeError(ErrorCode::kInvalidArgument, "not positive");
  }
  return v;
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = ParsePositive(5);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 5);
  EXPECT_EQ(r.value_or(-1), 5);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = ParsePositive(-1);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, ErrorCode::kInvalidArgument);
  EXPECT_EQ(r.value_or(-1), -1);
  EXPECT_NE(r.error().ToString().find("INVALID_ARGUMENT"), std::string::npos);
}

TEST(ResultTest, MoveOnlyPayload) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(7));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> owned = std::move(r).value();
  EXPECT_EQ(*owned, 7);
}

TEST(StatusTest, OkAndError) {
  Status ok = Status::Ok();
  EXPECT_TRUE(ok.ok());
  Status bad = MakeError(ErrorCode::kNoMemory, "pool empty");
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.error().code, ErrorCode::kNoMemory);
}

TEST(ErrorCodeTest, AllCodesHaveNames) {
  for (ErrorCode code : {ErrorCode::kInvalidArgument, ErrorCode::kOutOfRange,
                         ErrorCode::kNoMemory, ErrorCode::kPermissionDenied, ErrorCode::kNotFound,
                         ErrorCode::kAlreadyExists, ErrorCode::kFailedPrecondition,
                         ErrorCode::kIntegrityViolation, ErrorCode::kUnsupported}) {
    EXPECT_STRNE(ErrorCodeName(code), "UNKNOWN");
  }
}

// --- CHECK macros ---
//
// Death tests: the macros must abort with the failing expression, source
// location, and any streamed detail — that message is the only diagnostic an
// operator gets from a tripped invariant.

using CheckDeathTest = ::testing::Test;

TEST(CheckDeathTest, FailedCheckAbortsWithExpressionAndDetail) {
  EXPECT_DEATH(SILOZ_CHECK(1 == 2) << "boom " << 42,
               "CHECK failed at .*base_test.*: 1 == 2 — boom 42");
}

TEST(CheckDeathTest, PassingCheckDoesNotEvaluateSink) {
  bool streamed = false;
  auto side_effect = [&streamed]() {
    streamed = true;
    return "detail";
  };
  SILOZ_CHECK(true) << side_effect();
  EXPECT_FALSE(streamed);
}

TEST(CheckDeathTest, ComparisonMacrosReportBothOperands) {
  const int lhs = 3;
  const int rhs = 4;
  EXPECT_DEATH(SILOZ_CHECK_EQ(lhs, rhs), "\\(lhs\\) == \\(rhs\\)");
  EXPECT_DEATH(SILOZ_CHECK_GT(lhs, rhs), "\\(lhs\\) > \\(rhs\\)");
  SILOZ_CHECK_LT(lhs, rhs);  // passing comparisons are silent
  SILOZ_CHECK_NE(lhs, rhs);
}

TEST(CheckDeathTest, ResultValueOnErrorAborts) {
  Result<int> r = ParsePositive(-3);
  EXPECT_DEATH((void)r.value(), "CHECK failed.*not positive");
}

TEST(CheckDeathTest, StatusErrorOnOkAborts) {
  Status ok = Status::Ok();
  EXPECT_DEATH((void)ok.error(), "CHECK failed");
}

// --- Rng ---

TEST(RngTest, DeterministicForSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    same += (a.NextU64() == b.NextU64());
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, NextBelowInBounds) {
  Rng rng(7);
  for (uint64_t bound : {1ull, 2ull, 3ull, 17ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.NextBelow(bound), bound);
    }
  }
}

TEST(RngTest, NextBelowCoversRange) {
  Rng rng(11);
  std::set<uint64_t> seen;
  for (int i = 0; i < 500; ++i) {
    seen.insert(rng.NextBelow(8));
  }
  EXPECT_EQ(seen.size(), 8u);
}

TEST(RngTest, NextInRangeInclusive) {
  Rng rng(13);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const uint64_t v = rng.NextInRange(10, 13);
    EXPECT_GE(v, 10u);
    EXPECT_LE(v, 13u);
    saw_lo |= (v == 10);
    saw_hi |= (v == 13);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(17);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, BernoulliEdgeCases) {
  Rng rng(19);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.NextBernoulli(0.0));
    EXPECT_TRUE(rng.NextBernoulli(1.0));
  }
}

TEST(RngTest, BernoulliApproximatesProbability) {
  Rng rng(23);
  int hits = 0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) {
    hits += rng.NextBernoulli(0.3);
  }
  EXPECT_NEAR(static_cast<double>(hits) / trials, 0.3, 0.02);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(29);
  RunningStat stat;
  for (int i = 0; i < 50000; ++i) {
    stat.Add(rng.NextGaussian());
  }
  EXPECT_NEAR(stat.mean(), 0.0, 0.03);
  EXPECT_NEAR(stat.stddev(), 1.0, 0.03);
}

TEST(RngTest, ForkIndependentStreams) {
  Rng parent(31);
  Rng child_a = parent.Fork(1);
  Rng child_b = parent.Fork(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    same += (child_a.NextU64() == child_b.NextU64());
  }
  EXPECT_LT(same, 2);
}

// --- Stats ---

TEST(StatsTest, MeanAndStddev) {
  RunningStat stat;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    stat.Add(v);
  }
  EXPECT_DOUBLE_EQ(stat.mean(), 5.0);
  EXPECT_NEAR(stat.stddev(), 2.138, 0.001);
  EXPECT_EQ(stat.count(), 8u);
  EXPECT_DOUBLE_EQ(stat.min(), 2.0);
  EXPECT_DOUBLE_EQ(stat.max(), 9.0);
}

TEST(StatsTest, CiShrinksWithSamples) {
  RunningStat small;
  RunningStat large;
  Rng rng(37);
  for (int i = 0; i < 5; ++i) {
    small.Add(rng.NextGaussian());
  }
  for (int i = 0; i < 500; ++i) {
    large.Add(rng.NextGaussian());
  }
  EXPECT_GT(small.ci95_halfwidth(), large.ci95_halfwidth());
}

TEST(StatsTest, CiZeroForSingleSample) {
  RunningStat stat;
  stat.Add(1.0);
  EXPECT_DOUBLE_EQ(stat.ci95_halfwidth(), 0.0);
}

TEST(StatsTest, GeometricMean) {
  EXPECT_DOUBLE_EQ(GeometricMean({4.0, 1.0}), 2.0);
  EXPECT_NEAR(GeometricMean({1.0, 10.0, 100.0}), 10.0, 1e-9);
}

TEST(StatsTest, TCriticalMonotone) {
  EXPECT_GT(TCritical95(1), TCritical95(5));
  EXPECT_GT(TCritical95(5), TCritical95(30));
  EXPECT_DOUBLE_EQ(TCritical95(1000), 1.96);
}

TEST(StatsTest, MergeEmptyIntoPopulatedIsANoOp) {
  // Regression: parallel phases merge per-task accumulators in task order,
  // and a task can legitimately contribute zero samples (an empty shard).
  // Merging that empty accumulator must not perturb any moment — min/max
  // must not absorb the empty side's sentinel defaults.
  RunningStat stat;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    stat.Add(v);
  }
  const RunningStat before = stat;
  stat.Merge(RunningStat{});
  EXPECT_EQ(stat.count(), before.count());
  EXPECT_EQ(stat.mean(), before.mean());
  EXPECT_EQ(stat.stddev(), before.stddev());
  EXPECT_EQ(stat.ci95_halfwidth(), before.ci95_halfwidth());
  EXPECT_EQ(stat.min(), before.min());
  EXPECT_EQ(stat.max(), before.max());
}

TEST(StatsTest, MergePopulatedIntoEmptyCopies) {
  RunningStat populated;
  populated.Add(3.0);
  populated.Add(11.0);
  RunningStat empty;
  empty.Merge(populated);
  EXPECT_EQ(empty.count(), populated.count());
  EXPECT_EQ(empty.mean(), populated.mean());
  EXPECT_EQ(empty.stddev(), populated.stddev());
  EXPECT_EQ(empty.min(), populated.min());
  EXPECT_EQ(empty.max(), populated.max());
}

TEST(StatsTest, MergeMatchesSerialAccumulation) {
  // Interleaving empties among populated shards must still reproduce the
  // serial result bit-for-bit — the exact situation of a sharded trial loop
  // where some shards receive no work.
  std::vector<double> samples = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  RunningStat serial;
  for (double v : samples) {
    serial.Add(v);
  }
  RunningStat left;
  RunningStat right;
  for (size_t i = 0; i < samples.size(); ++i) {
    (i < samples.size() / 2 ? left : right).Add(samples[i]);
  }
  RunningStat merged;
  merged.Merge(RunningStat{});  // leading empty shard
  merged.Merge(left);
  merged.Merge(RunningStat{});  // interior empty shard
  merged.Merge(right);
  EXPECT_EQ(merged.count(), serial.count());
  EXPECT_EQ(merged.mean(), serial.mean());
  EXPECT_EQ(merged.min(), serial.min());
  EXPECT_EQ(merged.max(), serial.max());
  EXPECT_NEAR(merged.stddev(), serial.stddev(), 1e-12);
}

// --- Bitops ---

TEST(BitopsTest, GetSetBit) {
  EXPECT_EQ(GetBit(0b1010, 1), 1u);
  EXPECT_EQ(GetBit(0b1010, 0), 0u);
  EXPECT_EQ(SetBit(0b1010, 0, 1), 0b1011u);
  EXPECT_EQ(SetBit(0b1010, 1, 0), 0b1000u);
}

TEST(BitopsTest, GetBits) {
  EXPECT_EQ(GetBits(0b110100, 4, 2), 0b101u);
  EXPECT_EQ(GetBits(~0ull, 63, 0), ~0ull);
}

TEST(BitopsTest, SwapBits) {
  EXPECT_EQ(SwapBits(0b10, 0, 1), 0b01u);
  EXPECT_EQ(SwapBits(0b11, 0, 1), 0b11u);
  // Paper example (§6): 0b10000 with <b4,b3> mirrored becomes 0b01000.
  EXPECT_EQ(SwapBits(0b10000, 3, 4), 0b01000u);
}

TEST(BitopsTest, PowerOfTwoHelpers) {
  EXPECT_TRUE(IsPowerOfTwo(1));
  EXPECT_TRUE(IsPowerOfTwo(1024));
  EXPECT_FALSE(IsPowerOfTwo(0));
  EXPECT_FALSE(IsPowerOfTwo(768));
  EXPECT_EQ(NextPowerOfTwo(768), 1024u);
  EXPECT_EQ(NextPowerOfTwo(1024), 1024u);
  EXPECT_EQ(Log2(1024), 10u);
}

TEST(BitopsTest, Align) {
  EXPECT_EQ(AlignDown(1000, 256), 768u);
  EXPECT_EQ(AlignUp(1000, 256), 1024u);
  EXPECT_EQ(AlignUp(1024, 256), 1024u);
}

// --- Units ---

TEST(UnitsTest, Literals) {
  EXPECT_EQ(32_GiB, 32ull * 1024 * 1024 * 1024);
  EXPECT_EQ(8_KiB, 8192ull);
  EXPECT_EQ(24_MiB, 24ull * 1024 * 1024);
}

}  // namespace
}  // namespace siloz
