// Thread-safety battery for the parallel phases — the targets of the CI
// ThreadSanitizer job (SILOZ_SANITIZE=thread). These tests are about data
// races, not results: they drive the pool, the trial loop, the audit scan,
// and the log sink from many threads at once so TSan can observe every
// cross-thread access. Result checks are minimal (determinism is covered by
// parallel_determinism_test.cc).
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "src/addr/decoder.h"
#include "src/audit/auditor.h"
#include "src/base/log.h"
#include "src/base/thread_pool.h"
#include "src/base/units.h"
#include "src/dram/remap.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/sim/experiment.h"
#include "src/workload/workloads.h"

namespace siloz {
namespace {

TEST(ParallelSafetyTest, PoolStressManyWaves) {
  // Repeated submit/drain waves exercise the sleep/wake protocol (the
  // missed-notification window) far more than one big batch would.
  ThreadPool pool(8);
  std::atomic<uint64_t> sum{0};
  for (int wave = 0; wave < 50; ++wave) {
    for (int i = 0; i < 64; ++i) {
      pool.Submit([&sum] { sum.fetch_add(1); });
    }
    pool.Wait();
  }
  EXPECT_EQ(sum.load(), 50u * 64u);
}

TEST(ParallelSafetyTest, ConcurrentWaitersAllSeePoolDrained) {
  ThreadPool pool(4);
  std::atomic<int> done{0};
  for (int i = 0; i < 256; ++i) {
    pool.Submit([&done] { done.fetch_add(1); });
  }
  std::vector<std::thread> waiters;
  for (int i = 0; i < 4; ++i) {
    waiters.emplace_back([&pool, &done] {
      pool.Wait();
      EXPECT_EQ(done.load(), 256);
    });
  }
  for (std::thread& waiter : waiters) {
    waiter.join();
  }
}

TEST(ParallelSafetyTest, ConcurrentRunWorkloadCalls) {
  // Two whole experiment runs in flight at once, each with its own internal
  // pool — nothing below RunWorkload may touch unsynchronized shared state.
  WorkloadSpec spec = *FindWorkload("redis-a");
  spec.accesses = 10000;
  RunnerConfig config;
  config.trials = 3;
  config.threads = 2;
  std::vector<std::thread> runners;
  std::vector<Status> statuses(3, Status::Ok());
  for (size_t i = 0; i < statuses.size(); ++i) {
    runners.emplace_back([&, i] {
      RunnerConfig mine = config;
      mine.seed = 1000 + i;
      Result<RunMeasurement> run = RunWorkload(mine, spec);
      statuses[i] = run.ok() ? Status::Ok() : run.error();
    });
  }
  for (std::thread& runner : runners) {
    runner.join();
  }
  for (const Status& status : statuses) {
    EXPECT_TRUE(status.ok()) << (status.ok() ? "" : status.error().ToString());
  }
}

TEST(ParallelSafetyTest, ParallelAuditScan) {
  // The sharded blast-radius scan reads the decoder / remapper / group map /
  // buddy allocator concurrently; all of those paths must be const-clean.
  DramGeometry geometry;
  SkylakeDecoder decoder(geometry);
  audit::Options options;
  options.probe_stride = 16_MiB;
  options.random_probes = 128;
  options.threads = 8;
  Result<audit::Report> report =
      audit::AuditPlatform(decoder, SilozConfig{}, RemapConfig{}, options);
  ASSERT_TRUE(report.ok()) << report.error().ToString();
  EXPECT_TRUE(report->ok()) << report->ToText();
  EXPECT_EQ(report->scan_pool.workers, 8u);
}

TEST(ParallelSafetyTest, MetricsRegistryIsSafeUnderConcurrentWritersAndSnapshots) {
  // Writers hammer shared metrics (and keep registering names, exercising
  // the registration mutex) while a reader snapshots mid-flight. TSan checks
  // the shard accesses; the only result check is the exact post-join sum.
  obs::Registry& registry = obs::Registry::Global();
  obs::Counter& counter = registry.GetCounter("safety.obs.counter");
  counter.Reset();
  obs::Gauge& gauge = registry.GetGauge("safety.obs.gauge");
  obs::Histogram& histogram = registry.GetHistogram("safety.obs.histogram");
  constexpr int kWriters = 8;
  constexpr uint64_t kPerWriter = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kWriters; ++t) {
    threads.emplace_back([&, t] {
      obs::Counter& named =
          registry.GetCounter("safety.obs.writer." + std::to_string(t % 2));
      for (uint64_t i = 0; i < kPerWriter; ++i) {
        counter.Increment();
        named.Increment();
        gauge.Add(1);
        histogram.Observe(i);
      }
    });
  }
  threads.emplace_back([&registry] {
    for (int i = 0; i < 50; ++i) {
      registry.ToJson();  // concurrent snapshot: torn totals are fine, races are not
    }
  });
  for (std::thread& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(counter.Value(), kWriters * kPerWriter);
  EXPECT_GE(histogram.Snapshot().count, kWriters * kPerWriter);
}

TEST(ParallelSafetyTest, TracerIsSafeUnderConcurrentSpansAndControl) {
  // Spans from many threads race Enable/Disable/Reset and export; every
  // combination must be race-free (the CLI toggles the tracer while
  // instrumented phases are already running).
  obs::Tracer& tracer = obs::Tracer::Global();
  tracer.Reset();
  tracer.Enable();
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([] {
      for (int i = 0; i < 50; ++i) {
        obs::TraceSpan span("safety-span");
      }
    });
  }
  threads.emplace_back([&tracer] {
    for (int i = 0; i < 20; ++i) {
      tracer.ToJson();
      tracer.NowMicros();
    }
  });
  threads.emplace_back([&tracer] {
    for (int i = 0; i < 10; ++i) {
      tracer.Disable();
      tracer.Enable();
      tracer.Reset();
    }
  });
  for (std::thread& thread : threads) {
    thread.join();
  }
  tracer.Disable();
  tracer.Reset();
}

TEST(ParallelSafetyTest, LogSinkIsSafeUnderConcurrentWriters) {
  // The sink serializes whole lines; TSan verifies there is no race on the
  // underlying stream state. Messages must pass the threshold to reach the
  // sink, so lower it for the duration of the test.
  const LogLevel previous = GetLogLevel();
  SetLogLevel(LogLevel::kDebug);
  std::vector<std::thread> writers;
  for (int t = 0; t < 8; ++t) {
    writers.emplace_back([t] {
      for (int i = 0; i < 25; ++i) {
        SILOZ_LOG(kDebug) << "parallel_safety_test writer " << t << " line " << i;
      }
    });
  }
  for (std::thread& writer : writers) {
    writer.join();
  }
  SetLogLevel(previous);
}

}  // namespace
}  // namespace siloz
