# Empty compiler generated dependencies file for silozctl.
# This may be replaced when dependencies are built.
