file(REMOVE_RECURSE
  "CMakeFiles/silozctl.dir/silozctl.cpp.o"
  "CMakeFiles/silozctl.dir/silozctl.cpp.o.d"
  "silozctl"
  "silozctl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/silozctl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
