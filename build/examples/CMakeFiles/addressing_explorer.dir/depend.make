# Empty dependencies file for addressing_explorer.
# This may be replaced when dependencies are built.
