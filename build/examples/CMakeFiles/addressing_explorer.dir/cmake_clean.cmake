file(REMOVE_RECURSE
  "CMakeFiles/addressing_explorer.dir/addressing_explorer.cpp.o"
  "CMakeFiles/addressing_explorer.dir/addressing_explorer.cpp.o.d"
  "addressing_explorer"
  "addressing_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/addressing_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
