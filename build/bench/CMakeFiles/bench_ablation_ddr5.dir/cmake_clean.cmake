file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_ddr5.dir/bench_ablation_ddr5.cc.o"
  "CMakeFiles/bench_ablation_ddr5.dir/bench_ablation_ddr5.cc.o.d"
  "bench_ablation_ddr5"
  "bench_ablation_ddr5.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_ddr5.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
