# Empty compiler generated dependencies file for bench_ablation_ddr5.
# This may be replaced when dependencies are built.
