file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_extended.dir/bench_fig4_extended.cc.o"
  "CMakeFiles/bench_fig4_extended.dir/bench_fig4_extended.cc.o.d"
  "bench_fig4_extended"
  "bench_fig4_extended.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_extended.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
