# Empty dependencies file for bench_fig4_extended.
# This may be replaced when dependencies are built.
