# Empty compiler generated dependencies file for bench_ablation_side_channels.
# This may be replaced when dependencies are built.
