# Empty compiler generated dependencies file for bench_baseline_vulnerable.
# This may be replaced when dependencies are built.
