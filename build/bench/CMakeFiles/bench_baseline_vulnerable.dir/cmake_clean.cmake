file(REMOVE_RECURSE
  "CMakeFiles/bench_baseline_vulnerable.dir/bench_baseline_vulnerable.cc.o"
  "CMakeFiles/bench_baseline_vulnerable.dir/bench_baseline_vulnerable.cc.o.d"
  "bench_baseline_vulnerable"
  "bench_baseline_vulnerable.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_baseline_vulnerable.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
