# Empty compiler generated dependencies file for bench_ablation_1gib_pages.
# This may be replaced when dependencies are built.
