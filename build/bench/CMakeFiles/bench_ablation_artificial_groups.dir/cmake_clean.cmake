file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_artificial_groups.dir/bench_ablation_artificial_groups.cc.o"
  "CMakeFiles/bench_ablation_artificial_groups.dir/bench_ablation_artificial_groups.cc.o.d"
  "bench_ablation_artificial_groups"
  "bench_ablation_artificial_groups.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_artificial_groups.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
