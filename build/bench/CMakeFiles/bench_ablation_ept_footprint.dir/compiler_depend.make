# Empty compiler generated dependencies file for bench_ablation_ept_footprint.
# This may be replaced when dependencies are built.
