file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_ept_footprint.dir/bench_ablation_ept_footprint.cc.o"
  "CMakeFiles/bench_ablation_ept_footprint.dir/bench_ablation_ept_footprint.cc.o.d"
  "bench_ablation_ept_footprint"
  "bench_ablation_ept_footprint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_ept_footprint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
