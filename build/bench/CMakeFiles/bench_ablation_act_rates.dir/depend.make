# Empty dependencies file for bench_ablation_act_rates.
# This may be replaced when dependencies are built.
