file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_act_rates.dir/bench_ablation_act_rates.cc.o"
  "CMakeFiles/bench_ablation_act_rates.dir/bench_ablation_act_rates.cc.o.d"
  "bench_ablation_act_rates"
  "bench_ablation_act_rates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_act_rates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
