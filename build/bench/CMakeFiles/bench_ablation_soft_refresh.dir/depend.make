# Empty dependencies file for bench_ablation_soft_refresh.
# This may be replaced when dependencies are built.
