# Empty dependencies file for bench_fig4_exec_time.
# This may be replaced when dependencies are built.
