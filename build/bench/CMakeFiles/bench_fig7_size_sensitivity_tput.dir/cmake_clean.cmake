file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_size_sensitivity_tput.dir/bench_fig7_size_sensitivity_tput.cc.o"
  "CMakeFiles/bench_fig7_size_sensitivity_tput.dir/bench_fig7_size_sensitivity_tput.cc.o.d"
  "bench_fig7_size_sensitivity_tput"
  "bench_fig7_size_sensitivity_tput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_size_sensitivity_tput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
