# Empty compiler generated dependencies file for bench_fig7_size_sensitivity_tput.
# This may be replaced when dependencies are built.
