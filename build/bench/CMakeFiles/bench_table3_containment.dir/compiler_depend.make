# Empty compiler generated dependencies file for bench_table3_containment.
# This may be replaced when dependencies are built.
