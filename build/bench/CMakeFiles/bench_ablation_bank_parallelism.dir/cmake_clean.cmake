file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_bank_parallelism.dir/bench_ablation_bank_parallelism.cc.o"
  "CMakeFiles/bench_ablation_bank_parallelism.dir/bench_ablation_bank_parallelism.cc.o.d"
  "bench_ablation_bank_parallelism"
  "bench_ablation_bank_parallelism.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_bank_parallelism.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
