# Empty compiler generated dependencies file for bench_table1_remap.
# This may be replaced when dependencies are built.
