file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_remap.dir/bench_table1_remap.cc.o"
  "CMakeFiles/bench_table1_remap.dir/bench_table1_remap.cc.o.d"
  "bench_table1_remap"
  "bench_table1_remap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_remap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
