# Empty dependencies file for bench_defense_comparison.
# This may be replaced when dependencies are built.
