file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_size_sensitivity_time.dir/bench_fig6_size_sensitivity_time.cc.o"
  "CMakeFiles/bench_fig6_size_sensitivity_time.dir/bench_fig6_size_sensitivity_time.cc.o.d"
  "bench_fig6_size_sensitivity_time"
  "bench_fig6_size_sensitivity_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_size_sensitivity_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
