# Empty compiler generated dependencies file for bench_ept_protection.
# This may be replaced when dependencies are built.
