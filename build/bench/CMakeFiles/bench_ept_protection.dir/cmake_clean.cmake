file(REMOVE_RECURSE
  "CMakeFiles/bench_ept_protection.dir/bench_ept_protection.cc.o"
  "CMakeFiles/bench_ept_protection.dir/bench_ept_protection.cc.o.d"
  "bench_ept_protection"
  "bench_ept_protection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ept_protection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
