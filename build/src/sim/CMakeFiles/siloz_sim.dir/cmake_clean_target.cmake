file(REMOVE_RECURSE
  "libsiloz_sim.a"
)
