file(REMOVE_RECURSE
  "CMakeFiles/siloz_sim.dir/colocated.cc.o"
  "CMakeFiles/siloz_sim.dir/colocated.cc.o.d"
  "CMakeFiles/siloz_sim.dir/experiment.cc.o"
  "CMakeFiles/siloz_sim.dir/experiment.cc.o.d"
  "CMakeFiles/siloz_sim.dir/machine.cc.o"
  "CMakeFiles/siloz_sim.dir/machine.cc.o.d"
  "CMakeFiles/siloz_sim.dir/report.cc.o"
  "CMakeFiles/siloz_sim.dir/report.cc.o.d"
  "libsiloz_sim.a"
  "libsiloz_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/siloz_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
