# Empty dependencies file for siloz_sim.
# This may be replaced when dependencies are built.
