file(REMOVE_RECURSE
  "libsiloz_defenses.a"
)
