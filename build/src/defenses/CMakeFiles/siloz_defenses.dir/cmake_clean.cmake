file(REMOVE_RECURSE
  "CMakeFiles/siloz_defenses.dir/copy_on_flip.cc.o"
  "CMakeFiles/siloz_defenses.dir/copy_on_flip.cc.o.d"
  "CMakeFiles/siloz_defenses.dir/soft_trr.cc.o"
  "CMakeFiles/siloz_defenses.dir/soft_trr.cc.o.d"
  "CMakeFiles/siloz_defenses.dir/zebram.cc.o"
  "CMakeFiles/siloz_defenses.dir/zebram.cc.o.d"
  "libsiloz_defenses.a"
  "libsiloz_defenses.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/siloz_defenses.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
