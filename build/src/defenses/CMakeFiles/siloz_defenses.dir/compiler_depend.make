# Empty compiler generated dependencies file for siloz_defenses.
# This may be replaced when dependencies are built.
