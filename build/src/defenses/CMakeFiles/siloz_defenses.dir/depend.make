# Empty dependencies file for siloz_defenses.
# This may be replaced when dependencies are built.
