# Empty compiler generated dependencies file for siloz_workload.
# This may be replaced when dependencies are built.
