file(REMOVE_RECURSE
  "CMakeFiles/siloz_workload.dir/workloads.cc.o"
  "CMakeFiles/siloz_workload.dir/workloads.cc.o.d"
  "libsiloz_workload.a"
  "libsiloz_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/siloz_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
