file(REMOVE_RECURSE
  "libsiloz_workload.a"
)
