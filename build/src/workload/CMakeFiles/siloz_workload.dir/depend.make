# Empty dependencies file for siloz_workload.
# This may be replaced when dependencies are built.
