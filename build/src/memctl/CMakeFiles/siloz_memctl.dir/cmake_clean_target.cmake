file(REMOVE_RECURSE
  "libsiloz_memctl.a"
)
