file(REMOVE_RECURSE
  "CMakeFiles/siloz_memctl.dir/act_profile.cc.o"
  "CMakeFiles/siloz_memctl.dir/act_profile.cc.o.d"
  "CMakeFiles/siloz_memctl.dir/controller.cc.o"
  "CMakeFiles/siloz_memctl.dir/controller.cc.o.d"
  "CMakeFiles/siloz_memctl.dir/engine.cc.o"
  "CMakeFiles/siloz_memctl.dir/engine.cc.o.d"
  "libsiloz_memctl.a"
  "libsiloz_memctl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/siloz_memctl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
