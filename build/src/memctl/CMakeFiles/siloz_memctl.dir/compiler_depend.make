# Empty compiler generated dependencies file for siloz_memctl.
# This may be replaced when dependencies are built.
