# Empty dependencies file for siloz_ept.
# This may be replaced when dependencies are built.
