file(REMOVE_RECURSE
  "libsiloz_ept.a"
)
