file(REMOVE_RECURSE
  "CMakeFiles/siloz_ept.dir/ept.cc.o"
  "CMakeFiles/siloz_ept.dir/ept.cc.o.d"
  "CMakeFiles/siloz_ept.dir/phys_memory.cc.o"
  "CMakeFiles/siloz_ept.dir/phys_memory.cc.o.d"
  "libsiloz_ept.a"
  "libsiloz_ept.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/siloz_ept.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
