# Empty compiler generated dependencies file for siloz_attack.
# This may be replaced when dependencies are built.
