file(REMOVE_RECURSE
  "libsiloz_attack.a"
)
