file(REMOVE_RECURSE
  "CMakeFiles/siloz_attack.dir/blacksmith.cc.o"
  "CMakeFiles/siloz_attack.dir/blacksmith.cc.o.d"
  "CMakeFiles/siloz_attack.dir/drama.cc.o"
  "CMakeFiles/siloz_attack.dir/drama.cc.o.d"
  "libsiloz_attack.a"
  "libsiloz_attack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/siloz_attack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
