file(REMOVE_RECURSE
  "libsiloz_core.a"
)
