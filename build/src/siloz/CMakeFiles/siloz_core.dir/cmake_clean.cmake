file(REMOVE_RECURSE
  "CMakeFiles/siloz_core.dir/config.cc.o"
  "CMakeFiles/siloz_core.dir/config.cc.o.d"
  "CMakeFiles/siloz_core.dir/hypervisor.cc.o"
  "CMakeFiles/siloz_core.dir/hypervisor.cc.o.d"
  "CMakeFiles/siloz_core.dir/mediated_governor.cc.o"
  "CMakeFiles/siloz_core.dir/mediated_governor.cc.o.d"
  "CMakeFiles/siloz_core.dir/vm.cc.o"
  "CMakeFiles/siloz_core.dir/vm.cc.o.d"
  "libsiloz_core.a"
  "libsiloz_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/siloz_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
