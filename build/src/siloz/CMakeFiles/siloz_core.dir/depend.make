# Empty dependencies file for siloz_core.
# This may be replaced when dependencies are built.
