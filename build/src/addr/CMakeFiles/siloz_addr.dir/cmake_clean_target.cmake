file(REMOVE_RECURSE
  "libsiloz_addr.a"
)
