# Empty compiler generated dependencies file for siloz_addr.
# This may be replaced when dependencies are built.
