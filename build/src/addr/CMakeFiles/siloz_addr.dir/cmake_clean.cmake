file(REMOVE_RECURSE
  "CMakeFiles/siloz_addr.dir/decoder.cc.o"
  "CMakeFiles/siloz_addr.dir/decoder.cc.o.d"
  "CMakeFiles/siloz_addr.dir/subarray_group.cc.o"
  "CMakeFiles/siloz_addr.dir/subarray_group.cc.o.d"
  "libsiloz_addr.a"
  "libsiloz_addr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/siloz_addr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
