
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/addr/decoder.cc" "src/addr/CMakeFiles/siloz_addr.dir/decoder.cc.o" "gcc" "src/addr/CMakeFiles/siloz_addr.dir/decoder.cc.o.d"
  "/root/repo/src/addr/subarray_group.cc" "src/addr/CMakeFiles/siloz_addr.dir/subarray_group.cc.o" "gcc" "src/addr/CMakeFiles/siloz_addr.dir/subarray_group.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/siloz_base.dir/DependInfo.cmake"
  "/root/repo/build/src/dram/CMakeFiles/siloz_dram.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
