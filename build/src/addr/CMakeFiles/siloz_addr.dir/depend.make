# Empty dependencies file for siloz_addr.
# This may be replaced when dependencies are built.
