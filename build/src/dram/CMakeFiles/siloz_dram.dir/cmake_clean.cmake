file(REMOVE_RECURSE
  "CMakeFiles/siloz_dram.dir/device.cc.o"
  "CMakeFiles/siloz_dram.dir/device.cc.o.d"
  "CMakeFiles/siloz_dram.dir/ecc.cc.o"
  "CMakeFiles/siloz_dram.dir/ecc.cc.o.d"
  "CMakeFiles/siloz_dram.dir/fault_model.cc.o"
  "CMakeFiles/siloz_dram.dir/fault_model.cc.o.d"
  "CMakeFiles/siloz_dram.dir/geometry.cc.o"
  "CMakeFiles/siloz_dram.dir/geometry.cc.o.d"
  "CMakeFiles/siloz_dram.dir/remap.cc.o"
  "CMakeFiles/siloz_dram.dir/remap.cc.o.d"
  "CMakeFiles/siloz_dram.dir/trr.cc.o"
  "CMakeFiles/siloz_dram.dir/trr.cc.o.d"
  "libsiloz_dram.a"
  "libsiloz_dram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/siloz_dram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
