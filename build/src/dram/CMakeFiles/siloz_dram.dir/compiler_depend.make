# Empty compiler generated dependencies file for siloz_dram.
# This may be replaced when dependencies are built.
