file(REMOVE_RECURSE
  "libsiloz_dram.a"
)
