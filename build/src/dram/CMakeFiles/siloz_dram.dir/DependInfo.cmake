
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dram/device.cc" "src/dram/CMakeFiles/siloz_dram.dir/device.cc.o" "gcc" "src/dram/CMakeFiles/siloz_dram.dir/device.cc.o.d"
  "/root/repo/src/dram/ecc.cc" "src/dram/CMakeFiles/siloz_dram.dir/ecc.cc.o" "gcc" "src/dram/CMakeFiles/siloz_dram.dir/ecc.cc.o.d"
  "/root/repo/src/dram/fault_model.cc" "src/dram/CMakeFiles/siloz_dram.dir/fault_model.cc.o" "gcc" "src/dram/CMakeFiles/siloz_dram.dir/fault_model.cc.o.d"
  "/root/repo/src/dram/geometry.cc" "src/dram/CMakeFiles/siloz_dram.dir/geometry.cc.o" "gcc" "src/dram/CMakeFiles/siloz_dram.dir/geometry.cc.o.d"
  "/root/repo/src/dram/remap.cc" "src/dram/CMakeFiles/siloz_dram.dir/remap.cc.o" "gcc" "src/dram/CMakeFiles/siloz_dram.dir/remap.cc.o.d"
  "/root/repo/src/dram/trr.cc" "src/dram/CMakeFiles/siloz_dram.dir/trr.cc.o" "gcc" "src/dram/CMakeFiles/siloz_dram.dir/trr.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/siloz_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
