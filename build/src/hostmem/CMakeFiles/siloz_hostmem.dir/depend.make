# Empty dependencies file for siloz_hostmem.
# This may be replaced when dependencies are built.
