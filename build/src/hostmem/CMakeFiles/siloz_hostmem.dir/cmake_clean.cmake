file(REMOVE_RECURSE
  "CMakeFiles/siloz_hostmem.dir/buddy.cc.o"
  "CMakeFiles/siloz_hostmem.dir/buddy.cc.o.d"
  "CMakeFiles/siloz_hostmem.dir/cgroup.cc.o"
  "CMakeFiles/siloz_hostmem.dir/cgroup.cc.o.d"
  "CMakeFiles/siloz_hostmem.dir/numa.cc.o"
  "CMakeFiles/siloz_hostmem.dir/numa.cc.o.d"
  "libsiloz_hostmem.a"
  "libsiloz_hostmem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/siloz_hostmem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
