file(REMOVE_RECURSE
  "libsiloz_hostmem.a"
)
