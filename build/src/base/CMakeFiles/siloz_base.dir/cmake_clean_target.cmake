file(REMOVE_RECURSE
  "libsiloz_base.a"
)
