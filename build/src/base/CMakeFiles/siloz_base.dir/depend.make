# Empty dependencies file for siloz_base.
# This may be replaced when dependencies are built.
