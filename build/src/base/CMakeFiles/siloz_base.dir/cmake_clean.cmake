file(REMOVE_RECURSE
  "CMakeFiles/siloz_base.dir/log.cc.o"
  "CMakeFiles/siloz_base.dir/log.cc.o.d"
  "CMakeFiles/siloz_base.dir/result.cc.o"
  "CMakeFiles/siloz_base.dir/result.cc.o.d"
  "CMakeFiles/siloz_base.dir/rng.cc.o"
  "CMakeFiles/siloz_base.dir/rng.cc.o.d"
  "CMakeFiles/siloz_base.dir/stats.cc.o"
  "CMakeFiles/siloz_base.dir/stats.cc.o.d"
  "libsiloz_base.a"
  "libsiloz_base.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/siloz_base.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
