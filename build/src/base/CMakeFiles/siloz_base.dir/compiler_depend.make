# Empty compiler generated dependencies file for siloz_base.
# This may be replaced when dependencies are built.
