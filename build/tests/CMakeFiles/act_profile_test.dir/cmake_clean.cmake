file(REMOVE_RECURSE
  "CMakeFiles/act_profile_test.dir/act_profile_test.cc.o"
  "CMakeFiles/act_profile_test.dir/act_profile_test.cc.o.d"
  "act_profile_test"
  "act_profile_test.pdb"
  "act_profile_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/act_profile_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
