# Empty compiler generated dependencies file for act_profile_test.
# This may be replaced when dependencies are built.
