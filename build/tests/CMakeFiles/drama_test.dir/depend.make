# Empty dependencies file for drama_test.
# This may be replaced when dependencies are built.
