file(REMOVE_RECURSE
  "CMakeFiles/drama_test.dir/drama_test.cc.o"
  "CMakeFiles/drama_test.dir/drama_test.cc.o.d"
  "drama_test"
  "drama_test.pdb"
  "drama_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/drama_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
