file(REMOVE_RECURSE
  "CMakeFiles/blacksmith_test.dir/blacksmith_test.cc.o"
  "CMakeFiles/blacksmith_test.dir/blacksmith_test.cc.o.d"
  "blacksmith_test"
  "blacksmith_test.pdb"
  "blacksmith_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/blacksmith_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
