# Empty dependencies file for blacksmith_test.
# This may be replaced when dependencies are built.
