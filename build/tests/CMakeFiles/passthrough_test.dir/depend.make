# Empty dependencies file for passthrough_test.
# This may be replaced when dependencies are built.
