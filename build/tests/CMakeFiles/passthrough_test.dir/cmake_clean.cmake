file(REMOVE_RECURSE
  "CMakeFiles/passthrough_test.dir/passthrough_test.cc.o"
  "CMakeFiles/passthrough_test.dir/passthrough_test.cc.o.d"
  "passthrough_test"
  "passthrough_test.pdb"
  "passthrough_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/passthrough_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
