file(REMOVE_RECURSE
  "CMakeFiles/ddr5_test.dir/ddr5_test.cc.o"
  "CMakeFiles/ddr5_test.dir/ddr5_test.cc.o.d"
  "ddr5_test"
  "ddr5_test.pdb"
  "ddr5_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ddr5_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
