# Empty compiler generated dependencies file for ddr5_test.
# This may be replaced when dependencies are built.
