# Empty dependencies file for hostmem_test.
# This may be replaced when dependencies are built.
