file(REMOVE_RECURSE
  "CMakeFiles/hostmem_test.dir/hostmem_test.cc.o"
  "CMakeFiles/hostmem_test.dir/hostmem_test.cc.o.d"
  "hostmem_test"
  "hostmem_test.pdb"
  "hostmem_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hostmem_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
