# Empty compiler generated dependencies file for subarray_group_test.
# This may be replaced when dependencies are built.
