file(REMOVE_RECURSE
  "CMakeFiles/subarray_group_test.dir/subarray_group_test.cc.o"
  "CMakeFiles/subarray_group_test.dir/subarray_group_test.cc.o.d"
  "subarray_group_test"
  "subarray_group_test.pdb"
  "subarray_group_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/subarray_group_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
