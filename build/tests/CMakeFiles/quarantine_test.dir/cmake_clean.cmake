file(REMOVE_RECURSE
  "CMakeFiles/quarantine_test.dir/quarantine_test.cc.o"
  "CMakeFiles/quarantine_test.dir/quarantine_test.cc.o.d"
  "quarantine_test"
  "quarantine_test.pdb"
  "quarantine_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/quarantine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
