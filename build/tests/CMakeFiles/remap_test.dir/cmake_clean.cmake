file(REMOVE_RECURSE
  "CMakeFiles/remap_test.dir/remap_test.cc.o"
  "CMakeFiles/remap_test.dir/remap_test.cc.o.d"
  "remap_test"
  "remap_test.pdb"
  "remap_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/remap_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
