# Empty dependencies file for buddy_property_test.
# This may be replaced when dependencies are built.
