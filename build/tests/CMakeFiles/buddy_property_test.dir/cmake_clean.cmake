file(REMOVE_RECURSE
  "CMakeFiles/buddy_property_test.dir/buddy_property_test.cc.o"
  "CMakeFiles/buddy_property_test.dir/buddy_property_test.cc.o.d"
  "buddy_property_test"
  "buddy_property_test.pdb"
  "buddy_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/buddy_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
