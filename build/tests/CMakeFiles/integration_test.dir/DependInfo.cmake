
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/integration_test.cc" "tests/CMakeFiles/integration_test.dir/integration_test.cc.o" "gcc" "tests/CMakeFiles/integration_test.dir/integration_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/attack/CMakeFiles/siloz_attack.dir/DependInfo.cmake"
  "/root/repo/build/src/siloz/CMakeFiles/siloz_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/siloz_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/siloz_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/hostmem/CMakeFiles/siloz_hostmem.dir/DependInfo.cmake"
  "/root/repo/build/src/ept/CMakeFiles/siloz_ept.dir/DependInfo.cmake"
  "/root/repo/build/src/addr/CMakeFiles/siloz_addr.dir/DependInfo.cmake"
  "/root/repo/build/src/memctl/CMakeFiles/siloz_memctl.dir/DependInfo.cmake"
  "/root/repo/build/src/dram/CMakeFiles/siloz_dram.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/siloz_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
