# Empty dependencies file for colocated_test.
# This may be replaced when dependencies are built.
