file(REMOVE_RECURSE
  "CMakeFiles/colocated_test.dir/colocated_test.cc.o"
  "CMakeFiles/colocated_test.dir/colocated_test.cc.o.d"
  "colocated_test"
  "colocated_test.pdb"
  "colocated_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/colocated_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
