# Empty compiler generated dependencies file for colocated_test.
# This may be replaced when dependencies are built.
