# Empty compiler generated dependencies file for hypervisor_stress_test.
# This may be replaced when dependencies are built.
