file(REMOVE_RECURSE
  "CMakeFiles/hypervisor_stress_test.dir/hypervisor_stress_test.cc.o"
  "CMakeFiles/hypervisor_stress_test.dir/hypervisor_stress_test.cc.o.d"
  "hypervisor_stress_test"
  "hypervisor_stress_test.pdb"
  "hypervisor_stress_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hypervisor_stress_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
