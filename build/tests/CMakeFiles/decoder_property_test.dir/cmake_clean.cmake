file(REMOVE_RECURSE
  "CMakeFiles/decoder_property_test.dir/decoder_property_test.cc.o"
  "CMakeFiles/decoder_property_test.dir/decoder_property_test.cc.o.d"
  "decoder_property_test"
  "decoder_property_test.pdb"
  "decoder_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/decoder_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
