# Empty compiler generated dependencies file for decoder_property_test.
# This may be replaced when dependencies are built.
