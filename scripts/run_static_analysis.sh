#!/usr/bin/env bash
# Static-analysis and sanitizer gate, runnable locally and from CI.
#
#   scripts/run_static_analysis.sh [--skip-sanitizers] [--skip-tidy]
#
# Stages:
#   1. Plain build + full test suite (tier-1 gate).
#   2. Static isolation audit of the default platform (siloz_audit must
#      report zero findings) plus smoke checks that the corrupted-config
#      modes DO produce findings.
#   3. clang-tidy over src/ using the exported compilation database
#      (skipped with a notice when clang-tidy is not installed).
#   4. ASan+UBSan build + full test suite (sanitizer reports are fatal).
set -euo pipefail

cd "$(dirname "$0")/.."

SKIP_SANITIZERS=0
SKIP_TIDY=0
for arg in "$@"; do
  case "$arg" in
    --skip-sanitizers) SKIP_SANITIZERS=1 ;;
    --skip-tidy) SKIP_TIDY=1 ;;
    *) echo "unknown option: $arg" >&2; exit 1 ;;
  esac
done

JOBS="$(nproc 2>/dev/null || echo 2)"

echo "=== [1/4] build + tests ==="
cmake -B build -S . >/dev/null
cmake --build build -j "$JOBS"
ctest --test-dir build --output-on-failure

echo "=== [2/4] static isolation audit ==="
./build/tools/siloz_audit --stride 0x100000
# The audit must also FAIL when it should: each corruption class yields
# findings for its invariant (exit code 2).
for corrupt in shifted-jump broken-inverse; do
  if ./build/tools/siloz_audit --stride 0x1000000 --random-probes 64 \
      --corrupt "$corrupt" >/dev/null; then
    echo "ERROR: audit passed a ${corrupt}-corrupted decoder" >&2
    exit 1
  fi
done
if ./build/tools/siloz_audit --stride 0x1000000 --random-probes 64 \
    --ept-block 2 --ept-offset 1 >/dev/null; then
  echo "ERROR: audit passed an undersized guard band" >&2
  exit 1
fi

echo "=== [3/4] clang-tidy ==="
if [ "$SKIP_TIDY" = 1 ]; then
  echo "skipped (--skip-tidy)"
elif command -v clang-tidy >/dev/null 2>&1; then
  if command -v run-clang-tidy >/dev/null 2>&1; then
    run-clang-tidy -p build -quiet "src/.*" || exit 1
  else
    find src -name '*.cc' -print0 |
      xargs -0 -n 4 -P "$JOBS" clang-tidy -p build --quiet || exit 1
  fi
else
  echo "clang-tidy not installed; skipping (checks still apply in CI)"
fi

echo "=== [4/4] sanitizers (ASan+UBSan) ==="
if [ "$SKIP_SANITIZERS" = 1 ]; then
  echo "skipped (--skip-sanitizers)"
else
  cmake -B build-asan -S . -DSILOZ_SANITIZE="address;undefined" >/dev/null
  cmake --build build-asan -j "$JOBS"
  ctest --test-dir build-asan --output-on-failure
  ./build-asan/tools/siloz_audit --stride 0x1000000 --random-probes 256
fi

echo "=== all static analysis stages passed ==="
