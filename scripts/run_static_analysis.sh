#!/usr/bin/env bash
# Static-analysis and sanitizer gate, runnable locally and from CI.
#
#   scripts/run_static_analysis.sh [--skip-sanitizers] [--skip-tidy] [--skip-build]
#
# Stages:
#   1. Plain build + full test suite (tier-1 gate). Also (re)generates
#      build/compile_commands.json for the tooling stages.
#   2. siloz-lint over the tree: the five project-invariant checks
#      (DESIGN.md §12) must report zero unsuppressed findings.
#   3. Static isolation audit of the default platform (siloz_audit must
#      report zero findings) plus smoke checks that the corrupted-config
#      modes DO produce findings.
#   4. clang-tidy over src/ using the exported compilation database
#      (skipped with a notice when clang-tidy is not installed). Any
#      reported diagnostic fails the stage — run-clang-tidy exits 0 on
#      plain warnings, so findings are detected in the captured output.
#   5. Clang thread-safety build when clang++ is available: compiles the
#      tree with -Wthread-safety promoted to errors, verifying the
#      GUARDED_BY/REQUIRES annotations.
#   6. ASan+UBSan build + full test suite (sanitizer reports are fatal).
set -euo pipefail

cd "$(dirname "$0")/.."

SKIP_SANITIZERS=0
SKIP_TIDY=0
SKIP_BUILD=0
for arg in "$@"; do
  case "$arg" in
    --skip-sanitizers) SKIP_SANITIZERS=1 ;;
    --skip-tidy) SKIP_TIDY=1 ;;
    --skip-build) SKIP_BUILD=1 ;;
    *) echo "unknown option: $arg" >&2; exit 1 ;;
  esac
done

JOBS="$(nproc 2>/dev/null || echo 2)"

echo "=== [1/6] build + tests ==="
if [ "$SKIP_BUILD" = 1 ]; then
  echo "skipped (--skip-build)"
  # The tooling stages still need a compilation database.
  if [ ! -f build/compile_commands.json ]; then
    cmake -B build -S . >/dev/null
  fi
else
  cmake -B build -S . >/dev/null
  cmake --build build -j "$JOBS"
  ctest --test-dir build --output-on-failure
fi

echo "=== [2/6] siloz-lint ==="
python3 tools/siloz_lint/siloz_lint.py --frontend=auto

echo "=== [3/6] static isolation audit ==="
./build/tools/siloz_audit --stride 0x100000
# The audit must also FAIL when it should: each corruption class yields
# findings for its invariant (exit code 2).
for corrupt in shifted-jump broken-inverse; do
  if ./build/tools/siloz_audit --stride 0x1000000 --random-probes 64 \
      --corrupt "$corrupt" >/dev/null; then
    echo "ERROR: audit passed a ${corrupt}-corrupted decoder" >&2
    exit 1
  fi
done
if ./build/tools/siloz_audit --stride 0x1000000 --random-probes 64 \
    --ept-block 2 --ept-offset 1 >/dev/null; then
  echo "ERROR: audit passed an undersized guard band" >&2
  exit 1
fi

echo "=== [4/6] clang-tidy ==="
if [ "$SKIP_TIDY" = 1 ]; then
  echo "skipped (--skip-tidy)"
elif command -v clang-tidy >/dev/null 2>&1; then
  if [ ! -f build/compile_commands.json ]; then
    cmake -B build -S . >/dev/null
  fi
  TIDY_LOG="$(mktemp)"
  trap 'rm -f "$TIDY_LOG"' EXIT
  TIDY_STATUS=0
  if command -v run-clang-tidy >/dev/null 2>&1; then
    run-clang-tidy -p build -quiet "src/.*" >"$TIDY_LOG" 2>&1 || TIDY_STATUS=$?
  else
    find src -name '*.cc' -print0 |
      xargs -0 -n 4 -P "$JOBS" clang-tidy -p build --quiet \
        >"$TIDY_LOG" 2>&1 || TIDY_STATUS=$?
  fi
  # run-clang-tidy exits 0 when checks merely warn; treat any diagnostic as
  # a failure so findings cannot scroll past unnoticed.
  if [ "$TIDY_STATUS" -ne 0 ] ||
     grep -qE "(warning|error): .*\[[a-z-]+" "$TIDY_LOG"; then
    cat "$TIDY_LOG"
    echo "ERROR: clang-tidy reported findings" >&2
    exit 1
  fi
else
  echo "clang-tidy not installed; skipping (checks still apply in CI)"
fi

echo "=== [5/6] clang thread-safety build ==="
if command -v clang++ >/dev/null 2>&1; then
  cmake -B build-tsa -S . -DCMAKE_CXX_COMPILER=clang++ \
    -DSILOZ_THREAD_SAFETY_ERRORS=ON >/dev/null
  cmake --build build-tsa -j "$JOBS"
else
  echo "clang++ not installed; skipping (-Wthread-safety still applies in CI)"
fi

echo "=== [6/6] sanitizers (ASan+UBSan) ==="
if [ "$SKIP_SANITIZERS" = 1 ]; then
  echo "skipped (--skip-sanitizers)"
else
  cmake -B build-asan -S . -DSILOZ_SANITIZE="address;undefined" >/dev/null
  cmake --build build-asan -j "$JOBS"
  ctest --test-dir build-asan --output-on-failure
  ./build-asan/tools/siloz_audit --stride 0x1000000 --random-probes 256
fi

echo "=== all static analysis stages passed ==="
