#!/usr/bin/env python3
"""Diff the model-domain sections of two metrics JSON files.

The determinism contract (DESIGN.md §9) says model-domain metric *values* are
thread-count-invariant: a serial and a parallel run of the same seeded
configuration must export identical "model" sections. The "sched" section
(steals, sleeps) measures the host and legitimately differs, so it is
ignored.

Usage: diff_model_metrics.py A.json B.json
Exits 0 when the model sections match, 1 with a per-key report otherwise.
Only the standard library is used.
"""

import json
import sys


def load_model(path):
    with open(path) as f:
        doc = json.load(f)
    if doc.get("schema") != 1:
        sys.exit(f"{path}: unsupported metrics schema {doc.get('schema')!r}")
    model = doc.get("model")
    if model is None:
        sys.exit(f"{path}: no 'model' section")
    return model


def diff_section(kind, a, b):
    """Returns a list of human-readable differences for one metric kind."""
    problems = []
    for name in sorted(set(a) | set(b)):
        if name not in a:
            problems.append(f"{kind} '{name}': only in B (= {b[name]})")
        elif name not in b:
            problems.append(f"{kind} '{name}': only in A (= {a[name]})")
        elif a[name] != b[name]:
            problems.append(f"{kind} '{name}': A={a[name]} B={b[name]}")
    return problems


def main():
    if len(sys.argv) != 3:
        sys.exit(f"usage: {sys.argv[0]} A.json B.json")
    path_a, path_b = sys.argv[1], sys.argv[2]
    model_a = load_model(path_a)
    model_b = load_model(path_b)

    problems = []
    for kind in ("counters", "gauges", "histograms"):
        problems += diff_section(kind, model_a.get(kind, {}), model_b.get(kind, {}))

    if problems:
        print(f"model metrics differ between {path_a} (A) and {path_b} (B):")
        for problem in problems:
            print(f"  {problem}")
        sys.exit(1)
    total = sum(len(model_a.get(kind, {})) for kind in ("counters", "gauges", "histograms"))
    print(f"model metrics identical ({total} metrics compared; sched section ignored)")


if __name__ == "__main__":
    main()
