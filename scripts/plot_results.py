#!/usr/bin/env python3
"""Render the figure benches' CSV output as ASCII bar charts.

Usage:
    SILOZ_RESULTS_DIR=results ./build/bench/bench_fig4_exec_time
    scripts/plot_results.py results/fig4_exec_time.csv

Each row of the CSV (variant, workload, overhead_pct, ci95_pct) becomes one
bar, mirroring the paper's Figs 4-7 layout. Pure standard library — no
matplotlib dependency — so it runs anywhere the benches do.
"""
import csv
import sys


def render(path: str) -> None:
    with open(path, newline="") as handle:
        rows = list(csv.DictReader(handle))
    if not rows:
        print(f"{path}: empty")
        return

    variants = sorted({row["variant"] for row in rows})
    scale = max(abs(float(row["overhead_pct"])) + float(row["ci95_pct"]) for row in rows)
    scale = max(scale, 0.5)  # the paper's +/-0.5% guide band
    width = 30  # characters per half-axis

    print(f"== {path} (full bar = {scale:.2f}%) ==")
    for variant in variants:
        print(f"\n{variant}:")
        for row in rows:
            if row["variant"] != variant:
                continue
            value = float(row["overhead_pct"])
            ci = float(row["ci95_pct"])
            cells = int(round(abs(value) / scale * width))
            bar = "#" * cells
            left = bar.rjust(width) if value < 0 else " " * width
            right = bar.ljust(width) if value >= 0 else " " * width
            print(f"  {row['workload']:>14} {left}|{right} {value:+.3f}% (+/-{ci:.3f}%)")
    print()


def main() -> int:
    if len(sys.argv) < 2:
        print(__doc__)
        return 1
    for path in sys.argv[1:]:
        render(path)
    return 0


if __name__ == "__main__":
    sys.exit(main())
