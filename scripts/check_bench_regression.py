#!/usr/bin/env python3
"""Checks bench_hotpath against the committed BENCH_hotpath.json baseline.

Two contracts, enforced at different strengths:

- Checksums (and iteration counts) are part of the determinism contract.
  Any mismatch against the committed baseline is a HARD FAILURE (exit 1):
  an optimization changed what the hot paths compute, not just how fast.
  The benchmark binary itself also exits nonzero if a checksum differs
  between its own repetitions; that failure is propagated. Deterministic
  side-channel fields (today: shard_requests, the per-shard request census
  of the sharded engine bench) are gated exactly the same way, and a
  benchmark appearing in the output but not in the baseline is also a hard
  failure — every bench must be baselined the commit it lands.

- Timings are advisory. Wall-clock depends on the host, so a ns/op outside
  the tolerance band (default +/-25%) prints a warning but still exits 0.
  Use the warning as a prompt to re-baseline deliberately, never silently.

The baseline file also carries a `history` section of before/after wall
clocks per optimization PR. `--append-wall NAME=MILLIS` (repeatable)
records measured figure-suite walls into the `history.subshard_engine`
block — `after` is set to the given value, and `before` is seeded from the
most recent prior block's `after` for the same bench when absent — then
rewrites the baseline in place. Appending is an explicit, reviewed action:
it edits a committed file.

Usage:
  check_bench_regression.py --bench build/bench/bench_hotpath \
      --baseline BENCH_hotpath.json [--tolerance 0.25] \
      [--append-wall bench_fig4_exec_time=812 ...]
"""

import argparse
import json
import subprocess
import sys

# The history block this PR's wall-clock refreshes land in (sub-channel
# bank-group queues + grid-level trial sharding).
WALL_BLOCK = "subshard_engine"


def append_walls(path: str, entries: list[str]) -> None:
    with open(path, encoding="utf-8") as f:
        doc = json.load(f)
    history = doc.setdefault("history", {})
    block = history.setdefault(WALL_BLOCK, {})
    block.setdefault(
        "_comment",
        [
            "Before/after the sub-channel bank-group queue split (DESIGN.md",
            "§15) and the flattened grid-level (point x trial) schedule.",
            "Walls measured by `check_bench_regression.py --append-wall`;",
            "output bytes identical throughout.",
        ],
    )
    wall_ms = block.setdefault("wall_ms", {})
    # Seed `before` from the newest older block that measured the same bench.
    prior_after = {}
    for block_name, prior in history.items():
        if block_name == WALL_BLOCK or not isinstance(prior, dict):
            continue
        for bench, walls in prior.get("wall_ms", {}).items():
            if isinstance(walls, dict) and "after" in walls:
                prior_after[bench] = walls["after"]
    for entry in entries:
        name, _, millis = entry.partition("=")
        if not millis:
            raise SystemExit(f"--append-wall expects NAME=MILLIS, got {entry!r}")
        record = wall_ms.setdefault(name, {})
        record.setdefault("before", prior_after.get(name))
        record["after"] = float(millis) if "." in millis else int(millis)
    with open(path, "w", encoding="utf-8") as f:
        json.dump(doc, f, indent=2, ensure_ascii=False)
        f.write("\n")
    print(f"appended wall clocks to {path}: history.{WALL_BLOCK}.wall_ms")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--bench", required=True, help="path to the bench_hotpath binary")
    parser.add_argument("--baseline", required=True, help="committed BENCH_hotpath.json")
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.25,
        help="advisory relative timing band (0.25 = +/-25%%)",
    )
    parser.add_argument(
        "--append-wall",
        action="append",
        default=[],
        metavar="NAME=MILLIS",
        help=f"record a measured wall clock into history.{WALL_BLOCK} "
        "of the baseline file (repeatable; rewrites the file)",
    )
    args = parser.parse_args()

    if args.append_wall:
        append_walls(args.baseline, args.append_wall)

    with open(args.baseline, encoding="utf-8") as f:
        baseline = json.load(f)["benchmarks"]

    proc = subprocess.run(
        [args.bench, "--json"], capture_output=True, text=True, check=False
    )
    if proc.returncode != 0:
        sys.stdout.write(proc.stdout)
        sys.stderr.write(proc.stderr)
        print("FAIL: benchmark exited nonzero (intra-run determinism violation?)")
        return 1
    current = json.loads(proc.stdout)["benchmarks"]

    failed = False
    for name in sorted(baseline):
        base = baseline[name]
        cur = current.get(name)
        if cur is None:
            print(f"FAIL: {name}: missing from benchmark output")
            failed = True
            continue
        if cur["iters"] != base["iters"] or cur["checksum"] != base["checksum"]:
            print(
                f"FAIL: {name}: checksum {cur['checksum']} over {cur['iters']} iters "
                f"!= committed {base['checksum']} over {base['iters']} iters "
                "(determinism regression, or the bench changed without re-baselining)"
            )
            failed = True
            continue
        base_census = base.get("shard_requests")
        cur_census = cur.get("shard_requests")
        if base_census != cur_census:
            base_len = len(base_census) if base_census is not None else 0
            cur_len = len(cur_census) if cur_census is not None else 0
            if base_len != cur_len:
                # A length change is a different failure class from a content
                # change: the number of shards is a pure function of geometry
                # and --channels-per-shard, so an unknown length means the
                # shard *plan* changed (or the bench ran with different
                # partition flags), not merely the request routing.
                print(
                    f"FAIL: {name}: shard_requests has {cur_len} shards, "
                    f"baseline has {base_len} (unknown census length — the "
                    "shard plan changed, or the bench ran with non-baseline "
                    "partition flags)"
                )
            else:
                print(
                    f"FAIL: {name}: shard_requests {cur_census} "
                    f"!= committed {base_census} "
                    "(the per-shard request census is deterministic; a change "
                    "means the partition routing changed)"
                )
            failed = True
            continue
        ratio = cur["ns_per_op"] / base["ns_per_op"]
        status = "ok"
        if ratio > 1.0 + args.tolerance:
            status = f"ADVISORY: slower than baseline (x{ratio:.2f})"
        elif ratio < 1.0 - args.tolerance:
            status = f"ADVISORY: faster than baseline (x{ratio:.2f}) — consider re-baselining"
        print(
            f"{name}: {cur['ns_per_op']:.2f} ns/op vs baseline {base['ns_per_op']:.2f} "
            f"— {status}"
        )

    for name in sorted(set(current) - set(baseline)):
        print(
            f"FAIL: {name}: not in baseline — every bench must be baselined "
            f"(add it to {args.baseline})"
        )
        failed = True

    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
