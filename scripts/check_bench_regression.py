#!/usr/bin/env python3
"""Checks bench_hotpath against the committed BENCH_hotpath.json baseline.

Two contracts, enforced at different strengths:

- Checksums (and iteration counts) are part of the determinism contract.
  Any mismatch against the committed baseline is a HARD FAILURE (exit 1):
  an optimization changed what the hot paths compute, not just how fast.
  The benchmark binary itself also exits nonzero if a checksum differs
  between its own repetitions; that failure is propagated. Deterministic
  side-channel fields (today: shard_requests, the per-shard request census
  of the sharded engine bench) are gated exactly the same way, and a
  benchmark appearing in the output but not in the baseline is also a hard
  failure — every bench must be baselined the commit it lands.

- Timings are advisory. Wall-clock depends on the host, so a ns/op outside
  the tolerance band (default +/-25%) prints a warning but still exits 0.
  Use the warning as a prompt to re-baseline deliberately, never silently.

Usage:
  check_bench_regression.py --bench build/bench/bench_hotpath \
      --baseline BENCH_hotpath.json [--tolerance 0.25]
"""

import argparse
import json
import subprocess
import sys


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--bench", required=True, help="path to the bench_hotpath binary")
    parser.add_argument("--baseline", required=True, help="committed BENCH_hotpath.json")
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.25,
        help="advisory relative timing band (0.25 = +/-25%%)",
    )
    args = parser.parse_args()

    with open(args.baseline, encoding="utf-8") as f:
        baseline = json.load(f)["benchmarks"]

    proc = subprocess.run(
        [args.bench, "--json"], capture_output=True, text=True, check=False
    )
    if proc.returncode != 0:
        sys.stdout.write(proc.stdout)
        sys.stderr.write(proc.stderr)
        print("FAIL: benchmark exited nonzero (intra-run determinism violation?)")
        return 1
    current = json.loads(proc.stdout)["benchmarks"]

    failed = False
    for name in sorted(baseline):
        base = baseline[name]
        cur = current.get(name)
        if cur is None:
            print(f"FAIL: {name}: missing from benchmark output")
            failed = True
            continue
        if cur["iters"] != base["iters"] or cur["checksum"] != base["checksum"]:
            print(
                f"FAIL: {name}: checksum {cur['checksum']} over {cur['iters']} iters "
                f"!= committed {base['checksum']} over {base['iters']} iters "
                "(determinism regression, or the bench changed without re-baselining)"
            )
            failed = True
            continue
        if base.get("shard_requests") != cur.get("shard_requests"):
            print(
                f"FAIL: {name}: shard_requests {cur.get('shard_requests')} "
                f"!= committed {base.get('shard_requests')} "
                "(the per-shard request census is deterministic; a change means "
                "the shard plan or the partition changed)"
            )
            failed = True
            continue
        ratio = cur["ns_per_op"] / base["ns_per_op"]
        status = "ok"
        if ratio > 1.0 + args.tolerance:
            status = f"ADVISORY: slower than baseline (x{ratio:.2f})"
        elif ratio < 1.0 - args.tolerance:
            status = f"ADVISORY: faster than baseline (x{ratio:.2f}) — consider re-baselining"
        print(
            f"{name}: {cur['ns_per_op']:.2f} ns/op vs baseline {base['ns_per_op']:.2f} "
            f"— {status}"
        )

    for name in sorted(set(current) - set(baseline)):
        print(
            f"FAIL: {name}: not in baseline — every bench must be baselined "
            f"(add it to {args.baseline})"
        )
        failed = True

    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
