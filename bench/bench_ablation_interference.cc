// Ablation A10 (§1, §2.2, §8.4): memory interference between co-located
// tenants — what Siloz does and does not change.
//
// A latency-sensitive tenant (redis-a) runs next to neighbours of varying
// aggressiveness. Measured victim slowdown vs running alone:
//  - interference is real and driven by shared channels/banks,
//  - Siloz's placement does not change it (groups share banks by design),
//  - a cross-socket neighbour does not interfere (disjoint memory system).
//
// The whole (victim regime x kernel x neighbour) grid runs as one parallel
// colocated sweep (`--threads N`; results identical for every N).
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <iterator>

#include "bench/bench_util.h"
#include "src/base/check.h"
#include "src/sim/colocated.h"

int main(int argc, char** argv) {
  using namespace siloz;
  bench::PrintHeader("Ablation A10: co-located tenant interference", DramGeometry{});

  // Two victim regimes: latency-bound (low MLP, no compute to hide misses)
  // and compute-bound (the stock redis-a profile).
  WorkloadSpec latency_victim = *FindWorkload("redis-a");
  latency_victim.accesses = 150000;
  latency_victim.mlp = 4;
  latency_victim.compute_ns_per_access = 2.0;
  WorkloadSpec compute_victim = *FindWorkload("redis-a");
  compute_victim.accesses = 150000;

  struct Case {
    const char* label;
    const char* workload;
    uint32_t socket;
  } cases[] = {
      {"none (alone)", nullptr, 0},
      {"mysql, same socket", "mysql", 0},
      {"mlc-3:1, same socket", "mlc-3:1", 0},
      {"mlc-stream, same socket", "mlc-stream", 0},
      {"mlc-stream, other socket", "mlc-stream", 1},
  };

  // Scenario grid in a fixed order: victim regime major, then kernel, then
  // neighbour case — index arithmetic below depends on it.
  const WorkloadSpec* victims[] = {&latency_victim, &compute_victim};
  std::vector<ColocatedScenario> scenarios;
  for (const WorkloadSpec* victim : victims) {
    for (bool siloz_enabled : {false, true}) {
      for (const Case& c : cases) {
        ColocatedScenario scenario;
        scenario.name = std::string(victim == &latency_victim ? "lat/" : "cpu/") +
                        (siloz_enabled ? "siloz/" : "base/") + c.label;
        scenario.config.hypervisor.enabled = siloz_enabled;
        scenario.tenants = {{.vm_name = "victim", .memory_bytes = 3ull << 30, .socket = 0,
                             .workload = *victim}};
        if (c.workload != nullptr) {
          WorkloadSpec hog = *FindWorkload(c.workload);
          hog.accesses = 100000;
          scenario.tenants.push_back({.vm_name = "hog", .memory_bytes = 3ull << 30,
                                      .socket = c.socket, .workload = hog,
                                      .background = true});
        }
        scenarios.push_back(std::move(scenario));
      }
    }
  }

  PoolPhaseMetrics metrics;
  Result<std::vector<std::vector<TenantResult>>> sweep =
      RunColocatedSweep(scenarios, bench::ThreadsFromArgs(argc, argv), &metrics);
  SILOZ_CHECK(sweep.ok()) << sweep.error().ToString();
  std::fprintf(stderr, "%s\n", metrics.ToText().c_str());

  const size_t per_case = std::size(cases);
  // victim regime v, kernel k (0 = baseline, 1 = siloz), case c.
  auto victim_elapsed = [&](size_t v, size_t k, size_t c) {
    return (*sweep)[(v * 2 + k) * per_case + c][0].elapsed_ns;
  };

  std::printf("victim = redis-a; numbers are victim slowdown vs running alone.\n\n");
  std::printf("%-34s | %23s | %23s\n", "", "latency-bound victim", "compute-bound victim");
  std::printf("%-34s | %10s | %10s | %10s | %10s\n", "neighbour", "baseline", "siloz",
              "baseline", "siloz");
  bench::PrintRule();
  double max_divergence = 0.0;
  for (size_t c = 0; c < per_case; ++c) {
    const double lat_base = victim_elapsed(0, 0, c) / victim_elapsed(0, 0, 0);
    const double lat_siloz = victim_elapsed(0, 1, c) / victim_elapsed(0, 1, 0);
    const double cpu_base = victim_elapsed(1, 0, c) / victim_elapsed(1, 0, 0);
    const double cpu_siloz = victim_elapsed(1, 1, c) / victim_elapsed(1, 1, 0);
    std::printf("%-34s | %9.3fx | %9.3fx | %9.3fx | %9.3fx\n", cases[c].label, lat_base,
                lat_siloz, cpu_base, cpu_siloz);
    max_divergence = std::max(max_divergence, std::abs(lat_siloz / lat_base - 1.0));
    max_divergence = std::max(max_divergence, std::abs(cpu_siloz / cpu_base - 1.0));
  }
  bench::PrintRule();
  std::printf("Interference profile identical under Siloz (max divergence %.2f%%):\n"
              "subarray groups isolate *disturbance*, not bandwidth — per §8.4,\n"
              "performance isolation needs bank/rank/channel-level logical nodes.\n",
              max_divergence * 100.0);
  return max_divergence < 0.02 ? 0 : 1;
}
