// Ablation A10 (§1, §2.2, §8.4): memory interference between co-located
// tenants — what Siloz does and does not change.
//
// A latency-sensitive tenant (redis-a) runs next to neighbours of varying
// aggressiveness. Measured victim slowdown vs running alone:
//  - interference is real and driven by shared channels/banks,
//  - Siloz's placement does not change it (groups share banks by design),
//  - a cross-socket neighbour does not interfere (disjoint memory system).
#include <cstdio>

#include "bench/bench_util.h"
#include "src/sim/colocated.h"

int main() {
  using namespace siloz;
  bench::PrintHeader("Ablation A10: co-located tenant interference", DramGeometry{});

  // Two victim regimes: latency-bound (low MLP, no compute to hide misses)
  // and compute-bound (the stock redis-a profile).
  WorkloadSpec latency_victim = *FindWorkload("redis-a");
  latency_victim.accesses = 150000;
  latency_victim.mlp = 4;
  latency_victim.compute_ns_per_access = 2.0;
  WorkloadSpec compute_victim = *FindWorkload("redis-a");
  compute_victim.accesses = 150000;

  auto run = [&](const WorkloadSpec& victim_workload, bool siloz_enabled,
                 const char* neighbour, uint32_t neighbour_socket) {
    RunnerConfig config;
    config.hypervisor.enabled = siloz_enabled;
    std::vector<TenantSpec> tenants = {
        {.vm_name = "victim", .memory_bytes = 3ull << 30, .socket = 0,
         .workload = victim_workload}};
    if (neighbour != nullptr) {
      WorkloadSpec hog = *FindWorkload(neighbour);
      hog.accesses = 100000;
      tenants.push_back({.vm_name = "hog", .memory_bytes = 3ull << 30,
                         .socket = neighbour_socket, .workload = hog,
                         .background = true});
    }
    Result<std::vector<TenantResult>> results = RunColocated(config, tenants);
    SILOZ_CHECK(results.ok()) << results.error().ToString();
    return (*results)[0].elapsed_ns;
  };

  std::printf("victim = redis-a; numbers are victim slowdown vs running alone.\n\n");
  std::printf("%-34s | %23s | %23s\n", "", "latency-bound victim", "compute-bound victim");
  std::printf("%-34s | %10s | %10s | %10s | %10s\n", "neighbour", "baseline", "siloz",
              "baseline", "siloz");
  bench::PrintRule();
  const double alone_lat_base = run(latency_victim, false, nullptr, 0);
  const double alone_lat_siloz = run(latency_victim, true, nullptr, 0);
  const double alone_cpu_base = run(compute_victim, false, nullptr, 0);
  const double alone_cpu_siloz = run(compute_victim, true, nullptr, 0);
  struct Case {
    const char* label;
    const char* workload;
    uint32_t socket;
  } cases[] = {
      {"none (alone)", nullptr, 0},
      {"mysql, same socket", "mysql", 0},
      {"mlc-3:1, same socket", "mlc-3:1", 0},
      {"mlc-stream, same socket", "mlc-stream", 0},
      {"mlc-stream, other socket", "mlc-stream", 1},
  };
  double max_divergence = 0.0;
  for (const Case& c : cases) {
    const double lat_base = run(latency_victim, false, c.workload, c.socket) / alone_lat_base;
    const double lat_siloz = run(latency_victim, true, c.workload, c.socket) / alone_lat_siloz;
    const double cpu_base = run(compute_victim, false, c.workload, c.socket) / alone_cpu_base;
    const double cpu_siloz = run(compute_victim, true, c.workload, c.socket) / alone_cpu_siloz;
    std::printf("%-34s | %9.3fx | %9.3fx | %9.3fx | %9.3fx\n", c.label, lat_base, lat_siloz,
                cpu_base, cpu_siloz);
    max_divergence = std::max(max_divergence, std::abs(lat_siloz / lat_base - 1.0));
    max_divergence = std::max(max_divergence, std::abs(cpu_siloz / cpu_base - 1.0));
  }
  bench::PrintRule();
  std::printf("Interference profile identical under Siloz (max divergence %.2f%%):\n"
              "subarray groups isolate *disturbance*, not bandwidth — per §8.4,\n"
              "performance isolation needs bank/rank/channel-level logical nodes.\n",
              max_divergence * 100.0);
  return max_divergence < 0.02 ? 0 : 1;
}
