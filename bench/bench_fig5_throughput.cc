// Regenerates Figure 5 (§7.3): baseline-normalized throughput of Siloz for
// memcached, SysBench mySQL, and the Intel MLC variants (reads, 3:1, 2:1,
// 1:1, stream).
//
// Expected shape (paper): mean throughput within 0.5% of baseline for every
// workload; bank-level parallelism — the first-order term for bandwidth —
// is identical under subarray-group placement.
#include "bench/fig_common.h"

int main(int argc, char** argv) {
  using namespace siloz;
  const uint32_t threads = bench::ThreadsFromArgs(argc, argv);  // 0 = auto-detect
  const std::string platform = bench::PlatformFromArgs(argc, argv);
  bench::EnableObsFromArgs(argc, argv);
  bench::PrintHeader("Figure 5: baseline-normalized throughput (Siloz vs Linux/KVM)",
                     bench::PlatformHeaderGeometry(platform), platform);
  std::printf("MLC variants are saturated bandwidth probes (64 outstanding, no\n"
              "compute gap); 5 trials per point.\n\n");
  const bool ok = bench::RunFigure(ThroughputWorkloads(),
                                   {"baseline", bench::BaselineKernel()},
                                   {{"siloz", bench::SilozKernel()}}, 5, 42, "fig5_throughput",
                                   threads, bench::ChannelsPerShardFromArgs(argc, argv),
                                   platform, bench::BankGroupsPerQueueFromArgs(argc, argv));
  return (bench::WriteObsFromArgs(argc, argv) && ok) ? 0 : 1;
}
