// Ablation A3 (§4.2): how 1 GiB pages interact with subarray groups.
//
// The paper: because of the 768 MiB mapping jump, 1 GiB pages do not
// inherently map to a single subarray group; but with 3 GiB sets of
// consecutive groups, at least 1/3 of 1 GiB ranges map to single sets. This
// bench measures the actual fractions under our decoder (which is slightly
// more benign than real Skylake — see DESIGN.md deviations) and verifies
// the paper's bound holds.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/addr/subarray_group.h"
#include "src/base/units.h"

int main() {
  using namespace siloz;
  const DramGeometry geometry;
  SkylakeDecoder decoder(geometry);
  bench::PrintHeader("Ablation A3: 1 GiB page containment (§4.2)", geometry);

  SubarrayGroupMap map = *SubarrayGroupMap::Build(decoder, geometry.rows_per_subarray);
  uint32_t single_group = 0;
  uint32_t single_set = 0;
  const uint32_t pages = static_cast<uint32_t>(geometry.total_bytes() / kPage1G);
  for (uint32_t i = 0; i < pages; ++i) {
    const uint64_t start = static_cast<uint64_t>(i) * kPage1G;
    const uint32_t first = *map.GroupOfPhys(start);
    const uint32_t last = *map.GroupOfPhys(start + kPage1G - 1);
    single_group += (first == last);
    single_set += (first / 2 == last / 2);  // 2 x 1.5 GiB groups = 3 GiB set
  }

  std::printf("%-52s | %8s\n", "containment of 1 GiB physical ranges", "fraction");
  bench::PrintRule();
  std::printf("%-52s | %7.1f%%\n", "within a single 1.5 GiB subarray group",
              100.0 * single_group / pages);
  std::printf("%-52s | %7.1f%%\n", "within a single 3 GiB set of consecutive groups",
              100.0 * single_set / pages);
  bench::PrintRule();
  const bool bound_holds = single_set * 3 >= pages;
  const bool some_straddle = single_group < pages;
  std::printf("Paper's bound (>= 1/3 in single 3 GiB sets): %s\n",
              bound_holds ? "holds" : "VIOLATED");
  std::printf("Some 1 GiB pages straddle groups (so 2 MiB backing is needed for\n"
              "the remainder, as the paper prescribes): %s\n", some_straddle ? "yes" : "NO");
  std::printf("\n2 MiB pages, for contrast (sampled): ");
  uint32_t contained_2m = 0;
  const uint32_t samples = 512;
  for (uint32_t i = 0; i < samples; ++i) {
    const uint64_t start = (static_cast<uint64_t>(i) * 761) % (geometry.total_bytes() / kPage2M);
    contained_2m += *map.PageIsContained(decoder, start * kPage2M, kPage2M);
  }
  std::printf("%u/%u contained in single groups\n", contained_2m, samples);
  return (bound_holds && some_straddle && contained_2m == samples) ? 0 : 1;
}
