// Shared driver for the performance figures (Figs 4-7): run a workload set
// under a baseline hypervisor configuration and one or more variants, print
// per-workload normalized overhead with 95% CIs and the geometric mean.
#ifndef SILOZ_BENCH_FIG_COMMON_H_
#define SILOZ_BENCH_FIG_COMMON_H_

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/addr/platform.h"
#include "src/base/thread_pool.h"
#include "src/obs/metrics.h"
#include "src/sim/experiment.h"
#include "src/sim/report.h"
#include "src/workload/workloads.h"

namespace siloz {
namespace bench {

struct VariantSpec {
  std::string label;
  SilozConfig config;
};

// Returns the header geometry for `platform` ("" or unknown = the Table 2
// Skylake default; RunFigure rejects unknown names with a real error).
inline DramGeometry PlatformHeaderGeometry(const std::string& platform) {
  const PlatformInfo* info = platform.empty() ? nullptr : FindPlatform(platform);
  return info != nullptr ? info->geometry : DramGeometry{};
}

// Resolves the --threads flag for a figure run, exactly once. The resolved
// value must be what RunFigure prints, labels telemetry with, AND passes to
// RunWorkloadGrid — resolving independently at each layer let the banner and
// the pool's actual worker_count() disagree whenever $SILOZ_THREADS changed
// between the two reads (fig_threads_test.cc pins reported == actual).
inline uint32_t FigureThreads(uint32_t flag) { return ResolveThreads(flag); }

// Runs every workload under `baseline` and each variant; prints one
// overhead table per variant (normalized to baseline) and geometric means.
// With SILOZ_RESULTS_DIR set, also appends CSV rows per (variant, workload).
// Returns false if any run failed.
//
// `platform` non-empty selects a registry platform (PlatformFromArgs):
// every grid point gets the platform's geometry, decoder family, and
// DDR-generation semantics, with each variant keeping its own subarray-size
// choice — the channel/bank/DIMM topology the engine shards over is derived
// from the platform, never assumed to be the Skylake constants.
//
// The whole (variant x workload x trial) space runs flattened on one
// work-stealing pool — every grid cell's trials are independent tasks, not a
// nested serial loop (`threads` as in RunnerConfig::threads; 0 = auto).
// Tables on stdout are byte-identical for every thread count; the grid's
// scheduler/timing metrics go to stderr so diffs of the tables stay clean.
inline bool RunFigure(const std::vector<WorkloadSpec>& workloads, const VariantSpec& baseline,
                      const std::vector<VariantSpec>& variants, uint32_t trials = 5,
                      uint64_t seed = 42, const char* experiment = "figure",
                      uint32_t threads = 0, uint32_t channels_per_shard = 1,
                      const std::string& platform = std::string(),
                      uint32_t bank_groups_per_queue = 1) {
  RunnerConfig runner;
  runner.trials = trials;
  runner.seed = seed;
  runner.channels_per_shard = channels_per_shard;
  runner.bank_groups_per_queue = bank_groups_per_queue;

  // The resolved worker count, up front on stderr: --threads 0 means
  // auto-detect ($SILOZ_THREADS, else the hardware concurrency), and the
  // figure's wall-clock depends on what that resolves to even though the
  // stdout tables never do. Resolved ONCE here; the same value is forwarded
  // to RunWorkloadGrid below, so the banner can never disagree with the
  // pool's actual worker count.
  const uint32_t resolved_threads = FigureThreads(threads);
  std::fprintf(stderr,
               "%s: %u worker threads (--threads %u%s), --channels-per-shard %u, "
               "--bank-groups-per-queue %u\n",
               experiment, resolved_threads, threads,
               threads == 0 ? " = auto" : "", channels_per_shard, bank_groups_per_queue);

  // Grid of (variant, workload) points, baseline first, workload-major per
  // variant — the same order the serial loops used.
  std::vector<std::string> labels;
  labels.push_back(baseline.label);
  for (const VariantSpec& variant : variants) {
    labels.push_back(variant.label);
  }
  std::vector<GridPoint> points;
  for (size_t v = 0; v < variants.size() + 1; ++v) {
    runner.hypervisor = (v == 0) ? baseline.config : variants[v - 1].config;
    if (!platform.empty()) {
      const Status applied =
          ApplyPlatform(runner, platform, runner.hypervisor.rows_per_subarray);
      if (!applied.ok()) {
        std::fprintf(stderr, "--platform %s: %s\n", platform.c_str(),
                     applied.error().ToString().c_str());
        return false;
      }
    }
    for (const WorkloadSpec& workload : workloads) {
      points.push_back(GridPoint{runner, workload});
    }
  }
  PoolPhaseMetrics grid_metrics;
  Result<std::vector<RunMeasurement>> grid =
      RunWorkloadGrid(points, resolved_threads, &grid_metrics);
  if (!grid.ok()) {
    std::fprintf(stderr, "figure grid failed: %s\n", grid.error().ToString().c_str());
    return false;
  }
  std::fprintf(stderr, "%s\n", grid_metrics.ToText().c_str());

  // Host throughput of the run, on stderr with the rest of the scheduler
  // telemetry (stdout tables stay byte-identical). Counted in the sched
  // domain: wall-clock facts, legitimately variable run to run, excluded
  // from the determinism diffs.
  uint64_t simulated_requests = 0;
  for (const GridPoint& point : points) {
    simulated_requests += static_cast<uint64_t>(point.config.trials) * point.workload.accesses;
  }
  obs::Registry::Global()
      .GetCounter("bench.simulated_requests", obs::Domain::kSched)
      .Add(simulated_requests);
  const double wall_s = grid_metrics.wall_ms / 1000.0;
  std::fprintf(stderr, "%s: %llu simulated requests in %.2f s wall (%.2f Mreq/s)\n",
               experiment, static_cast<unsigned long long>(simulated_requests), wall_s,
               wall_s > 0.0 ? static_cast<double>(simulated_requests) / wall_s / 1e6 : 0.0);

  // Per-shard throughput telemetry (sharded engine only): requests served by
  // each channel shard, summed over the whole grid in shard-plan order, and
  // the host-side rate that shard sustained. Sched-domain facts, so stderr —
  // the stdout tables stay byte-identical across thread counts and hosts.
  if (channels_per_shard >= 1) {
    std::vector<uint64_t> shard_totals;
    for (const RunMeasurement& measurement : *grid) {
      if (measurement.shard_requests.empty()) {
        continue;
      }
      if (shard_totals.empty()) {
        shard_totals.assign(measurement.shard_requests.size(), 0);
      }
      for (size_t shard = 0; shard < measurement.shard_requests.size(); ++shard) {
        shard_totals[shard] += measurement.shard_requests[shard];
      }
    }
    for (size_t shard = 0; shard < shard_totals.size(); ++shard) {
      obs::Registry::Global()
          .GetCounter("bench.shard" + std::to_string(shard) + ".requests",
                      obs::Domain::kSched)
          .Add(shard_totals[shard]);
      std::fprintf(stderr, "%s: shard%zu served %llu requests (%.2f Mreq/s)\n", experiment,
                   shard, static_cast<unsigned long long>(shard_totals[shard]),
                   wall_s > 0.0 ? static_cast<double>(shard_totals[shard]) / wall_s / 1e6
                                : 0.0);
    }
  }

  // Re-shape into per-variant rows, variant-major as the tables expect.
  std::vector<std::vector<RunMeasurement>> measurements(variants.size() + 1);
  for (size_t v = 0; v < variants.size() + 1; ++v) {
    for (size_t w = 0; w < workloads.size(); ++w) {
      measurements[v].push_back(std::move((*grid)[v * workloads.size() + w]));
    }
  }
  std::printf("\n");

  const bool throughput = workloads[0].metric == MetricKind::kThroughput;
  for (size_t v = 1; v <= variants.size(); ++v) {
    std::printf("%s-normalized %s for %s (positive = overhead; error bars 95%% CI):\n",
                baseline.label.c_str(), throughput ? "throughput loss" : "execution time",
                labels[v].c_str());
    std::vector<OverheadRow> rows;
    std::vector<double> ratios;
    for (size_t w = 0; w < workloads.size(); ++w) {
      const RunningStat& base_stat = throughput ? measurements[0][w].bandwidth_gibs
                                                : measurements[0][w].elapsed_ns;
      const RunningStat& var_stat =
          throughput ? measurements[v][w].bandwidth_gibs : measurements[v][w].elapsed_ns;
      rows.push_back(Normalize(workloads[w].name, base_stat, var_stat, throughput));
      ratios.push_back(1.0 + rows.back().mean_pct / 100.0);
    }
    OverheadRow geomean;
    geomean.name = "geomean";
    geomean.mean_pct = (GeometricMean(ratios) - 1.0) * 100.0;
    rows.push_back(geomean);
    PrintOverheadTable(throughput ? "tput loss" : "time ovh", rows);
    CsvReporter csv(experiment);
    for (size_t w = 0; w < workloads.size(); ++w) {
      (void)csv.Append({"variant", "workload", "overhead_pct", "ci95_pct"},
                       {labels[v], workloads[w].name, CsvNumber(rows[w].mean_pct),
                        CsvNumber(rows[w].ci_pct)});
    }
    std::printf("geomean |%s overhead| = %.3f%% — paper reports within +/-0.5%%\n\n",
                labels[v].c_str(), std::abs(geomean.mean_pct));
  }
  return true;
}

inline SilozConfig BaselineKernel() {
  SilozConfig config;
  config.enabled = false;
  return config;
}

inline SilozConfig SilozKernel(uint32_t rows_per_subarray = 1024) {
  SilozConfig config;
  config.rows_per_subarray = rows_per_subarray;
  return config;
}

}  // namespace bench
}  // namespace siloz

#endif  // SILOZ_BENCH_FIG_COMMON_H_
