// Shared driver for the performance figures (Figs 4-7): run a workload set
// under a baseline hypervisor configuration and one or more variants, print
// per-workload normalized overhead with 95% CIs and the geometric mean.
#ifndef SILOZ_BENCH_FIG_COMMON_H_
#define SILOZ_BENCH_FIG_COMMON_H_

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/sim/experiment.h"
#include "src/sim/report.h"
#include "src/workload/workloads.h"

namespace siloz {
namespace bench {

struct VariantSpec {
  std::string label;
  SilozConfig config;
};

// Runs every workload under `baseline` and each variant; prints one
// overhead table per variant (normalized to baseline) and geometric means.
// With SILOZ_RESULTS_DIR set, also appends CSV rows per (variant, workload).
// Returns false if any run failed.
inline bool RunFigure(const std::vector<WorkloadSpec>& workloads, const VariantSpec& baseline,
                      const std::vector<VariantSpec>& variants, uint32_t trials = 5,
                      uint64_t seed = 42, const char* experiment = "figure") {
  RunnerConfig runner;
  runner.trials = trials;
  runner.seed = seed;

  // Gather stats per (variant, workload); baseline first.
  std::vector<std::vector<RunMeasurement>> measurements(variants.size() + 1);
  std::vector<std::string> labels;
  labels.push_back(baseline.label);
  for (const VariantSpec& variant : variants) {
    labels.push_back(variant.label);
  }
  for (size_t v = 0; v < variants.size() + 1; ++v) {
    runner.hypervisor = (v == 0) ? baseline.config : variants[v - 1].config;
    for (const WorkloadSpec& workload : workloads) {
      Result<RunMeasurement> run = RunWorkload(runner, workload);
      if (!run.ok()) {
        std::fprintf(stderr, "%s/%s failed: %s\n", labels[v].c_str(), workload.name.c_str(),
                     run.error().ToString().c_str());
        return false;
      }
      measurements[v].push_back(std::move(*run));
      std::printf(".");
      std::fflush(stdout);
    }
  }
  std::printf("\n\n");

  const bool throughput = workloads[0].metric == MetricKind::kThroughput;
  for (size_t v = 1; v <= variants.size(); ++v) {
    std::printf("%s-normalized %s for %s (positive = overhead; error bars 95%% CI):\n",
                baseline.label.c_str(), throughput ? "throughput loss" : "execution time",
                labels[v].c_str());
    std::vector<OverheadRow> rows;
    std::vector<double> ratios;
    for (size_t w = 0; w < workloads.size(); ++w) {
      const RunningStat& base_stat = throughput ? measurements[0][w].bandwidth_gibs
                                                : measurements[0][w].elapsed_ns;
      const RunningStat& var_stat =
          throughput ? measurements[v][w].bandwidth_gibs : measurements[v][w].elapsed_ns;
      rows.push_back(Normalize(workloads[w].name, base_stat, var_stat, throughput));
      ratios.push_back(1.0 + rows.back().mean_pct / 100.0);
    }
    OverheadRow geomean;
    geomean.name = "geomean";
    geomean.mean_pct = (GeometricMean(ratios) - 1.0) * 100.0;
    rows.push_back(geomean);
    PrintOverheadTable(throughput ? "tput loss" : "time ovh", rows);
    CsvReporter csv(experiment);
    for (size_t w = 0; w < workloads.size(); ++w) {
      (void)csv.Append({"variant", "workload", "overhead_pct", "ci95_pct"},
                       {labels[v], workloads[w].name, CsvNumber(rows[w].mean_pct),
                        CsvNumber(rows[w].ci_pct)});
    }
    std::printf("geomean |%s overhead| = %.3f%% — paper reports within +/-0.5%%\n\n",
                labels[v].c_str(), std::abs(geomean.mean_pct));
  }
  return true;
}

inline SilozConfig BaselineKernel() {
  SilozConfig config;
  config.enabled = false;
  return config;
}

inline SilozConfig SilozKernel(uint32_t rows_per_subarray = 1024) {
  SilozConfig config;
  config.rows_per_subarray = rows_per_subarray;
  return config;
}

}  // namespace bench
}  // namespace siloz

#endif  // SILOZ_BENCH_FIG_COMMON_H_
