// Regenerates Table 2: the evaluation platform configuration, plus every
// quantity the paper derives from it — completing the "one binary per
// table/figure" inventory (the other benches print the one-line summary).
#include <cstdio>

#include "bench/bench_util.h"
#include "src/addr/subarray_group.h"
#include "src/base/units.h"
#include "src/ept/phys_memory.h"
#include "src/siloz/hypervisor.h"

int main() {
  using namespace siloz;
  const DramGeometry geometry;
  bench::PrintHeader("Table 2: baseline system configuration", geometry);

  std::printf("%-44s | %s\n", "parameter", "value");
  bench::PrintRule();
  std::printf("%-44s | %s\n", "Host machine",
              "dual-socket Skylake-class (Xeon Gold 6230 analogue)");
  std::printf("%-44s | %u x %u GiB DDR4 2Rx4 DIMM(s)/socket\n", "Memory",
              geometry.channels_per_socket * geometry.dimms_per_channel,
              static_cast<uint32_t>((geometry.socket_bytes() >> 30) /
                                    (geometry.channels_per_socket * geometry.dimms_per_channel)));
  std::printf("%-44s | %u\n", "Banks per socket (physical node)", geometry.banks_per_socket());
  std::printf("%-44s | %u x %lu KiB\n", "Rows per subarray x row size",
              geometry.rows_per_subarray, static_cast<unsigned long>(geometry.row_bytes >> 10));
  std::printf("%-44s | %lu GiB\n", "DRAM per socket",
              static_cast<unsigned long>(geometry.socket_bytes() >> 30));
  std::printf("%-44s | %u per bank\n", "Subarrays", geometry.subarrays_per_bank());
  std::printf("%-44s | %lu MiB (= banks x rows/subarray x row)\n", "Subarray group size",
              static_cast<unsigned long>(geometry.subarray_group_bytes() >> 20));
  std::printf("%-44s | %lu MiB (16 row groups, the §4.2 chunk)\n", "A/B interleave chunk",
              static_cast<unsigned long>(16 * geometry.row_group_bytes() >> 20));
  std::printf("%-44s | %s\n", "Host kernel (modeled)",
              "Linux/KVM 5.15-style mm: buddy, NUMA, cgroups");
  std::printf("%-44s | %s\n", "Guest backing",
              "static, pinned, 2 MiB huge pages, no sharing");
  bench::PrintRule();

  // Derived check: boot a Siloz instance and print what it actually builds.
  SkylakeDecoder decoder(geometry);
  FlatPhysMemory memory;
  SilozHypervisor hypervisor(decoder, memory, SilozConfig{});
  if (!hypervisor.Boot().ok()) {
    return 1;
  }
  std::printf("Booted Siloz on this platform: %zu logical nodes (%zu host + %zu guest),\n"
              "EPT block %lu KiB/socket, %zu EPT pool pages/socket.\n",
              hypervisor.nodes().node_count(),
              hypervisor.nodes().NodesOfKind(NodeKind::kHostReserved).size(),
              hypervisor.nodes().NodesOfKind(NodeKind::kGuestReserved).size(),
              static_cast<unsigned long>(hypervisor.ept_reserved_bytes() / 2 >> 10),
              hypervisor.ept_pool_free(0));
  return 0;
}
