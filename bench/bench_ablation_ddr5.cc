// Ablation A8 (§8.2): Siloz on DDR5-generation platforms.
//
// Three effects the paper predicts, measured on the model:
//  1. More banks per rank -> proportionally larger subarray groups
//     (coarser provisioning granularity, offsettable with SNC).
//  2. DDR5 undoes mirroring/inversion at each device, so non-power-of-2
//     subarray sizes are managed natively — no artificial groups, no guard
//     overhead.
//  3. Containment works identically (the silicon isolation argument is
//     unchanged).
#include <cstdio>

#include "bench/bench_util.h"
#include "src/attack/blacksmith.h"
#include "src/base/units.h"
#include "src/sim/machine.h"
#include "src/siloz/hypervisor.h"

int main() {
  using namespace siloz;
  const DramGeometry ddr4;
  const DramGeometry ddr5 = Ddr5Geometry();
  bench::PrintHeader("Ablation A8: DDR5 platform effects (§8.2)", ddr5);

  // --- 1. Group-size scaling ---
  std::printf("[1] Subarray-group size vs platform generation:\n\n");
  std::printf("%-26s | %10s | %12s | %12s\n", "platform", "banks/node", "group size",
              "with SNC-2");
  bench::PrintRule();
  for (const auto* entry : {&ddr4, &ddr5}) {
    SkylakeDecoder flat(*entry);
    SncDecoder snc(*entry, 2);
    SubarrayGroupMap flat_map = *SubarrayGroupMap::Build(flat, 1024);
    SubarrayGroupMap snc_map = *SubarrayGroupMap::Build(snc, 1024);
    std::printf("%-26s | %10u | %9lu MiB | %9lu MiB\n",
                entry == &ddr4 ? "DDR4 (16 banks/rank)" : "DDR5 (32 banks/rank)",
                entry->banks_per_socket(),
                static_cast<unsigned long>(flat_map.group_bytes() >> 20),
                static_cast<unsigned long>(snc_map.group_bytes() >> 20));
  }
  bench::PrintRule();

  // --- 2. Non-power-of-2 sizes without artificial groups ---
  DramGeometry odd = ddr5;
  odd.rows_per_bank = 86016;  // divisible by 768
  odd.rows_per_subarray = 768;
  SkylakeDecoder odd_decoder(odd);
  FlatPhysMemory memory;
  SilozConfig native;
  native.rows_per_subarray = 768;
  native.uniform_internal_addressing = true;
  SilozHypervisor hypervisor(odd_decoder, memory, native);
  if (!hypervisor.Boot().ok()) {
    return 1;
  }
  std::printf("\n[2] 768-row subarrays on DDR5: managed %s, guard overhead %lu bytes\n"
              "    (DDR4 would round to 1024-row artificial groups at 0.78%% of DRAM).\n",
              hypervisor.using_artificial_groups() ? "with ARTIFICIAL groups (?)" : "natively",
              static_cast<unsigned long>(hypervisor.artificial_guard_bytes()));

  // --- 3. Containment on the DDR5 fault model ---
  MachineConfig machine_config;
  machine_config.geometry = ddr5;
  machine_config.fault_tracking = true;
  DimmProfile profile;
  profile.remap = Ddr5RemapConfig();
  profile.disturbance.threshold_mean = 2500.0;
  profile.disturbance.threshold_spread = 0.15;
  profile.trr.enabled = true;
  profile.trr.act_threshold = 400;
  machine_config.dimm_profiles = {profile};
  Machine machine(machine_config);
  SilozHypervisor ddr5_hypervisor(machine.decoder(), machine.phys_memory(), SilozConfig{});
  if (!ddr5_hypervisor.Boot().ok()) {
    return 1;
  }
  Result<VmId> vm = ddr5_hypervisor.CreateVm({.name = "attacker", .memory_bytes = 6_GiB});
  if (!vm.ok()) {
    return 1;
  }
  std::vector<PhysRange> pinned;
  for (uint32_t group : (*ddr5_hypervisor.GetVm(*vm))->guest_groups()) {
    for (const PhysRange& range : ddr5_hypervisor.group_map().RangesOf(group)) {
      pinned.push_back(range);
    }
  }
  BlacksmithConfig fuzz;
  fuzz.patterns = 12;
  fuzz.rounds = 1500;
  fuzz.min_pairs = 8;
  fuzz.max_pairs = 16;
  const FuzzReport report = BlacksmithFuzzer(fuzz).Run(machine, pinned);
  const FlipCensus census = ClassifyFlips(report.flips, ddr5_hypervisor.group_map(), pinned);
  std::printf("\n[3] Blacksmith on DDR5: %zu flips, %lu inside / %lu outside the\n"
              "    attacker's groups => containment %s.\n",
              report.flips.size(), static_cast<unsigned long>(census.inside),
              static_cast<unsigned long>(census.outside),
              census.outside == 0 && census.inside > 0 ? "HOLDS" : "FAILS");

  const bool ok = !hypervisor.using_artificial_groups() && census.outside == 0 &&
                  census.inside > 0;
  std::printf("\nResult: %s\n", ok ? "REPRODUCED" : "MISMATCH");
  return ok ? 0 : 1;
}
