// Regenerates Figure 4 (§7.2): baseline-normalized execution time of Siloz
// across redis+YCSB A-F, Hadoop terasort, SPEC CPU 2017, and PARSEC 3.0.
//
// Expected shape (paper): every workload within noise of baseline; geometric
// mean difference under 0.5%. Siloz only changes *where* boot-time
// allocations land — subarray groups preserve bank-level parallelism — so
// the timing model produces the same null result mechanistically.
#include "bench/fig_common.h"

int main(int argc, char** argv) {
  using namespace siloz;
  const uint32_t threads = bench::ThreadsFromArgs(argc, argv);  // 0 = auto-detect
  const uint32_t channels_per_shard = bench::ChannelsPerShardFromArgs(argc, argv);
  const uint32_t bank_groups_per_queue = bench::BankGroupsPerQueueFromArgs(argc, argv);
  const std::string platform = bench::PlatformFromArgs(argc, argv);
  bench::EnableObsFromArgs(argc, argv);
  bench::PrintHeader("Figure 4: baseline-normalized execution time (Siloz vs Linux/KVM)",
                     bench::PlatformHeaderGeometry(platform), platform);
  std::printf("Workload models replay memory-access traces with each suite's\n"
              "locality/mix/MLP profile; 5 trials per point (see DESIGN.md).\n\n");
  const bool ok = bench::RunFigure(ExecutionTimeWorkloads(),
                                   {"baseline", bench::BaselineKernel()},
                                   {{"siloz", bench::SilozKernel()}}, 5, 42, "fig4_exec_time",
                                   threads, channels_per_shard, platform,
                                   bank_groups_per_queue);
  return (bench::WriteObsFromArgs(argc, argv) && ok) ? 0 : 1;
}
