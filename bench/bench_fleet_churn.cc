// Fleet churn: the §7 operational costs of subarray-grouped placement under
// a realistic arrival/departure stream. Sustains thousands of concurrent VMs
// on the full 8-socket fleet platform, compares the three admission policies
// head to head (rejections, queueing, abandonment, exhaustion events), and
// quantifies what the defrag loop buys: migrations performed and stranded
// bytes recovered. The model table on stdout must be byte-identical for any
// --threads value; the run ends with a hard self-check at 1/2/8 workers and
// exits nonzero on any divergence, leak, or failed drain.
#include <cstdio>
#include <string>

#include "bench/bench_util.h"
#include "src/sim/fleet.h"
#include "src/sim/report.h"

int main(int argc, char** argv) {
  using namespace siloz;

  FleetConfig base;
  base.threads = bench::ThreadsFromArgs(argc, argv);
  base.duration_s = 200.0;
  base.arrivals_per_s = 20.0;  // ~4000 arrivals, ~2500 concurrent at steady state
  base.min_lifetime_s = 60.0;
  base.max_lifetime_s = 240.0;

  bench::PrintHeader("Fleet churn: admission policies and defrag recovery (§7)",
                     base.geometry);
  std::printf("%-8s | %8s | %7s | %8s | %9s | %8s | %10s | %14s | %9s | %16s | %s\n",
              "policy", "admitted", "queued", "rejected", "abandoned", "exhaust",
              "migrations", "recovered", "peak VMs", "peak stranded", "drain");
  bench::PrintRule();

  CsvReporter csv("fleet_churn");
  bool ok = true;
  for (AdmissionPolicy policy :
       {AdmissionPolicy::kReject, AdmissionPolicy::kQueue, AdmissionPolicy::kDefrag}) {
    FleetConfig config = base;
    config.policy = policy;
    const Result<FleetReport> report = RunFleetChurn(config);
    if (!report.ok()) {
      std::fprintf(stderr, "fleet churn (%s) failed: %s\n", AdmissionPolicyName(policy),
                   report.error().ToString().c_str());
      return 1;
    }
    std::printf("%-8s | %8llu | %7llu | %8llu | %9llu | %8llu | %10llu | %12llu B | %9llu | %14llu B | %s\n",
                AdmissionPolicyName(policy),
                static_cast<unsigned long long>(report->admitted),
                static_cast<unsigned long long>(report->queued_admits),
                static_cast<unsigned long long>(report->rejected),
                static_cast<unsigned long long>(report->abandoned),
                static_cast<unsigned long long>(report->exhaustion_events),
                static_cast<unsigned long long>(report->migrations),
                static_cast<unsigned long long>(report->recovered_bytes),
                static_cast<unsigned long long>(report->peak_concurrency),
                static_cast<unsigned long long>(report->peak_stranded_bytes),
                report->drained_clean ? "clean" : "LEAK");
    (void)csv.Append(
        {"policy", "admitted", "queued_admits", "rejected", "abandoned",
         "exhaustion_events", "migrations", "recovered_bytes", "peak_concurrency",
         "peak_stranded_bytes", "drained_clean"},
        {AdmissionPolicyName(policy), CsvNumber(static_cast<double>(report->admitted)),
         CsvNumber(static_cast<double>(report->queued_admits)),
         CsvNumber(static_cast<double>(report->rejected)),
         CsvNumber(static_cast<double>(report->abandoned)),
         CsvNumber(static_cast<double>(report->exhaustion_events)),
         CsvNumber(static_cast<double>(report->migrations)),
         CsvNumber(static_cast<double>(report->recovered_bytes)),
         CsvNumber(static_cast<double>(report->peak_concurrency)),
         CsvNumber(static_cast<double>(report->peak_stranded_bytes)),
         report->drained_clean ? "1" : "0"});
    if (!report->drained_clean) {
      std::fprintf(stderr, "fleet churn (%s): drain diff:\n%s", AdmissionPolicyName(policy),
                   report->drain_diff.c_str());
      ok = false;
    }
    if (policy == AdmissionPolicy::kDefrag &&
        (report->migrations == 0 || report->recovered_bytes == 0)) {
      std::fprintf(stderr, "fleet churn (defrag): expected the defrag loop to recover "
                           "capacity, got %llu migrations / %llu bytes\n",
                   static_cast<unsigned long long>(report->migrations),
                   static_cast<unsigned long long>(report->recovered_bytes));
      ok = false;
    }
  }

  // Alloc/teardown/migrate tails from the runs above — host-clock facts, so
  // stderr with the rest of the scheduler telemetry.
  std::fprintf(stderr, "%s", FleetReport::LatencyText().c_str());

  // Determinism self-check: the defrag model output, bit for bit, at 1, 2,
  // and 8 workers. A shorter trace keeps the three extra runs cheap — what
  // matters is that defrag migrations and epoch-boundary accounting happen,
  // not how long they run.
  FleetConfig identity = base;
  identity.policy = AdmissionPolicy::kDefrag;
  identity.duration_s = 100.0;
  identity.threads = 1;
  const Result<FleetReport> reference = RunFleetChurn(identity);
  if (!reference.ok()) {
    std::fprintf(stderr, "identity reference run failed: %s\n",
                 reference.error().ToString().c_str());
    return 1;
  }
  for (uint32_t threads : {2u, 8u}) {
    identity.threads = threads;
    const Result<FleetReport> candidate = RunFleetChurn(identity);
    if (!candidate.ok()) {
      std::fprintf(stderr, "identity run (--threads %u) failed: %s\n", threads,
                   candidate.error().ToString().c_str());
      return 1;
    }
    if (candidate->ModelText() != reference->ModelText() ||
        candidate->ModelJson() != reference->ModelJson()) {
      std::fprintf(stderr,
                   "DETERMINISM FAILURE: --threads %u model output diverges from "
                   "--threads 1\n--- threads 1 ---\n%s--- threads %u ---\n%s",
                   threads, reference->ModelText().c_str(), threads,
                   candidate->ModelText().c_str());
      ok = false;
    }
  }
  if (ok) {
    std::printf("\nfleet: model output bit-identical for --threads 1/2/8; all drains clean\n");
  }
  return ok ? 0 : 1;
}
