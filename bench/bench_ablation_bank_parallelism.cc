// Ablation A1 (§4.1): why subarray *groups* rather than single subarrays.
//
// The paper motivates subarray groups by the cost of losing bank-level
// parallelism: interleaving-friendly placement is worth >18% execution time
// for some workloads. We compare three placements for the same workloads:
//  - skylake interleave (what both baseline and Siloz use),
//  - SNC-2 (half the banks per page, §8.1),
//  - linear (a page confined to a single bank: the single-subarray
//    strawman's access pattern).
#include <cstdio>

#include "bench/bench_util.h"
#include "src/sim/experiment.h"
#include "src/workload/workloads.h"

int main() {
  using namespace siloz;
  bench::PrintHeader("Ablation A1: value of bank-level parallelism (§4.1)", DramGeometry{});
  std::printf("Execution time normalized to the full skylake interleave.\n"
              "Paper: single-subarray placement is impractical; bank parallelism\n"
              "is worth >18%% for some workloads.\n\n");

  const WorkloadSpec workloads[] = {
      *FindWorkload("mlc-stream"), *FindWorkload("mlc-reads"), *FindWorkload("terasort"),
      *FindWorkload("redis-a"),    *FindWorkload("spec17"),
  };
  const struct {
    const char* label;
    DecoderKind decoder;
  } placements[] = {
      {"skylake (192 banks/page)", DecoderKind::kSkylake},
      {"snc-2   ( 96 banks/page)", DecoderKind::kSnc2},
      {"linear  (  1 bank /page)", DecoderKind::kLinear},
  };

  std::printf("%-12s", "workload");
  for (const auto& placement : placements) {
    std::printf(" | %-26s", placement.label);
  }
  std::printf("\n");
  bench::PrintRule();

  bool saw_big_penalty = false;
  for (const WorkloadSpec& workload : workloads) {
    double base_elapsed = 0.0;
    std::printf("%-12s", workload.name.c_str());
    for (const auto& placement : placements) {
      RunnerConfig runner;
      runner.decoder = placement.decoder;
      runner.trials = 3;
      runner.hypervisor.enabled = placement.decoder != DecoderKind::kLinear;
      Result<RunMeasurement> run = RunWorkload(runner, workload);
      if (!run.ok()) {
        std::fprintf(stderr, "\n%s failed: %s\n", workload.name.c_str(),
                     run.error().ToString().c_str());
        return 1;
      }
      const double elapsed = run->elapsed_ns.mean();
      if (placement.decoder == DecoderKind::kSkylake) {
        base_elapsed = elapsed;
        std::printf(" | %11.2f ms (1.00x)   ", elapsed / 1e6);
      } else {
        const double slowdown = elapsed / base_elapsed;
        std::printf(" | %11.2f ms (%.2fx)   ", elapsed / 1e6, slowdown);
        if (placement.decoder == DecoderKind::kLinear && slowdown > 1.18) {
          saw_big_penalty = true;
        }
      }
    }
    std::printf("\n");
  }
  bench::PrintRule();
  std::printf("Siloz's subarray groups keep the skylake column; a single-subarray\n"
              "design would live in the linear column. >18%% penalty observed: %s\n",
              saw_big_penalty ? "yes" : "NO");
  return saw_big_penalty ? 0 : 1;
}
