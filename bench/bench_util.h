// Shared output helpers for the experiment benches.
//
// Every bench prints: the Table 2 platform header, then the rows/series of
// the paper artifact it regenerates, in a fixed-width table so runs can be
// diffed. Overheads are reported as mean % with 95% CI half-widths, matching
// the error bars of Figs 4-7.
#ifndef SILOZ_BENCH_BENCH_UTIL_H_
#define SILOZ_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "src/base/stats.h"
#include "src/dram/geometry.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace siloz {
namespace bench {

// Parses the shared `--threads N` bench knob: 0 (the default) resolves to
// $SILOZ_THREADS or the hardware concurrency inside the pool; 1 forces the
// legacy serial path. Results are bit-identical either way (DESIGN.md §8).
inline uint32_t ThreadsFromArgs(int argc, char** argv) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--threads") == 0) {
      return static_cast<uint32_t>(std::strtoul(argv[i + 1], nullptr, 10));
    }
  }
  return 0;
}

// Parses the `--channels-per-shard N` model knob (DESIGN.md §13): 0 selects
// the serial reference engine, N >= 1 the sharded engine with N channels per
// command-queue shard. Unlike --threads this is part of the model
// configuration — reported times legitimately depend on it — so benches
// default it to 1 (one shard per channel, the realistic controller shape)
// and print the value with their telemetry.
inline uint32_t ChannelsPerShardFromArgs(int argc, char** argv) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--channels-per-shard") == 0) {
      return static_cast<uint32_t>(std::strtoul(argv[i + 1], nullptr, 10));
    }
  }
  return 1;
}

// Parses the `--bank-groups-per-queue N` model knob (DESIGN.md §15): 0
// keeps one completion window per channel shard (the PR7 shape), N >= 1
// splits each shard into per-bank-group command queues of N bank groups
// apiece. Model configuration like --channels-per-shard: completion times
// depend on it (invariant censuses never do), so benches default it to 1 —
// independent queues per bank group, the realistic controller front-end —
// and print the value with their telemetry.
inline uint32_t BankGroupsPerQueueFromArgs(int argc, char** argv) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--bank-groups-per-queue") == 0) {
      return static_cast<uint32_t>(std::strtoul(argv[i + 1], nullptr, 10));
    }
  }
  return 1;
}

inline std::string StringFromArgs(int argc, char** argv, const char* flag) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) {
      return argv[i + 1];
    }
  }
  return "";
}

// Parses the shared `--platform NAME` model knob: selects a platform from
// the PlatformDecoder registry (src/addr/platform.h) — decoder family,
// geometry, DDR-generation semantics, default remap/TRR. Empty (the
// default) keeps the bench's own configuration, i.e. the Table 2 Skylake
// server. Like --channels-per-shard this is model configuration: reported
// numbers legitimately depend on it, so benches print it in their header.
inline std::string PlatformFromArgs(int argc, char** argv) {
  return StringFromArgs(argc, argv, "--platform");
}

// Shared `--metrics-out FILE` / `--trace-out FILE` observability knobs.
// EnableObsFromArgs turns the tracer on (call before the runs);
// WriteObsFromArgs writes the requested files (call after the runs, when
// every simulated object has been destroyed and its counters flushed).
// Neither touches stdout, so bench tables stay byte-identical.
inline void EnableObsFromArgs(int argc, char** argv) {
  if (!StringFromArgs(argc, argv, "--trace-out").empty()) {
    obs::Tracer::Global().Enable();
  }
}

inline bool WriteObsFromArgs(int argc, char** argv) {
  bool ok = true;
  const std::string metrics_out = StringFromArgs(argc, argv, "--metrics-out");
  if (!metrics_out.empty()) {
    ok = obs::WriteMetricsJson(metrics_out) && ok;
  }
  const std::string trace_out = StringFromArgs(argc, argv, "--trace-out");
  if (!trace_out.empty()) {
    ok = obs::WriteTraceJson(trace_out) && ok;
  }
  return ok;
}

inline void PrintHeader(const char* artifact, const DramGeometry& geometry,
                        const std::string& platform = std::string()) {
  std::printf("================================================================\n");
  std::printf("%s\n", artifact);
  std::printf("Platform (%s): %s\n", platform.empty() ? "Table 2" : platform.c_str(),
              geometry.ToString().c_str());
  std::printf("================================================================\n");
}

inline void PrintRule() {
  std::printf("----------------------------------------------------------------\n");
}

// One bar of a Fig 4-7 style series: overhead % relative to a baseline.
struct OverheadRow {
  std::string name;
  double mean_pct = 0.0;
  double ci_pct = 0.0;
};

inline void PrintOverheadTable(const char* metric, const std::vector<OverheadRow>& rows) {
  std::printf("%-12s | %10s | %8s\n", "workload", metric, "95% CI");
  PrintRule();
  for (const OverheadRow& row : rows) {
    std::printf("%-12s | %+9.3f%% | +/-%.3f%%\n", row.name.c_str(), row.mean_pct, row.ci_pct);
  }
  PrintRule();
}

// Normalized overhead of `variant` relative to `baseline` in percent, with a
// conservative CI combining both runs' relative CIs.
inline OverheadRow Normalize(const std::string& name, const RunningStat& baseline,
                             const RunningStat& variant, bool higher_is_better = false) {
  OverheadRow row;
  row.name = name;
  const double ratio = variant.mean() / baseline.mean();
  row.mean_pct = (higher_is_better ? (1.0 / ratio) - 1.0 : ratio - 1.0) * 100.0;
  const double rel_ci = baseline.ci95_halfwidth() / baseline.mean() +
                        variant.ci95_halfwidth() / variant.mean();
  row.ci_pct = rel_ci * 100.0;
  return row;
}

}  // namespace bench
}  // namespace siloz

#endif  // SILOZ_BENCH_BENCH_UTIL_H_
