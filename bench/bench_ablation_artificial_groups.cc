// Ablation A7 (§6): handling media-to-internal mappings for arbitrary
// subarray sizes.
//
// Three results from §6, demonstrated on the implementation:
//  1. Soundness table: which subarray sizes keep isolation under DDR4
//     mirroring/inversion (and vendor scrambling) without extra measures.
//  2. Presuming a smaller-than-true subarray size (Siloz-512 on 1024-row
//     silicon) silently BREAKS containment — artificial groups give
//     management granularity, not security (§7.4's caveat).
//  3. Artificial groups with boundary guard rows restore containment for a
//     non-power-of-2 silicon size, at the measured DRAM cost.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/attack/blacksmith.h"
#include "src/base/units.h"
#include "src/sim/machine.h"
#include "src/siloz/hypervisor.h"

namespace {

siloz::MachineConfig FaultConfig() {
  using namespace siloz;
  MachineConfig config;
  config.fault_tracking = true;
  DimmProfile profile;
  profile.disturbance.threshold_mean = 2500.0;
  profile.disturbance.threshold_spread = 0.15;
  profile.trr.enabled = false;
  config.dimm_profiles = {profile};
  return config;
}

// Hammers the top edge of `group` and reports whether any flip landed
// outside it.
bool EdgeHammerEscapes(siloz::Machine& machine, siloz::SilozHypervisor& hypervisor,
                       uint32_t group) {
  using namespace siloz;
  const PhysRange range = hypervisor.group_map().RangesOf(group)[0];
  const uint32_t rows = hypervisor.effective_rows_per_subarray();
  const uint32_t top_row = hypervisor.group_map().IndexInCluster(group) * rows + rows - 1;
  const MediaAddress base = *machine.decoder().PhysToMedia(range.begin);
  MediaAddress edge = base;
  edge.row = top_row;
  MediaAddress decoy = base;
  decoy.row = top_row - 30;
  const uint64_t aggressors[] = {*machine.decoder().MediaToPhys(edge),
                                 *machine.decoder().MediaToPhys(decoy)};
  HammerPhysAddresses(machine, aggressors, 15000);
  bool escaped = false;
  for (const PhysFlip& flip : machine.DrainFlips()) {
    bool inside = false;
    for (const PhysRange& r : hypervisor.group_map().RangesOf(group)) {
      inside |= r.Contains(flip.phys);
    }
    escaped |= !inside;
  }
  return escaped;
}

}  // namespace

int main() {
  using namespace siloz;
  bench::PrintHeader("Ablation A7: artificial subarray groups and remap soundness (§6)",
                     DramGeometry{});

  // --- 1. Soundness table ---
  std::printf("[1] Transform soundness (mirroring+inversion; 'scr' adds vendor\n"
              "    scrambling). 'yes' = media subarrays map onto whole internal\n"
              "    subarrays, isolation holds with zero overhead:\n\n");
  std::printf("%-8s | %-10s | %-10s\n", "rows", "std", "std+scr");
  bench::PrintRule();
  DramGeometry probe;
  probe.rows_per_bank = 129024;  // divisible by all probed sizes
  for (uint32_t rows : {512u, 768u, 1024u, 1344u, 1536u, 2048u}) {
    RemapConfig std_cfg;
    RemapConfig scr_cfg;
    scr_cfg.vendor_scrambling = true;
    std::printf("%-8u | %-10s | %-10s\n", rows,
                TransformsPreserveSubarrayBlocks(probe, std_cfg, rows) ? "yes" : "NO",
                TransformsPreserveSubarrayBlocks(probe, scr_cfg, rows) ? "yes" : "NO");
  }
  bench::PrintRule();

  // --- 2. Mispresumed (too small) subarray size breaks containment ---
  bool small_breaks = false;
  {
    Machine machine(FaultConfig());  // silicon truth: 1024-row subarrays
    SilozConfig config;
    config.rows_per_subarray = 512;
    SilozHypervisor hypervisor(machine.decoder(), machine.phys_memory(), config);
    if (!hypervisor.Boot().ok()) {
      return 1;
    }
    small_breaks = EdgeHammerEscapes(machine, hypervisor, /*group=*/2);
  }
  std::printf("\n[2] Siloz-512 presumed on 1024-row silicon: edge hammering escapes\n"
              "    the presumed group: %s (paper §7.4: artificial groups do not\n"
              "    provide security without further measures)\n",
              small_breaks ? "YES" : "no");

  // --- 3. Rounding UP to artificial groups on true non-power-of-2 silicon:
  // guards are load-bearing. Silicon: 768-row subarrays (rows_per_bank
  // adjusted so both 768 and the 1024-row artificial groups divide it).
  // Artificial boundary 2048 does not coincide with a silicon boundary, so
  // hammering near it crosses in internal space; the boundary guard rows
  // (and their B-side inversion images) must absorb every such flip.
  auto run_rounded = [&](uint32_t guard_rows, uint64_t* guard_cost) {
    MachineConfig machine_config = FaultConfig();
    machine_config.geometry.rows_per_bank = 129024;
    machine_config.geometry.rows_per_subarray = 768;  // silicon truth
    Machine machine(machine_config);
    SilozConfig config;
    config.rows_per_subarray = 768;  // rounds up to 1024 artificial groups
    config.artificial_boundary_guard_rows = guard_rows;
    SilozHypervisor hypervisor(machine.decoder(), machine.phys_memory(), config);
    if (Status boot = hypervisor.Boot(); !boot.ok()) {
      std::fprintf(stderr, "boot: %s\n", boot.error().ToString().c_str());
      return false;  // treated as escape
    }
    *guard_cost = hypervisor.artificial_guard_bytes();
    // Aggressors whose internal rows sit just below the artificial boundary
    // at internal row 2048, on both half-row sides: media 2047 (A side) and
    // media 2047^0x3F8 = 1031 (B side image), each paired with a decoy.
    const uint32_t group = 1;  // artificial group rows [1024, 2048)
    const PhysRange range = hypervisor.group_map().RangesOf(group)[0];
    const MediaAddress base = *machine.decoder().PhysToMedia(range.begin);
    std::vector<uint64_t> aggressors;
    for (uint32_t row : {2047u, 2017u, 1031u, 1061u}) {
      MediaAddress media = base;
      media.row = row;
      aggressors.push_back(*machine.decoder().MediaToPhys(media));
    }
    HammerPhysAddresses(machine, {aggressors.data(), aggressors.size()}, 15000);

    // A flip is harmful if it lands in a *usable* row outside group 1:
    // offlined guard rows (offsets {0..3} and their inversion images
    // {1016..1019} in each group) hold no data.
    bool harmful_escape = false;
    for (const PhysFlip& flip : machine.DrainFlips()) {
      bool inside = false;
      for (const PhysRange& r : hypervisor.group_map().RangesOf(group)) {
        inside |= r.Contains(flip.phys);
      }
      if (inside) {
        continue;
      }
      const uint32_t offset = flip.media.row % 1024;
      const bool in_guard_row =
          guard_rows > 0 && (offset < guard_rows || (offset >= 1016 && offset < 1016 + guard_rows));
      harmful_escape |= !in_guard_row;
    }
    return !harmful_escape;
  };

  uint64_t guard_cost = 0;
  const bool rounded_contained = run_rounded(4, &guard_cost);
  std::printf("\n[3] 768-row silicon, presumed 768 -> 1024-row artificial groups with\n"
              "    n=4 boundary guards (+B-side images, %.2f%% of DRAM):\n"
              "    boundary hammering contained to guards: %s\n",
              100.0 * static_cast<double>(guard_cost) /
                  static_cast<double>(192ull * 129024 * 8192 * 2),
              rounded_contained ? "yes" : "NO");

  uint64_t no_guard_cost = 0;
  const bool unguarded_contained = run_rounded(0, &no_guard_cost);
  std::printf("\n[4] Same silicon, artificial groups WITHOUT boundary guards:\n"
              "    usable-row escape observed: %s (guards are load-bearing)\n",
              unguarded_contained ? "no (?)" : "YES");

  const bool reproduced = small_breaks && rounded_contained && !unguarded_contained;
  std::printf("\nResult: %s\n", reproduced ? "REPRODUCED" : "MISMATCH");
  return reproduced ? 0 : 1;
}
