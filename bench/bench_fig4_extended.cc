// Extended Figure 4: per-benchmark breakdown behind the SPEC CPU 2017 and
// PARSEC 3.0 suite aggregates of Fig 4.
//
// The paper reports suite-level bars; this companion runs the individual
// benchmark profiles (spanning cache-resident to memory-thrashing
// behaviour) to show the null result is not an averaging artifact: every
// individual benchmark is within noise of baseline under Siloz.
#include "bench/fig_common.h"

int main(int argc, char** argv) {
  using namespace siloz;
  const uint32_t threads = bench::ThreadsFromArgs(argc, argv);  // 0 = auto-detect
  const uint32_t channels_per_shard = bench::ChannelsPerShardFromArgs(argc, argv);
  const uint32_t bank_groups_per_queue = bench::BankGroupsPerQueueFromArgs(argc, argv);
  const std::string platform = bench::PlatformFromArgs(argc, argv);
  bench::EnableObsFromArgs(argc, argv);
  bench::PrintHeader("Figure 4 (extended): per-benchmark execution time, Siloz vs baseline",
                     bench::PlatformHeaderGeometry(platform), platform);
  std::printf("SPEC CPU 2017 subset:\n\n");
  std::vector<WorkloadSpec> spec = SpecCpuWorkloads();
  bool ok = bench::RunFigure(spec, {"baseline", bench::BaselineKernel()},
                             {{"siloz", bench::SilozKernel()}}, 3, 42, "fig4ext_spec", threads,
                             channels_per_shard, platform, bank_groups_per_queue);
  std::printf("PARSEC 3.0 subset:\n\n");
  std::vector<WorkloadSpec> parsec = ParsecWorkloads();
  ok = bench::RunFigure(parsec, {"baseline", bench::BaselineKernel()},
                        {{"siloz", bench::SilozKernel()}}, 3, 42, "fig4ext_parsec",
                        threads, channels_per_shard, platform, bank_groups_per_queue) &&
       ok;
  return (bench::WriteObsFromArgs(argc, argv) && ok) ? 0 : 1;
}
