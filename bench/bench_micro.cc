// Microbenchmarks (google-benchmark) for the hot paths of the library:
// address decode, subarray-group lookup, controller timing, disturbance
// bookkeeping, ECC, buddy allocation, EPT walks. These are the operations
// that bound simulation throughput (and, for the decode paths, model the
// cost Siloz pays once at boot).
#include <benchmark/benchmark.h>

#include "src/addr/decoder.h"
#include "src/addr/subarray_group.h"
#include "src/base/rng.h"
#include "src/dram/device.h"
#include "src/dram/ecc.h"
#include "src/ept/ept.h"
#include "src/ept/phys_memory.h"
#include "src/hostmem/buddy.h"
#include "src/memctl/controller.h"

namespace siloz {
namespace {

const DramGeometry& Geometry() {
  static const DramGeometry geometry;
  return geometry;
}

void BM_SkylakePhysToMedia(benchmark::State& state) {
  SkylakeDecoder decoder(Geometry());
  Rng rng(1);
  uint64_t phys = rng.NextBelow(Geometry().total_bytes());
  for (auto _ : state) {
    benchmark::DoNotOptimize(decoder.PhysToMedia(phys));
    phys = (phys + 4096) % Geometry().total_bytes();
  }
}
BENCHMARK(BM_SkylakePhysToMedia);

void BM_SkylakeRoundTrip(benchmark::State& state) {
  SkylakeDecoder decoder(Geometry());
  uint64_t phys = 12345 * 64;
  for (auto _ : state) {
    benchmark::DoNotOptimize(decoder.MediaToPhys(*decoder.PhysToMedia(phys)));
    phys = (phys + 64) % Geometry().total_bytes();
  }
}
BENCHMARK(BM_SkylakeRoundTrip);

void BM_SubarrayGroupMapBuild(benchmark::State& state) {
  // The boot-time computation of §5.3 over the full 384 GiB machine.
  SkylakeDecoder decoder(Geometry());
  for (auto _ : state) {
    benchmark::DoNotOptimize(SubarrayGroupMap::Build(decoder, 1024));
  }
}
BENCHMARK(BM_SubarrayGroupMapBuild)->Unit(benchmark::kMillisecond);

void BM_GroupOfPhys(benchmark::State& state) {
  SkylakeDecoder decoder(Geometry());
  SubarrayGroupMap map = *SubarrayGroupMap::Build(decoder, 1024);
  uint64_t phys = 777 * 4096;
  for (auto _ : state) {
    benchmark::DoNotOptimize(map.GroupOfPhys(phys));
    phys = (phys + 2 * 1024 * 1024) % Geometry().total_bytes();
  }
}
BENCHMARK(BM_GroupOfPhys);

void BM_ControllerServe(benchmark::State& state) {
  MemoryController controller(Geometry(), 0);
  SkylakeDecoder decoder(Geometry());
  uint64_t phys = 0;
  double t = 0.0;
  for (auto _ : state) {
    MemRequest request;
    request.address = *decoder.PhysToMedia(phys);
    t = controller.Serve(request, t);
    phys = (phys + 64) % Geometry().socket_bytes();
  }
}
BENCHMARK(BM_ControllerServe);

void BM_DisturbanceActivate(benchmark::State& state) {
  // The device hot path: sink-based delivery, sink reused across ACTs so the
  // no-flip case never touches the allocator.
  DisturbanceModel model(DisturbanceProfile{}, Geometry().rows_per_bank, 1024, 4096 * 8);
  FlipSink sink;
  uint64_t now = 0;
  uint32_t row = 5000;
  for (auto _ : state) {
    sink.Clear();
    model.OnActivate(0, HalfRowSide::kA, row, now, sink);
    benchmark::DoNotOptimize(sink);
    row ^= 32;  // alternate two rows
    now += 50;
  }
}
BENCHMARK(BM_DisturbanceActivate);

void BM_DeviceActivate(benchmark::State& state) {
  DramGeometry geometry = Geometry();
  DramDevice device(geometry, RemapConfig{}, DisturbanceProfile{}, TrrConfig{}, "bench");
  uint64_t now = 0;
  uint32_t row = 5000;
  for (auto _ : state) {
    device.Activate(0, 0, row, now);
    row ^= 32;
    now += 50;
  }
}
BENCHMARK(BM_DeviceActivate);

void BM_EccEncodeDecode(benchmark::State& state) {
  Rng rng(7);
  uint64_t data = rng.NextU64();
  for (auto _ : state) {
    const uint8_t check = EccEncode(data);
    benchmark::DoNotOptimize(EccDecode(data ^ 1, check));
    data = data * 6364136223846793005ull + 1;
  }
}
BENCHMARK(BM_EccEncodeDecode);

void BM_BuddyAllocFree(benchmark::State& state) {
  BuddyAllocator buddy({PhysRange{0, 1ull << 30}});
  for (auto _ : state) {
    const uint64_t page = *buddy.Allocate(kOrder4K);
    benchmark::DoNotOptimize(page);
    (void)buddy.Free(page, kOrder4K);
  }
}
BENCHMARK(BM_BuddyAllocFree);

void BM_EptTranslate(benchmark::State& state) {
  FlatPhysMemory memory;
  uint64_t cursor = 1ull << 40;
  ExtendedPageTable ept(memory, [&]() -> Result<uint64_t> {
    const uint64_t page = cursor;
    cursor += 4096;
    return page;
  });
  for (uint64_t gpa = 0; gpa < (1ull << 33); gpa += 2 * 1024 * 1024) {
    (void)ept.Map(gpa, (1ull << 41) + gpa, PageSize::k2M);
  }
  uint64_t gpa = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ept.Translate(gpa));
    gpa = (gpa + 2 * 1024 * 1024) % (1ull << 33);
  }
}
BENCHMARK(BM_EptTranslate);

}  // namespace
}  // namespace siloz

BENCHMARK_MAIN();
