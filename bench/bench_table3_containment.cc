// Regenerates Table 3 (§7.1): Siloz contains Blacksmith-induced bit flips to
// the hammering domain's subarray group(s), across DIMMs A-F.
//
// Method, mirroring the paper: an attacker VM runs the Blacksmith-style
// fuzzer pinned (by Siloz placement) to its subarray groups. Because every
// subarray group spans all of the socket's DIMMs, flips are expected in all
// six DIMM models, across ranks and banks — but never outside the group.
// The system then idles for 24 simulated hours and an ECC patrol scrub
// sweeps for any latent flips.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/attack/blacksmith.h"
#include "src/base/units.h"
#include "src/sim/machine.h"
#include "src/siloz/hypervisor.h"

namespace siloz {
namespace {

// Six DIMM personalities: thresholds and remap behaviour vary by vendor.
std::vector<DimmProfile> TableThreeDimms() {
  std::vector<DimmProfile> dimms;
  const struct {
    const char* name;
    double threshold;
    double spread;
    bool scrambling;
  } specs[] = {
      {"A", 2400.0, 0.15, false}, {"B", 3000.0, 0.20, false}, {"C", 2100.0, 0.10, true},
      {"D", 2800.0, 0.25, false}, {"E", 2500.0, 0.15, true},  {"F", 3300.0, 0.20, false},
  };
  for (const auto& spec : specs) {
    DimmProfile dimm;
    dimm.name = spec.name;
    dimm.disturbance.threshold_mean = spec.threshold;
    dimm.disturbance.threshold_spread = spec.spread;
    dimm.disturbance.seed = 0x51102 + dimm.name[0];
    dimm.remap.vendor_scrambling = spec.scrambling;
    dimm.trr.enabled = true;
    dimm.trr.act_threshold = 400;
    dimms.push_back(dimm);
  }
  return dimms;
}

}  // namespace
}  // namespace siloz

int main() {
  using namespace siloz;
  MachineConfig machine_config;
  machine_config.fault_tracking = true;
  machine_config.dimm_profiles = TableThreeDimms();
  Machine machine(machine_config);
  bench::PrintHeader("Table 3: bit-flip containment to subarray groups (§7.1)",
                     machine_config.geometry);
  std::printf("Note: Rowhammer thresholds are scaled down (~2.5K ACTs) so the\n"
              "simulated campaign finishes in seconds; containment is a\n"
              "topological property and is unaffected by the scale.\n\n");

  SilozHypervisor hypervisor(machine.decoder(), machine.phys_memory(), SilozConfig{});
  Status boot = hypervisor.Boot();
  if (!boot.ok()) {
    std::fprintf(stderr, "boot failed: %s\n", boot.error().ToString().c_str());
    return 1;
  }
  Result<VmId> attacker = hypervisor.CreateVm({.name = "blacksmith", .memory_bytes = 6_GiB});
  if (!attacker.ok()) {
    std::fprintf(stderr, "CreateVm failed: %s\n", attacker.error().ToString().c_str());
    return 1;
  }
  Vm& vm = **hypervisor.GetVm(*attacker);
  std::vector<PhysRange> pinned;
  for (uint32_t group : vm.guest_groups()) {
    for (const PhysRange& range : hypervisor.group_map().RangesOf(group)) {
      pinned.push_back(range);
    }
  }
  std::printf("Attacker VM pinned to %zu subarray group(s); fuzzing...\n\n", vm.guest_groups().size());

  BlacksmithConfig fuzz;
  fuzz.patterns = 36;
  fuzz.rounds = 1500;
  fuzz.min_pairs = 8;
  fuzz.max_pairs = 16;
  FuzzReport report = BlacksmithFuzzer(fuzz).Run(machine, pinned);

  // The paper's 24-hour soak: patrol scrubbing surfaces undetected flips.
  machine.AdvanceClock(24ull * 3600 * 1'000'000'000);
  const uint64_t scrubbed = machine.PatrolScrubAll();
  std::vector<PhysFlip> late = machine.DrainFlips();
  report.flips.insert(report.flips.end(), late.begin(), late.end());

  const FlipCensus census = ClassifyFlips(report.flips, hypervisor.group_map(), pinned);

  std::printf("Patterns run: %u   Activations: %lu   Total flips: %zu   Scrub-corrected: %lu\n\n",
              report.patterns_run, static_cast<unsigned long>(report.activations),
              report.flips.size(), static_cast<unsigned long>(scrubbed));

  // Table 3 layout.
  std::printf("%-28s", "Observed Bit Flips?");
  for (const char* dimm : {"A", "B", "C", "D", "E", "F"}) {
    std::printf(" %6s", dimm);
  }
  std::printf("\n");
  bench::PrintRule();
  std::printf("%-28s", "Inside Subarray Group");
  std::map<std::string, uint64_t> inside_per_dimm;
  std::map<std::string, uint64_t> outside_per_dimm;
  for (const PhysFlip& flip : report.flips) {
    bool inside = false;
    for (const PhysRange& range : pinned) {
      inside |= range.Contains(flip.phys);
    }
    (inside ? inside_per_dimm : outside_per_dimm)[flip.dimm_name]++;
  }
  for (const char* dimm : {"A", "B", "C", "D", "E", "F"}) {
    std::printf(" %6s", inside_per_dimm.count(dimm) ? "yes" : "no");
  }
  std::printf("\n%-28s", "Outside Subarray Group");
  bool contained = true;
  for (const char* dimm : {"A", "B", "C", "D", "E", "F"}) {
    const bool escaped = outside_per_dimm.count(dimm) != 0;
    contained &= !escaped;
    std::printf(" %6s", escaped ? "YES!" : "NO");
  }
  std::printf("\n");
  bench::PrintRule();
  std::printf("Flip counts inside: %lu, outside: %lu; %zu group(s) touched\n",
              static_cast<unsigned long>(census.inside),
              static_cast<unsigned long>(census.outside), census.groups_hit.size());
  std::printf("Result: %s (paper: flips in all DIMMs, none outside the group)\n",
              contained && census.inside > 0 ? "CONTAINED" : "VIOLATION");
  return contained && census.inside > 0 ? 0 : 1;
}
