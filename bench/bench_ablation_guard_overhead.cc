// Ablation A2 (§3, §5.4, §6): DRAM reserved by guard-row schemes.
//
// Regenerates the paper's overhead comparison:
//  - ZebRAM-style whole-memory guarding: 1 guard row per normal row = 50%
//    of DRAM, rising to 80% at the modern requirement of 4 guard rows.
//  - Siloz's EPT-only guard block: b=32 8 KiB rows per 1 GiB bank ~ 0.024%.
//  - Artificial subarray groups (§6): n=4 boundary guard rows per group,
//    ~1.56% of DRAM at 512-row groups down to ~0.39% at 2048-row groups.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/base/units.h"
#include "src/ept/phys_memory.h"
#include "src/siloz/hypervisor.h"
#include "src/sim/machine.h"

namespace {

double Pct(uint64_t part, uint64_t whole) {
  return 100.0 * static_cast<double>(part) / static_cast<double>(whole);
}

}  // namespace

int main() {
  using namespace siloz;
  const DramGeometry geometry;
  bench::PrintHeader("Ablation A2: DRAM reserved for guard-row protection", geometry);

  std::printf("%-46s | %10s\n", "scheme", "DRAM cost");
  bench::PrintRule();
  // Whole-memory guard schemes: g guard rows per normal row waste g/(g+1).
  for (uint32_t guards : {1u, 4u}) {
    std::printf("ZebRAM-style, %u guard row(s) per normal row     | %9.1f%%\n", guards,
                100.0 * guards / (guards + 1.0));
  }

  // Siloz: measured from an actual boot, not assumed.
  {
    SkylakeDecoder decoder(geometry);
    FlatPhysMemory memory;
    SilozHypervisor hypervisor(decoder, memory, SilozConfig{});
    if (!hypervisor.Boot().ok()) {
      return 1;
    }
    std::printf("%-46s | %9.4f%%\n", "Siloz EPT block (b=32, o=12), measured",
                Pct(hypervisor.ept_reserved_bytes(), geometry.total_bytes()));
    // Per-bank view, the unit the paper quotes: 32 rows of a 1 GiB bank.
    std::printf("%-46s | %9.4f%%\n", "  ...as a fraction of each 1 GiB bank",
                Pct(32 * geometry.row_bytes, geometry.bank_bytes()));
  }

  // Artificial groups: boundary guards, measured from boots with
  // non-power-of-2 presumed sizes (§6 quotes 1.56%..0.39% for (512,2048)).
  for (uint32_t rows : {300u, 600u, 1200u}) {
    SkylakeDecoder decoder(geometry);
    FlatPhysMemory memory;
    SilozConfig config;
    config.rows_per_subarray = rows;  // rounded up to 512/1024/2048
    SilozHypervisor hypervisor(decoder, memory, config);
    if (!hypervisor.Boot().ok()) {
      return 1;
    }
    std::printf("artificial groups (%4u->%4u rows), 4 guards    | %9.2f%%\n", rows,
                hypervisor.effective_rows_per_subarray(),
                Pct(hypervisor.artificial_guard_bytes(), geometry.total_bytes()));
  }
  // Row-repair quarantine (§6): the paper reports ~0.15% of rows repaired in
  // the field; worst case all are inter-subarray and must be offlined at
  // 4 KiB-page granularity, which amplifies the cost 64x under cache-line
  // interleaving (each 8 KiB row's lines touch 128 distinct pages).
  {
    SkylakeDecoder decoder(geometry);
    FlatPhysMemory memory;
    SilozConfig config;
    for (uint32_t i = 0; i < 64; ++i) {  // a 64-repair DIMM population
      MediaAddress row;
      row.channel = i % geometry.channels_per_socket;
      row.bank = (i / 6) % geometry.banks_per_rank;
      row.row = 3000 + i * 1537;
      config.quarantined_rows.push_back(row);
    }
    SilozHypervisor hypervisor(decoder, memory, config);
    if (!hypervisor.Boot().ok()) {
      return 1;
    }
    std::printf("quarantine of 64 inter-subarray repairs          | %9.4f%%  (64x page amplification)\n",
                Pct(hypervisor.quarantined_bytes(), geometry.total_bytes()));
  }
  bench::PrintRule();
  std::printf("Normal-row capacity under Siloz: %.2f%%-100%% of DRAM (paper: ~98.5%%-100%%)\n",
              100.0 - 1.56);
  return 0;
}
