// Regenerates Table 1: DDR4 address mirroring and inversion of lower-order
// row media address bits as a function of DIMM rank and side (§6).
//
// The paper's table lists, for each of b0..b10, the transformed bit seen by
// (even rank, A side), (even rank, B side), (odd rank, A side),
// (odd rank, B side). We derive the same table from the RowRemapper
// implementation by probing one-hot rows, then print the power-of-2
// subarray-size soundness summary the table supports.
#include <cstdio>
#include <string>

#include "bench/bench_util.h"
#include "src/dram/remap.h"

namespace siloz {
namespace {

// Describes what lands in internal bit `bit` when media rows are probed
// one-hot through mirroring (rank) then inversion (side).
std::string SourceOfBit(unsigned bit, uint32_t rank, HalfRowSide side) {
  // Probe with all-zero input to detect inversion at this position.
  const uint32_t zero_out =
      RowRemapper::ApplyInversion(RowRemapper::ApplyMirroring(0, rank), side);
  const bool inverted = ((zero_out >> bit) & 1u) != 0;
  // Probe one-hot inputs to find which media bit feeds this internal bit.
  for (unsigned src = 0; src <= 10; ++src) {
    const uint32_t out =
        RowRemapper::ApplyInversion(RowRemapper::ApplyMirroring(1u << src, rank), side);
    if ((((out ^ zero_out) >> bit) & 1u) != 0) {
      std::string name = "b" + std::to_string(src);
      return inverted ? "!" + name : name;
    }
  }
  return inverted ? "!0" : "0";
}

}  // namespace
}  // namespace siloz

int main() {
  using namespace siloz;
  DramGeometry geometry;
  bench::PrintHeader(
      "Table 1: DDR4 address mirroring + inversion of row media address bits", geometry);

  std::printf("%-10s", "internal");
  for (int bit = 10; bit >= 0; --bit) {
    std::printf(" %5s", ("b" + std::to_string(bit)).c_str());
  }
  std::printf("\n");
  bench::PrintRule();
  struct Case {
    const char* label;
    uint32_t rank;
    HalfRowSide side;
  };
  const Case cases[] = {
      {"even/A", 0, HalfRowSide::kA},
      {"even/B", 0, HalfRowSide::kB},
      {"odd/A", 1, HalfRowSide::kA},
      {"odd/B", 1, HalfRowSide::kB},
  };
  for (const Case& c : cases) {
    std::printf("%-10s", c.label);
    for (int bit = 10; bit >= 0; --bit) {
      std::printf(" %5s", SourceOfBit(static_cast<unsigned>(bit), c.rank, c.side).c_str());
    }
    std::printf("\n");
  }
  bench::PrintRule();
  std::printf("(paper: odd ranks mirror <b3,b4>,<b5,b6>,<b7,b8>; B sides invert [b3,b9])\n\n");

  std::printf("Subarray-block soundness of the transforms (basis of §6's claim\n"
              "that power-of-2 subarray sizes in [512, 2048] keep isolation):\n");
  std::printf("%-8s | %-10s | %-18s\n", "rows", "pow2?", "blocks preserved?");
  bench::PrintRule();
  DramGeometry probe = geometry;
  probe.rows_per_bank = 129024;  // divisible by every probed size (incl. 768)
  for (uint32_t rows : {512u, 768u, 1024u, 1536u, 2048u}) {
    RemapConfig standard;  // mirroring + inversion
    const bool preserved = TransformsPreserveSubarrayBlocks(probe, standard, rows);
    std::printf("%-8u | %-10s | %-18s\n", rows, (rows & (rows - 1)) == 0 ? "yes" : "NO",
                preserved ? "yes" : "NO (needs artificial groups)");
  }
  bench::PrintRule();
  return 0;
}
