// Ablation A4 (§5.4): all EPTs fit in one row group per socket.
//
// The paper's argument: no page sharing + contiguous static allocation +
// 2 MiB backing means each last-level EPT page maps ~1 GiB, so a socket's
// worth of VMs needs at most ~bank_count EPT pages — under the 384 pages of
// one 1.5 MiB row group. This bench builds real EPTs for a fleet of VMs and
// counts pages, then contrasts 4 KiB backing to show why the deployment
// conditions matter.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/base/units.h"
#include "src/ept/ept.h"
#include "src/ept/phys_memory.h"
#include "src/siloz/hypervisor.h"
#include "src/sim/machine.h"

namespace {

// Table pages needed to map `bytes` of contiguous memory with `size` pages.
size_t TablePagesFor(uint64_t bytes, siloz::PageSize size) {
  using namespace siloz;
  FlatPhysMemory memory;
  uint64_t cursor = 1ull << 40;
  ExtendedPageTable ept(memory, [&]() -> Result<uint64_t> {
    const uint64_t page = cursor;
    cursor += kPage4K;
    return page;
  });
  const uint64_t step = PageSizeBytes(size);
  for (uint64_t gpa = 0; gpa < bytes; gpa += step) {
    if (!ept.Map(gpa, (1ull << 41) + gpa, size).ok()) {
      return 0;
    }
  }
  return ept.table_page_count();
}

}  // namespace

int main() {
  using namespace siloz;
  const DramGeometry geometry;
  bench::PrintHeader("Ablation A4: EPT footprint fits one row group per socket (§5.4)",
                     geometry);
  const uint64_t row_group_pages = geometry.row_group_bytes() / kPage4K;

  std::printf("%-34s | %12s | %16s\n", "configuration", "EPT pages", "fits 1 row group?");
  bench::PrintRule();
  struct Case {
    const char* label;
    uint64_t bytes;
    PageSize backing;
  } cases[] = {
      {"one 160 GiB VM, 2 MiB backing", 160_GiB, PageSize::k2M},
      {"one 160 GiB VM, 4 KiB backing", 8_GiB, PageSize::k4K},  // sampled, scaled below
      {"socket full: 189 GiB, 2 MiB", 189_GiB, PageSize::k2M},
      {"one 1.5 GiB VM, 2 MiB backing", 1536_MiB, PageSize::k2M},
  };
  size_t socket_2m_pages = 0;
  for (const Case& c : cases) {
    size_t pages = TablePagesFor(c.bytes, c.backing);
    uint64_t effective_bytes = c.bytes;
    if (c.backing == PageSize::k4K) {
      // Building 160 GiB of 4 KiB mappings in-bench is slow; build 8 GiB and
      // scale linearly (leaf PTs dominate: 1 per 2 MiB).
      pages = pages * (160_GiB / c.bytes);
      effective_bytes = 160_GiB;
    }
    if (std::string(c.label).find("socket full") != std::string::npos) {
      socket_2m_pages = pages;
    }
    std::printf("%-34s | %12zu | %16s\n", c.label, pages,
                pages <= row_group_pages ? "yes" : "NO");
    (void)effective_bytes;
  }
  bench::PrintRule();
  std::printf("Row group capacity: %lu pages (1.5 MiB / 4 KiB).\n",
              static_cast<unsigned long>(row_group_pages));

  // Cross-check against the real allocator: a booted hypervisor hosting a
  // fleet never exhausts its per-socket EPT pool.
  SkylakeDecoder decoder(geometry);
  FlatPhysMemory memory;
  SilozHypervisor hypervisor(decoder, memory, SilozConfig{});
  if (!hypervisor.Boot().ok()) {
    return 1;
  }
  const size_t pool_before = hypervisor.ept_pool_free(0);
  uint32_t fleet = 0;
  while (true) {
    VmConfig vm{.name = "vm" + std::to_string(fleet), .memory_bytes = 9_GiB, .socket = 0};
    if (!hypervisor.CreateVm(vm).ok()) {
      break;
    }
    ++fleet;
  }
  const size_t pool_used = pool_before - hypervisor.ept_pool_free(0);
  std::printf("Fleet check: %u x 9 GiB VMs on socket 0 consumed %zu/%zu EPT pool pages.\n",
              fleet, pool_used, pool_before);
  const bool ok = socket_2m_pages <= row_group_pages && pool_used < pool_before;
  std::printf("Result: %s (paper: one row group per socket suffices)\n",
              ok ? "REPRODUCED" : "MISMATCH");
  return ok ? 0 : 1;
}
