// Hot-path regression benchmark: self-timed microbenchmarks over the four
// engine-critical paths — address decode round-trip, ACT + disturbance
// delivery, read-through-ECC, and the end-to-end closed-loop engine — each
// paired with a deterministic checksum over its observable results.
//
// Two contracts, enforced at different strengths (see
// scripts/check_bench_regression.py):
//  - Checksums are part of the determinism contract: every repetition must
//    produce the same checksum (verified here, exit 1 on mismatch), and the
//    values must match the committed BENCH_hotpath.json exactly (verified by
//    the script, hard failure).
//  - Timings are advisory: the script warns outside a tolerance band but
//    does not fail, since wall-clock depends on the host.
//
// `--json` prints a machine-readable report on stdout; the default is a
// human-readable table.
#include <chrono>
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "src/addr/decoder.h"
#include "src/dram/device.h"
#include "src/dram/fault_model.h"
#include "src/memctl/controller.h"
#include "src/memctl/engine.h"
#include "src/memctl/sharded_engine.h"

namespace siloz {
namespace {

constexpr int kRepetitions = 3;

// FNV-1a over arbitrary words; the order of Fold calls is part of each
// bench's checksum definition.
struct Checksum {
  uint64_t value = 0xCBF29CE484222325ull;
  void Fold(uint64_t word) {
    for (int i = 0; i < 8; ++i) {
      value = (value ^ ((word >> (8 * i)) & 0xFF)) * 0x100000001B3ull;
    }
  }
  void FoldDouble(double d) {
    uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(d));
    std::memcpy(&bits, &d, sizeof(bits));
    Fold(bits);
  }
};

struct BenchResult {
  std::string name;
  uint64_t iters = 0;
  double ns_per_op = 0.0;
  uint64_t checksum = 0;
  bool deterministic = true;
  // Per-shard request counts in shard-plan order (sharded benches only);
  // deterministic, so the regression script gates them exactly.
  std::vector<uint64_t> shard_requests;
};

double NowNs() {
  return static_cast<double>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                 std::chrono::steady_clock::now().time_since_epoch())
                                 .count());
}

// Runs `body(checksum)` kRepetitions times on fresh state; reports the
// fastest repetition and verifies the checksums agree across repetitions.
template <typename Body>
BenchResult RunBench(const std::string& name, uint64_t iters, Body&& body) {
  BenchResult result;
  result.name = name;
  result.iters = iters;
  for (int rep = 0; rep < kRepetitions; ++rep) {
    Checksum checksum;
    const double start = NowNs();
    body(checksum);
    const double elapsed = NowNs() - start;
    const double ns = elapsed / static_cast<double>(iters);
    if (rep == 0) {
      result.ns_per_op = ns;
      result.checksum = checksum.value;
    } else {
      result.ns_per_op = ns < result.ns_per_op ? ns : result.ns_per_op;
      if (checksum.value != result.checksum) {
        result.deterministic = false;
      }
    }
  }
  return result;
}

const DramGeometry& Geometry() {
  static const DramGeometry geometry;
  return geometry;
}

// Deterministic address scrambler for jump targets (split-mix step).
uint64_t NextJump(uint64_t& state) {
  state += 0x9E3779B97F4A7C15ull;
  uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

// PhysToMedia + MediaToPhys over a mixed sequential/jumping line stream —
// the pattern trace materialization feeds the decoder.
BenchResult BenchDecodeRoundTrip() {
  constexpr uint64_t kIters = 2'000'000;
  return RunBench("decode_roundtrip", kIters, [](Checksum& checksum) {
    const SkylakeDecoder decoder(Geometry());
    const uint64_t lines = Geometry().total_bytes() / kCacheLineBytes;
    uint64_t jump_state = 42;
    uint64_t phys = 0;
    for (uint64_t i = 0; i < kIters; ++i) {
      const MediaAddress media = *decoder.PhysToMedia(phys);
      const uint64_t back = *decoder.MediaToPhys(media);
      checksum.Fold(back ^ (static_cast<uint64_t>(media.row) << 32) ^ media.channel);
      if (i % 17 == 0) {
        phys = (NextJump(jump_state) % lines) * kCacheLineBytes;
      } else {
        phys = (phys + kCacheLineBytes) % Geometry().total_bytes();
      }
    }
  });
}

// Sink-based ACT + disturbance delivery (the device hot path): double-sided
// hammer pairs sweeping several banks, sink reused across ACTs.
BenchResult BenchActDisturb() {
  constexpr uint64_t kIters = 4'000'000;
  return RunBench("act_disturb", kIters, [](Checksum& checksum) {
    DisturbanceModel model(DisturbanceProfile{}, Geometry().rows_per_bank,
                           Geometry().rows_per_subarray, 4096 * 8);
    FlipSink sink;
    uint64_t now = 0;
    for (uint64_t i = 0; i < kIters; ++i) {
      const uint32_t bank_key = static_cast<uint32_t>(i & 7);
      const auto side = static_cast<HalfRowSide>((i >> 3) & 1);
      // Double-sided pair around row 5001, sliding every 64K ACTs.
      const uint32_t base = 5000 + static_cast<uint32_t>((i >> 16) & 31);
      const uint32_t row = (i & 1) != 0 ? base + 2 : base;
      sink.Clear();
      model.OnActivate(bank_key, side, row, now, sink);
      for (const InternalFlip& flip : sink.flips()) {
        checksum.Fold((static_cast<uint64_t>(flip.victim_row) << 32) | flip.bit);
      }
      now += 45;
    }
    checksum.Fold(model.total_flip_events());
    checksum.Fold(model.disturb_probes());
  });
}

// Reads through SEC-DED ECC against the chunked row arena, with periodic
// writes and injected flips so the correction paths run.
BenchResult BenchReadEcc() {
  constexpr uint64_t kIters = 300'000;
  constexpr uint32_t kRows = 64;
  return RunBench("read_ecc", kIters, [](Checksum& checksum) {
    DramDevice device(Geometry(), RemapConfig{}, DisturbanceProfile{}, TrrConfig{}, "bench");
    uint64_t now = 0;
    uint8_t pattern[64];
    for (uint32_t row = 0; row < kRows; ++row) {
      for (uint32_t i = 0; i < 64; ++i) {
        pattern[i] = static_cast<uint8_t>(row * 31 + i);
      }
      for (uint32_t column = 0; column < Geometry().row_bytes; column += 64) {
        device.Write(0, 0, row, column, pattern, now);
      }
      now += 50;
    }
    uint8_t buffer[64];
    for (uint64_t i = 0; i < kIters; ++i) {
      const uint32_t row = static_cast<uint32_t>(i % kRows);
      const uint32_t column = static_cast<uint32_t>((i * 64) % Geometry().row_bytes);
      if (i % 1024 == 0) {
        device.InjectFlip(0, 0, row, column, static_cast<uint8_t>(i % 8), now);
      }
      const ReadResult read = device.Read(0, 0, row, column, buffer, now);
      checksum.Fold(buffer[0] | (static_cast<uint64_t>(buffer[63]) << 8) |
                    (static_cast<uint64_t>(read.corrected_words) << 16) |
                    (static_cast<uint64_t>(read.uncorrectable_words) << 32));
      now += 20;
    }
    checksum.Fold(device.counters().reads);
    checksum.Fold(device.counters().corrected_words);
  });
}

// End-to-end closed-loop engine run: decode a mixed request stream once
// outside the timed section, then time RunClosedLoop serving it through a
// real MemoryController.
BenchResult BenchClosedLoop() {
  constexpr uint64_t kIters = 2'000'000;
  const SkylakeDecoder decoder(Geometry());
  std::vector<MemRequest> requests;
  requests.reserve(kIters);
  const uint64_t socket_lines = Geometry().socket_bytes() / kCacheLineBytes;
  uint64_t jump_state = 7;
  uint64_t phys = 0;
  for (uint64_t i = 0; i < kIters; ++i) {
    MemRequest request;
    request.address = *decoder.PhysToMedia(phys);
    request.is_write = (i & 3) == 3;
    requests.push_back(request);
    if (i % 23 == 0) {
      phys = (NextJump(jump_state) % socket_lines) * kCacheLineBytes;
    } else {
      phys = (phys + kCacheLineBytes) % Geometry().socket_bytes();
    }
  }
  return RunBench("closed_loop", kIters, [&requests](Checksum& checksum) {
    MemoryController controller(Geometry(), 0);
    MemoryController* controllers[] = {&controller};
    EngineConfig config;
    config.max_outstanding = 10;
    config.compute_ns_per_access = 10.0;
    const EngineResult result = RunClosedLoop(requests, controllers, config);
    checksum.FoldDouble(result.elapsed_ns);
    checksum.Fold(result.requests);
    checksum.Fold(controller.stats().row_hits);
    checksum.Fold(controller.stats().row_misses);
  });
}

// Sharded end-to-end run: the same decode-once discipline, but over a
// whole-machine (both sockets) stream served through the per-channel shard
// path with per-bank-group command queues (DESIGN.md §15). Single worker —
// worker count is never observable (DESIGN.md §13), so this checksum stands
// for every thread count. The per-shard request census is reported alongside
// and gated exactly by the regression script; it depends only on the channel
// partition, never on the bank-group queue split.
BenchResult BenchShardedClosedLoop(uint32_t channels_per_shard,
                                   uint32_t bank_groups_per_queue) {
  constexpr uint64_t kIters = 2'000'000;
  const SkylakeDecoder decoder(Geometry());
  std::vector<MemRequest> requests;
  requests.reserve(kIters);
  const uint64_t lines = Geometry().total_bytes() / kCacheLineBytes;
  uint64_t jump_state = 11;
  uint64_t phys = 0;
  for (uint64_t i = 0; i < kIters; ++i) {
    MemRequest request;
    request.address = *decoder.PhysToMedia(phys);
    request.is_write = (i & 3) == 3;
    requests.push_back(request);
    if (i % 23 == 0) {
      phys = (NextJump(jump_state) % lines) * kCacheLineBytes;
    } else {
      phys = (phys + kCacheLineBytes) % Geometry().total_bytes();
    }
  }
  std::vector<uint64_t> shard_requests;
  BenchResult result = RunBench(
      "sharded_closed_loop", kIters,
      [&requests, &shard_requests, channels_per_shard,
       bank_groups_per_queue](Checksum& checksum) {
        std::vector<std::unique_ptr<MemoryController>> owned;
        std::vector<MemoryController*> controllers;
        for (uint32_t socket = 0; socket < Geometry().sockets; ++socket) {
          owned.push_back(std::make_unique<MemoryController>(Geometry(), socket));
          controllers.push_back(owned.back().get());
        }
        ShardedEngineConfig config;
        config.engine.max_outstanding = 10;
        config.engine.compute_ns_per_access = 10.0;
        config.channels_per_shard = channels_per_shard;
        config.bank_groups_per_queue = bank_groups_per_queue;
        config.threads = 1;
        const Result<ShardedEngineResult> run =
            RunShardedClosedLoop(requests, controllers, config);
        if (!run.ok()) {
          std::fprintf(stderr, "FATAL: sharded_closed_loop failed: %s\n",
                       run.error().ToString().c_str());
          std::abort();
        }
        checksum.FoldDouble(run->elapsed_ns);
        checksum.Fold(run->requests);
        shard_requests.clear();
        for (const ShardTelemetry& shard : run->shards) {
          shard_requests.push_back(shard.requests);
          checksum.Fold(shard.requests);
          checksum.FoldDouble(shard.elapsed_ns);
        }
        for (const MemoryController* controller : controllers) {
          checksum.Fold(controller->stats().row_hits);
          checksum.Fold(controller->stats().row_misses);
        }
      });
  result.shard_requests = std::move(shard_requests);
  return result;
}

}  // namespace
}  // namespace siloz

int main(int argc, char** argv) {
  bool json = false;
  // Model knobs of the sharded bench; the committed baseline is measured at
  // the defaults (one shard per channel, one bank group per queue), and CI
  // passes them explicitly so the invocation documents the baseline shape.
  uint32_t channels_per_shard = 1;
  uint32_t bank_groups_per_queue = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      json = true;
    } else if (arg == "--channels-per-shard" && i + 1 < argc) {
      channels_per_shard = static_cast<uint32_t>(std::strtoul(argv[++i], nullptr, 10));
    } else if (arg == "--bank-groups-per-queue" && i + 1 < argc) {
      bank_groups_per_queue = static_cast<uint32_t>(std::strtoul(argv[++i], nullptr, 10));
    } else {
      std::fprintf(stderr,
                   "usage: %s [--json] [--channels-per-shard N] [--bank-groups-per-queue N]\n",
                   argv[0]);
      return 2;
    }
  }

  const std::vector<siloz::BenchResult> results = {
      siloz::BenchDecodeRoundTrip(),
      siloz::BenchActDisturb(),
      siloz::BenchReadEcc(),
      siloz::BenchClosedLoop(),
      siloz::BenchShardedClosedLoop(channels_per_shard, bank_groups_per_queue),
  };

  bool deterministic = true;
  if (json) {
    std::printf("{\"schema\":1,\"benchmarks\":{");
    for (size_t i = 0; i < results.size(); ++i) {
      const siloz::BenchResult& r = results[i];
      std::printf("%s\"%s\":{\"iters\":%" PRIu64
                  ",\"ns_per_op\":%.3f,\"checksum\":\"%016" PRIx64 "\"",
                  i == 0 ? "" : ",", r.name.c_str(), r.iters, r.ns_per_op, r.checksum);
      if (!r.shard_requests.empty()) {
        std::printf(",\"shard_requests\":[");
        for (size_t s = 0; s < r.shard_requests.size(); ++s) {
          std::printf("%s%" PRIu64, s == 0 ? "" : ",", r.shard_requests[s]);
        }
        std::printf("]");
      }
      std::printf("}");
      deterministic &= r.deterministic;
    }
    std::printf("}}\n");
  } else {
    std::printf("%-18s %12s %12s  %s\n", "benchmark", "iters", "ns/op", "checksum");
    for (const siloz::BenchResult& r : results) {
      std::printf("%-18s %12" PRIu64 " %12.2f  %016" PRIx64 "%s\n", r.name.c_str(), r.iters,
                  r.ns_per_op, r.checksum, r.deterministic ? "" : "  NONDETERMINISTIC");
      deterministic &= r.deterministic;
    }
  }
  if (!deterministic) {
    std::fprintf(stderr, "FATAL: checksum differed across repetitions\n");
    return 1;
  }
  return 0;
}
