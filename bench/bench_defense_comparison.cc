// Defense comparison (§3): the software-mitigation landscape the paper
// surveys, measured head-to-head on the same attack workload.
//
//  - SoftTRR-style refresh: protects only designated rows, and only while
//    the kernel meets a real-time deadline it cannot guarantee.
//  - Copy-on-Flip: reactive; every detection is an ECC-corrected flip that
//    already happened (leaky), unmovable pages stay exposed, ECC-escaping
//    flips are unhandled.
//  - ZebRAM-style guards: sound but costs g/(g+1) of the protected region.
//  - Siloz: contains everything at ~0.024% DRAM cost for the EPT block.
//
// Attack: double-sided hammering of a 4 KiB target page's rows across every
// bank (TRR presumed bypassed), same budget for every defense.
#include <cstdio>
#include <set>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/attack/blacksmith.h"
#include "src/base/units.h"
#include "src/defenses/copy_on_flip.h"
#include "src/defenses/soft_trr.h"
#include "src/defenses/zebram.h"
#include "src/sim/machine.h"
#include "src/siloz/hypervisor.h"

namespace {

using namespace siloz;

MachineConfig FaultConfig() {
  MachineConfig config;
  config.fault_tracking = true;
  DimmProfile profile;
  profile.disturbance.threshold_mean = 2500.0;
  profile.disturbance.threshold_spread = 0.15;
  profile.trr.enabled = false;
  config.dimm_profiles = {profile};
  return config;
}

std::vector<uint64_t> NeighbourAggressors(Machine& machine, uint64_t page) {
  std::vector<uint64_t> aggressors;
  std::set<std::string> seen;
  for (uint64_t offset = 0; offset < kPage4K; offset += kCacheLineBytes) {
    MediaAddress line = *machine.decoder().PhysToMedia(page + offset);
    line.column = 0;
    MediaAddress key = line;
    key.row = 0;
    if (!seen.insert(key.ToString()).second) {
      continue;
    }
    for (int32_t delta : {-1, 1}) {
      MediaAddress aggressor = line;
      aggressor.row = static_cast<uint32_t>(static_cast<int64_t>(line.row) + delta);
      aggressors.push_back(*machine.decoder().MediaToPhys(aggressor));
    }
  }
  return aggressors;
}

struct Row {
  const char* name;
  const char* scope;
  double dram_overhead_pct;
  uint64_t flips_in_protected;
  uint64_t leak_events;
  const char* residual_gap;
};

void Print(const Row& row) {
  std::printf("%-12s | %-17s | %8.4f%% | %9lu | %6lu | %s\n", row.name, row.scope,
              row.dram_overhead_pct, static_cast<unsigned long>(row.flips_in_protected),
              static_cast<unsigned long>(row.leak_events), row.residual_gap);
}

constexpr uint32_t kRounds = 40000;

}  // namespace

int main() {
  bench::PrintHeader("Defense comparison (§3): same attack, four mitigations",
                     DramGeometry{});
  std::printf("%-12s | %-17s | %9s | %9s | %6s | %s\n", "defense", "protects", "DRAM cost",
              "prot.flips", "leaks", "residual gap");
  bench::PrintRule();

  // --- None ---
  {
    Machine machine(FaultConfig());
    const uint64_t page = 10_GiB;
    machine.phys_memory().WriteU64(page, ~0ull);
    auto aggressors = NeighbourAggressors(machine, page);
    HammerPhysAddresses(machine, {aggressors.data(), aggressors.size()}, kRounds);
    const MediaAddress media = *machine.decoder().PhysToMedia(page);
    uint64_t flips = 0;
    for (const PhysFlip& flip : machine.DrainFlips()) {
      flips += (flip.record.media_row == media.row);
    }
    Print({"none", "nothing", 0.0, flips, 0, "everything exposed"});
  }

  // --- SoftTRR (with the real Linux scheduling behaviour) ---
  {
    Machine machine(FaultConfig());
    const uint64_t page = 10_GiB;
    SoftTrrConfig config;
    config.stall_probability = 0.001;  // §8.3: delayed/dropped firings exist
    SoftTrrDefender defender(machine, {page}, config);
    auto aggressors = NeighbourAggressors(machine, page);
    for (uint32_t round = 0; round < kRounds; ++round) {
      for (uint64_t phys : aggressors) {
        machine.ActivatePhys(phys);
      }
      defender.CatchUp();
    }
    const MediaAddress media = *machine.decoder().PhysToMedia(page);
    uint64_t flips = 0;
    for (const PhysFlip& flip : machine.DrainFlips()) {
      flips += (flip.record.media_row == media.row);
    }
    char gap[96];
    std::snprintf(gap, sizeof gap, "max refresh gap %.1f ms; all other rows unprotected",
                  defender.max_gap_ms());
    Print({"softtrr", "designated rows", 0.0, flips, 0, gap});
  }

  // --- Copy-on-Flip ---
  {
    Machine machine(FaultConfig());
    const uint64_t page = 10_GiB;
    machine.phys_memory().WriteU64(page, ~0ull);
    CopyOnFlipDefender defender(machine, CopyOnFlipConfig{.movable_fraction = 0.9});
    auto aggressors = NeighbourAggressors(machine, page);
    // The defense reacts between bursts.
    CopyOnFlipDefender::Report total;
    for (int burst = 0; burst < 4; ++burst) {
      HammerPhysAddresses(machine, {aggressors.data(), aggressors.size()}, kRounds / 4);
      const auto report = defender.ProcessPendingFlips();
      total.corrected_detections += report.corrected_detections;
      total.flips_on_live_pages += report.flips_on_live_pages;
      total.unmovable_victim_pages += report.unmovable_victim_pages;
      total.uncorrectable_words += report.uncorrectable_words;
      total.silent_corruptions += report.silent_corruptions;
    }
    char gap[96];
    std::snprintf(gap, sizeof gap, "%lu unmovable pages exposed; %lu words beat ECC",
                  static_cast<unsigned long>(total.unmovable_victim_pages),
                  static_cast<unsigned long>(total.uncorrectable_words +
                                             total.silent_corruptions));
    Print({"copy-on-flip", "movable pages", 0.0, total.flips_on_live_pages,
           total.corrected_detections, gap});
  }

  // --- ZebRAM (g=4) protecting a 3 GiB region ---
  {
    Machine machine(FaultConfig());
    const uint64_t row_group = machine.decoder().geometry().row_group_bytes();
    ZebramRegion zebra(machine.decoder(), PhysRange{0, 2048 * row_group}, 4);
    const uint64_t aggressors[] = {zebra.safe_extents()[0].begin, zebra.safe_extents()[1].begin};
    HammerPhysAddresses(machine, aggressors, kRounds);
    uint64_t flips_in_safe = 0;
    for (const PhysFlip& flip : machine.DrainFlips()) {
      flips_in_safe += zebra.IsSafePhys(flip.phys);
    }
    Print({"zebram(g=4)", "striped region", zebra.overhead() * 100.0, flips_in_safe, 0,
           "cost scales with protected size"});
  }

  // --- Siloz ---
  {
    Machine machine(FaultConfig());
    SilozHypervisor hypervisor(machine.decoder(), machine.phys_memory(), SilozConfig{});
    SILOZ_CHECK(hypervisor.Boot().ok());
    const VmId attacker = *hypervisor.CreateVm({.name = "attacker", .memory_bytes = 1536_MiB});
    const VmId victim = *hypervisor.CreateVm({.name = "victim", .memory_bytes = 1536_MiB});
    Vm& attacker_vm = **hypervisor.GetVm(attacker);
    // Attacker hammers a page of its own memory; everything outside its
    // groups (victim, host, EPTs) is the protected surface.
    const uint64_t page = attacker_vm.regions()[0].hpa + 100 * kPage2M;
    auto aggressors = NeighbourAggressors(machine, page);
    HammerPhysAddresses(machine, {aggressors.data(), aggressors.size()}, kRounds);
    uint64_t flips_outside = 0;
    for (const PhysFlip& flip : machine.DrainFlips()) {
      bool inside = false;
      for (uint32_t group : attacker_vm.guest_groups()) {
        for (const PhysRange& range : hypervisor.group_map().RangesOf(group)) {
          inside |= range.Contains(flip.phys);
        }
      }
      flips_outside += !inside;
    }
    SILOZ_CHECK(hypervisor.AuditVmIsolation(victim).ok());
    const double overhead = 100.0 *
                            static_cast<double>(hypervisor.ept_reserved_bytes()) /
                            static_cast<double>(machine.decoder().geometry().total_bytes());
    Print({"siloz", "all other domains", overhead, flips_outside, 0,
           "intra-VM flips out of scope (accepted trade-off)"});
  }
  bench::PrintRule();
  std::printf("'prot.flips' = flips landing in what each defense claims to protect;\n"
              "'leaks' = ECC-corrected events observable to a RAMBleed-style attacker.\n");
  return 0;
}
