// Ablation A6: the baseline (unmodified Linux/KVM placement, unprotected
// EPTs) is vulnerable to exactly the attacks Siloz prevents.
//
// Two demonstrations, end-to-end through the full stack:
//  1. Inter-VM data corruption: an attacker VM hammers its own edge rows;
//     bit flips land in the adjacent VM's memory (impossible under Siloz,
//     see bench_table3_containment).
//  2. EPT corruption: hammering rows neighbouring an EPT table page flips
//     mapping bits; the corrupted walk resolves to a host physical address
//     the VM was never given — a subarray-group escape the audit flags.
#include <cstdio>
#include <set>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/attack/blacksmith.h"
#include "src/base/units.h"
#include "src/sim/machine.h"
#include "src/siloz/hypervisor.h"

namespace {

siloz::MachineConfig FaultConfig() {
  using namespace siloz;
  MachineConfig config;
  config.fault_tracking = true;
  DimmProfile profile;
  profile.disturbance.threshold_mean = 2500.0;
  profile.disturbance.threshold_spread = 0.15;
  profile.trr.enabled = false;  // attacker presumed past TRR (Blacksmith)
  config.dimm_profiles = {profile};
  return config;
}

}  // namespace

int main() {
  using namespace siloz;
  bench::PrintHeader("Ablation A6: baseline Linux/KVM is vulnerable", DramGeometry{});

  // --- 1. Inter-VM flips ---
  bool cross_vm_corruption = false;
  {
    Machine machine(FaultConfig());
    SilozConfig baseline;
    baseline.enabled = false;
    SilozHypervisor hypervisor(machine.decoder(), machine.phys_memory(), baseline);
    if (!hypervisor.Boot().ok()) {
      return 1;
    }
    VmId attacker = *hypervisor.CreateVm({.name = "attacker", .memory_bytes = 2_GiB});
    VmId victim = *hypervisor.CreateVm({.name = "victim", .memory_bytes = 2_GiB});
    Vm& attacker_vm = **hypervisor.GetVm(attacker);
    Vm& victim_vm = **hypervisor.GetVm(victim);
    const uint64_t attacker_end =
        attacker_vm.regions()[0].hpa + attacker_vm.regions()[0].bytes;

    // Hammer the attacker's topmost row (its neighbour row belongs to other
    // tenants), alternating with another own row to force ACTs.
    const MediaAddress edge = *machine.decoder().PhysToMedia(attacker_end - kCacheLineBytes);
    MediaAddress decoy = edge;
    decoy.row = edge.row - 20;
    const uint64_t aggressors[] = {attacker_end - kCacheLineBytes,
                                   *machine.decoder().MediaToPhys(decoy)};
    const uint64_t acts = HammerPhysAddresses(machine, aggressors, 15000);

    uint64_t flips_in_victim = 0;
    uint64_t flips_elsewhere = 0;
    const uint64_t victim_begin = victim_vm.regions()[0].hpa;
    const uint64_t victim_end = victim_begin + victim_vm.regions()[0].bytes;
    for (const PhysFlip& flip : machine.DrainFlips()) {
      if (flip.phys >= victim_begin && flip.phys < victim_end) {
        ++flips_in_victim;
      } else if (flip.phys >= attacker_end) {
        ++flips_elsewhere;
      }
    }
    cross_vm_corruption = flips_in_victim > 0 || flips_elsewhere > 0;
    std::printf("[1] Inter-VM hammering (%lu ACTs at the VM boundary):\n",
                static_cast<unsigned long>(acts));
    std::printf("    flips inside the victim VM: %lu; in other non-attacker memory: %lu\n",
                static_cast<unsigned long>(flips_in_victim),
                static_cast<unsigned long>(flips_elsewhere));
    std::printf("    => cross-domain corruption: %s\n\n",
                cross_vm_corruption ? "YES (vulnerable)" : "no");
  }

  // --- 2. EPT corruption and escape ---
  bool ept_escape_detected = false;
  {
    Machine machine(FaultConfig());
    SilozConfig config;          // Siloz placement but EPTs unprotected,
    config.ept_protection = EptProtection::kNone;  // isolating the EPT threat
    SilozHypervisor hypervisor(machine.decoder(), machine.phys_memory(), config);
    if (!hypervisor.Boot().ok()) {
      return 1;
    }
    VmId tenant = *hypervisor.CreateVm({.name = "tenant", .memory_bytes = 1536_MiB});
    Vm& vm = **hypervisor.GetVm(tenant);

    // A 4 KiB page interleaves across many banks; the attacker hammers the
    // page's row above and below in every bank it touches.
    const uint64_t ept_page = vm.ept()->table_pages().back();
    const MediaAddress ept_media = *machine.decoder().PhysToMedia(ept_page);
    std::vector<uint64_t> aggressors;
    std::set<std::string> seen_banks;
    for (uint64_t offset = 0; offset < kPage4K; offset += kCacheLineBytes) {
      MediaAddress line = *machine.decoder().PhysToMedia(ept_page + offset);
      line.column = 0;
      MediaAddress key = line;
      key.row = 0;
      if (!seen_banks.insert(key.ToString()).second) {
        continue;
      }
      for (int32_t delta : {-1, +1}) {
        MediaAddress aggressor = line;
        aggressor.row = static_cast<uint32_t>(static_cast<int64_t>(line.row) + delta);
        aggressors.push_back(*machine.decoder().MediaToPhys(aggressor));
      }
    }
    // Long campaign: ECC corrects isolated single-bit flips on read, so the
    // attacker needs multi-flip words (exactly the ECC-escape regime of
    // Cojocar et al. the paper cites).
    HammerPhysAddresses(machine, {aggressors.data(), aggressors.size()}, 60000);

    uint64_t flips_in_ept_row = 0;
    for (const PhysFlip& flip : machine.DrainFlips()) {
      flips_in_ept_row += (flip.record.media_row == ept_media.row);
    }
    // Sweep the EPT table pages through ECC and tally outcomes.
    uint64_t corrected = 0;
    uint64_t uncorrectable = 0;
    uint64_t silent = 0;
    for (uint64_t table_page : vm.ept()->table_pages()) {
      for (uint64_t offset = 0; offset < kPage4K; offset += kCacheLineBytes) {
        const MediaAddress line = *machine.decoder().PhysToMedia(table_page + offset);
        uint8_t buffer[kCacheLineBytes];
        const ReadResult read =
            machine.device(line.socket, line.channel, line.dimm)
                .Read(line.rank, line.bank, line.row, line.column, buffer, machine.clock_ns());
        corrected += read.corrected_words;
        uncorrectable += read.uncorrectable_words;
        silent += read.silently_corrupt_words;
      }
    }
    const Status audit = hypervisor.AuditVmIsolation(tenant);
    ept_escape_detected = flips_in_ept_row > 0 && (uncorrectable + silent > 0 || !audit.ok());
    std::printf("[2] EPT hammering with unprotected EPT rows:\n");
    std::printf("    flips in the EPT row: %lu\n", static_cast<unsigned long>(flips_in_ept_row));
    std::printf("    ECC outcomes across EPT pages: %lu corrected (leaky, RAMBleed-style),\n"
                "      %lu uncorrectable (MCE / DoS), %lu silent corruptions\n",
                static_cast<unsigned long>(corrected), static_cast<unsigned long>(uncorrectable),
                static_cast<unsigned long>(silent));
    std::printf("    isolation audit: %s\n",
                audit.ok() ? "pass (surviving mappings intact)" : audit.error().ToString().c_str());
    std::printf("    => EPT integrity lost: %s\n\n",
                ept_escape_detected ? "YES (vulnerable)" : "no");
  }

  const bool confirmed = cross_vm_corruption && ept_escape_detected;
  std::printf("Result: baseline exhibits both attack classes Siloz eliminates: %s\n",
              confirmed ? "CONFIRMED" : "NOT CONFIRMED");
  return confirmed ? 0 : 1;
}
