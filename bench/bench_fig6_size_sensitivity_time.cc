// Regenerates Figure 6 (§7.4): Siloz-1024-normalized execution time when the
// presumed subarray size is varied to 512 (twice the logical nodes) and 2048
// (half the nodes).
//
// Expected shape (paper): no trend and no significant differences — subarray
// size changes neither DDR access timings nor bank-level parallelism, and
// node count does not matter (Siloz-2048 does not beat Siloz-512).
#include "bench/fig_common.h"

int main(int argc, char** argv) {
  using namespace siloz;
  const uint32_t threads = bench::ThreadsFromArgs(argc, argv);  // 0 = auto-detect
  const std::string platform = bench::PlatformFromArgs(argc, argv);
  bench::EnableObsFromArgs(argc, argv);
  bench::PrintHeader("Figure 6: Siloz-1024-normalized execution time, subarray size sweep",
                     bench::PlatformHeaderGeometry(platform), platform);
  std::printf("Siloz-512 manages 2x the logical NUMA nodes of Siloz-1024;\n"
              "Siloz-2048 half. 5 trials per point.\n\n");
  const bool ok = bench::RunFigure(ExecutionTimeWorkloads(),
                                   {"siloz-1024", bench::SilozKernel(1024)},
                                   {{"siloz-512", bench::SilozKernel(512)},
                                    {"siloz-2048", bench::SilozKernel(2048)}},
                                   5, 42, "fig6_size_time", threads,
                                   bench::ChannelsPerShardFromArgs(argc, argv), platform,
                                   bench::BankGroupsPerQueueFromArgs(argc, argv));
  return (bench::WriteObsFromArgs(argc, argv) && ok) ? 0 : 1;
}
