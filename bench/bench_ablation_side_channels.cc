// Ablation A9 (§8.4, §9): what Siloz does NOT protect against — DRAM timing
// side channels — and what coarser logical-node isolation could do.
//
// DRAMA-style bank-conflict probing between two co-located Siloz tenants:
// their subarray groups share every bank (that is the point of groups), so
// the row-buffer-conflict channel persists. Under sub-NUMA clustering, VMs
// placed in different clusters share no banks, closing the channel — the
// §8.4 direction of using logical nodes for bank/rank/channel isolation.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/attack/drama.h"
#include "src/base/units.h"
#include "src/ept/phys_memory.h"
#include "src/siloz/hypervisor.h"

namespace {

using namespace siloz;

// Probes attacker page vs victim page: do any of the victim's lines share a
// bank with the attacker's (and does timing reveal it)?
struct PairResult {
  uint32_t same_bank_pairs = 0;
  uint32_t detected_pairs = 0;
  double max_latency_ns = 0.0;
};

PairResult ProbePages(MemoryController& controller, const AddressDecoder& decoder,
                      uint64_t attacker_page, uint64_t victim_page) {
  PairResult result;
  for (uint64_t a_off = 0; a_off < 16 * kCacheLineBytes; a_off += kCacheLineBytes) {
    for (uint64_t v_off = 0; v_off < 16 * kCacheLineBytes; v_off += kCacheLineBytes) {
      const DramaProbe probe = ProbePair(controller, decoder, attacker_page + a_off,
                                         victim_page + v_off, DramaConfig{.rounds = 200});
      result.same_bank_pairs += probe.same_bank;
      result.detected_pairs += probe.conflict_detected;
      result.max_latency_ns = std::max(result.max_latency_ns, probe.mean_latency_ns);
    }
  }
  return result;
}

}  // namespace

int main() {
  const DramGeometry geometry;
  bench::PrintHeader("Ablation A9: DRAM timing side channels under Siloz (§8.4)", geometry);

  std::printf("%-34s | %10s | %9s | %12s\n", "placement", "bank-shared", "detected",
              "max lat (ns)");
  bench::PrintRule();

  // --- Siloz default: tenants in different subarray groups, same socket ---
  {
    SkylakeDecoder decoder(geometry);
    FlatPhysMemory memory;
    SilozHypervisor hypervisor(decoder, memory, SilozConfig{});
    SILOZ_CHECK(hypervisor.Boot().ok());
    const VmId a = *hypervisor.CreateVm({.name = "attacker", .memory_bytes = 1536_MiB});
    const VmId v = *hypervisor.CreateVm({.name = "victim", .memory_bytes = 1536_MiB});
    MemoryController controller(geometry, 0);
    const PairResult result =
        ProbePages(controller, decoder, (*hypervisor.GetVm(a))->regions()[0].hpa,
                   (*hypervisor.GetVm(v))->regions()[0].hpa);
    std::printf("%-34s | %7u/256 | %5u/256 | %12.1f\n",
                "Siloz groups, same socket", result.same_bank_pairs, result.detected_pairs,
                result.max_latency_ns);
  }

  // --- SNC-2 with tenants in different clusters: no shared banks ---
  {
    SncDecoder decoder(geometry, 2);
    FlatPhysMemory memory;
    SilozHypervisor hypervisor(decoder, memory, SilozConfig{});
    SILOZ_CHECK(hypervisor.Boot().ok());
    // Pick one guest group from each cluster of socket 0.
    const auto nodes = hypervisor.AvailableGuestNodes(0);
    uint64_t page_a = 0;
    uint64_t page_b = 0;
    for (uint32_t node_id : nodes) {
      NumaNode& node = **hypervisor.nodes().Get(node_id);
      const uint32_t cluster = hypervisor.group_map().ClusterOfGroup(node.first_group());
      if (cluster == 0 && page_a == 0) {
        page_a = node.ranges()[0].begin;
      }
      if (cluster == 1 && page_b == 0) {
        page_b = node.ranges()[0].begin;
      }
    }
    SILOZ_CHECK(page_a != 0 && page_b != 0);
    MemoryController controller(geometry, 0);
    const PairResult result = ProbePages(controller, decoder, page_a, page_b);
    std::printf("%-34s | %7u/256 | %5u/256 | %12.1f\n",
                "SNC-2, tenants in other clusters", result.same_bank_pairs,
                result.detected_pairs, result.max_latency_ns);
  }

  // --- Different sockets: fully disjoint memory systems ---
  {
    SkylakeDecoder decoder(geometry);
    MemoryController controller0(geometry, 0);
    // Cross-socket pairs never even reach the same controller; report the
    // structural fact.
    const MediaAddress a = *decoder.PhysToMedia(3_GiB);
    const MediaAddress b = *decoder.PhysToMedia(geometry.socket_bytes() + 3_GiB);
    std::printf("%-34s | %10s | %9s | %12s\n", "different sockets",
                a.socket != b.socket ? "0/256" : "?", "0/256", "n/a");
  }
  bench::PrintRule();
  std::printf("Siloz tenants share banks by design (bank-level parallelism), so the\n"
              "DRAMA channel persists — the §8.4/§9 limitation, reproduced. Cluster-\n"
              "or socket-disjoint placement closes it at a provisioning-granularity\n"
              "cost; combining such units with Siloz is the paper's future work.\n");
  return 0;
}
