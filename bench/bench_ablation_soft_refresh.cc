// Ablation A5 (§8.3): why Siloz uses guard rows instead of a SoftTRR-style
// software refresh routine for EPT protection.
//
// The paper tried refreshing EPT rows every 1 ms from the kernel and found
// Linux cannot provide the real-time guarantee: timer tasks never fire
// early, often fire late, and tick-based variants drop ticks when interrupts
// are disabled — they observed gaps exceeding 32 ms (32x a safe period).
// This bench simulates the three designs' inter-refresh gap distributions
// under a host load model and reports deadline misses.
#include <algorithm>
#include <cmath>
#include <cstdio>

#include "bench/bench_util.h"
#include "src/base/rng.h"
#include "src/base/stats.h"

namespace {

struct GapStats {
  double min_ms = 1e30;
  double max_ms = 0.0;
  uint64_t misses = 0;  // gaps exceeding the 1 ms protection deadline
  uint64_t total = 0;
};

template <typename NextGap>
GapStats Simulate(uint64_t iterations, NextGap&& next_gap) {
  GapStats stats;
  for (uint64_t i = 0; i < iterations; ++i) {
    const double gap = next_gap();
    stats.min_ms = std::min(stats.min_ms, gap);
    stats.max_ms = std::max(stats.max_ms, gap);
    stats.misses += gap > 1.0 + 1e-9;
    ++stats.total;
  }
  return stats;
}

void PrintRow(const char* label, const GapStats& stats) {
  std::printf("%-34s | %8.3f | %8.3f | %10.4f%%\n", label, stats.min_ms, stats.max_ms,
              100.0 * static_cast<double>(stats.misses) / static_cast<double>(stats.total));
}

}  // namespace

int main() {
  using namespace siloz;
  bench::PrintHeader("Ablation A5: software EPT refresh misses deadlines (§8.3)",
                     DramGeometry{});
  std::printf("Deadline: one refresh per 1 ms. 10M periods per design.\n\n");
  std::printf("%-34s | %8s | %8s | %11s\n", "design", "min ms", "max ms", "missed");
  bench::PrintRule();

  const uint64_t kIterations = 10'000'000;
  Rng rng(0x8E3);

  // (a) schedule_delayed_work(1ms): timers are lower bounds; the task runs
  // at 1 ms + scheduling latency. Under load, runqueue delay is heavy-tailed
  // (preemption by softirqs, throttling): model as 1ms + Exp(50us) with a
  // 0.002% chance of a multi-tick stall up to ~35 ms.
  const GapStats timer = Simulate(kIterations, [&]() {
    double gap = 1.0 + (-0.05 * std::log(1.0 - rng.NextDouble()));
    if (rng.NextBernoulli(0.00002)) {
      gap += rng.NextDouble() * 34.0;
    }
    return gap;
  });
  PrintRow("timer task @1ms (schedule)", timer);

  // (b) refresh inside the periodic tick IRQ, dynticks disabled: period is
  // tight (~1ms +/- 20us) but ticks are lost while interrupts are disabled
  // (long critical sections, SMIs): 0.0005% of ticks start a run of 2-32
  // dropped periods.
  uint64_t pending_drop = 0;
  const GapStats tick = Simulate(kIterations, [&]() {
    if (pending_drop == 0 && rng.NextBernoulli(0.000005)) {
      pending_drop = rng.NextInRange(2, 32);
    }
    double gap = 1.0 + 0.02 * rng.NextGaussian();
    if (pending_drop > 0) {
      gap += static_cast<double>(pending_drop);
      pending_drop = 0;
    }
    return std::max(gap, 0.9);
  });
  PrintRow("tick-IRQ refresh, no dynticks", tick);

  // (c) Siloz guard rows: protection is physical; there is no deadline.
  std::printf("%-34s | %8s | %8s | %10.4f%%\n", "Siloz guard rows (b=32,o=12)", "-", "-", 0.0);
  bench::PrintRule();

  const bool reproduced = timer.min_ms >= 1.0 && (timer.max_ms > 32.0 || tick.max_ms > 32.0) &&
                          timer.misses > 0 && tick.misses > 0;
  std::printf("Paper's observations: >=1 ms minimum between software refreshes, with\n"
              "periods exceeding 32 ms: %s. Both software designs leave EPT rows\n"
              "vulnerable during misses; guard rows have no refresh deadline.\n",
              reproduced ? "reproduced" : "NOT reproduced");
  return reproduced ? 0 : 1;
}
