// Ablation A11 (§1, §2.5): do workloads activate rows at Rowhammer-relevant
// rates?
//
// The paper's motivation cites MOESI-prime: malicious AND some commodity
// access patterns reach per-row activation rates above modern thresholds
// (which are dropping toward ~10K ACTs/window on newer DRAM [24, 74, 129]).
// This bench profiles per-row ACTs per 64 ms refresh window for the workload
// catalog and for a double-sided hammer, against two threshold levels.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/addr/decoder.h"
#include "src/base/units.h"
#include "src/memctl/act_profile.h"
#include "src/memctl/engine.h"
#include "src/sim/experiment.h"
#include "src/workload/workloads.h"

int main() {
  using namespace siloz;
  const DramGeometry geometry;
  bench::PrintHeader("Ablation A11: per-row activation rates vs Rowhammer thresholds",
                     geometry);
  constexpr uint64_t kLegacyThreshold = 50000;  // older DDR4
  constexpr uint64_t kModernThreshold = 10000;  // scaled server parts

  std::printf("%-12s | %14s | %16s | %10s | %10s\n", "workload", "activations",
              "max row ACTs/win", ">10K rows", "verdict");
  bench::PrintRule();

  SkylakeDecoder decoder(geometry);
  const std::vector<VmRegion> regions = {
      VmRegion{MemoryType::kGuestRam, 0, 3_GiB, 3_GiB, PageSize::k2M}};

  bool any_commodity_over = false;
  // A representative subset run long enough to span multiple full refresh
  // windows (per-window counts need full windows to be meaningful).
  std::vector<WorkloadSpec> catalog;
  for (const char* name : {"redis-a", "redis-d", "memcached", "mysql", "spec17", "mlc-stream"}) {
    catalog.push_back(*FindWorkload(name));
  }
  for (WorkloadSpec spec : catalog) {
    spec.accesses = 5'000'000;
    // Hot-key workloads concentrate on few rows; shrink footprints to the
    // hot working set a cache would NOT absorb (worst realistic case).
    if (spec.zipf_theta > 0.0) {
      spec.footprint_bytes = 64_MiB;
    }
    const auto trace = GenerateTrace(spec, decoder, regions, 0, 99);
    MemoryController controller(geometry, 0);
    RowActivationProfiler profiler(geometry, kModernThreshold);
    double cursor = 0.0;
    for (const MemRequest& request : trace) {
      profiler.Observe(request, cursor);
      cursor = controller.Serve(request, cursor);
    }
    const ActProfile profile = profiler.Finish();
    const bool over = profile.max_row_acts_per_window > kModernThreshold;
    any_commodity_over |= over;
    std::printf("%-12s | %14lu | %16lu | %10lu | %s\n", spec.name.c_str(),
                static_cast<unsigned long>(profile.total_activations),
                static_cast<unsigned long>(profile.max_row_acts_per_window),
                static_cast<unsigned long>(profile.rows_over_threshold),
                over ? "OVER modern threshold" : "under");
  }

  // The attack, for scale: a double-sided hammer in the same harness.
  {
    MemoryController controller(geometry, 0);
    RowActivationProfiler profiler(geometry, kModernThreshold);
    const uint64_t row_stride = geometry.row_group_bytes() * 32;
    double cursor = 0.0;
    for (int i = 0; i < 5'000'000; ++i) {
      MemRequest request;
      request.address = *decoder.PhysToMedia((i % 2) * row_stride);
      profiler.Observe(request, cursor);
      cursor = controller.Serve(request, cursor);
    }
    const ActProfile profile = profiler.Finish();
    std::printf("%-12s | %14lu | %16lu | %10lu | %s\n", "hammer",
                static_cast<unsigned long>(profile.total_activations),
                static_cast<unsigned long>(profile.max_row_acts_per_window),
                static_cast<unsigned long>(profile.rows_over_threshold),
                profile.max_row_acts_per_window > kLegacyThreshold
                    ? "OVER even legacy threshold"
                    : "over modern threshold");
  }
  bench::PrintRule();
  std::printf("Thresholds: modern ~%luK, legacy ~%luK ACTs/64ms window.\n",
              static_cast<unsigned long>(kModernThreshold / 1000),
              static_cast<unsigned long>(kLegacyThreshold / 1000));
  std::printf("Hot-key commodity workloads %s reach modern-threshold rates (the\n"
              "paper's premise that deployed mitigations — not rarity — are what\n"
              "stands between commodity traffic and bit flips).\n",
              any_commodity_over ? "DO" : "do not");
  return 0;
}
