// Regenerates Figure 7 (§7.4): Siloz-1024-normalized throughput when the
// presumed subarray size is varied to 512 and 2048 rows.
//
// Expected shape (paper): within 0.5% with no trend across sizes.
#include "bench/fig_common.h"

int main(int argc, char** argv) {
  using namespace siloz;
  const uint32_t threads = bench::ThreadsFromArgs(argc, argv);  // 0 = auto-detect
  const std::string platform = bench::PlatformFromArgs(argc, argv);
  bench::EnableObsFromArgs(argc, argv);
  bench::PrintHeader("Figure 7: Siloz-1024-normalized throughput, subarray size sweep",
                     bench::PlatformHeaderGeometry(platform), platform);
  const bool ok = bench::RunFigure(ThroughputWorkloads(),
                                   {"siloz-1024", bench::SilozKernel(1024)},
                                   {{"siloz-512", bench::SilozKernel(512)},
                                    {"siloz-2048", bench::SilozKernel(2048)}},
                                   5, 42, "fig7_size_tput", threads,
                                   bench::ChannelsPerShardFromArgs(argc, argv), platform,
                                   bench::BankGroupsPerQueueFromArgs(argc, argv));
  return (bench::WriteObsFromArgs(argc, argv) && ok) ? 0 : 1;
}
