// Regenerates the §7.1 "EPT Bit Flip Prevention" experiment: rows protected
// by Siloz's b=32/o=12 guard-row scheme do not flip under hammering, while
// unprotected 32-row blocks in the same subarray do.
//
// Mirrors the paper's method: Blacksmith-style hammering runs against (a)
// the protected block (only its closest allocatable neighbours are
// reachable) and (b) disjoint unprotected 32-row blocks elsewhere in the
// same subarray group.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/attack/blacksmith.h"
#include "src/base/units.h"
#include "src/sim/machine.h"
#include "src/siloz/hypervisor.h"

namespace siloz {
namespace {

MachineConfig FaultConfig() {
  MachineConfig config;
  config.fault_tracking = true;
  DimmProfile profile;
  profile.disturbance.threshold_mean = 2500.0;
  profile.disturbance.threshold_spread = 0.15;
  profile.trr.enabled = false;  // attacker presumed to have bypassed TRR
  config.dimm_profiles = {profile};
  return config;
}

// Hammers the two rows adjacent to each side of [first_row, last_row] that
// the attacker can reach, plus rows inside if `rows_reachable`.
uint64_t HammerAround(Machine& machine, const MediaAddress& base, uint32_t first_row,
                      uint32_t last_row, bool interior_reachable, uint32_t rounds) {
  std::vector<uint64_t> aggressors;
  auto add = [&](int64_t row) {
    if (row < 0 || row >= static_cast<int64_t>(machine.decoder().geometry().rows_per_bank)) {
      return;
    }
    MediaAddress media = base;
    media.row = static_cast<uint32_t>(row);
    aggressors.push_back(*machine.decoder().MediaToPhys(media));
  };
  if (interior_reachable) {
    // Double-sided pairs walking the block interior.
    for (uint32_t row = first_row + 1; row + 1 <= last_row; row += 4) {
      add(row - 1);
      add(row + 1);
    }
  } else {
    // Only the closest allocatable rows outside the block.
    add(static_cast<int64_t>(first_row) - 1);
    add(static_cast<int64_t>(first_row) - 3);
    add(last_row + 1);
    add(last_row + 3);
  }
  return HammerPhysAddresses(machine, aggressors, rounds);
}

}  // namespace
}  // namespace siloz

int main() {
  using namespace siloz;
  MachineConfig machine_config = FaultConfig();
  Machine machine(machine_config);
  bench::PrintHeader("§7.1 EPT bit flip prevention: guarded vs unguarded 32-row blocks",
                     machine_config.geometry);

  SilozHypervisor hypervisor(machine.decoder(), machine.phys_memory(), SilozConfig{});
  if (Status boot = hypervisor.Boot(); !boot.ok()) {
    std::fprintf(stderr, "boot failed: %s\n", boot.error().ToString().c_str());
    return 1;
  }
  Result<VmId> vm = hypervisor.CreateVm({.name = "tenant", .memory_bytes = 1536_MiB});
  if (!vm.ok()) {
    std::fprintf(stderr, "CreateVm: %s\n", vm.error().ToString().c_str());
    return 1;
  }

  // --- (a) The protected block: rows [0,32) of the first host group, EPT
  // row group at offset 12. Guard rows are offline, so the attacker's
  // nearest reachable rows are 32+.
  const PhysRange ept_range = hypervisor.ept_pool_ranges(0)[0];
  const MediaAddress ept_media = *machine.decoder().PhysToMedia(ept_range.begin);
  const uint32_t ept_row = ept_media.row;
  HammerAround(machine, ept_media, /*first_row=*/0, /*last_row=*/31,
               /*interior_reachable=*/false, 20000);
  uint64_t protected_flips = 0;
  for (const PhysFlip& flip : machine.DrainFlips()) {
    protected_flips += (flip.record.media_row == ept_row &&
                        flip.media.channel == ept_media.channel &&
                        flip.media.rank == ept_media.rank && flip.media.bank == ept_media.bank);
  }

  // --- (b) Unprotected 32-row blocks in the same subarray group: interior
  // rows are ordinary memory the attacker can hammer double-sided.
  uint64_t unprotected_flips = 0;
  for (uint32_t block_start : {64u, 128u, 256u}) {
    MediaAddress base = ept_media;
    HammerAround(machine, base, block_start, block_start + 31,
                 /*interior_reachable=*/true, 6000);
    for (const PhysFlip& flip : machine.DrainFlips()) {
      unprotected_flips += (flip.record.media_row >= block_start &&
                            flip.record.media_row < block_start + 32);
    }
  }

  std::printf("%-42s | %10s\n", "target", "bit flips");
  bench::PrintRule();
  std::printf("%-42s | %10lu\n", "EPT row group (guard-protected, b=32,o=12)",
              static_cast<unsigned long>(protected_flips));
  std::printf("%-42s | %10lu\n", "unprotected 32-row blocks, same subarray",
              static_cast<unsigned long>(unprotected_flips));
  bench::PrintRule();

  Status audit = hypervisor.AuditVmIsolation(*vm);
  std::printf("Isolation audit after attack: %s\n", audit.ok() ? "PASS" : "FAIL");
  const bool reproduced = protected_flips == 0 && unprotected_flips > 0 && audit.ok();
  std::printf("Result: %s (paper: no flips in protected rows, flips in unprotected)\n",
              reproduced ? "REPRODUCED" : "MISMATCH");
  return reproduced ? 0 : 1;
}
