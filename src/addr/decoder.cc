#include "src/addr/decoder.h"

#include "src/base/check.h"
#include "src/base/units.h"

namespace siloz {

// ---------------------------------------------------------------------------
// SkylakeDecoder
// ---------------------------------------------------------------------------

SkylakeDecoder::SkylakeDecoder(const DramGeometry& geometry) : geometry_(geometry) {
  SILOZ_CHECK(geometry_.Validate().ok());
  SILOZ_CHECK_EQ(geometry_.row_bytes % kCacheLineBytes, 0u);
  lines_per_row_ = geometry_.row_bytes / kCacheLineBytes;
  chunk_bytes_ = static_cast<uint64_t>(kRowGroupsPerChunk) * geometry_.row_group_bytes();
  // Paper layout: 16 chunks per 384 MiB half-range on the evaluation
  // geometry, i.e. each region covers 512 rows before the mapping jump.
  chunks_per_half_ = 16;
  region_bytes_ = static_cast<uint64_t>(kHalvesPerRegion) * chunks_per_half_ * chunk_bytes_;
  rows_per_region_ = kRowGroupsPerChunk * kHalvesPerRegion * chunks_per_half_;
  SILOZ_CHECK_EQ(geometry_.rows_per_bank % rows_per_region_, 0u)
      << "rows_per_bank must be a multiple of " << rows_per_region_;
}

Result<MediaAddress> SkylakeDecoder::PhysToMedia(uint64_t phys) const {
  if (phys >= geometry_.total_bytes()) {
    return MakeError(ErrorCode::kOutOfRange, "phys 0x" + std::to_string(phys) + " beyond DRAM");
  }
  MediaAddress media;
  media.socket = static_cast<uint32_t>(phys / geometry_.socket_bytes());
  const uint64_t socket_off = phys % geometry_.socket_bytes();

  // 768 MiB-aligned region, then the A/B half-range and its 24 MiB chunk.
  const uint64_t region = socket_off / region_bytes_;
  const uint64_t region_off = socket_off % region_bytes_;
  const uint64_t half_bytes = region_bytes_ / kHalvesPerRegion;
  const uint64_t half = region_off / half_bytes;  // 0 = range A, 1 = range B
  const uint64_t half_off = region_off % half_bytes;
  const uint64_t chunk = half_off / chunk_bytes_;
  const uint64_t chunk_off = half_off % chunk_bytes_;
  // Chunks of A and B alternate in ascending row groups (§4.2).
  const uint64_t row_base =
      region * rows_per_region_ + (chunk * kHalvesPerRegion + half) * kRowGroupsPerChunk;

  // Within a chunk: cache lines interleave across channels first, then across
  // the channel's DIMM/rank/bank combinations, then across columns and the
  // chunk's 16 rows.
  const uint64_t byte_in_line = chunk_off % kCacheLineBytes;
  const uint64_t line = chunk_off / kCacheLineBytes;
  media.channel = static_cast<uint32_t>(line % geometry_.channels_per_socket);
  const uint64_t per_channel = line / geometry_.channels_per_socket;
  const uint64_t bank_lin = per_channel % geometry_.banks_per_channel();
  const uint64_t per_bank = per_channel / geometry_.banks_per_channel();
  const uint64_t row_in_chunk = per_bank / lines_per_row_;
  const uint64_t column_line = per_bank % lines_per_row_;

  media.dimm = static_cast<uint32_t>(bank_lin / geometry_.banks_per_dimm());
  media.rank =
      static_cast<uint32_t>((bank_lin / geometry_.banks_per_rank) % geometry_.ranks_per_dimm);
  media.bank = static_cast<uint32_t>(bank_lin % geometry_.banks_per_rank);
  media.row = static_cast<uint32_t>(row_base + row_in_chunk);
  media.column = static_cast<uint32_t>(column_line * kCacheLineBytes + byte_in_line);
  return media;
}

Result<uint64_t> SkylakeDecoder::MediaToPhys(const MediaAddress& media) const {
  SILOZ_RETURN_IF_ERROR(ValidateAddress(geometry_, media));

  // Invert the row decomposition: region, interleaved chunk slot, row.
  const uint64_t region = media.row / rows_per_region_;
  const uint64_t row_in_region = media.row % rows_per_region_;
  const uint64_t slot = row_in_region / kRowGroupsPerChunk;  // chunk*2 + half
  const uint64_t row_in_chunk = row_in_region % kRowGroupsPerChunk;
  const uint64_t chunk = slot / kHalvesPerRegion;
  const uint64_t half = slot % kHalvesPerRegion;

  const uint64_t bank_lin = (static_cast<uint64_t>(media.dimm) * geometry_.ranks_per_dimm +
                             media.rank) *
                                geometry_.banks_per_rank +
                            media.bank;
  const uint64_t column_line = media.column / kCacheLineBytes;
  const uint64_t byte_in_line = media.column % kCacheLineBytes;

  const uint64_t per_bank = row_in_chunk * lines_per_row_ + column_line;
  const uint64_t per_channel = per_bank * geometry_.banks_per_channel() + bank_lin;
  const uint64_t line = per_channel * geometry_.channels_per_socket + media.channel;
  const uint64_t chunk_off = line * kCacheLineBytes + byte_in_line;

  const uint64_t half_bytes = region_bytes_ / kHalvesPerRegion;
  const uint64_t socket_off =
      region * region_bytes_ + half * half_bytes + chunk * chunk_bytes_ + chunk_off;
  return media.socket * geometry_.socket_bytes() + socket_off;
}

// ---------------------------------------------------------------------------
// LinearDecoder
// ---------------------------------------------------------------------------

LinearDecoder::LinearDecoder(const DramGeometry& geometry) : geometry_(geometry) {
  SILOZ_CHECK(geometry_.Validate().ok());
  SILOZ_CHECK_EQ(geometry_.row_bytes % kCacheLineBytes, 0u);
  lines_per_row_ = geometry_.row_bytes / kCacheLineBytes;
}

Result<MediaAddress> LinearDecoder::PhysToMedia(uint64_t phys) const {
  if (phys >= geometry_.total_bytes()) {
    return MakeError(ErrorCode::kOutOfRange, "phys 0x" + std::to_string(phys) + " beyond DRAM");
  }
  MediaAddress media;
  const uint64_t bank_global = phys / geometry_.bank_bytes();
  const uint64_t bank_off = phys % geometry_.bank_bytes();
  media.socket = static_cast<uint32_t>(bank_global / geometry_.banks_per_socket());
  uint64_t in_socket = bank_global % geometry_.banks_per_socket();
  media.channel = static_cast<uint32_t>(in_socket / geometry_.banks_per_channel());
  in_socket %= geometry_.banks_per_channel();
  media.dimm = static_cast<uint32_t>(in_socket / geometry_.banks_per_dimm());
  in_socket %= geometry_.banks_per_dimm();
  media.rank = static_cast<uint32_t>(in_socket / geometry_.banks_per_rank);
  media.bank = static_cast<uint32_t>(in_socket % geometry_.banks_per_rank);
  media.row = static_cast<uint32_t>(bank_off / geometry_.row_bytes);
  media.column = static_cast<uint32_t>(bank_off % geometry_.row_bytes);
  return media;
}

Result<uint64_t> LinearDecoder::MediaToPhys(const MediaAddress& media) const {
  SILOZ_RETURN_IF_ERROR(ValidateAddress(geometry_, media));
  const uint64_t bank_global =
      static_cast<uint64_t>(media.socket) * geometry_.banks_per_socket() +
      SocketBankIndex(geometry_, media);
  return bank_global * geometry_.bank_bytes() +
         static_cast<uint64_t>(media.row) * geometry_.row_bytes + media.column;
}

// ---------------------------------------------------------------------------
// SncDecoder
// ---------------------------------------------------------------------------

namespace {

DramGeometry ClusterGeometry(const DramGeometry& geometry, uint32_t clusters) {
  SILOZ_CHECK_GT(clusters, 0u);
  SILOZ_CHECK_EQ(geometry.channels_per_socket % clusters, 0u)
      << "SNC clusters must evenly divide channels";
  DramGeometry cluster = geometry;
  cluster.sockets = geometry.sockets * clusters;
  cluster.channels_per_socket = geometry.channels_per_socket / clusters;
  return cluster;
}

}  // namespace

SncDecoder::SncDecoder(const DramGeometry& geometry, uint32_t clusters)
    : full_geometry_(geometry),
      clusters_(clusters),
      inner_(ClusterGeometry(geometry, clusters)) {}

Result<MediaAddress> SncDecoder::PhysToMedia(uint64_t phys) const {
  Result<MediaAddress> inner = inner_.PhysToMedia(phys);
  if (!inner.ok()) {
    return inner;
  }
  MediaAddress media = *inner;
  // Inner "sockets" are (socket, cluster) pairs; relocate the cluster into
  // the channel index of the full socket.
  const uint32_t cluster = media.socket % clusters_;
  media.socket /= clusters_;
  media.channel += cluster * inner_.geometry().channels_per_socket;
  return media;
}

Result<uint64_t> SncDecoder::MediaToPhys(const MediaAddress& media) const {
  SILOZ_RETURN_IF_ERROR(ValidateAddress(full_geometry_, media));
  MediaAddress inner = media;
  const uint32_t channels_per_cluster = inner_.geometry().channels_per_socket;
  const uint32_t cluster = media.channel / channels_per_cluster;
  inner.channel = media.channel % channels_per_cluster;
  inner.socket = media.socket * clusters_ + cluster;
  return inner_.MediaToPhys(inner);
}

}  // namespace siloz
