#include "src/addr/decoder.h"

#include "src/base/check.h"
#include "src/base/units.h"

namespace siloz {

// ---------------------------------------------------------------------------
// SkylakeDecoder
// ---------------------------------------------------------------------------

SkylakeDecoder::SkylakeDecoder(const DramGeometry& geometry) : geometry_(geometry) {
  SILOZ_CHECK(geometry_.Validate().ok());
  SILOZ_CHECK_EQ(geometry_.row_bytes % kCacheLineBytes, 0u);
  lines_per_row_ = geometry_.row_bytes / kCacheLineBytes;
  chunk_bytes_ = static_cast<uint64_t>(kRowGroupsPerChunk) * geometry_.row_group_bytes();
  // Paper layout: 16 chunks per 384 MiB half-range on the evaluation
  // geometry, i.e. each region covers 512 rows before the mapping jump.
  chunks_per_half_ = 16;
  region_bytes_ = static_cast<uint64_t>(kHalvesPerRegion) * chunks_per_half_ * chunk_bytes_;
  rows_per_region_ = kRowGroupsPerChunk * kHalvesPerRegion * chunks_per_half_;
  SILOZ_CHECK_EQ(geometry_.rows_per_bank % rows_per_region_, 0u)
      << "rows_per_bank must be a multiple of " << rows_per_region_;
  SILOZ_CHECK_EQ(geometry_.socket_bytes() % region_bytes_, 0u);
  regions_per_socket_ = static_cast<uint32_t>(geometry_.socket_bytes() / region_bytes_);
  div_socket_bytes_ = FastDivider(geometry_.socket_bytes());
  div_region_bytes_ = FastDivider(region_bytes_);
  div_half_bytes_ = FastDivider(region_bytes_ / kHalvesPerRegion);
  div_chunk_bytes_ = FastDivider(chunk_bytes_);
  div_channels_ = FastDivider(geometry_.channels_per_socket);
  div_banks_per_channel_ = FastDivider(geometry_.banks_per_channel());
  div_lines_per_row_ = FastDivider(lines_per_row_);
  div_banks_per_dimm_ = FastDivider(geometry_.banks_per_dimm());
  div_banks_per_rank_ = FastDivider(geometry_.banks_per_rank);
  div_ranks_per_dimm_ = FastDivider(geometry_.ranks_per_dimm);
  div_rows_per_region_ = FastDivider(rows_per_region_);
}

Result<uint64_t> SkylakeDecoder::MediaToPhys(const MediaAddress& media) const {
  SILOZ_RETURN_IF_ERROR(ValidateAddress(geometry_, media));

  // Invert the row decomposition: region, interleaved chunk slot, row.
  uint64_t row_in_region = 0;
  const uint64_t region = div_rows_per_region_.DivMod(media.row, &row_in_region);
  const uint64_t slot = row_in_region / kRowGroupsPerChunk;  // chunk*2 + half
  const uint64_t row_in_chunk = row_in_region % kRowGroupsPerChunk;
  const uint64_t chunk = slot / kHalvesPerRegion;
  const uint64_t half = slot % kHalvesPerRegion;

  const uint64_t bank_lin = (static_cast<uint64_t>(media.dimm) * geometry_.ranks_per_dimm +
                             media.rank) *
                                geometry_.banks_per_rank +
                            media.bank;
  const uint64_t column_line = media.column / kCacheLineBytes;
  const uint64_t byte_in_line = media.column % kCacheLineBytes;

  const uint64_t per_bank = row_in_chunk * lines_per_row_ + column_line;
  const uint64_t per_channel = per_bank * geometry_.banks_per_channel() + bank_lin;
  const uint64_t line = per_channel * geometry_.channels_per_socket + media.channel;
  const uint64_t chunk_off = line * kCacheLineBytes + byte_in_line;

  const uint64_t half_bytes = region_bytes_ / kHalvesPerRegion;
  const uint64_t socket_off =
      region * region_bytes_ + half * half_bytes + chunk * chunk_bytes_ + chunk_off;
  return media.socket * geometry_.socket_bytes() + socket_off;
}

// ---------------------------------------------------------------------------
// LinearDecoder
// ---------------------------------------------------------------------------

LinearDecoder::LinearDecoder(const DramGeometry& geometry) : geometry_(geometry) {
  SILOZ_CHECK(geometry_.Validate().ok());
  SILOZ_CHECK_EQ(geometry_.row_bytes % kCacheLineBytes, 0u);
  lines_per_row_ = geometry_.row_bytes / kCacheLineBytes;
  div_bank_bytes_ = FastDivider(geometry_.bank_bytes());
  div_banks_per_socket_ = FastDivider(geometry_.banks_per_socket());
  div_banks_per_channel_ = FastDivider(geometry_.banks_per_channel());
  div_banks_per_dimm_ = FastDivider(geometry_.banks_per_dimm());
  div_banks_per_rank_ = FastDivider(geometry_.banks_per_rank);
  div_row_bytes_ = FastDivider(geometry_.row_bytes);
}

Result<MediaAddress> LinearDecoder::PhysToMedia(uint64_t phys) const {
  if (phys >= geometry_.total_bytes()) {
    return MakeError(ErrorCode::kOutOfRange, "phys 0x" + std::to_string(phys) + " beyond DRAM");
  }
  MediaAddress media;
  uint64_t bank_off = 0;
  const uint64_t bank_global = div_bank_bytes_.DivMod(phys, &bank_off);
  uint64_t in_socket = 0;
  media.socket = static_cast<uint32_t>(div_banks_per_socket_.DivMod(bank_global, &in_socket));
  uint64_t in_channel = 0;
  media.channel = static_cast<uint32_t>(div_banks_per_channel_.DivMod(in_socket, &in_channel));
  uint64_t in_dimm = 0;
  media.dimm = static_cast<uint32_t>(div_banks_per_dimm_.DivMod(in_channel, &in_dimm));
  uint64_t bank = 0;
  media.rank = static_cast<uint32_t>(div_banks_per_rank_.DivMod(in_dimm, &bank));
  media.bank = static_cast<uint32_t>(bank);
  uint64_t column = 0;
  media.row = static_cast<uint32_t>(div_row_bytes_.DivMod(bank_off, &column));
  media.column = static_cast<uint32_t>(column);
  return media;
}

Result<uint64_t> LinearDecoder::MediaToPhys(const MediaAddress& media) const {
  SILOZ_RETURN_IF_ERROR(ValidateAddress(geometry_, media));
  const uint64_t bank_global =
      static_cast<uint64_t>(media.socket) * geometry_.banks_per_socket() +
      SocketBankIndex(geometry_, media);
  return bank_global * geometry_.bank_bytes() +
         static_cast<uint64_t>(media.row) * geometry_.row_bytes + media.column;
}

// ---------------------------------------------------------------------------
// SncDecoder
// ---------------------------------------------------------------------------

namespace {

DramGeometry ClusterGeometry(const DramGeometry& geometry, uint32_t clusters) {
  SILOZ_CHECK_GT(clusters, 0u);
  SILOZ_CHECK_EQ(geometry.channels_per_socket % clusters, 0u)
      << "SNC clusters must evenly divide channels";
  DramGeometry cluster = geometry;
  cluster.sockets = geometry.sockets * clusters;
  cluster.channels_per_socket = geometry.channels_per_socket / clusters;
  return cluster;
}

}  // namespace

SncDecoder::SncDecoder(const DramGeometry& geometry, uint32_t clusters)
    : full_geometry_(geometry),
      clusters_(clusters),
      inner_(ClusterGeometry(geometry, clusters)) {}

Result<MediaAddress> SncDecoder::PhysToMedia(uint64_t phys) const {
  Result<MediaAddress> inner = inner_.PhysToMedia(phys);
  if (!inner.ok()) {
    return inner;
  }
  MediaAddress media = *inner;
  // Inner "sockets" are (socket, cluster) pairs; relocate the cluster into
  // the channel index of the full socket.
  const uint32_t cluster = media.socket % clusters_;
  media.socket /= clusters_;
  media.channel += cluster * inner_.geometry().channels_per_socket;
  return media;
}

Result<uint64_t> SncDecoder::MediaToPhys(const MediaAddress& media) const {
  SILOZ_RETURN_IF_ERROR(ValidateAddress(full_geometry_, media));
  MediaAddress inner = media;
  const uint32_t channels_per_cluster = inner_.geometry().channels_per_socket;
  const uint32_t cluster = media.channel / channels_per_cluster;
  inner.channel = media.channel % channels_per_cluster;
  inner.socket = media.socket * clusters_ + cluster;
  return inner_.MediaToPhys(inner);
}

}  // namespace siloz
