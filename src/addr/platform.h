// PlatformDecoder registry: the platform matrix behind `--platform`.
//
// Siloz's security argument rests entirely on modeling the physical-to-media
// mapping correctly, and the paper's prototype spans more than one machine
// (Skylake and Cascade Lake, subarray sizes 512/1024/2048). This registry
// turns "the decoder" into a platform matrix: each entry names a machine
// family, carries its default geometry, the decoder factory that models its
// BIOS mapping, the subarray sizes its parts ship with, and the DDR
// generation semantics (remap chain, TRR sampler pressure) the fault model
// needs. Every registered platform is held to the same bar by the
// `platform` ctest label: round-trip invertibility property tests, the full
// four-invariant isolation audit, Table-3 containment, a corrupted-config
// negative control, and a serial-vs-sharded engine differential.
//
// Registration is static and ORDERED (std::map keyed by name): iteration
// order — which the test matrix, --help text, and CI smoke loops all expose
// — must not depend on pointers or hashing (the raw-nondeterminism lint
// rule pins this idiom; see tests/lint).
#ifndef SILOZ_SRC_ADDR_PLATFORM_H_
#define SILOZ_SRC_ADDR_PLATFORM_H_

#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/addr/decoder.h"
#include "src/base/result.h"
#include "src/dram/geometry.h"
#include "src/dram/remap.h"
#include "src/dram/trr.h"

namespace siloz {

// One platform of the matrix. The factory accepts any geometry inside the
// platform's decoder-family constraints (so tests can sweep
// rows_per_subarray or shrink capacity) and reports kInvalidArgument for
// geometries the family cannot express — never a crash.
struct PlatformInfo {
  std::string name;
  std::string description;
  DramGeometry geometry;                 // the platform's default machine
  std::vector<uint32_t> subarray_sizes;  // rows_per_subarray values parts ship with
  // DDR5 parts undo per-device mirroring/inversion internally (§8.2):
  // media subarray blocks equal internal blocks for any size.
  bool uniform_internal_addressing = false;
  RemapConfig remap;                     // DIMM-internal transform chain
  TrrConfig trr;                         // sampler defaults for the generation
  Result<std::unique_ptr<AddressDecoder>> (*make)(const DramGeometry& geometry) = nullptr;
};

// The registry, keyed by platform name in lexicographic order. Entries:
// cascadelake, ddr5, skylake, zen.
const std::map<std::string, PlatformInfo, std::less<>>& PlatformRegistry();

// Names in registry (= lexicographic) order, for --help text and matrices.
std::vector<std::string> PlatformNames();

// nullptr when `name` is not registered.
const PlatformInfo* FindPlatform(std::string_view name);

// Builds the platform's decoder over its default geometry, or over an
// explicit `geometry` (which must stay inside the platform's decoder-family
// constraints — e.g. power-of-two fields for zen). Unknown names and
// out-of-family geometries return kInvalidArgument.
Result<std::unique_ptr<AddressDecoder>> MakePlatformDecoder(std::string_view name);
Result<std::unique_ptr<AddressDecoder>> MakePlatformDecoder(std::string_view name,
                                                            const DramGeometry& geometry);

// The rotation period a shifted-jump negative control should use for this
// platform over `geometry` (audit::CorruptedDecoder): the skx mapping-jump
// region for skylake-family decoders, half a subarray group for XOR-matrix
// ones. Either way it divides the socket and splits every subarray group's
// page set, so the corrupted machine stays a bijection (invariant 1 passes)
// while domain closure (invariant 2) must fail.
uint64_t ShiftedJumpPeriod(const PlatformInfo& info, const DramGeometry& geometry);

}  // namespace siloz

#endif  // SILOZ_SRC_ADDR_PLATFORM_H_
