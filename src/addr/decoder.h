// Physical-to-media address translation (§2.4, §4.2).
//
// Memory controllers translate host physical addresses to media addresses at
// cache-line granularity, interleaving consecutive lines across a socket's
// channels/ranks/banks for bank-level parallelism. The mapping is fixed at
// boot by BIOS; Siloz ports the skx_edac-style translation drivers to run at
// early boot (§5.3). This module is the reproduction's equivalent of those
// drivers: fully invertible decoders with the layout the paper describes.
#ifndef SILOZ_SRC_ADDR_DECODER_H_
#define SILOZ_SRC_ADDR_DECODER_H_

#include <cstdint>
#include <memory>
#include <string>

#include "src/base/result.h"
#include "src/dram/geometry.h"

namespace siloz {

// Translates host physical addresses to media addresses and back.
//
// Implementations must be exact bijections over [0, geometry.total_bytes()):
// Siloz's subarray-group computation and guard-row placement both depend on
// inverting the map.
class AddressDecoder {
 public:
  virtual ~AddressDecoder() = default;

  virtual const DramGeometry& geometry() const = 0;

  // Media address serving physical byte `phys`.
  virtual Result<MediaAddress> PhysToMedia(uint64_t phys) const = 0;

  // Physical byte served by `media`.
  virtual Result<uint64_t> MediaToPhys(const MediaAddress& media) const = 0;

  // Independent interleave domains per socket. 1 for whole-socket
  // interleaving; >1 under sub-NUMA clustering, where each cluster
  // interleaves over its own subset of channels (§8.1). Subarray groups are
  // per-cluster: the same row index in different clusters is a different
  // group.
  virtual uint32_t clusters_per_socket() const { return 1; }

  // Cluster (within the socket) serving a media address.
  virtual uint32_t ClusterOf(const MediaAddress& media) const {
    (void)media;
    return 0;
  }

  virtual std::string name() const = 0;
};

// Skylake-style decoder reproducing the layout of §4.2:
//  - each socket owns a contiguous physical range (no cross-socket
//    interleave, matching the NUMA configuration of the evaluation server);
//  - within a socket, ascending physical pages populate ascending row groups;
//  - more precisely, every 768 MiB-aligned region is fed by two contiguous
//    384 MiB half-ranges A and B whose 24 MiB chunks (n = 16 row groups)
//    alternate: row groups [0,16) <- A chunk 0, [16,32) <- B chunk 0,
//    [32,48) <- A chunk 1, ... with a mapping "jump" to fresh ranges at each
//    768 MiB boundary;
//  - within a chunk, consecutive cache lines interleave across channels, and
//    consecutive channel-local lines across ranks and banks, so every 2 MiB
//    page touches all of the socket's banks yet stays within one subarray
//    group (the property §4.2 needs).
//
// Deviation from real hardware (documented in DESIGN.md): the A/B ranges are
// the adjacent halves of each region, which is slightly more benign to 1 GiB
// pages than real Skylake; the bench for §4.2's 1 GiB analysis quantifies it.
class SkylakeDecoder final : public AddressDecoder {
 public:
  explicit SkylakeDecoder(const DramGeometry& geometry);

  const DramGeometry& geometry() const override { return geometry_; }
  Result<MediaAddress> PhysToMedia(uint64_t phys) const override;
  Result<uint64_t> MediaToPhys(const MediaAddress& media) const override;
  std::string name() const override { return "skylake"; }

  // Layout constants derived from geometry, exposed for tests.
  uint64_t chunk_bytes() const { return chunk_bytes_; }          // 24 MiB default
  uint64_t region_bytes() const { return region_bytes_; }        // 768 MiB default
  uint32_t row_groups_per_chunk() const { return kRowGroupsPerChunk; }

 private:
  // n = 16 row groups per chunk (24 MiB on the evaluation geometry, §4.2).
  static constexpr uint32_t kRowGroupsPerChunk = 16;
  // Two half-ranges (A/B) alternate chunks within a region.
  static constexpr uint32_t kHalvesPerRegion = 2;

  DramGeometry geometry_;
  uint64_t lines_per_row_;     // cache lines per row (128 for 8 KiB rows)
  uint64_t chunk_bytes_;       // kRowGroupsPerChunk * row_group_bytes
  uint64_t region_bytes_;      // chunks covering 512 rows by default
  uint32_t rows_per_region_;   // row indices covered by one region
  uint32_t chunks_per_half_;   // chunks in each 384 MiB half-range
};

// Simple linear decoder: physical bytes fill one bank completely before the
// next (no interleaving). Used as a worst-case baseline: it confines each
// page to a single bank, destroying bank-level parallelism — the
// configuration §4.1 argues against.
class LinearDecoder final : public AddressDecoder {
 public:
  explicit LinearDecoder(const DramGeometry& geometry);

  const DramGeometry& geometry() const override { return geometry_; }
  Result<MediaAddress> PhysToMedia(uint64_t phys) const override;
  Result<uint64_t> MediaToPhys(const MediaAddress& media) const override;
  std::string name() const override { return "linear"; }

 private:
  DramGeometry geometry_;
  uint64_t lines_per_row_;
};

// Sub-NUMA-clustering variant (§8.1): the socket is split into `clusters`
// independent halves, each interleaving over banks_per_socket/clusters banks,
// which shrinks the subarray-group size proportionally.
class SncDecoder final : public AddressDecoder {
 public:
  SncDecoder(const DramGeometry& geometry, uint32_t clusters);

  const DramGeometry& geometry() const override { return full_geometry_; }
  Result<MediaAddress> PhysToMedia(uint64_t phys) const override;
  Result<uint64_t> MediaToPhys(const MediaAddress& media) const override;
  uint32_t clusters_per_socket() const override { return clusters_; }
  uint32_t ClusterOf(const MediaAddress& media) const override {
    return media.channel / (full_geometry_.channels_per_socket / clusters_);
  }
  std::string name() const override { return "snc" + std::to_string(clusters_); }

  uint32_t clusters() const { return clusters_; }

 private:
  // Implemented by running a SkylakeDecoder over a shrunken per-cluster
  // geometry and relocating channels.
  DramGeometry full_geometry_;
  uint32_t clusters_;
  SkylakeDecoder inner_;
};

}  // namespace siloz

#endif  // SILOZ_SRC_ADDR_DECODER_H_
