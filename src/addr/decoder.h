// Physical-to-media address translation (§2.4, §4.2).
//
// Memory controllers translate host physical addresses to media addresses at
// cache-line granularity, interleaving consecutive lines across a socket's
// channels/ranks/banks for bank-level parallelism. The mapping is fixed at
// boot by BIOS; Siloz ports the skx_edac-style translation drivers to run at
// early boot (§5.3). This module is the reproduction's equivalent of those
// drivers: fully invertible decoders with the layout the paper describes.
#ifndef SILOZ_SRC_ADDR_DECODER_H_
#define SILOZ_SRC_ADDR_DECODER_H_

#include <cstdint>
#include <memory>
#include <string>

#include "src/base/fastdiv.h"
#include "src/base/result.h"
#include "src/dram/geometry.h"

namespace siloz {

// Translates host physical addresses to media addresses and back.
//
// Implementations must be exact bijections over [0, geometry.total_bytes()):
// Siloz's subarray-group computation and guard-row placement both depend on
// inverting the map.
class AddressDecoder {
 public:
  virtual ~AddressDecoder() = default;

  virtual const DramGeometry& geometry() const = 0;

  // Media address serving physical byte `phys`.
  virtual Result<MediaAddress> PhysToMedia(uint64_t phys) const = 0;

  // Physical byte served by `media`.
  virtual Result<uint64_t> MediaToPhys(const MediaAddress& media) const = 0;

  // Independent interleave domains per socket. 1 for whole-socket
  // interleaving; >1 under sub-NUMA clustering, where each cluster
  // interleaves over its own subset of channels (§8.1). Subarray groups are
  // per-cluster: the same row index in different clusters is a different
  // group.
  virtual uint32_t clusters_per_socket() const { return 1; }

  // Cluster (within the socket) serving a media address.
  virtual uint32_t ClusterOf(const MediaAddress& media) const {
    (void)media;
    return 0;
  }

  virtual std::string name() const = 0;
};

// Skylake-style decoder reproducing the layout of §4.2:
//  - each socket owns a contiguous physical range (no cross-socket
//    interleave, matching the NUMA configuration of the evaluation server);
//  - within a socket, ascending physical pages populate ascending row groups;
//  - more precisely, every 768 MiB-aligned region is fed by two contiguous
//    384 MiB half-ranges A and B whose 24 MiB chunks (n = 16 row groups)
//    alternate: row groups [0,16) <- A chunk 0, [16,32) <- B chunk 0,
//    [32,48) <- A chunk 1, ... with a mapping "jump" to fresh ranges at each
//    768 MiB boundary;
//  - within a chunk, consecutive cache lines interleave across channels, and
//    consecutive channel-local lines across ranks and banks, so every 2 MiB
//    page touches all of the socket's banks yet stays within one subarray
//    group (the property §4.2 needs).
//
// Deviation from real hardware (documented in DESIGN.md): the A/B ranges are
// the adjacent halves of each region, which is slightly more benign to 1 GiB
// pages than real Skylake; the bench for §4.2's 1 GiB analysis quantifies it.
class SkylakeDecoder final : public AddressDecoder {
 public:
  explicit SkylakeDecoder(const DramGeometry& geometry);

  const DramGeometry& geometry() const override { return geometry_; }

  // Header-inline: trace materialization decodes every generated access, and
  // with the class final a devirtualized caller inlines the whole chain.
  Result<MediaAddress> PhysToMedia(uint64_t phys) const override {
    if (phys >= geometry_.total_bytes()) {
      return MakeError(ErrorCode::kOutOfRange,
                       "phys 0x" + std::to_string(phys) + " beyond DRAM");
    }
    MediaAddress media;
    uint64_t socket_off = 0;
    media.socket = static_cast<uint32_t>(div_socket_bytes_.DivMod(phys, &socket_off));

    // 768 MiB-aligned region, then the A/B half-range and its 24 MiB chunk.
    uint64_t region_off = 0;
    const uint64_t region = div_region_bytes_.DivMod(socket_off, &region_off);
    uint64_t half_off = 0;
    const uint64_t half = div_half_bytes_.DivMod(region_off, &half_off);  // 0 = A, 1 = B
    uint64_t chunk_off = 0;
    const uint64_t chunk = div_chunk_bytes_.DivMod(half_off, &chunk_off);
    // Chunks of A and B alternate in ascending row groups (§4.2).
    const uint64_t row_base =
        region * rows_per_region_ + (chunk * kHalvesPerRegion + half) * kRowGroupsPerChunk;

    // Within a chunk: cache lines interleave across channels first, then
    // across the channel's DIMM/rank/bank combinations, then across columns
    // and the chunk's 16 rows. (kCacheLineBytes is a compile-time power of
    // two; the compiler already emits shifts for it.)
    const uint64_t byte_in_line = chunk_off % kCacheLineBytes;
    const uint64_t line = chunk_off / kCacheLineBytes;
    uint64_t channel = 0;
    const uint64_t per_channel = div_channels_.DivMod(line, &channel);
    media.channel = static_cast<uint32_t>(channel);
    uint64_t bank_lin = 0;
    const uint64_t per_bank = div_banks_per_channel_.DivMod(per_channel, &bank_lin);
    uint64_t column_line = 0;
    const uint64_t row_in_chunk = div_lines_per_row_.DivMod(per_bank, &column_line);

    media.dimm = static_cast<uint32_t>(div_banks_per_dimm_.Divide(bank_lin));
    media.rank = static_cast<uint32_t>(
        div_ranks_per_dimm_.Mod(div_banks_per_rank_.Divide(bank_lin)));
    media.bank = static_cast<uint32_t>(div_banks_per_rank_.Mod(bank_lin));
    media.row = static_cast<uint32_t>(row_base + row_in_chunk);
    media.column = static_cast<uint32_t>(column_line * kCacheLineBytes + byte_in_line);
    return media;
  }

  Result<uint64_t> MediaToPhys(const MediaAddress& media) const override;
  std::string name() const override { return "skylake"; }

  // Layout constants derived from geometry, exposed for tests.
  uint64_t chunk_bytes() const { return chunk_bytes_; }          // 24 MiB default
  uint64_t region_bytes() const { return region_bytes_; }        // 768 MiB default
  uint32_t row_groups_per_chunk() const { return kRowGroupsPerChunk; }

  // Incremental decoder for line-aligned sequential scans. Advance() steps
  // to the next cache line by rippling the interleave counters — channel,
  // then bank, column, row, chunk, half, region, socket — instead of
  // re-running the division cascade; on average that is ~1.2 counter
  // increments per line. media() after Advance() equals
  // *PhysToMedia(previous_phys + kCacheLineBytes) exactly (the carry paths
  // reuse the decoder's own FastDividers), which decoder_test checks across
  // every chunk/half/region/socket boundary. The caller must keep the
  // cursor inside [0, total_bytes()): Advance() past the end is undefined.
  class LineCursor {
   public:
    LineCursor(const SkylakeDecoder& decoder, uint64_t phys) : decoder_(decoder) {
      Reset(phys);
    }

    const MediaAddress& media() const { return media_; }

    // Re-seat the cursor at an arbitrary line-aligned physical address
    // (full decode, same cost as PhysToMedia).
    void Reset(uint64_t phys) {
      SILOZ_DCHECK(phys < decoder_.geometry_.total_bytes());
      SILOZ_DCHECK(phys % kCacheLineBytes == 0);
      uint64_t socket_off = 0;
      media_.socket =
          static_cast<uint32_t>(decoder_.div_socket_bytes_.DivMod(phys, &socket_off));
      uint64_t region_off = 0;
      const uint64_t region = decoder_.div_region_bytes_.DivMod(socket_off, &region_off);
      uint64_t half_off = 0;
      const uint64_t half = decoder_.div_half_bytes_.DivMod(region_off, &half_off);
      uint64_t chunk_off = 0;
      const uint64_t chunk = decoder_.div_chunk_bytes_.DivMod(half_off, &chunk_off);
      const uint64_t line = chunk_off / kCacheLineBytes;
      uint64_t channel = 0;
      const uint64_t per_channel = decoder_.div_channels_.DivMod(line, &channel);
      uint64_t bank_lin = 0;
      const uint64_t per_bank =
          decoder_.div_banks_per_channel_.DivMod(per_channel, &bank_lin);
      uint64_t column_line = 0;
      const uint64_t row_in_chunk = decoder_.div_lines_per_row_.DivMod(per_bank, &column_line);
      media_.channel = static_cast<uint32_t>(channel);
      media_.dimm = static_cast<uint32_t>(decoder_.div_banks_per_dimm_.Divide(bank_lin));
      media_.rank = static_cast<uint32_t>(
          decoder_.div_ranks_per_dimm_.Mod(decoder_.div_banks_per_rank_.Divide(bank_lin)));
      media_.bank = static_cast<uint32_t>(decoder_.div_banks_per_rank_.Mod(bank_lin));
      media_.row = static_cast<uint32_t>(
          region * decoder_.rows_per_region_ +
          (chunk * kHalvesPerRegion + half) * kRowGroupsPerChunk + row_in_chunk);
      media_.column = static_cast<uint32_t>(column_line * kCacheLineBytes);
      bank_lin_ = static_cast<uint32_t>(bank_lin);
      column_line_ = static_cast<uint32_t>(column_line);
      row_in_chunk_ = static_cast<uint32_t>(row_in_chunk);
      chunk_ = static_cast<uint32_t>(chunk);
      half_ = static_cast<uint32_t>(half);
      region_ = static_cast<uint32_t>(region);
    }

    // Step to the next cache line. Channels carry first (the common exit),
    // so most calls are one increment and one compare.
    void Advance() {
      const uint32_t channel = media_.channel + 1;
      if (channel < decoder_.geometry_.channels_per_socket) [[likely]] {
        media_.channel = channel;
        return;
      }
      media_.channel = 0;
      AdvanceBank();
    }

   private:
    void AdvanceBank() {
      const uint32_t bank_lin = bank_lin_ + 1;
      if (bank_lin < decoder_.geometry_.banks_per_channel()) {
        bank_lin_ = bank_lin;
        media_.dimm = static_cast<uint32_t>(decoder_.div_banks_per_dimm_.Divide(bank_lin));
        media_.rank = static_cast<uint32_t>(
            decoder_.div_ranks_per_dimm_.Mod(decoder_.div_banks_per_rank_.Divide(bank_lin)));
        media_.bank = static_cast<uint32_t>(decoder_.div_banks_per_rank_.Mod(bank_lin));
        return;
      }
      bank_lin_ = 0;
      media_.dimm = 0;
      media_.rank = 0;
      media_.bank = 0;
      const uint32_t column_line = column_line_ + 1;
      if (column_line < decoder_.lines_per_row_) {
        column_line_ = column_line;
        media_.column = column_line * kCacheLineBytes;
        return;
      }
      column_line_ = 0;
      media_.column = 0;
      const uint32_t row_in_chunk = row_in_chunk_ + 1;
      if (row_in_chunk < kRowGroupsPerChunk) {
        row_in_chunk_ = row_in_chunk;
        ++media_.row;
        return;
      }
      row_in_chunk_ = 0;
      // The chunk is exhausted: physically the next line sits in the next
      // chunk of the same half (A/B halves are contiguous byte ranges), so
      // the row jumps by a whole interleave slot.
      if (++chunk_ == decoder_.chunks_per_half_) {
        chunk_ = 0;
        if (++half_ == kHalvesPerRegion) {
          half_ = 0;
          if (++region_ == decoder_.regions_per_socket_) {
            region_ = 0;
            ++media_.socket;
          }
        }
      }
      media_.row = region_ * decoder_.rows_per_region_ +
                   (chunk_ * kHalvesPerRegion + half_) * kRowGroupsPerChunk;
    }

    const SkylakeDecoder& decoder_;
    MediaAddress media_;
    uint32_t bank_lin_ = 0;      // (dimm, rank, bank) linearized within channel
    uint32_t column_line_ = 0;   // cache line within the row
    uint32_t row_in_chunk_ = 0;  // row group within the 24 MiB chunk
    uint32_t chunk_ = 0;         // chunk within the half-range
    uint32_t half_ = 0;          // A/B half within the region
    uint32_t region_ = 0;        // region within the socket
  };

 private:
  // n = 16 row groups per chunk (24 MiB on the evaluation geometry, §4.2).
  static constexpr uint32_t kRowGroupsPerChunk = 16;
  // Two half-ranges (A/B) alternate chunks within a region.
  static constexpr uint32_t kHalvesPerRegion = 2;

  DramGeometry geometry_;
  uint64_t lines_per_row_;     // cache lines per row (128 for 8 KiB rows)
  uint64_t chunk_bytes_;       // kRowGroupsPerChunk * row_group_bytes
  uint64_t region_bytes_;      // chunks covering 512 rows by default
  uint32_t rows_per_region_;   // row indices covered by one region
  uint32_t chunks_per_half_;   // chunks in each 384 MiB half-range
  uint32_t regions_per_socket_;  // socket_bytes / region_bytes (exact)

  // Divide-free fast paths: every divisor in the decode chain is fixed at
  // construction, so the udiv/urem chains collapse to multiply-shift
  // reciprocals (exact for all inputs — see fastdiv.h).
  FastDivider div_socket_bytes_;
  FastDivider div_region_bytes_;
  FastDivider div_half_bytes_;
  FastDivider div_chunk_bytes_;
  FastDivider div_channels_;
  FastDivider div_banks_per_channel_;
  FastDivider div_lines_per_row_;
  FastDivider div_banks_per_dimm_;
  FastDivider div_banks_per_rank_;
  FastDivider div_ranks_per_dimm_;
  FastDivider div_rows_per_region_;
};

// Simple linear decoder: physical bytes fill one bank completely before the
// next (no interleaving). Used as a worst-case baseline: it confines each
// page to a single bank, destroying bank-level parallelism — the
// configuration §4.1 argues against.
class LinearDecoder final : public AddressDecoder {
 public:
  explicit LinearDecoder(const DramGeometry& geometry);

  const DramGeometry& geometry() const override { return geometry_; }
  Result<MediaAddress> PhysToMedia(uint64_t phys) const override;
  Result<uint64_t> MediaToPhys(const MediaAddress& media) const override;
  std::string name() const override { return "linear"; }

 private:
  DramGeometry geometry_;
  uint64_t lines_per_row_;

  FastDivider div_bank_bytes_;
  FastDivider div_banks_per_socket_;
  FastDivider div_banks_per_channel_;
  FastDivider div_banks_per_dimm_;
  FastDivider div_banks_per_rank_;
  FastDivider div_row_bytes_;
};

// Sub-NUMA-clustering variant (§8.1): the socket is split into `clusters`
// independent halves, each interleaving over banks_per_socket/clusters banks,
// which shrinks the subarray-group size proportionally.
class SncDecoder final : public AddressDecoder {
 public:
  SncDecoder(const DramGeometry& geometry, uint32_t clusters);

  const DramGeometry& geometry() const override { return full_geometry_; }
  Result<MediaAddress> PhysToMedia(uint64_t phys) const override;
  Result<uint64_t> MediaToPhys(const MediaAddress& media) const override;
  uint32_t clusters_per_socket() const override { return clusters_; }
  uint32_t ClusterOf(const MediaAddress& media) const override {
    return media.channel / (full_geometry_.channels_per_socket / clusters_);
  }
  std::string name() const override { return "snc" + std::to_string(clusters_); }

  uint32_t clusters() const { return clusters_; }

 private:
  // Implemented by running a SkylakeDecoder over a shrunken per-cluster
  // geometry and relocating channels.
  DramGeometry full_geometry_;
  uint32_t clusters_;
  SkylakeDecoder inner_;
};

}  // namespace siloz

#endif  // SILOZ_SRC_ADDR_DECODER_H_
