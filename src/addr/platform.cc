#include "src/addr/platform.h"

#include "src/addr/xor_decoder.h"
#include "src/base/check.h"
#include "src/base/units.h"

namespace siloz {

namespace {

// The interleaved skx_edac layout (decoder.h): regions cover 512 rows, so
// the bank must hold a whole number of regions. Pre-checked here so an
// out-of-family geometry is an error, not a SILOZ_CHECK crash.
Result<std::unique_ptr<AddressDecoder>> MakeSkylakeFamily(const DramGeometry& geometry) {
  if (geometry.rows_per_bank % 512 != 0) {
    return MakeError(ErrorCode::kInvalidArgument,
                     "skylake-family decoders need rows_per_bank divisible by 512, got " +
                         std::to_string(geometry.rows_per_bank));
  }
  return Result<std::unique_ptr<AddressDecoder>>(std::make_unique<SkylakeDecoder>(geometry));
}

// Zen's XOR masks are bound to ZenXorSpec()'s bit widths; only the subarray
// size (a Siloz boot parameter, not an address-function input) may vary.
Result<std::unique_ptr<AddressDecoder>> MakeZenFamily(const DramGeometry& geometry) {
  XorMaskSpec spec = ZenXorSpec();
  DramGeometry expected = spec.geometry;
  expected.rows_per_subarray = geometry.rows_per_subarray;
  if (!(geometry == expected)) {
    return MakeError(ErrorCode::kInvalidArgument,
                     "zen's XOR masks are bound to its geometry; only rows_per_subarray "
                     "may vary from the registered default");
  }
  spec.geometry.rows_per_subarray = geometry.rows_per_subarray;
  Result<std::unique_ptr<XorMaskDecoder>> built = XorMaskDecoder::Build(spec);
  SILOZ_RETURN_IF_ERROR(built);
  return Result<std::unique_ptr<AddressDecoder>>(std::move(*built));
}

// Skylake: the paper's evaluation server (Table 2) — dual-socket, 6
// channels/socket, one 2Rx4 32 GiB DIMM per channel, 1024-row subarrays.
PlatformInfo Skylake() {
  PlatformInfo info;
  info.name = "skylake";
  info.description = "Intel Skylake-SP, DDR4, 6ch x 1 DIMM, 192 GiB/socket (Table 2)";
  info.geometry = DramGeometry{};
  info.subarray_sizes = {512, 1024, 2048};
  info.make = &MakeSkylakeFamily;
  return info;
}

// Cascade Lake: same skx_edac translation family as Skylake (the prototype
// runs unchanged on both, §5.3), denser DIMM population — two dual-rank
// DIMMs per channel with 64 Ki-row banks — and parts that ship with 512-row
// subarrays, so the default group is 1.5 GiB over 384 banks.
PlatformInfo CascadeLake() {
  PlatformInfo info;
  info.name = "cascadelake";
  info.description = "Intel Cascade Lake-SP, DDR4, 6ch x 2 DIMMs, 192 GiB/socket";
  DramGeometry g;
  g.sockets = 2;
  g.channels_per_socket = 6;
  g.dimms_per_channel = 2;
  g.ranks_per_dimm = 2;
  g.banks_per_rank = 16;
  g.row_bytes = 8 * kKiB;
  g.rows_per_bank = 65536;
  g.rows_per_subarray = 512;
  info.geometry = g;
  info.subarray_sizes = {512, 1024, 2048};
  info.make = &MakeSkylakeFamily;
  return info;
}

// Zen: XOR-matrix address functions (ZenHammer-style), 2-channel desktop
// part. The decoder is the generic GF(2) engine over ZenXorSpec()'s masks.
PlatformInfo Zen() {
  PlatformInfo info;
  info.name = "zen";
  info.description = "AMD Zen, DDR4, XOR-matrix address functions, 2ch, 32 GiB";
  info.geometry = ZenXorSpec().geometry;
  info.subarray_sizes = {512, 1024, 2048};
  info.make = &MakeZenFamily;
  return info;
}

// DDR5 server: 8 channels/socket, 32 banks/rank (8 bank groups x 4), 256
// GiB/socket. Uniform internal addressing (§8.2) and a same-bank-refresh
// sampler: DDR5 REFsb refreshes one bank per tick instead of the whole
// rank, which multiplies the TRR sampler's per-bank service opportunities —
// modeled as more targets per REF with a lower confidence threshold.
PlatformInfo Ddr5() {
  PlatformInfo info;
  info.name = "ddr5";
  info.description = "DDR5 server, 8ch x 1 DIMM, 32 banks/rank, 256 GiB/socket";
  DramGeometry g;
  g.sockets = 2;
  g.channels_per_socket = 8;
  g.dimms_per_channel = 1;
  g.ranks_per_dimm = 2;
  g.banks_per_rank = 32;
  g.row_bytes = 8 * kKiB;
  g.rows_per_bank = 65536;
  g.rows_per_subarray = 1024;
  info.geometry = g;
  info.subarray_sizes = {512, 1024, 2048};
  info.uniform_internal_addressing = true;
  info.remap = Ddr5RemapConfig();
  info.trr.targets_per_ref = 2;
  info.trr.act_threshold = 256;
  info.make = &MakeSkylakeFamily;
  return info;
}

}  // namespace

const std::map<std::string, PlatformInfo, std::less<>>& PlatformRegistry() {
  // Ordered container on purpose: iteration order feeds test matrices and
  // CI smoke loops, so it must be the names' lexicographic order, never
  // pointer or hash order (raw-nondeterminism lint rule).
  static const auto& registry = *new std::map<std::string, PlatformInfo, std::less<>>([] {
    std::map<std::string, PlatformInfo, std::less<>> platforms;
    for (PlatformInfo info : {Skylake(), CascadeLake(), Zen(), Ddr5()}) {
      const std::string name = info.name;
      platforms.emplace(name, std::move(info));
    }
    return platforms;
  }());
  return registry;
}

std::vector<std::string> PlatformNames() {
  std::vector<std::string> names;
  for (const auto& [name, info] : PlatformRegistry()) {
    names.push_back(name);
  }
  return names;
}

const PlatformInfo* FindPlatform(std::string_view name) {
  const auto& registry = PlatformRegistry();
  const auto it = registry.find(name);
  return it == registry.end() ? nullptr : &it->second;
}

Result<std::unique_ptr<AddressDecoder>> MakePlatformDecoder(std::string_view name) {
  const PlatformInfo* info = FindPlatform(name);
  if (info == nullptr) {
    return MakeError(ErrorCode::kInvalidArgument,
                     "unknown platform '" + std::string(name) + "'");
  }
  return info->make(info->geometry);
}

Result<std::unique_ptr<AddressDecoder>> MakePlatformDecoder(std::string_view name,
                                                            const DramGeometry& geometry) {
  const PlatformInfo* info = FindPlatform(name);
  if (info == nullptr) {
    return MakeError(ErrorCode::kInvalidArgument,
                     "unknown platform '" + std::string(name) + "'");
  }
  SILOZ_RETURN_IF_ERROR(geometry.Validate());
  return info->make(geometry);
}

uint64_t ShiftedJumpPeriod(const PlatformInfo& info, const DramGeometry& geometry) {
  if (info.make == &MakeZenFamily) {
    return geometry.subarray_group_bytes() / 2;
  }
  return SkylakeDecoder(geometry).region_bytes();
}

}  // namespace siloz
