#include "src/addr/subarray_group.h"

#include <string>
#include <vector>

#include "src/base/check.h"
#include "src/base/mutex.h"
#include "src/base/units.h"

namespace siloz {
namespace {

// Build() probes every page of DRAM through the decoder — ~100k decodes plus
// extent merging — and experiment grids re-run it for every trial's freshly
// constructed hypervisor with identical inputs. The result is a pure
// function of (decoder mapping, rows_per_subarray, probe_page), so cache it
// for the stock decoder types, whose mapping is fully determined by
// name() + geometry. Decoders outside that set (test fakes, the audit's
// corrupted wrappers) are never cached: their name/geometry pair does not
// pin down the mapping.
struct BuildCacheEntry {
  std::string decoder_name;
  DramGeometry geometry;
  uint32_t rows_per_subarray = 0;
  uint64_t probe_page = 0;
  SubarrayGroupMap map;  // decoder_ cleared; re-pointed on every hit
};

Mutex build_cache_mutex;
std::vector<BuildCacheEntry> build_cache GUARDED_BY(build_cache_mutex);
constexpr size_t kBuildCacheMaxEntries = 8;

bool IsStockDecoder(const AddressDecoder& decoder) {
  return dynamic_cast<const SkylakeDecoder*>(&decoder) != nullptr ||
         dynamic_cast<const LinearDecoder*>(&decoder) != nullptr ||
         dynamic_cast<const SncDecoder*>(&decoder) != nullptr;
}

}  // namespace

uint32_t SubarrayGroupMap::GroupOfMedia(const MediaAddress& media) const {
  const uint32_t cluster = decoder_->ClusterOf(media);
  return (media.socket * clusters_per_socket_ + cluster) * groups_per_cluster_ +
         media.row / rows_per_subarray_;
}

Result<SubarrayGroupMap> SubarrayGroupMap::Build(const AddressDecoder& decoder,
                                                 uint32_t rows_per_subarray,
                                                 uint64_t probe_page) {
  const DramGeometry& geometry = decoder.geometry();
  if (rows_per_subarray == 0 || geometry.rows_per_bank % rows_per_subarray != 0) {
    return MakeError(ErrorCode::kInvalidArgument,
                     "rows_per_subarray " + std::to_string(rows_per_subarray) +
                         " does not divide rows_per_bank " +
                         std::to_string(geometry.rows_per_bank));
  }
  if (probe_page == 0 || geometry.total_bytes() % probe_page != 0) {
    return MakeError(ErrorCode::kInvalidArgument, "probe_page must divide total DRAM size");
  }

  const bool cacheable = IsStockDecoder(decoder);
  std::string decoder_name;
  if (cacheable) {
    decoder_name = decoder.name();
    MutexLock lock(build_cache_mutex);
    for (const BuildCacheEntry& entry : build_cache) {
      if (entry.decoder_name == decoder_name && entry.geometry == geometry &&
          entry.rows_per_subarray == rows_per_subarray && entry.probe_page == probe_page) {
        SubarrayGroupMap copy = entry.map;
        copy.decoder_ = &decoder;
        return copy;
      }
    }
  }

  SubarrayGroupMap map;
  map.decoder_ = &decoder;
  map.rows_per_subarray_ = rows_per_subarray;
  map.sockets_ = geometry.sockets;
  map.clusters_per_socket_ = decoder.clusters_per_socket();
  map.groups_per_cluster_ = geometry.rows_per_bank / rows_per_subarray;
  map.group_bytes_ = static_cast<uint64_t>(geometry.banks_per_socket() /
                                           map.clusters_per_socket_) *
                     rows_per_subarray * geometry.row_bytes;
  map.ranges_.resize(map.total_groups());

  // Probe the decoder at page granularity; merge adjacent pages of the same
  // group into extents. The decoder guarantees (and tests verify) that a
  // probe_page-aligned page never straddles groups.
  for (uint64_t phys = 0; phys < geometry.total_bytes(); phys += probe_page) {
    Result<MediaAddress> media = decoder.PhysToMedia(phys);
    SILOZ_RETURN_IF_ERROR(media);
    const uint32_t group = map.GroupOfMedia(*media);
    std::vector<PhysRange>& extents = map.ranges_[group];
    if (!extents.empty() && extents.back().end == phys) {
      extents.back().end = phys + probe_page;
    } else {
      extents.push_back(PhysRange{phys, phys + probe_page});
    }
  }

  // Sanity: every group must cover exactly group_bytes.
  for (uint32_t g = 0; g < map.total_groups(); ++g) {
    uint64_t covered = 0;
    for (const PhysRange& range : map.ranges_[g]) {
      covered += range.size();
    }
    if (covered != map.group_bytes_) {
      return MakeError(ErrorCode::kFailedPrecondition,
                       "group " + std::to_string(g) + " covers " + std::to_string(covered) +
                           " bytes, expected " + std::to_string(map.group_bytes_));
    }
  }
  if (cacheable) {
    MutexLock lock(build_cache_mutex);
    if (build_cache.size() >= kBuildCacheMaxEntries) {
      build_cache.erase(build_cache.begin());
    }
    SubarrayGroupMap cached = map;
    cached.decoder_ = nullptr;
    build_cache.push_back(BuildCacheEntry{decoder_name, geometry, rows_per_subarray,
                                          probe_page, std::move(cached)});
  }
  return map;
}

Result<uint32_t> SubarrayGroupMap::GroupAt(uint32_t socket, uint32_t cluster,
                                           uint32_t index_in_cluster) const {
  if (socket >= sockets_ || cluster >= clusters_per_socket_ ||
      index_in_cluster >= groups_per_cluster_) {
    return MakeError(ErrorCode::kOutOfRange,
                     "no group (socket " + std::to_string(socket) + ", cluster " +
                         std::to_string(cluster) + ", subarray " +
                         std::to_string(index_in_cluster) + ")");
  }
  return (socket * clusters_per_socket_ + cluster) * groups_per_cluster_ + index_in_cluster;
}

Result<uint32_t> SubarrayGroupMap::GroupOfPhys(uint64_t phys) const {
  Result<MediaAddress> media = decoder_->PhysToMedia(phys);
  SILOZ_RETURN_IF_ERROR(media);
  return GroupOfMedia(*media);
}

const std::vector<PhysRange>& SubarrayGroupMap::RangesOf(uint32_t group) const {
  SILOZ_CHECK_LT(group, ranges_.size());
  return ranges_[group];
}

Result<bool> SubarrayGroupMap::PageIsContained(const AddressDecoder& decoder,
                                               uint64_t page_start, uint64_t page_bytes) const {
  Result<uint32_t> first = GroupOfPhys(page_start);
  SILOZ_RETURN_IF_ERROR(first);
  for (uint64_t offset = 0; offset < page_bytes; offset += kCacheLineBytes) {
    Result<MediaAddress> media = decoder.PhysToMedia(page_start + offset);
    SILOZ_RETURN_IF_ERROR(media);
    if (GroupOfMedia(*media) != *first) {
      return false;
    }
  }
  return true;
}

}  // namespace siloz
