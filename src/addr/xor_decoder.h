// XOR-matrix address decoder: DRAM address functions as GF(2) linear maps.
//
// AMD Zen memory controllers (and most contemporary ones) derive each media
// coordinate bit as the XOR of a subset of physical address bits; reverse-
// engineering tools (DRAMA, ZenHammer's DRAMAddr/dare solver) publish the
// mapping exactly in that form — one 64-bit mask per output bit, the output
// bit being the parity of (phys & mask). This module is the generic engine
// for that family: encoding is mask application, decoding is application of
// the matrix inverse, computed once at construction by Gaussian elimination
// over GF(2). A mapping is a bijection iff its bit matrix has full rank,
// which makes invertibility a *checkable property* rather than an assumption
// — the platform test battery asserts it for every registered platform and
// proves a deliberately rank-deficient spec is rejected.
#ifndef SILOZ_SRC_ADDR_XOR_DECODER_H_
#define SILOZ_SRC_ADDR_XOR_DECODER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/addr/decoder.h"
#include "src/base/result.h"
#include "src/dram/geometry.h"

namespace siloz {

// One platform's DRAM address functions. Field masks are listed LSB-first:
// media.bank bit i = parity(phys & bank_masks[i]), and so on. Every geometry
// field must be a power of two (the matrix is square over log2(total_bytes)
// bits), and each mask list must be exactly log2(field extent) long.
struct XorMaskSpec {
  std::string name = "xor";
  DramGeometry geometry;
  std::vector<uint64_t> socket_masks;
  std::vector<uint64_t> channel_masks;
  std::vector<uint64_t> dimm_masks;
  std::vector<uint64_t> rank_masks;
  std::vector<uint64_t> bank_masks;
  std::vector<uint64_t> row_masks;
  std::vector<uint64_t> column_masks;
};

// Rank of the stacked mask matrix over GF(2), restricted to the low
// `bits` physical-address bits. A spec is invertible iff the rank equals
// both the mask count and `bits`. Exposed for the injectivity property
// tests, which assert full rank for every registered platform and a deficit
// for a deliberately singular spec.
uint32_t XorMatrixRank(const std::vector<uint64_t>& masks, uint32_t bits);

class XorMaskDecoder final : public AddressDecoder {
 public:
  // Validates the spec (power-of-two geometry, mask counts, full rank) and
  // precomputes the inverse matrix. Returns kInvalidArgument with the first
  // offending property otherwise — including a rank deficit, which names the
  // aliased address pair a singular matrix would create.
  static Result<std::unique_ptr<XorMaskDecoder>> Build(const XorMaskSpec& spec);

  const DramGeometry& geometry() const override { return spec_.geometry; }
  Result<MediaAddress> PhysToMedia(uint64_t phys) const override;
  Result<uint64_t> MediaToPhys(const MediaAddress& media) const override;
  std::string name() const override { return spec_.name; }

  // Address-space width: log2(total_bytes); the matrix is n x n.
  uint32_t bits() const { return bits_; }
  // Forward matrix rows in media-bit order (column bits first, then channel,
  // dimm, rank, bank, row, socket) — the order decode packs the media bit
  // vector in. Exposed for the mask-rank/injectivity property tests.
  const std::vector<uint64_t>& forward_masks() const { return forward_; }
  const std::vector<uint64_t>& inverse_masks() const { return inverse_; }

 private:
  explicit XorMaskDecoder(XorMaskSpec spec);

  XorMaskSpec spec_;
  uint32_t bits_ = 0;
  // Bit offsets of each field within the packed media bit vector.
  uint32_t column_bits_ = 0, channel_bits_ = 0, dimm_bits_ = 0, rank_bits_ = 0,
           bank_bits_ = 0, row_bits_ = 0, socket_bits_ = 0;
  std::vector<uint64_t> forward_;  // media bit i = parity(phys & forward_[i])
  std::vector<uint64_t> inverse_;  // phys bit i = parity(media_vec & inverse_[i])
};

// The Zen-style reference platform: 1 socket, 2 channels, 2 ranks, 16 banks
// of 64 Ki 8 KiB rows (32 GiB). Channel/rank/bank functions fold row bits in
// (ZenHammer Table-style), column and row bits are direct — the shape the
// dare solver recovers on Zen parts. Row bits sit high enough that every
// 2 MiB page stays inside one subarray group (the §4.2 property Siloz
// needs), while bank/channel functions below 2 MiB preserve bank-level
// parallelism within the page.
XorMaskSpec ZenXorSpec();

}  // namespace siloz

#endif  // SILOZ_SRC_ADDR_XOR_DECODER_H_
