// Subarray groups (§4): Siloz's DRAM isolation domain.
//
// A subarray group is the union of the s-th subarray of every bank in an
// interleave domain (a whole physical node normally; one SNC cluster under
// sub-NUMA clustering, §8.1): row groups [s*r, (s+1)*r) for subarray size r.
// Hammering in one group cannot flip bits in another, yet a group still
// spans every bank its pages interleave over, preserving bank-level
// parallelism.
//
// SubarrayGroupMap is the boot-time computation of §5.3: given the
// physical-to-media decoder and the rows-per-subarray boot parameter, derive
// the physical address extents of every group. The extents are *derived by
// probing the decoder*, not assumed, so they remain correct for any decoder
// (Skylake, SNC, linear).
#ifndef SILOZ_SRC_ADDR_SUBARRAY_GROUP_H_
#define SILOZ_SRC_ADDR_SUBARRAY_GROUP_H_

#include <cstdint>
#include <vector>

#include "src/addr/decoder.h"
#include "src/base/result.h"

namespace siloz {

// Half-open physical byte range [begin, end).
struct PhysRange {
  uint64_t begin = 0;
  uint64_t end = 0;

  uint64_t size() const { return end - begin; }
  bool Contains(uint64_t phys) const { return phys >= begin && phys < end; }
  bool operator==(const PhysRange&) const = default;
};

class SubarrayGroupMap {
 public:
  // Probes `decoder` at `probe_page` granularity (must be a granularity at
  // which the decoder maps whole pages into single subarray groups; 2 MiB for
  // all decoders here, §4.2). rows_per_subarray must divide rows_per_bank.
  static Result<SubarrayGroupMap> Build(const AddressDecoder& decoder,
                                        uint32_t rows_per_subarray,
                                        uint64_t probe_page = 2 * 1024 * 1024);

  uint32_t rows_per_subarray() const { return rows_per_subarray_; }
  // Groups per interleave domain (= subarrays per bank).
  uint32_t groups_per_cluster() const { return groups_per_cluster_; }
  uint32_t clusters_per_socket() const { return clusters_per_socket_; }
  uint32_t groups_per_socket() const { return groups_per_cluster_ * clusters_per_socket_; }
  uint32_t total_groups() const { return groups_per_socket() * sockets_; }
  // Bytes per group: banks in one interleave domain * rows * row size.
  uint64_t group_bytes() const { return group_bytes_; }

  // Global group id of a physical address:
  //   (socket * clusters + cluster) * groups_per_cluster + subarray index.
  Result<uint32_t> GroupOfPhys(uint64_t phys) const;

  // Global group id from decomposed coordinates (the inverse of
  // SocketOfGroup/ClusterOfGroup/IndexInCluster).
  Result<uint32_t> GroupAt(uint32_t socket, uint32_t cluster, uint32_t index_in_cluster) const;

  // Physical extents of a group, ascending and non-overlapping.
  const std::vector<PhysRange>& RangesOf(uint32_t group) const;

  uint32_t SocketOfGroup(uint32_t group) const { return group / groups_per_socket(); }
  uint32_t ClusterOfGroup(uint32_t group) const {
    return (group / groups_per_cluster_) % clusters_per_socket_;
  }
  // Subarray index within the bank.
  uint32_t IndexInCluster(uint32_t group) const { return group % groups_per_cluster_; }

  // True iff [page_start, page_start + page_bytes) maps entirely into one
  // group when checked at cache-line granularity. Used by isolation tests and
  // the 1 GiB-page analysis (§4.2).
  Result<bool> PageIsContained(const AddressDecoder& decoder, uint64_t page_start,
                               uint64_t page_bytes) const;

 private:
  SubarrayGroupMap() = default;

  uint32_t GroupOfMedia(const MediaAddress& media) const;

  const AddressDecoder* decoder_ = nullptr;
  uint32_t rows_per_subarray_ = 0;
  uint32_t groups_per_cluster_ = 0;
  uint32_t clusters_per_socket_ = 1;
  uint32_t sockets_ = 0;
  uint64_t group_bytes_ = 0;
  std::vector<std::vector<PhysRange>> ranges_;  // indexed by global group id
};

}  // namespace siloz

#endif  // SILOZ_SRC_ADDR_SUBARRAY_GROUP_H_
