#include "src/addr/xor_decoder.h"

#include <bit>
#include <utility>

#include "src/base/bitops.h"
#include "src/base/check.h"
#include "src/base/units.h"

namespace siloz {

namespace {

// Parity of (value & mask): the GF(2) dot product the whole scheme reduces to.
inline uint64_t ParityOf(uint64_t value, uint64_t mask) {
  return static_cast<uint64_t>(std::popcount(value & mask) & 1);
}

// Gathers a field's bits from `phys` through its masks, LSB-first.
inline uint32_t ApplyMasks(uint64_t phys, const std::vector<uint64_t>& masks) {
  uint32_t value = 0;
  for (size_t i = 0; i < masks.size(); ++i) {
    value |= static_cast<uint32_t>(ParityOf(phys, masks[i])) << i;
  }
  return value;
}

Status CheckFieldMasks(const char* field, uint64_t extent, const std::vector<uint64_t>& masks,
                       uint32_t bits) {
  if (!IsPowerOfTwo(extent)) {
    return MakeError(ErrorCode::kInvalidArgument,
                     std::string(field) + " extent " + std::to_string(extent) +
                         " is not a power of two");
  }
  if (masks.size() != Log2(extent)) {
    return MakeError(ErrorCode::kInvalidArgument,
                     std::string(field) + " needs " + std::to_string(Log2(extent)) +
                         " masks, got " + std::to_string(masks.size()));
  }
  const uint64_t space = (bits >= 64) ? ~0ull : ((1ull << bits) - 1);
  for (uint64_t mask : masks) {
    if (mask == 0 || (mask & ~space) != 0) {
      return MakeError(ErrorCode::kInvalidArgument,
                       std::string(field) + " mask 0x" + std::to_string(mask) +
                           " is empty or reaches beyond the " + std::to_string(bits) +
                           "-bit address space");
    }
  }
  return Status::Ok();
}

}  // namespace

uint32_t XorMatrixRank(const std::vector<uint64_t>& masks, uint32_t bits) {
  // Row-reduce over GF(2): each mask is one matrix row of `bits` columns.
  std::vector<uint64_t> rows = masks;
  uint32_t rank = 0;
  for (uint32_t col = 0; col < bits && rank < rows.size(); ++col) {
    const uint64_t pivot_bit = 1ull << col;
    size_t pivot = rank;
    while (pivot < rows.size() && (rows[pivot] & pivot_bit) == 0) {
      ++pivot;
    }
    if (pivot == rows.size()) {
      continue;
    }
    std::swap(rows[rank], rows[pivot]);
    for (size_t r = 0; r < rows.size(); ++r) {
      if (r != rank && (rows[r] & pivot_bit) != 0) {
        rows[r] ^= rows[rank];
      }
    }
    ++rank;
  }
  return rank;
}

XorMaskDecoder::XorMaskDecoder(XorMaskSpec spec) : spec_(std::move(spec)) {
  bits_ = Log2(spec_.geometry.total_bytes());
  column_bits_ = static_cast<uint32_t>(spec_.column_masks.size());
  channel_bits_ = static_cast<uint32_t>(spec_.channel_masks.size());
  dimm_bits_ = static_cast<uint32_t>(spec_.dimm_masks.size());
  rank_bits_ = static_cast<uint32_t>(spec_.rank_masks.size());
  bank_bits_ = static_cast<uint32_t>(spec_.bank_masks.size());
  row_bits_ = static_cast<uint32_t>(spec_.row_masks.size());
  socket_bits_ = static_cast<uint32_t>(spec_.socket_masks.size());
  // Packed media-vector order: column, channel, dimm, rank, bank, row,
  // socket. Any fixed order works; this one keeps the hot column/channel
  // bits in the low word positions.
  forward_.reserve(bits_);
  for (const auto* masks : {&spec_.column_masks, &spec_.channel_masks, &spec_.dimm_masks,
                            &spec_.rank_masks, &spec_.bank_masks, &spec_.row_masks,
                            &spec_.socket_masks}) {
    forward_.insert(forward_.end(), masks->begin(), masks->end());
  }
  SILOZ_CHECK_EQ(forward_.size(), bits_);

  // Invert by Gaussian elimination on [M | I]: when M reduces to I, the
  // right half holds M^-1. Build() has already verified full rank.
  std::vector<uint64_t> m = forward_;
  std::vector<uint64_t> inv(bits_, 0);
  for (uint32_t i = 0; i < bits_; ++i) {
    inv[i] = 1ull << i;
  }
  for (uint32_t col = 0; col < bits_; ++col) {
    size_t pivot = col;
    while (pivot < m.size() && (m[pivot] & (1ull << col)) == 0) {
      ++pivot;
    }
    SILOZ_CHECK(pivot < m.size()) << "singular matrix escaped Build()";
    std::swap(m[col], m[pivot]);
    std::swap(inv[col], inv[pivot]);
    for (size_t r = 0; r < m.size(); ++r) {
      if (r != col && (m[r] & (1ull << col)) != 0) {
        m[r] ^= m[col];
        inv[r] ^= inv[col];
      }
    }
  }
  // The left half is now I, so row i of the right half is the media-vector
  // mask producing phys bit i.
  inverse_ = std::move(inv);
}

Result<std::unique_ptr<XorMaskDecoder>> XorMaskDecoder::Build(const XorMaskSpec& spec) {
  SILOZ_RETURN_IF_ERROR(spec.geometry.Validate());
  const DramGeometry& g = spec.geometry;
  if (!IsPowerOfTwo(g.total_bytes())) {
    return MakeError(ErrorCode::kInvalidArgument,
                     "XOR-matrix decoding needs a power-of-two address space, got " +
                         std::to_string(g.total_bytes()) + " bytes");
  }
  const uint32_t bits = Log2(g.total_bytes());
  if (bits > 63) {
    return MakeError(ErrorCode::kInvalidArgument, "address space too large for 64-bit masks");
  }
  SILOZ_RETURN_IF_ERROR(CheckFieldMasks("socket", g.sockets, spec.socket_masks, bits));
  SILOZ_RETURN_IF_ERROR(
      CheckFieldMasks("channel", g.channels_per_socket, spec.channel_masks, bits));
  SILOZ_RETURN_IF_ERROR(CheckFieldMasks("dimm", g.dimms_per_channel, spec.dimm_masks, bits));
  SILOZ_RETURN_IF_ERROR(CheckFieldMasks("rank", g.ranks_per_dimm, spec.rank_masks, bits));
  SILOZ_RETURN_IF_ERROR(CheckFieldMasks("bank", g.banks_per_rank, spec.bank_masks, bits));
  SILOZ_RETURN_IF_ERROR(CheckFieldMasks("row", g.rows_per_bank, spec.row_masks, bits));
  SILOZ_RETURN_IF_ERROR(CheckFieldMasks("column", g.row_bytes, spec.column_masks, bits));

  std::vector<uint64_t> stacked;
  stacked.reserve(bits);
  for (const auto* masks : {&spec.column_masks, &spec.channel_masks, &spec.dimm_masks,
                            &spec.rank_masks, &spec.bank_masks, &spec.row_masks,
                            &spec.socket_masks}) {
    stacked.insert(stacked.end(), masks->begin(), masks->end());
  }
  if (stacked.size() != bits) {
    return MakeError(ErrorCode::kInvalidArgument,
                     "mask count " + std::to_string(stacked.size()) + " != address bits " +
                         std::to_string(bits));
  }
  const uint32_t rank = XorMatrixRank(stacked, bits);
  if (rank != bits) {
    return MakeError(ErrorCode::kInvalidArgument,
                     "mask matrix rank " + std::to_string(rank) + " < " +
                         std::to_string(bits) + ": the mapping aliases " +
                         std::to_string(1ull << (bits - rank)) +
                         " physical addresses onto every media address");
  }
  return std::unique_ptr<XorMaskDecoder>(new XorMaskDecoder(spec));
}

Result<MediaAddress> XorMaskDecoder::PhysToMedia(uint64_t phys) const {
  if (phys >= spec_.geometry.total_bytes()) {
    return MakeError(ErrorCode::kOutOfRange,
                     "phys 0x" + std::to_string(phys) + " beyond DRAM");
  }
  MediaAddress media;
  media.column = ApplyMasks(phys, spec_.column_masks);
  media.channel = ApplyMasks(phys, spec_.channel_masks);
  media.dimm = ApplyMasks(phys, spec_.dimm_masks);
  media.rank = ApplyMasks(phys, spec_.rank_masks);
  media.bank = ApplyMasks(phys, spec_.bank_masks);
  media.row = ApplyMasks(phys, spec_.row_masks);
  media.socket = ApplyMasks(phys, spec_.socket_masks);
  return media;
}

Result<uint64_t> XorMaskDecoder::MediaToPhys(const MediaAddress& media) const {
  SILOZ_RETURN_IF_ERROR(ValidateAddress(spec_.geometry, media));
  // Pack the media coordinates into the bit vector in forward-matrix row
  // order, then apply the inverse rows.
  uint64_t vec = 0;
  uint32_t shift = 0;
  vec |= static_cast<uint64_t>(media.column) << shift;
  shift += column_bits_;
  vec |= static_cast<uint64_t>(media.channel) << shift;
  shift += channel_bits_;
  vec |= static_cast<uint64_t>(media.dimm) << shift;
  shift += dimm_bits_;
  vec |= static_cast<uint64_t>(media.rank) << shift;
  shift += rank_bits_;
  vec |= static_cast<uint64_t>(media.bank) << shift;
  shift += bank_bits_;
  vec |= static_cast<uint64_t>(media.row) << shift;
  shift += row_bits_;
  vec |= static_cast<uint64_t>(media.socket) << shift;
  uint64_t phys = 0;
  for (uint32_t bit = 0; bit < bits_; ++bit) {
    phys |= ParityOf(vec, inverse_[bit]) << bit;
  }
  return phys;
}

XorMaskSpec ZenXorSpec() {
  XorMaskSpec spec;
  spec.name = "zen";
  DramGeometry& g = spec.geometry;
  g.sockets = 1;
  g.channels_per_socket = 2;
  g.dimms_per_channel = 1;
  g.ranks_per_dimm = 2;
  g.banks_per_rank = 16;
  g.row_bytes = 8 * kKiB;
  g.rows_per_bank = 65536;
  g.rows_per_subarray = 1024;
  // 32 GiB => 35 address bits: 13 column + 1 channel + 1 rank + 4 bank + 16
  // row. Functions follow the ZenHammer shape: channel and rank hash a
  // spread of bits for uniform interleave, each bank bit XORs a low bit with
  // a row bit (bank swizzling decorrelates row marches from bank conflicts),
  // rows are the direct high bits.
  auto bit = [](unsigned i) { return 1ull << i; };
  for (unsigned i = 0; i < 13; ++i) {
    spec.column_masks.push_back(bit(i));
  }
  spec.channel_masks = {bit(8) ^ bit(14) ^ bit(18) ^ bit(22) ^ bit(26)};
  spec.rank_masks = {bit(13) ^ bit(17) ^ bit(21) ^ bit(25)};
  spec.bank_masks = {bit(14) ^ bit(19), bit(15) ^ bit(20), bit(16) ^ bit(21),
                     bit(17) ^ bit(22)};
  for (unsigned i = 0; i < 16; ++i) {
    spec.row_masks.push_back(bit(19 + i));
  }
  // 1 socket: zero socket bits, no masks.
  return spec;
}

}  // namespace siloz
