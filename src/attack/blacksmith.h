// Blacksmith-style Rowhammer fuzzer (§7, Table 3).
//
// The paper evaluates Siloz by running an extended Blacksmith fuzzer — a
// fuzzer that searches for non-uniform, frequency-weighted many-sided
// hammering patterns that defeat in-DRAM TRR — pinned to a subarray group,
// and checking that every observed flip stays inside the group.
//
// This module reproduces that attacker against the simulated DIMMs: patterns
// are synthesized per bank from rows reachable inside the attacker's
// accessible physical ranges (a VM only reaches its own subarray groups
// through its EPT mappings), scheduled with weighted round-robin so distinct
// intensities interleave (real ACTs, no row-buffer hits), and executed
// through Machine::ActivatePhys so TRR, refresh, and the disturbance model
// all engage.
#ifndef SILOZ_SRC_ATTACK_BLACKSMITH_H_
#define SILOZ_SRC_ATTACK_BLACKSMITH_H_

#include <cstdint>
#include <map>
#include <set>
#include <span>
#include <string>
#include <vector>

#include "src/addr/subarray_group.h"
#include "src/base/rng.h"
#include "src/sim/machine.h"

namespace siloz {

struct BlacksmithConfig {
  // Distinct fuzzing patterns to synthesize per Run().
  uint32_t patterns = 12;
  // Aggressor pairs per pattern (sampled uniformly in range). Enough pairs
  // exhaust the TRR tracker (many-sided).
  uint32_t min_pairs = 4;
  uint32_t max_pairs = 16;
  // Per-aggressor intensity (ACTs per round), sampled in [1, max_intensity].
  uint32_t max_intensity = 4;
  // Rounds each pattern is hammered for.
  uint32_t rounds = 3000;
  // Rows around the probe point considered for victim placement.
  uint32_t row_span = 96;
  uint64_t seed = 0xB1AC5;
};

struct FuzzReport {
  uint64_t activations = 0;
  uint32_t patterns_run = 0;
  std::vector<PhysFlip> flips;
};

// Classification of flips against a target region (Table 3's
// inside/outside-subarray-group census).
struct FlipCensus {
  uint64_t inside = 0;
  uint64_t outside = 0;
  std::map<std::string, uint64_t> per_dimm;
  std::set<uint32_t> groups_hit;  // global subarray group ids
};

FlipCensus ClassifyFlips(std::span<const PhysFlip> flips, const SubarrayGroupMap& map,
                         std::span<const PhysRange> inside_ranges);

class BlacksmithFuzzer {
 public:
  explicit BlacksmithFuzzer(BlacksmithConfig config) : config_(config), rng_(config.seed) {}

  // Fuzz within `accessible` physical ranges (the attacker VM's memory).
  // Requires a fault-tracking machine.
  FuzzReport Run(Machine& machine, std::span<const PhysRange> accessible);

  // RowPress variant (§2.5): few ACTs, long row-open times.
  FuzzReport RunRowPress(Machine& machine, std::span<const PhysRange> accessible,
                         uint64_t open_ns = 200'000, uint32_t holds = 4000);

 private:
  struct Aggressor {
    uint64_t phys;
    uint32_t intensity;
  };

  // Builds a weighted round-robin schedule so no aggressor self-conflicts in
  // the row buffer and intensities realize Blacksmith-style frequencies.
  static std::vector<uint64_t> Schedule(const std::vector<Aggressor>& aggressors);

  // Picks a hammerable bank inside `accessible` and synthesizes aggressors
  // for it; empty if the probe failed (retry with a different sample).
  std::vector<Aggressor> SynthesizePattern(Machine& machine,
                                           std::span<const PhysRange> accessible);

  BlacksmithConfig config_;
  Rng rng_;
};

// Deterministic double-sided hammer of explicit aggressor addresses
// (used by the EPT-protection experiment, §7.1). Returns ACT count.
uint64_t HammerPhysAddresses(Machine& machine, std::span<const uint64_t> aggressors,
                             uint32_t rounds);

}  // namespace siloz

#endif  // SILOZ_SRC_ATTACK_BLACKSMITH_H_
