#include "src/attack/blacksmith.h"

#include <algorithm>

#include "src/base/check.h"

namespace siloz {

FlipCensus ClassifyFlips(std::span<const PhysFlip> flips, const SubarrayGroupMap& map,
                         std::span<const PhysRange> inside_ranges) {
  FlipCensus census;
  for (const PhysFlip& flip : flips) {
    bool inside = false;
    for (const PhysRange& range : inside_ranges) {
      inside |= range.Contains(flip.phys);
    }
    if (inside) {
      ++census.inside;
    } else {
      ++census.outside;
    }
    ++census.per_dimm[flip.dimm_name];
    Result<uint32_t> group = map.GroupOfPhys(flip.phys);
    if (group.ok()) {
      census.groups_hit.insert(*group);
    }
  }
  return census;
}

std::vector<uint64_t> BlacksmithFuzzer::Schedule(const std::vector<Aggressor>& aggressors) {
  // Weighted round-robin: every slot picks the aggressor with the highest
  // credit, then charges it the total weight. Distinct rows interleave, so
  // every scheduled access precharges the previous aggressor's row — real
  // ACTs, which is what disturbs victims.
  uint32_t total = 0;
  for (const Aggressor& aggressor : aggressors) {
    total += aggressor.intensity;
  }
  std::vector<int64_t> credit(aggressors.size(), 0);
  std::vector<uint64_t> schedule;
  schedule.reserve(total);
  for (uint32_t slot = 0; slot < total; ++slot) {
    size_t best = 0;
    for (size_t i = 0; i < aggressors.size(); ++i) {
      credit[i] += aggressors[i].intensity;
      if (credit[i] > credit[best]) {
        best = i;
      }
    }
    credit[best] -= total;
    schedule.push_back(aggressors[best].phys);
  }
  return schedule;
}

std::vector<BlacksmithFuzzer::Aggressor> BlacksmithFuzzer::SynthesizePattern(
    Machine& machine, std::span<const PhysRange> accessible) {
  SILOZ_CHECK(!accessible.empty());
  const AddressDecoder& decoder = machine.decoder();
  const DramGeometry& geometry = decoder.geometry();

  // Probe a random accessible address; its (socket, channel, dimm, rank,
  // bank) is the pattern's bank.
  const PhysRange& range = accessible[rng_.NextBelow(accessible.size())];
  const uint64_t probe = range.begin + rng_.NextBelow(range.size() / 64) * 64;
  const MediaAddress base = *decoder.PhysToMedia(probe);

  // Enumerate nearby rows of this bank that the attacker can reach: a row is
  // usable if its bytes fall inside the accessible ranges.
  auto row_phys = [&](uint32_t row) -> Result<uint64_t> {
    MediaAddress media = base;
    media.row = row;
    return decoder.MediaToPhys(media);
  };
  auto reachable = [&](uint64_t phys) {
    for (const PhysRange& r : accessible) {
      if (r.Contains(phys)) {
        return true;
      }
    }
    return false;
  };

  const uint32_t span = config_.row_span;
  const uint32_t low = base.row > span ? base.row - span : 0;
  const uint32_t high =
      std::min(base.row + span, geometry.rows_per_bank - 1);
  std::vector<uint32_t> rows;
  for (uint32_t row = low; row <= high; ++row) {
    Result<uint64_t> phys = row_phys(row);
    if (phys.ok() && reachable(*phys)) {
      rows.push_back(row);
    }
  }
  if (rows.size() < 8) {
    return {};  // not enough material near this probe; caller retries
  }

  // Aggressor pairs around sampled victims: rows v-1 and v+1 with a shared
  // random intensity (the "frequency" of Blacksmith's frequency domain).
  const uint32_t pairs = static_cast<uint32_t>(
      rng_.NextInRange(config_.min_pairs, config_.max_pairs));
  std::vector<Aggressor> aggressors;
  std::set<uint32_t> used;
  for (uint32_t p = 0; p < pairs; ++p) {
    const uint32_t victim = rows[rng_.NextBelow(rows.size())];
    const uint32_t intensity = static_cast<uint32_t>(rng_.NextInRange(1, config_.max_intensity));
    for (int32_t delta : {-1, +1}) {
      const int64_t row = static_cast<int64_t>(victim) + delta;
      if (row < 0 || row >= static_cast<int64_t>(geometry.rows_per_bank) ||
          used.count(static_cast<uint32_t>(row)) != 0) {
        continue;
      }
      Result<uint64_t> phys = row_phys(static_cast<uint32_t>(row));
      if (!phys.ok() || !reachable(*phys)) {
        continue;
      }
      used.insert(static_cast<uint32_t>(row));
      aggressors.push_back(Aggressor{*phys, intensity});
    }
  }
  if (aggressors.size() < 2) {
    return {};
  }
  return aggressors;
}

FuzzReport BlacksmithFuzzer::Run(Machine& machine, std::span<const PhysRange> accessible) {
  SILOZ_CHECK(machine.fault_tracking()) << "fuzzing requires a fault-tracking machine";
  FuzzReport report;
  uint32_t attempts = 0;
  while (report.patterns_run < config_.patterns && attempts < config_.patterns * 4) {
    ++attempts;
    const std::vector<Aggressor> aggressors = SynthesizePattern(machine, accessible);
    if (aggressors.empty()) {
      continue;
    }
    const std::vector<uint64_t> schedule = Schedule(aggressors);
    for (uint32_t round = 0; round < config_.rounds; ++round) {
      for (uint64_t phys : schedule) {
        machine.ActivatePhys(phys);
        ++report.activations;
      }
    }
    ++report.patterns_run;
    // Let a full refresh window elapse between patterns, as the real fuzzer's
    // sweep phases do.
    machine.AdvanceClock(kRefreshWindowNs);
  }
  std::vector<PhysFlip> flips = machine.DrainFlips();
  report.flips.insert(report.flips.end(), flips.begin(), flips.end());
  return report;
}

FuzzReport BlacksmithFuzzer::RunRowPress(Machine& machine,
                                         std::span<const PhysRange> accessible,
                                         uint64_t open_ns, uint32_t holds) {
  SILOZ_CHECK(machine.fault_tracking());
  FuzzReport report;
  std::vector<Aggressor> aggressors = SynthesizePattern(machine, accessible);
  if (aggressors.empty()) {
    return report;
  }
  // RowPress presses few rows for long intervals: open time per hold is
  // bounded by the controller's refresh-postponement limit, so concentrating
  // on a couple of aggressors maximizes per-victim accumulation per window.
  if (aggressors.size() > 2) {
    aggressors.resize(2);
  }
  for (uint32_t i = 0; i < holds; ++i) {
    const Aggressor& aggressor = aggressors[i % aggressors.size()];
    machine.ActivatePhysHold(aggressor.phys, open_ns);
    ++report.activations;
  }
  report.patterns_run = 1;
  std::vector<PhysFlip> flips = machine.DrainFlips();
  report.flips.insert(report.flips.end(), flips.begin(), flips.end());
  return report;
}

uint64_t HammerPhysAddresses(Machine& machine, std::span<const uint64_t> aggressors,
                             uint32_t rounds) {
  uint64_t activations = 0;
  for (uint32_t round = 0; round < rounds; ++round) {
    for (uint64_t phys : aggressors) {
      machine.ActivatePhys(phys);
      ++activations;
    }
  }
  return activations;
}

}  // namespace siloz
