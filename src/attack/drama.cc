#include "src/attack/drama.h"

#include "src/base/check.h"

namespace siloz {

DramaProbe ProbePair(MemoryController& controller, const AddressDecoder& decoder,
                     uint64_t phys_a, uint64_t phys_b, const DramaConfig& config) {
  controller.ResetState();
  const MediaAddress media_a = *decoder.PhysToMedia(phys_a);
  const MediaAddress media_b = *decoder.PhysToMedia(phys_b);
  SILOZ_CHECK_EQ(media_a.socket, media_b.socket);

  DramaProbe probe;
  probe.same_bank = media_a.socket == media_b.socket && media_a.channel == media_b.channel &&
                    media_a.dimm == media_b.dimm && media_a.rank == media_b.rank &&
                    media_a.bank == media_b.bank && media_a.row != media_b.row;

  // The attacker's loop: access a, access b, flush, repeat — each access
  // waits for the previous (dependent chain), which is what exposes the
  // serialization of same-bank row conflicts.
  MemRequest request_a{media_a, false, media_a.socket};
  MemRequest request_b{media_b, false, media_b.socket};
  double cursor = 0.0;
  for (uint32_t round = 0; round < config.rounds; ++round) {
    cursor = controller.Serve(request_a, cursor);
    cursor = controller.Serve(request_b, cursor);
  }
  probe.mean_latency_ns = cursor / (2.0 * config.rounds);

  double threshold = config.threshold_ns;
  if (threshold == 0.0) {
    // Midpoint between a row-buffer hit and a conflict turnaround.
    threshold = controller.timings().t_cas + controller.timings().t_rc() / 2.0;
  }
  probe.conflict_detected = probe.mean_latency_ns > threshold;
  return probe;
}

}  // namespace siloz
