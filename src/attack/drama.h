// DRAMA-style bank-conflict timing side channel (§8.4, §9).
//
// DRAMA [Pessl et al., USENIX Sec'16] shows that row-buffer conflicts leak
// information across security domains sharing a bank: alternating accesses
// to two addresses is measurably slower when they map to different rows of
// the same bank. Siloz's subarray groups deliberately share banks (for
// parallelism), so this channel *persists* under Siloz — §8.4's point that
// coarser isolation units (banks/ranks/channels via logical nodes) would be
// needed to close it, given addressing control.
//
// The probe replays the attacker's timing measurement against the
// MemoryController model.
#ifndef SILOZ_SRC_ATTACK_DRAMA_H_
#define SILOZ_SRC_ATTACK_DRAMA_H_

#include <cstdint>

#include "src/addr/decoder.h"
#include "src/memctl/controller.h"

namespace siloz {

struct DramaProbe {
  double mean_latency_ns = 0.0;   // per access, alternating a/b
  bool same_bank = false;         // ground truth from the decoder
  bool conflict_detected = false; // attacker's inference from timing
};

struct DramaConfig {
  uint32_t rounds = 2000;
  // Latency above this threshold (ns) classifies the pair as conflicting;
  // DRAMA calibrates it from a histogram, we use the midpoint between a row
  // hit and a full row-miss turnaround.
  double threshold_ns = 0.0;  // 0 = auto (tCAS + tRC/2)
};

// Times alternating uncached accesses to phys_a/phys_b through a fresh view
// of `controller` timing (controller state is reset).
DramaProbe ProbePair(MemoryController& controller, const AddressDecoder& decoder,
                     uint64_t phys_a, uint64_t phys_b, const DramaConfig& config = {});

}  // namespace siloz

#endif  // SILOZ_SRC_ATTACK_DRAMA_H_
