#include "src/sim/colocated.h"

#include <algorithm>
#include <queue>
#include <utility>

#include "src/base/check.h"
#include "src/base/rng.h"
#include "src/base/thread_pool.h"

namespace siloz {
namespace {

struct TenantState {
  const TenantSpec* spec = nullptr;
  std::vector<MemRequest> trace;
  size_t next = 0;
  uint64_t served = 0;
  // In-flight completion times (bounded by the workload's MLP).
  std::priority_queue<double, std::vector<double>, std::greater<>> in_flight;
  double issue_cursor = 0.0;
  double last_completion = 0.0;

  bool done() const { return !spec->background && next >= trace.size(); }
  // Time at which the tenant's next request can issue.
  double NextIssueTime() const {
    if (in_flight.size() >= spec->workload.mlp) {
      return std::max(issue_cursor, in_flight.top());
    }
    return issue_cursor;
  }
};

}  // namespace

Result<std::vector<TenantResult>> RunColocated(const RunnerConfig& config,
                                               const std::vector<TenantSpec>& tenants) {
  if (tenants.empty()) {
    return MakeError(ErrorCode::kInvalidArgument, "no tenants");
  }
  MachineConfig machine_config;
  machine_config.geometry = config.geometry;
  machine_config.decoder = config.decoder;
  machine_config.timings = config.timings;
  Machine machine(machine_config);

  SilozHypervisor hypervisor(machine.decoder(), machine.phys_memory(), config.hypervisor);
  SILOZ_RETURN_IF_ERROR(hypervisor.Boot());

  std::vector<TenantState> states(tenants.size());
  for (size_t i = 0; i < tenants.size(); ++i) {
    VmConfig vm_config;
    vm_config.name = tenants[i].vm_name;
    vm_config.memory_bytes = tenants[i].memory_bytes;
    vm_config.socket = tenants[i].socket;
    Result<VmId> id = hypervisor.CreateVm(vm_config);
    SILOZ_RETURN_IF_ERROR(id);
    Result<Vm*> vm = hypervisor.GetVm(*id);
    SILOZ_RETURN_IF_ERROR(vm);
    states[i].spec = &tenants[i];
    states[i].trace = GenerateTrace(tenants[i].workload, machine.decoder(), (*vm)->regions(),
                                    tenants[i].socket, config.seed + i * 7919);
  }

  // Global issue order: always advance the tenant whose next request can
  // issue earliest, approximating truly concurrent tenants sharing the
  // memory system. Background tenants wrap their traces so a noisy
  // neighbour stays noisy until every foreground tenant finishes.
  const std::vector<MemoryController*> controllers = machine.controllers();
  while (true) {
    bool foreground_pending = false;
    for (const TenantState& state : states) {
      foreground_pending |= (!state.spec->background && !state.done());
    }
    if (!foreground_pending) {
      break;
    }
    TenantState* chosen = nullptr;
    for (TenantState& state : states) {
      if (state.done()) {
        continue;
      }
      if (chosen == nullptr || state.NextIssueTime() < chosen->NextIssueTime()) {
        chosen = &state;
      }
    }
    SILOZ_CHECK(chosen != nullptr);
    chosen->issue_cursor = chosen->NextIssueTime();
    if (chosen->in_flight.size() >= chosen->spec->workload.mlp) {
      chosen->in_flight.pop();
    }
    if (chosen->next >= chosen->trace.size()) {
      chosen->next = 0;  // background wrap
    }
    const MemRequest& request = chosen->trace[chosen->next++];
    ++chosen->served;
    const double completion =
        controllers[request.address.socket]->Serve(request, chosen->issue_cursor);
    chosen->in_flight.push(completion);
    chosen->last_completion = std::max(chosen->last_completion, completion);
    chosen->issue_cursor += chosen->spec->workload.compute_ns_per_access;
  }

  std::vector<TenantResult> results;
  for (const TenantState& state : states) {
    TenantResult result;
    result.vm_name = state.spec->vm_name;
    result.elapsed_ns = state.last_completion;
    result.requests = state.served;
    result.bandwidth_gibs = state.last_completion <= 0.0
                                ? 0.0
                                : static_cast<double>(state.served) * 64.0 /
                                      state.last_completion *
                                      (1e9 / (1024.0 * 1024.0 * 1024.0));
    results.push_back(result);
  }
  return results;
}

Result<std::vector<std::vector<TenantResult>>> RunColocatedSweep(
    const std::vector<ColocatedScenario>& scenarios, uint32_t threads,
    PoolPhaseMetrics* metrics) {
  using ScenarioResult = Result<std::vector<TenantResult>>;
  std::vector<ScenarioResult> runs(scenarios.size(), ScenarioResult(std::vector<TenantResult>{}));
  PhaseTimer timer("colocated");
  ThreadPool pool(threads);
  ProgressMeter progress("colocated", scenarios.size());
  pool.ParallelFor(0, scenarios.size(), [&](uint64_t i) {
    // Each scenario boots a private machine + hypervisor inside RunColocated,
    // so tasks share no mutable state; results depend only on the scenario,
    // never on scheduling.
    runs[i] = RunColocated(scenarios[i].config, scenarios[i].tenants);
    progress.Tick();
  });
  if (metrics != nullptr) {
    *metrics = timer.Finish(pool.metrics());
  }

  std::vector<std::vector<TenantResult>> results;
  results.reserve(scenarios.size());
  for (ScenarioResult& run : runs) {
    SILOZ_RETURN_IF_ERROR(run);
    results.push_back(std::move(*run));
  }
  return results;
}

}  // namespace siloz
