#include "src/sim/experiment.h"

#include "src/base/rng.h"
#include "src/memctl/engine.h"

namespace siloz {

Result<RunMeasurement> RunWorkload(const RunnerConfig& config, const WorkloadSpec& spec) {
  MachineConfig machine_config;
  machine_config.geometry = config.geometry;
  machine_config.decoder = config.decoder;
  machine_config.timings = config.timings;
  machine_config.fault_tracking = false;  // timing fidelity (DESIGN.md §4)
  Machine machine(machine_config);

  SilozHypervisor hypervisor(machine.decoder(), machine.phys_memory(), config.hypervisor);
  SILOZ_RETURN_IF_ERROR(hypervisor.Boot());
  Result<VmId> vm_id = hypervisor.CreateVm(config.vm);
  SILOZ_RETURN_IF_ERROR(vm_id);
  Result<Vm*> vm = hypervisor.GetVm(*vm_id);
  SILOZ_RETURN_IF_ERROR(vm);

  // System jitter is independent across kernels and workloads: mix the
  // hypervisor variant and workload identity into the noise stream so the
  // baseline and Siloz runs of one workload draw different (deterministic)
  // jitter, exactly like back-to-back runs on a real host.
  uint64_t variant_tag = 0xCBF29CE484222325ull;
  for (char c : spec.name) {
    variant_tag = (variant_tag ^ static_cast<uint8_t>(c)) * 0x100000001B3ull;
  }
  variant_tag ^= (static_cast<uint64_t>(config.hypervisor.enabled) << 40) ^
                 (static_cast<uint64_t>(config.hypervisor.rows_per_subarray) << 8) ^
                 static_cast<uint64_t>(config.hypervisor.ept_protection);
  Rng noise_rng(config.seed ^ variant_tag);

  RunMeasurement measurement;
  const std::vector<MemoryController*> controllers = machine.controllers();
  for (uint32_t trial = 0; trial < config.trials; ++trial) {
    const std::vector<MemRequest> trace =
        GenerateTrace(spec, machine.decoder(), (*vm)->regions(), config.vm.socket,
                      config.seed + trial * 7919);
    for (MemoryController* controller : controllers) {
      controller->ResetState();
    }
    EngineConfig engine;
    engine.max_outstanding = spec.mlp;
    engine.compute_ns_per_access = spec.compute_ns_per_access;
    const EngineResult result = RunClosedLoop(trace, controllers, engine);

    const double jitter = 1.0 + config.os_noise_frac * noise_rng.NextGaussian();
    const double elapsed = result.elapsed_ns * jitter;
    measurement.elapsed_ns.Add(elapsed);
    measurement.bandwidth_gibs.Add(static_cast<double>(result.requests) * 64.0 / elapsed *
                                   (1e9 / (1024.0 * 1024.0 * 1024.0)));
    measurement.row_hit_rate = controllers[config.vm.socket]->stats().row_hit_rate();
  }
  return measurement;
}

}  // namespace siloz
