#include "src/sim/experiment.h"

#include <algorithm>
#include <limits>
#include <memory>
#include <optional>
#include <utility>

#include "src/base/rng.h"
#include "src/base/thread_pool.h"
#include "src/memctl/engine.h"
#include "src/memctl/sharded_engine.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace siloz {
namespace {

// Everything one trial produces; merged into RunMeasurement in trial order.
struct TrialOutcome {
  double elapsed_ns = 0.0;
  double bandwidth_gibs = 0.0;
  double row_hit_rate = 0.0;
  std::vector<uint64_t> flip_phys;       // sorted
  std::vector<uint64_t> shard_requests;  // shard-plan order; empty when serial
};

// Workload identity + hypervisor variant tag mixed into the jitter stream so
// baseline and Siloz runs of one workload draw different (deterministic)
// noise, exactly like back-to-back runs on a real host.
uint64_t VariantTag(const RunnerConfig& config, const WorkloadSpec& spec) {
  uint64_t tag = 0xCBF29CE484222325ull;
  for (char c : spec.name) {
    tag = (tag ^ static_cast<uint8_t>(c)) * 0x100000001B3ull;
  }
  tag ^= (static_cast<uint64_t>(config.hypervisor.enabled) << 40) ^
         (static_cast<uint64_t>(config.hypervisor.rows_per_subarray) << 8) ^
         static_cast<uint64_t>(config.hypervisor.ept_protection);
  return tag;
}

// Raw serve numbers for one trial's trace, before jitter is applied.
struct ServeOutcome {
  double elapsed_ns = 0.0;
  uint64_t requests = 0;
  std::vector<uint64_t> shard_requests;  // shard-plan order; empty when serial
};

// Serves one trial's trace through the engine selected by
// config.channels_per_shard (0 = serial reference, >= 1 = sharded;
// DESIGN.md §13). `controllers` is the per-socket absorb-target set —
// trial-private in timing mode, the machine's own in fault mode. When
// `materialized` is non-null the trace is generated up front and returned
// through it (fault mode consumes it a second time in ReplayDisturbance);
// otherwise timing-only runs may stream generation straight into the serve
// loop.
Result<ServeOutcome> ServeTrial(const RunnerConfig& config, const WorkloadSpec& spec,
                                const AddressDecoder& decoder, const Vm& vm,
                                uint64_t trace_seed,
                                std::span<MemoryController* const> controllers,
                                std::vector<MemRequest>* materialized) {
  EngineConfig engine;
  engine.max_outstanding = spec.mlp;
  engine.compute_ns_per_access = spec.compute_ns_per_access;

  if (config.channels_per_shard >= 1) {
    ShardedEngineConfig sharded;
    sharded.engine = engine;
    sharded.channels_per_shard = config.channels_per_shard;
    sharded.bank_groups_per_queue = config.bank_groups_per_queue;
    // Trial-level parallelism already saturates the run's pool; nested shard
    // workers would only oversubscribe. Thread counts never change results.
    sharded.threads = 1;
    Result<ShardedEngineResult> result = [&]() -> Result<ShardedEngineResult> {
      if (materialized != nullptr) {
        *materialized =
            GenerateTrace(spec, decoder, vm.regions(), config.vm.socket, trace_seed);
        return RunShardedClosedLoop(*materialized, controllers, sharded);
      }
      // Timing-only runs take the fused path: the streamer emits
      // pre-resolved commands straight into the per-shard closed loops —
      // no MemRequest materialization, no per-shard batch vectors.
      TraceStreamer stream(spec, decoder, vm.regions(), config.vm.socket, trace_seed);
      return RunShardedFused(
          stream.size(), [&stream](auto&& feed) { stream.ForEachDecoded(feed); },
          controllers, sharded);
    }();
    SILOZ_RETURN_IF_ERROR(result);
    ServeOutcome outcome;
    outcome.elapsed_ns = result->elapsed_ns;
    outcome.requests = result->requests;
    outcome.shard_requests.reserve(result->shards.size());
    for (const ShardTelemetry& shard : result->shards) {
      outcome.shard_requests.push_back(shard.requests);
    }
    return outcome;
  }

  // Serial reference engine. A trace that fits in the last-level cache
  // replays faster split into a tight generation loop plus a tight service
  // loop; one that spills to DRAM is better fused, which skips the
  // round-trip through memory entirely. Either path yields the identical
  // request sequence (TraceStreamer is the single implementation), so this
  // is purely a throughput heuristic.
  constexpr uint64_t kFuseThresholdBytes = 24ull << 20;
  EngineResult served;
  if (materialized != nullptr) {
    *materialized =
        GenerateTrace(spec, decoder, vm.regions(), config.vm.socket, trace_seed);
    served = RunClosedLoop(*materialized, controllers, engine);
  } else if (spec.accesses * sizeof(MemRequest) > kFuseThresholdBytes) {
    TraceStreamer stream(spec, decoder, vm.regions(), config.vm.socket, trace_seed);
    served = RunClosedLoopOver(
        stream.size(), [&stream]() -> const MemRequest& { return stream.Next(); },
        controllers, engine);
  } else {
    const std::vector<MemRequest> trace =
        GenerateTrace(spec, decoder, vm.regions(), config.vm.socket, trace_seed);
    served = RunClosedLoop(trace, controllers, engine);
  }
  ServeOutcome outcome;
  outcome.elapsed_ns = served.elapsed_ns;
  outcome.requests = served.requests;
  return outcome;
}

TrialOutcome FinishTrial(const RunnerConfig& config, const ServeOutcome& served,
                         const MemoryController& vm_controller, Rng& noise_rng) {
  TrialOutcome outcome;
  const double jitter = 1.0 + config.os_noise_frac * noise_rng.NextGaussian();
  outcome.elapsed_ns = served.elapsed_ns * jitter;
  outcome.bandwidth_gibs = static_cast<double>(served.requests) * 64.0 /
                           outcome.elapsed_ns * (1e9 / (1024.0 * 1024.0 * 1024.0));
  outcome.row_hit_rate = vm_controller.stats().row_hit_rate();
  outcome.shard_requests = served.shard_requests;
  return outcome;
}

// Timing-mode trial: the booted platform (decoder, VM regions) is shared and
// immutable; all mutable timing state — the per-socket controllers the serve
// loop updates — is private to the trial, so trials stay independent with
// the boot hoisted out of the loop.
Result<TrialOutcome> RunTimingTrial(const RunnerConfig& config, const WorkloadSpec& spec,
                                    uint32_t trial, Rng noise_rng,
                                    const AddressDecoder& decoder, const Vm& vm) {
  std::vector<std::unique_ptr<MemoryController>> owned;
  std::vector<MemoryController*> controllers;
  owned.reserve(config.geometry.sockets);
  controllers.reserve(config.geometry.sockets);
  for (uint32_t socket = 0; socket < config.geometry.sockets; ++socket) {
    owned.push_back(
        std::make_unique<MemoryController>(config.geometry, socket, config.timings));
    controllers.push_back(owned.back().get());
  }
  const uint64_t trace_seed = config.seed + trial * 7919;
  Result<ServeOutcome> served =
      ServeTrial(config, spec, decoder, vm, trace_seed, controllers, nullptr);
  SILOZ_RETURN_IF_ERROR(served);
  return FinishTrial(config, *served, *controllers[config.vm.socket], noise_rng);
}

// Fault-mode trial: boots a whole private Machine because the disturbance
// devices (and the flips they record) are per-trial state. The trace is
// materialized once and consumed twice: timing serve, then device replay.
Result<TrialOutcome> RunFaultTrial(const RunnerConfig& config, const WorkloadSpec& spec,
                                   uint32_t trial, Rng noise_rng) {
  MachineConfig machine_config;
  machine_config.geometry = config.geometry;
  machine_config.decoder = config.decoder;
  machine_config.platform = config.platform;
  machine_config.timings = config.timings;
  machine_config.fault_tracking = true;  // timing fidelity (DESIGN.md §4)
  machine_config.dimm_profiles = config.dimm_profiles;
  Machine machine(machine_config);

  SilozHypervisor hypervisor(machine.decoder(), machine.phys_memory(), config.hypervisor);
  SILOZ_RETURN_IF_ERROR(hypervisor.Boot());
  Result<VmId> vm_id = hypervisor.CreateVm(config.vm);
  SILOZ_RETURN_IF_ERROR(vm_id);
  Result<Vm*> vm = hypervisor.GetVm(*vm_id);
  SILOZ_RETURN_IF_ERROR(vm);

  const std::vector<MemoryController*> controllers = machine.controllers();
  const uint64_t trace_seed = config.seed + trial * 7919;
  std::vector<MemRequest> trace;
  Result<ServeOutcome> served =
      ServeTrial(config, spec, machine.decoder(), **vm, trace_seed, controllers, &trace);
  SILOZ_RETURN_IF_ERROR(served);

  TrialOutcome outcome =
      FinishTrial(config, *served, *controllers[config.vm.socket], noise_rng);
  // Trials run on pool workers, so the replay itself stays single-threaded
  // here; the shard decomposition still matches the serve engine's.
  ReplayDisturbance(machine, trace, config.channels_per_shard, /*threads=*/1);
  for (const PhysFlip& flip : machine.DrainFlips()) {
    outcome.flip_phys.push_back(flip.phys);
  }
  std::sort(outcome.flip_phys.begin(), outcome.flip_phys.end());
  return outcome;
}

// A booted timing-mode platform: machine + hypervisor + measurement VM.
// Immutable once built — trials read only the decoder and the VM's region
// placement, so a platform is shareable across trials, and (in a grid)
// across whole points whose platform configuration compares equal.
struct BootedPlatform {
  explicit BootedPlatform(MachineConfig machine_config)
      : machine(std::move(machine_config)) {}
  Machine machine;
  std::optional<SilozHypervisor> hypervisor;
  const Vm* vm = nullptr;
};

Result<std::shared_ptr<const BootedPlatform>> BootPlatform(const RunnerConfig& config) {
  MachineConfig machine_config;
  machine_config.geometry = config.geometry;
  machine_config.decoder = config.decoder;
  machine_config.platform = config.platform;
  machine_config.timings = config.timings;
  machine_config.fault_tracking = false;
  machine_config.dimm_profiles = config.dimm_profiles;
  auto platform = std::make_shared<BootedPlatform>(std::move(machine_config));
  platform->hypervisor.emplace(platform->machine.decoder(), platform->machine.phys_memory(),
                               config.hypervisor);
  SILOZ_RETURN_IF_ERROR(platform->hypervisor->Boot());
  Result<VmId> vm_id = platform->hypervisor->CreateVm(config.vm);
  SILOZ_RETURN_IF_ERROR(vm_id);
  Result<Vm*> vm = platform->hypervisor->GetVm(*vm_id);
  SILOZ_RETURN_IF_ERROR(vm);
  platform->vm = *vm;
  return std::shared_ptr<const BootedPlatform>(std::move(platform));
}

// True when two timing-mode configs boot byte-identical platforms: boot
// depends on the hypervisor configuration, the decoder, the geometry, and
// the measurement VM. Everything else in RunnerConfig (timings, trials,
// seed, noise, threads, sharding) only shapes per-trial state that each
// trial builds privately.
bool SamePlatformConfig(const RunnerConfig& a, const RunnerConfig& b) {
  return a.hypervisor == b.hypervisor && a.decoder == b.decoder &&
         a.platform == b.platform && a.geometry == b.geometry && a.vm == b.vm;
}

// Deterministic merge of one run's trial outcomes: trial order, lowest-index
// error wins. Shared by the RunWorkload trial loop and the flattened grid,
// so a grid point's measurement is byte-identical to a standalone run's
// (scheduler metrics aside).
Result<RunMeasurement> MergeTrialOutcomes(std::span<const Result<TrialOutcome>> outcomes) {
  RunMeasurement measurement;
  for (const Result<TrialOutcome>& result : outcomes) {
    SILOZ_RETURN_IF_ERROR(result);
    const TrialOutcome& outcome = *result;
    RunningStat elapsed;
    elapsed.Add(outcome.elapsed_ns);
    RunningStat bandwidth;
    bandwidth.Add(outcome.bandwidth_gibs);
    measurement.elapsed_ns.Merge(elapsed);
    measurement.bandwidth_gibs.Merge(bandwidth);
    measurement.row_hit_rate = outcome.row_hit_rate;
    measurement.flip_phys.insert(measurement.flip_phys.end(), outcome.flip_phys.begin(),
                                 outcome.flip_phys.end());
    if (!outcome.shard_requests.empty()) {
      if (measurement.shard_requests.empty()) {
        measurement.shard_requests.assign(outcome.shard_requests.size(), 0);
      }
      SILOZ_CHECK(measurement.shard_requests.size() == outcome.shard_requests.size());
      for (size_t shard = 0; shard < outcome.shard_requests.size(); ++shard) {
        measurement.shard_requests[shard] += outcome.shard_requests[shard];
      }
    }
  }
  return measurement;
}

// The per-trial noise streams of one run, forked up front in trial order so
// they depend only on (seed, variant, trial index) — never on which thread
// runs the trial or in what order trials finish.
std::vector<Rng> ForkNoiseStreams(const RunnerConfig& config, const WorkloadSpec& spec) {
  Rng noise_base(config.seed ^ VariantTag(config, spec));
  std::vector<Rng> noise_rngs;
  noise_rngs.reserve(config.trials);
  for (uint32_t trial = 0; trial < config.trials; ++trial) {
    noise_rngs.push_back(noise_base.Fork(trial));
  }
  return noise_rngs;
}

}  // namespace

Status ApplyPlatform(RunnerConfig& config, std::string_view platform,
                     uint32_t rows_per_subarray) {
  const PlatformInfo* info = FindPlatform(platform);
  if (info == nullptr) {
    std::string names;
    for (const std::string& name : PlatformNames()) {
      names += names.empty() ? name : ", " + name;
    }
    return MakeError(ErrorCode::kInvalidArgument, "unknown platform '" +
                                                      std::string(platform) +
                                                      "' (have: " + names + ")");
  }
  uint32_t subarray = rows_per_subarray == 0 ? info->geometry.rows_per_subarray
                                             : rows_per_subarray;
  if (std::find(info->subarray_sizes.begin(), info->subarray_sizes.end(), subarray) ==
      info->subarray_sizes.end()) {
    return MakeError(ErrorCode::kInvalidArgument,
                     "platform '" + std::string(platform) + "' has no " +
                         std::to_string(subarray) + "-row subarray parts");
  }
  config.platform = std::string(platform);
  config.geometry = info->geometry;
  config.geometry.rows_per_subarray = subarray;
  config.hypervisor.rows_per_subarray = subarray;
  config.hypervisor.uniform_internal_addressing = info->uniform_internal_addressing;
  for (DimmProfile& profile : config.dimm_profiles) {
    profile.remap = info->remap;
    profile.trr = info->trr;
  }
  return Status::Ok();
}

void ReplayDisturbance(Machine& machine, std::span<const MemRequest> trace,
                       uint32_t channels_per_shard, uint32_t threads) {
  const DramGeometry& geometry = machine.config().geometry;
  // Device clocks are monotonic and already advanced by boot-time writes.
  const uint64_t clock0 = machine.clock_ns();
  const uint64_t act_cost = machine.config().act_cost_ns;
  const uint32_t banks_per_socket = geometry.banks_per_socket();

  // Open-row tracker, flat over every bank in the machine (-1 = closed).
  // Shards touch channel-disjoint index ranges (SocketBankIndex is
  // channel-major), so one vector serves both the serial and sharded paths.
  std::vector<int64_t> open_rows(geometry.total_banks(), -1);

  // Timestamps come from the request's *global trace index*, not from an
  // accumulated clock, so a shard replaying its subsequence computes the
  // same per-ACT times the serial replay would — the property that makes
  // the two paths flip-identical. The machine clock itself is not advanced.
  auto replay_one = [&](uint64_t index) {
    const MediaAddress& media = trace[index].address;
    int64_t& open_row =
        open_rows[media.socket * banks_per_socket + SocketBankIndex(geometry, media)];
    if (open_row == static_cast<int64_t>(media.row)) {
      return;  // row hit: buffer reuse, no device ACT
    }
    open_row = media.row;
    machine.device(media.socket, media.channel, media.dimm)
        .Activate(media.rank, media.bank, media.row, clock0 + index * act_cost);
  };

  if (channels_per_shard == 0) {
    for (uint64_t index = 0; index < trace.size(); ++index) {
      replay_one(index);
    }
    return;
  }

  // Sharded replay: partition trace indices by (socket, channel block), then
  // replay each shard's subsequence in trace order. Devices and open-row
  // entries are channel-disjoint across shards, so shard replays commute —
  // concurrent workers produce the flips the serial replay would.
  const ShardPlan plan(geometry, geometry.sockets, channels_per_shard);
  SILOZ_CHECK(trace.size() <= std::numeric_limits<uint32_t>::max());
  std::vector<std::vector<uint32_t>> shard_indices(plan.shard_count());
  for (auto& indices : shard_indices) {
    indices.reserve(trace.size() / plan.shard_count() + 16);
  }
  for (uint32_t index = 0; index < trace.size(); ++index) {
    const MediaAddress& media = trace[index].address;
    shard_indices[plan.ShardOf(media.socket, media.channel)].push_back(index);
  }
  auto replay_shard = [&](uint64_t shard) {
    for (uint32_t index : shard_indices[shard]) {
      replay_one(index);
    }
  };
  if (threads <= 1) {
    for (uint32_t shard = 0; shard < plan.shard_count(); ++shard) {
      replay_shard(shard);
    }
  } else {
    ThreadPool pool(threads);
    pool.ParallelFor(0, plan.shard_count(), replay_shard);
  }
}

namespace {

// Trial loop over an optionally pre-booted platform. `platform` non-null
// (timing mode only) skips the boot; the grid passes one platform to every
// point with an equal platform configuration.
Result<RunMeasurement> RunWorkloadOn(const RunnerConfig& config, const WorkloadSpec& spec,
                                     std::shared_ptr<const BootedPlatform> platform) {
  if (!config.trace_out.empty()) {
    obs::Tracer::Global().Enable();
  }
  const std::vector<Rng> noise_rngs = ForkNoiseStreams(config, spec);

  // Timing mode boots the platform once (unless the caller shares one);
  // trials read only its immutable state (decoder LUTs, VM region placement)
  // and own their timing state. Fault mode boots inside each trial instead
  // (RunFaultTrial).
  if (!config.fault_tracking && platform == nullptr) {
    Result<std::shared_ptr<const BootedPlatform>> booted = BootPlatform(config);
    SILOZ_RETURN_IF_ERROR(booted);
    platform = std::move(*booted);
  }

  std::vector<Result<TrialOutcome>> outcomes(config.trials,
                                             Result<TrialOutcome>(TrialOutcome{}));
  PhaseTimer timer("trials");
  PoolMetrics pool_metrics;
  {
    // Scoped so the pool's destructor flushes its scheduler counters before
    // any metrics file below is written.
    ThreadPool pool(config.threads);
    obs::TraceSpan span("trials:" + spec.name);
    ProgressMeter progress("trials:" + spec.name, config.trials);
    pool.ParallelFor(0, config.trials, [&](uint64_t trial) {
      if (config.fault_tracking) {
        outcomes[trial] =
            RunFaultTrial(config, spec, static_cast<uint32_t>(trial), noise_rngs[trial]);
      } else {
        outcomes[trial] =
            RunTimingTrial(config, spec, static_cast<uint32_t>(trial), noise_rngs[trial],
                           platform->machine.decoder(), *platform->vm);
      }
      progress.Tick();
    });
    pool_metrics = pool.metrics();
  }

  Result<RunMeasurement> merged = MergeTrialOutcomes(outcomes);
  SILOZ_RETURN_IF_ERROR(merged);
  RunMeasurement measurement = std::move(*merged);
  measurement.pool = timer.Finish(pool_metrics);
  if (!config.metrics_out.empty()) {
    obs::WriteMetricsJson(config.metrics_out);
  }
  if (!config.trace_out.empty()) {
    obs::WriteTraceJson(config.trace_out);
  }
  return measurement;
}

}  // namespace

Result<RunMeasurement> RunWorkload(const RunnerConfig& config, const WorkloadSpec& spec) {
  return RunWorkloadOn(config, spec, nullptr);
}

Result<std::vector<RunMeasurement>> RunWorkloadGrid(const std::vector<GridPoint>& points,
                                                    uint32_t threads,
                                                    PoolPhaseMetrics* metrics) {
  std::vector<Result<RunMeasurement>> runs(points.size(),
                                           Result<RunMeasurement>(RunMeasurement{}));
  PhaseTimer timer("grid");

  // Boot each distinct timing-mode platform configuration exactly once, on
  // the coordinating thread in point order — a figure grid reuses a handful
  // of platforms (~2 MB each) across dozens of points, and serializing the
  // boots here keeps boot-time model metrics thread-count-invariant. A point
  // whose boot fails records its error and is skipped below; a later point
  // with the same configuration re-attempts the (deterministic) boot.
  std::vector<std::shared_ptr<const BootedPlatform>> point_platform(points.size());
  std::vector<size_t> booted_points;
  for (size_t i = 0; i < points.size(); ++i) {
    if (points[i].config.fault_tracking) {
      continue;  // fault mode boots per trial; nothing shareable
    }
    bool found = false;
    for (size_t prior : booted_points) {
      if (SamePlatformConfig(points[prior].config, points[i].config)) {
        point_platform[i] = point_platform[prior];
        found = true;
        break;
      }
    }
    if (found) {
      continue;
    }
    Result<std::shared_ptr<const BootedPlatform>> booted = BootPlatform(points[i].config);
    if (booted.ok()) {
      point_platform[i] = std::move(*booted);
      booted_points.push_back(i);
    } else {
      runs[i] = booted.error();
    }
  }

  // Flattened schedule: every (point, trial) pair is one pool task, so grid
  // cells and their trials share a single work-stealing schedule instead of
  // nesting a serial trial pool inside each grid task (DESIGN.md §15) — a
  // figure grid's parallelism is points * trials, not points. Noise streams
  // fork per point in trial order up front, exactly the forks RunWorkload
  // draws, so the flattening is invisible in the results. Observability
  // files are never written per point (that would race and interleave); the
  // grid's caller writes once after all points complete.
  struct FlatTask {
    uint32_t point = 0;
    uint32_t trial = 0;
  };
  std::vector<FlatTask> tasks;
  std::vector<std::vector<Rng>> point_noise(points.size());
  std::vector<std::vector<Result<TrialOutcome>>> point_outcomes(points.size());
  for (size_t i = 0; i < points.size(); ++i) {
    if (!runs[i].ok()) {
      continue;  // boot failed; the merge below reports it in point order
    }
    const RunnerConfig& config = points[i].config;
    point_noise[i] = ForkNoiseStreams(config, points[i].workload);
    point_outcomes[i].assign(config.trials, Result<TrialOutcome>(TrialOutcome{}));
    for (uint32_t trial = 0; trial < config.trials; ++trial) {
      tasks.push_back(FlatTask{static_cast<uint32_t>(i), trial});
    }
  }

  PoolMetrics pool_metrics;
  {
    ThreadPool pool(threads);
    obs::TraceSpan span("grid");
    ProgressMeter progress("grid", tasks.size());
    pool.ParallelFor(0, tasks.size(), [&](uint64_t t) {
      const FlatTask task = tasks[t];
      const GridPoint& point = points[task.point];
      Result<TrialOutcome>& outcome = point_outcomes[task.point][task.trial];
      if (point.config.fault_tracking) {
        outcome = RunFaultTrial(point.config, point.workload, task.trial,
                                point_noise[task.point][task.trial]);
      } else {
        outcome = RunTimingTrial(point.config, point.workload, task.trial,
                                 point_noise[task.point][task.trial],
                                 point_platform[task.point]->machine.decoder(),
                                 *point_platform[task.point]->vm);
      }
      progress.Tick();
    });
    pool_metrics = pool.metrics();
  }
  if (metrics != nullptr) {
    *metrics = timer.Finish(pool_metrics);
  }

  // Deterministic merge: point order, trial order within each point; the
  // lowest-indexed failure wins, as with the nested loops.
  std::vector<RunMeasurement> measurements;
  measurements.reserve(points.size());
  for (size_t i = 0; i < points.size(); ++i) {
    SILOZ_RETURN_IF_ERROR(runs[i]);
    Result<RunMeasurement> merged = MergeTrialOutcomes(point_outcomes[i]);
    SILOZ_RETURN_IF_ERROR(merged);
    measurements.push_back(std::move(*merged));
  }
  return measurements;
}

}  // namespace siloz
