#include "src/sim/experiment.h"

#include <algorithm>
#include <unordered_map>
#include <utility>

#include "src/base/rng.h"
#include "src/base/thread_pool.h"
#include "src/memctl/engine.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace siloz {
namespace {

// Everything one trial produces; merged into RunMeasurement in trial order.
struct TrialOutcome {
  double elapsed_ns = 0.0;
  double bandwidth_gibs = 0.0;
  double row_hit_rate = 0.0;
  std::vector<uint64_t> flip_phys;  // sorted
};

// Workload identity + hypervisor variant tag mixed into the jitter stream so
// baseline and Siloz runs of one workload draw different (deterministic)
// noise, exactly like back-to-back runs on a real host.
uint64_t VariantTag(const RunnerConfig& config, const WorkloadSpec& spec) {
  uint64_t tag = 0xCBF29CE484222325ull;
  for (char c : spec.name) {
    tag = (tag ^ static_cast<uint8_t>(c)) * 0x100000001B3ull;
  }
  tag ^= (static_cast<uint64_t>(config.hypervisor.enabled) << 40) ^
         (static_cast<uint64_t>(config.hypervisor.rows_per_subarray) << 8) ^
         static_cast<uint64_t>(config.hypervisor.ept_protection);
  return tag;
}

// Runs one trial on private state: its own Machine, hypervisor, VM, and
// noise Rng. Nothing here touches shared mutable state, so trials are safe
// to run on any thread and the outcome depends only on (config, spec,
// trial index, noise stream).
Result<TrialOutcome> RunTrial(const RunnerConfig& config, const WorkloadSpec& spec,
                              uint32_t trial, Rng noise_rng) {
  MachineConfig machine_config;
  machine_config.geometry = config.geometry;
  machine_config.decoder = config.decoder;
  machine_config.timings = config.timings;
  machine_config.fault_tracking = config.fault_tracking;  // timing fidelity (DESIGN.md §4)
  machine_config.dimm_profiles = config.dimm_profiles;
  Machine machine(machine_config);

  SilozHypervisor hypervisor(machine.decoder(), machine.phys_memory(), config.hypervisor);
  SILOZ_RETURN_IF_ERROR(hypervisor.Boot());
  Result<VmId> vm_id = hypervisor.CreateVm(config.vm);
  SILOZ_RETURN_IF_ERROR(vm_id);
  Result<Vm*> vm = hypervisor.GetVm(*vm_id);
  SILOZ_RETURN_IF_ERROR(vm);

  EngineConfig engine;
  engine.max_outstanding = spec.mlp;
  engine.compute_ns_per_access = spec.compute_ns_per_access;
  const std::vector<MemoryController*> controllers = machine.controllers();
  const uint64_t trace_seed = config.seed + trial * 7919;
  std::vector<MemRequest> trace;
  EngineResult result;
  // A trace that fits in the last-level cache replays faster split into a
  // tight generation loop plus a tight service loop; one that spills to DRAM
  // is better fused, which skips the round-trip through memory entirely.
  // Either path yields the identical request sequence (TraceStreamer is the
  // single implementation), so this is purely a throughput heuristic.
  constexpr uint64_t kFuseThresholdBytes = 24ull << 20;
  const bool fuse = !config.fault_tracking &&
                    spec.accesses * sizeof(MemRequest) > kFuseThresholdBytes;
  if (fuse) {
    TraceStreamer stream(spec, machine.decoder(), (*vm)->regions(), config.vm.socket,
                         trace_seed);
    result = RunClosedLoopOver(
        stream.size(), [&stream]() -> const MemRequest& { return stream.Next(); },
        controllers, engine);
  } else {
    // Materialized path; fault tracking always takes it because the trace is
    // consumed twice (timing run + device replay below).
    trace = GenerateTrace(spec, machine.decoder(), (*vm)->regions(), config.vm.socket,
                          trace_seed);
    result = RunClosedLoop(trace, controllers, engine);
  }

  TrialOutcome outcome;
  const double jitter = 1.0 + config.os_noise_frac * noise_rng.NextGaussian();
  outcome.elapsed_ns = result.elapsed_ns * jitter;
  outcome.bandwidth_gibs = static_cast<double>(result.requests) * 64.0 / outcome.elapsed_ns *
                           (1e9 / (1024.0 * 1024.0 * 1024.0));
  outcome.row_hit_rate = controllers[config.vm.socket]->stats().row_hit_rate();
  if (config.fault_tracking) {
    // Replay the trace's activation stream into the disturbance model: a
    // per-bank open-row tracker mirrors the controller's open-page policy,
    // so each row *miss* becomes one device ACT (row hits reuse the buffer
    // and disturb nothing). Deterministic in the trace alone.
    std::unordered_map<uint64_t, int64_t> open_rows;
    // Device clocks are monotonic and already advanced by boot-time writes.
    uint64_t clock_ns = machine.clock_ns();
    for (const MemRequest& request : trace) {
      const MediaAddress& media = request.address;
      const uint64_t bank_key =
          (((static_cast<uint64_t>(media.socket) * config.geometry.channels_per_socket +
             media.channel) *
                config.geometry.dimms_per_channel +
            media.dimm) *
               config.geometry.ranks_per_dimm +
           media.rank) *
              config.geometry.banks_per_rank +
          media.bank;
      int64_t& open_row = open_rows.try_emplace(bank_key, -1).first->second;
      if (open_row != static_cast<int64_t>(media.row)) {
        open_row = media.row;
        machine.device(media.socket, media.channel, media.dimm)
            .Activate(media.rank, media.bank, media.row, clock_ns);
        clock_ns += machine.config().act_cost_ns;
      }
    }
    for (const PhysFlip& flip : machine.DrainFlips()) {
      outcome.flip_phys.push_back(flip.phys);
    }
    std::sort(outcome.flip_phys.begin(), outcome.flip_phys.end());
  }
  return outcome;
}

}  // namespace

Result<RunMeasurement> RunWorkload(const RunnerConfig& config, const WorkloadSpec& spec) {
  if (!config.trace_out.empty()) {
    obs::Tracer::Global().Enable();
  }
  // Fork one noise stream per trial up front, in trial order, so the streams
  // depend only on (seed, variant, trial index) — never on which thread runs
  // the trial or in what order trials finish.
  Rng noise_base(config.seed ^ VariantTag(config, spec));
  std::vector<Rng> noise_rngs;
  noise_rngs.reserve(config.trials);
  for (uint32_t trial = 0; trial < config.trials; ++trial) {
    noise_rngs.push_back(noise_base.Fork(trial));
  }

  std::vector<Result<TrialOutcome>> outcomes(config.trials,
                                             Result<TrialOutcome>(TrialOutcome{}));
  PhaseTimer timer("trials");
  PoolMetrics pool_metrics;
  {
    // Scoped so the pool's destructor flushes its scheduler counters before
    // any metrics file below is written.
    ThreadPool pool(config.threads);
    obs::TraceSpan span("trials:" + spec.name);
    ProgressMeter progress("trials:" + spec.name, config.trials);
    pool.ParallelFor(0, config.trials, [&](uint64_t trial) {
      outcomes[trial] =
          RunTrial(config, spec, static_cast<uint32_t>(trial), noise_rngs[trial]);
      progress.Tick();
    });
    pool_metrics = pool.metrics();
  }

  // Deterministic merge: trial order, lowest-index error wins.
  RunMeasurement measurement;
  for (uint32_t trial = 0; trial < config.trials; ++trial) {
    SILOZ_RETURN_IF_ERROR(outcomes[trial]);
    const TrialOutcome& outcome = *outcomes[trial];
    RunningStat elapsed;
    elapsed.Add(outcome.elapsed_ns);
    RunningStat bandwidth;
    bandwidth.Add(outcome.bandwidth_gibs);
    measurement.elapsed_ns.Merge(elapsed);
    measurement.bandwidth_gibs.Merge(bandwidth);
    measurement.row_hit_rate = outcome.row_hit_rate;
    measurement.flip_phys.insert(measurement.flip_phys.end(), outcome.flip_phys.begin(),
                                 outcome.flip_phys.end());
  }
  measurement.pool = timer.Finish(pool_metrics);
  if (!config.metrics_out.empty()) {
    obs::WriteMetricsJson(config.metrics_out);
  }
  if (!config.trace_out.empty()) {
    obs::WriteTraceJson(config.trace_out);
  }
  return measurement;
}

Result<std::vector<RunMeasurement>> RunWorkloadGrid(const std::vector<GridPoint>& points,
                                                    uint32_t threads,
                                                    PoolPhaseMetrics* metrics) {
  std::vector<Result<RunMeasurement>> runs(points.size(),
                                           Result<RunMeasurement>(RunMeasurement{}));
  PhaseTimer timer("grid");
  PoolMetrics pool_metrics;
  {
    ThreadPool pool(threads);
    obs::TraceSpan span("grid");
    ProgressMeter progress("grid", points.size());
    pool.ParallelFor(0, points.size(), [&](uint64_t i) {
      GridPoint point = points[i];
      point.config.threads = 1;  // the grid is the only level of parallelism
      // Writing observability files per point would race and interleave;
      // the grid's caller writes once after all points complete.
      point.config.metrics_out.clear();
      point.config.trace_out.clear();
      runs[i] = RunWorkload(point.config, point.workload);
      progress.Tick();
    });
    pool_metrics = pool.metrics();
  }
  if (metrics != nullptr) {
    *metrics = timer.Finish(pool_metrics);
  }

  std::vector<RunMeasurement> measurements;
  measurements.reserve(points.size());
  for (Result<RunMeasurement>& run : runs) {
    SILOZ_RETURN_IF_ERROR(run);
    measurements.push_back(std::move(*run));
  }
  return measurements;
}

}  // namespace siloz
