// Fleet-churn simulator (§7 operational costs).
//
// Quantifies what Siloz's whole-subarray-group placement costs an operator
// under production churn: thousands of VMs arriving and departing, each
// reserving whole logical nodes, with the stranded capacity, per-socket
// exhaustion events, and allocation tails that follow — plus how much of the
// stranded capacity a migration-based defragmentation policy claws back.
//
// The driver has three deterministic stages:
//
//  1. Trace synthesis. A fixed number of independent streams (never a
//     function of the worker count) each synthesize a Poisson arrival
//     process whose rate is modulated by a compressed diurnal cycle
//     (thinning against the peak rate), with Zipfian-skewed VM sizes and
//     bounded-Pareto lifetimes. Every stream draws from an Rng forked from
//     the run seed by stream index, and the merged trace is sorted by
//     (arrival time, stream, sequence) — bit-identical for any --threads N.
//
//  2. Epoch replay. Simulated time is cut into epochs. Within an epoch each
//     socket replays its own arrivals/departures serially in timestamp
//     order; sockets run in parallel on a work-stealing pool, which is safe
//     AND deterministic because a socket's admission decisions depend only
//     on that socket's state (its guest nodes, its EPT pool, its host node
//     — all disjoint by construction). VM ids are interleaving-dependent
//     and never appear in deterministic output; trace names are the keys.
//
//  3. Epoch boundaries. Behind a barrier, a single thread runs the
//     cross-socket work: the defragmentation policy (MigrateVm donors from
//     exhausted sockets to the emptiest peers, then retry the blocked
//     admissions) and the stranded-capacity census.
//
// After the last arrival the replay drains naturally (every admitted VM
// departs at the end of its lifetime), and the final state is diffed
// against the post-boot conservation snapshot: a leak-free run reports
// drained_clean = true.
//
// Model-domain outputs (FleetReport, the fleet.* counters) are bit-identical
// for every --threads value. Wall-clock allocation/teardown/migration tails
// go to sched-domain histograms and are excluded from that contract.
#ifndef SILOZ_SRC_SIM_FLEET_H_
#define SILOZ_SRC_SIM_FLEET_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/base/result.h"
#include "src/dram/geometry.h"
#include "src/siloz/config.h"

namespace siloz {

// What to do with an arrival its home socket cannot place (§7).
enum class AdmissionPolicy : uint8_t {
  kReject,  // fail fast: count the rejection and drop the arrival
  kQueue,   // FIFO-wait for departures on the socket, up to a timeout
  kDefrag,  // queue, and migrate donors away at epoch boundaries to make room
};

const char* AdmissionPolicyName(AdmissionPolicy policy);
Result<AdmissionPolicy> ParseAdmissionPolicy(std::string_view name);

// A fleet-scale platform: 8 sockets x 1 TiB of 8 KiB rows, 512-row subarray
// groups of 2 GiB each — 510 guest nodes per socket once the host keeps two
// groups. Sparse backing means the 8 TiB is never materialized; what bounds
// concurrency is the §5.4 EPT pool (one protected row group per socket).
DramGeometry FleetGeometry();

struct FleetConfig {
  SilozConfig hypervisor;  // rows_per_subarray is forced to the geometry's
  DramGeometry geometry = FleetGeometry();
  AdmissionPolicy policy = AdmissionPolicy::kDefrag;
  uint64_t seed = 42;
  // Worker threads (0 = $SILOZ_THREADS or hardware concurrency). Model
  // outputs are identical for every value.
  uint32_t threads = 0;

  // --- Trace shape (simulated time) ---
  uint32_t streams = 16;        // synthesis streams; fixed, NOT thread-derived
  double duration_s = 120.0;    // arrival window
  double arrivals_per_s = 20.0; // base Poisson rate, summed over streams
  double burst_amplitude = 0.6; // diurnal modulation depth, in [0, 1)
  double burst_period_s = 240.0;   // compressed diurnal cycle
  double size_theta = 1.5;         // Zipfian skew over size_classes_bytes
  std::vector<uint64_t> size_classes_bytes = {
      1ull << 30, 2ull << 30, 4ull << 30, 8ull << 30, 16ull << 30};
  double lifetime_alpha = 1.5;     // bounded-Pareto tail index
  double min_lifetime_s = 20.0;
  double max_lifetime_s = 600.0;

  // --- Replay shape ---
  double epoch_s = 15.0;           // defrag + census cadence
  double queue_timeout_s = 60.0;   // kQueue/kDefrag: abandon after this wait
  uint32_t max_migrations_per_epoch = 64;
};

struct FleetSocketStats {
  uint64_t admitted = 0;
  uint64_t queued_admits = 0;      // admitted after waiting in the queue
  uint64_t rejected = 0;           // kReject policy: failed on arrival
  uint64_t abandoned = 0;          // queue wait exceeded the timeout
  // Failed CreateVm attempts with kNoMemory (nodes or EPT pool), retries
  // included — the paper's node-exhaustion events, per socket.
  uint64_t exhaustion_events = 0;
  bool operator==(const FleetSocketStats&) const = default;
};

struct FleetReport {
  // --- Model domain: bit-identical for every --threads value ---
  uint64_t trace_vms = 0;          // arrivals synthesized
  uint64_t admitted = 0;
  uint64_t queued_admits = 0;
  uint64_t rejected = 0;
  uint64_t abandoned = 0;
  uint64_t exhaustion_events = 0;
  uint64_t migrations = 0;         // successful MigrateVm calls (defrag)
  uint64_t failed_migrations = 0;
  // Whole-node capacity freed on exhausted sockets by those migrations.
  uint64_t recovered_bytes = 0;
  // Exact maximum of simultaneously-admitted VMs (post-hoc interval sweep).
  uint64_t peak_concurrency = 0;
  // Reserved-but-unallocated bytes inside VM-owned nodes, censused at epoch
  // boundaries — the §7 stranded-memory cost.
  uint64_t peak_stranded_bytes = 0;
  std::vector<FleetSocketStats> sockets;
  // Post-drain conservation: true iff the hypervisor state matched the
  // post-boot snapshot exactly once every VM had departed.
  bool drained_clean = false;
  std::string drain_diff;          // empty when clean

  // Deterministic renderings of the model fields above.
  std::string ModelText() const;
  std::string ModelJson() const;

  // Sched domain: wall-clock alloc/teardown/migration tail latencies
  // (p50/p99/p999 from the fleet.*_ns histograms in the global registry).
  // Host-dependent; never part of the determinism contract.
  static std::string LatencyText();
};

// Boots a fleet-scale hypervisor, synthesizes the trace, replays the churn,
// drains, and reports. Also folds the report's totals into the global
// metrics registry as fleet.* model-domain counters/gauges (single-threaded,
// after the replay) and observes per-call wall latencies into sched-domain
// fleet.alloc_ns / fleet.teardown_ns / fleet.migrate_ns histograms.
Result<FleetReport> RunFleetChurn(const FleetConfig& config);

}  // namespace siloz

#endif  // SILOZ_SRC_SIM_FLEET_H_
