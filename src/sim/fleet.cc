#include "src/sim/fleet.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <deque>
#include <map>
#include <set>
#include <sstream>
#include <utility>

#include "src/addr/decoder.h"
#include "src/base/check.h"
#include "src/base/rng.h"
#include "src/base/thread_pool.h"
#include "src/base/units.h"
#include "src/ept/phys_memory.h"
#include "src/hostmem/numa.h"
#include "src/obs/metrics.h"
#include "src/siloz/conservation.h"
#include "src/siloz/hypervisor.h"

namespace siloz {
namespace {

constexpr uint64_t kNever = UINT64_MAX;

uint64_t SecondsToNs(double seconds) {
  return static_cast<uint64_t>(seconds * 1e9);
}

// Wall-clock sampling for the sched-domain latency histograms only.
// siloz-lint: allow(raw-nondeterminism): host time feeding fleet.*_ns
// histograms, which are sched-domain and outside the determinism contract.
int64_t WallNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// One synthesized VM arrival. `seq` is the global trace index after the
// merge — the deterministic tie-breaker and interval key. Names, not VM ids,
// identify VMs everywhere: ids depend on cross-socket interleaving.
struct Arrival {
  uint64_t time_ns = 0;
  uint64_t lifetime_ns = 0;
  uint64_t bytes = 0;
  uint32_t socket = 0;
  uint32_t stream = 0;
  uint64_t seq = 0;
  std::string name;
};

struct LiveVm {
  VmId id = 0;
  uint64_t admit_ns = 0;
  uint64_t depart_ns = 0;
  uint64_t bytes = 0;
  uint64_t nodes = 0;
  uint64_t seq = 0;
};

struct QueuedVm {
  size_t arrival_index;  // into the merged trace
  uint64_t enqueue_ns;
};

// Everything one socket's replay owns. Disjoint per socket, so the epoch's
// ParallelFor over sockets shares nothing but the (internally locked)
// hypervisor — and the hypervisor state each socket touches is its own.
struct SocketState {
  std::vector<size_t> arrivals;  // indices into the merged trace, time-sorted
  size_t next_arrival = 0;
  // (depart_ns, seq) -> VM name. An ordered map doubles as the departure
  // heap (begin() is the earliest) while allowing exact-key removal when the
  // defrag pass migrates a VM to another socket.
  std::map<std::pair<uint64_t, uint64_t>, std::string> departures;
  std::map<std::string, LiveVm> live;  // name-keyed: deterministic iteration
  std::deque<QueuedVm> queue;
  FleetSocketStats stats;
  std::vector<std::pair<uint64_t, uint64_t>> intervals;  // (admit, depart)
  Status error = Status::Ok();  // first unexpected failure; checked per epoch

  bool Idle() const {
    return next_arrival >= arrivals.size() && departures.empty() && queue.empty();
  }
};

// The whole replay, bundled so the per-socket worker lambdas stay readable.
struct FleetRun {
  const FleetConfig& config;
  SilozHypervisor& hv;
  std::vector<Arrival> trace;
  std::vector<SocketState> sockets;
  uint64_t timeout_ns = 0;
  obs::Histogram* alloc_hist = nullptr;
  obs::Histogram* teardown_hist = nullptr;
  obs::Histogram* migrate_hist = nullptr;

  FleetRun(const FleetConfig& config_in, SilozHypervisor& hv_in)
      : config(config_in), hv(hv_in) {}

  // Attempts one admission. Returns true on success, false on a capacity
  // failure (counted as an exhaustion event); anything else is recorded in
  // st.error. Runs on the socket's replay thread or the serial defrag pass.
  bool TryAdmit(SocketState& st, const Arrival& arrival, uint64_t now_ns, bool from_queue) {
    VmConfig vm_config;
    vm_config.name = arrival.name;
    vm_config.memory_bytes = arrival.bytes;
    vm_config.socket = arrival.socket;
    // Large VMs back with 1 GiB pages (fewer EPT table pages — the pool is
    // the binding fleet resource); everything else keeps the §5.4 2 MiB
    // default.
    vm_config.backing = arrival.bytes >= (4ull << 30) ? PageSize::k1G : PageSize::k2M;
    const int64_t start = WallNs();
    Result<VmId> created = hv.CreateVm(vm_config);
    alloc_hist->Observe(static_cast<uint64_t>(WallNs() - start));
    if (!created.ok()) {
      if (created.error().code == ErrorCode::kNoMemory) {
        ++st.stats.exhaustion_events;
        return false;
      }
      st.error = created.error();
      return false;
    }
    Result<Vm*> vm = hv.GetVm(*created);
    if (!vm.ok()) {
      st.error = vm.error();
      return false;
    }
    LiveVm live;
    live.id = *created;
    live.admit_ns = now_ns;
    live.depart_ns = now_ns + arrival.lifetime_ns;
    live.bytes = arrival.bytes;
    live.nodes = (*vm)->guest_nodes().size();
    live.seq = arrival.seq;
    st.departures.emplace(std::make_pair(live.depart_ns, live.seq), arrival.name);
    st.live.emplace(arrival.name, live);
    ++st.stats.admitted;
    if (from_queue) {
      ++st.stats.queued_admits;
    }
    return true;
  }

  void Depart(SocketState& st, uint64_t now_ns) {
    auto first = st.departures.begin();
    const std::string name = first->second;
    st.departures.erase(first);
    auto live_it = st.live.find(name);
    SILOZ_CHECK(live_it != st.live.end());
    const LiveVm vm = live_it->second;
    st.live.erase(live_it);
    const int64_t start = WallNs();
    Status destroyed = hv.DestroyVm(vm.id);
    if (destroyed.ok()) {
      destroyed = hv.ReleaseVmNodes(vm.id);
    }
    teardown_hist->Observe(static_cast<uint64_t>(WallNs() - start));
    if (!destroyed.ok()) {
      st.error = destroyed.error();
      return;
    }
    st.intervals.emplace_back(vm.admit_ns, vm.depart_ns);
    // A departure is the moment queued arrivals can fit; drain in FIFO order
    // until the head no longer does.
    DrainQueue(st, now_ns);
  }

  void DrainQueue(SocketState& st, uint64_t now_ns) {
    while (!st.queue.empty() && st.error.ok()) {
      const QueuedVm& head = st.queue.front();
      if (now_ns - head.enqueue_ns > timeout_ns) {
        ++st.stats.abandoned;
        st.queue.pop_front();
        continue;
      }
      if (!TryAdmit(st, trace[head.arrival_index], now_ns, /*from_queue=*/true)) {
        break;
      }
      st.queue.pop_front();
    }
  }

  void ExpireQueue(SocketState& st, uint64_t now_ns) {
    while (!st.queue.empty() && now_ns - st.queue.front().enqueue_ns > timeout_ns) {
      ++st.stats.abandoned;
      st.queue.pop_front();
    }
  }

  // Replays one socket serially up to (but excluding) `horizon_ns`.
  // Departures sort before arrivals at the same instant: the capacity a
  // departing VM frees is available to an arrival sharing its timestamp.
  void ReplayTo(SocketState& st, uint64_t horizon_ns) {
    while (st.error.ok()) {
      const uint64_t next_arrival_ns = st.next_arrival < st.arrivals.size()
                                           ? trace[st.arrivals[st.next_arrival]].time_ns
                                           : kNever;
      const uint64_t next_depart_ns =
          st.departures.empty() ? kNever : st.departures.begin()->first.first;
      const uint64_t now_ns = std::min(next_arrival_ns, next_depart_ns);
      if (now_ns >= horizon_ns) {
        break;
      }
      if (next_depart_ns <= next_arrival_ns) {
        Depart(st, now_ns);
        continue;
      }
      const Arrival& arrival = trace[st.arrivals[st.next_arrival++]];
      if (config.policy == AdmissionPolicy::kReject) {
        if (!TryAdmit(st, arrival, now_ns, /*from_queue=*/false)) {
          ++st.stats.rejected;
        }
        continue;
      }
      // kQueue / kDefrag: strict FIFO — an arrival never jumps a non-empty
      // queue, even if it would fit.
      if (!st.queue.empty() || !TryAdmit(st, arrival, now_ns, /*from_queue=*/false)) {
        st.queue.push_back(QueuedVm{st.arrivals[st.next_arrival - 1], arrival.time_ns});
      }
    }
    ExpireQueue(st, horizon_ns);
  }
};

// Reserved-but-unallocated bytes inside VM-owned guest nodes: capacity the
// operator cannot sell while the owning VM lives (§7 stranded memory).
uint64_t StrandedBytes(const SilozHypervisor& hv, uint32_t socket_count) {
  std::set<uint32_t> available;
  for (uint32_t socket = 0; socket < socket_count; ++socket) {
    for (uint32_t node : hv.AvailableGuestNodes(socket)) {
      available.insert(node);
    }
  }
  uint64_t stranded = 0;
  for (const NumaNode* node : hv.nodes().AllNodes()) {
    if (node->kind() == NodeKind::kGuestReserved && available.count(node->id()) == 0) {
      stranded += node->allocator().free_bytes();
    }
  }
  return stranded;
}

// One serial defrag pass (epoch boundary): for each socket with a blocked
// queue, migrate donors — the live VM holding the fewest nodes, name as the
// tie-break — to the peer socket with the most free nodes, then retry the
// queue head. Bounded per epoch so a hopeless backlog cannot stall the run.
Status DefragPass(FleetRun& run, uint64_t now_ns, FleetReport& report) {
  const uint64_t group_bytes = run.config.geometry.subarray_group_bytes();
  uint32_t budget = run.config.max_migrations_per_epoch;
  for (uint32_t s = 0; s < run.sockets.size() && budget > 0; ++s) {
    SocketState& st = run.sockets[s];
    while (!st.queue.empty() && budget > 0) {
      run.ExpireQueue(st, now_ns);
      if (st.queue.empty()) {
        break;
      }
      if (run.TryAdmit(st, run.trace[st.queue.front().arrival_index], now_ns,
                       /*from_queue=*/true)) {
        st.queue.pop_front();
        continue;
      }
      SILOZ_RETURN_IF_ERROR(st.error);
      // Donor: fewest nodes first (cheapest copy, likeliest to fit), then
      // lexicographically-smallest name for determinism.
      const LiveVm* donor = nullptr;
      std::string donor_name;
      for (const auto& [name, vm] : st.live) {
        if (donor == nullptr || vm.nodes < donor->nodes) {
          donor = &vm;
          donor_name = name;
        }
      }
      if (donor == nullptr) {
        break;  // nothing to move; the queue must wait for departures
      }
      // Target: the peer socket with the most free guest nodes.
      uint32_t target = s;
      size_t target_free = 0;
      for (uint32_t t = 0; t < run.sockets.size(); ++t) {
        if (t == s) {
          continue;
        }
        const size_t free_nodes = run.hv.AvailableGuestNodes(t).size();
        if (free_nodes > target_free) {
          target_free = free_nodes;
          target = t;
        }
      }
      if (target == s || target_free * group_bytes < donor->bytes) {
        break;  // no peer can hold the donor
      }
      const LiveVm moved = *donor;
      const int64_t start = WallNs();
      const Status migrated = run.hv.MigrateVm(moved.id, target);
      run.migrate_hist->Observe(static_cast<uint64_t>(WallNs() - start));
      --budget;
      if (!migrated.ok()) {
        if (migrated.error().code == ErrorCode::kNoMemory) {
          ++report.failed_migrations;
          break;  // capacity race with the target; stop thrashing this epoch
        }
        return migrated.error();
      }
      ++report.migrations;
      report.recovered_bytes += moved.nodes * group_bytes;
      // Re-home the bookkeeping: the VM now lives (and will depart) on the
      // target socket's replay.
      Result<Vm*> vm = run.hv.GetVm(moved.id);
      SILOZ_RETURN_IF_ERROR(vm);
      LiveVm rehomed = moved;
      rehomed.nodes = (*vm)->guest_nodes().size();
      st.live.erase(donor_name);
      SILOZ_CHECK_EQ(
          st.departures.erase(std::make_pair(moved.depart_ns, moved.seq)), 1u);
      SocketState& dst = run.sockets[target];
      dst.live.emplace(donor_name, rehomed);
      dst.departures.emplace(std::make_pair(rehomed.depart_ns, rehomed.seq), donor_name);
    }
  }
  return Status::Ok();
}

}  // namespace

const char* AdmissionPolicyName(AdmissionPolicy policy) {
  switch (policy) {
    case AdmissionPolicy::kReject:
      return "reject";
    case AdmissionPolicy::kQueue:
      return "queue";
    case AdmissionPolicy::kDefrag:
      return "defrag";
  }
  return "unknown";
}

Result<AdmissionPolicy> ParseAdmissionPolicy(std::string_view name) {
  if (name == "reject") {
    return AdmissionPolicy::kReject;
  }
  if (name == "queue") {
    return AdmissionPolicy::kQueue;
  }
  if (name == "defrag") {
    return AdmissionPolicy::kDefrag;
  }
  return MakeError(ErrorCode::kInvalidArgument,
                   "unknown admission policy '" + std::string(name) +
                       "' (expected reject, queue, or defrag)");
}

DramGeometry FleetGeometry() {
  DramGeometry geometry;
  geometry.sockets = 8;
  geometry.channels_per_socket = 8;
  geometry.dimms_per_channel = 2;
  geometry.ranks_per_dimm = 2;
  geometry.banks_per_rank = 16;       // 512 banks/socket -> 4 MiB row groups
  geometry.row_bytes = 8 * kKiB;
  geometry.rows_per_bank = 262144;    // 1 TiB/socket
  geometry.rows_per_subarray = 512;   // 2 GiB subarray groups, 512 per socket
  return geometry;
}

std::string FleetReport::ModelText() const {
  std::ostringstream out;
  out << "fleet: " << trace_vms << " arrivals, " << admitted << " admitted (" << queued_admits
      << " after queueing), " << rejected << " rejected, " << abandoned << " abandoned\n"
      << "fleet: peak concurrency " << peak_concurrency << ", exhaustion events "
      << exhaustion_events << ", peak stranded bytes " << peak_stranded_bytes << "\n"
      << "fleet: " << migrations << " migrations (" << failed_migrations << " failed), "
      << recovered_bytes << " bytes recovered\n";
  for (size_t s = 0; s < sockets.size(); ++s) {
    const FleetSocketStats& st = sockets[s];
    out << "fleet: socket " << s << ": admitted " << st.admitted << " (queued "
        << st.queued_admits << "), rejected " << st.rejected << ", abandoned " << st.abandoned
        << ", exhaustion " << st.exhaustion_events << "\n";
  }
  out << "fleet: drain " << (drained_clean ? "clean" : ("LEAKED: " + drain_diff)) << "\n";
  return out.str();
}

std::string FleetReport::ModelJson() const {
  std::ostringstream out;
  out << "{\"trace_vms\":" << trace_vms << ",\"admitted\":" << admitted
      << ",\"queued_admits\":" << queued_admits << ",\"rejected\":" << rejected
      << ",\"abandoned\":" << abandoned << ",\"exhaustion_events\":" << exhaustion_events
      << ",\"migrations\":" << migrations << ",\"failed_migrations\":" << failed_migrations
      << ",\"recovered_bytes\":" << recovered_bytes
      << ",\"peak_concurrency\":" << peak_concurrency
      << ",\"peak_stranded_bytes\":" << peak_stranded_bytes
      << ",\"drained_clean\":" << (drained_clean ? "true" : "false") << ",\"sockets\":[";
  for (size_t s = 0; s < sockets.size(); ++s) {
    const FleetSocketStats& st = sockets[s];
    if (s > 0) {
      out << ",";
    }
    out << "{\"admitted\":" << st.admitted << ",\"queued_admits\":" << st.queued_admits
        << ",\"rejected\":" << st.rejected << ",\"abandoned\":" << st.abandoned
        << ",\"exhaustion_events\":" << st.exhaustion_events << "}";
  }
  out << "]}";
  return out.str();
}

std::string FleetReport::LatencyText() {
  obs::Registry& registry = obs::Registry::Global();
  std::ostringstream out;
  for (const char* name : {"fleet.alloc_ns", "fleet.teardown_ns", "fleet.migrate_ns"}) {
    const obs::HistogramSnapshot snap =
        registry.GetHistogram(name, obs::Domain::kSched).Snapshot();
    out << name << ": n=" << snap.count << " p50=" << obs::HistogramPercentile(snap, 0.50)
        << " p99=" << obs::HistogramPercentile(snap, 0.99)
        << " p999=" << obs::HistogramPercentile(snap, 0.999) << "\n";
  }
  return out.str();
}

Result<FleetReport> RunFleetChurn(const FleetConfig& config) {
  if (config.streams == 0 || config.size_classes_bytes.empty() || config.epoch_s <= 0.0 ||
      config.duration_s <= 0.0 || config.arrivals_per_s <= 0.0 ||
      config.burst_amplitude < 0.0 || config.burst_amplitude >= 1.0 ||
      config.min_lifetime_s <= 0.0 || config.max_lifetime_s < config.min_lifetime_s) {
    return MakeError(ErrorCode::kInvalidArgument, "malformed fleet configuration");
  }
  if (!config.hypervisor.enabled) {
    return MakeError(ErrorCode::kUnsupported,
                     "the fleet driver measures Siloz placement; baseline has no node churn");
  }

  // --- Boot the fleet platform ---
  const DramGeometry& geometry = config.geometry;
  SkylakeDecoder decoder(geometry);
  FlatPhysMemory memory;  // sparse: the multi-TiB fleet is never materialized
  SilozConfig hv_config = config.hypervisor;
  hv_config.rows_per_subarray = geometry.rows_per_subarray;
  SilozHypervisor hv(decoder, memory, hv_config);
  SILOZ_RETURN_IF_ERROR(hv.Boot());
  const ConservationSnapshot booted = CaptureConservation(hv);

  ThreadPool pool(config.threads);

  // --- Stage 1: trace synthesis (parallel over fixed streams) ---
  const double per_stream_rate = config.arrivals_per_s / config.streams;
  const double peak_rate = per_stream_rate * (1.0 + config.burst_amplitude);
  // Zipfian CDF over the size classes: class r with mass ~ 1/(r+1)^theta.
  // Inlined (vs ZipfianSampler) because fleet skew wants theta > 1, outside
  // the YCSB range that sampler supports.
  std::vector<double> size_cdf(config.size_classes_bytes.size());
  double size_mass = 0.0;
  for (size_t r = 0; r < size_cdf.size(); ++r) {
    size_mass += 1.0 / std::pow(static_cast<double>(r + 1), config.size_theta);
    size_cdf[r] = size_mass;
  }
  Rng root(config.seed);
  std::vector<Rng> stream_rngs;
  stream_rngs.reserve(config.streams);
  for (uint32_t s = 0; s < config.streams; ++s) {
    stream_rngs.push_back(root.Fork(s));
  }
  std::vector<std::vector<Arrival>> per_stream(config.streams);
  pool.ParallelFor(0, config.streams, [&](uint64_t s) {
    Rng rng = stream_rngs[s];
    std::vector<Arrival>& out = per_stream[s];
    double t = 0.0;
    uint64_t k = 0;
    while (true) {
      // Inhomogeneous Poisson via thinning: exponential gaps at the peak
      // rate, candidates kept with probability rate(t)/peak.
      t += -std::log(1.0 - rng.NextDouble()) / peak_rate;
      if (t > config.duration_s) {
        break;
      }
      const double rate =
          per_stream_rate *
          (1.0 + config.burst_amplitude * std::sin(2.0 * M_PI * t / config.burst_period_s));
      if (!rng.NextBernoulli(rate / peak_rate)) {
        continue;
      }
      Arrival arrival;
      arrival.time_ns = SecondsToNs(t);
      const double draw = rng.NextDouble() * size_mass;
      size_t size_class = 0;
      while (size_class + 1 < size_cdf.size() && draw >= size_cdf[size_class]) {
        ++size_class;
      }
      arrival.bytes = config.size_classes_bytes[size_class];
      // Bounded Pareto lifetime: L = min / U^(1/alpha), capped.
      const double u = 1.0 - rng.NextDouble();  // (0, 1]
      arrival.lifetime_ns = SecondsToNs(std::min(
          config.max_lifetime_s,
          config.min_lifetime_s / std::pow(u, 1.0 / config.lifetime_alpha)));
      arrival.socket = static_cast<uint32_t>(rng.NextBelow(geometry.sockets));
      arrival.stream = static_cast<uint32_t>(s);
      arrival.name = "f" + std::to_string(s) + "-" + std::to_string(k++);
      out.push_back(std::move(arrival));
    }
  });

  FleetRun run(config, hv);
  for (std::vector<Arrival>& stream : per_stream) {
    run.trace.insert(run.trace.end(), std::make_move_iterator(stream.begin()),
                     std::make_move_iterator(stream.end()));
  }
  std::stable_sort(run.trace.begin(), run.trace.end(), [](const Arrival& a, const Arrival& b) {
    return std::tie(a.time_ns, a.stream) < std::tie(b.time_ns, b.stream);
  });
  run.sockets.resize(geometry.sockets);
  for (size_t i = 0; i < run.trace.size(); ++i) {
    run.trace[i].seq = i;
    run.sockets[run.trace[i].socket].arrivals.push_back(i);
  }
  run.timeout_ns = SecondsToNs(config.queue_timeout_s);
  obs::Registry& registry = obs::Registry::Global();
  obs::Histogram& alloc_hist = registry.GetHistogram("fleet.alloc_ns", obs::Domain::kSched);
  obs::Histogram& teardown_hist =
      registry.GetHistogram("fleet.teardown_ns", obs::Domain::kSched);
  obs::Histogram& migrate_hist =
      registry.GetHistogram("fleet.migrate_ns", obs::Domain::kSched);
  run.alloc_hist = &alloc_hist;
  run.teardown_hist = &teardown_hist;
  run.migrate_hist = &migrate_hist;

  FleetReport report;
  report.trace_vms = run.trace.size();

  // --- Stage 2/3: epoch replay with serial boundaries ---
  const uint64_t epoch_ns = SecondsToNs(config.epoch_s);
  uint64_t epoch = 0;
  while (true) {
    bool idle = true;
    for (const SocketState& st : run.sockets) {
      idle = idle && st.Idle();
    }
    if (idle) {
      break;
    }
    ++epoch;
    SILOZ_CHECK_LT(epoch, 10'000'000u) << "fleet replay failed to converge";
    const uint64_t horizon_ns = epoch * epoch_ns;
    pool.ParallelFor(0, run.sockets.size(),
                     [&](uint64_t s) { run.ReplayTo(run.sockets[s], horizon_ns); });
    for (const SocketState& st : run.sockets) {
      SILOZ_RETURN_IF_ERROR(st.error);
    }
    if (config.policy == AdmissionPolicy::kDefrag) {
      SILOZ_RETURN_IF_ERROR(DefragPass(run, horizon_ns, report));
    }
    report.peak_stranded_bytes =
        std::max(report.peak_stranded_bytes, StrandedBytes(hv, geometry.sockets));
  }

  // --- Fold the per-socket tallies and sweep the exact peak concurrency ---
  std::vector<std::pair<uint64_t, int32_t>> sweep;  // (time, -1 depart / +1 admit)
  for (const SocketState& st : run.sockets) {
    report.sockets.push_back(st.stats);
    report.admitted += st.stats.admitted;
    report.queued_admits += st.stats.queued_admits;
    report.rejected += st.stats.rejected;
    report.abandoned += st.stats.abandoned;
    report.exhaustion_events += st.stats.exhaustion_events;
    for (const auto& [admit_ns, depart_ns] : st.intervals) {
      sweep.emplace_back(admit_ns, +1);
      sweep.emplace_back(depart_ns, -1);
    }
  }
  // Departures sort before admissions at the same instant, matching the
  // replay's event order.
  std::sort(sweep.begin(), sweep.end());
  int64_t concurrent = 0;
  for (const auto& [time_ns, delta] : sweep) {
    concurrent += delta;
    report.peak_concurrency =
        std::max<uint64_t>(report.peak_concurrency, static_cast<uint64_t>(concurrent));
  }

  // --- Drain check: everything departed, so boot state must be restored ---
  report.drain_diff = DiffConservation(booted, CaptureConservation(hv));
  report.drained_clean = report.drain_diff.empty();

  // Model-domain registry export: pure totals, folded once, serially.
  const auto add = [&registry](const char* name, uint64_t value) {
    if (value > 0) {
      registry.GetCounter(name).Add(value);
    }
  };
  add("fleet.trace_vms", report.trace_vms);
  add("fleet.admitted", report.admitted);
  add("fleet.queued_admits", report.queued_admits);
  add("fleet.rejected", report.rejected);
  add("fleet.abandoned", report.abandoned);
  add("fleet.exhaustion_events", report.exhaustion_events);
  add("fleet.migrations", report.migrations);
  add("fleet.failed_migrations", report.failed_migrations);
  add("fleet.recovered_bytes", report.recovered_bytes);
  registry.GetGauge("fleet.peak_concurrency").Set(static_cast<int64_t>(report.peak_concurrency));
  registry.GetGauge("fleet.peak_stranded_bytes")
      .Set(static_cast<int64_t>(report.peak_stranded_bytes));
  return report;
}

}  // namespace siloz
