#include "src/sim/machine.h"

#include "src/base/check.h"
#include "src/base/units.h"

namespace siloz {

// Routes byte reads/writes through the decoder to the owning DramDevice, so
// stored software state (EPT pages, guest data) is subject to the DRAM fault
// model.
class Machine::DramBackedMemory final : public PhysMemory {
 public:
  explicit DramBackedMemory(Machine& machine) : machine_(machine) {}

  void ReadPhys(uint64_t phys, std::span<uint8_t> out) override {
    Access(phys, out.size(), [&](DramDevice& device, const MediaAddress& media, size_t offset,
                                 size_t chunk) {
      device.Read(media.rank, media.bank, media.row, media.column,
                  out.subspan(offset, chunk), machine_.clock_ns());
    });
  }

  void WritePhys(uint64_t phys, std::span<const uint8_t> data) override {
    Access(phys, data.size(), [&](DramDevice& device, const MediaAddress& media, size_t offset,
                                  size_t chunk) {
      device.Write(media.rank, media.bank, media.row, media.column,
                   data.subspan(offset, chunk), machine_.clock_ns());
    });
  }

 private:
  // Splits [phys, phys+len) into cache-line pieces that each live in one
  // device row and applies `op`.
  template <typename Op>
  void Access(uint64_t phys, size_t len, Op&& op) {
    size_t done = 0;
    while (done < len) {
      const uint64_t address = phys + done;
      const size_t line_remaining = kCacheLineBytes - (address % kCacheLineBytes);
      const size_t chunk = std::min(len - done, line_remaining);
      const MediaAddress media = *machine_.decoder().PhysToMedia(address);
      DramDevice& device = machine_.device(media.socket, media.channel, media.dimm);
      op(device, media, done, chunk);
      done += chunk;
    }
    machine_.AdvanceClock(machine_.config().act_cost_ns / 2);
  }

  Machine& machine_;
};

Machine::Machine(MachineConfig config) : config_(std::move(config)) {
  SILOZ_CHECK(config_.geometry.Validate().ok());
  if (!config_.platform.empty()) {
    Result<std::unique_ptr<AddressDecoder>> made =
        MakePlatformDecoder(config_.platform, config_.geometry);
    SILOZ_CHECK(made.ok()) << "platform '" << config_.platform
                           << "': " << made.error().ToString();
    decoder_ = std::move(*made);
  } else {
    switch (config_.decoder) {
      case DecoderKind::kSkylake:
        decoder_ = std::make_unique<SkylakeDecoder>(config_.geometry);
        break;
      case DecoderKind::kLinear:
        decoder_ = std::make_unique<LinearDecoder>(config_.geometry);
        break;
      case DecoderKind::kSnc2:
        decoder_ = std::make_unique<SncDecoder>(config_.geometry, 2);
        break;
    }
  }
  for (uint32_t socket = 0; socket < config_.geometry.sockets; ++socket) {
    controllers_.push_back(
        std::make_unique<MemoryController>(config_.geometry, socket, config_.timings));
  }
  if (config_.fault_tracking) {
    SILOZ_CHECK(!config_.dimm_profiles.empty());
    const size_t dimm_count = static_cast<size_t>(config_.geometry.sockets) *
                              config_.geometry.channels_per_socket *
                              config_.geometry.dimms_per_channel;
    for (size_t i = 0; i < dimm_count; ++i) {
      const DimmProfile& profile = config_.dimm_profiles[i % config_.dimm_profiles.size()];
      devices_.push_back(std::make_unique<DramDevice>(config_.geometry, profile.remap,
                                                      profile.disturbance, profile.trr,
                                                      profile.name));
    }
    phys_memory_ = std::make_unique<DramBackedMemory>(*this);
  } else {
    phys_memory_ = std::make_unique<FlatPhysMemory>();
  }
}

std::vector<MemoryController*> Machine::controllers() {
  std::vector<MemoryController*> result;
  for (const auto& controller : controllers_) {
    result.push_back(controller.get());
  }
  return result;
}

size_t Machine::DeviceIndex(uint32_t socket, uint32_t channel, uint32_t dimm) const {
  return (static_cast<size_t>(socket) * config_.geometry.channels_per_socket + channel) *
             config_.geometry.dimms_per_channel +
         dimm;
}

DramDevice& Machine::device(uint32_t socket, uint32_t channel, uint32_t dimm) {
  SILOZ_CHECK(config_.fault_tracking) << "devices exist only in fault mode";
  // siloz-lint: allow(map-bracket-probe): devices_ here is the sim Machine's
  // std::vector (index checked by DeviceIndex), not the hypervisor's map.
  return *devices_[DeviceIndex(socket, channel, dimm)];
}

void Machine::ActivatePhys(uint64_t phys) {
  const MediaAddress media = *decoder_->PhysToMedia(phys);
  device(media.socket, media.channel, media.dimm)
      .Activate(media.rank, media.bank, media.row, clock_ns_);
  clock_ns_ += config_.act_cost_ns;
}

void Machine::ActivatePhysHold(uint64_t phys, uint64_t open_ns) {
  const MediaAddress media = *decoder_->PhysToMedia(phys);
  DramDevice& dram = device(media.socket, media.channel, media.dimm);
  dram.Activate(media.rank, media.bank, media.row, clock_ns_);
  clock_ns_ += open_ns;
  dram.Precharge(media.rank, media.bank, clock_ns_);
  clock_ns_ += config_.act_cost_ns;
}

void Machine::AdvanceClock(uint64_t delta_ns) {
  clock_ns_ += delta_ns;
  for (const auto& device : devices_) {
    device->AdvanceTo(clock_ns_);
  }
}

uint64_t Machine::PatrolScrubAll() {
  uint64_t corrected = 0;
  for (const auto& device : devices_) {
    corrected += device->PatrolScrub(clock_ns_);
  }
  return corrected;
}

std::vector<PhysFlip> Machine::DrainFlips() {
  std::vector<PhysFlip> flips;
  for (size_t index = 0; index < devices_.size(); ++index) {
    // siloz-lint: allow(map-bracket-probe): std::vector indexing, see device().
  DramDevice& dram = *devices_[index];
    const uint32_t socket =
        static_cast<uint32_t>(index / (config_.geometry.channels_per_socket *
                                       config_.geometry.dimms_per_channel));
    const uint32_t within =
        static_cast<uint32_t>(index % (config_.geometry.channels_per_socket *
                                       config_.geometry.dimms_per_channel));
    const uint32_t channel = within / config_.geometry.dimms_per_channel;
    const uint32_t dimm = within % config_.geometry.dimms_per_channel;
    for (const FlipRecord& record : dram.flip_log()) {
      MediaAddress media;
      media.socket = socket;
      media.channel = channel;
      media.dimm = dimm;
      media.rank = record.rank;
      media.bank = record.bank;
      media.row = record.media_row;
      media.column = record.byte_in_row;
      PhysFlip flip;
      flip.phys = *decoder_->MediaToPhys(media);
      flip.media = media;
      flip.record = record;
      flip.dimm_name = dram.name();
      flips.push_back(flip);
    }
    dram.ClearFlipLog();
  }
  return flips;
}

}  // namespace siloz
