// Co-located multi-VM execution: several tenants' request streams share the
// machine's memory controllers, modeling the interference environment the
// paper's introduction motivates (§1, §2.2).
//
// Used to show that (a) memory interference between neighbours exists and is
// governed by bank/bus contention, and (b) Siloz placement neither adds to
// nor removes it — subarray groups are a *security* boundary; performance
// isolation needs the coarser units of §8.4.
#ifndef SILOZ_SRC_SIM_COLOCATED_H_
#define SILOZ_SRC_SIM_COLOCATED_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/base/result.h"
#include "src/sim/experiment.h"
#include "src/workload/workloads.h"

namespace siloz {

struct TenantSpec {
  std::string vm_name;
  uint64_t memory_bytes = 3ull << 30;
  uint32_t socket = 0;
  WorkloadSpec workload;
  // Background tenants replay their trace cyclically until every foreground
  // tenant finishes (a noisy neighbour that never goes idle).
  bool background = false;
};

struct TenantResult {
  std::string vm_name;
  double elapsed_ns = 0.0;
  double bandwidth_gibs = 0.0;
  uint64_t requests = 0;
};

// Boots a machine+hypervisor per `config`, creates one VM per tenant, and
// replays all tenants' traces through the shared controllers with a global
// round-robin issue order (each tenant keeps its own MLP window). Returns
// per-tenant results.
Result<std::vector<TenantResult>> RunColocated(const RunnerConfig& config,
                                               const std::vector<TenantSpec>& tenants);

// One point of an interference sweep: a named tenant mix under a full
// runner configuration (kernels can differ per scenario).
struct ColocatedScenario {
  std::string name;
  RunnerConfig config;
  std::vector<TenantSpec> tenants;
};

// Runs every scenario as one pool task (each on its own machine + hypervisor)
// and returns per-scenario tenant results in scenario order — bit-identical
// for every thread count, lowest-indexed error wins. `threads` as in
// RunnerConfig::threads. `metrics`, when non-null, receives the "colocated"
// phase metrics.
Result<std::vector<std::vector<TenantResult>>> RunColocatedSweep(
    const std::vector<ColocatedScenario>& scenarios, uint32_t threads = 0,
    PoolPhaseMetrics* metrics = nullptr);

}  // namespace siloz

#endif  // SILOZ_SRC_SIM_COLOCATED_H_
