#include "src/sim/report.h"

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <fstream>
#include <sstream>

#include "src/base/check.h"

namespace siloz {

ProgressMeter::ProgressMeter(std::string phase, uint64_t total)
    : phase_(std::move(phase)),
      total_(total),
      enabled_(total > 0 && std::getenv("SILOZ_PROGRESS") != nullptr) {}

ProgressMeter::~ProgressMeter() {
  MutexLock lock(mutex_);
  if (enabled_ && last_rendered_pct_ >= 0) {
    std::fputc('\n', stderr);
  }
}

void ProgressMeter::Tick(uint64_t completed_delta) {
  MutexLock lock(mutex_);
  completed_ += completed_delta;
  if (enabled_) {
    RenderLocked();
  }
}

uint64_t ProgressMeter::completed() const {
  MutexLock lock(mutex_);
  return completed_;
}

void ProgressMeter::RenderLocked() {
  const uint64_t capped = completed_ < total_ ? completed_ : total_;
  const int pct = static_cast<int>(capped * 100 / total_);
  if (pct == last_rendered_pct_) {
    return;
  }
  last_rendered_pct_ = pct;
  std::fprintf(stderr, "\r%s: %llu/%llu (%d%%)", phase_.c_str(),
               static_cast<unsigned long long>(capped),
               static_cast<unsigned long long>(total_), pct);
  std::fflush(stderr);
}

std::string PoolPhaseMetrics::ToText() const {
  char line[192];
  std::snprintf(line, sizeof(line),
                "%s: %u workers, %llu tasks (%llu stolen), wall %.1f ms, cpu %.1f ms",
                phase.c_str(), pool.workers, static_cast<unsigned long long>(pool.tasks),
                static_cast<unsigned long long>(pool.steals), wall_ms, cpu_ms);
  return line;
}

std::string PoolPhaseMetrics::ToJson() const {
  std::ostringstream out;
  out << "{\"phase\":\"" << phase << "\",\"workers\":" << pool.workers
      << ",\"tasks\":" << pool.tasks << ",\"steals\":" << pool.steals << ",\"wall_ms\":"
      << CsvNumber(wall_ms) << ",\"cpu_ms\":" << CsvNumber(cpu_ms) << "}";
  return out.str();
}

PhaseTimer::PhaseTimer(std::string phase)
    : phase_(std::move(phase)),
      wall_start_ns_(std::chrono::duration_cast<std::chrono::nanoseconds>(
                         std::chrono::steady_clock::now().time_since_epoch())
                         .count()),
      // siloz-lint: allow(raw-nondeterminism): host CPU time feeding the
      // sched-domain pool metrics, which are outside the determinism contract.
      cpu_start_clocks_(static_cast<int64_t>(std::clock())) {}

PoolPhaseMetrics PhaseTimer::Finish(const PoolMetrics& pool) const {
  PoolPhaseMetrics metrics;
  metrics.phase = phase_;
  metrics.pool = pool;
  const int64_t wall_end_ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                                  std::chrono::steady_clock::now().time_since_epoch())
                                  .count();
  metrics.wall_ms = static_cast<double>(wall_end_ns - wall_start_ns_) / 1e6;
  // siloz-lint: allow(raw-nondeterminism): sched-domain CPU time, as above.
  metrics.cpu_ms = static_cast<double>(static_cast<int64_t>(std::clock()) - cpu_start_clocks_) *
                   1000.0 / CLOCKS_PER_SEC;
  return metrics;
}
namespace {

bool NeedsQuoting(const std::string& field) {
  return field.find_first_of(",\"\n") != std::string::npos;
}

std::string Escape(const std::string& field) {
  if (!NeedsQuoting(field)) {
    return field;
  }
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') {
      out += '"';
    }
    out += c;
  }
  out += '"';
  return out;
}

std::string JoinCsv(const std::vector<std::string>& fields) {
  std::string line;
  for (size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) {
      line += ',';
    }
    line += Escape(fields[i]);
  }
  return line;
}

}  // namespace

CsvReporter::CsvReporter(std::string experiment, std::string directory)
    : experiment_(std::move(experiment)), directory_(std::move(directory)) {
  if (directory_.empty()) {
    const char* env = std::getenv("SILOZ_RESULTS_DIR");
    if (env != nullptr && env[0] != '\0') {
      directory_ = env;
    }
  }
}

std::string CsvReporter::path() const {
  return directory_.empty() ? "" : directory_ + "/" + experiment_ + ".csv";
}

Status CsvReporter::Append(const std::vector<std::string>& columns,
                           const std::vector<std::string>& fields) {
  if (!enabled()) {
    return Status::Ok();
  }
  if (fields.size() != columns.size()) {
    return MakeError(ErrorCode::kInvalidArgument, "field count does not match columns");
  }
  const std::string file = path();
  bool fresh = false;
  {
    std::ifstream probe(file);
    fresh = !probe.good();
  }
  std::ofstream out(file, std::ios::app);
  if (!out.good()) {
    return MakeError(ErrorCode::kFailedPrecondition, "cannot open " + file);
  }
  if (fresh) {
    out << JoinCsv(columns) << '\n';
  }
  out << JoinCsv(fields) << '\n';
  return Status::Ok();
}

std::string CsvNumber(double value) {
  // Doubles hold every integer exactly up to 2^53, so an integral value in
  // that range must round-trip digit for digit. Rounding it to 6 significant
  // digits turned large byte counts and request totals into scientific
  // notation ("1.23457e+07"), corrupting the very columns CSV consumers
  // parse as integers.
  constexpr double kExactIntegerLimit = 9007199254740992.0;  // 2^53
  if (std::isfinite(value) && value == std::floor(value) &&
      std::fabs(value) < kExactIntegerLimit) {
    char buffer[32];
    std::snprintf(buffer, sizeof(buffer), "%.0f", value);
    return buffer;
  }
  std::ostringstream out;
  out.precision(6);
  out << value;
  return out.str();
}

}  // namespace siloz
