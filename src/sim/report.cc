#include "src/sim/report.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "src/base/check.h"

namespace siloz {
namespace {

bool NeedsQuoting(const std::string& field) {
  return field.find_first_of(",\"\n") != std::string::npos;
}

std::string Escape(const std::string& field) {
  if (!NeedsQuoting(field)) {
    return field;
  }
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') {
      out += '"';
    }
    out += c;
  }
  out += '"';
  return out;
}

std::string JoinCsv(const std::vector<std::string>& fields) {
  std::string line;
  for (size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) {
      line += ',';
    }
    line += Escape(fields[i]);
  }
  return line;
}

}  // namespace

CsvReporter::CsvReporter(std::string experiment, std::string directory)
    : experiment_(std::move(experiment)), directory_(std::move(directory)) {
  if (directory_.empty()) {
    const char* env = std::getenv("SILOZ_RESULTS_DIR");
    if (env != nullptr && env[0] != '\0') {
      directory_ = env;
    }
  }
}

std::string CsvReporter::path() const {
  return directory_.empty() ? "" : directory_ + "/" + experiment_ + ".csv";
}

Status CsvReporter::Append(const std::vector<std::string>& columns,
                           const std::vector<std::string>& fields) {
  if (!enabled()) {
    return Status::Ok();
  }
  if (fields.size() != columns.size()) {
    return MakeError(ErrorCode::kInvalidArgument, "field count does not match columns");
  }
  const std::string file = path();
  bool fresh = false;
  {
    std::ifstream probe(file);
    fresh = !probe.good();
  }
  std::ofstream out(file, std::ios::app);
  if (!out.good()) {
    return MakeError(ErrorCode::kFailedPrecondition, "cannot open " + file);
  }
  if (fresh) {
    out << JoinCsv(columns) << '\n';
  }
  out << JoinCsv(fields) << '\n';
  return Status::Ok();
}

std::string CsvNumber(double value) {
  std::ostringstream out;
  out.precision(6);
  out << value;
  return out.str();
}

}  // namespace siloz
