// Machine: composes the substrates into the evaluation platform (Table 2).
//
// A Machine owns the address decoder, per-socket memory controllers (timing
// mode), and — when fault tracking is on — one DramDevice per DIMM plus a
// PhysMemory implementation routed through those devices, so that software
// bytes (including EPT pages) live in hammerable DRAM.
//
// Two fidelities (DESIGN.md §4):
//  - timing mode (fault_tracking=false): workload traces run through the
//    MemoryController model; no per-ACT fault bookkeeping. Used by Figs 4-7.
//  - fault mode (fault_tracking=true): every activation reaches the
//    DramDevice disturbance model. Used by Table 3 / §7.1 experiments.
#ifndef SILOZ_SRC_SIM_MACHINE_H_
#define SILOZ_SRC_SIM_MACHINE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/addr/decoder.h"
#include "src/addr/platform.h"
#include "src/addr/subarray_group.h"
#include "src/dram/device.h"
#include "src/ept/phys_memory.h"
#include "src/memctl/controller.h"

namespace siloz {

enum class DecoderKind : uint8_t { kSkylake, kLinear, kSnc2 };

// Fault-model personality of one DIMM model ("A".."F" in Table 3).
struct DimmProfile {
  std::string name = "A";
  RemapConfig remap;
  DisturbanceProfile disturbance;
  TrrConfig trr;
};

struct MachineConfig {
  DramGeometry geometry;
  DecoderKind decoder = DecoderKind::kSkylake;
  // Named platform from the PlatformDecoder registry (src/addr/platform.h).
  // When non-empty it overrides `decoder`: the machine's mapping comes from
  // the platform's decoder family applied to `geometry` (the caller is
  // expected to have seeded `geometry` from the platform's default — see
  // ApplyPlatform in sim/experiment.h).
  std::string platform;
  DdrTimings timings;
  bool fault_tracking = false;
  // One profile per DIMM, channel-major within socket ("DIMM A" in channel 0
  // of both sockets, etc.). Cycled if shorter than the DIMM count.
  std::vector<DimmProfile> dimm_profiles = {DimmProfile{}};
  // Wall-clock cost charged per activation in fault mode (uncached access +
  // flush round trip).
  uint64_t act_cost_ns = 50;
};

// A bit flip resolved to physical-address coordinates.
struct PhysFlip {
  uint64_t phys = 0;
  MediaAddress media;
  FlipRecord record;
  std::string dimm_name;
};

class Machine {
 public:
  explicit Machine(MachineConfig config);

  const MachineConfig& config() const { return config_; }
  const AddressDecoder& decoder() const { return *decoder_; }
  MemoryController& controller(uint32_t socket) { return *controllers_[socket]; }
  std::vector<MemoryController*> controllers();

  // Physical-byte store: DRAM-backed in fault mode, flat otherwise.
  PhysMemory& phys_memory() { return *phys_memory_; }

  // --- Fault-mode operations ---

  bool fault_tracking() const { return config_.fault_tracking; }
  DramDevice& device(uint32_t socket, uint32_t channel, uint32_t dimm);

  // Activate the row containing `phys` (attacker-style uncached access +
  // flush). Advances the machine clock by act_cost_ns.
  void ActivatePhys(uint64_t phys);
  // Activate and leave the row open for `open_ns` (RowPress-style).
  void ActivatePhysHold(uint64_t phys, uint64_t open_ns);

  uint64_t clock_ns() const { return clock_ns_; }
  void AdvanceClock(uint64_t delta_ns);

  // Run ECC patrol scrub on every DIMM (the 24-hour check of §7.1).
  uint64_t PatrolScrubAll();

  // Collect and clear all flips observed so far, resolved to physical
  // addresses via the decoder inverse.
  std::vector<PhysFlip> DrainFlips();

 private:
  class DramBackedMemory;

  size_t DeviceIndex(uint32_t socket, uint32_t channel, uint32_t dimm) const;

  MachineConfig config_;
  std::unique_ptr<AddressDecoder> decoder_;
  std::vector<std::unique_ptr<MemoryController>> controllers_;
  std::vector<std::unique_ptr<DramDevice>> devices_;  // fault mode only
  std::unique_ptr<PhysMemory> phys_memory_;
  uint64_t clock_ns_ = 0;
};

}  // namespace siloz

#endif  // SILOZ_SRC_SIM_MACHINE_H_
