// Experiment runner for the performance figures (Figs 4-7).
//
// Runs one workload in a VM under a given hypervisor configuration
// (baseline Linux/KVM or a Siloz variant), over several trials with
// distinct trace seeds, and reports elapsed-time and bandwidth statistics
// with 95% confidence intervals — the quantities the paper's figures plot.
#ifndef SILOZ_SRC_SIM_EXPERIMENT_H_
#define SILOZ_SRC_SIM_EXPERIMENT_H_

#include <cstdint>

#include "src/base/result.h"
#include "src/base/stats.h"
#include "src/sim/machine.h"
#include "src/siloz/hypervisor.h"
#include "src/workload/workloads.h"

namespace siloz {

struct RunnerConfig {
  SilozConfig hypervisor;                      // baseline vs Siloz-512/1024/2048
  DecoderKind decoder = DecoderKind::kSkylake;
  DramGeometry geometry;
  DdrTimings timings;
  uint32_t trials = 5;
  uint64_t seed = 42;
  // Run-to-run system jitter applied multiplicatively to elapsed time
  // (scheduler/interrupt noise a real host exhibits); deterministic in seed.
  double os_noise_frac = 0.0015;
  // The measurement VM. The paper uses 160 GiB / 40 vCPUs; the model's
  // results depend on placement, not size, so benches default smaller to
  // keep trace generation fast and note the substitution.
  VmConfig vm{.name = "bench", .memory_bytes = 6ull << 30, .socket = 0};
};

struct RunMeasurement {
  RunningStat elapsed_ns;       // per-trial elapsed time
  RunningStat bandwidth_gibs;   // per-trial achieved bandwidth
  double row_hit_rate = 0.0;    // of the final trial
};

// Boots a machine + hypervisor per `config`, creates the VM, and replays
// `spec` for config.trials independent traces.
Result<RunMeasurement> RunWorkload(const RunnerConfig& config, const WorkloadSpec& spec);

}  // namespace siloz

#endif  // SILOZ_SRC_SIM_EXPERIMENT_H_
