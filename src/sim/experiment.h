// Experiment runner for the performance figures (Figs 4-7).
//
// Runs one workload in a VM under a given hypervisor configuration
// (baseline Linux/KVM or a Siloz variant), over several trials with
// distinct trace seeds, and reports elapsed-time and bandwidth statistics
// with 95% confidence intervals — the quantities the paper's figures plot.
//
// Trials are independent by construction and run concurrently on a
// work-stealing pool (src/base/thread_pool.h): each trial gets its own
// Machine + hypervisor + controllers and a private Rng forked from the run
// seed by trial index, and per-trial statistics are merged in trial order.
// Results are therefore bit-identical for every thread count, including the
// legacy serial path (threads = 1) — the determinism contract of DESIGN.md §8.
#ifndef SILOZ_SRC_SIM_EXPERIMENT_H_
#define SILOZ_SRC_SIM_EXPERIMENT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/base/result.h"
#include "src/base/stats.h"
#include "src/sim/machine.h"
#include "src/sim/report.h"
#include "src/siloz/hypervisor.h"
#include "src/workload/workloads.h"

namespace siloz {

struct RunnerConfig {
  SilozConfig hypervisor;                      // baseline vs Siloz-512/1024/2048
  DecoderKind decoder = DecoderKind::kSkylake;
  DramGeometry geometry;
  DdrTimings timings;
  uint32_t trials = 5;
  uint64_t seed = 42;
  // Worker threads for the trial loop: 0 = $SILOZ_THREADS or hardware
  // concurrency, 1 = legacy serial path. Any value yields identical results.
  uint32_t threads = 0;
  // Run-to-run system jitter applied multiplicatively to elapsed time
  // (scheduler/interrupt noise a real host exhibits); deterministic in seed.
  double os_noise_frac = 0.0015;
  // Route every activation through the DramDevice disturbance model and
  // collect the flipped physical addresses per trial (slower; Table 3-style
  // runs). Off for the timing-fidelity figures.
  bool fault_tracking = false;
  // Fault-model personality per DIMM when fault_tracking is set.
  std::vector<DimmProfile> dimm_profiles = {DimmProfile{}};
  // The measurement VM. The paper uses 160 GiB / 40 vCPUs; the model's
  // results depend on placement, not size, so benches default smaller to
  // keep trace generation fast and note the substitution.
  VmConfig vm{.name = "bench", .memory_bytes = 6ull << 30, .socket = 0};
  // When non-empty, RunWorkload writes the global metrics registry / the
  // Chrome trace-event log to these paths after the trial loop. Out of band:
  // report bytes never include metrics, and model-domain metric values are
  // thread-count-invariant (DESIGN.md §9). Setting trace_out enables the
  // global tracer.
  std::string metrics_out;
  std::string trace_out;
};

struct RunMeasurement {
  RunningStat elapsed_ns;       // per-trial elapsed time
  RunningStat bandwidth_gibs;   // per-trial achieved bandwidth
  double row_hit_rate = 0.0;    // of the final trial
  // Fault mode only: flipped physical addresses, sorted within each trial
  // and concatenated in trial order.
  std::vector<uint64_t> flip_phys;
  // Scheduler/timing metrics of the trial loop ("trials" phase).
  PoolPhaseMetrics pool;
};

// Boots a machine + hypervisor per trial, creates the VM, and replays
// `spec` for config.trials independent traces (concurrently; see above).
Result<RunMeasurement> RunWorkload(const RunnerConfig& config, const WorkloadSpec& spec);

// One point of a sweep grid: a full runner configuration plus a workload.
struct GridPoint {
  RunnerConfig config;
  WorkloadSpec workload;
};

// Runs every grid point as one pool task (each point's trial loop forced
// serial so the grid is the only level of parallelism) and returns the
// measurements in point order — bit-identical for every thread count.
// `threads` as in RunnerConfig::threads. On failure returns the error of the
// lowest-indexed failing point. `metrics`, when non-null, receives the
// "grid" phase metrics.
Result<std::vector<RunMeasurement>> RunWorkloadGrid(const std::vector<GridPoint>& points,
                                                    uint32_t threads = 0,
                                                    PoolPhaseMetrics* metrics = nullptr);

}  // namespace siloz

#endif  // SILOZ_SRC_SIM_EXPERIMENT_H_
