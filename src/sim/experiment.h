// Experiment runner for the performance figures (Figs 4-7).
//
// Runs one workload in a VM under a given hypervisor configuration
// (baseline Linux/KVM or a Siloz variant), over several trials with
// distinct trace seeds, and reports elapsed-time and bandwidth statistics
// with 95% confidence intervals — the quantities the paper's figures plot.
//
// Trials are independent by construction and run concurrently on a
// work-stealing pool (src/base/thread_pool.h): in timing mode they share
// only the immutable booted platform (decoder, VM placement) and own private
// controllers; in fault mode each trial gets a whole Machine (disturbance
// devices accumulate per-trial state). Every trial draws a private Rng
// forked from the run seed by trial index, and per-trial statistics are
// merged in trial order. Results are therefore bit-identical for every
// thread count, including the legacy serial path (threads = 1) — the
// determinism contract of DESIGN.md §8.
#ifndef SILOZ_SRC_SIM_EXPERIMENT_H_
#define SILOZ_SRC_SIM_EXPERIMENT_H_

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "src/base/result.h"
#include "src/base/stats.h"
#include "src/sim/machine.h"
#include "src/sim/report.h"
#include "src/siloz/hypervisor.h"
#include "src/workload/workloads.h"

namespace siloz {

struct RunnerConfig {
  SilozConfig hypervisor;                      // baseline vs Siloz-512/1024/2048
  DecoderKind decoder = DecoderKind::kSkylake;
  // Named platform from the PlatformDecoder registry; empty = the legacy
  // `decoder`/`geometry` pair. Set via ApplyPlatform (below), which also
  // seeds geometry, DDR-generation semantics, and the default DIMM profile.
  std::string platform;
  DramGeometry geometry;
  DdrTimings timings;
  uint32_t trials = 5;
  uint64_t seed = 42;
  // Worker threads for the trial loop: 0 = $SILOZ_THREADS or hardware
  // concurrency, 1 = legacy serial path. Any value yields identical results.
  uint32_t threads = 0;
  // Channel sharding of the engine (DESIGN.md §13). 0 = serial reference
  // engine: every channel coupled through one global MLP window. N >= 1 =
  // sharded engine: each block of N channels is an independent command queue
  // with its own MLP window, and — in fault mode — its own device replay
  // shard. Part of the *model* configuration: reported times depend on this
  // knob, but never on `threads` (the sharded decomposition is fixed by the
  // geometry, not by the worker count).
  uint32_t channels_per_shard = 1;
  // Sub-channel decomposition of each shard into per-bank-group command
  // queues (sharded engine only; DESIGN.md §15). 0 = one completion window
  // per shard (the PR7 shape). N >= 1 = each block of N bank groups owns an
  // independent command queue and window under the shard's issue cursor.
  // Like channels_per_shard this is *model* configuration: completion times
  // depend on it, invariant censuses and thread counts never do.
  uint32_t bank_groups_per_queue = 0;
  // Run-to-run system jitter applied multiplicatively to elapsed time
  // (scheduler/interrupt noise a real host exhibits); deterministic in seed.
  double os_noise_frac = 0.0015;
  // Route every activation through the DramDevice disturbance model and
  // collect the flipped physical addresses per trial (slower; Table 3-style
  // runs). Off for the timing-fidelity figures.
  bool fault_tracking = false;
  // Fault-model personality per DIMM when fault_tracking is set.
  std::vector<DimmProfile> dimm_profiles = {DimmProfile{}};
  // The measurement VM. The paper uses 160 GiB / 40 vCPUs; the model's
  // results depend on placement, not size, so benches default smaller to
  // keep trace generation fast and note the substitution.
  VmConfig vm{.name = "bench", .memory_bytes = 6ull << 30, .socket = 0};
  // When non-empty, RunWorkload writes the global metrics registry / the
  // Chrome trace-event log to these paths after the trial loop. Out of band:
  // report bytes never include metrics, and model-domain metric values are
  // thread-count-invariant (DESIGN.md §9). Setting trace_out enables the
  // global tracer.
  std::string metrics_out;
  std::string trace_out;
};

struct RunMeasurement {
  RunningStat elapsed_ns;       // per-trial elapsed time
  RunningStat bandwidth_gibs;   // per-trial achieved bandwidth
  double row_hit_rate = 0.0;    // of the final trial
  // Fault mode only: flipped physical addresses, sorted within each trial
  // and concatenated in trial order.
  std::vector<uint64_t> flip_phys;
  // Sharded engine only (channels_per_shard >= 1): requests served per
  // shard, summed across trials, in shard-plan order (socket-major, then
  // channel block). Empty for the serial reference engine.
  std::vector<uint64_t> shard_requests;
  // Scheduler/timing metrics of the trial loop ("trials" phase).
  PoolPhaseMetrics pool;
};

// Selects a platform from the PlatformDecoder registry (src/addr/platform.h)
// into `config`: sets config.platform, seeds config.geometry from the
// platform default, mirrors the subarray size into the hypervisor config,
// applies DDR-generation semantics (uniform internal addressing), and
// rewrites the DIMM profiles' remap/TRR to the platform's (disturbance
// personalities and names are kept — customize profiles AFTER this call).
// `rows_per_subarray` 0 selects the platform default; any other value must
// be one the platform's parts ship with (PlatformInfo::subarray_sizes).
// Unknown platforms and unsupported subarray sizes are kInvalidArgument.
// Every platform keeps the determinism contract: reports and model metrics
// are bit-identical for any --threads value.
Status ApplyPlatform(RunnerConfig& config, std::string_view platform,
                     uint32_t rows_per_subarray = 0);

// Runs `spec` for config.trials independent traces (concurrently; see
// above). In timing mode the machine + hypervisor boot once and trials share
// only their immutable state (decoder, VM regions), each serving its trace
// through trial-private controllers; fault mode boots per trial because the
// disturbance devices accumulate per-trial state.
Result<RunMeasurement> RunWorkload(const RunnerConfig& config, const WorkloadSpec& spec);

// Replays a request trace's activation stream into a fault-tracking
// machine's disturbance model: a per-bank open-row tracker mirrors the
// controller's open-page policy, so each row *miss* becomes one device ACT
// (row hits reuse the buffer and disturb nothing). ACT timestamps derive
// from the request's global trace index (machine clock + index * act_cost),
// so a channel shard can compute its own timestamps without global
// coordination — which is what makes the sharded replay (channels_per_shard
// >= 1, shards served on `threads` workers over channel-disjoint devices)
// flip-identical to the serial one (channels_per_shard == 0) by
// construction. Deterministic in the trace alone; the machine clock itself
// is not advanced.
void ReplayDisturbance(Machine& machine, std::span<const MemRequest> trace,
                       uint32_t channels_per_shard = 0, uint32_t threads = 1);

// One point of a sweep grid: a full runner configuration plus a workload.
struct GridPoint {
  RunnerConfig config;
  WorkloadSpec workload;
};

// Runs every (point, trial) pair as one pool task — grid cells and their
// trials share a single flat work-stealing schedule instead of nesting a
// serial trial loop inside each grid task — and returns the measurements in
// point order, merged per point in trial order: bit-identical for every
// thread count, and identical to running each point through RunWorkload.
// `threads` as in RunnerConfig::threads. On failure returns the error of
// the lowest-indexed failing point (lowest failing trial within it).
// `metrics`, when non-null, receives the "grid" phase metrics — the only
// scheduler telemetry of a grid run; the per-point RunMeasurement::pool is
// left empty because no per-point pool exists anymore.
Result<std::vector<RunMeasurement>> RunWorkloadGrid(const std::vector<GridPoint>& points,
                                                    uint32_t threads = 0,
                                                    PoolPhaseMetrics* metrics = nullptr);

}  // namespace siloz

#endif  // SILOZ_SRC_SIM_EXPERIMENT_H_
