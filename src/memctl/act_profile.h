// Row-activation rate profiling (§1, §2.5).
//
// The paper's motivation leans on the observation (MOESI-prime [98]) that
// *commodity* cloud workloads — not just attacks — already activate rows at
// rates exceeding modern Rowhammer thresholds, so deployed mitigations are
// load-bearing and isolation is needed. This profiler consumes the same
// request streams the timing model serves and reports per-row activation
// counts per refresh window, for comparison against threshold ranges.
#ifndef SILOZ_SRC_MEMCTL_ACT_PROFILE_H_
#define SILOZ_SRC_MEMCTL_ACT_PROFILE_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/base/units.h"
#include "src/dram/geometry.h"
#include "src/memctl/controller.h"

namespace siloz {

struct ActProfile {
  uint64_t windows = 0;
  uint64_t total_activations = 0;
  // Highest single-row activation count observed in any one refresh window.
  uint64_t max_row_acts_per_window = 0;
  // Rows whose count exceeded `threshold` in some window.
  uint64_t rows_over_threshold = 0;
  uint64_t threshold = 0;

  double max_acts_rate_vs_threshold() const {
    return threshold == 0 ? 0.0
                          : static_cast<double>(max_row_acts_per_window) /
                                static_cast<double>(threshold);
  }
};

// Counts per-(bank, row) activations in tumbling 64 ms refresh windows.
// Row-buffer hits are not activations: the profiler models an open row per
// bank like the controller does.
class RowActivationProfiler {
 public:
  RowActivationProfiler(const DramGeometry& geometry, uint64_t threshold);

  // Observe a request issued at `time_ns` (stream must be time-ordered).
  void Observe(const MemRequest& request, double time_ns);

  // Close the current window and return the profile so far.
  ActProfile Finish();

 private:
  void RollWindow();

  DramGeometry geometry_;
  uint64_t threshold_;
  uint64_t window_index_ = 0;
  // (socket bank index : row) -> activations in the current window.
  std::unordered_map<uint64_t, uint64_t> counts_;
  std::unordered_map<uint32_t, int64_t> open_row_;  // per global bank
  ActProfile profile_;
};

}  // namespace siloz

#endif  // SILOZ_SRC_MEMCTL_ACT_PROFILE_H_
