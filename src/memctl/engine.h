// Closed-loop access engine: models cores issuing memory requests with
// bounded memory-level parallelism.
//
// Workload generators (src/workload) produce request streams; the engine
// replays them against the per-socket memory controllers with a fixed number
// of outstanding misses and an optional compute gap between issues. Elapsed
// time and achieved bandwidth are what the Fig 4-7 benches report.
//
// The core loop is templated over the request source: replaying a
// materialized trace (RunClosedLoop over a span) and fusing generation with
// service (RunClosedLoopOver with a TraceStreamer-backed callable) share one
// implementation, so the two paths are request-for-request identical by
// construction. The fused path exists because a materialized trace is
// written once and read once — for a pure timing run, streaming each request
// straight from the generator into Serve() skips that round-trip through
// memory entirely.
#ifndef SILOZ_SRC_MEMCTL_ENGINE_H_
#define SILOZ_SRC_MEMCTL_ENGINE_H_

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "src/base/check.h"
#include "src/memctl/controller.h"

namespace siloz {

struct EngineConfig {
  // Outstanding requests the core(s) sustain (MLP). 10 approximates one
  // aggressive core; multi-threaded workloads use higher effective values.
  uint32_t max_outstanding = 10;
  // Nanoseconds of compute between consecutive issues (0 = memory-bound).
  double compute_ns_per_access = 0.0;
};

struct EngineResult {
  double elapsed_ns = 0.0;
  uint64_t requests = 0;

  double bandwidth_gib_per_s(double bytes_per_request = 64.0) const {
    if (elapsed_ns <= 0.0) {
      return 0.0;
    }
    return static_cast<double>(requests) * bytes_per_request / elapsed_ns *
           (1e9 / (1024.0 * 1024.0 * 1024.0));
  }
};

namespace engine_internal {

// Replace the minimum (root) of a flat binary min-heap with `value` in one
// traversal: promote the min-child chain into the hole all the way down to a
// leaf, then bubble `value` up from there (bottom-up heapsort style). Once
// the engine reaches its MLP limit — the steady state for every request
// after warmup — each issue retires exactly the oldest completion and
// inserts one new one. The fresh completion nearly always belongs near a
// leaf, so the descent needs only the one child-vs-child comparison per
// level and the bubble-up terminates almost immediately, where a classic
// pop+push pair pays two traversals with two comparisons per level. The
// internal array layout can differ from a classic sift-down, but the heap
// holds the same value multiset either way, so every observed minimum — the
// only thing the engine reads — is identical.
inline void ReplaceMin(std::vector<double>& heap, double value) {
  const size_t n = heap.size();
  size_t i = 0;
  while (true) {
    size_t child = 2 * i + 1;
    if (child >= n) {
      break;
    }
    const size_t right = child + 1;
    if (right < n && heap[right] < heap[child]) {
      child = right;
    }
    heap[i] = heap[child];
    i = child;
  }
  while (i > 0) {
    const size_t parent = (i - 1) / 2;
    if (heap[parent] <= value) {
      break;
    }
    heap[i] = heap[parent];
    i = parent;
  }
  heap[i] = value;
}

inline void SiftUp(std::vector<double>& heap, size_t i) {
  const double value = heap[i];
  while (i > 0) {
    const size_t parent = (i - 1) / 2;
    if (heap[parent] <= value) {
      break;
    }
    heap[i] = heap[parent];
    i = parent;
  }
  heap[i] = value;
}

}  // namespace engine_internal

// Serve `count` requests pulled one at a time from `next` (a callable
// returning a reference valid until the following call). Requests route to
// controllers[address.socket].
template <typename NextRequest>
EngineResult RunClosedLoopOver(uint64_t count, NextRequest&& next,
                               std::span<MemoryController* const> controllers,
                               const EngineConfig& config) {
  SILOZ_CHECK_GT(config.max_outstanding, 0u);
  // Min-heap of in-flight completion times.
  std::vector<double> in_flight;
  in_flight.reserve(config.max_outstanding);
  double issue_cursor = 0.0;
  double last_completion = 0.0;

  for (uint64_t i = 0; i < count; ++i) {
    const MemRequest& request = next();
    SILOZ_DCHECK(request.address.socket < controllers.size());
    double completion;
    if (in_flight.size() >= config.max_outstanding) {
      // The core stalls until a slot frees up; the new request takes the
      // retired slot (replace-min keeps the heap one traversal per request).
      issue_cursor = std::max(issue_cursor, in_flight.front());
      completion = controllers[request.address.socket]->Serve(request, issue_cursor);
      engine_internal::ReplaceMin(in_flight, completion);
    } else {
      completion = controllers[request.address.socket]->Serve(request, issue_cursor);
      in_flight.push_back(completion);
      engine_internal::SiftUp(in_flight, in_flight.size() - 1);
    }
    last_completion = std::max(last_completion, completion);
    issue_cursor += config.compute_ns_per_access;
  }

  EngineResult result;
  result.elapsed_ns = last_completion;
  result.requests = count;
  return result;
}

// Replays a materialized trace through the controllers.
EngineResult RunClosedLoop(std::span<const MemRequest> requests,
                           std::span<MemoryController* const> controllers,
                           const EngineConfig& config);

}  // namespace siloz

#endif  // SILOZ_SRC_MEMCTL_ENGINE_H_
