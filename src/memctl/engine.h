// Closed-loop access engine: models cores issuing memory requests with
// bounded memory-level parallelism.
//
// Workload generators (src/workload) produce request streams; the engine
// replays them against the per-socket memory controllers with a fixed number
// of outstanding misses and an optional compute gap between issues. Elapsed
// time and achieved bandwidth are what the Fig 4-7 benches report.
#ifndef SILOZ_SRC_MEMCTL_ENGINE_H_
#define SILOZ_SRC_MEMCTL_ENGINE_H_

#include <cstdint>
#include <span>
#include <vector>

#include "src/memctl/controller.h"

namespace siloz {

struct EngineConfig {
  // Outstanding requests the core(s) sustain (MLP). 10 approximates one
  // aggressive core; multi-threaded workloads use higher effective values.
  uint32_t max_outstanding = 10;
  // Nanoseconds of compute between consecutive issues (0 = memory-bound).
  double compute_ns_per_access = 0.0;
};

struct EngineResult {
  double elapsed_ns = 0.0;
  uint64_t requests = 0;

  double bandwidth_gib_per_s(double bytes_per_request = 64.0) const {
    if (elapsed_ns <= 0.0) {
      return 0.0;
    }
    return static_cast<double>(requests) * bytes_per_request / elapsed_ns *
           (1e9 / (1024.0 * 1024.0 * 1024.0));
  }
};

// Replays `requests` through the controllers (indexed by socket).
// Requests route to controllers[address.socket].
EngineResult RunClosedLoop(std::span<const MemRequest> requests,
                           std::span<MemoryController* const> controllers,
                           const EngineConfig& config);

}  // namespace siloz

#endif  // SILOZ_SRC_MEMCTL_ENGINE_H_
