// Closed-loop access engine: models cores issuing memory requests with
// bounded memory-level parallelism.
//
// Workload generators (src/workload) produce request streams; the engine
// replays them against the per-socket memory controllers with a fixed number
// of outstanding misses and an optional compute gap between issues. Elapsed
// time and achieved bandwidth are what the Fig 4-7 benches report.
//
// The core loop is templated over the request source: replaying a
// materialized trace (RunClosedLoop over a span) and fusing generation with
// service (RunClosedLoopOver with a TraceStreamer-backed callable) share one
// implementation, so the two paths are request-for-request identical by
// construction. The fused path exists because a materialized trace is
// written once and read once — for a pure timing run, streaming each request
// straight from the generator into Serve() skips that round-trip through
// memory entirely.
#ifndef SILOZ_SRC_MEMCTL_ENGINE_H_
#define SILOZ_SRC_MEMCTL_ENGINE_H_

#include <algorithm>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "src/base/check.h"
#include "src/memctl/controller.h"

namespace siloz {

struct EngineConfig {
  // Outstanding requests the core(s) sustain (MLP). 10 approximates one
  // aggressive core; multi-threaded workloads use higher effective values.
  uint32_t max_outstanding = 10;
  // Nanoseconds of compute between consecutive issues (0 = memory-bound).
  double compute_ns_per_access = 0.0;
};

struct EngineResult {
  double elapsed_ns = 0.0;
  uint64_t requests = 0;

  double bandwidth_gib_per_s(double bytes_per_request = 64.0) const {
    if (elapsed_ns <= 0.0) {
      return 0.0;
    }
    return static_cast<double>(requests) * bytes_per_request / elapsed_ns *
           (1e9 / (1024.0 * 1024.0 * 1024.0));
  }
};

namespace engine_internal {

// The closed loop observes exactly one property of the in-flight multiset:
// its minimum (the oldest completion, which frees the issue slot). For the
// MLP windows real cores sustain (8-16) a linear scan over a flat array is
// fastest: completion times arrive in near-random order, so tree-walk
// comparisons are data-dependent, while the scan compiles to conditional
// moves. The cmov chain is a serial ~2-cycles-per-element dependence though,
// so for the wide windows the MLC-style saturation probes use (64
// outstanding) an O(log n) structure wins decisively — hence the low
// cutover.
inline constexpr uint32_t kLinearWindowLimit = 16;

// Bounded multiset of in-flight completion times exposing its minimum — the
// one shared window structure behind both the serial engine and the sharded
// ShardServer. Two representations behind one interface:
//
//  - capacity <= kLinearWindowLimit: a flat array min-scanned per query.
//  - above: a tournament (winner) tree over a power-of-two leaf array padded
//    with +inf. Internal node j caches the leaf index of the minimum in its
//    subtree, so MinSlot() is one array read and Replace() walks one
//    leaf-to-root path of branchless index selections (~log2(capacity)
//    cmovs). A binary heap's replace-min pays the same depth but with
//    data-dependent *layout* movement per level; the tree only rewrites its
//    cached winner indices, and was measured faster on the Fig 5 sweep's
//    64-wide windows.
//
// Either way the window holds the same value multiset and callers observe
// only minimum *values* (ties between equal minima are irrelevant: replacing
// either slot yields the same multiset), so engine results are bit-identical
// across representations and capacities on either side of the cutover
// behave consistently.
class CompletionWindow {
 public:
  explicit CompletionWindow(uint32_t capacity)
      : capacity_(capacity), linear_(capacity <= kLinearWindowLimit) {
    SILOZ_CHECK_GT(capacity, 0u);
    if (linear_) {
      values_.reserve(capacity_);
    } else {
      leaves_ = std::bit_ceil(static_cast<size_t>(capacity_));
      values_.assign(leaves_, std::numeric_limits<double>::infinity());
      winners_.assign(leaves_, 0);
      // Seed every internal node with the leftmost leaf of its subtree —
      // consistent with the all-+inf leaves, where the left child wins every
      // tie.
      for (size_t j = leaves_ - 1; j >= 1; --j) {
        winners_[j] =
            (j >= leaves_ / 2) ? static_cast<uint32_t>(2 * j - leaves_) : winners_[2 * j];
      }
    }
  }

  bool full() const { return size_ >= capacity_; }

  // Slot holding the minimum (only meaningful once full()).
  size_t MinSlot() const {
    if (!linear_) {
      return winners_[1];
    }
    size_t best = 0;
    double bestv = values_[0];
    for (size_t i = 1; i < values_.size(); ++i) {
      const bool lt = values_[i] < bestv;
      best = lt ? i : best;
      bestv = lt ? values_[i] : bestv;
    }
    return best;
  }

  double ValueAt(size_t slot) const { return values_[slot]; }

  void Replace(size_t slot, double value) {
    values_[slot] = value;
    if (!linear_) {
      UpdateFrom(slot);
    }
  }

  // Insert into the next free slot (warmup; callers Push only while !full()).
  void Push(double value) {
    if (linear_) {
      values_.push_back(value);
    } else {
      values_[size_] = value;
      UpdateFrom(size_);
    }
    ++size_;
  }

 private:
  // Replay the matches on the leaf's path to the root. The first level
  // compares the two leaves directly; every level above selects between two
  // cached winner indices.
  void UpdateFrom(size_t leaf) {
    const size_t base = leaf & ~size_t{1};
    size_t j = (leaf + leaves_) >> 1;
    winners_[j] = static_cast<uint32_t>(values_[base + 1] < values_[base] ? base + 1 : base);
    for (j >>= 1; j >= 1; j >>= 1) {
      const uint32_t a = winners_[2 * j];
      const uint32_t b = winners_[2 * j + 1];
      winners_[j] = values_[b] < values_[a] ? b : a;
    }
  }

  uint32_t capacity_;
  bool linear_;
  size_t leaves_ = 0;  // bit_ceil(capacity), tree mode only
  size_t size_ = 0;
  std::vector<double> values_;    // linear: grows to capacity; tree: +inf-padded leaves
  std::vector<uint32_t> winners_;  // tree: internal nodes [1, leaves_), leaf index of min
};

}  // namespace engine_internal

// Serve `count` requests pulled one at a time from `next` (a callable
// returning a reference valid until the following call). Requests route to
// controllers[address.socket].
template <typename NextRequest>
EngineResult RunClosedLoopOver(uint64_t count, NextRequest&& next,
                               std::span<MemoryController* const> controllers,
                               const EngineConfig& config) {
  SILOZ_CHECK_GT(config.max_outstanding, 0u);
  engine_internal::CompletionWindow window(config.max_outstanding);
  double issue_cursor = 0.0;
  double last_completion = 0.0;

  for (uint64_t i = 0; i < count; ++i) {
    const MemRequest& request = next();
    SILOZ_DCHECK(request.address.socket < controllers.size());
    double completion;
    if (window.full()) {
      // The core stalls until a slot frees up; the new request takes the
      // retired slot.
      const size_t slot = window.MinSlot();
      issue_cursor = std::max(issue_cursor, window.ValueAt(slot));
      completion = controllers[request.address.socket]->Serve(request, issue_cursor);
      window.Replace(slot, completion);
    } else {
      completion = controllers[request.address.socket]->Serve(request, issue_cursor);
      window.Push(completion);
    }
    last_completion = std::max(last_completion, completion);
    issue_cursor += config.compute_ns_per_access;
  }

  EngineResult result;
  result.elapsed_ns = last_completion;
  result.requests = count;
  return result;
}

// Replays a materialized trace through the controllers.
EngineResult RunClosedLoop(std::span<const MemRequest> requests,
                           std::span<MemoryController* const> controllers,
                           const EngineConfig& config);

}  // namespace siloz

#endif  // SILOZ_SRC_MEMCTL_ENGINE_H_
