// Sharded closed-loop engine: per-channel command queues served in parallel.
//
// The serial engine (engine.h) couples every channel through one MLP window:
// request i+1 cannot issue until the globally-oldest in-flight request
// retires, wherever it lives. Real controllers are not built that way —
// each channel owns an independent command queue, and cores sustain their
// MLP against the channel actually servicing the miss. The sharded engine
// models that decomposition (ROADMAP item 4, DESIGN.md §13): the request
// stream is partitioned by (socket, channel block) into per-shard batches of
// pre-decoded commands, every shard runs its own closed loop against a
// shard-private MemoryController, and the per-shard results are merged in a
// fixed shard order.
//
// One level below the channel (DESIGN.md §15), each shard optionally splits
// into per-bank-group command queues (bank_groups_per_queue >= 1): every
// block of bank groups owns its own CompletionWindow, so a request stalls
// only behind its own queue's oldest in-flight miss while the shard's issue
// cursor keeps the command stream in order. This models the bank-level
// parallelism real controller front-ends schedule around, instead of
// serializing every bank of the shard through one window.
//
// Determinism contract (DESIGN.md §8/§13): the shard decomposition is a
// property of the *model configuration* (channels_per_shard), never of the
// worker count. Shards share no mutable state while serving, and the merge —
// stats absorption, elapsed fold, telemetry — walks shards in ascending
// shard index on the coordinating thread. Results are therefore bit-identical
// for every `threads` value, including 1.
//
// Relation to the serial engine: per-bank command subsequences are identical
// under partition, so row hits/misses, ACT/PRE censuses, and read/write
// counts match the serial engine exactly (the differential harness in
// tests/sharded_differential_test.cc pins this). Completion *times* differ
// by design — per-channel queues against a global window — which is why both
// engines stay in-tree: serial is the reference semantics, sharded the
// scalable one.
#ifndef SILOZ_SRC_MEMCTL_SHARDED_ENGINE_H_
#define SILOZ_SRC_MEMCTL_SHARDED_ENGINE_H_

#include <algorithm>
#include <cstdint>
#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "src/base/check.h"
#include "src/base/fault_injector.h"
#include "src/base/result.h"
#include "src/memctl/engine.h"

namespace siloz {

struct ShardedEngineConfig {
  // Per-shard closed-loop parameters: each shard (channel command queue)
  // sustains its own MLP window and compute gap.
  EngineConfig engine;
  // Channels folded into one shard (clamped to [1, channels_per_socket]).
  // Part of the model configuration: results depend on this knob.
  uint32_t channels_per_shard = 1;
  // Sub-channel decomposition of each shard into per-bank-group command
  // queues (DESIGN.md §15). 0 = legacy: one CompletionWindow for the whole
  // shard, every bank serialized through it. N >= 1 = each block of N bank
  // groups (kBanksPerGroup banks apiece) owns an independent queue with its
  // own completion window; the queues share the shard's issue cursor, so
  // bank-level parallelism is exploited instead of bottlenecked on the
  // globally-oldest in-flight request. Part of the model configuration:
  // completion times depend on this knob — the per-bank command
  // subsequences, and hence every invariant census, do not.
  uint32_t bank_groups_per_queue = 0;
  // Workers for the shard serve loop (ThreadPool semantics; 1 = inline).
  // NOT part of the model: results are bit-identical for every value.
  uint32_t threads = 1;
};

// Fixed decomposition of the platform's channels into shards, enumerated
// socket-major then channel-block — the canonical merge order.
class ShardPlan {
 public:
  ShardPlan(const DramGeometry& geometry, uint32_t sockets, uint32_t channels_per_shard)
      : channels_per_socket_(geometry.channels_per_socket),
        channels_per_shard_(
            std::clamp(channels_per_shard, 1u, geometry.channels_per_socket)),
        blocks_per_socket_((geometry.channels_per_socket + channels_per_shard_ - 1) /
                           channels_per_shard_),
        sockets_(sockets),
        block_of_channel_(channels_per_socket_) {
    // ShardOf runs once per command on the sharded hot paths; a prebuilt
    // channel->block table beats the integer divide it replaces.
    for (uint32_t channel = 0; channel < channels_per_socket_; ++channel) {
      block_of_channel_[channel] = channel / channels_per_shard_;
    }
  }

  uint32_t shard_count() const { return sockets_ * blocks_per_socket_; }
  uint32_t blocks_per_socket() const { return blocks_per_socket_; }
  uint32_t channels_per_shard() const { return channels_per_shard_; }

  uint32_t ShardOf(uint32_t socket, uint32_t channel) const {
    return socket * blocks_per_socket_ + block_of_channel_[channel];
  }
  uint32_t SocketOf(uint32_t shard) const { return shard / blocks_per_socket_; }
  uint32_t FirstChannelOf(uint32_t shard) const {
    return (shard % blocks_per_socket_) * channels_per_shard_;
  }
  uint32_t ChannelsOf(uint32_t shard) const {
    return std::min(channels_per_shard_, channels_per_socket_ - FirstChannelOf(shard));
  }

 private:
  uint32_t channels_per_socket_;
  uint32_t channels_per_shard_;
  uint32_t blocks_per_socket_;
  uint32_t sockets_;
  std::vector<uint32_t> block_of_channel_;  // channel -> block (shard within socket)
};

// Bank-group command queues one shard of `channels` channels decomposes
// into: ceil(banks / (kBanksPerGroup * bank_groups_per_queue)), or 1 when
// bank_groups_per_queue is 0 (legacy single-window shard). Shared by the
// ShardServer construction, the merge telemetry, and the tests that pin the
// regrouping algebra.
inline uint32_t ShardQueueCount(const DramGeometry& geometry, uint32_t channels,
                                uint32_t bank_groups_per_queue) {
  if (bank_groups_per_queue == 0) {
    return 1;
  }
  const uint32_t banks = channels * geometry.banks_per_channel();
  const uint32_t banks_per_queue = kBanksPerGroup * bank_groups_per_queue;
  return (banks + banks_per_queue - 1) / banks_per_queue;
}

// Per-shard slice of a run, reported in shard-plan order.
struct ShardTelemetry {
  uint32_t socket = 0;
  uint32_t first_channel = 0;
  uint32_t channels = 0;
  uint32_t queues = 1;  // bank-group command queues (ShardQueueCount)
  uint64_t requests = 0;
  double elapsed_ns = 0.0;
};

struct ShardedEngineResult {
  // Folded in ascending shard order: elapsed is the max over shards (shards
  // run concurrently in simulated time), requests the sum.
  double elapsed_ns = 0.0;
  uint64_t requests = 0;
  std::vector<ShardTelemetry> shards;

  double bandwidth_gib_per_s(double bytes_per_request = 64.0) const {
    if (elapsed_ns <= 0.0) {
      return 0.0;
    }
    return static_cast<double>(requests) * bytes_per_request / elapsed_ns *
           (1e9 / (1024.0 * 1024.0 * 1024.0));
  }
};

// One shard's closed loop as an incremental consumer: the serial engine's
// window discipline (CompletionWindow, see engine.h) against a shard-private
// controller, fed one pre-decoded command at a time in shard-stream order.
// Both sharded serve paths — batched (RunOnBatches) and fused streaming
// (RunShardedFused) — reduce each shard to exactly this sequence of
// operations, so the two are bit-identical by construction.
//
// With bank_groups_per_queue >= 1 the shard splits into per-bank-group
// command queues (BankGroupQueue = one CompletionWindow per block of
// kBanksPerGroup * bank_groups_per_queue banks): each command stalls only on
// the oldest in-flight request of *its own* queue, while the shard-wide
// issue cursor keeps issues in stream order across queues. The queue routing
// is a pure function of the command's bank index — SocketBankIndex is
// channel-major, so a shard's banks form one contiguous index range and the
// route is a single LUT read off a shard-local base. ServeDecoded is still
// called once per command in the identical stream order, so every invariant
// census (hits/misses, ACT/PRE, reads/writes) matches the single-window
// shard and the serial engine exactly; only completion *times* change.
class ShardServer {
 public:
  // Legacy shape: one completion window for the whole shard.
  ShardServer(MemoryController& controller, const EngineConfig& config)
      : controller_(&controller), config_(config), window_(config.max_outstanding) {}

  // Sub-channel shape: the shard covers `channels` channels starting at
  // `first_channel`; its banks split into ShardQueueCount() bank-group
  // queues. bank_groups_per_queue == 0 — or a grouping coarse enough that
  // the whole shard is one queue — degrades to the legacy shape, keeping
  // the single-window Feed path free of the queue indirection (the inline
  // window, not a one-element vector, is what the fused serve loop's
  // per-command cost budget is built on).
  ShardServer(MemoryController& controller, const EngineConfig& config,
              uint32_t bank_groups_per_queue, uint32_t first_channel, uint32_t channels)
      : controller_(&controller), config_(config), window_(config.max_outstanding) {
    if (bank_groups_per_queue == 0) {
      return;
    }
    const DramGeometry& geometry = controller.geometry();
    const uint32_t queues = ShardQueueCount(geometry, channels, bank_groups_per_queue);
    if (queues <= 1) {
      return;
    }
    const uint32_t banks_per_channel = geometry.banks_per_channel();
    bank_base_ = first_channel * banks_per_channel;
    const uint32_t banks = channels * banks_per_channel;
    const uint32_t banks_per_queue = kBanksPerGroup * bank_groups_per_queue;
    queue_windows_.reserve(queues);
    for (uint32_t queue = 0; queue < queues; ++queue) {
      queue_windows_.emplace_back(config.max_outstanding);
    }
    queue_of_bank_.resize(banks);
    for (uint32_t bank = 0; bank < banks; ++bank) {
      queue_of_bank_[bank] = static_cast<uint16_t>(bank / banks_per_queue);
    }
    // Raw bases for the per-command route: Feed runs once per request, and
    // re-deriving data pointers through the vector headers each time costs
    // measurable ns/op on the fused loop.
    queue_base_ = queue_windows_.data();
    route_base_ = queue_of_bank_.data();
    multi_queue_ = true;
  }

  // Forced inline: Feed is the per-command body of the fused streaming loop
  // (once per request on the Fig 4 grid), and left to its own devices the
  // linker folds the out-of-line copy with unrelated identical code, hiding
  // a call per command inside the hot loop.
  [[gnu::always_inline]] inline void Feed(const DecodedCmd& cmd) {
    // Same CompletionWindow arithmetic as RunClosedLoopOver (engine.h): both
    // track only the minimum of the same multiset, so results match bit for
    // bit. The only sub-channel twist is *which* window the command queues
    // behind.
    engine_internal::CompletionWindow& window =
        multi_queue_
            ? queue_base_[route_base_[static_cast<uint32_t>(cmd.bank_index) - bank_base_]]
            : window_;
    double completion;
    if (window.full()) {
      const size_t slot = window.MinSlot();
      issue_cursor_ = std::max(issue_cursor_, window.ValueAt(slot));
      completion = controller_->ServeDecoded(cmd, issue_cursor_);
      window.Replace(slot, completion);
    } else {
      completion = controller_->ServeDecoded(cmd, issue_cursor_);
      window.Push(completion);
    }
    last_completion_ = std::max(last_completion_, completion);
    issue_cursor_ += config_.compute_ns_per_access;
    ++requests_;
  }

  EngineResult result() const {
    EngineResult r;
    r.elapsed_ns = last_completion_;
    r.requests = requests_;
    return r;
  }

  uint32_t queue_count() const {
    return multi_queue_ ? static_cast<uint32_t>(queue_windows_.size()) : 1u;
  }

 private:
  MemoryController* controller_;
  EngineConfig config_;
  // In-flight completion times for the single-queue shapes (legacy, and any
  // grouping coarse enough to cover the shard): an inline member, so the
  // dominant Feed path pays no vector indirection.
  engine_internal::CompletionWindow window_;
  // Multi-queue shape only: one window per bank-group queue.
  std::vector<engine_internal::CompletionWindow> queue_windows_;
  // Shard-local bank index -> queue. Populated only when multi_queue_.
  std::vector<uint16_t> queue_of_bank_;
  // Cached .data() of the two vectors above (stable: both are sized once in
  // the constructor and never resized).
  engine_internal::CompletionWindow* queue_base_ = nullptr;
  const uint16_t* route_base_ = nullptr;
  uint32_t bank_base_ = 0;  // first bank of the shard (SocketBankIndex space)
  bool multi_queue_ = false;
  double issue_cursor_ = 0.0;
  double last_completion_ = 0.0;
  uint64_t requests_ = 0;
};

// Shard-partitioned decode of one request stream, staged as a structure of
// arrays: every shard's commands live in ONE flat shard-major allocation
// instead of a vector-of-vectors, so the partition pass never reallocates
// geometrically and the serve loop walks each shard's span contiguously.
// Two producers:
//  - BuildFromTrace: two passes over a materialized trace — a routing pass
//    (shard id per request + per-shard counts), a prefix sum, then one
//    decode pass that scatters each command straight into its final slot
//    with the (shared) geometry hoisted out of the per-request path. This
//    amortizes the platform-decoder arithmetic across the whole batch.
//  - Stage + Seal: stream-order staging for pull-based producers; Seal runs
//    the same counting scatter over the staged arrays.
// Either way the per-shard subsequences are in stream order, identical to
// what the old per-shard push_back partition produced.
class DecodeBatch {
 public:
  explicit DecodeBatch(uint32_t shard_count) : offsets_(shard_count + 1, 0) {}

  void BuildFromTrace(const ShardPlan& plan, std::span<const MemRequest> requests,
                      std::span<MemoryController* const> controllers);

  void Reserve(uint64_t count) {
    staged_.reserve(count);
    staged_shard_.reserve(count);
  }
  void Stage(uint32_t shard, const DecodedCmd& cmd) {
    staged_shard_.push_back(static_cast<uint16_t>(shard));
    staged_.push_back(cmd);
  }
  void Seal();

  uint32_t shard_count() const { return static_cast<uint32_t>(offsets_.size()) - 1; }
  uint64_t size() const { return cmds_.size(); }
  std::span<const DecodedCmd> Shard(uint32_t shard) const {
    return {cmds_.data() + offsets_[shard], offsets_[shard + 1] - offsets_[shard]};
  }

 private:
  std::vector<DecodedCmd> cmds_;    // shard-major after BuildFromTrace/Seal
  std::vector<uint32_t> offsets_;   // shard -> [start, end) into cmds_
  std::vector<DecodedCmd> staged_;  // stream order, until Seal()
  std::vector<uint16_t> staged_shard_;
};

namespace sharded_internal {

// Serves the pre-partitioned batch: one shard-private controller + closed
// loop per shard span on a pool of config.threads workers, then the
// fixed-order merge (AbsorbShard into controllers[socket], elapsed/requests
// fold, telemetry). Fails without touching `controllers` if the dispatch
// fault point fires; fails after a full merge if the conservation check —
// sum of per-shard requests == `expected_requests` — does not hold.
Result<ShardedEngineResult> RunOnBatches(const ShardPlan& plan, const DecodeBatch& batch,
                                         uint64_t expected_requests,
                                         std::span<MemoryController* const> controllers,
                                         const ShardedEngineConfig& config);

// The fixed-order merge shared by every sharded serve path: walks shards in
// ascending index (socket-major, then channel block) on the calling thread,
// absorbing each shard controller into controllers[socket], folding elapsed
// (max) and requests (sum), recording telemetry, and staging + folding the
// per-shard model-domain census into the global metrics registry. Ends with
// the conservation check (sum of per-shard requests == expected_requests);
// a violation is an integrity error, not a CHECK — the fault-injection
// battery drives that path deliberately.
Result<ShardedEngineResult> MergeShards(const ShardPlan& plan,
                                        std::span<std::optional<MemoryController>> shard_controllers,
                                        std::span<const EngineResult> shard_results,
                                        std::span<MemoryController* const> controllers,
                                        uint64_t expected_requests,
                                        uint32_t bank_groups_per_queue);

}  // namespace sharded_internal

// Forward declaration: RunShardedClosedLoopOver delegates its single-worker
// case to the fused path (defined below).
template <typename ForEachCmd>
Result<ShardedEngineResult> RunShardedFused(uint64_t expected_requests, ForEachCmd&& for_each,
                                            std::span<MemoryController* const> controllers,
                                            const ShardedEngineConfig& config);

// Serves `count` requests pulled one at a time from `next` (semantics as in
// RunClosedLoopOver). With one worker (config.threads <= 1) the batch
// materialization buys nothing — each request decodes and feeds its shard's
// closed loop directly via the fused path, which is bit-identical by
// construction. With more workers a serial DecodeBatch partition pass stages
// the stream, then the shards are served in parallel and merged in fixed
// order. Controllers are indexed by socket and receive the shards'
// statistics in shard order.
template <typename NextRequest>
Result<ShardedEngineResult> RunShardedClosedLoopOver(
    uint64_t count, NextRequest&& next, std::span<MemoryController* const> controllers,
    const ShardedEngineConfig& config) {
  SILOZ_CHECK(!controllers.empty());
  if (config.threads <= 1) {
    return RunShardedFused(
        count,
        [&](auto&& emit) {
          for (uint64_t i = 0; i < count; ++i) {
            const MemRequest& request = next();
            SILOZ_DCHECK(request.address.socket < controllers.size());
            emit(controllers[request.address.socket]->DecodeCmd(request),
                 request.address.socket);
          }
        },
        controllers, config);
  }
  const ShardPlan plan(controllers[0]->geometry(), static_cast<uint32_t>(controllers.size()),
                       config.channels_per_shard);
  SILOZ_FAULT_POINT("alloc.shard.partition");
  DecodeBatch batch(plan.shard_count());
  batch.Reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    const MemRequest& request = next();
    SILOZ_DCHECK(request.address.socket < controllers.size());
    batch.Stage(plan.ShardOf(request.address.socket, request.address.channel),
                controllers[request.address.socket]->DecodeCmd(request));
  }
  batch.Seal();
  return sharded_internal::RunOnBatches(plan, batch, count, controllers, config);
}

// Serves a materialized trace. One worker: fused decode-and-serve, no batch
// materialization. More: DecodeBatch counting partition + parallel serve +
// ordered merge. Bit-identical either way.
Result<ShardedEngineResult> RunShardedClosedLoop(std::span<const MemRequest> requests,
                                                 std::span<MemoryController* const> controllers,
                                                 const ShardedEngineConfig& config);

// Fused decode-and-serve: `for_each` is invoked once with an emit callback
// `(const DecodedCmd&, uint32_t socket)` and must produce the stream's
// commands in trace order (TraceStreamer::ForEachDecoded is the canonical
// producer); each command feeds its shard's closed loop the moment it is
// produced, with no per-shard batch materialization in between. Inherently
// single-threaded — the producer is serial — so it is the fast path when
// the caller parallelizes at a coarser level (e.g. the experiment runner's
// trial loop) and config.threads is 1. Bit-identical to the batched paths:
// each shard sees the same per-shard subsequence through the same
// ShardServer arithmetic, and the merge is the same fixed-order fold.
// `expected_requests` must equal the number of commands emitted (the
// conservation check fails the run otherwise).
template <typename ForEachCmd>
Result<ShardedEngineResult> RunShardedFused(uint64_t expected_requests, ForEachCmd&& for_each,
                                            std::span<MemoryController* const> controllers,
                                            const ShardedEngineConfig& config) {
  SILOZ_CHECK(!controllers.empty());
  const ShardPlan plan(controllers[0]->geometry(), static_cast<uint32_t>(controllers.size()),
                       config.channels_per_shard);
  // Both fault points of the batched pipeline fire up front: an injected
  // failure must leave the absorb-target controllers untouched here too.
  SILOZ_FAULT_POINT("alloc.shard.partition");
  SILOZ_FAULT_POINT("alloc.shard.dispatch");
  std::vector<std::optional<MemoryController>> shard_controllers(plan.shard_count());
  std::vector<ShardServer> servers;
  servers.reserve(plan.shard_count());
  for (uint32_t shard = 0; shard < plan.shard_count(); ++shard) {
    const uint32_t socket = plan.SocketOf(shard);
    shard_controllers[shard].emplace(controllers[socket]->geometry(), socket,
                                     controllers[socket]->timings());
    servers.emplace_back(*shard_controllers[shard], config.engine, config.bank_groups_per_queue,
                         plan.FirstChannelOf(shard), plan.ChannelsOf(shard));
  }
  for_each([&](const DecodedCmd& cmd, uint32_t socket) {
    SILOZ_DCHECK(socket < controllers.size());
    servers[plan.ShardOf(socket, cmd.channel)].Feed(cmd);
  });
  std::vector<EngineResult> shard_results(plan.shard_count());
  for (uint32_t shard = 0; shard < plan.shard_count(); ++shard) {
    shard_results[shard] = servers[shard].result();
  }
  return sharded_internal::MergeShards(plan, shard_controllers, shard_results, controllers,
                                       expected_requests, config.bank_groups_per_queue);
}

}  // namespace siloz

#endif  // SILOZ_SRC_MEMCTL_SHARDED_ENGINE_H_
