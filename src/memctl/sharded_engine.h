// Sharded closed-loop engine: per-channel command queues served in parallel.
//
// The serial engine (engine.h) couples every channel through one MLP window:
// request i+1 cannot issue until the globally-oldest in-flight request
// retires, wherever it lives. Real controllers are not built that way —
// each channel owns an independent command queue, and cores sustain their
// MLP against the channel actually servicing the miss. The sharded engine
// models that decomposition (ROADMAP item 4, DESIGN.md §13): the request
// stream is partitioned by (socket, channel block) into per-shard batches of
// pre-decoded commands, every shard runs its own closed loop against a
// shard-private MemoryController, and the per-shard results are merged in a
// fixed shard order.
//
// Determinism contract (DESIGN.md §8/§13): the shard decomposition is a
// property of the *model configuration* (channels_per_shard), never of the
// worker count. Shards share no mutable state while serving, and the merge —
// stats absorption, elapsed fold, telemetry — walks shards in ascending
// shard index on the coordinating thread. Results are therefore bit-identical
// for every `threads` value, including 1.
//
// Relation to the serial engine: per-bank command subsequences are identical
// under partition, so row hits/misses, ACT/PRE censuses, and read/write
// counts match the serial engine exactly (the differential harness in
// tests/sharded_differential_test.cc pins this). Completion *times* differ
// by design — per-channel queues against a global window — which is why both
// engines stay in-tree: serial is the reference semantics, sharded the
// scalable one.
#ifndef SILOZ_SRC_MEMCTL_SHARDED_ENGINE_H_
#define SILOZ_SRC_MEMCTL_SHARDED_ENGINE_H_

#include <algorithm>
#include <cstdint>
#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "src/base/check.h"
#include "src/base/fault_injector.h"
#include "src/base/result.h"
#include "src/memctl/engine.h"

namespace siloz {

struct ShardedEngineConfig {
  // Per-shard closed-loop parameters: each shard (channel command queue)
  // sustains its own MLP window and compute gap.
  EngineConfig engine;
  // Channels folded into one shard (clamped to [1, channels_per_socket]).
  // Part of the model configuration: results depend on this knob.
  uint32_t channels_per_shard = 1;
  // Workers for the shard serve loop (ThreadPool semantics; 1 = inline).
  // NOT part of the model: results are bit-identical for every value.
  uint32_t threads = 1;
};

// Fixed decomposition of the platform's channels into shards, enumerated
// socket-major then channel-block — the canonical merge order.
class ShardPlan {
 public:
  ShardPlan(const DramGeometry& geometry, uint32_t sockets, uint32_t channels_per_shard)
      : channels_per_socket_(geometry.channels_per_socket),
        channels_per_shard_(
            std::clamp(channels_per_shard, 1u, geometry.channels_per_socket)),
        blocks_per_socket_((geometry.channels_per_socket + channels_per_shard_ - 1) /
                           channels_per_shard_),
        sockets_(sockets),
        block_of_channel_(channels_per_socket_) {
    // ShardOf runs once per command on the sharded hot paths; a prebuilt
    // channel->block table beats the integer divide it replaces.
    for (uint32_t channel = 0; channel < channels_per_socket_; ++channel) {
      block_of_channel_[channel] = channel / channels_per_shard_;
    }
  }

  uint32_t shard_count() const { return sockets_ * blocks_per_socket_; }
  uint32_t blocks_per_socket() const { return blocks_per_socket_; }
  uint32_t channels_per_shard() const { return channels_per_shard_; }

  uint32_t ShardOf(uint32_t socket, uint32_t channel) const {
    return socket * blocks_per_socket_ + block_of_channel_[channel];
  }
  uint32_t SocketOf(uint32_t shard) const { return shard / blocks_per_socket_; }
  uint32_t FirstChannelOf(uint32_t shard) const {
    return (shard % blocks_per_socket_) * channels_per_shard_;
  }
  uint32_t ChannelsOf(uint32_t shard) const {
    return std::min(channels_per_shard_, channels_per_socket_ - FirstChannelOf(shard));
  }

 private:
  uint32_t channels_per_socket_;
  uint32_t channels_per_shard_;
  uint32_t blocks_per_socket_;
  uint32_t sockets_;
  std::vector<uint32_t> block_of_channel_;  // channel -> block (shard within socket)
};

// Per-shard slice of a run, reported in shard-plan order.
struct ShardTelemetry {
  uint32_t socket = 0;
  uint32_t first_channel = 0;
  uint32_t channels = 0;
  uint64_t requests = 0;
  double elapsed_ns = 0.0;
};

struct ShardedEngineResult {
  // Folded in ascending shard order: elapsed is the max over shards (shards
  // run concurrently in simulated time), requests the sum.
  double elapsed_ns = 0.0;
  uint64_t requests = 0;
  std::vector<ShardTelemetry> shards;

  double bandwidth_gib_per_s(double bytes_per_request = 64.0) const {
    if (elapsed_ns <= 0.0) {
      return 0.0;
    }
    return static_cast<double>(requests) * bytes_per_request / elapsed_ns *
           (1e9 / (1024.0 * 1024.0 * 1024.0));
  }
};

// One shard's closed loop as an incremental consumer: the serial engine's
// window discipline (CompletionWindow, see engine.h) against a shard-private
// controller, fed one pre-decoded command at a time in shard-stream order.
// Both sharded serve paths — batched (RunOnBatches) and fused streaming
// (RunShardedFused) — reduce each shard to exactly this sequence of
// operations, so the two are bit-identical by construction.
class ShardServer {
 public:
  ShardServer(MemoryController& controller, const EngineConfig& config)
      : controller_(&controller), config_(config), window_(config.max_outstanding) {}

  // Forced inline: Feed is the per-command body of the fused streaming loop
  // (once per request on the Fig 4 grid), and left to its own devices the
  // linker folds the out-of-line copy with unrelated identical code, hiding
  // a call per command inside the hot loop.
  [[gnu::always_inline]] inline void Feed(const DecodedCmd& cmd) {
    // Same CompletionWindow arithmetic as RunClosedLoopOver (engine.h): both
    // track only the minimum of the same multiset, so results match bit for
    // bit.
    double completion;
    if (window_.full()) {
      const size_t slot = window_.MinSlot();
      issue_cursor_ = std::max(issue_cursor_, window_.ValueAt(slot));
      completion = controller_->ServeDecoded(cmd, issue_cursor_);
      window_.Replace(slot, completion);
    } else {
      completion = controller_->ServeDecoded(cmd, issue_cursor_);
      window_.Push(completion);
    }
    last_completion_ = std::max(last_completion_, completion);
    issue_cursor_ += config_.compute_ns_per_access;
    ++requests_;
  }

  EngineResult result() const {
    EngineResult r;
    r.elapsed_ns = last_completion_;
    r.requests = requests_;
    return r;
  }

 private:
  MemoryController* controller_;
  EngineConfig config_;
  engine_internal::CompletionWindow window_;  // in-flight completion times
  double issue_cursor_ = 0.0;
  double last_completion_ = 0.0;
  uint64_t requests_ = 0;
};

namespace sharded_internal {

// Serves the pre-partitioned batches: one shard-private controller + closed
// loop per batch on a pool of config.threads workers, then the fixed-order
// merge (AbsorbShard into controllers[socket], elapsed/requests fold,
// telemetry). Fails without touching `controllers` if the dispatch fault
// point fires; fails after a full merge if the conservation check —
// sum of per-shard requests == `expected_requests` — does not hold.
Result<ShardedEngineResult> RunOnBatches(const ShardPlan& plan,
                                         std::vector<std::vector<DecodedCmd>>&& batches,
                                         uint64_t expected_requests,
                                         std::span<MemoryController* const> controllers,
                                         const ShardedEngineConfig& config);

// The fixed-order merge shared by every sharded serve path: walks shards in
// ascending index (socket-major, then channel block) on the calling thread,
// absorbing each shard controller into controllers[socket], folding elapsed
// (max) and requests (sum), recording telemetry, and staging + folding the
// per-shard model-domain census into the global metrics registry. Ends with
// the conservation check (sum of per-shard requests == expected_requests);
// a violation is an integrity error, not a CHECK — the fault-injection
// battery drives that path deliberately.
Result<ShardedEngineResult> MergeShards(const ShardPlan& plan,
                                        std::span<std::optional<MemoryController>> shard_controllers,
                                        std::span<const EngineResult> shard_results,
                                        std::span<MemoryController* const> controllers,
                                        uint64_t expected_requests);

}  // namespace sharded_internal

// Serves `count` requests pulled one at a time from `next` (semantics as in
// RunClosedLoopOver): a serial partition pass decodes each request into its
// shard's batch, then the shards are served and merged. Controllers are
// indexed by socket and receive the shards' statistics in shard order.
template <typename NextRequest>
Result<ShardedEngineResult> RunShardedClosedLoopOver(
    uint64_t count, NextRequest&& next, std::span<MemoryController* const> controllers,
    const ShardedEngineConfig& config) {
  SILOZ_CHECK(!controllers.empty());
  const ShardPlan plan(controllers[0]->geometry(), static_cast<uint32_t>(controllers.size()),
                       config.channels_per_shard);
  SILOZ_FAULT_POINT("alloc.shard.partition");
  std::vector<std::vector<DecodedCmd>> batches(plan.shard_count());
  for (auto& batch : batches) {
    // Even split plus slack; skewed streams grow geometrically from here.
    batch.reserve(count / plan.shard_count() + 16);
  }
  for (uint64_t i = 0; i < count; ++i) {
    const MemRequest& request = next();
    SILOZ_DCHECK(request.address.socket < controllers.size());
    const uint32_t shard = plan.ShardOf(request.address.socket, request.address.channel);
    batches[shard].push_back(controllers[request.address.socket]->DecodeCmd(request));
  }
  return sharded_internal::RunOnBatches(plan, std::move(batches), count, controllers, config);
}

// Serves a materialized trace (partition + parallel serve + ordered merge).
Result<ShardedEngineResult> RunShardedClosedLoop(std::span<const MemRequest> requests,
                                                 std::span<MemoryController* const> controllers,
                                                 const ShardedEngineConfig& config);

// Fused decode-and-serve: `for_each` is invoked once with an emit callback
// `(const DecodedCmd&, uint32_t socket)` and must produce the stream's
// commands in trace order (TraceStreamer::ForEachDecoded is the canonical
// producer); each command feeds its shard's closed loop the moment it is
// produced, with no per-shard batch materialization in between. Inherently
// single-threaded — the producer is serial — so it is the fast path when
// the caller parallelizes at a coarser level (e.g. the experiment runner's
// trial loop) and config.threads is 1. Bit-identical to the batched paths:
// each shard sees the same per-shard subsequence through the same
// ShardServer arithmetic, and the merge is the same fixed-order fold.
// `expected_requests` must equal the number of commands emitted (the
// conservation check fails the run otherwise).
template <typename ForEachCmd>
Result<ShardedEngineResult> RunShardedFused(uint64_t expected_requests, ForEachCmd&& for_each,
                                            std::span<MemoryController* const> controllers,
                                            const ShardedEngineConfig& config) {
  SILOZ_CHECK(!controllers.empty());
  const ShardPlan plan(controllers[0]->geometry(), static_cast<uint32_t>(controllers.size()),
                       config.channels_per_shard);
  // Both fault points of the batched pipeline fire up front: an injected
  // failure must leave the absorb-target controllers untouched here too.
  SILOZ_FAULT_POINT("alloc.shard.partition");
  SILOZ_FAULT_POINT("alloc.shard.dispatch");
  std::vector<std::optional<MemoryController>> shard_controllers(plan.shard_count());
  std::vector<ShardServer> servers;
  servers.reserve(plan.shard_count());
  for (uint32_t shard = 0; shard < plan.shard_count(); ++shard) {
    const uint32_t socket = plan.SocketOf(shard);
    shard_controllers[shard].emplace(controllers[socket]->geometry(), socket,
                                     controllers[socket]->timings());
    servers.emplace_back(*shard_controllers[shard], config.engine);
  }
  for_each([&](const DecodedCmd& cmd, uint32_t socket) {
    SILOZ_DCHECK(socket < controllers.size());
    servers[plan.ShardOf(socket, cmd.channel)].Feed(cmd);
  });
  std::vector<EngineResult> shard_results(plan.shard_count());
  for (uint32_t shard = 0; shard < plan.shard_count(); ++shard) {
    shard_results[shard] = servers[shard].result();
  }
  return sharded_internal::MergeShards(plan, shard_controllers, shard_results, controllers,
                                       expected_requests);
}

}  // namespace siloz

#endif  // SILOZ_SRC_MEMCTL_SHARDED_ENGINE_H_
