#include "src/memctl/act_profile.h"

#include <algorithm>

#include "src/base/check.h"

namespace siloz {

RowActivationProfiler::RowActivationProfiler(const DramGeometry& geometry, uint64_t threshold)
    : geometry_(geometry), threshold_(threshold) {
  profile_.threshold = threshold;
}

void RowActivationProfiler::RollWindow() {
  for (const auto& [key, count] : counts_) {
    profile_.max_row_acts_per_window = std::max(profile_.max_row_acts_per_window, count);
    profile_.rows_over_threshold += (count > threshold_);
  }
  counts_.clear();
  ++profile_.windows;
}

void RowActivationProfiler::Observe(const MemRequest& request, double time_ns) {
  const auto window = static_cast<uint64_t>(time_ns / static_cast<double>(kRefreshWindowNs));
  while (window_index_ < window) {
    RollWindow();
    ++window_index_;
  }
  const uint32_t bank = request.address.socket * geometry_.banks_per_socket() +
                        SocketBankIndex(geometry_, request.address);
  auto [it, first_touch] = open_row_.try_emplace(bank, -1);
  if (!first_touch && it->second == static_cast<int64_t>(request.address.row)) {
    return;  // row-buffer hit: no activation
  }
  it->second = request.address.row;
  ++profile_.total_activations;
  counts_[(static_cast<uint64_t>(bank) << 32) | request.address.row] += 1;
}

ActProfile RowActivationProfiler::Finish() {
  RollWindow();
  return profile_;
}

}  // namespace siloz
