// Memory controller timing model (§2.4).
//
// Serves a stream of 64-byte requests addressed by media address, modeling:
//  - per-bank row buffers with an open-page policy (hits cost tCAS; misses
//    cost tRP + tRCD + tCAS and are serialized by tRC per bank),
//  - bank-level parallelism: different banks proceed concurrently, which is
//    the property subarray groups preserve and single-subarray placement
//    destroys (§4.1),
//  - per-channel data bus occupancy (tBurst per 64 B),
//  - the tFAW four-activate window and tRRD per rank,
//  - a remote-NUMA latency adder for cross-socket requests.
//
// The model is transaction-level: each request's completion time is computed
// from resource-availability times, which is accurate enough to reproduce
// the paper's performance *shapes* (null result for Siloz placement; >18%
// loss without bank parallelism) without a cycle-accurate DRAM simulator.
#ifndef SILOZ_SRC_MEMCTL_CONTROLLER_H_
#define SILOZ_SRC_MEMCTL_CONTROLLER_H_

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdint>
#include <vector>

#include "src/base/check.h"
#include "src/dram/geometry.h"
#include "src/memctl/timing.h"

namespace siloz {

// One 64-byte memory transaction.
struct MemRequest {
  MediaAddress address;
  bool is_write = false;
  // Socket of the core issuing the request (for remote-NUMA latency).
  uint32_t source_socket = 0;
};

// A request pre-resolved to the controller's internal coordinates: the flat
// bank/rank indices Serve() would otherwise recompute per call, plus the two
// flags it reads. 12 bytes against MemRequest's 36 — the sharded engine
// partitions streams into per-shard batches of these so the serve loop runs
// multiply-free and the batch fits higher up the cache hierarchy.
struct DecodedCmd {
  uint32_t row = 0;
  uint16_t bank_index = 0;  // SocketBankIndex(geometry, address)
  uint16_t rank_index = 0;  // flat (channel, dimm, rank) within socket
  uint8_t channel = 0;      // within socket
  uint8_t flags = 0;        // kDecodedWrite | kDecodedRemote
};
static_assert(sizeof(DecodedCmd) == 12);

inline constexpr uint8_t kDecodedWrite = 0x1;   // request is a write
inline constexpr uint8_t kDecodedRemote = 0x2;  // issued from the other socket

// Resolves a media address to DecodedCmd coordinates. The single source of
// the index arithmetic: MemoryController::DecodeCmd and the workload
// streamer's fused decode pass (TraceStreamer::ForEachDecoded) both call
// this, so their commands are field-for-field identical by construction.
inline DecodedCmd DecodeMediaCmd(const DramGeometry& geometry, const MediaAddress& address,
                                 uint8_t flags) {
  const uint32_t bank_index = SocketBankIndex(geometry, address);
  const uint32_t rank_index =
      (address.channel * geometry.dimms_per_channel + address.dimm) * geometry.ranks_per_dimm +
      address.rank;
  SILOZ_DCHECK(bank_index <= UINT16_MAX);
  SILOZ_DCHECK(rank_index <= UINT16_MAX);
  SILOZ_DCHECK(address.channel <= UINT8_MAX);
  DecodedCmd cmd;
  cmd.row = address.row;
  cmd.bank_index = static_cast<uint16_t>(bank_index);
  cmd.rank_index = static_cast<uint16_t>(rank_index);
  cmd.channel = static_cast<uint8_t>(address.channel);
  cmd.flags = flags;
  return cmd;
}

struct ControllerStats {
  uint64_t requests = 0;
  uint64_t row_hits = 0;
  uint64_t row_misses = 0;
  uint64_t activates = 0;
  uint64_t precharges = 0;     // explicit PRE before an ACT to an open bank
  uint64_t reads = 0;
  uint64_t writes = 0;
  uint64_t ref_tail_hits = 0;  // requests charged a tRFC refresh latency tail
  double busy_ns = 0.0;       // completion time of the latest request
  double total_latency_ns = 0.0;

  double row_hit_rate() const {
    return requests == 0 ? 0.0 : static_cast<double>(row_hits) / static_cast<double>(requests);
  }
  double average_latency_ns() const {
    return requests == 0 ? 0.0 : total_latency_ns / static_cast<double>(requests);
  }
  // Bytes served per nanosecond, over the busy interval.
  double bandwidth_bytes_per_ns() const {
    return busy_ns == 0.0 ? 0.0 : static_cast<double>(requests) * 64.0 / busy_ns;
  }
};

// DDR4/DDR5 group banks in fours; the obs layer reports command counts at
// this granularity (ISSUE: per-bank-group ACT/PRE/RD/WR/REF).
inline constexpr uint32_t kBanksPerGroup = 4;

// Lifetime DRAM-command census of one bank group (socket-local index).
// Never cleared by ResetStats: flushed to the metrics registry when the
// controller dies, so totals accumulate across measurement windows.
struct BankGroupCounts {
  uint64_t act = 0;
  uint64_t pre = 0;
  uint64_t rd = 0;
  uint64_t wr = 0;
  uint64_t ref = 0;  // refresh latency tails observed by this group's requests
};

// Timing model for one socket's memory controller.
class MemoryController {
 public:
  MemoryController(const DramGeometry& geometry, uint32_t socket, DdrTimings timings = {});
  // Flushes the lifetime per-bank-group command counts into the global
  // metrics registry (model domain).
  ~MemoryController();

  // Serve one request that becomes issueable at `ready_ns`; returns its
  // completion time. Requests must be fed in non-decreasing ready order
  // (the workload engine guarantees this). Header-inline: the closed-loop
  // engine calls this once per replayed access.
  double Serve(const MemRequest& request, double ready_ns);

  // Pre-resolved form of Serve(): identical arithmetic over coordinates
  // decoded once by DecodeCmd(). Serve() is a thin wrapper, so the two paths
  // are bit-identical by construction.
  double ServeDecoded(const DecodedCmd& cmd, double ready_ns);

  // Resolves a request to this controller's internal coordinates (the
  // sharded engine's partition pass runs this once per request).
  DecodedCmd DecodeCmd(const MemRequest& request) const;

  // Folds a shard controller's statistics and lifetime command census into
  // this controller, then zeroes the shard's copies so its destructor
  // flushes nothing to the metrics registry (the absorb target owns the
  // export). Counter fields add; busy_ns takes the max (shards complete
  // concurrently in simulated time). Callers absorb shards in a fixed order
  // (DESIGN.md §13), which pins the one order-sensitive fold —
  // total_latency_ns double summation — to a deterministic sequence.
  void AbsorbShard(MemoryController& shard);

  const ControllerStats& stats() const { return stats_; }
  void ResetStats() { stats_ = ControllerStats{}; }
  // Lifetime command counts, indexed by socket-local bank group
  // (SocketBankIndex / kBanksPerGroup). Not affected by ResetStats.
  const std::vector<BankGroupCounts>& bank_group_counts() const { return bank_group_counts_; }
  // Return every bank/rank/bus to idle at time 0 and clear stats (fresh
  // measurement run).
  void ResetState();
  uint32_t socket() const { return socket_; }
  const DramGeometry& geometry() const { return geometry_; }
  const DdrTimings& timings() const { return timings_; }

 private:
  struct BankState {
    int64_t open_row = -1;
    double free_at_ns = 0.0;  // earliest next column command
    double act_allowed_ns = 0.0;
  };
  struct RankState {
    // Ring buffer of the last 4 ACT times for the tFAW window.
    std::array<double, 4> last_acts{};
    uint8_t next = 0;
    double rrd_ready_ns = 0.0;
    // REF epoch already charged with a latency tail (refresh model).
    double ref_epoch_charged = -1.0;
    // Shifted-completion value below which no new refresh tail can be
    // charged: the start of the next tREFI window after the last one
    // evaluated. Completions are per-rank monotone (each rank lives on one
    // channel, whose bus-free time only grows), so requests under this bound
    // can skip the fmod/floor phase math entirely — the slow path would
    // provably do nothing for them.
    double ref_check_from_ns = 0.0;
  };

  DramGeometry geometry_;
  uint32_t socket_;
  DdrTimings timings_;
  std::vector<BankState> banks_;       // per bank in socket
  std::vector<RankState> ranks_;       // per (channel, dimm, rank)
  std::vector<double> channel_bus_free_;  // per channel
  // Precomputed per-request invariants of the refresh model: the effective
  // burst time under the tREFI/(tREFI-tRFC) rate tax, and each rank's
  // staggered REF phase offset. Both are computed with exactly the
  // expressions the per-request code used, so results stay bit-identical.
  double burst_time_ = 0.0;
  std::vector<double> rank_ref_offset_;
  ControllerStats stats_;
  std::vector<BankGroupCounts> bank_group_counts_;  // lifetime, per bank group
};

inline DecodedCmd MemoryController::DecodeCmd(const MemRequest& request) const {
  SILOZ_DCHECK(request.address.socket == socket_);
  const auto flags = static_cast<uint8_t>((request.is_write ? kDecodedWrite : 0) |
                                          (request.source_socket != socket_ ? kDecodedRemote : 0));
  return DecodeMediaCmd(geometry_, request.address, flags);
}

inline double MemoryController::Serve(const MemRequest& request, double ready_ns) {
  return ServeDecoded(DecodeCmd(request), ready_ns);
}

inline double MemoryController::ServeDecoded(const DecodedCmd& cmd, double ready_ns) {
  ++stats_.requests;

  double t = ready_ns;
  if ((cmd.flags & kDecodedRemote) != 0) {
    t += timings_.t_remote_numa;  // interconnect hop before the controller
  }

  BankState& bank = banks_[cmd.bank_index];
  BankGroupCounts& group_counts = bank_group_counts_[cmd.bank_index / kBanksPerGroup];
  if ((cmd.flags & kDecodedWrite) != 0) {
    ++stats_.writes;
    ++group_counts.wr;
  } else {
    ++stats_.reads;
    ++group_counts.rd;
  }
  RankState& rank = ranks_[cmd.rank_index];

  // Wait for the bank's previous column command to clear.
  t = std::max(t, bank.free_at_ns);

  double data_ready;
  if (bank.open_row == static_cast<int64_t>(cmd.row)) {
    ++stats_.row_hits;
    data_ready = t + timings_.t_cas;
  } else {
    ++stats_.row_misses;
    ++stats_.activates;
    ++group_counts.act;
    if (bank.open_row >= 0) {
      ++stats_.precharges;
      ++group_counts.pre;
    }
    // Precharge the old row (if any), then activate, respecting the bank's
    // tRC spacing, the rank's tRRD, and the tFAW four-activate window.
    double act_time = t + (bank.open_row >= 0 ? timings_.t_rp : 0.0);
    act_time = std::max(act_time, bank.act_allowed_ns);
    act_time = std::max(act_time, rank.rrd_ready_ns);
    const double faw_oldest = rank.last_acts[rank.next];
    if (faw_oldest > 0.0) {
      act_time = std::max(act_time, faw_oldest + timings_.t_faw);
    }
    rank.last_acts[rank.next] = act_time;
    rank.next = static_cast<uint8_t>((rank.next + 1) % rank.last_acts.size());
    rank.rrd_ready_ns = act_time + timings_.t_rrd;
    bank.act_allowed_ns = act_time + timings_.t_rc();
    bank.open_row = cmd.row;
    data_ready = act_time + timings_.t_rcd + timings_.t_cas;
  }

  // The 64-byte burst occupies the channel's data bus. Refresh (§2.3)
  // steals tRFC out of every tREFI of DRAM time; real controllers hide it
  // by reordering around the refreshing rank (FR-FCFS), which an in-order
  // replay cannot express per-request. It is therefore modeled as (a) a
  // throughput tax inflating effective bus occupancy by tREFI/(tREFI-tRFC)
  // ~ 4.7%, plus (b) one full-tRFC latency tail per rank per REF epoch
  // (the request unlucky enough to arrive at the head of the blackout).
  double& bus_free = channel_bus_free_[cmd.channel];
  const double burst_start = std::max(data_ready, bus_free);
  const double completion = burst_start + burst_time_;
  bus_free = completion;
  // Next column command to this bank cannot start before the burst drains.
  bank.free_at_ns = completion;

  // The latency tail is charged only to the victim request's observed
  // completion: the aggregate bank/bus cost of refresh is already paid by
  // the rate tax, and holding the bank for the full tRFC here would cascade
  // one REF into a whole-channel stall that real reordering hides.
  double reported = completion;
  if (timings_.model_refresh) {
    const double shifted = completion + timings_.t_refi - rank_ref_offset_[cmd.rank_index];
    // Per-rank completions are monotone (one channel per rank), so once a
    // tREFI window has been evaluated, every later request landing in the
    // same window is guaranteed to change nothing: either its phase is past
    // the blackout, or the epoch was already charged. Skip the fmod/floor
    // for those (~99% of requests); when the slow path does run, it computes
    // exactly the expressions the unconditional version used.
    if (shifted >= rank.ref_check_from_ns) {
      const double phase = std::fmod(shifted, timings_.t_refi);
      const double epoch = std::floor(shifted / timings_.t_refi);
      if (phase < timings_.t_rfc && epoch != rank.ref_epoch_charged) {
        reported += timings_.t_rfc - phase;
        rank.ref_epoch_charged = epoch;
        ++stats_.ref_tail_hits;
        ++group_counts.ref;
      }
      rank.ref_check_from_ns = (epoch + 1.0) * timings_.t_refi;
    }
  }

  stats_.total_latency_ns += reported - ready_ns;
  stats_.busy_ns = std::max(stats_.busy_ns, reported);
  return reported;
}

}  // namespace siloz

#endif  // SILOZ_SRC_MEMCTL_CONTROLLER_H_
