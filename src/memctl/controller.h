// Memory controller timing model (§2.4).
//
// Serves a stream of 64-byte requests addressed by media address, modeling:
//  - per-bank row buffers with an open-page policy (hits cost tCAS; misses
//    cost tRP + tRCD + tCAS and are serialized by tRC per bank),
//  - bank-level parallelism: different banks proceed concurrently, which is
//    the property subarray groups preserve and single-subarray placement
//    destroys (§4.1),
//  - per-channel data bus occupancy (tBurst per 64 B),
//  - the tFAW four-activate window and tRRD per rank,
//  - a remote-NUMA latency adder for cross-socket requests.
//
// The model is transaction-level: each request's completion time is computed
// from resource-availability times, which is accurate enough to reproduce
// the paper's performance *shapes* (null result for Siloz placement; >18%
// loss without bank parallelism) without a cycle-accurate DRAM simulator.
#ifndef SILOZ_SRC_MEMCTL_CONTROLLER_H_
#define SILOZ_SRC_MEMCTL_CONTROLLER_H_

#include <array>
#include <cstdint>
#include <vector>

#include "src/dram/geometry.h"
#include "src/memctl/timing.h"

namespace siloz {

// One 64-byte memory transaction.
struct MemRequest {
  MediaAddress address;
  bool is_write = false;
  // Socket of the core issuing the request (for remote-NUMA latency).
  uint32_t source_socket = 0;
};

struct ControllerStats {
  uint64_t requests = 0;
  uint64_t row_hits = 0;
  uint64_t row_misses = 0;
  uint64_t activates = 0;
  uint64_t precharges = 0;     // explicit PRE before an ACT to an open bank
  uint64_t reads = 0;
  uint64_t writes = 0;
  uint64_t ref_tail_hits = 0;  // requests charged a tRFC refresh latency tail
  double busy_ns = 0.0;       // completion time of the latest request
  double total_latency_ns = 0.0;

  double row_hit_rate() const {
    return requests == 0 ? 0.0 : static_cast<double>(row_hits) / static_cast<double>(requests);
  }
  double average_latency_ns() const {
    return requests == 0 ? 0.0 : total_latency_ns / static_cast<double>(requests);
  }
  // Bytes served per nanosecond, over the busy interval.
  double bandwidth_bytes_per_ns() const {
    return busy_ns == 0.0 ? 0.0 : static_cast<double>(requests) * 64.0 / busy_ns;
  }
};

// DDR4/DDR5 group banks in fours; the obs layer reports command counts at
// this granularity (ISSUE: per-bank-group ACT/PRE/RD/WR/REF).
inline constexpr uint32_t kBanksPerGroup = 4;

// Lifetime DRAM-command census of one bank group (socket-local index).
// Never cleared by ResetStats: flushed to the metrics registry when the
// controller dies, so totals accumulate across measurement windows.
struct BankGroupCounts {
  uint64_t act = 0;
  uint64_t pre = 0;
  uint64_t rd = 0;
  uint64_t wr = 0;
  uint64_t ref = 0;  // refresh latency tails observed by this group's requests
};

// Timing model for one socket's memory controller.
class MemoryController {
 public:
  MemoryController(const DramGeometry& geometry, uint32_t socket, DdrTimings timings = {});
  // Flushes the lifetime per-bank-group command counts into the global
  // metrics registry (model domain).
  ~MemoryController();

  // Serve one request that becomes issueable at `ready_ns`; returns its
  // completion time. Requests must be fed in non-decreasing ready order
  // (the workload engine guarantees this).
  double Serve(const MemRequest& request, double ready_ns);

  const ControllerStats& stats() const { return stats_; }
  void ResetStats() { stats_ = ControllerStats{}; }
  // Lifetime command counts, indexed by socket-local bank group
  // (SocketBankIndex / kBanksPerGroup). Not affected by ResetStats.
  const std::vector<BankGroupCounts>& bank_group_counts() const { return bank_group_counts_; }
  // Return every bank/rank/bus to idle at time 0 and clear stats (fresh
  // measurement run).
  void ResetState();
  uint32_t socket() const { return socket_; }
  const DdrTimings& timings() const { return timings_; }

 private:
  struct BankState {
    int64_t open_row = -1;
    double free_at_ns = 0.0;  // earliest next column command
    double act_allowed_ns = 0.0;
  };
  struct RankState {
    // Ring buffer of the last 4 ACT times for the tFAW window.
    std::array<double, 4> last_acts{};
    uint8_t next = 0;
    double rrd_ready_ns = 0.0;
    // REF epoch already charged with a latency tail (refresh model).
    double ref_epoch_charged = -1.0;
  };

  DramGeometry geometry_;
  uint32_t socket_;
  DdrTimings timings_;
  std::vector<BankState> banks_;       // per bank in socket
  std::vector<RankState> ranks_;       // per (channel, dimm, rank)
  std::vector<double> channel_bus_free_;  // per channel
  ControllerStats stats_;
  std::vector<BankGroupCounts> bank_group_counts_;  // lifetime, per bank group
};

}  // namespace siloz

#endif  // SILOZ_SRC_MEMCTL_CONTROLLER_H_
