#include "src/memctl/sharded_engine.h"

#include <algorithm>
#include <limits>
#include <optional>
#include <string>
#include <utility>

#include "src/base/thread_pool.h"
#include "src/obs/metrics.h"

namespace siloz {
namespace {

// One shard's closed loop over a pre-partitioned batch. ShardServer holds
// the window discipline, so this is the same arithmetic the fused streaming
// path runs — a single-channel machine sharded 1-way reproduces the serial
// engine's timing bit-for-bit.
EngineResult ServeShard(std::span<const DecodedCmd> batch, MemoryController& controller,
                        const ShardPlan& plan, uint32_t shard,
                        const ShardedEngineConfig& config) {
  ShardServer server(controller, config.engine, config.bank_groups_per_queue,
                     plan.FirstChannelOf(shard), plan.ChannelsOf(shard));
  for (const DecodedCmd& cmd : batch) {
    server.Feed(cmd);
  }
  return server.result();
}

}  // namespace

void DecodeBatch::BuildFromTrace(const ShardPlan& plan, std::span<const MemRequest> requests,
                                 std::span<MemoryController* const> controllers) {
  SILOZ_CHECK(requests.size() <= std::numeric_limits<uint32_t>::max());
  const uint32_t count = static_cast<uint32_t>(requests.size());
  const uint32_t shards = shard_count();

  // Routing pass: shard id per request (kept for the scatter below) plus the
  // exact per-shard counts, so the flat batch is sized once with no slack.
  staged_shard_.resize(count);
  std::fill(offsets_.begin(), offsets_.end(), 0u);
  for (uint32_t i = 0; i < count; ++i) {
    const MediaAddress& address = requests[i].address;
    SILOZ_DCHECK(address.socket < controllers.size());
    const uint32_t shard = plan.ShardOf(address.socket, address.channel);
    staged_shard_[i] = static_cast<uint16_t>(shard);
    ++offsets_[shard + 1];
  }
  for (uint32_t shard = 0; shard < shards; ++shard) {
    offsets_[shard + 1] += offsets_[shard];
  }

  // Decode pass: every request scatters straight into its shard's final
  // slot. All controllers share one geometry, so the index arithmetic
  // (DecodeMediaCmd, the single source shared with MemoryController::
  // DecodeCmd) runs with the geometry hoisted out of the loop instead of
  // re-reached through a controller pointer per request.
  const DramGeometry& geometry = controllers[0]->geometry();
  cmds_.resize(count);
  std::vector<uint32_t> cursor(offsets_.begin(), offsets_.end() - 1);
  for (uint32_t i = 0; i < count; ++i) {
    const MemRequest& request = requests[i];
    const auto flags = static_cast<uint8_t>(
        (request.is_write ? kDecodedWrite : 0) |
        (request.source_socket != request.address.socket ? kDecodedRemote : 0));
    cmds_[cursor[staged_shard_[i]]++] = DecodeMediaCmd(geometry, request.address, flags);
  }
  staged_shard_.clear();
}

void DecodeBatch::Seal() {
  SILOZ_CHECK(staged_.size() <= std::numeric_limits<uint32_t>::max());
  const uint32_t count = static_cast<uint32_t>(staged_.size());
  const uint32_t shards = shard_count();

  std::fill(offsets_.begin(), offsets_.end(), 0u);
  for (uint32_t i = 0; i < count; ++i) {
    ++offsets_[staged_shard_[i] + 1];
  }
  for (uint32_t shard = 0; shard < shards; ++shard) {
    offsets_[shard + 1] += offsets_[shard];
  }
  cmds_.resize(count);
  std::vector<uint32_t> cursor(offsets_.begin(), offsets_.end() - 1);
  for (uint32_t i = 0; i < count; ++i) {
    cmds_[cursor[staged_shard_[i]]++] = staged_[i];
  }
  staged_.clear();
  staged_.shrink_to_fit();
  staged_shard_.clear();
  staged_shard_.shrink_to_fit();
}

namespace sharded_internal {

Result<ShardedEngineResult> MergeShards(const ShardPlan& plan,
                                        std::span<std::optional<MemoryController>> shard_controllers,
                                        std::span<const EngineResult> shard_results,
                                        std::span<MemoryController* const> controllers,
                                        uint64_t expected_requests,
                                        uint32_t bank_groups_per_queue) {
  SILOZ_CHECK(shard_controllers.size() == plan.shard_count());
  SILOZ_CHECK(shard_results.size() == plan.shard_count());

  // Fixed-order merge: ascending shard index (socket-major, then channel
  // block). AbsorbShard zeroes each shard controller, so their destructors
  // flush nothing — the absorb targets own the metrics export. The
  // model-domain per-shard census stages through ShardMetrics and folds in
  // the same shard order, keeping registry contents thread-count-invariant.
  ShardedEngineResult result;
  result.shards.reserve(plan.shard_count());
  obs::Registry& registry = obs::Registry::Global();
  obs::ShardMetrics staged;
  for (uint32_t shard = 0; shard < plan.shard_count(); ++shard) {
    const ControllerStats& stats = shard_controllers[shard]->stats();
    const std::string prefix = "engine.shard" + std::to_string(shard) + ".";
    staged.Add(prefix + "requests", stats.requests);
    staged.Add(prefix + "row_hits", stats.row_hits);
    staged.Add(prefix + "row_misses", stats.row_misses);
    controllers[plan.SocketOf(shard)]->AbsorbShard(*shard_controllers[shard]);
    const EngineResult& served = shard_results[shard];
    result.elapsed_ns = std::max(result.elapsed_ns, served.elapsed_ns);
    result.requests += served.requests;
    ShardTelemetry telemetry;
    telemetry.socket = plan.SocketOf(shard);
    telemetry.first_channel = plan.FirstChannelOf(shard);
    telemetry.channels = plan.ChannelsOf(shard);
    telemetry.queues = ShardQueueCount(controllers[0]->geometry(), telemetry.channels,
                                       bank_groups_per_queue);
    telemetry.requests = served.requests;
    telemetry.elapsed_ns = served.elapsed_ns;
    result.shards.push_back(telemetry);
  }
  staged.FoldInto(registry);

  // Conservation checker: partition + serve + merge must neither drop nor
  // duplicate a request. A violation here means a shard-dispatch bug, not a
  // model disagreement, so it is an integrity error rather than a CHECK —
  // the fault-injection battery drives this path deliberately.
  if (result.requests != expected_requests) {
    return MakeError(ErrorCode::kIntegrityViolation,
                     "shard conservation violated: served " +
                         std::to_string(result.requests) + " of " +
                         std::to_string(expected_requests) + " requests");
  }
  return result;
}

Result<ShardedEngineResult> RunOnBatches(const ShardPlan& plan, const DecodeBatch& batch,
                                         uint64_t expected_requests,
                                         std::span<MemoryController* const> controllers,
                                         const ShardedEngineConfig& config) {
  SILOZ_CHECK(batch.shard_count() == plan.shard_count());
  // Fires before any shard serves: an injected dispatch failure must leave
  // the absorb-target controllers untouched (tested by the sharded stress
  // battery's fault-injection leg).
  SILOZ_FAULT_POINT("alloc.shard.dispatch");

  // Worker tasks fill only their own slot; the barrier below makes the
  // coordinating thread's ordered merge race-free.
  std::vector<std::optional<MemoryController>> shard_controllers(plan.shard_count());
  std::vector<EngineResult> shard_results(plan.shard_count());
  {
    ThreadPool pool(config.threads);
    pool.ParallelFor(0, plan.shard_count(), [&](uint64_t shard) {
      const uint32_t socket = plan.SocketOf(static_cast<uint32_t>(shard));
      shard_controllers[shard].emplace(controllers[socket]->geometry(), socket,
                                       controllers[socket]->timings());
      shard_results[shard] =
          ServeShard(batch.Shard(static_cast<uint32_t>(shard)), *shard_controllers[shard],
                     plan, static_cast<uint32_t>(shard), config);
    });
  }

  return MergeShards(plan, shard_controllers, shard_results, controllers, expected_requests,
                     config.bank_groups_per_queue);
}

}  // namespace sharded_internal

Result<ShardedEngineResult> RunShardedClosedLoop(std::span<const MemRequest> requests,
                                                 std::span<MemoryController* const> controllers,
                                                 const ShardedEngineConfig& config) {
  SILOZ_CHECK(!controllers.empty());
  // One worker serves every shard inline, so staging per-shard batches first
  // would only round-trip the commands through memory: decode-and-feed fused
  // is the same per-shard command sequence with the copy skipped.
  if (config.threads <= 1) {
    return RunShardedFused(
        requests.size(),
        [&](auto&& emit) {
          for (const MemRequest& request : requests) {
            SILOZ_DCHECK(request.address.socket < controllers.size());
            emit(controllers[request.address.socket]->DecodeCmd(request),
                 request.address.socket);
          }
        },
        controllers, config);
  }
  const ShardPlan plan(controllers[0]->geometry(), static_cast<uint32_t>(controllers.size()),
                       config.channels_per_shard);
  SILOZ_FAULT_POINT("alloc.shard.partition");
  DecodeBatch batch(plan.shard_count());
  batch.BuildFromTrace(plan, requests, controllers);
  return sharded_internal::RunOnBatches(plan, batch, requests.size(), controllers, config);
}

}  // namespace siloz
