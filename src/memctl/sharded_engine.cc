#include "src/memctl/sharded_engine.h"

#include <optional>
#include <string>
#include <utility>

#include "src/base/thread_pool.h"
#include "src/obs/metrics.h"

namespace siloz {
namespace {

// One shard's closed loop over a pre-partitioned batch. ShardServer holds
// the heap discipline, so this is the same arithmetic the fused streaming
// path runs — a single-channel machine sharded 1-way reproduces the serial
// engine's timing bit-for-bit.
EngineResult ServeShard(std::span<const DecodedCmd> batch, MemoryController& controller,
                        const EngineConfig& config) {
  ShardServer server(controller, config);
  for (const DecodedCmd& cmd : batch) {
    server.Feed(cmd);
  }
  return server.result();
}

}  // namespace

namespace sharded_internal {

Result<ShardedEngineResult> MergeShards(const ShardPlan& plan,
                                        std::span<std::optional<MemoryController>> shard_controllers,
                                        std::span<const EngineResult> shard_results,
                                        std::span<MemoryController* const> controllers,
                                        uint64_t expected_requests) {
  SILOZ_CHECK(shard_controllers.size() == plan.shard_count());
  SILOZ_CHECK(shard_results.size() == plan.shard_count());

  // Fixed-order merge: ascending shard index (socket-major, then channel
  // block). AbsorbShard zeroes each shard controller, so their destructors
  // flush nothing — the absorb targets own the metrics export. The
  // model-domain per-shard census stages through ShardMetrics and folds in
  // the same shard order, keeping registry contents thread-count-invariant.
  ShardedEngineResult result;
  result.shards.reserve(plan.shard_count());
  obs::Registry& registry = obs::Registry::Global();
  obs::ShardMetrics staged;
  for (uint32_t shard = 0; shard < plan.shard_count(); ++shard) {
    const ControllerStats& stats = shard_controllers[shard]->stats();
    const std::string prefix = "engine.shard" + std::to_string(shard) + ".";
    staged.Add(prefix + "requests", stats.requests);
    staged.Add(prefix + "row_hits", stats.row_hits);
    staged.Add(prefix + "row_misses", stats.row_misses);
    controllers[plan.SocketOf(shard)]->AbsorbShard(*shard_controllers[shard]);
    const EngineResult& served = shard_results[shard];
    result.elapsed_ns = std::max(result.elapsed_ns, served.elapsed_ns);
    result.requests += served.requests;
    ShardTelemetry telemetry;
    telemetry.socket = plan.SocketOf(shard);
    telemetry.first_channel = plan.FirstChannelOf(shard);
    telemetry.channels = plan.ChannelsOf(shard);
    telemetry.requests = served.requests;
    telemetry.elapsed_ns = served.elapsed_ns;
    result.shards.push_back(telemetry);
  }
  staged.FoldInto(registry);

  // Conservation checker: partition + serve + merge must neither drop nor
  // duplicate a request. A violation here means a shard-dispatch bug, not a
  // model disagreement, so it is an integrity error rather than a CHECK —
  // the fault-injection battery drives this path deliberately.
  if (result.requests != expected_requests) {
    return MakeError(ErrorCode::kIntegrityViolation,
                     "shard conservation violated: served " +
                         std::to_string(result.requests) + " of " +
                         std::to_string(expected_requests) + " requests");
  }
  return result;
}

Result<ShardedEngineResult> RunOnBatches(const ShardPlan& plan,
                                         std::vector<std::vector<DecodedCmd>>&& batches,
                                         uint64_t expected_requests,
                                         std::span<MemoryController* const> controllers,
                                         const ShardedEngineConfig& config) {
  SILOZ_CHECK(batches.size() == plan.shard_count());
  // Fires before any shard serves: an injected dispatch failure must leave
  // the absorb-target controllers untouched (tested by the sharded stress
  // battery's fault-injection leg).
  SILOZ_FAULT_POINT("alloc.shard.dispatch");

  // Worker tasks fill only their own slot; the barrier below makes the
  // coordinating thread's ordered merge race-free.
  std::vector<std::optional<MemoryController>> shard_controllers(plan.shard_count());
  std::vector<EngineResult> shard_results(plan.shard_count());
  {
    ThreadPool pool(config.threads);
    pool.ParallelFor(0, plan.shard_count(), [&](uint64_t shard) {
      const uint32_t socket = plan.SocketOf(static_cast<uint32_t>(shard));
      shard_controllers[shard].emplace(controllers[socket]->geometry(), socket,
                                       controllers[socket]->timings());
      shard_results[shard] =
          ServeShard(batches[shard], *shard_controllers[shard], config.engine);
    });
  }

  return MergeShards(plan, shard_controllers, shard_results, controllers, expected_requests);
}

}  // namespace sharded_internal

Result<ShardedEngineResult> RunShardedClosedLoop(std::span<const MemRequest> requests,
                                                 std::span<MemoryController* const> controllers,
                                                 const ShardedEngineConfig& config) {
  const MemRequest* it = requests.data();
  return RunShardedClosedLoopOver(
      requests.size(), [&it]() -> const MemRequest& { return *it++; }, controllers, config);
}

}  // namespace siloz
