// DDR4 timing parameters (§2.4, Table 2).
//
// Values model DDR4-2933 on the evaluation server. The performance claims of
// the paper (Figs 4-7) are about *relative* behaviour — Siloz placement vs
// baseline placement — so what matters is that the model captures row
// buffer hits vs misses, per-bank serialization (tRC), bank-level
// parallelism, channel bus occupancy, and the tFAW activation window.
#ifndef SILOZ_SRC_MEMCTL_TIMING_H_
#define SILOZ_SRC_MEMCTL_TIMING_H_

#include <cstdint>

namespace siloz {

struct DdrTimings {
  // Nanoseconds. DDR4-2933 CL21-ish server part.
  double t_rcd = 14.3;  // ACT to column command
  double t_rp = 14.3;   // PRE to ACT
  double t_cas = 14.3;  // column command to first data
  double t_ras = 32.0;  // minimum row-open time (ACT to PRE)
  double t_rrd = 4.9;   // ACT to ACT, different banks of one rank
  double t_faw = 23.0;  // window in which at most 4 ACTs may hit one rank
  // One 64-byte burst occupies the channel bus for BL8 / (2933 MT/s) ~= 2.7ns.
  double t_burst = 2.7;
  // Cross-socket interconnect latency added to remote-node requests (§2.2).
  double t_remote_numa = 70.0;
  // Refresh: one REF per rank per tREFI on average; the rank is unavailable
  // for tRFC while it executes (§2.3). Steals ~tRFC/tREFI ~ 4.5% of time.
  double t_refi = 7800.0;
  double t_rfc = 350.0;
  bool model_refresh = true;

  double t_rc() const { return t_ras + t_rp; }  // ACT to ACT, same bank
};

}  // namespace siloz

#endif  // SILOZ_SRC_MEMCTL_TIMING_H_
