#include "src/memctl/controller.h"

#include <algorithm>
#include <cmath>
#include <string>

#include "src/base/check.h"
#include "src/obs/metrics.h"

namespace siloz {

MemoryController::MemoryController(const DramGeometry& geometry, uint32_t socket,
                                   DdrTimings timings)
    : geometry_(geometry), socket_(socket), timings_(timings) {
  SILOZ_CHECK(geometry_.Validate().ok());
  banks_.resize(geometry_.banks_per_socket());
  ranks_.resize(static_cast<size_t>(geometry_.channels_per_socket) *
                geometry_.dimms_per_channel * geometry_.ranks_per_dimm);
  channel_bus_free_.resize(geometry_.channels_per_socket, 0.0);
  bank_group_counts_.resize((banks_.size() + kBanksPerGroup - 1) / kBanksPerGroup);
}

MemoryController::~MemoryController() {
  // Pure integer totals flushed at a deterministic point (destruction), so
  // the hot path stays atomic-free and the registry values are
  // thread-count-invariant: only zero/nonzero and the sums matter, never
  // which thread served which request. Zero counts are skipped so untouched
  // bank groups do not bloat the export (the key set still matches across
  // thread counts because zero-ness is itself deterministic).
  obs::Registry& registry = obs::Registry::Global();
  const std::string prefix = "memctl.s" + std::to_string(socket_) + ".";
  BankGroupCounts socket_totals;
  for (size_t g = 0; g < bank_group_counts_.size(); ++g) {
    const BankGroupCounts& counts = bank_group_counts_[g];
    socket_totals.act += counts.act;
    socket_totals.pre += counts.pre;
    socket_totals.rd += counts.rd;
    socket_totals.wr += counts.wr;
    socket_totals.ref += counts.ref;
    const std::string group = prefix + "bg" + std::to_string(g) + ".";
    if (counts.act > 0) {
      registry.GetCounter(group + "act").Add(counts.act);
    }
    if (counts.pre > 0) {
      registry.GetCounter(group + "pre").Add(counts.pre);
    }
    if (counts.rd > 0) {
      registry.GetCounter(group + "rd").Add(counts.rd);
    }
    if (counts.wr > 0) {
      registry.GetCounter(group + "wr").Add(counts.wr);
    }
    if (counts.ref > 0) {
      registry.GetCounter(group + "ref").Add(counts.ref);
    }
  }
  const uint64_t requests = socket_totals.rd + socket_totals.wr;
  if (requests > 0) {
    registry.GetCounter(prefix + "act").Add(socket_totals.act);
    registry.GetCounter(prefix + "pre").Add(socket_totals.pre);
    registry.GetCounter(prefix + "rd").Add(socket_totals.rd);
    registry.GetCounter(prefix + "wr").Add(socket_totals.wr);
    registry.GetCounter(prefix + "ref").Add(socket_totals.ref);
    // Hits = column commands that did not need an ACT.
    registry.GetCounter(prefix + "row_hits").Add(requests - socket_totals.act);
    registry.GetCounter(prefix + "row_misses").Add(socket_totals.act);
  }
}

void MemoryController::ResetState() {
  std::fill(banks_.begin(), banks_.end(), BankState{});
  std::fill(ranks_.begin(), ranks_.end(), RankState{});
  std::fill(channel_bus_free_.begin(), channel_bus_free_.end(), 0.0);
  ResetStats();
}

double MemoryController::Serve(const MemRequest& request, double ready_ns) {
  SILOZ_DCHECK(request.address.socket == socket_);
  ++stats_.requests;

  double t = ready_ns;
  if (request.source_socket != socket_) {
    t += timings_.t_remote_numa;  // interconnect hop before the controller
  }

  const uint32_t bank_index = SocketBankIndex(geometry_, request.address);
  BankState& bank = banks_[bank_index];
  BankGroupCounts& group_counts = bank_group_counts_[bank_index / kBanksPerGroup];
  if (request.is_write) {
    ++stats_.writes;
    ++group_counts.wr;
  } else {
    ++stats_.reads;
    ++group_counts.rd;
  }
  const uint32_t rank_index =
      (request.address.channel * geometry_.dimms_per_channel + request.address.dimm) *
          geometry_.ranks_per_dimm +
      request.address.rank;
  RankState& rank = ranks_[rank_index];

  // Wait for the bank's previous column command to clear.
  t = std::max(t, bank.free_at_ns);

  double data_ready;
  if (bank.open_row == static_cast<int64_t>(request.address.row)) {
    ++stats_.row_hits;
    data_ready = t + timings_.t_cas;
  } else {
    ++stats_.row_misses;
    ++stats_.activates;
    ++group_counts.act;
    if (bank.open_row >= 0) {
      ++stats_.precharges;
      ++group_counts.pre;
    }
    // Precharge the old row (if any), then activate, respecting the bank's
    // tRC spacing, the rank's tRRD, and the tFAW four-activate window.
    double act_time = t + (bank.open_row >= 0 ? timings_.t_rp : 0.0);
    act_time = std::max(act_time, bank.act_allowed_ns);
    act_time = std::max(act_time, rank.rrd_ready_ns);
    const double faw_oldest = rank.last_acts[rank.next];
    if (faw_oldest > 0.0) {
      act_time = std::max(act_time, faw_oldest + timings_.t_faw);
    }
    rank.last_acts[rank.next] = act_time;
    rank.next = static_cast<uint8_t>((rank.next + 1) % rank.last_acts.size());
    rank.rrd_ready_ns = act_time + timings_.t_rrd;
    bank.act_allowed_ns = act_time + timings_.t_rc();
    bank.open_row = request.address.row;
    data_ready = act_time + timings_.t_rcd + timings_.t_cas;
  }

  // The 64-byte burst occupies the channel's data bus. Refresh (§2.3)
  // steals tRFC out of every tREFI of DRAM time; real controllers hide it
  // by reordering around the refreshing rank (FR-FCFS), which an in-order
  // replay cannot express per-request. It is therefore modeled as (a) a
  // throughput tax inflating effective bus occupancy by tREFI/(tREFI-tRFC)
  // ~ 4.7%, plus (b) one full-tRFC latency tail per rank per REF epoch
  // (the request unlucky enough to arrive at the head of the blackout).
  const double burst_time =
      timings_.model_refresh
          ? timings_.t_burst * timings_.t_refi / (timings_.t_refi - timings_.t_rfc)
          : timings_.t_burst;
  double& bus_free = channel_bus_free_[request.address.channel];
  const double burst_start = std::max(data_ready, bus_free);
  const double completion = burst_start + burst_time;
  bus_free = completion;
  // Next column command to this bank cannot start before the burst drains.
  bank.free_at_ns = completion;

  // The latency tail is charged only to the victim request's observed
  // completion: the aggregate bank/bus cost of refresh is already paid by
  // the rate tax, and holding the bank for the full tRFC here would cascade
  // one REF into a whole-channel stall that real reordering hides.
  double reported = completion;
  if (timings_.model_refresh) {
    const double offset = timings_.t_refi * static_cast<double>(rank_index) /
                          static_cast<double>(ranks_.size());
    const double shifted = completion + timings_.t_refi - offset;
    const double phase = std::fmod(shifted, timings_.t_refi);
    const double epoch = std::floor(shifted / timings_.t_refi);
    if (phase < timings_.t_rfc && epoch != rank.ref_epoch_charged) {
      reported += timings_.t_rfc - phase;
      rank.ref_epoch_charged = epoch;
      ++stats_.ref_tail_hits;
      ++group_counts.ref;
    }
  }

  stats_.total_latency_ns += reported - ready_ns;
  stats_.busy_ns = std::max(stats_.busy_ns, reported);
  return reported;
}

}  // namespace siloz
