#include "src/memctl/controller.h"

#include <algorithm>
#include <cmath>
#include <string>

#include "src/base/check.h"
#include "src/obs/metrics.h"

namespace siloz {

MemoryController::MemoryController(const DramGeometry& geometry, uint32_t socket,
                                   DdrTimings timings)
    : geometry_(geometry), socket_(socket), timings_(timings) {
  SILOZ_CHECK(geometry_.Validate().ok());
  banks_.resize(geometry_.banks_per_socket());
  ranks_.resize(static_cast<size_t>(geometry_.channels_per_socket) *
                geometry_.dimms_per_channel * geometry_.ranks_per_dimm);
  channel_bus_free_.resize(geometry_.channels_per_socket, 0.0);
  bank_group_counts_.resize((banks_.size() + kBanksPerGroup - 1) / kBanksPerGroup);
  // Hoisted from the per-request path; the expressions match the old inline
  // forms exactly so every produced double is bit-identical.
  burst_time_ = timings_.model_refresh
                    ? timings_.t_burst * timings_.t_refi / (timings_.t_refi - timings_.t_rfc)
                    : timings_.t_burst;
  rank_ref_offset_.resize(ranks_.size());
  for (size_t r = 0; r < ranks_.size(); ++r) {
    rank_ref_offset_[r] = timings_.t_refi * static_cast<double>(r) /
                          static_cast<double>(ranks_.size());
  }
}

MemoryController::~MemoryController() {
  // Pure integer totals flushed at a deterministic point (destruction), so
  // the hot path stays atomic-free and the registry values are
  // thread-count-invariant: only zero/nonzero and the sums matter, never
  // which thread served which request. Zero counts are skipped so untouched
  // bank groups do not bloat the export (the key set still matches across
  // thread counts because zero-ness is itself deterministic).
  obs::Registry& registry = obs::Registry::Global();
  const std::string prefix = "memctl.s" + std::to_string(socket_) + ".";
  BankGroupCounts socket_totals;
  for (size_t g = 0; g < bank_group_counts_.size(); ++g) {
    const BankGroupCounts& counts = bank_group_counts_[g];
    socket_totals.act += counts.act;
    socket_totals.pre += counts.pre;
    socket_totals.rd += counts.rd;
    socket_totals.wr += counts.wr;
    socket_totals.ref += counts.ref;
    const std::string group = prefix + "bg" + std::to_string(g) + ".";
    if (counts.act > 0) {
      registry.GetCounter(group + "act").Add(counts.act);
    }
    if (counts.pre > 0) {
      registry.GetCounter(group + "pre").Add(counts.pre);
    }
    if (counts.rd > 0) {
      registry.GetCounter(group + "rd").Add(counts.rd);
    }
    if (counts.wr > 0) {
      registry.GetCounter(group + "wr").Add(counts.wr);
    }
    if (counts.ref > 0) {
      registry.GetCounter(group + "ref").Add(counts.ref);
    }
  }
  const uint64_t requests = socket_totals.rd + socket_totals.wr;
  if (requests > 0) {
    registry.GetCounter(prefix + "act").Add(socket_totals.act);
    registry.GetCounter(prefix + "pre").Add(socket_totals.pre);
    registry.GetCounter(prefix + "rd").Add(socket_totals.rd);
    registry.GetCounter(prefix + "wr").Add(socket_totals.wr);
    registry.GetCounter(prefix + "ref").Add(socket_totals.ref);
    // Hits = column commands that did not need an ACT.
    registry.GetCounter(prefix + "row_hits").Add(requests - socket_totals.act);
    registry.GetCounter(prefix + "row_misses").Add(socket_totals.act);
  }
}

void MemoryController::AbsorbShard(MemoryController& shard) {
  SILOZ_CHECK(shard.socket_ == socket_);
  SILOZ_CHECK(shard.geometry_ == geometry_);
  stats_.requests += shard.stats_.requests;
  stats_.row_hits += shard.stats_.row_hits;
  stats_.row_misses += shard.stats_.row_misses;
  stats_.activates += shard.stats_.activates;
  stats_.precharges += shard.stats_.precharges;
  stats_.reads += shard.stats_.reads;
  stats_.writes += shard.stats_.writes;
  stats_.ref_tail_hits += shard.stats_.ref_tail_hits;
  stats_.busy_ns = std::max(stats_.busy_ns, shard.stats_.busy_ns);
  stats_.total_latency_ns += shard.stats_.total_latency_ns;
  SILOZ_CHECK(shard.bank_group_counts_.size() == bank_group_counts_.size());
  for (size_t g = 0; g < bank_group_counts_.size(); ++g) {
    BankGroupCounts& into = bank_group_counts_[g];
    BankGroupCounts& from = shard.bank_group_counts_[g];
    into.act += from.act;
    into.pre += from.pre;
    into.rd += from.rd;
    into.wr += from.wr;
    into.ref += from.ref;
    from = BankGroupCounts{};
  }
  shard.ResetStats();
}

void MemoryController::ResetState() {
  std::fill(banks_.begin(), banks_.end(), BankState{});
  std::fill(ranks_.begin(), ranks_.end(), RankState{});
  std::fill(channel_bus_free_.begin(), channel_bus_free_.end(), 0.0);
  ResetStats();
}

}  // namespace siloz
