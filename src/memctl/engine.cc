#include "src/memctl/engine.h"

namespace siloz {

EngineResult RunClosedLoop(std::span<const MemRequest> requests,
                           std::span<MemoryController* const> controllers,
                           const EngineConfig& config) {
  const MemRequest* it = requests.data();
  return RunClosedLoopOver(
      requests.size(), [&it]() -> const MemRequest& { return *it++; }, controllers, config);
}

}  // namespace siloz
