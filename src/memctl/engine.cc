#include "src/memctl/engine.h"

#include <algorithm>
#include <queue>

#include "src/base/check.h"

namespace siloz {

EngineResult RunClosedLoop(std::span<const MemRequest> requests,
                           std::span<MemoryController* const> controllers,
                           const EngineConfig& config) {
  SILOZ_CHECK_GT(config.max_outstanding, 0u);
  // Min-heap of in-flight completion times.
  std::priority_queue<double, std::vector<double>, std::greater<>> in_flight;
  double issue_cursor = 0.0;
  double last_completion = 0.0;

  for (const MemRequest& request : requests) {
    if (in_flight.size() >= config.max_outstanding) {
      // The core stalls until a slot frees up.
      issue_cursor = std::max(issue_cursor, in_flight.top());
      in_flight.pop();
    }
    SILOZ_DCHECK(request.address.socket < controllers.size());
    const double completion =
        controllers[request.address.socket]->Serve(request, issue_cursor);
    in_flight.push(completion);
    last_completion = std::max(last_completion, completion);
    issue_cursor += config.compute_ns_per_access;
  }

  EngineResult result;
  result.elapsed_ns = last_completion;
  result.requests = requests.size();
  return result;
}

}  // namespace siloz
