// SoftTRR-style software target-row-refresh (§3, §8.3).
//
// SoftTRR [Zhang et al., ATC'22] protects a designated set of rows (page
// tables in the original) by refreshing them from kernel software before
// aggressors can accumulate enough activations. Its soundness depends on a
// real-time guarantee Linux cannot give: the refresh task must run at least
// once per safe period. This model drives DramDevice::RefreshRow on a
// schedule with the latency behaviour the paper measured — never early,
// usually ~on time, occasionally stalled for tens of milliseconds — so
// attacks that fit inside a stall window land flips in "protected" rows.
#ifndef SILOZ_SRC_DEFENSES_SOFT_TRR_H_
#define SILOZ_SRC_DEFENSES_SOFT_TRR_H_

#include <cstdint>
#include <vector>

#include "src/base/rng.h"
#include "src/sim/machine.h"

namespace siloz {

struct SoftTrrConfig {
  // Intended refresh period (1 ms protects against ~threshold-rate hammering
  // per the paper's analysis).
  double period_ms = 1.0;
  // Exponential scheduling latency added to each firing (runqueue delay).
  double jitter_mean_ms = 0.05;
  // Probability a firing is stalled (preemption/IRQ-off window) and the
  // uniform upper bound of the stall.
  double stall_probability = 0.0005;
  double stall_max_ms = 34.0;
  uint64_t seed = 0x50F7;
};

class SoftTrrDefender {
 public:
  // Protects the rows containing `protected_phys` pages (every bank a page's
  // lines touch). Requires a fault-tracking machine.
  SoftTrrDefender(Machine& machine, const std::vector<uint64_t>& protected_pages,
                  SoftTrrConfig config);
  // Flushes refresh/deadline totals into the global metrics registry.
  ~SoftTrrDefender();

  // Fire all refresh events scheduled before the machine's current clock.
  // Call between attacker bursts (the simulation's co-routine seam).
  void CatchUp();

  uint64_t refreshes_fired() const { return refreshes_fired_; }
  double max_gap_ms() const { return max_gap_ms_; }
  uint64_t deadline_misses() const { return deadline_misses_; }
  size_t protected_row_count() const { return rows_.size(); }

 private:
  struct ProtectedRow {
    uint32_t socket;
    uint32_t channel;
    uint32_t dimm;
    uint32_t rank;
    uint32_t bank;
    uint32_t row;
  };

  Machine& machine_;
  SoftTrrConfig config_;
  Rng rng_;
  std::vector<ProtectedRow> rows_;
  uint64_t next_fire_ns_ = 0;
  uint64_t last_fire_ns_ = 0;
  uint64_t refreshes_fired_ = 0;
  uint64_t deadline_misses_ = 0;
  double max_gap_ms_ = 0.0;
};

}  // namespace siloz

#endif  // SILOZ_SRC_DEFENSES_SOFT_TRR_H_
