// ZebRAM-style whole-region guard-row protection (§3).
//
// ZebRAM [Konoth et al., OSDI'18] splits memory into alternating "safe" and
// "guard" rows: hammering safe rows can only flip bits in guards, which hold
// no data (or ECC-protected swap). The scheme generalizes to g guard rows
// per safe row; the paper's critique is cost: g/(g+1) of DRAM is sacrificed
// (50% at g=1, 80% at the modern requirement g=4), so it only scales to
// small protected regions.
//
// This model carves a physical region into safe/guard row groups at the
// platform's row-group granularity, exposes the usable extents, and verifies
// containment: flips from hammering safe rows must land in guards.
#ifndef SILOZ_SRC_DEFENSES_ZEBRAM_H_
#define SILOZ_SRC_DEFENSES_ZEBRAM_H_

#include <cstdint>
#include <vector>

#include "src/addr/subarray_group.h"

namespace siloz {

class ZebramRegion {
 public:
  // Protects `region` (must be row-group aligned under `decoder`) with
  // `guard_rows` guard row groups between consecutive safe row groups.
  ZebramRegion(const AddressDecoder& decoder, PhysRange region, uint32_t guard_rows);

  // Extents usable for data (the safe row groups).
  const std::vector<PhysRange>& safe_extents() const { return safe_extents_; }

  uint64_t usable_bytes() const { return usable_bytes_; }
  uint64_t total_bytes() const { return region_.size(); }
  // Fraction of the region sacrificed to guards.
  double overhead() const {
    return 1.0 - static_cast<double>(usable_bytes_) / static_cast<double>(region_.size());
  }

  // True if `phys` lies in a safe (data) row group.
  bool IsSafePhys(uint64_t phys) const;

  uint32_t guard_rows() const { return guard_rows_; }

 private:
  PhysRange region_;
  uint32_t guard_rows_;
  uint64_t row_group_bytes_;
  uint64_t usable_bytes_ = 0;
  std::vector<PhysRange> safe_extents_;
};

}  // namespace siloz

#endif  // SILOZ_SRC_DEFENSES_ZEBRAM_H_
