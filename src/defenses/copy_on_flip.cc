#include "src/defenses/copy_on_flip.h"

#include <map>
#include <set>

#include "src/base/check.h"
#include "src/base/units.h"
#include "src/obs/metrics.h"

namespace siloz {
namespace {

// Deterministic page-movability assignment.
uint64_t Mix(uint64_t a, uint64_t b) {
  uint64_t z = a * 0x9E3779B97F4A7C15ull + b;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  return z ^ (z >> 31);
}

}  // namespace

bool CopyOnFlipDefender::IsMovable(uint64_t page) const {
  const double u =
      static_cast<double>(Mix(config_.seed, page) >> 11) * 0x1.0p-53;
  return u < config_.movable_fraction;
}

CopyOnFlipDefender::Report CopyOnFlipDefender::ProcessPendingFlips() {
  SILOZ_CHECK(machine_.fault_tracking());
  Report report;

  // The scrub pass that surfaces ECC events; its corrected count is the
  // detection signal (and, equally, the leak count).
  report.corrected_detections = machine_.PatrolScrubAll();

  // Classify the flips by victim 4 KiB page, then evacuate *every* page
  // with bytes in a detected victim row (the defense knows the row from the
  // corrected-error report, and the whole row stays exposed).
  std::map<uint64_t, uint64_t> flips_per_page;
  std::set<uint64_t> victim_row_pages;
  const DramGeometry& geometry = machine_.decoder().geometry();
  for (const PhysFlip& flip : machine_.DrainFlips()) {
    flips_per_page[flip.phys / kPage4K] += 1;
    MediaAddress media = flip.media;
    for (uint32_t column = 0; column < geometry.row_bytes; column += kCacheLineBytes) {
      media.column = column;
      victim_row_pages.insert(*machine_.decoder().MediaToPhys(media) / kPage4K);
    }
  }
  for (const auto& [page, flips] : flips_per_page) {
    if (migrated_pages_.count(page) == 0) {
      report.flips_on_live_pages += flips;
    }
  }
  for (uint64_t page : victim_row_pages) {
    if (migrated_pages_.count(page) != 0) {
      continue;  // already rescued
    }
    if (IsMovable(page)) {
      migrated_pages_.insert(page);
      ++report.migrations;
    } else {
      ++report.unmovable_victim_pages;
    }
  }

  // ECC-escape tallies: deltas of the devices' cumulative counters.
  uint64_t uncorrectable_total = 0;
  uint64_t silent_total = 0;
  for (uint32_t socket = 0; socket < machine_.decoder().geometry().sockets; ++socket) {
    for (uint32_t channel = 0; channel < machine_.decoder().geometry().channels_per_socket;
         ++channel) {
      for (uint32_t dimm = 0; dimm < machine_.decoder().geometry().dimms_per_channel; ++dimm) {
        const DeviceCounters& counters = machine_.device(socket, channel, dimm).counters();
        uncorrectable_total += counters.uncorrectable_words;
        silent_total += counters.silent_corruptions;
      }
    }
  }
  report.uncorrectable_words = uncorrectable_total - seen_uncorrectable_;
  report.silent_corruptions = silent_total - seen_silent_;
  seen_uncorrectable_ = uncorrectable_total;
  seen_silent_ = silent_total;

  obs::Registry& registry = obs::Registry::Global();
  const auto flush = [&registry](const char* name, uint64_t value) {
    if (value > 0) {
      registry.GetCounter(name).Add(value);
    }
  };
  flush("defense.cof.detections", report.corrected_detections);
  flush("defense.cof.migrations", report.migrations);
  flush("defense.cof.unmovable_pages", report.unmovable_victim_pages);
  flush("defense.cof.uncorrectable_words", report.uncorrectable_words);
  flush("defense.cof.silent_corruptions", report.silent_corruptions);
  flush("defense.cof.live_flips", report.flips_on_live_pages);
  return report;
}

}  // namespace siloz
