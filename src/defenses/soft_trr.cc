#include "src/defenses/soft_trr.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <tuple>

#include "src/base/check.h"
#include "src/base/units.h"
#include "src/obs/metrics.h"

namespace siloz {

SoftTrrDefender::~SoftTrrDefender() {
  obs::Registry& registry = obs::Registry::Global();
  if (refreshes_fired_ > 0) {
    registry.GetCounter("defense.soft_trr.refreshes_fired").Add(refreshes_fired_);
  }
  if (deadline_misses_ > 0) {
    registry.GetCounter("defense.soft_trr.deadline_misses").Add(deadline_misses_);
  }
}

SoftTrrDefender::SoftTrrDefender(Machine& machine, const std::vector<uint64_t>& protected_pages,
                                 SoftTrrConfig config)
    : machine_(machine), config_(config), rng_(config.seed) {
  SILOZ_CHECK(machine_.fault_tracking());
  // Resolve every distinct (device, rank, bank, row) the protected pages'
  // cache lines live in.
  std::set<std::tuple<uint32_t, uint32_t, uint32_t, uint32_t, uint32_t, uint32_t>> seen;
  for (uint64_t page : protected_pages) {
    for (uint64_t offset = 0; offset < kPage4K; offset += kCacheLineBytes) {
      const MediaAddress media = *machine_.decoder().PhysToMedia(page + offset);
      const auto key = std::make_tuple(media.socket, media.channel, media.dimm, media.rank,
                                       media.bank, media.row);
      if (seen.insert(key).second) {
        rows_.push_back(ProtectedRow{media.socket, media.channel, media.dimm, media.rank,
                                     media.bank, media.row});
      }
    }
  }
  last_fire_ns_ = machine_.clock_ns();
  next_fire_ns_ = machine_.clock_ns() + static_cast<uint64_t>(config_.period_ms * 1e6);
}

void SoftTrrDefender::CatchUp() {
  const uint64_t now = machine_.clock_ns();
  while (next_fire_ns_ <= now) {
    // The task finally runs: refresh every protected row. Devices may have
    // advanced past the scheduled instant while the attacker ran; the
    // refresh is applied at the current clock (CatchUp is the seam where
    // the "kernel task" gets the CPU back).
    for (const ProtectedRow& row : rows_) {
      machine_.device(row.socket, row.channel, row.dimm)
          .RefreshRow(row.rank, row.bank, row.row, now);
    }
    ++refreshes_fired_;
    const double gap_ms = static_cast<double>(next_fire_ns_ - last_fire_ns_) / 1e6;
    max_gap_ms_ = std::max(max_gap_ms_, gap_ms);
    if (gap_ms > config_.period_ms * 1.5) {
      ++deadline_misses_;
    }
    last_fire_ns_ = next_fire_ns_;

    // Schedule the next firing: period + runqueue jitter, with occasional
    // long stalls (§8.3's delayed/dropped ticks).
    double delay_ms =
        config_.period_ms - config_.jitter_mean_ms * std::log(1.0 - rng_.NextDouble());
    if (rng_.NextBernoulli(config_.stall_probability)) {
      delay_ms += rng_.NextDouble() * config_.stall_max_ms;
    }
    next_fire_ns_ += static_cast<uint64_t>(delay_ms * 1e6);
  }
}

}  // namespace siloz
