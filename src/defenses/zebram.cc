#include "src/defenses/zebram.h"

#include "src/base/check.h"
#include "src/obs/metrics.h"

namespace siloz {

ZebramRegion::ZebramRegion(const AddressDecoder& decoder, PhysRange region, uint32_t guard_rows)
    : region_(region), guard_rows_(guard_rows) {
  const DramGeometry& geometry = decoder.geometry();
  row_group_bytes_ = geometry.row_group_bytes() / decoder.clusters_per_socket();
  SILOZ_CHECK_GT(guard_rows_, 0u);
  SILOZ_CHECK_EQ(region_.begin % row_group_bytes_, 0u);
  SILOZ_CHECK_EQ(region_.end % row_group_bytes_, 0u);
  // Stripe: one safe row group, then guard_rows guards, repeating. The first
  // and last safe groups still need guards on their outer sides, so the
  // stripe starts with guards.
  const uint32_t stride = guard_rows_ + 1;
  const uint64_t groups = region_.size() / row_group_bytes_;
  for (uint64_t index = 0; index < groups; ++index) {
    if (index % stride != guard_rows_) {
      continue;  // guard row group
    }
    const uint64_t begin = region_.begin + index * row_group_bytes_;
    // The safe group needs guard_rows of trailing guards too; the stripe
    // provides them except at the region tail.
    if (index + guard_rows_ >= groups) {
      break;
    }
    usable_bytes_ += row_group_bytes_;
    if (!safe_extents_.empty() && safe_extents_.back().end == begin) {
      safe_extents_.back().end = begin + row_group_bytes_;
    } else {
      safe_extents_.push_back(PhysRange{begin, begin + row_group_bytes_});
    }
  }
  // Carving census: how many row groups the stripe turned into data vs
  // guards (the g/(g+1) sacrifice the paper critiques).
  const uint64_t safe_groups = usable_bytes_ / row_group_bytes_;
  obs::Registry& registry = obs::Registry::Global();
  if (safe_groups > 0) {
    registry.GetCounter("defense.zebram.safe_groups").Add(safe_groups);
  }
  if (groups > safe_groups) {
    registry.GetCounter("defense.zebram.guard_groups").Add(groups - safe_groups);
  }
}

bool ZebramRegion::IsSafePhys(uint64_t phys) const {
  if (!region_.Contains(phys)) {
    return false;
  }
  for (const PhysRange& extent : safe_extents_) {
    if (extent.Contains(phys)) {
      return true;
    }
  }
  return false;
}

}  // namespace siloz
