// Copy-on-Flip-style detection/migration defense (§3).
//
// Copy-on-Flip [Di Dio et al., NDSS'23] uses ECC-corrected disturbance
// reports to identify pages under attack and migrates *movable* pages away.
// The paper's critique, reproduced here:
//   1. detection is reactive — every detection event is a corrected flip
//     that has already happened and is observable to a RAMBleed-style
//     attacker (corrected flips leak data);
//   2. unmovable pages (a subset of kernel memory) cannot be migrated and
//     stay exposed;
//   3. flips that beat ECC (uncorrectable or aliased) are not handled.
//
// The model scans a monitored region like an ECC scrub engine would, tallies
// the outcomes, and "migrates" movable victim pages (subsequent flips on a
// migrated page no longer count against live data).
#ifndef SILOZ_SRC_DEFENSES_COPY_ON_FLIP_H_
#define SILOZ_SRC_DEFENSES_COPY_ON_FLIP_H_

#include <cstdint>
#include <span>
#include <unordered_set>
#include <vector>

#include "src/addr/subarray_group.h"
#include "src/sim/machine.h"

namespace siloz {

struct CopyOnFlipConfig {
  // Fraction of pages that are movable (the rest model unmovable kernel
  // allocations).
  double movable_fraction = 0.9;
  uint64_t seed = 0xC0F;
};

class CopyOnFlipDefender {
 public:
  CopyOnFlipDefender(Machine& machine, CopyOnFlipConfig config)
      : machine_(machine), config_(config) {}

  struct Report {
    uint64_t corrected_detections = 0;   // ECC-corrected flips (= leak events)
    uint64_t migrations = 0;             // movable victim pages rescued
    uint64_t unmovable_victim_pages = 0; // detected but cannot migrate
    uint64_t uncorrectable_words = 0;    // beyond SEC-DED: not handled
    uint64_t silent_corruptions = 0;     // aliased multi-flips: undetected
    uint64_t flips_on_live_pages = 0;    // flips charged against live data
  };

  // Process the flips the machine accumulated: classify, migrate, report.
  // (Drains the machine flip log; call after an attack burst.)
  Report ProcessPendingFlips();

  size_t migrated_pages() const { return migrated_pages_.size(); }

 private:
  bool IsMovable(uint64_t page) const;

  Machine& machine_;
  CopyOnFlipConfig config_;
  std::unordered_set<uint64_t> migrated_pages_;  // 4 KiB page numbers
  // Device counters are cumulative; remember the totals already reported.
  uint64_t seen_uncorrectable_ = 0;
  uint64_t seen_silent_ = 0;
};

}  // namespace siloz

#endif  // SILOZ_SRC_DEFENSES_COPY_ON_FLIP_H_
