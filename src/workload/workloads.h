// Workload models for the performance evaluation (§7.2-§7.3).
//
// The paper measures execution time (redis+YCSB A-F, Hadoop terasort, SPEC
// CPU 2017, PARSEC 3.0) and throughput (memcached, SysBench mySQL, Intel MLC
// variants). We model each as a parameterized memory-access-trace generator:
// what distinguishes the workloads for a *memory-placement* study is their
// row-buffer locality, read:write mix, memory-level parallelism, compute
// intensity, and footprint — not their instruction streams. Parameters are
// drawn from the workloads' published memory characterizations; the paper's
// claim under test (placement into subarray groups is performance-neutral)
// depends only on these axes.
#ifndef SILOZ_SRC_WORKLOAD_WORKLOADS_H_
#define SILOZ_SRC_WORKLOAD_WORKLOADS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/addr/decoder.h"
#include "src/base/result.h"
#include "src/memctl/controller.h"
#include "src/siloz/vm.h"

namespace siloz {

enum class MetricKind : uint8_t {
  kExecutionTime,  // Fig 4 / Fig 6: lower elapsed is better
  kThroughput,     // Fig 5 / Fig 7: higher bandwidth is better
};

struct WorkloadSpec {
  std::string name;
  MetricKind metric = MetricKind::kExecutionTime;
  // Probability the next access is the sequentially-next cache line (row
  // buffer friendliness); otherwise it jumps within the footprint.
  double sequential_locality = 0.5;
  // Skew of jump targets: 0 = uniform; 0 < theta < 1 = scrambled-Zipfian
  // (YCSB's request distribution uses theta ~ 0.99 over hot keys).
  double zipf_theta = 0.0;
  double read_fraction = 0.8;
  // Outstanding requests the workload sustains (threads x per-core MLP,
  // saturated for bandwidth probes).
  uint32_t mlp = 8;
  // Compute between consecutive accesses (0 = pure bandwidth probe).
  double compute_ns_per_access = 10.0;
  // Guest-physical working set (clamped to the VM's RAM).
  uint64_t footprint_bytes = 2ull << 30;
  // Accesses generated per trial.
  uint64_t accesses = 400'000;
};

// Fig 4 workload set: redis+YCSB A-F, terasort, SPEC CPU 2017 (speed),
// PARSEC 3.0 (suite aggregates).
const std::vector<WorkloadSpec>& ExecutionTimeWorkloads();

// Fig 5 workload set: memcached, SysBench mySQL, and the Intel MLC
// variants (reads, 3:1, 2:1, 1:1, stream).
const std::vector<WorkloadSpec>& ThroughputWorkloads();

// Individual-benchmark profiles behind the suite aggregates: a
// memory-characterized subset of SPEC CPU 2017 (speed) and PARSEC 3.0.
// Used by the extended Fig 4 breakdown and available by name everywhere.
const std::vector<WorkloadSpec>& SpecCpuWorkloads();
const std::vector<WorkloadSpec>& ParsecWorkloads();

Result<WorkloadSpec> FindWorkload(const std::string& name);

// Generates a request trace over the VM's unmediated regions: the guest
// walks its own GPA space; addresses translate through the region list (the
// static GPA->HPA layout its EPT encodes) and then the platform decoder.
std::vector<MemRequest> GenerateTrace(const WorkloadSpec& spec, const AddressDecoder& decoder,
                                      const std::vector<VmRegion>& regions,
                                      uint32_t source_socket, uint64_t seed);

}  // namespace siloz

#endif  // SILOZ_SRC_WORKLOAD_WORKLOADS_H_
