// Workload models for the performance evaluation (§7.2-§7.3).
//
// The paper measures execution time (redis+YCSB A-F, Hadoop terasort, SPEC
// CPU 2017, PARSEC 3.0) and throughput (memcached, SysBench mySQL, Intel MLC
// variants). We model each as a parameterized memory-access-trace generator:
// what distinguishes the workloads for a *memory-placement* study is their
// row-buffer locality, read:write mix, memory-level parallelism, compute
// intensity, and footprint — not their instruction streams. Parameters are
// drawn from the workloads' published memory characterizations; the paper's
// claim under test (placement into subarray groups is performance-neutral)
// depends only on these axes.
#ifndef SILOZ_SRC_WORKLOAD_WORKLOADS_H_
#define SILOZ_SRC_WORKLOAD_WORKLOADS_H_

#include <algorithm>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/addr/decoder.h"
#include "src/base/check.h"
#include "src/base/result.h"
#include "src/base/units.h"
#include "src/memctl/controller.h"
#include "src/siloz/vm.h"

namespace siloz {

enum class MetricKind : uint8_t {
  kExecutionTime,  // Fig 4 / Fig 6: lower elapsed is better
  kThroughput,     // Fig 5 / Fig 7: higher bandwidth is better
};

struct WorkloadSpec {
  std::string name;
  MetricKind metric = MetricKind::kExecutionTime;
  // Probability the next access is the sequentially-next cache line (row
  // buffer friendliness); otherwise it jumps within the footprint.
  double sequential_locality = 0.5;
  // Skew of jump targets: 0 = uniform; 0 < theta < 1 = scrambled-Zipfian
  // (YCSB's request distribution uses theta ~ 0.99 over hot keys).
  double zipf_theta = 0.0;
  double read_fraction = 0.8;
  // Outstanding requests the workload sustains (threads x per-core MLP,
  // saturated for bandwidth probes).
  uint32_t mlp = 8;
  // Compute between consecutive accesses (0 = pure bandwidth probe).
  double compute_ns_per_access = 10.0;
  // Guest-physical working set (clamped to the VM's RAM).
  uint64_t footprint_bytes = 2ull << 30;
  // Accesses generated per trial.
  uint64_t accesses = 400'000;
};

// Fig 4 workload set: redis+YCSB A-F, terasort, SPEC CPU 2017 (speed),
// PARSEC 3.0 (suite aggregates).
const std::vector<WorkloadSpec>& ExecutionTimeWorkloads();

// Fig 5 workload set: memcached, SysBench mySQL, and the Intel MLC
// variants (reads, 3:1, 2:1, 1:1, stream).
const std::vector<WorkloadSpec>& ThroughputWorkloads();

// Individual-benchmark profiles behind the suite aggregates: a
// memory-characterized subset of SPEC CPU 2017 (speed) and PARSEC 3.0.
// Used by the extended Fig 4 breakdown and available by name everywhere.
const std::vector<WorkloadSpec>& SpecCpuWorkloads();
const std::vector<WorkloadSpec>& ParsecWorkloads();

Result<WorkloadSpec> FindWorkload(const std::string& name);

// Packed line-stream op: bit 31 = is_write, bits [0,31) = line index within
// the footprint (the generator checks footprints fit below the bit).
inline constexpr uint32_t kOpWriteBit = 0x80000000u;

// Streams the request sequence of one trial, one request at a time: the
// guest walks its own GPA space; addresses translate through the region list
// (the static GPA->HPA layout its EPT encodes) and then the platform
// decoder. GenerateTrace materializes exactly this stream, so the two are
// request-for-request identical by construction; the streaming form exists
// so a pure timing run can feed the closed-loop engine directly without
// writing (and re-reading) a multi-megabyte trace.
class TraceStreamer {
 public:
  TraceStreamer(const WorkloadSpec& spec, const AddressDecoder& decoder,
                const std::vector<VmRegion>& regions, uint32_t source_socket,
                uint64_t seed);

  uint64_t size() const { return ops_->size(); }

  // Returns the next request; the reference is valid until the following
  // call. Must be called exactly size() times.
  const MemRequest& Next() {
    const uint32_t op = (*ops_)[index_++];
    const uint64_t gpa = static_cast<uint64_t>(op & ~kOpWriteBit) * kCacheLineBytes;
    const uint64_t hpa = GpaToHpa(gpa);
    if (cursor_) {
      // Sequential runs dominate most workloads, and a sequential step in
      // GPA space is almost always a +64 B step in HPA space (EPT regions
      // are large). Walk those with the decoder's incremental LineCursor — a
      // one-counter ripple — and fall back to a full Reset (the same divide
      // chain PhysToMedia runs) only when the stream jumps.
      if (hpa == next_hpa_) [[likely]] {
        cursor_->Advance();
      } else if (hpa != next_hpa_ - kCacheLineBytes) {
        cursor_->Reset(hpa);
      }  // else: repeat of the previous line, cursor already there
      next_hpa_ = hpa + kCacheLineBytes;
      request_.address = cursor_->media();
    } else {
      request_.address = *decoder_->PhysToMedia(hpa);
    }
    request_.is_write = (op & kOpWriteBit) != 0;
    return request_;
  }

  // Materialize the entire stream into out[0, size()) in one pass.
  // Equivalent to size() calls of Next() — workloads_test checks the two
  // element-for-element — but with the hot state (cursor, region hint) in
  // locals. Must be the first consumption of the stream.
  void MaterializeAll(MemRequest* out);

  // Stream the trial as controller-resolved commands: invokes
  // emit(const DecodedCmd&, uint32_t socket) once per access, in trace
  // order, where the command equals DecodeMediaCmd over the request Next()
  // would have produced (workloads_test pins the equivalence). This is the
  // sharded engine's fast path: it skips the MediaAddress round-trip
  // entirely — on the Skylake cursor's channel-carry step (the common case)
  // the flat indices advance by two adds instead of re-deriving seven
  // coordinates and re-multiplying them back together. Must be the first
  // consumption of the stream.
  template <typename Emit>
  void ForEachDecoded(Emit&& emit) {
    SILOZ_CHECK_EQ(index_, size_t{0});
    const std::vector<uint32_t>& ops = *ops_;
    const DramGeometry& geometry = decoder_->geometry();
    const uint32_t source_socket = request_.source_socket;
    const VmRegion* last_region = last_region_;
    auto gpa_to_hpa = [&](uint64_t gpa) {
      if (gpa - last_region->gpa >= last_region->bytes) {
        auto it = std::upper_bound(ram_.begin(), ram_.end(), gpa,
                                   [](uint64_t value, const VmRegion* r) { return value < r->gpa; });
        SILOZ_CHECK(it != ram_.begin());
        last_region = *(it - 1);
        SILOZ_DCHECK(gpa < last_region->gpa + last_region->bytes);
      }
      return last_region->hpa + (gpa - last_region->gpa);
    };
    if (cursor_) {
      SkylakeDecoder::LineCursor cursor = *cursor_;
      // Channel-major strides of the flat indices (see DecodeMediaCmd): when
      // only the channel coordinate moves, the indices move by exactly these.
      const auto bank_stride = static_cast<uint16_t>(geometry.banks_per_channel());
      const auto rank_stride =
          static_cast<uint16_t>(geometry.dimms_per_channel * geometry.ranks_per_dimm);
      uint64_t next_hpa = ~uint64_t{0};
      DecodedCmd cmd;
      uint32_t socket = 0;
      auto resync = [&] {
        const MediaAddress& media = cursor.media();
        socket = media.socket;
        const uint8_t flags = cmd.flags;
        cmd = DecodeMediaCmd(geometry, media, flags);
      };
      for (size_t i = 0; i < ops.size(); ++i) {
        const uint32_t op = ops[i];
        const uint64_t gpa = static_cast<uint64_t>(op & ~kOpWriteBit) * kCacheLineBytes;
        const uint64_t hpa = gpa_to_hpa(gpa);
        if (hpa == next_hpa) [[likely]] {
          cursor.Advance();
          if (cursor.media().channel != 0) [[likely]] {
            // The channel carried without wrapping: every other coordinate
            // is unchanged, so the flat indices just step one channel over.
            ++cmd.channel;
            cmd.bank_index = static_cast<uint16_t>(cmd.bank_index + bank_stride);
            cmd.rank_index = static_cast<uint16_t>(cmd.rank_index + rank_stride);
          } else {
            resync();
          }
        } else if (hpa != next_hpa - kCacheLineBytes) {
          cursor.Reset(hpa);
          resync();
        }  // else: repeat of the previous line, cmd already resolved
        next_hpa = hpa + kCacheLineBytes;
        cmd.flags = static_cast<uint8_t>(((op & kOpWriteBit) != 0 ? kDecodedWrite : 0) |
                                         (source_socket != socket ? kDecodedRemote : 0));
        emit(static_cast<const DecodedCmd&>(cmd), socket);
      }
    } else {
      for (size_t i = 0; i < ops.size(); ++i) {
        const uint32_t op = ops[i];
        const uint64_t gpa = static_cast<uint64_t>(op & ~kOpWriteBit) * kCacheLineBytes;
        const MediaAddress media = *decoder_->PhysToMedia(gpa_to_hpa(gpa));
        const auto flags =
            static_cast<uint8_t>(((op & kOpWriteBit) != 0 ? kDecodedWrite : 0) |
                                 (source_socket != media.socket ? kDecodedRemote : 0));
        emit(DecodeMediaCmd(geometry, media, flags), media.socket);
      }
    }
    index_ = ops.size();
    last_region_ = last_region;
  }

 private:
  uint64_t GpaToHpa(uint64_t gpa) {
    // GPA streams are bursty (sequential runs, zipfian hot sets), so the
    // region containing the previous access almost always contains the
    // next; fall back to the binary search only on a region switch.
    if (gpa - last_region_->gpa >= last_region_->bytes) {
      auto it = std::upper_bound(
          ram_.begin(), ram_.end(), gpa,
          [](uint64_t value, const VmRegion* r) { return value < r->gpa; });
      SILOZ_CHECK(it != ram_.begin());
      last_region_ = *(it - 1);
      SILOZ_DCHECK(gpa < last_region_->gpa + last_region_->bytes);
    }
    return last_region_->hpa + (gpa - last_region_->gpa);
  }

  std::shared_ptr<const std::vector<uint32_t>> ops_;  // memoized line stream
  std::vector<const VmRegion*> ram_;                  // sorted by gpa
  const VmRegion* last_region_ = nullptr;
  const AddressDecoder* decoder_ = nullptr;
  std::optional<SkylakeDecoder::LineCursor> cursor_;  // set for SkylakeDecoder
  MemRequest request_;
  uint64_t next_hpa_ = ~uint64_t{0};  // hpa that keeps the cursor valid
  size_t index_ = 0;
};

// Generates a request trace over the VM's unmediated regions (the
// materialized form of TraceStreamer; see above).
std::vector<MemRequest> GenerateTrace(const WorkloadSpec& spec, const AddressDecoder& decoder,
                                      const std::vector<VmRegion>& regions,
                                      uint32_t source_socket, uint64_t seed);

}  // namespace siloz

#endif  // SILOZ_SRC_WORKLOAD_WORKLOADS_H_
