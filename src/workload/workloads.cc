#include "src/workload/workloads.h"

#include <algorithm>
#include <memory>
#include <optional>

#include "src/base/check.h"
#include "src/base/fastdiv.h"
#include "src/base/mutex.h"
#include "src/base/rng.h"
#include "src/base/units.h"

namespace siloz {
namespace {

// Parameter sources: YCSB core workload definitions (read/update mixes,
// zipfian vs latest vs scan-heavy), published DRAM characterizations of
// redis/memcached/mySQL, STREAM/MLC access semantics, and the SPEC CPU 2017
// and PARSEC 3.0 memory studies. Values are representative, not calibrated —
// the experiments compare the same spec across kernels, so only the axes
// matter (see header comment).
std::vector<WorkloadSpec> MakeExecutionTimeWorkloads() {
  return {
      // YCSB A: 50/50 read/update, zipfian — update-heavy KV store.
      {.name = "redis-a", .metric = MetricKind::kExecutionTime, .sequential_locality = 0.35, .zipf_theta = 0.9,
       .read_fraction = 0.50, .mlp = 8, .compute_ns_per_access = 14.0,
       .footprint_bytes = 3_GiB, .accesses = 400'000},
      // YCSB B: 95/5 read/update, zipfian.
      {.name = "redis-b", .metric = MetricKind::kExecutionTime, .sequential_locality = 0.35, .zipf_theta = 0.9,
       .read_fraction = 0.95, .mlp = 8, .compute_ns_per_access = 14.0,
       .footprint_bytes = 3_GiB, .accesses = 400'000},
      // YCSB C: 100% reads, zipfian.
      {.name = "redis-c", .metric = MetricKind::kExecutionTime, .sequential_locality = 0.35, .zipf_theta = 0.9,
       .read_fraction = 1.00, .mlp = 8, .compute_ns_per_access = 14.0,
       .footprint_bytes = 3_GiB, .accesses = 400'000},
      // YCSB D: 95/5 read/insert, latest distribution — better locality.
      {.name = "redis-d", .metric = MetricKind::kExecutionTime, .sequential_locality = 0.55,
       .read_fraction = 0.95, .mlp = 8, .compute_ns_per_access = 14.0,
       .footprint_bytes = 3_GiB, .accesses = 400'000},
      // YCSB E: short range scans — sequential bursts.
      {.name = "redis-e", .metric = MetricKind::kExecutionTime, .sequential_locality = 0.80,
       .read_fraction = 0.95, .mlp = 8, .compute_ns_per_access = 16.0,
       .footprint_bytes = 3_GiB, .accesses = 400'000},
      // YCSB F: read-modify-write, zipfian.
      {.name = "redis-f", .metric = MetricKind::kExecutionTime, .sequential_locality = 0.35, .zipf_theta = 0.9,
       .read_fraction = 0.70, .mlp = 8, .compute_ns_per_access = 15.0,
       .footprint_bytes = 3_GiB, .accesses = 400'000},
      // Hadoop terasort: streaming sort, large sequential runs + merges.
      {.name = "terasort", .metric = MetricKind::kExecutionTime, .sequential_locality = 0.85,
       .read_fraction = 0.60, .mlp = 16, .compute_ns_per_access = 8.0,
       .footprint_bytes = 6_GiB, .accesses = 600'000},
      // SPEC CPU 2017 speed (suite aggregate): mixed locality, compute-heavy.
      {.name = "spec17", .metric = MetricKind::kExecutionTime, .sequential_locality = 0.60,
       .read_fraction = 0.75, .mlp = 6, .compute_ns_per_access = 22.0,
       .footprint_bytes = 4_GiB, .accesses = 500'000},
      // PARSEC 3.0 (suite aggregate, 32 threads): shared-memory parallel.
      {.name = "parsec", .metric = MetricKind::kExecutionTime, .sequential_locality = 0.55,
       .read_fraction = 0.70, .mlp = 24, .compute_ns_per_access = 12.0,
       .footprint_bytes = 4_GiB, .accesses = 500'000},
  };
}

std::vector<WorkloadSpec> MakeThroughputWorkloads() {
  return {
      // memcached: small random lookups, high fan-out.
      {.name = "memcached", .metric = MetricKind::kThroughput, .sequential_locality = 0.30, .zipf_theta = 0.9,
       .read_fraction = 0.90, .mlp = 32, .compute_ns_per_access = 6.0,
       .footprint_bytes = 4_GiB, .accesses = 500'000},
      // SysBench mySQL (OLTP): page-structured, mixed read/write.
      {.name = "mysql", .metric = MetricKind::kThroughput, .sequential_locality = 0.50,
       .read_fraction = 0.70, .mlp = 16, .compute_ns_per_access = 18.0,
       .footprint_bytes = 6_GiB, .accesses = 500'000},
      // Intel MLC: saturated bandwidth probes (no compute gap).
      {.name = "mlc-reads", .metric = MetricKind::kThroughput, .sequential_locality = 0.98,
       .read_fraction = 1.00, .mlp = 64, .compute_ns_per_access = 0.0,
       .footprint_bytes = 2_GiB, .accesses = 800'000},
      {.name = "mlc-3:1", .metric = MetricKind::kThroughput, .sequential_locality = 0.98,
       .read_fraction = 0.75, .mlp = 64, .compute_ns_per_access = 0.0,
       .footprint_bytes = 2_GiB, .accesses = 800'000},
      {.name = "mlc-2:1", .metric = MetricKind::kThroughput, .sequential_locality = 0.98,
       .read_fraction = 0.67, .mlp = 64, .compute_ns_per_access = 0.0,
       .footprint_bytes = 2_GiB, .accesses = 800'000},
      {.name = "mlc-1:1", .metric = MetricKind::kThroughput, .sequential_locality = 0.98,
       .read_fraction = 0.50, .mlp = 64, .compute_ns_per_access = 0.0,
       .footprint_bytes = 2_GiB, .accesses = 800'000},
      // STREAM-triad-like: pure sequential sweep.
      {.name = "mlc-stream", .metric = MetricKind::kThroughput, .sequential_locality = 1.00,
       .read_fraction = 0.67, .mlp = 64, .compute_ns_per_access = 0.0,
       .footprint_bytes = 2_GiB, .accesses = 800'000},
  };
}

std::vector<WorkloadSpec> MakeSpecCpuWorkloads() {
  // Memory behaviour from the SPEC CPU 2017 characterization literature:
  // mcf/lbm/gcc are memory-hungry with poor locality; deepsjeng/leela are
  // cache-resident; fotonik3d/cactuBSSN stream large arrays.
  return {
      {.name = "spec-gcc", .sequential_locality = 0.45, .read_fraction = 0.80, .mlp = 6,
       .compute_ns_per_access = 16.0, .footprint_bytes = 2_GiB, .accesses = 400'000},
      {.name = "spec-mcf", .sequential_locality = 0.20, .read_fraction = 0.85, .mlp = 8,
       .compute_ns_per_access = 9.0, .footprint_bytes = 4_GiB, .accesses = 400'000},
      {.name = "spec-lbm", .sequential_locality = 0.90, .read_fraction = 0.60, .mlp = 12,
       .compute_ns_per_access = 7.0, .footprint_bytes = 3_GiB, .accesses = 400'000},
      {.name = "spec-omnetpp", .sequential_locality = 0.25, .read_fraction = 0.80, .mlp = 4,
       .compute_ns_per_access = 18.0, .footprint_bytes = 2_GiB, .accesses = 400'000},
      {.name = "spec-xalancbmk", .sequential_locality = 0.40, .read_fraction = 0.85, .mlp = 5,
       .compute_ns_per_access = 15.0, .footprint_bytes = 1_GiB, .accesses = 400'000},
      {.name = "spec-deepsjeng", .sequential_locality = 0.65, .read_fraction = 0.80, .mlp = 4,
       .compute_ns_per_access = 30.0, .footprint_bytes = 512_MiB, .accesses = 400'000},
      {.name = "spec-fotonik3d", .sequential_locality = 0.92, .read_fraction = 0.70, .mlp = 16,
       .compute_ns_per_access = 6.0, .footprint_bytes = 4_GiB, .accesses = 400'000},
      {.name = "spec-cactuBSSN", .sequential_locality = 0.80, .read_fraction = 0.70, .mlp = 10,
       .compute_ns_per_access = 11.0, .footprint_bytes = 3_GiB, .accesses = 400'000},
  };
}

std::vector<WorkloadSpec> MakeParsecWorkloads() {
  // PARSEC 3.0 (32 threads, native inputs): canneal is the classic
  // random-access stressor; streamcluster/ferret stream; blackscholes is
  // compute-bound.
  return {
      {.name = "parsec-blackscholes", .sequential_locality = 0.85, .read_fraction = 0.75,
       .mlp = 24, .compute_ns_per_access = 25.0, .footprint_bytes = 1_GiB, .accesses = 400'000},
      {.name = "parsec-canneal", .sequential_locality = 0.10, .read_fraction = 0.80, .mlp = 16,
       .compute_ns_per_access = 8.0, .footprint_bytes = 4_GiB, .accesses = 400'000},
      {.name = "parsec-dedup", .sequential_locality = 0.55, .read_fraction = 0.70, .mlp = 20,
       .compute_ns_per_access = 10.0, .footprint_bytes = 3_GiB, .accesses = 400'000},
      {.name = "parsec-streamcluster", .sequential_locality = 0.88, .read_fraction = 0.85,
       .mlp = 28, .compute_ns_per_access = 7.0, .footprint_bytes = 2_GiB, .accesses = 400'000},
      {.name = "parsec-ferret", .sequential_locality = 0.60, .read_fraction = 0.85, .mlp = 24,
       .compute_ns_per_access = 12.0, .footprint_bytes = 2_GiB, .accesses = 400'000},
      {.name = "parsec-fluidanimate", .sequential_locality = 0.70, .read_fraction = 0.65,
       .mlp = 24, .compute_ns_per_access = 13.0, .footprint_bytes = 2_GiB, .accesses = 400'000},
  };
}

// ---------------------------------------------------------------------------
// Line-stream memoization.
//
// A trace factors into (a) the RNG-derived stream of (line index, is_write)
// ops — a function of the spec's mix parameters, the footprint, and the
// seed alone — and (b) the placement-dependent mapping of each line to a
// media address. Experiment grids run the same (workload, trial) under
// several hypervisor variants whose VMs have identical RAM totals, so (a) is
// recomputed with identical results once per variant; memoizing it halves
// the Zipfian/pow and RNG cost of a two-variant grid. Only (a) is cached:
// content is a pure function of the key, so hits and misses never change
// what GenerateTrace returns.
// ---------------------------------------------------------------------------

struct StreamKey {
  uint64_t accesses;
  uint64_t footprint_lines;
  uint64_t seed;
  double sequential_locality;
  double zipf_theta;
  double read_fraction;

  bool operator==(const StreamKey&) const = default;
};

// FIFO-bounded memo; ~64 entries covers one figure grid's (workload, trial)
// set (at most ~3 MiB per entry at the largest specs). Exact key equality —
// no hashing, a figure performs O(100) lookups total.
struct StreamCacheEntry {
  StreamKey key;
  std::shared_ptr<const std::vector<uint32_t>> ops;
};
Mutex stream_cache_mutex;
std::vector<StreamCacheEntry> stream_cache GUARDED_BY(stream_cache_mutex);
constexpr size_t kStreamCacheMaxEntries = 64;

// Draws the (line, is_write) stream for `key`. The draw order (locality
// Bernoulli, optional jump, write Bernoulli per access, after one initial
// jump) is the determinism contract shared with pre-memoization traces.
std::vector<uint32_t> GenerateLineOps(const StreamKey& key) {
  Rng rng(key.seed);
  std::optional<ZipfianSampler> zipf;
  if (key.zipf_theta > 0.0) {
    zipf.emplace(key.footprint_lines, key.zipf_theta);
  }
  const FastDivider footprint_div(key.footprint_lines);
  auto jump = [&]() -> uint64_t {
    if (!zipf.has_value()) {
      return rng.NextBelow(key.footprint_lines);
    }
    // Scrambled Zipfian (as in YCSB): the sampler's rank-ordered hot items
    // are hashed across the footprint so hotness is not physically clustered.
    const uint64_t rank = zipf->Next(rng);
    uint64_t h = (rank + 1) * 0x9E3779B97F4A7C15ull;
    h ^= h >> 31;
    return footprint_div.Mod(h);
  };
  std::vector<uint32_t> ops;
  ops.reserve(key.accesses);
  uint64_t line = jump();
  for (uint64_t i = 0; i < key.accesses; ++i) {
    if (rng.NextBernoulli(key.sequential_locality)) {
      // line < footprint_lines always holds, so the modulo is a wrap test.
      ++line;
      if (line == key.footprint_lines) {
        line = 0;
      }
    } else {
      line = jump();
    }
    const bool is_write = !rng.NextBernoulli(key.read_fraction);
    ops.push_back(static_cast<uint32_t>(line) | (is_write ? kOpWriteBit : 0u));
  }
  return ops;
}

std::shared_ptr<const std::vector<uint32_t>> CachedLineOps(const StreamKey& key) {
  {
    MutexLock lock(stream_cache_mutex);
    for (const StreamCacheEntry& entry : stream_cache) {
      if (entry.key == key) {
        return entry.ops;
      }
    }
  }
  // Generate outside the lock: concurrent misses on the same key do
  // redundant (identical) work instead of serializing the whole grid.
  auto ops = std::make_shared<const std::vector<uint32_t>>(GenerateLineOps(key));
  MutexLock lock(stream_cache_mutex);
  for (const StreamCacheEntry& entry : stream_cache) {
    if (entry.key == key) {
      return entry.ops;
    }
  }
  if (stream_cache.size() >= kStreamCacheMaxEntries) {
    stream_cache.erase(stream_cache.begin());
  }
  stream_cache.push_back(StreamCacheEntry{key, ops});
  return ops;
}

}  // namespace

const std::vector<WorkloadSpec>& SpecCpuWorkloads() {
  static const std::vector<WorkloadSpec>* workloads =
      new std::vector<WorkloadSpec>(MakeSpecCpuWorkloads());
  return *workloads;
}

const std::vector<WorkloadSpec>& ParsecWorkloads() {
  static const std::vector<WorkloadSpec>* workloads =
      new std::vector<WorkloadSpec>(MakeParsecWorkloads());
  return *workloads;
}

const std::vector<WorkloadSpec>& ExecutionTimeWorkloads() {
  static const std::vector<WorkloadSpec>* workloads =
      new std::vector<WorkloadSpec>(MakeExecutionTimeWorkloads());
  return *workloads;
}

const std::vector<WorkloadSpec>& ThroughputWorkloads() {
  static const std::vector<WorkloadSpec>* workloads =
      new std::vector<WorkloadSpec>(MakeThroughputWorkloads());
  return *workloads;
}

Result<WorkloadSpec> FindWorkload(const std::string& name) {
  for (const auto* set : {&ExecutionTimeWorkloads(), &ThroughputWorkloads(), &SpecCpuWorkloads(),
                          &ParsecWorkloads()}) {
    for (const WorkloadSpec& spec : *set) {
      if (spec.name == name) {
        return spec;
      }
    }
  }
  return MakeError(ErrorCode::kNotFound, "no workload '" + name + "'");
}

TraceStreamer::TraceStreamer(const WorkloadSpec& spec, const AddressDecoder& decoder,
                             const std::vector<VmRegion>& regions, uint32_t source_socket,
                             uint64_t seed) {
  // The guest's RAM is GPA-contiguous; build a sorted view of the unmediated
  // regions for GPA->HPA translation (what its EPT encodes).
  uint64_t ram_bytes = 0;
  for (const VmRegion& region : regions) {
    if (region.type == MemoryType::kGuestRam) {
      ram_.push_back(&region);
      ram_bytes += region.bytes;
    }
  }
  SILOZ_CHECK(!ram_.empty());
  std::sort(ram_.begin(), ram_.end(),
            [](const VmRegion* a, const VmRegion* b) { return a->gpa < b->gpa; });
  last_region_ = ram_.front();

  const uint64_t footprint =
      std::max<uint64_t>(kCacheLineBytes, std::min(spec.footprint_bytes, ram_bytes));
  const uint64_t footprint_lines = footprint / kCacheLineBytes;
  SILOZ_CHECK_LT(footprint_lines, uint64_t{kOpWriteBit});
  const StreamKey key{spec.accesses,  footprint_lines, seed,
                      spec.sequential_locality, spec.zipf_theta, spec.read_fraction};
  ops_ = CachedLineOps(key);

  decoder_ = &decoder;
  if (const auto* skylake = dynamic_cast<const SkylakeDecoder*>(&decoder)) {
    cursor_.emplace(*skylake, 0);
  }
  request_.source_socket = source_socket;
}

void TraceStreamer::MaterializeAll(MemRequest* out) {
  SILOZ_CHECK_EQ(index_, size_t{0});
  const std::vector<uint32_t>& ops = *ops_;
  const uint32_t source_socket = request_.source_socket;
  const VmRegion* last_region = last_region_;
  auto gpa_to_hpa = [&](uint64_t gpa) {
    if (gpa - last_region->gpa >= last_region->bytes) {
      auto it = std::upper_bound(ram_.begin(), ram_.end(), gpa,
                                 [](uint64_t value, const VmRegion* r) { return value < r->gpa; });
      SILOZ_CHECK(it != ram_.begin());
      last_region = *(it - 1);
      SILOZ_DCHECK(gpa < last_region->gpa + last_region->bytes);
    }
    return last_region->hpa + (gpa - last_region->gpa);
  };
  if (cursor_) {
    SkylakeDecoder::LineCursor cursor = *cursor_;
    uint64_t next_hpa = ~uint64_t{0};
    for (size_t i = 0; i < ops.size(); ++i) {
      const uint32_t op = ops[i];
      const uint64_t gpa = static_cast<uint64_t>(op & ~kOpWriteBit) * kCacheLineBytes;
      const uint64_t hpa = gpa_to_hpa(gpa);
      if (hpa == next_hpa) [[likely]] {
        cursor.Advance();
      } else if (hpa != next_hpa - kCacheLineBytes) {
        cursor.Reset(hpa);
      }  // else: repeat of the previous line, cursor already there
      next_hpa = hpa + kCacheLineBytes;
      MemRequest& request = out[i];
      request.address = cursor.media();
      request.is_write = (op & kOpWriteBit) != 0;
      request.source_socket = source_socket;
    }
  } else {
    for (size_t i = 0; i < ops.size(); ++i) {
      const uint32_t op = ops[i];
      const uint64_t gpa = static_cast<uint64_t>(op & ~kOpWriteBit) * kCacheLineBytes;
      MemRequest& request = out[i];
      request.address = *decoder_->PhysToMedia(gpa_to_hpa(gpa));
      request.is_write = (op & kOpWriteBit) != 0;
      request.source_socket = source_socket;
    }
  }
  index_ = ops.size();
  last_region_ = last_region;
}

std::vector<MemRequest> GenerateTrace(const WorkloadSpec& spec, const AddressDecoder& decoder,
                                      const std::vector<VmRegion>& regions,
                                      uint32_t source_socket, uint64_t seed) {
  TraceStreamer stream(spec, decoder, regions, source_socket, seed);
  std::vector<MemRequest> trace(stream.size());
  stream.MaterializeAll(trace.data());
  return trace;
}

}  // namespace siloz
