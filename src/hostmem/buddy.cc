#include "src/hostmem/buddy.h"

#include <algorithm>

#include "src/base/bitops.h"
#include "src/base/check.h"
#include "src/base/fault_injector.h"

namespace siloz {

BuddyAllocator::BuddyAllocator(const std::vector<PhysRange>& ranges) {
  free_.resize(kMaxOrder + 1);
  for (const PhysRange& range : ranges) {
    SILOZ_CHECK_EQ(range.begin % OrderBytes(0), 0u);
    SILOZ_CHECK_EQ(range.end % OrderBytes(0), 0u);
    SILOZ_CHECK_LT(range.begin, range.end);
    total_bytes_ += range.size();
    // Greedily carve the range into maximal naturally-aligned blocks.
    uint64_t cursor = range.begin;
    while (cursor < range.end) {
      uint32_t order = kMaxOrder;
      while (order > 0 &&
             (cursor % OrderBytes(order) != 0 || cursor + OrderBytes(order) > range.end)) {
        --order;
      }
      Insert(cursor, order);
      cursor += OrderBytes(order);
    }
  }
  free_bytes_ = total_bytes_;
}

void BuddyAllocator::AddFree(uint64_t phys, uint32_t order) {
  free_[order].insert(phys);
  free_by_addr_[phys] = order;
}

void BuddyAllocator::RemoveFree(uint64_t phys, uint32_t order) {
  free_[order].erase(phys);
  free_by_addr_.erase(phys);
}

void BuddyAllocator::Insert(uint64_t phys, uint32_t order) {
  // Coalesce with the buddy while possible.
  while (order < kMaxOrder) {
    const uint64_t buddy = phys ^ OrderBytes(order);
    auto it = free_[order].find(buddy);
    if (it == free_[order].end()) {
      break;
    }
    RemoveFree(buddy, order);
    phys = std::min(phys, buddy);
    ++order;
  }
  // Insert only places blocks; free_bytes_ accounting is the caller's.
  AddFree(phys, order);
}

Result<uint64_t> BuddyAllocator::Allocate(uint32_t order) {
  if (order > kMaxOrder) {
    return MakeError(ErrorCode::kInvalidArgument, "order too large");
  }
  SILOZ_FAULT_POINT("alloc.buddy.page");
  // Find the smallest order >= requested with a free block.
  uint32_t have = order;
  while (have <= kMaxOrder && free_[have].empty()) {
    ++have;
  }
  if (have > kMaxOrder) {
    return MakeError(ErrorCode::kNoMemory,
                     "no free block of order " + std::to_string(order));
  }
  // Lowest-address block of the smallest sufficient order. free_[have] is
  // address-ordered, so begin() is the deterministic choice (with the old
  // unordered free lists this dereferenced hash-table iteration order).
  uint64_t block = *free_[have].begin();
  RemoveFree(block, have);
  // Split down, returning the upper halves to the free lists.
  while (have > order) {
    --have;
    AddFree(block + OrderBytes(have), have);
  }
  free_bytes_ -= OrderBytes(order);
  return block;
}

bool BuddyAllocator::CarveTo(uint64_t phys, uint32_t order) {
  // Find the free block containing `phys` at some order >= `order`.
  for (uint32_t have = order; have <= kMaxOrder; ++have) {
    const uint64_t candidate = AlignDown(phys, OrderBytes(have));
    auto it = free_[have].find(candidate);
    if (it == free_[have].end()) {
      continue;
    }
    RemoveFree(candidate, have);
    // Split down toward `phys`.
    uint64_t block = candidate;
    while (have > order) {
      --have;
      const uint64_t half = OrderBytes(have);
      if (phys < block + half) {
        AddFree(block + half, have);  // keep low half
      } else {
        AddFree(block, have);  // keep high half
        block += half;
      }
    }
    AddFree(block, order);
    return true;
  }
  return false;
}

Status BuddyAllocator::AllocateAt(uint64_t phys, uint32_t order) {
  if (order > kMaxOrder || phys % OrderBytes(order) != 0) {
    return MakeError(ErrorCode::kInvalidArgument, "misaligned AllocateAt");
  }
  SILOZ_FAULT_POINT("alloc.buddy.at");
  if (!CarveTo(phys, order)) {
    return MakeError(ErrorCode::kNoMemory,
                     "block at " + std::to_string(phys) + " not free");
  }
  RemoveFree(phys, order);
  free_bytes_ -= OrderBytes(order);
  return Status::Ok();
}

bool BuddyAllocator::OverlapsFreeOrOfflined(uint64_t phys, uint32_t order) const {
  const uint64_t end = phys + OrderBytes(order);
  // A free block starting before `phys` that extends into the range...
  auto next = free_by_addr_.upper_bound(phys);
  if (next != free_by_addr_.begin()) {
    const auto prev = std::prev(next);
    if (prev->first + OrderBytes(prev->second) > phys) {
      return true;
    }
  }
  // ...or one starting inside it.
  if (next != free_by_addr_.end() && next->first < end) {
    return true;
  }
  // Offlined pages are permanently carved out; a block covering one was
  // never handed out whole by Allocate/AllocateAt.
  auto offlined = offlined_.lower_bound(phys);
  return offlined != offlined_.end() && *offlined < end;
}

Status BuddyAllocator::Free(uint64_t phys, uint32_t order) {
  if (order > kMaxOrder || phys % OrderBytes(order) != 0) {
    return MakeError(ErrorCode::kInvalidArgument, "misaligned Free");
  }
  SILOZ_FAULT_POINT("free.buddy.page");
  if (OverlapsFreeOrOfflined(phys, order)) {
    return MakeError(ErrorCode::kFailedPrecondition,
                     "double free: block at " + std::to_string(phys) + " order " +
                         std::to_string(order) + " overlaps free or offlined memory");
  }
  Insert(phys, order);
  free_bytes_ += OrderBytes(order);
  return Status::Ok();
}

Status BuddyAllocator::OfflinePage(uint64_t phys) {
  if (phys % OrderBytes(0) != 0) {
    return MakeError(ErrorCode::kInvalidArgument, "misaligned OfflinePage");
  }
  if (!CarveTo(phys, 0)) {
    return MakeError(ErrorCode::kFailedPrecondition,
                     "page at " + std::to_string(phys) + " not free; cannot offline");
  }
  RemoveFree(phys, 0);
  free_bytes_ -= OrderBytes(0);
  offlined_bytes_ += OrderBytes(0);
  total_bytes_ -= OrderBytes(0);
  offlined_.insert(phys);
  return Status::Ok();
}

int32_t BuddyAllocator::LargestFreeOrder() const {
  for (int32_t order = kMaxOrder; order >= 0; --order) {
    if (!free_[order].empty()) {
      return order;
    }
  }
  return -1;
}

uint64_t BuddyAllocator::LargestFreeRun() const {
  uint64_t largest = 0;
  uint64_t run_begin = 0;
  uint64_t run_end = 0;
  for (const auto& [start, order] : free_by_addr_) {
    if (start != run_end || run_end == 0) {
      largest = std::max(largest, run_end - run_begin);
      run_begin = start;
    }
    run_end = start + OrderBytes(order);
  }
  return std::max(largest, run_end - run_begin);
}

bool BuddyAllocator::IsFree(uint64_t phys) const {
  for (uint32_t order = 0; order <= kMaxOrder; ++order) {
    if (free_[order].count(AlignDown(phys, OrderBytes(order))) != 0) {
      return true;
    }
  }
  return false;
}

bool BuddyAllocator::IsOfflined(uint64_t phys) const {
  return offlined_.count(AlignDown(phys, OrderBytes(0))) != 0;
}

}  // namespace siloz
