#include "src/hostmem/buddy.h"

#include <algorithm>

#include "src/base/bitops.h"
#include "src/base/check.h"

namespace siloz {

BuddyAllocator::BuddyAllocator(const std::vector<PhysRange>& ranges) {
  free_.resize(kMaxOrder + 1);
  for (const PhysRange& range : ranges) {
    SILOZ_CHECK_EQ(range.begin % OrderBytes(0), 0u);
    SILOZ_CHECK_EQ(range.end % OrderBytes(0), 0u);
    SILOZ_CHECK_LT(range.begin, range.end);
    total_bytes_ += range.size();
    // Greedily carve the range into maximal naturally-aligned blocks.
    uint64_t cursor = range.begin;
    while (cursor < range.end) {
      uint32_t order = kMaxOrder;
      while (order > 0 &&
             (cursor % OrderBytes(order) != 0 || cursor + OrderBytes(order) > range.end)) {
        --order;
      }
      Insert(cursor, order);
      cursor += OrderBytes(order);
    }
  }
  free_bytes_ = total_bytes_;
}

void BuddyAllocator::Insert(uint64_t phys, uint32_t order) {
  // Coalesce with the buddy while possible.
  while (order < kMaxOrder) {
    const uint64_t buddy = phys ^ OrderBytes(order);
    auto it = free_[order].find(buddy);
    if (it == free_[order].end()) {
      break;
    }
    free_[order].erase(it);
    phys = std::min(phys, buddy);
    ++order;
  }
  // Insert only places blocks; free_bytes_ accounting is the caller's.
  free_[order].insert(phys);
}

Result<uint64_t> BuddyAllocator::Allocate(uint32_t order) {
  if (order > kMaxOrder) {
    return MakeError(ErrorCode::kInvalidArgument, "order too large");
  }
  // Find the smallest order >= requested with a free block.
  uint32_t have = order;
  while (have <= kMaxOrder && free_[have].empty()) {
    ++have;
  }
  if (have > kMaxOrder) {
    return MakeError(ErrorCode::kNoMemory,
                     "no free block of order " + std::to_string(order));
  }
  uint64_t block = *free_[have].begin();
  free_[have].erase(free_[have].begin());
  // Split down, returning the upper halves to the free lists.
  while (have > order) {
    --have;
    free_[have].insert(block + OrderBytes(have));
  }
  free_bytes_ -= OrderBytes(order);
  return block;
}

bool BuddyAllocator::CarveTo(uint64_t phys, uint32_t order) {
  // Find the free block containing `phys` at some order >= `order`.
  for (uint32_t have = order; have <= kMaxOrder; ++have) {
    const uint64_t candidate = AlignDown(phys, OrderBytes(have));
    auto it = free_[have].find(candidate);
    if (it == free_[have].end()) {
      continue;
    }
    free_[have].erase(it);
    // Split down toward `phys`.
    uint64_t block = candidate;
    while (have > order) {
      --have;
      const uint64_t half = OrderBytes(have);
      if (phys < block + half) {
        free_[have].insert(block + half);  // keep low half
      } else {
        free_[have].insert(block);  // keep high half
        block += half;
      }
    }
    free_[order].insert(block);
    return true;
  }
  return false;
}

Status BuddyAllocator::AllocateAt(uint64_t phys, uint32_t order) {
  if (order > kMaxOrder || phys % OrderBytes(order) != 0) {
    return MakeError(ErrorCode::kInvalidArgument, "misaligned AllocateAt");
  }
  if (!CarveTo(phys, order)) {
    return MakeError(ErrorCode::kNoMemory,
                     "block at " + std::to_string(phys) + " not free");
  }
  free_[order].erase(phys);
  free_bytes_ -= OrderBytes(order);
  return Status::Ok();
}

Status BuddyAllocator::Free(uint64_t phys, uint32_t order) {
  if (order > kMaxOrder || phys % OrderBytes(order) != 0) {
    return MakeError(ErrorCode::kInvalidArgument, "misaligned Free");
  }
  Insert(phys, order);
  free_bytes_ += OrderBytes(order);
  return Status::Ok();
}

Status BuddyAllocator::OfflinePage(uint64_t phys) {
  if (phys % OrderBytes(0) != 0) {
    return MakeError(ErrorCode::kInvalidArgument, "misaligned OfflinePage");
  }
  if (!CarveTo(phys, 0)) {
    return MakeError(ErrorCode::kFailedPrecondition,
                     "page at " + std::to_string(phys) + " not free; cannot offline");
  }
  free_[0].erase(phys);
  free_bytes_ -= OrderBytes(0);
  offlined_bytes_ += OrderBytes(0);
  total_bytes_ -= OrderBytes(0);
  offlined_.insert(phys);
  return Status::Ok();
}

int32_t BuddyAllocator::LargestFreeOrder() const {
  for (int32_t order = kMaxOrder; order >= 0; --order) {
    if (!free_[order].empty()) {
      return order;
    }
  }
  return -1;
}

bool BuddyAllocator::IsFree(uint64_t phys) const {
  for (uint32_t order = 0; order <= kMaxOrder; ++order) {
    if (free_[order].count(AlignDown(phys, OrderBytes(order))) != 0) {
      return true;
    }
  }
  return false;
}

bool BuddyAllocator::IsOfflined(uint64_t phys) const {
  return offlined_.count(AlignDown(phys, OrderBytes(0))) != 0;
}

}  // namespace siloz
