// Buddy page allocator over a set of physical ranges.
//
// The reproduction's stand-in for Linux's per-node buddy allocator: each
// logical NUMA node (§5.2) owns one, seeded with the node's subarray-group
// extents. Supports the page sizes the paper discusses (4 KiB order 0 up to
// 1 GiB order 18) and page offlining (used for guard rows, §5.4, and for
// isolation-violating pages, §6).
#ifndef SILOZ_SRC_HOSTMEM_BUDDY_H_
#define SILOZ_SRC_HOSTMEM_BUDDY_H_

#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include "src/addr/subarray_group.h"
#include "src/base/result.h"

namespace siloz {

inline constexpr uint32_t kOrder4K = 0;
inline constexpr uint32_t kOrder2M = 9;   // 4 KiB << 9 = 2 MiB
inline constexpr uint32_t kOrder1G = 18;  // 4 KiB << 18 = 1 GiB
inline constexpr uint32_t kMaxOrder = kOrder1G;

constexpr uint64_t OrderBytes(uint32_t order) { return (4ull * 1024) << order; }

class BuddyAllocator {
 public:
  // Seeds the free lists with `ranges`; each range must be 4 KiB-aligned.
  // Blocks are kept naturally aligned to their size in absolute physical
  // space, so buddy computation is a simple XOR.
  explicit BuddyAllocator(const std::vector<PhysRange>& ranges);

  // Allocate one naturally-aligned block of (4 KiB << order) bytes.
  Result<uint64_t> Allocate(uint32_t order);

  // Allocate the specific block at `phys` (must be free). Used for
  // contiguous VM placement (§5.4's EPT-count argument relies on it).
  Status AllocateAt(uint64_t phys, uint32_t order);

  // Return a block obtained from Allocate/AllocateAt. Rejects with
  // kFailedPrecondition any block that overlaps a currently-free block or an
  // offlined page: a double (or never-allocated) free would otherwise
  // corrupt free_bytes_ and the coalescing state silently, which is exactly
  // the bookkeeping the isolation invariants rest on.
  Status Free(uint64_t phys, uint32_t order);

  // Permanently remove a free 4 KiB page from the pool (Linux page
  // offlining, §5.4/§6). Fails if the page is not currently free.
  Status OfflinePage(uint64_t phys);

  // Largest order with a free block available, or nullopt-like -1.
  int32_t LargestFreeOrder() const;

  uint64_t free_bytes() const { return free_bytes_; }
  uint64_t total_bytes() const { return total_bytes_; }
  uint64_t offlined_bytes() const { return offlined_bytes_; }

  // True if `phys` lies within a currently-free block (diagnostics/tests).
  bool IsFree(uint64_t phys) const;

  // True if the 4 KiB page holding `phys` was permanently removed via
  // OfflinePage. Distinguishes guard/quarantine carve-outs from allocated
  // pages — the static isolation audit relies on this to tell fence rows
  // apart from hammerable memory.
  bool IsOfflined(uint64_t phys) const;

  // True if [phys, phys + OrderBytes(order)) intersects any free block or
  // offlined page. O(log n) via the address-ordered free-block mirror.
  bool OverlapsFreeOrOfflined(uint64_t phys, uint32_t order) const;

  // Largest physically-contiguous free extent in bytes, merging adjacent
  // free blocks across orders (buddy coalescing only merges aligned pairs,
  // so the largest *run* can exceed the largest free block). Derived from
  // the address-ordered mirror, so the answer is deterministic. The fleet
  // simulator reports free_bytes() - LargestFreeRun() as a per-node
  // fragmentation stat.
  uint64_t LargestFreeRun() const;

 private:
  // Splits blocks until a free block of exactly `order` containing `phys`
  // exists; returns false if `phys` is not inside any free block of order
  // >= `order`.
  bool CarveTo(uint64_t phys, uint32_t order);

  void Insert(uint64_t phys, uint32_t order);

  // The ONLY mutators of the free-block containers, keeping free_ and
  // free_by_addr_ in lockstep.
  void AddFree(uint64_t phys, uint32_t order);
  void RemoveFree(uint64_t phys, uint32_t order);

  // free_[order] holds the start addresses of free blocks of that order.
  // Address-ordered (std::set): Allocate() hands out the lowest-address
  // block, so allocation placement is a pure function of the call sequence.
  // These were std::unordered_set once, and Allocate()'s begin() leaked
  // hash-table iteration order — a libstdc++-version-dependent placement
  // that broke bit-identical replay of allocation traces.
  std::vector<std::set<uint64_t>> free_;
  // Address-ordered mirror of every free block (start -> order). Free blocks
  // never overlap, so a start address maps to exactly one order; the mirror
  // gives Free() O(log n) overlap detection.
  std::map<uint64_t, uint32_t> free_by_addr_;
  // Pages removed by OfflinePage (4 KiB starts), address-ordered so overlap
  // queries are range scans.
  std::set<uint64_t> offlined_;
  uint64_t free_bytes_ = 0;
  uint64_t total_bytes_ = 0;
  uint64_t offlined_bytes_ = 0;
};

}  // namespace siloz

#endif  // SILOZ_SRC_HOSTMEM_BUDDY_H_
