#include "src/hostmem/cgroup.h"

#include <algorithm>

#include "src/base/fault_injector.h"

namespace siloz {

Result<ControlGroup*> CgroupRegistry::Create(const std::string& name,
                                             std::set<uint32_t> mems_allowed,
                                             bool kvm_privileged) {
  SILOZ_FAULT_POINT("alloc.cgroup.create");
  for (const auto& group : groups_) {
    if (group->name() == name) {
      return MakeError(ErrorCode::kAlreadyExists, "cgroup '" + name + "' exists");
    }
    for (uint32_t node : mems_allowed) {
      if (group->MayAllocateFrom(node)) {
        return MakeError(ErrorCode::kPermissionDenied,
                         "node " + std::to_string(node) + " already reserved by cgroup '" +
                             group->name() + "'");
      }
    }
  }
  groups_.push_back(
      std::make_unique<ControlGroup>(name, std::move(mems_allowed), kvm_privileged));
  return groups_.back().get();
}

Result<ControlGroup*> CgroupRegistry::Get(const std::string& name) {
  for (const auto& group : groups_) {
    if (group->name() == name) {
      return group.get();
    }
  }
  return MakeError(ErrorCode::kNotFound, "no cgroup '" + name + "'");
}

Status CgroupRegistry::Destroy(const std::string& name) {
  auto it = std::find_if(groups_.begin(), groups_.end(),
                         [&](const auto& group) { return group->name() == name; });
  if (it == groups_.end()) {
    return MakeError(ErrorCode::kNotFound, "no cgroup '" + name + "'");
  }
  // After the lookup so an injected failure models the kernel rejecting the
  // rmdir of a real, still-populated cgroup — the retryable case
  // ReleaseVmNodes must surface — not a bogus name.
  SILOZ_FAULT_POINT("free.cgroup.destroy");
  groups_.erase(it);
  return Status::Ok();
}

}  // namespace siloz
