#include "src/hostmem/numa.h"

#include <sstream>

#include "src/base/check.h"

namespace siloz {

NumaNode::NumaNode(uint32_t id, NodeKind kind, uint32_t physical_socket, uint32_t first_group,
                   std::vector<PhysRange> ranges, bool has_cpus)
    : id_(id),
      kind_(kind),
      physical_socket_(physical_socket),
      first_group_(first_group),
      has_cpus_(has_cpus),
      ranges_(std::move(ranges)),
      allocator_(ranges_) {}

std::string NumaNode::ToString() const {
  std::ostringstream out;
  out << "node" << id_ << " (" << NodeKindName(kind_) << ", socket " << physical_socket_
      << (has_cpus_ ? ", cpus" : ", memory-only") << ", "
      << (allocator_.total_bytes() >> 20) << " MiB)";
  return out.str();
}

NumaNode& NodeRegistry::AddNode(NodeKind kind, uint32_t physical_socket, uint32_t first_group,
                                std::vector<PhysRange> ranges, bool has_cpus) {
  const auto id = static_cast<uint32_t>(nodes_.size());
  nodes_.push_back(std::make_unique<NumaNode>(id, kind, physical_socket, first_group,
                                              std::move(ranges), has_cpus));
  return *nodes_.back();
}

Result<NumaNode*> NodeRegistry::Get(uint32_t node_id) {
  if (node_id >= nodes_.size()) {
    return MakeError(ErrorCode::kNotFound, "no node " + std::to_string(node_id));
  }
  return nodes_[node_id].get();
}

std::vector<NumaNode*> NodeRegistry::NodesOfKind(NodeKind kind) {
  std::vector<NumaNode*> result;
  for (const auto& node : nodes_) {
    if (node->kind() == kind) {
      result.push_back(node.get());
    }
  }
  return result;
}

std::vector<NumaNode*> NodeRegistry::NodesOnSocket(uint32_t socket) {
  std::vector<NumaNode*> result;
  for (const auto& node : nodes_) {
    if (node->physical_socket() == socket) {
      result.push_back(node.get());
    }
  }
  return result;
}

std::vector<const NumaNode*> NodeRegistry::AllNodes() const {
  std::vector<const NumaNode*> result;
  result.reserve(nodes_.size());
  for (const auto& node : nodes_) {
    result.push_back(node.get());
  }
  return result;
}

uint64_t NodeRegistry::StatSweepNodeCount(bool siloz_skip_static_nodes) const {
  uint64_t count = 0;
  for (const auto& node : nodes_) {
    if (siloz_skip_static_nodes && node->kind() == NodeKind::kGuestReserved) {
      continue;  // §5.3: guest-reserved free stats are static after VM boot
    }
    ++count;
  }
  return count;
}

}  // namespace siloz
