// Control groups gating node access (§5.2-§5.3).
//
// Siloz restricts allocation from guest-reserved nodes to processes that
// (a) belong to a control group whose cpuset.mems includes those nodes, and
// (b) hold KVM privileges. The host's default group excludes guest-reserved
// nodes entirely. This module models exactly that policy surface.
#ifndef SILOZ_SRC_HOSTMEM_CGROUP_H_
#define SILOZ_SRC_HOSTMEM_CGROUP_H_

#include <cstdint>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "src/base/result.h"

namespace siloz {

class ControlGroup {
 public:
  ControlGroup(std::string name, std::set<uint32_t> mems_allowed, bool kvm_privileged)
      : name_(std::move(name)),
        mems_allowed_(std::move(mems_allowed)),
        kvm_privileged_(kvm_privileged) {}

  const std::string& name() const { return name_; }
  bool kvm_privileged() const { return kvm_privileged_; }
  const std::set<uint32_t>& mems_allowed() const { return mems_allowed_; }

  bool MayAllocateFrom(uint32_t node_id) const { return mems_allowed_.count(node_id) != 0; }

  void SetMemsAllowed(std::set<uint32_t> nodes) { mems_allowed_ = std::move(nodes); }

 private:
  std::string name_;
  std::set<uint32_t> mems_allowed_;
  bool kvm_privileged_;
};

// Registry of control groups. Creation requires naming distinct groups; a
// node may be exclusively owned by at most one group (the "exclusive access
// to available guest-reserved nodes" of §5.3).
class CgroupRegistry {
 public:
  // Creates a group; fails if the name exists or any requested node is
  // already exclusively held by another group.
  Result<ControlGroup*> Create(const std::string& name, std::set<uint32_t> mems_allowed,
                               bool kvm_privileged);

  Result<ControlGroup*> Get(const std::string& name);

  // Destroys a group, releasing its node reservations (§5.3: reservations
  // outlive VM shutdown until a privileged user destroys the group).
  Status Destroy(const std::string& name);

  size_t size() const { return groups_.size(); }

 private:
  std::vector<std::unique_ptr<ControlGroup>> groups_;
};

}  // namespace siloz

#endif  // SILOZ_SRC_HOSTMEM_CGROUP_H_
