// Physical and logical NUMA nodes (§2.2, §5.2).
//
// Siloz abstracts each subarray group as a *logical NUMA node*: a
// memory-only node whose pool is the group's physical extents, tagged with
// the physical node (socket) it belongs to so physical-NUMA locality
// optimizations keep working. Host-reserved nodes additionally own the
// socket's cores. NodeRegistry is the kernel's NUMA topology; allocation
// goes through it, gated by control groups (cgroup.h).
#ifndef SILOZ_SRC_HOSTMEM_NUMA_H_
#define SILOZ_SRC_HOSTMEM_NUMA_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/addr/subarray_group.h"
#include "src/base/result.h"
#include "src/hostmem/buddy.h"

namespace siloz {

enum class NodeKind : uint8_t {
  kHostReserved,   // usable by the host; owns the socket's cores
  kGuestReserved,  // memory-only; usable by exactly one VM (§5.1)
};

inline const char* NodeKindName(NodeKind kind) {
  return kind == NodeKind::kHostReserved ? "host-reserved" : "guest-reserved";
}

// One NUMA node. Logical nodes correspond to one or more subarray groups;
// on an unmodified baseline kernel there is a single node per socket
// covering all of its memory.
class NumaNode {
 public:
  NumaNode(uint32_t id, NodeKind kind, uint32_t physical_socket, uint32_t first_group,
           std::vector<PhysRange> ranges, bool has_cpus);

  uint32_t id() const { return id_; }
  NodeKind kind() const { return kind_; }
  uint32_t physical_socket() const { return physical_socket_; }
  // First subarray group backing this node (group ids are global).
  uint32_t first_group() const { return first_group_; }
  bool has_cpus() const { return has_cpus_; }
  const std::vector<PhysRange>& ranges() const { return ranges_; }

  BuddyAllocator& allocator() { return allocator_; }
  const BuddyAllocator& allocator() const { return allocator_; }

  std::string ToString() const;

 private:
  uint32_t id_;
  NodeKind kind_;
  uint32_t physical_socket_;
  uint32_t first_group_;
  bool has_cpus_;
  std::vector<PhysRange> ranges_;
  BuddyAllocator allocator_;
};

// The machine's NUMA topology plus per-node allocators.
class NodeRegistry {
 public:
  // Adds a node; ids must be dense and ascending.
  NumaNode& AddNode(NodeKind kind, uint32_t physical_socket, uint32_t first_group,
                    std::vector<PhysRange> ranges, bool has_cpus);

  Result<NumaNode*> Get(uint32_t node_id);
  size_t node_count() const { return nodes_.size(); }
  std::vector<NumaNode*> NodesOfKind(NodeKind kind);
  std::vector<NumaNode*> NodesOnSocket(uint32_t socket);
  // Read-only view of every node, for introspection (e.g. the static audit).
  std::vector<const NumaNode*> AllNodes() const;

  // Models the periodic kernel work that scales with node count (vmstat
  // updates, zone iteration): returns the number of nodes a sweep touches.
  // Siloz skips guest-reserved nodes whose stats cannot change (§5.3).
  uint64_t StatSweepNodeCount(bool siloz_skip_static_nodes) const;

 private:
  std::vector<std::unique_ptr<NumaNode>> nodes_;
};

}  // namespace siloz

#endif  // SILOZ_SRC_HOSTMEM_NUMA_H_
