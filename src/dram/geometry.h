// DRAM geometry and media addressing (§2.3-§2.4 of the paper).
//
// A server DRAM pool is a hierarchy: socket → channel → DIMM → rank → bank →
// subarray → row → column. The memory controller addresses DRAM by *media
// address* (socket/channel/dimm/rank/bank/row/column); DIMM-internal
// transforms (remap.h) may further rewrite the row bits.
#ifndef SILOZ_SRC_DRAM_GEOMETRY_H_
#define SILOZ_SRC_DRAM_GEOMETRY_H_

#include <cstdint>
#include <string>

#include "src/base/result.h"
#include "src/base/units.h"

namespace siloz {

// Geometry of one machine's DRAM pool. Defaults reproduce the paper's
// evaluation server (Table 2): dual-socket, 6 channels/socket, one 32 GiB
// 2Rx4 DIMM per channel, 16 banks/rank → 192 banks and 192 GiB per socket,
// 1 GiB banks of 131072 8 KiB rows, 1024-row subarrays.
struct DramGeometry {
  uint32_t sockets = 2;
  uint32_t channels_per_socket = 6;
  uint32_t dimms_per_channel = 1;
  uint32_t ranks_per_dimm = 2;
  uint32_t banks_per_rank = 16;
  uint64_t row_bytes = 8 * kKiB;
  uint32_t rows_per_bank = 131072;
  // Subarray size in rows. Not reported by DDR4 (§4.1); Siloz receives it as
  // a boot parameter. 1024 on the evaluation server; modern range 512-2048.
  uint32_t rows_per_subarray = 1024;

  // --- Derived quantities ---
  uint32_t banks_per_dimm() const { return ranks_per_dimm * banks_per_rank; }
  uint32_t banks_per_channel() const { return dimms_per_channel * banks_per_dimm(); }
  // "Banks per physical node" in the paper's terminology (192 by default).
  uint32_t banks_per_socket() const { return channels_per_socket * banks_per_channel(); }
  uint32_t total_banks() const { return sockets * banks_per_socket(); }

  uint64_t bank_bytes() const { return static_cast<uint64_t>(rows_per_bank) * row_bytes; }
  uint64_t socket_bytes() const { return static_cast<uint64_t>(banks_per_socket()) * bank_bytes(); }
  uint64_t total_bytes() const { return static_cast<uint64_t>(sockets) * socket_bytes(); }

  uint32_t subarrays_per_bank() const { return rows_per_bank / rows_per_subarray; }
  // One row group = the same row index across every bank in a socket (§4.1).
  uint64_t row_group_bytes() const {
    return static_cast<uint64_t>(banks_per_socket()) * row_bytes;
  }
  // Subarray group size = banks/socket * rows/subarray * row size (1.5 GiB on
  // the evaluation server).
  uint64_t subarray_group_bytes() const {
    return row_group_bytes() * rows_per_subarray;
  }
  uint32_t subarray_groups_per_socket() const { return subarrays_per_bank(); }

  // Structural validity: nonzero fields, subarray size divides the bank.
  Status Validate() const;

  std::string ToString() const;

  bool operator==(const DramGeometry&) const = default;
};

// DDR5-generation platform preset (§8.2): DDR5 raises the bank count per
// rank (32 vs DDR4's 16), increasing bank-level parallelism — and, under
// Siloz, proportionally increasing the subarray-group size (3 GiB here).
// Capacity per socket doubles to 384 GiB with the same DIMM count.
inline DramGeometry Ddr5Geometry() {
  DramGeometry geometry;
  geometry.banks_per_rank = 32;
  return geometry;
}

// A fully-resolved media address for one byte of DRAM.
struct MediaAddress {
  uint32_t socket = 0;
  uint32_t channel = 0;   // within socket
  uint32_t dimm = 0;      // within channel
  uint32_t rank = 0;      // within DIMM
  uint32_t bank = 0;      // within rank
  uint32_t row = 0;       // media row within bank (pre-internal-remap)
  uint32_t column = 0;    // byte offset within the 8 KiB row

  bool operator==(const MediaAddress&) const = default;

  std::string ToString() const;
};

// Flat bank index within a socket: channel-major, then dimm, rank, bank.
// Range [0, banks_per_socket()). Inline: the controller computes this for
// every request served.
inline uint32_t SocketBankIndex(const DramGeometry& geometry, const MediaAddress& addr) {
  uint32_t index = addr.channel;
  index = index * geometry.dimms_per_channel + addr.dimm;
  index = index * geometry.ranks_per_dimm + addr.rank;
  index = index * geometry.banks_per_rank + addr.bank;
  return index;
}

// Media-level subarray index of a row.
inline uint32_t SubarrayOfRow(const DramGeometry& geometry, uint32_t row) {
  return row / geometry.rows_per_subarray;
}

// Bounds-check an address against the geometry.
Status ValidateAddress(const DramGeometry& geometry, const MediaAddress& addr);

}  // namespace siloz

#endif  // SILOZ_SRC_DRAM_GEOMETRY_H_
