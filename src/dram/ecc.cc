#include "src/dram/ecc.h"

#include <bit>

namespace siloz {
namespace {

// Codeword layout: positions 1..71. Parity bits sit at power-of-two
// positions {1,2,4,8,16,32,64}; the 64 data bits fill the remaining
// positions in ascending order. Bit 72 (stored as check bit 7) is the
// overall parity over positions 1..71.
constexpr bool IsParityPosition(unsigned pos) { return (pos & (pos - 1)) == 0; }

// data bit index -> codeword position, precomputed at compile time.
struct Layout {
  unsigned data_position[64] = {};
  constexpr Layout() {
    unsigned index = 0;
    for (unsigned pos = 1; pos <= 71; ++pos) {
      if (!IsParityPosition(pos)) {
        data_position[index++] = pos;
      }
    }
  }
};
constexpr Layout kLayout;

// Syndrome contribution of the data bits alone: XOR of positions of set bits.
unsigned DataSyndrome(uint64_t data) {
  unsigned syndrome = 0;
  while (data != 0) {
    const unsigned index = static_cast<unsigned>(std::countr_zero(data));
    syndrome ^= kLayout.data_position[index];
    data &= data - 1;
  }
  return syndrome;
}

}  // namespace

uint8_t EccEncode(uint64_t data) {
  // Choosing parity bit p_i (position 2^i) equal to syndrome bit i makes the
  // full-codeword syndrome zero.
  const unsigned syndrome = DataSyndrome(data);
  uint8_t check = static_cast<uint8_t>(syndrome & 0x7F);
  // Overall parity over positions 1..71 = parity(data) ^ parity(check bits).
  const unsigned ones =
      static_cast<unsigned>(std::popcount(data)) + static_cast<unsigned>(std::popcount(check));
  if (ones & 1u) {
    check |= 0x80;
  }
  return check;
}

EccDecodeResult EccDecode(uint64_t data, uint8_t check) {
  const unsigned stored_parity_bits = check & 0x7F;
  const unsigned syndrome = DataSyndrome(data) ^ stored_parity_bits;
  const unsigned total_ones = static_cast<unsigned>(std::popcount(data)) +
                              static_cast<unsigned>(std::popcount(static_cast<uint64_t>(check)));
  const bool overall_parity_error = (total_ones & 1u) != 0;

  if (syndrome == 0 && !overall_parity_error) {
    return {EccOutcome::kClean, data};
  }
  if (syndrome == 0 && overall_parity_error) {
    // The overall parity bit itself flipped; data intact.
    return {EccOutcome::kCorrected, data};
  }
  if (!overall_parity_error) {
    // Nonzero syndrome with even parity: an even number (>=2) of flips.
    return {EccOutcome::kUncorrectable, data};
  }
  // Odd number of flips with nonzero syndrome: hardware assumes exactly one
  // and corrects position `syndrome`. Triple+ flips land here too and get
  // miscorrected — the device model detects that by comparing to true data.
  if (syndrome > 71) {
    return {EccOutcome::kUncorrectable, data};  // impossible position
  }
  if (IsParityPosition(syndrome)) {
    return {EccOutcome::kCorrected, data};  // a parity bit flipped; data intact
  }
  // Map position back to the data bit index.
  for (unsigned index = 0; index < 64; ++index) {
    if (kLayout.data_position[index] == syndrome) {
      return {EccOutcome::kCorrected, data ^ (1ull << index)};
    }
  }
  return {EccOutcome::kUncorrectable, data};
}

}  // namespace siloz
