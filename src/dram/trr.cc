#include "src/dram/trr.h"

#include <algorithm>

namespace siloz {

void TrrTracker::Rearm() {
  armed_ = false;
  for (const auto& [row, count] : counts_) {
    if (count >= config_.act_threshold) {
      armed_ = true;
      return;
    }
  }
}

void TrrTracker::OnActivate(uint32_t internal_row) {
  auto it = counts_.find(internal_row);
  if (it != counts_.end()) {
    if (++it->second >= config_.act_threshold) {
      armed_ = true;
    }
    return;
  }
  if (counts_.size() < config_.tracker_entries) {
    counts_.emplace(internal_row, 1);
    if (config_.act_threshold <= 1) {
      armed_ = true;
    }
    return;
  }
  // Misra-Gries: a new row with a full table decrements every counter; rows
  // hitting zero are evicted. Many-sided patterns exploit exactly this to
  // flush true aggressors with decoys.
  for (auto iter = counts_.begin(); iter != counts_.end();) {
    if (--iter->second == 0) {
      iter = counts_.erase(iter);
    } else {
      ++iter;
    }
  }
  // A count sitting exactly at the threshold just dropped below it; the
  // eviction sweep is already O(entries), so the rescan is free by
  // comparison.
  if (armed_) {
    Rearm();
  }
}

std::vector<uint32_t> TrrTracker::SelectTargets() {
  if (!armed_) {
    return {};
  }
  std::vector<uint32_t> targets;
  for (uint32_t i = 0; i < config_.targets_per_ref; ++i) {
    auto best = counts_.end();
    for (auto it = counts_.begin(); it != counts_.end(); ++it) {
      if (it->second >= config_.act_threshold &&
          (best == counts_.end() || it->second > best->second)) {
        best = it;
      }
    }
    if (best == counts_.end()) {
      break;
    }
    targets.push_back(best->first);
    best->second = 0;  // handled; leave the entry so steady hammering re-arms it
  }
  Rearm();
  return targets;
}

}  // namespace siloz
